// Benchmarks, one per experiment of the reproduction (see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark regenerates the corresponding paper
// artifact end to end, so the timings measure the full pipeline: instance
// construction, plan/schedule search, exact validation.
package filtering_test

import (
	"runtime"
	"testing"

	filtering "repro"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/paperex"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/solve"
)

func benchReport(b *testing.B, run func() experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if r := run(); !r.OK {
			b.Fatalf("%s failed to reproduce:\n%s", r.ID, r.Table.String())
		}
	}
}

func BenchmarkE1Fig1Example(b *testing.B) {
	benchReport(b, experiments.E1Fig1)
}

func BenchmarkE2ChainVsForest(b *testing.B) {
	benchReport(b, experiments.E2ChainVsForest)
}

func BenchmarkE3MultiportLatency(b *testing.B) {
	benchReport(b, experiments.E3MultiportLatency)
}

func BenchmarkE4MultiportPeriod(b *testing.B) {
	benchReport(b, experiments.E4MultiportPeriod)
}

func BenchmarkE5OverlapOrchestration(b *testing.B) {
	benchReport(b, func() experiments.Report { return experiments.E5OverlapOrchestration(1) })
}

func BenchmarkE6ChainPeriodGreedy(b *testing.B) {
	benchReport(b, func() experiments.Report { return experiments.E6ChainPeriodGreedy(1) })
}

func BenchmarkE7ChainLatencyGreedy(b *testing.B) {
	benchReport(b, func() experiments.Report { return experiments.E7ChainLatencyGreedy(1) })
}

func BenchmarkE8TreeLatency(b *testing.B) {
	benchReport(b, func() experiments.Report { return experiments.E8TreeLatency(1) })
}

func BenchmarkE9ForestStructure(b *testing.B) {
	benchReport(b, func() experiments.Report { return experiments.E9ForestStructure(1) })
}

func BenchmarkE10Reductions(b *testing.B) {
	benchReport(b, experiments.E10Reductions)
}

func BenchmarkE11HeuristicQuality(b *testing.B) {
	benchReport(b, func() experiments.Report { return experiments.E11HeuristicQuality(1) })
}

func BenchmarkE12ModelGaps(b *testing.B) {
	benchReport(b, func() experiments.Report { return experiments.E12ModelGaps(1) })
}

// --- component benchmarks: the building blocks users pay for ---

// BenchmarkTheorem1Construction times the polynomial OVERLAP period
// orchestration (schedule construction + full multi-port validation) on the
// 202-service B.1 instance.
func BenchmarkTheorem1Construction(b *testing.B) {
	w := paperex.B1OptimalGraph().Weighted()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := orchestrate.OverlapPeriod(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInOrderMCR times one event-graph period computation (Howard MCR
// + earliest schedule + validation) on the Figure 1 instance.
func BenchmarkInOrderMCR(b *testing.B) {
	w := paperex.Fig1Graph().Weighted()
	orders := orchestrate.DefaultOrders(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := orchestrate.InOrderPeriodWithOrders(w, orders); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInOrderMCRLarge scales the event-graph machinery (Howard MCR +
// potentials + validation) to a 100-service random forest, whose single-
// predecessor structure is deadlock-free under any order assignment.
func BenchmarkInOrderMCRLarge(b *testing.B) {
	rng := gen.NewRand(1)
	app := gen.App(rng, 100, gen.Mixed)
	w := gen.ForestPlan(rng, app).Weighted()
	orders := orchestrate.DefaultOrders(w)
	if _, err := orchestrate.InOrderPeriodWithOrders(w, orders); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := orchestrate.InOrderPeriodWithOrders(w, orders); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyChain times the polynomial Prop-8 chain construction on
// 1000 services.
func BenchmarkGreedyChain(b *testing.B) {
	app := gen.App(gen.NewRand(2), 1000, gen.Filtering)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := solve.GreedyChainOrder(app, plan.InOrder)
		_ = solve.ChainPeriodValue(app, order, plan.InOrder)
	}
}

// BenchmarkTreeLatencyAlgorithm times Algorithm 1 on a 500-node random
// forest.
func BenchmarkTreeLatencyAlgorithm(b *testing.B) {
	rng := gen.NewRand(3)
	app := gen.App(rng, 500, gen.Filtering)
	w := gen.ForestPlan(rng, app).Weighted()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := orchestrate.TreeLatency(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfTimedSimulation times the discrete-event executor for 200
// data sets of a 12-service pipeline.
func BenchmarkSelfTimedSimulation(b *testing.B) {
	w := paperex.B2Graph().Weighted()
	orders := orchestrate.DefaultOrders(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SelfTimedInOrder(w, orders, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel-vs-serial benchmarks: the worker-pool plan-search layer ---
//
// Each pair runs the identical deterministic search with Workers: 1 and
// Workers: 0 (= runtime.NumCPU), so the ratio of the two timings is the
// wall-clock speedup of the parallel search layer on this machine. On a
// single-CPU host the pair's timings coincide — the speedup scales with
// the cores available.

func benchExactForest(b *testing.B, workers int) {
	app := gen.App(gen.NewRand(21), 6, gen.Mixed)
	opts := solve.Options{
		Method:  solve.ExactForest,
		Workers: workers,
		Orch:    orchestrate.Options{MaxExhaustive: 64},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MinPeriod(app, plan.Overlap, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactForestSerial(b *testing.B)   { benchExactForest(b, 1) }
func BenchmarkExactForestParallel(b *testing.B) { benchExactForest(b, 0) }

func benchExactDAG(b *testing.B, workers int) {
	app := gen.App(gen.NewRand(22), 4, gen.Filtering)
	opts := solve.Options{
		Method:  solve.ExactDAG,
		Workers: workers,
		Orch:    orchestrate.Options{MaxExhaustive: 64},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MinLatency(app, plan.InOrder, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactDAGSerial(b *testing.B)   { benchExactDAG(b, 1) }
func BenchmarkExactDAGParallel(b *testing.B) { benchExactDAG(b, 0) }

// benchBranchBoundForest runs the branch-and-bound forest search on the
// same instance as benchExactForest, so the two benchmark families compare
// the pruned search against the blind enumeration that certifies the same
// optimum (E15 reports the node counts behind the gap).
func benchBranchBoundForest(b *testing.B, workers int) {
	app := gen.App(gen.NewRand(21), 6, gen.Mixed)
	opts := solve.Options{
		Method:  solve.BranchBound,
		Family:  solve.FamilyForest,
		Workers: workers,
		Orch:    orchestrate.Options{MaxExhaustive: 64},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MinPeriod(app, plan.Overlap, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchBoundForestSerial(b *testing.B)   { benchBranchBoundForest(b, 1) }
func BenchmarkBranchBoundForestParallel(b *testing.B) { benchBranchBoundForest(b, 0) }

// BenchmarkBranchBoundChain12 times the scale payoff: certifying the chain
// optimum at n=12, a size whose 12! candidates the blind enumeration
// rejects outright.
func BenchmarkBranchBoundChain12(b *testing.B) {
	app := gen.App(gen.NewRand(42), 12, gen.Filtering)
	opts := solve.Options{
		Method:  solve.BranchBound,
		Family:  solve.FamilyChain,
		Workers: 1,
		Orch:    orchestrate.Options{MaxExhaustive: 64},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MinPeriod(app, plan.InOrder, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHillClimb(b *testing.B, workers int) {
	app := gen.App(gen.NewRand(23), 20, gen.Filtering)
	opts := solve.Options{
		Method:   solve.HillClimb,
		Workers:  workers,
		Restarts: 4,
		Orch:     orchestrate.Options{MaxExhaustive: 32, LocalSearchPasses: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve.MinPeriod(app, plan.Overlap, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHillClimbSerial(b *testing.B)   { benchHillClimb(b, 1) }
func BenchmarkHillClimbParallel(b *testing.B) { benchHillClimb(b, 0) }

// --- orchestration fast-path benchmarks ---
//
// The pruned + sharded order search (PR 5) against a DAG whose 23040-
// combination order space the pre-fast-path default (MaxExhaustive 4096)
// refused to search exactly: the raised default covers it, bound pruning
// and the static-floor early exit score a fraction of the product, and the
// Serial/Parallel pair measures the order-level sharding on this machine
// (bit-identical results either way; orchestrate treats Workers <= 1 as
// serial, so the parallel leg passes runtime.NumCPU() explicitly).

func orchestrateBenchPlan() *plan.Weighted {
	rng := gen.NewRand(42)
	app := gen.App(rng, 6+rng.Intn(3), gen.Mixed)
	return gen.DAGPlan(rng, app, 0.5).Weighted()
}

func benchOrchestratePeriod(b *testing.B, workers int) {
	w := orchestrateBenchPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := orchestrate.InOrderPeriod(w, orchestrate.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Exact {
			b.Fatal("benchmark order space must be searched exactly")
		}
	}
}

func BenchmarkOrchestratePeriodSerial(b *testing.B)   { benchOrchestratePeriod(b, 1) }
func BenchmarkOrchestratePeriodParallel(b *testing.B) { benchOrchestratePeriod(b, runtime.NumCPU()) }

func benchOrchestrateLatency(b *testing.B, workers int) {
	w := orchestrateBenchPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := orchestrate.OnePortLatency(w, orchestrate.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Exact {
			b.Fatal("benchmark order space must be searched exactly")
		}
	}
}

func BenchmarkOrchestrateLatencySerial(b *testing.B)   { benchOrchestrateLatency(b, 1) }
func BenchmarkOrchestrateLatencyParallel(b *testing.B) { benchOrchestrateLatency(b, runtime.NumCPU()) }

func benchExperimentsAll(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.AllWorkers(1, workers) {
			if !r.OK {
				b.Fatalf("%s failed to reproduce", r.ID)
			}
		}
	}
}

func BenchmarkExperimentsAllSerial(b *testing.B)   { benchExperimentsAll(b, 1) }
func BenchmarkExperimentsAllParallel(b *testing.B) { benchExperimentsAll(b, 0) }

// BenchmarkPlannerEndToEnd times the full public-API pipeline (plan search
// + orchestration + validation) on an 8-service instance.
func BenchmarkPlannerEndToEnd(b *testing.B) {
	app := filtering.RandomApp(4, 8, filtering.Filtering)
	planner := filtering.NewPlanner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.MinimizePeriod(app, filtering.Overlap); err != nil {
			b.Fatal(err)
		}
	}
}
