package filtering_test

import (
	"testing"

	filtering "repro"
)

// TestFacadeQuickstart exercises the package-documentation workflow through
// the public API only.
func TestFacadeQuickstart(t *testing.T) {
	app := filtering.Uniform(5, filtering.Int(4), filtering.Int(1))
	planner := filtering.NewPlanner()
	sol, err := planner.MinimizePeriod(app, filtering.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Graph == nil || sol.Sched.List == nil {
		t.Fatal("incomplete solution")
	}
	if !sol.Value.Equal(filtering.Int(4)) {
		t.Fatalf("optimal OVERLAP period = %s, want 4 (parallel plan)", sol.Value)
	}
	tr, err := filtering.Replay(sol.Sched.List, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Gap(1).Equal(sol.Value) {
		t.Fatal("replayed gap differs from period")
	}
}

func TestFacadeGraphAndSchedule(t *testing.T) {
	app := filtering.Uniform(5, filtering.Int(4), filtering.Int(1))
	eg, err := filtering.BuildGraph(app, [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range filtering.Models {
		sched, err := filtering.Period(eg, m, filtering.OrchestrateOptions{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if sched.Value.Sign() <= 0 {
			t.Fatalf("%s: bad period", m)
		}
	}
	lat, err := filtering.Latency(eg, filtering.InOrder, filtering.OrchestrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Value.Equal(filtering.Int(21)) {
		t.Fatalf("latency = %s, want 21", lat.Value)
	}
}

func TestFacadeSolversAndBiCriteria(t *testing.T) {
	app := filtering.RandomApp(1, 4, filtering.Filtering)
	per, err := filtering.MinPeriod(app, filtering.InOrder, filtering.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := filtering.MinLatency(app, filtering.InOrder, filtering.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bi, err := filtering.BiCriteria(app, filtering.InOrder, per.Value.MulInt(2), filtering.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bi.Value.Less(lat.Value) {
		t.Fatal("bi-criteria beats unconstrained latency optimum")
	}
}

func TestFacadeRationals(t *testing.T) {
	r, err := filtering.ParseRat("23/3")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(filtering.NewRat(23, 3)) {
		t.Fatal("rational constructors disagree")
	}
}

func TestFacadeComplexityMatrix(t *testing.T) {
	if len(filtering.ComplexityMatrix()) != 12 {
		t.Fatal("complexity matrix must have 12 entries")
	}
}

func TestFacadeAppValidation(t *testing.T) {
	_, err := filtering.NewApp([]filtering.Service{
		{Cost: filtering.Int(-1), Selectivity: filtering.Int(1)},
	}, nil)
	if err == nil {
		t.Fatal("negative cost accepted")
	}
	app, err := filtering.NewApp([]filtering.Service{
		{Name: "scan", Cost: filtering.Int(2), Selectivity: filtering.NewRat(1, 2)},
		{Name: "rank", Cost: filtering.Int(3), Selectivity: filtering.Int(1)},
	}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := filtering.ChainGraph(app, []int{1, 0}); err == nil {
		t.Fatal("chain violating precedence accepted")
	}
	if _, err := filtering.ParallelGraph(app); err == nil {
		t.Fatal("parallel plan violating precedence accepted")
	}
}

func TestFacadeWeightedWorkflow(t *testing.T) {
	// A three-stage traditional pipeline with explicit volumes.
	one := filtering.Int(1)
	w, err := filtering.NewWeighted(
		[]string{"src", "xform", "sink"},
		[]filtering.Rat{filtering.Int(2), filtering.Int(3), filtering.Int(2)},
		[]filtering.CommEdge{
			{From: filtering.InNode, To: 0},
			{From: 0, To: 1},
			{From: 1, To: 2},
			{From: 2, To: filtering.OutNode},
		},
		[]filtering.Rat{one, filtering.Int(2), one, one},
	)
	if err != nil {
		t.Fatal(err)
	}
	per, err := filtering.PeriodOf(w, filtering.InOrder, filtering.OrchestrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Chain bound: xform has Cin+Ccomp+Cout = 2+3+1 = 6.
	if !per.Value.Equal(filtering.Int(6)) {
		t.Fatalf("period = %s, want 6", per.Value)
	}
	lat, err := filtering.LatencyOf(w, filtering.Overlap, filtering.OrchestrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Path: 1 + 2 + 2 + 3 + 1 + 2 + 1 = 12.
	if !lat.Value.Equal(filtering.Int(12)) {
		t.Fatalf("latency = %s, want 12", lat.Value)
	}
	if _, err := filtering.NewWeighted(nil, []filtering.Rat{one}, nil, nil); err == nil {
		t.Fatal("node without communications accepted")
	}
}

func TestFacadeBottleneckReporting(t *testing.T) {
	app := filtering.Uniform(5, filtering.Int(4), filtering.Int(1))
	eg, err := filtering.BuildGraph(app, [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 4}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := filtering.Period(eg, filtering.InOrder, filtering.OrchestrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Bottleneck) == 0 {
		t.Fatal("INORDER schedule must expose its critical cycle")
	}
}
