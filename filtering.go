// Package filtering maps filtering streaming applications (workflows whose
// services shrink or expand their data stream) onto large-scale homogeneous
// platforms with explicit communication costs, reproducing Agrawal, Benoit,
// Dufossé and Robert, "Mapping Filtering Streaming Applications With
// Communication Costs" (SPAA 2009).
//
// The library separates the two halves of a plan exactly as the paper does:
//
//   - an execution graph (ExecGraph) fixes which service feeds which, and
//     therefore every computation and communication volume;
//   - an operation list (OperationList) fixes when every computation and
//     communication happens, cyclically with period λ.
//
// Three communication models are supported: Overlap (bounded multi-port
// with communication/computation overlap), InOrder and OutOrder (one-port
// without overlap, with or without strict per-data-set ordering). Plans are
// optimized for period (inverse throughput) or latency (response time),
// with exact solvers on small instances, the paper's polynomial special
// cases (chains, forests, OVERLAP period orchestration), and heuristics
// everywhere else. Every schedule the library emits is checked against the
// paper's Appendix-A constraint systems in exact rational arithmetic.
//
// Quick start:
//
//	app := filtering.Uniform(5, filtering.Int(4), filtering.Int(1))
//	planner := filtering.NewPlanner()
//	sol, err := planner.MinimizePeriod(app, filtering.Overlap)
//	// sol.Graph is the execution graph, sol.Sched.List the schedule.
//
// For serving plans at scale there is a long-running planning service:
// cmd/filterd exposes plan/batch/drift/stats over HTTP with canonical
// instance hashing and a singleflight plan cache, so repeated and
// slowly-drifting instances amortize the NP-hard search.
//
// See examples/ for complete programs (examples/quickstart for the
// library, examples/service for the filterd HTTP API end to end) and
// DESIGN.md for the architecture.
package filtering

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/oplist"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workflow"
)

// Rat is an immutable exact rational number; all costs, selectivities and
// schedule times are Rats.
type Rat = rat.Rat

// Int returns the rational n/1.
func Int(n int64) Rat { return rat.I(n) }

// NewRat returns the rational num/den in lowest terms (panics if den == 0).
func NewRat(num, den int64) Rat { return rat.New(num, den) }

// ParseRat parses "42", "23/3" or "0.9999" into an exact rational.
func ParseRat(s string) (Rat, error) { return rat.Parse(s) }

// Service is one filter: cost per unit of input data and selectivity
// (output/input volume ratio).
type Service = workflow.Service

// App is an application: services plus precedence constraints.
type App = workflow.App

// NewApp builds an application from services and precedence edges (pairs of
// service indices), validating costs, selectivities and acyclicity.
func NewApp(services []Service, precedence [][2]int) (*App, error) {
	return workflow.New(services, precedence)
}

// Uniform returns n services with identical cost and selectivity.
func Uniform(n int, cost, selectivity Rat) *App {
	return workflow.Uniform(n, cost, selectivity)
}

// Model is a communication model of the paper.
type Model = plan.Model

// The three communication models.
const (
	// Overlap: multi-port communications sharing bounded bandwidth, fully
	// overlapped with computation.
	Overlap = plan.Overlap
	// InOrder: one-port, no overlap, each data set fully processed
	// (receive all, compute, send all) before the next one starts.
	InOrder = plan.InOrder
	// OutOrder: one-port, no overlap, operations of different data sets
	// may interleave on a server.
	OutOrder = plan.OutOrder
)

// Models lists the three communication models.
var Models = plan.Models

// ExecGraph is an execution graph with its derived costs and volumes.
type ExecGraph = plan.ExecGraph

// BuildGraph constructs an execution graph from service-to-service edges;
// the transitive closure must contain the application's precedence
// constraints.
func BuildGraph(app *App, edges [][2]int) (*ExecGraph, error) {
	return plan.Build(app, edges)
}

// ChainGraph builds the linear chain visiting services in the given order.
func ChainGraph(app *App, order []int) (*ExecGraph, error) {
	return plan.ChainFromOrder(app, order)
}

// ParallelGraph builds the edge-free execution graph (every service
// independent).
func ParallelGraph(app *App) (*ExecGraph, error) { return plan.Parallel(app) }

// Weighted is the scheduling-level view of a plan: explicit computation
// times and communication volumes. It is how traditional workflows (no
// selectivities, volumes given directly — the setting of the paper's
// counter-examples B.2/B.3) enter the library; ExecGraph.Weighted() lowers
// a filtering plan to this form.
type Weighted = plan.Weighted

// CommEdge is one communication of a weighted plan; use InNode/OutNode as
// virtual endpoints for the input and output of the whole workflow.
type CommEdge = plan.Edge

// Virtual endpoints for CommEdge.
const (
	// InNode marks a communication from a private input node.
	InNode = plan.In
	// OutNode marks a communication to a private output node.
	OutNode = plan.Out
)

// NewWeighted builds a traditional workflow from computation times,
// communications and volumes. Every node needs at least one incoming and
// one outgoing communication (virtual ones for entries and exits).
func NewWeighted(names []string, comp []Rat, edges []CommEdge, vols []Rat) (*Weighted, error) {
	return plan.NewWeighted(names, comp, edges, vols)
}

// PeriodOf computes the best schedule minimizing the period of a weighted
// plan under model m.
func PeriodOf(w *Weighted, m Model, opts OrchestrateOptions) (Schedule, error) {
	return orchestrate.Period(w, m, opts)
}

// LatencyOf computes the best schedule minimizing the latency of a weighted
// plan under model m.
func LatencyOf(w *Weighted, m Model, opts OrchestrateOptions) (Schedule, error) {
	return orchestrate.Latency(w, m, opts)
}

// OperationList is a cyclic schedule: begin/end times for every computation
// and communication of data set 0, repeated with period λ.
type OperationList = oplist.List

// Schedule is an orchestration result: a validated operation list with its
// objective value and lower bound.
type Schedule = orchestrate.Result

// OrchestrateOptions tunes the schedule searches.
type OrchestrateOptions = orchestrate.Options

// Solution is a complete optimized plan: execution graph plus schedule.
type Solution = solve.Solution

// SolveOptions tunes the plan-level searches.
type SolveOptions = solve.Options

// Search methods for SolveOptions.Method.
const (
	// Auto picks exact enumeration on small instances, heuristics above.
	Auto = solve.Auto
	// GreedyChain is the paper's polynomial chain construction
	// (Prop. 8 / Prop. 16): optimal among chain-shaped plans.
	GreedyChain = solve.GreedyChain
	// ExactChain enumerates all chains.
	ExactChain = solve.ExactChain
	// ExactForest enumerates all forests (contains a period-optimal plan
	// by Prop. 4).
	ExactForest = solve.ExactForest
	// ExactDAG enumerates all DAGs (tiny instances only).
	ExactDAG = solve.ExactDAG
	// HillClimb is randomized local search over plan structures.
	HillClimb = solve.HillClimb
	// BranchBound certifies the same optimum as the exact enumerations by
	// incremental construction with lower-bound pruning, reaching larger
	// instances (chains to n=12, forests to n=7 by default). Set
	// SolveOptions.Stats to observe the search effort and
	// SolveOptions.Family to force a structural family.
	BranchBound = solve.BranchBound
)

// Branch-and-bound structural families for SolveOptions.Family and search
// counters for SolveOptions.Stats.
const (
	// FamilyAuto searches the family the exact methods would certify.
	FamilyAuto = solve.FamilyAuto
	// FamilyChain searches linear chains (optimal among chains).
	FamilyChain = solve.FamilyChain
	// FamilyForest searches forests (period-optimal by Prop. 4).
	FamilyForest = solve.FamilyForest
	// FamilyDAG searches general DAGs.
	FamilyDAG = solve.FamilyDAG
)

// SolveStats reports branch-and-bound search effort (nodes expanded,
// candidates evaluated, subtrees pruned).
type SolveStats = solve.Stats

// Objectives.
const (
	// PeriodObjective minimizes the period (inverse throughput).
	PeriodObjective = solve.PeriodObjective
	// LatencyObjective minimizes the latency (response time).
	LatencyObjective = solve.LatencyObjective
)

// Planner is the high-level entry point combining plan search and
// orchestration.
type Planner = core.Planner

// NewPlanner returns a planner with default options.
func NewPlanner() *Planner { return core.NewPlanner() }

// MinPeriod finds a plan minimizing the period of app under model m.
func MinPeriod(app *App, m Model, opts SolveOptions) (Solution, error) {
	return solve.MinPeriod(app, m, opts)
}

// MinLatency finds a plan minimizing the latency of app under model m.
func MinLatency(app *App, m Model, opts SolveOptions) (Solution, error) {
	return solve.MinLatency(app, m, opts)
}

// BiCriteria minimizes latency subject to a period bound.
func BiCriteria(app *App, m Model, periodBound Rat, opts SolveOptions) (Solution, error) {
	return solve.BiCriteria(app, m, periodBound, opts)
}

// Period computes the best schedule for a fixed execution graph, minimizing
// the period under model m.
func Period(eg *ExecGraph, m Model, opts OrchestrateOptions) (Schedule, error) {
	return orchestrate.Period(eg.Weighted(), m, opts)
}

// Latency computes the best schedule for a fixed execution graph,
// minimizing the latency under model m.
func Latency(eg *ExecGraph, m Model, opts OrchestrateOptions) (Schedule, error) {
	return orchestrate.Latency(eg.Weighted(), m, opts)
}

// Trace is a discrete-event execution record over consecutive data sets.
type Trace = sim.Trace

// Replay executes a validated operation list for nData data sets and
// returns the operational trace (completions, latencies, utilization).
func Replay(l *OperationList, nData int) (*Trace, error) {
	return sim.Replay(l, nData)
}

// Profile selects the selectivity mix of generated workloads.
type Profile = gen.Profile

// Workload profiles.
const (
	// Filtering draws selectivities below 1 (query predicates).
	Filtering = gen.Filtering
	// Mixed draws selectivities around 1.
	Mixed = gen.Mixed
	// Expanding draws selectivities above 1.
	Expanding = gen.Expanding
	// Neutral sets every selectivity to 1 (traditional workflows).
	Neutral = gen.Neutral
)

// RandomApp generates a reproducible random application with n services.
func RandomApp(seed int64, n int, p Profile) *App {
	return gen.App(gen.NewRand(seed), n, p)
}

// ComplexityMatrix returns the paper's 12 complexity results with the
// algorithms implementing each variant in this library.
func ComplexityMatrix() []core.Complexity { return core.Matrix() }
