# Developer entry points. CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: build bins test test-short test-race test-alloc bench bench-json smoke-orch fuzz vet check smoke-filterd smoke-cluster smoke-exec smoke-chaos

build:
	$(GO) build ./...

# Explicit binaries, filterd (the planning daemon) and filterexec (the
# data-plane executor) included.
bins:
	mkdir -p bin
	$(GO) build -o bin/ ./cmd/filterplan ./cmd/filterexp ./cmd/filtergen ./cmd/filterd ./cmd/filterexec ./cmd/benchjson

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast loop: gates the experiment sweeps behind -short (sub-second smoke
# subset instead of the full harness).
test-short:
	$(GO) test -short ./...

# Concurrency soundness of the worker-pool search layer and the planning
# service: full race runs of the pool, the sharded solvers (including the
# branch-and-bound shared incumbent and context cancellation), the sharded
# orchestration order search (shared incumbent + per-shard scratch) and
# its event-graph engine, the plan cache's singleflight, the service's
# exactly-one-solve / restart / subscription / backpressure suites, the
# persistent store, the cluster router with its circuit breakers (and
# the replication chaos suite: each replica killed in turn under seeded
# faults), the gossip agent, the deterministic fault injector, the
# metrics registry, the data-plane executor (pipelined stage network +
# closed re-plan loop against an in-process filterd) and its stream
# substrate, plus one race pass of the concurrent experiment harness
# (the rest of internal/experiments runs race+short — its full sweep is
# covered unraced by `test`).
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/par/ ./internal/solve/ ./internal/orchestrate/ ./internal/eventgraph/ ./internal/plancache/ ./internal/service/ ./internal/store/ ./internal/cluster/ ./internal/resilience/ ./internal/metrics/ ./internal/exec/ ./internal/sim/ ./internal/faults/
	$(GO) test -race -run TestAllWorkersPreservesOrderAndResults ./internal/experiments/

# Allocation-regression guards: the orchestration inner loop
# (AllocsPerRun budgets for the patch+bound cycle, repeat bound queries,
# and the zero-alloc one-port value path) and the service cache-hit path
# (tracing spans must add zero allocations when disabled). Must run
# unraced — the guards self-skip under -race because instrumentation
# inflates the counts.
test-alloc:
	$(GO) test -count=1 -run AllocBudget ./internal/orchestrate/ ./internal/service/

# One pass over every benchmark, including the parallel-vs-serial pairs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Parallel-vs-serial benchmark pairs, appended to the committed trajectory
# artifact BENCH_plan.json (one run record per invocation: Go version, CPU
# count, ns/op per benchmark). Run on a multi-core host to record the real
# worker-pool speedup; NOTE annotates the run.
bench-json:
	$(GO) test -run '^$$' -bench 'Serial$$|Parallel$$|BranchBoundChain12$$' -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_plan.json -note "$(NOTE)"

# End-to-end daemon smoke: start filterd on a local port, plan
# testdata/webquery8.json over HTTP, and diff the objective value against
# the filterplan CLI answer (CI runs the same check).
smoke-filterd:
	./scripts/smoke_filterd.sh

# End-to-end cluster smoke: 2 replicas + router, routed answer diffed
# against the filterplan CLI, then the owning replica is killed mid-run
# and the router must fail over to its local solve with the identical
# value (CI runs the same check).
smoke-cluster:
	./scripts/smoke_cluster.sh

# Replication chaos smoke: 3 gossiping replicas + a router with R=2 and
# the deterministic fault injector armed; kill and restart the owning
# replica mid-traffic and require zero 5xx, answers bit-identical to the
# filterplan CLI, and the restarted replica re-learning its registry via
# anti-entropy (CI runs the same check).
smoke-chaos:
	./scripts/smoke_chaos.sh

# End-to-end data-plane smoke: boot filterd, run filterexec with an
# injected cost drift, and require a re-plan PATCH plus a hot-swapped
# schedule bit-identical to the filterplan CLI on the drifted instance
# (CI runs the same check).
smoke-exec:
	./scripts/smoke_exec.sh

# Orchestration fast-path smoke: one iteration of each order-search
# benchmark pair (pruned + sharded exhaustive search, serial and parallel),
# so the benchmarks behind BENCH_plan.json cannot bit-rot (CI runs the
# same check).
smoke-orch:
	$(GO) test -run '^$$' -bench 'Orchestrate' -benchtime 1x .

# Short coverage-guided fuzz smoke of the operation-list JSON codec (the
# corpus seeds also run as regular unit tests under `test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzListJSONRoundTrip -fuzztime 30s ./internal/oplist/

check: vet build test-short test-race test-alloc
