# Developer entry points. CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: build test test-short test-race bench vet check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast loop: gates the experiment sweeps behind -short (sub-second smoke
# subset instead of the full harness).
test-short:
	$(GO) test -short ./...

# Concurrency soundness of the worker-pool search layer: full race runs of
# the pool and the sharded solvers, plus one race pass of the concurrent
# experiment harness (the rest of internal/experiments runs race+short —
# its full sweep is covered unraced by `test`).
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/par/ ./internal/solve/
	$(GO) test -race -run TestAllWorkersPreservesOrderAndResults ./internal/experiments/

# One pass over every benchmark, including the parallel-vs-serial pairs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

check: vet build test-short test-race
