# Developer entry points. CI (.github/workflows/ci.yml) runs `make check`.

GO ?= go

.PHONY: build test test-short test-race bench fuzz vet check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast loop: gates the experiment sweeps behind -short (sub-second smoke
# subset instead of the full harness).
test-short:
	$(GO) test -short ./...

# Concurrency soundness of the worker-pool search layer: full race runs of
# the pool and the sharded solvers — including the branch-and-bound
# determinism suite, whose shared incumbent is the newest hazard — plus one
# race pass of the concurrent experiment harness (the rest of
# internal/experiments runs race+short — its full sweep is covered unraced
# by `test`).
test-race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/par/ ./internal/solve/
	$(GO) test -race -run TestAllWorkersPreservesOrderAndResults ./internal/experiments/

# One pass over every benchmark, including the parallel-vs-serial pairs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Short coverage-guided fuzz smoke of the operation-list JSON codec (the
# corpus seeds also run as regular unit tests under `test`).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzListJSONRoundTrip -fuzztime 30s ./internal/oplist/

check: vet build test-short test-race
