package dag

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// diamond builds the 4-node DAG 0->1, 0->2, 1->3, 2->3.
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}

func TestAddRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1) // duplicate is a no-op
	if g.EdgeCount() != 2 || !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge bookkeeping broken")
	}
	if got := g.Succ(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Succ = %v", got)
	}
	if got := g.Pred(1); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Pred = %v", got)
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.EdgeCount() != 1 {
		t.Fatal("RemoveEdge failed")
	}
	g.RemoveEdge(0, 1) // removing absent edge is a no-op
	if g.EdgeCount() != 1 {
		t.Fatal("double remove changed count")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if g.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
}

func TestRootsLeaves(t *testing.T) {
	g := diamond()
	if got := g.Roots(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Roots = %v", got)
	}
	if got := g.Leaves(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Leaves = %v", got)
	}
	if g.InDegree(3) != 2 || g.OutDegree(0) != 2 {
		t.Fatal("degrees wrong")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := diamond()
	anc, err := g.Ancestors()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(anc[3].Elements(), []int{0, 1, 2}) {
		t.Fatalf("anc[3] = %v", anc[3])
	}
	if anc[0].Count() != 0 {
		t.Fatal("root has ancestors")
	}
	if !reflect.DeepEqual(anc[1].Elements(), []int{0}) {
		t.Fatalf("anc[1] = %v", anc[1])
	}
	desc, err := g.Descendants()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(desc[0].Elements(), []int{1, 2, 3}) {
		t.Fatalf("desc[0] = %v", desc[0])
	}
	if desc[3].Count() != 0 {
		t.Fatal("leaf has descendants")
	}
}

func TestTransitiveClosureAndReduction(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2) // redundant
	c, err := g.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	if c.EdgeCount() != 3 || !c.HasEdge(0, 2) {
		t.Fatalf("closure edges = %v", c.Edges())
	}
	r, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeCount() != 2 || r.HasEdge(0, 2) {
		t.Fatalf("reduction edges = %v", r.Edges())
	}
	// Closure of the reduction equals closure of the original.
	rc, _ := r.TransitiveClosure()
	if !reflect.DeepEqual(rc.Edges(), c.Edges()) {
		t.Fatal("reduction changed the closure")
	}
}

func TestClosureContains(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	h := New(3)
	h.AddEdge(0, 2) // implied transitively
	ok, err := g.ClosureContains(h)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	h.AddEdge(2, 0)
	ok, err = g.ClosureContains(h)
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v; 2->0 is not implied", ok, err)
	}
	if _, err := g.ClosureContains(New(4)); err == nil {
		t.Fatal("expected node count mismatch error")
	}
}

func TestStructuralPredicates(t *testing.T) {
	chain := New(4)
	chain.AddEdge(0, 1)
	chain.AddEdge(1, 2)
	chain.AddEdge(2, 3)
	if !chain.IsChain() || !chain.IsForest() || !chain.IsTree() {
		t.Fatal("chain misclassified")
	}
	order, err := chain.ChainOrder()
	if err != nil || !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("ChainOrder = %v, %v", order, err)
	}

	fan := New(4)
	fan.AddEdge(0, 1)
	fan.AddEdge(0, 2)
	fan.AddEdge(0, 3)
	if fan.IsChain() {
		t.Fatal("fan is not a chain")
	}
	if !fan.IsForest() || !fan.IsTree() {
		t.Fatal("fan is a tree")
	}

	d := diamond()
	if d.IsForest() || d.IsTree() || d.IsChain() {
		t.Fatal("diamond misclassified: node 3 has two predecessors")
	}
	if _, err := d.ChainOrder(); err == nil {
		t.Fatal("ChainOrder should fail on diamond")
	}

	twoChains := New(4)
	twoChains.AddEdge(0, 1)
	twoChains.AddEdge(2, 3)
	if twoChains.IsChain() {
		t.Fatal("two components are not one chain")
	}
	if !twoChains.IsForest() {
		t.Fatal("two chains form a forest")
	}
	if twoChains.IsTree() {
		t.Fatal("two components are not a tree")
	}

	empty := New(0)
	if !empty.IsChain() || !empty.IsForest() {
		t.Fatal("empty graph is trivially chain and forest")
	}

	isolated := New(3) // no edges: forest, not chain (3 roots)
	if isolated.IsChain() {
		t.Fatal("isolated nodes are not a chain")
	}
	if !isolated.IsForest() {
		t.Fatal("isolated nodes form a forest")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone not independent")
	}
	if !reflect.DeepEqual(g.Edges(), diamond().Edges()) {
		t.Fatal("original mutated")
	}
}

// randomDAG builds a DAG by only adding forward edges under a random
// permutation, guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	perm := rng.Perm(n)
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(perm[i], perm[j])
			}
		}
	}
	return g
}

func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(3))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(20), 0.3)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAncestorsMatchClosure(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(15), 0.3)
		anc, err := g.Ancestors()
		if err != nil {
			return false
		}
		c, err := g.TransitiveClosure()
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			for u := 0; u < g.N(); u++ {
				if anc[v].Has(u) != c.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickReductionMinimalAndEquivalent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(6))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(12), 0.4)
		r, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		gc, _ := g.TransitiveClosure()
		rc, _ := r.TransitiveClosure()
		if !reflect.DeepEqual(gc.Edges(), rc.Edges()) {
			return false
		}
		// Removing any edge of the reduction must change the closure.
		for _, e := range r.Edges() {
			r2 := r.Clone()
			r2.RemoveEdge(e[0], e[1])
			r2c, _ := r2.TransitiveClosure()
			if reflect.DeepEqual(r2c.Edges(), rc.Edges()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopoSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomDAG(rng, 500, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAncestors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomDAG(rng, 500, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Ancestors(); err != nil {
			b.Fatal(err)
		}
	}
}
