// Package dag provides the directed-acyclic-graph machinery shared by
// execution graphs and precedence constraints: topological orders, ancestor
// sets, transitive closure/reduction, and the structural predicates (chain,
// forest, tree) the paper's polynomial special cases rely on.
//
// Nodes are dense integers [0, N). Graphs are mutable while being built and
// are then treated as read-only by the analysis helpers; helpers that need
// acyclicity return an error when the graph has a cycle.
package dag

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// ErrCycle is returned by analyses that require a DAG when the graph
// contains a directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// Graph is a directed graph over nodes 0..N-1 with O(1) edge lookup and
// sorted adjacency lists.
type Graph struct {
	n    int
	succ [][]int
	pred [][]int
	has  map[[2]int]bool
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("dag: negative node count")
	}
	return &Graph{
		n:    n,
		succ: make([][]int, n),
		pred: make([][]int, n),
		has:  make(map[[2]int]bool),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

func (g *Graph) checkNode(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge inserts the edge u->v, keeping adjacency lists sorted. Inserting
// an existing edge is a no-op. Self-loops are rejected with a panic since no
// execution graph may contain one.
func (g *Graph) AddEdge(u, v int) {
	g.checkNode(u)
	g.checkNode(v)
	if u == v {
		panic(fmt.Sprintf("dag: self-loop on node %d", u))
	}
	if g.has[[2]int{u, v}] {
		return
	}
	g.has[[2]int{u, v}] = true
	g.succ[u] = insertSorted(g.succ[u], v)
	g.pred[v] = insertSorted(g.pred[v], u)
}

// RemoveEdge deletes the edge u->v if present.
func (g *Graph) RemoveEdge(u, v int) {
	if !g.has[[2]int{u, v}] {
		return
	}
	delete(g.has, [2]int{u, v})
	g.succ[u] = removeSorted(g.succ[u], v)
	g.pred[v] = removeSorted(g.pred[v], u)
}

// HasEdge reports whether the edge u->v is present.
func (g *Graph) HasEdge(u, v int) bool { return g.has[[2]int{u, v}] }

// Succ returns the sorted direct successors of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Succ(v int) []int { g.checkNode(v); return g.succ[v] }

// Pred returns the sorted direct predecessors of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Pred(v int) []int { g.checkNode(v); return g.pred[v] }

// OutDegree returns the number of direct successors of v.
func (g *Graph) OutDegree(v int) int { g.checkNode(v); return len(g.succ[v]) }

// InDegree returns the number of direct predecessors of v.
func (g *Graph) InDegree(v int) int { g.checkNode(v); return len(g.pred[v]) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.has) }

// Edges returns all edges as [2]int{u, v} pairs in lexicographic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.has))
	for u := 0; u < g.n; u++ {
		for _, v := range g.succ[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Clone returns an independent copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for e := range g.has {
		c.AddEdge(e[0], e[1])
	}
	return c
}

// Roots returns the nodes with no predecessors, in increasing order.
func (g *Graph) Roots() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Leaves returns the nodes with no successors, in increasing order.
func (g *Graph) Leaves() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// TopoSort returns a topological order of the nodes (Kahn's algorithm with
// a deterministic smallest-node-first tie break), or ErrCycle.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.pred[v])
	}
	// A sorted frontier keeps the order deterministic across runs.
	frontier := &intHeap{}
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			frontier.push(v)
		}
	}
	order := make([]int, 0, g.n)
	for frontier.len() > 0 {
		v := frontier.pop()
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier.push(w)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Ancestors returns, for every node, the set of its strict ancestors
// (preds, preds of preds, ...). Returns ErrCycle on cyclic graphs.
func (g *Graph) Ancestors() ([]*bitset.Set, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	anc := make([]*bitset.Set, g.n)
	for _, v := range order {
		s := bitset.New(g.n)
		for _, p := range g.pred[v] {
			s.Add(p)
			s.UnionWith(anc[p])
		}
		anc[v] = s
	}
	return anc, nil
}

// Descendants returns, for every node, the set of its strict descendants.
// Returns ErrCycle on cyclic graphs.
func (g *Graph) Descendants() ([]*bitset.Set, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	desc := make([]*bitset.Set, g.n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		s := bitset.New(g.n)
		for _, w := range g.succ[v] {
			s.Add(w)
			s.UnionWith(desc[w])
		}
		desc[v] = s
	}
	return desc, nil
}

// TransitiveClosure returns a new graph with an edge u->v whenever v is
// reachable from u by a non-empty path. Returns ErrCycle on cyclic graphs.
func (g *Graph) TransitiveClosure() (*Graph, error) {
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		desc[u].ForEach(func(v int) { c.AddEdge(u, v) })
	}
	return c, nil
}

// TransitiveReduction returns the unique minimal graph with the same
// transitive closure as g (g must be a DAG).
func (g *Graph) TransitiveReduction() (*Graph, error) {
	desc, err := g.Descendants()
	if err != nil {
		return nil, err
	}
	r := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.succ[u] {
			// u->v is redundant iff some other successor of u reaches v.
			redundant := false
			for _, w := range g.succ[u] {
				if w != v && desc[w].Has(v) {
					redundant = true
					break
				}
			}
			if !redundant {
				r.AddEdge(u, v)
			}
		}
	}
	return r, nil
}

// ClosureContains reports whether every edge of h is implied by g, i.e.
// h's edges are a subset of g's transitive closure. Both graphs must have
// the same node count; g must be a DAG.
func (g *Graph) ClosureContains(h *Graph) (bool, error) {
	if g.n != h.n {
		return false, fmt.Errorf("dag: node count mismatch %d != %d", g.n, h.n)
	}
	desc, err := g.Descendants()
	if err != nil {
		return false, err
	}
	for _, e := range h.Edges() {
		if !desc[e[0]].Has(e[1]) {
			return false, nil
		}
	}
	return true, nil
}

// IsForest reports whether every node has at most one direct predecessor
// and the graph is acyclic: a forest of out-trees, the structure Prop. 4 of
// the paper proves sufficient for optimal MINPERIOD plans.
func (g *Graph) IsForest() bool {
	for v := 0; v < g.n; v++ {
		if len(g.pred[v]) > 1 {
			return false
		}
	}
	return g.IsAcyclic()
}

// IsChain reports whether the graph is one linear chain covering all nodes:
// every node has at most one predecessor and one successor, there is exactly
// one root, and all nodes are reachable along the chain.
func (g *Graph) IsChain() bool {
	if g.n == 0 {
		return true
	}
	roots := 0
	for v := 0; v < g.n; v++ {
		if len(g.pred[v]) > 1 || len(g.succ[v]) > 1 {
			return false
		}
		if len(g.pred[v]) == 0 {
			roots++
		}
	}
	if roots != 1 {
		return false
	}
	// Walk the chain from the root; it must visit every node.
	v := g.Roots()[0]
	seen := 1
	for len(g.succ[v]) == 1 {
		v = g.succ[v][0]
		seen++
		if seen > g.n {
			return false // cycle guard
		}
	}
	return seen == g.n
}

// IsTree reports whether g is a single out-tree covering all nodes.
func (g *Graph) IsTree() bool {
	return g.IsForest() && len(g.Roots()) == 1 && g.EdgeCount() == g.n-1
}

// ChainOrder returns the node order along the chain, or an error if the
// graph is not a chain.
func (g *Graph) ChainOrder() ([]int, error) {
	if !g.IsChain() {
		return nil, errors.New("dag: graph is not a chain")
	}
	if g.n == 0 {
		return nil, nil
	}
	order := make([]int, 0, g.n)
	v := g.Roots()[0]
	order = append(order, v)
	for len(g.succ[v]) == 1 {
		v = g.succ[v][0]
		order = append(order, v)
	}
	return order, nil
}

// --- helpers ---

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// intHeap is a tiny binary min-heap; using container/heap would force an
// interface boxing per push on this hot path.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
