package gen

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
)

func TestAppProfiles(t *testing.T) {
	rng := NewRand(1)
	cases := []struct {
		p        Profile
		loOK     func(s rat.Rat) bool
		expected string
	}{
		{Filtering, func(s rat.Rat) bool { return s.Less(rat.One) && s.Sign() > 0 }, "filtering"},
		{Expanding, func(s rat.Rat) bool { return s.Greater(rat.One) }, "expanding"},
		{Mixed, func(s rat.Rat) bool { return s.Geq(rat.New(1, 2)) && s.Leq(rat.Two) }, "mixed"},
		{Neutral, func(s rat.Rat) bool { return s.Equal(rat.One) }, "neutral"},
	}
	for _, c := range cases {
		if c.p.String() != c.expected {
			t.Errorf("Profile name = %q, want %q", c.p.String(), c.expected)
		}
		app := App(rng, 30, c.p)
		if app.N() != 30 {
			t.Fatalf("N = %d", app.N())
		}
		for i := 0; i < app.N(); i++ {
			if !c.loOK(app.Selectivity(i)) {
				t.Errorf("%s: selectivity %s out of band", c.p, app.Selectivity(i))
			}
			if app.Cost(i).Less(rat.One) || app.Cost(i).Greater(rat.I(10)) {
				t.Errorf("cost %s out of [1,10]", app.Cost(i))
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := App(NewRand(42), 10, Mixed)
	b := App(NewRand(42), 10, Mixed)
	for i := 0; i < 10; i++ {
		if !a.Cost(i).Equal(b.Cost(i)) || !a.Selectivity(i).Equal(b.Selectivity(i)) {
			t.Fatal("same seed must generate identical applications")
		}
	}
}

func TestAppWithPrecedence(t *testing.T) {
	rng := NewRand(7)
	app := AppWithPrecedence(rng, 12, Filtering, 0.3)
	if !app.HasPrecedence() {
		t.Fatal("expected precedence constraints at density 0.3")
	}
	if !app.Precedence().IsAcyclic() {
		t.Fatal("precedence graph must be acyclic")
	}
}

func TestDAGPlanHonorsPrecedence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := NewRand(seed)
		app := AppWithPrecedence(rng, 8, Mixed, 0.2)
		eg := DAGPlan(rng, app, 0.3)
		ok, err := eg.Graph().ClosureContains(app.Precedence())
		if err != nil || !ok {
			t.Fatalf("seed %d: plan does not honor precedence (ok=%v err=%v)", seed, ok, err)
		}
	}
}

func TestForestPlanShape(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := NewRand(seed)
		app := App(rng, 10, Filtering)
		eg := ForestPlan(rng, app)
		if !eg.IsForest() {
			t.Fatalf("seed %d: not a forest", seed)
		}
	}
}

func TestForestPlanRejectsPrecedence(t *testing.T) {
	rng := NewRand(3)
	app := AppWithPrecedence(rng, 5, Mixed, 0.9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForestPlan(rng, app)
}

func TestChainPlanShape(t *testing.T) {
	rng := NewRand(5)
	app := App(rng, 7, Filtering)
	eg := ChainPlan(rng, app)
	if !eg.IsChain() {
		t.Fatal("not a chain")
	}
}

func TestWeightedShape(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := NewRand(seed)
		w := Weighted(rng, 8, 0.3)
		if w.N() != 8 {
			t.Fatalf("N = %d", w.N())
		}
		for v := 0; v < w.N(); v++ {
			if len(w.InEdges(v)) == 0 || len(w.OutEdges(v)) == 0 {
				t.Fatalf("seed %d: node %d missing virtual comm", seed, v)
			}
		}
		if w.PeriodLowerBound(plan.Overlap).Sign() <= 0 {
			t.Fatal("degenerate plan")
		}
	}
}
