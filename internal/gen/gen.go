// Package gen produces deterministic random workloads for tests,
// experiments and benchmarks: filtering applications with configurable
// selectivity mixes (the query-optimization setting of the paper's
// motivation), random execution graphs of every structural class the paper
// distinguishes (chains, forests, DAGs), and raw weighted plans for the
// traditional-workflow experiments.
//
// All generators take an explicit *rand.Rand so every experiment is
// reproducible from its seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// Profile describes the selectivity mix of a generated application.
type Profile int

const (
	// Filtering draws selectivities below 1 (query predicates that shrink
	// the stream), the regime where chaining pays off.
	Filtering Profile = iota
	// Mixed draws selectivities in a band around 1: some services shrink,
	// some expand.
	Mixed
	// Expanding draws selectivities above 1 (decoders, join-like blowup).
	Expanding
	// Neutral sets every selectivity to exactly 1: a traditional workflow.
	Neutral
)

// String names the profile for reports.
func (p Profile) String() string {
	switch p {
	case Filtering:
		return "filtering"
	case Mixed:
		return "mixed"
	case Expanding:
		return "expanding"
	case Neutral:
		return "neutral"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ratIn returns a rational uniformly from {lo/den, ..., hi/den}.
func ratIn(rng *rand.Rand, lo, hi, den int64) rat.Rat {
	return rat.New(lo+rng.Int63n(hi-lo+1), den)
}

// App generates n services with costs in [1, 10] (quarter-unit steps) and
// selectivities drawn from the profile, without precedence constraints.
func App(rng *rand.Rand, n int, p Profile) *workflow.App {
	services := make([]workflow.Service, n)
	for i := range services {
		services[i] = workflow.Service{
			Cost:        ratIn(rng, 4, 40, 4),
			Selectivity: selectivity(rng, p),
		}
	}
	return workflow.MustNew(services, nil)
}

func selectivity(rng *rand.Rand, p Profile) rat.Rat {
	switch p {
	case Filtering:
		return ratIn(rng, 1, 9, 10) // 0.1 .. 0.9
	case Expanding:
		return ratIn(rng, 11, 30, 10) // 1.1 .. 3.0
	case Mixed:
		return ratIn(rng, 5, 20, 10) // 0.5 .. 2.0
	default:
		return rat.One
	}
}

// AppWithPrecedence generates an application whose precedence graph has
// each forward pair constrained with probability density.
func AppWithPrecedence(rng *rand.Rand, n int, p Profile, density float64) *workflow.App {
	base := App(rng, n, p)
	var edges [][2]int
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				edges = append(edges, [2]int{perm[i], perm[j]})
			}
		}
	}
	return workflow.MustNew(base.Services(), edges)
}

// DAGPlan builds a random execution graph over app: forward edges under a
// random permutation with the given density, always including the
// application's precedence constraints.
func DAGPlan(rng *rand.Rand, app *workflow.App, density float64) *plan.ExecGraph {
	n := app.N()
	g := dag.New(n)
	for _, e := range app.Precedence().Edges() {
		g.AddEdge(e[0], e[1])
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				u, v := perm[i], perm[j]
				if !g.HasEdge(v, u) { // keep acyclic: only this orientation
					g.AddEdge(u, v)
				}
			}
		}
	}
	if !g.IsAcyclic() {
		// The permutation construction cannot create cycles together with
		// an acyclic precedence graph oriented the same way; if the
		// precedence graph disagrees with the permutation this can still
		// conflict, so retry without extra edges.
		eg, err := plan.FromGraph(app, app.Precedence())
		if err != nil {
			panic(fmt.Sprintf("gen: cannot build plan from precedence graph: %v", err))
		}
		return eg
	}
	eg, err := plan.FromGraph(app, g)
	if err != nil {
		// Density edges may fight the precedence closure only via cycles,
		// handled above; any other error is a bug.
		panic(fmt.Sprintf("gen: invalid generated plan: %v", err))
	}
	return eg
}

// ForestPlan builds a random forest execution graph (every service has at
// most one predecessor), the structure that suffices for optimal MINPERIOD
// plans. Requires an application without precedence constraints.
func ForestPlan(rng *rand.Rand, app *workflow.App) *plan.ExecGraph {
	if app.HasPrecedence() {
		panic("gen: ForestPlan requires an application without precedence constraints")
	}
	n := app.N()
	perm := rng.Perm(n)
	g := dag.New(n)
	for i := 1; i < n; i++ {
		// Each node either becomes a new root or attaches to an earlier one.
		if rng.Intn(3) > 0 {
			parent := perm[rng.Intn(i)]
			g.AddEdge(parent, perm[i])
		}
	}
	eg, err := plan.FromGraph(app, g)
	if err != nil {
		panic(fmt.Sprintf("gen: invalid forest plan: %v", err))
	}
	return eg
}

// ChainPlan builds the chain execution graph visiting services in a random
// order. Requires an application without precedence constraints.
func ChainPlan(rng *rand.Rand, app *workflow.App) *plan.ExecGraph {
	eg, err := plan.ChainFromOrder(app, rng.Perm(app.N()))
	if err != nil {
		panic(fmt.Sprintf("gen: invalid chain plan: %v", err))
	}
	return eg
}

// Weighted builds a random raw weighted plan (traditional workflow): a
// layered DAG with explicit volumes, n nodes total.
func Weighted(rng *rand.Rand, n int, density float64) *plan.Weighted {
	comp := make([]rat.Rat, n)
	for i := range comp {
		comp[i] = ratIn(rng, 1, 20, 2)
	}
	var edges []plan.Edge
	var vols []rat.Rat
	add := func(e plan.Edge, v rat.Rat) {
		edges = append(edges, e)
		vols = append(vols, v)
	}
	hasIn := make([]bool, n)
	hasOut := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				add(plan.Edge{From: i, To: j}, ratIn(rng, 1, 12, 2))
				hasOut[i] = true
				hasIn[j] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if !hasIn[i] {
			add(plan.Edge{From: plan.In, To: i}, ratIn(rng, 1, 6, 2))
		}
		if !hasOut[i] {
			add(plan.Edge{From: i, To: plan.Out}, ratIn(rng, 1, 6, 2))
		}
	}
	w, err := plan.NewWeighted(nil, comp, edges, vols)
	if err != nil {
		panic(fmt.Sprintf("gen: invalid weighted plan: %v", err))
	}
	return w
}
