package exec

// Client is the Planner speaking the filterd HTTP API: POST /v1/plan for
// planning, PATCH /v1/instance/{hash} for drift re-planning, and
// GET /v1/subscribe/{hash} for the SSE re-plan stream. The subscription
// reconnects automatically, echoing the last seen event ID as the SSE
// Last-Event-ID header so the service (or the cluster router forwarding
// the header to the owning replica) replays the re-plan events fired
// during the gap — the resume path the executor relies on to never miss
// an external re-plan.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// ClientParams are the solve parameters sent with every plan and drift
// request, in the HTTP API's vocabulary (cliopt names; empty strings mean
// the service defaults).
type ClientParams struct {
	Model     string `json:"model,omitempty"`
	Objective string `json:"objective,omitempty"`
	Method    string `json:"method,omitempty"`
	Family    string `json:"family,omitempty"`
	MaxExactN int    `json:"max_exact_n,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Restarts  int    `json:"restarts,omitempty"`
}

// Client implements Planner over HTTP against a filterd (or cluster
// router) base URL.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Subscribe requires a
	// client without a global timeout (streams outlive any sane one).
	HTTPClient *http.Client
	// Params are the solve parameters of every request.
	Params ClientParams
	// Logger, when non-nil, receives reconnect and parse warnings.
	Logger *slog.Logger
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.New(discardHandler{})
}

// planWireResponse mirrors the service's plan response document.
type planWireResponse struct {
	Hash     string          `json:"hash"`
	Value    rat.Rat         `json:"value"`
	Period   rat.Rat         `json:"period"`
	Graph    planWireGraph   `json:"graph"`
	Schedule json.RawMessage `json:"schedule"`
}

type planWireGraph struct {
	Services []string    `json:"services"`
	Edges    [][2]string `json:"edges"`
}

// driftWireResponse mirrors the service's drift response document.
type driftWireResponse struct {
	OldHash  string           `json:"old_hash"`
	NewHash  string           `json:"new_hash"`
	OldValue rat.Rat          `json:"old_value"`
	NewValue rat.Rat          `json:"new_value"`
	Plan     planWireResponse `json:"plan"`
}

// eventWire mirrors the SSE replan payload.
type eventWire struct {
	Hash     string          `json:"hash"`
	NewHash  string          `json:"new_hash"`
	OldValue rat.Rat         `json:"old_value"`
	NewValue rat.Rat         `json:"new_value"`
	Instance json.RawMessage `json:"instance"`
}

// Plan implements Planner: POST /v1/plan.
func (c *Client) Plan(ctx context.Context, app *workflow.App, requestID string) (Plan, error) {
	inst, err := json.Marshal(app)
	if err != nil {
		return Plan{}, fmt.Errorf("exec: encoding instance: %w", err)
	}
	body := struct {
		Instance json.RawMessage `json:"instance"`
		ClientParams
	}{Instance: inst, ClientParams: c.Params}
	var wire planWireResponse
	if err := c.do(ctx, http.MethodPost, "/v1/plan", body, requestID, &wire); err != nil {
		return Plan{}, err
	}
	return c.assemble(wire, app)
}

// Drift implements Planner: PATCH /v1/instance/{hash}. The drifted
// instance is reconstructed locally as app with the updates applied —
// the same values the service declared, since a drift PATCH is exactly
// "replace these services' declared values with these".
func (c *Client) Drift(ctx context.Context, hash string, app *workflow.App, updates []Update, requestID string) (Plan, error) {
	type updateWire struct {
		Service     string `json:"service"`
		Cost        string `json:"cost,omitempty"`
		Selectivity string `json:"selectivity,omitempty"`
	}
	ups := make([]updateWire, len(updates))
	for i, u := range updates {
		ups[i].Service = u.Service
		if u.Cost != nil {
			ups[i].Cost = u.Cost.String()
		}
		if u.Selectivity != nil {
			ups[i].Selectivity = u.Selectivity.String()
		}
	}
	body := struct {
		Updates []updateWire `json:"updates"`
		ClientParams
	}{Updates: ups, ClientParams: c.Params}
	var wire driftWireResponse
	if err := c.do(ctx, http.MethodPatch, "/v1/instance/"+hash, body, requestID, &wire); err != nil {
		return Plan{}, err
	}
	drifted, err := applyUpdates(app, updates)
	if err != nil {
		return Plan{}, err
	}
	return c.assemble(wire.Plan, drifted)
}

// Subscribe implements Planner: a self-healing SSE consumer of
// GET /v1/subscribe/{hash}. Replan events are decoded and delivered on
// the returned channel; on any stream error the client reconnects with
// Last-Event-ID set to the last delivered ID, so the service replays the
// gap. The channel closes when ctx ends.
func (c *Client) Subscribe(ctx context.Context, hash string) (<-chan Replan, error) {
	out := make(chan Replan, 16)
	go c.subscribeLoop(ctx, hash, out)
	return out, nil
}

// subscribeBackoff is the reconnect delay ladder of the SSE consumer.
var subscribeBackoff = []time.Duration{
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second,
}

func (c *Client) subscribeLoop(ctx context.Context, hash string, out chan<- Replan) {
	defer close(out)
	logger := c.logger()
	lastID := uint64(0)
	seen := false
	attempt := 0
	for ctx.Err() == nil {
		err := c.consumeStream(ctx, hash, &lastID, &seen, out)
		if ctx.Err() != nil {
			return
		}
		d := subscribeBackoff[min(attempt, len(subscribeBackoff)-1)]
		attempt++
		logger.Warn("exec.subscribe.reconnect", "hash", hash, "err", err, "backoff", d)
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
	}
}

// consumeStream opens one SSE connection and pumps its frames until the
// stream or the context ends. lastID/seen track the resume cursor across
// calls.
func (c *Client) consumeStream(ctx context.Context, hash string, lastID *uint64, seen *bool, out chan<- Replan) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/subscribe/"+hash, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *seen {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("exec: subscribe %s: status %d: %s", hash, resp.StatusCode, strings.TrimSpace(string(b)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	var id uint64
	var event string
	var data bytes.Buffer
	dispatch := func() error {
		defer func() { id, event = 0, ""; data.Reset() }()
		switch event {
		case "replan":
			var wire eventWire
			if err := json.Unmarshal(data.Bytes(), &wire); err != nil {
				return fmt.Errorf("exec: decoding replan event: %w", err)
			}
			rp := Replan{
				ID:       id,
				Hash:     wire.Hash,
				NewHash:  wire.NewHash,
				OldValue: wire.OldValue,
				NewValue: wire.NewValue,
			}
			if len(wire.Instance) > 0 {
				var app workflow.App
				if err := json.Unmarshal(wire.Instance, &app); err != nil {
					return fmt.Errorf("exec: decoding replan instance: %w", err)
				}
				rp.App = &app
			}
			select {
			case out <- rp:
			case <-ctx.Done():
				return ctx.Err()
			}
			if id > 0 {
				*lastID, *seen = id, true
			}
		case "lagged":
			// Events were lost beyond the retained history. The next
			// replan still carries the full drifted instance, so the
			// executor converges on it; surface the gap for operators.
			c.logger().Warn("exec.subscribe.lagged", "hash", hash, "data", data.String())
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" {
				if err := dispatch(); err != nil {
					return err
				}
			} else {
				id, event = 0, ""
				data.Reset()
			}
		case strings.HasPrefix(line, ":"):
			// comment (keep-alive / subscribed banner)
		case strings.HasPrefix(line, "id:"):
			v, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			if err == nil {
				id = v
			}
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(line[5:]))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.EOF
}

// ErrUpstreamBusy marks a request that kept answering 429/503 through
// every Retry-After backoff attempt — the service is shedding load or
// draining, not broken, so callers should hold their state and retry the
// operation on their own schedule (the executor's controller re-issues
// the PATCH next measurement round).
var ErrUpstreamBusy = errors.New("exec: upstream busy")

// busyRetries bounds the in-call retries of a 429/503 answer;
// maxRetryWait caps one backoff sleep however large the advertised
// Retry-After is.
const (
	busyRetries  = 3
	maxRetryWait = 5 * time.Second
)

// busySeq spreads the jitter of concurrent backoffs (see retryWait).
var busySeq atomic.Int64

// retryWait resolves one 429/503 backoff: the server's Retry-After
// seconds when parseable, otherwise a doubling ladder from 100ms; capped
// at maxRetryWait; plus a small deterministic jitter stepped per backoff
// process-wide, so the coordinated clients released by one shed burst do
// not re-converge on the same instant.
func retryWait(header string, attempt int) time.Duration {
	d := (100 * time.Millisecond) << attempt
	if header != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > maxRetryWait {
		d = maxRetryWait
	}
	return d + time.Duration(busySeq.Add(1)*37%100)*time.Millisecond
}

// do executes one JSON request/response round trip. A 429 or 503 answer
// is retried in place up to busyRetries times, honoring the Retry-After
// header (bounded, jittered); exhaustion fails with ErrUpstreamBusy so
// the caller can distinguish backpressure from breakage.
func (c *Client) do(ctx context.Context, method, path string, body any, requestID string, into any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("exec: encoding request: %w", err)
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if requestID != "" {
			req.Header.Set(obs.HeaderRequestID, requestID)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			if attempt >= busyRetries {
				return fmt.Errorf("%w: %s %s: status %d after %d backoffs: %s",
					ErrUpstreamBusy, method, path, resp.StatusCode, attempt, strings.TrimSpace(string(b)))
			}
			d := retryWait(resp.Header.Get("Retry-After"), attempt)
			c.logger().Warn("exec.backoff", "method", method, "path", path,
				"status", resp.StatusCode, "wait", d, "request_id", requestID)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return fmt.Errorf("exec: %s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(b)))
		}
		err = json.NewDecoder(resp.Body).Decode(into)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("exec: decoding %s %s response: %w", method, path, err)
		}
		return nil
	}
}

// assemble turns a wire plan plus the instance it was computed from into
// the executor's Plan: the canonical service order and execution graph
// arrive as names, the declared values come from src (the same values the
// service canonicalized — canonicalization permutes, it never rewrites).
func (c *Client) assemble(wire planWireResponse, src *workflow.App) (Plan, error) {
	app, err := remapApp(src, wire.Graph.Services)
	if err != nil {
		return Plan{}, err
	}
	edges := make([][2]int, 0, len(wire.Graph.Edges))
	for _, e := range wire.Graph.Edges {
		u, v := app.IndexOf(e[0]), app.IndexOf(e[1])
		if u < 0 || v < 0 {
			return Plan{}, fmt.Errorf("exec: plan edge %s -> %s names unknown service", e[0], e[1])
		}
		edges = append(edges, [2]int{u, v})
	}
	eg, err := plan.Build(app, edges)
	if err != nil {
		return Plan{}, fmt.Errorf("exec: rebuilding execution graph: %w", err)
	}
	// Compact the schedule: the wire bytes carry the server's response
	// indentation (plan responses and drift responses nest differently),
	// and Plan.Schedule is compared bit-for-bit across those paths.
	var sched bytes.Buffer
	if err := json.Compact(&sched, wire.Schedule); err != nil {
		return Plan{}, fmt.Errorf("exec: compacting schedule: %w", err)
	}
	return Plan{
		Hash:     wire.Hash,
		App:      app,
		Graph:    eg,
		Value:    wire.Value,
		Period:   wire.Period,
		Schedule: sched.Bytes(),
	}, nil
}

// remapApp reorders src's services into the given name order, remapping
// precedence edges along. It fails unless order is exactly a permutation
// of src's names.
func remapApp(src *workflow.App, order []string) (*workflow.App, error) {
	if len(order) != src.N() {
		return nil, fmt.Errorf("exec: canonical order has %d services, instance has %d", len(order), src.N())
	}
	services := make([]workflow.Service, len(order))
	newIdx := make(map[string]int, len(order))
	for i, name := range order {
		v := src.IndexOf(name)
		if v < 0 {
			return nil, fmt.Errorf("exec: canonical order names unknown service %q", name)
		}
		services[i] = src.Service(v)
		newIdx[name] = i
	}
	if len(newIdx) != len(order) {
		return nil, fmt.Errorf("exec: canonical order repeats a service name")
	}
	var prec [][2]int
	for _, e := range src.Precedence().Edges() {
		prec = append(prec, [2]int{newIdx[src.Name(e[0])], newIdx[src.Name(e[1])]})
	}
	return workflow.New(services, prec)
}

// applyUpdates clones app with the drift updates applied.
func applyUpdates(app *workflow.App, updates []Update) (*workflow.App, error) {
	services := make([]workflow.Service, app.N())
	for i := 0; i < app.N(); i++ {
		services[i] = app.Service(i)
	}
	for _, u := range updates {
		v := app.IndexOf(u.Service)
		if v < 0 {
			return nil, fmt.Errorf("exec: update names unknown service %q", u.Service)
		}
		if u.Cost != nil {
			services[v].Cost = *u.Cost
		}
		if u.Selectivity != nil {
			services[v].Selectivity = *u.Selectivity
		}
	}
	return workflow.New(services, app.Precedence().Edges())
}
