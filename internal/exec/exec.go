// Package exec is the data plane: a tuple-stream executor that runs the
// schedules the planning stack produces, measures what the stream
// actually does, and drives the re-plan loop when reality departs the
// declared instance.
//
// The control plane (internal/solve behind internal/service) answers
// "given declared costs and selectivities, what is the best mapping and
// schedule". This package closes the loop the paper leaves open: it
// pushes a synthetic tuple stream through the planned execution graph —
// one pipeline stage per service, wired by bounded channels along the
// graph's edges — estimates each service's empirical selectivity and
// per-tuple cost online, and when an estimate departs its declared value
// beyond a confidence-gated threshold, PATCHes the instance
// (service.Drift / PATCH /v1/instance/{hash}) and hot-swaps to the
// re-planned schedule at a tuple-round boundary. Externally triggered
// re-plans arrive through the subscription stream (SSE with
// Last-Event-ID resume over HTTP) and are adopted the same way.
//
// Determinism contract: with a fixed Seed and no user Predicate, every
// verdict is the pure function sim.Verdict(seed, name, tuple) — so two
// runs with the same seed, instance, and tuple count produce
// bit-identical verdicts, estimator values, and drift-trigger sequences,
// regardless of Workers, Rate, or goroutine interleaving. The executor
// only measures wall time; it never lets wall time influence a decision.
package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rat"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Defaults for the zero-valued Config knobs.
const (
	// DefaultWindow is the tuples-per-round default: estimator merge,
	// drift control, and hot swaps happen at round boundaries.
	DefaultWindow = 256
	// DefaultMinSamples is the confidence gate: a service's estimates
	// cannot trigger a drift PATCH before this many evaluated tuples.
	DefaultMinSamples = 64
	// DefaultBuffer is the per-edge channel capacity of the pipelined
	// stage network.
	DefaultBuffer = 32
)

// DefaultThreshold returns the default relative drift threshold 1/8: an
// estimate departing its declared value by more than 12.5% triggers a
// re-plan.
func DefaultThreshold() rat.Rat { return rat.New(1, 8) }

// Truth is the physical reality of one service for the synthetic stream:
// the pass fraction and per-tuple cost the stream actually exhibits, as
// opposed to the declared values the plan was computed from. Nil fields
// default to the declared values (no drift). Truth is fixed for the whole
// run — re-planning changes what is declared, never what is true.
type Truth struct {
	// Selectivity is the true pass fraction, in [0, 1]. The declared
	// selectivity may exceed 1 (expanding services); a pass fraction
	// cannot.
	Selectivity *rat.Rat
	// Cost is the true per-tuple cost charged by the virtual clock;
	// must be positive.
	Cost *rat.Rat
}

// Predicate decides a tuple's verdict at one service, overriding the
// synthetic Bernoulli draw. Determinism across runs and worker counts is
// the implementation's responsibility: it must be a pure function of
// (name, tuple).
type Predicate func(name string, tuple uint64) bool

// Config parameterizes an Executor.
type Config struct {
	// App is the declared instance to plan and execute.
	App *workflow.App
	// Planner is the control-plane client (Local or Client).
	Planner Planner

	// Seed drives the synthetic verdicts (sim.Verdict).
	Seed uint64
	// Rate, when positive, paces the stream to this many tuples per
	// second of wall time. Pacing never affects verdicts or decisions.
	Rate float64
	// Window is the tuples-per-round granularity (DefaultWindow if 0).
	Window int
	// MinSamples gates drift decisions (DefaultMinSamples if 0).
	MinSamples uint64
	// Threshold is the relative drift threshold (DefaultThreshold if
	// zero): trigger when |emp - decl| > Threshold·decl.
	Threshold rat.Rat
	// Truth overrides the stream's physical behavior per service name.
	Truth map[string]Truth
	// Predicate, when non-nil, replaces the synthetic verdicts.
	Predicate Predicate
	// Workers selects the execution mode: ≤ 1 runs tuples serially
	// through the graph on one goroutine; > 1 runs the pipelined stage
	// network (one goroutine per service). Both produce identical
	// counts and decisions.
	Workers int
	// Buffer is the stage-edge channel capacity (DefaultBuffer if 0).
	Buffer int

	// Metrics, when non-nil, receives the filterexec_* instruments.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records a span per run and per re-plan.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives structured progress events.
	Logger *slog.Logger
	// RequestID correlates the run's control-plane requests; generated
	// when empty.
	RequestID string
}

// DriftEpisode records one hot swap: the round it happened after, which
// hash was swapped for which, the measured updates that triggered it (nil
// for externally adopted re-plans), and the objective movement.
type DriftEpisode struct {
	Round    uint64
	Tuple    uint64 // first tuple of the next round, the swap boundary
	Source   string // "controller" (own PATCH) or "subscribe" (external)
	OldHash  string
	NewHash  string
	Updates  []Update
	OldValue rat.Rat
	NewValue rat.Rat
}

// ServiceStats is the final estimator snapshot of one service.
type ServiceStats struct {
	Name string
	// In counts evaluated tuples (alive on arrival), Out the passed
	// subset.
	In, Out uint64
	// EmpSelectivity is Out/In exact (zero when In == 0);
	// DeclSelectivity the final declared value.
	EmpSelectivity  rat.Rat
	DeclSelectivity rat.Rat
	// MeanCost is the exact mean virtual per-tuple cost; EWMACost the
	// observational smoother over the same samples; DeclCost the final
	// declared value.
	MeanCost rat.Rat
	EWMACost float64
	DeclCost rat.Rat
}

// Report is the outcome of one Run.
type Report struct {
	// Tuples is the number pushed through the graph; Emitted the
	// survivors (alive at every exit service); Rounds the number of
	// execution rounds.
	Tuples  uint64
	Emitted uint64
	Rounds  uint64
	// Patches counts controller-initiated drift PATCHes, ReplanEvents
	// externally triggered re-plans adopted from the subscription
	// stream, Swaps all schedule hot swaps (= Patches + ReplanEvents).
	Patches      int
	ReplanEvents int
	Swaps        int
	// Hash, Value, Period, Schedule and App describe the final plan.
	Hash     string
	Value    rat.Rat
	Period   rat.Rat
	Schedule json.RawMessage
	App      *workflow.App
	// Services is the name-sorted estimator snapshot; Episodes the
	// drift history in order.
	Services []ServiceStats
	Episodes []DriftEpisode
	// Elapsed and Throughput are wall-clock observations (excluded from
	// the determinism contract).
	Elapsed    time.Duration
	Throughput float64
}

// Executor runs one instance's tuple stream against the control plane.
type Executor struct {
	cfg  Config
	m    *execMetrics
	plan Plan // current plan (guarded by the run loop, single goroutine)

	estimators map[string]*estimator

	// truthThreshold and truthCost are the fixed physical behavior per
	// service name, resolved against the initial declared instance.
	truthThreshold map[string]uint64
	truthCost      map[string]rat.Rat
}

// New validates cfg and returns an Executor. The initial plan is not
// computed until Run.
func New(cfg Config) (*Executor, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("exec: Config.App is nil")
	}
	if cfg.Planner == nil {
		return nil, fmt.Errorf("exec: Config.Planner is nil")
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("exec: Window %d is not positive", cfg.Window)
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = DefaultMinSamples
	}
	if cfg.Threshold.IsZero() {
		cfg.Threshold = DefaultThreshold()
	}
	if cfg.Threshold.Sign() < 0 {
		return nil, fmt.Errorf("exec: Threshold %s is negative", cfg.Threshold)
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.RequestID == "" {
		cfg.RequestID = obs.NewID()
	}
	for name, t := range cfg.Truth {
		if cfg.App.IndexOf(name) < 0 {
			return nil, fmt.Errorf("exec: Truth names unknown service %q", name)
		}
		if t.Selectivity != nil {
			if t.Selectivity.Sign() < 0 || t.Selectivity.Greater(rat.One) {
				return nil, fmt.Errorf("exec: Truth[%q].Selectivity %s outside [0, 1]", name, *t.Selectivity)
			}
		}
		if t.Cost != nil && t.Cost.Sign() <= 0 {
			return nil, fmt.Errorf("exec: Truth[%q].Cost %s is not positive", name, *t.Cost)
		}
	}
	e := &Executor{
		cfg:            cfg,
		estimators:     make(map[string]*estimator, cfg.App.N()),
		truthThreshold: make(map[string]uint64, cfg.App.N()),
		truthCost:      make(map[string]rat.Rat, cfg.App.N()),
	}
	if cfg.Metrics != nil {
		e.m = newExecMetrics(cfg.Metrics)
	}
	for v := 0; v < cfg.App.N(); v++ {
		name := cfg.App.Name(v)
		e.estimators[name] = &estimator{name: name}
		sel := cfg.App.Selectivity(v)
		cost := cfg.App.Cost(v)
		if t, ok := cfg.Truth[name]; ok {
			if t.Selectivity != nil {
				sel = *t.Selectivity
			}
			if t.Cost != nil {
				cost = *t.Cost
			}
		}
		e.truthThreshold[name] = sim.Threshold(sel)
		e.truthCost[name] = cost
	}
	return e, nil
}

// logger returns the configured logger or a discard-equivalent default.
func (e *Executor) logger() *slog.Logger {
	if e.cfg.Logger != nil {
		return e.cfg.Logger
	}
	return slog.New(discardHandler{})
}

// discardHandler drops every record (log/slog has no built-in discard
// handler before go1.24's slog.DiscardHandler).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Run plans the instance, executes nTuples through the planned graph in
// Window-sized rounds, and returns the final report. Between rounds it
// adopts externally triggered re-plans from the subscription stream and
// runs the drift controller; both swap the active schedule at the round
// boundary, never mid-tuple.
func (e *Executor) Run(ctx context.Context, nTuples uint64) (*Report, error) {
	start := time.Now()
	span := e.span("exec.run", e.cfg.RequestID)
	logger := e.logger()

	p, err := e.cfg.Planner.Plan(ctx, e.cfg.App, e.cfg.RequestID)
	if err != nil {
		span.SetError(err.Error())
		span.End(500)
		return nil, fmt.Errorf("exec: initial plan: %w", err)
	}
	e.plan = p
	span.SetHash(p.Hash, "")
	logger.Info("exec.plan", "hash", p.Hash, "value", p.Value.String(), "period", p.Period.String())

	// Subscription manager: one subscription per current hash, replaced
	// on every hot swap so externally triggered re-plans against the
	// active instance keep arriving.
	subCtx, cancelSub := context.WithCancel(ctx)
	defer cancelSub()
	events, err := e.cfg.Planner.Subscribe(subCtx, p.Hash)
	if err != nil {
		span.SetError(err.Error())
		span.End(500)
		return nil, fmt.Errorf("exec: subscribe %s: %w", p.Hash, err)
	}
	resubscribe := func() {
		cancelSub()
		subCtx, cancelSub = context.WithCancel(ctx)
		ev, serr := e.cfg.Planner.Subscribe(subCtx, e.plan.Hash)
		if serr != nil {
			logger.Warn("exec.subscribe", "hash", e.plan.Hash, "err", serr)
			events = nil
			return
		}
		events = ev
	}
	defer func() { cancelSub() }()

	report := &Report{Hash: p.Hash}
	var roundDeadline time.Time
	if e.cfg.Rate > 0 {
		roundDeadline = start
	}

	for done := uint64(0); done < nTuples; {
		if err := ctx.Err(); err != nil {
			span.SetError(err.Error())
			span.End(499)
			return nil, err
		}
		n := uint64(e.cfg.Window)
		if rest := nTuples - done; rest < n {
			n = rest
		}
		emitted := e.runRound(done, n)
		report.Tuples += n
		report.Emitted += emitted
		report.Rounds++
		done += n
		if e.m != nil {
			e.m.tuples.Add(int64(n))
			e.m.emitted.Add(int64(emitted))
			e.m.rounds.Inc()
			e.m.observeOccupancy(e.estimators, report.Tuples)
		}

		// Round boundary: adopt external re-plans, then run the drift
		// controller. Both may hot-swap the plan for the next round.
		if swapped := e.adoptExternal(ctx, events, report, done, logger); swapped {
			resubscribe()
		}
		swapped, cerr := e.controller(ctx, report, done, logger)
		if cerr != nil {
			span.SetError(cerr.Error())
			span.End(500)
			return nil, cerr
		}
		if swapped {
			resubscribe()
		}

		if e.cfg.Rate > 0 {
			roundDeadline = roundDeadline.Add(time.Duration(float64(n) / e.cfg.Rate * float64(time.Second)))
			if d := time.Until(roundDeadline); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
		}
	}

	report.Hash = e.plan.Hash
	report.Value = e.plan.Value
	report.Period = e.plan.Period
	report.Schedule = e.plan.Schedule
	report.App = e.plan.App
	report.Services = e.serviceStats()
	report.Elapsed = time.Since(start)
	if s := report.Elapsed.Seconds(); s > 0 {
		report.Throughput = float64(report.Tuples) / s
	}
	if e.m != nil {
		e.m.throughput.Set(report.Throughput)
	}
	span.SetHash(e.plan.Hash, "")
	span.SetOutcome("completed", "exec")
	span.End(200)
	logger.Info("exec.done",
		"tuples", report.Tuples, "emitted", report.Emitted,
		"rounds", report.Rounds, "patches", report.Patches,
		"replans", report.ReplanEvents, "hash", report.Hash)
	return report, nil
}

// span starts a tracer span, tolerating a nil tracer.
func (e *Executor) span(route, id string) *obs.Span {
	if e.cfg.Tracer == nil {
		return nil
	}
	return e.cfg.Tracer.Start(route, id)
}

// runRound pushes tuples [first, first+n) through the current plan's
// execution graph and returns how many were emitted (alive at every exit
// service). Estimators are updated in tuple order per service.
func (e *Executor) runRound(first, n uint64) (emitted uint64) {
	if n == 0 {
		return 0
	}
	if e.cfg.Workers <= 1 {
		return e.runSerial(first, n)
	}
	return e.runPipelined(first, n)
}

// verdict evaluates one service on one tuple against physical truth.
func (e *Executor) verdict(name string, tuple uint64) bool {
	if e.cfg.Predicate != nil {
		return e.cfg.Predicate(name, tuple)
	}
	return sim.Verdict(e.cfg.Seed, name, tuple, e.truthThreshold[name])
}

// runSerial is the one-goroutine execution path: each tuple walks the
// execution graph in topological order, exactly like sim.ReferenceStream
// but observing the estimators.
func (e *Executor) runSerial(first, n uint64) (emitted uint64) {
	app := e.plan.App
	eg := e.plan.Graph
	g := eg.Graph()
	topo := eg.Topo()
	nv := app.N()
	pass := make([]bool, nv)
	for t := first; t < first+n; t++ {
		for _, v := range topo {
			alive := true
			for _, p := range g.Pred(v) {
				if !pass[p] {
					alive = false
					break
				}
			}
			if alive {
				name := app.Name(v)
				passed := e.verdict(name, t)
				e.estimatorFor(name).observe(passed, e.truthCost[name])
				alive = passed
			}
			pass[v] = alive
		}
		ok := true
		for v := 0; v < nv; v++ {
			if g.OutDegree(v) == 0 && !pass[v] {
				ok = false
				break
			}
		}
		if nv > 0 && ok {
			emitted++
		}
	}
	return emitted
}

// runPipelined is the stage-network execution path: one goroutine per
// service, wired by bounded channels along the execution graph's edges.
// A tuple's identity is implicit in channel position — every stage
// consumes exactly one alive-bit per input edge and produces one per
// output edge per tuple, so the network is a uniform-rate Kahn process
// network over a DAG: deadlock-free for any buffer ≥ 1, and every
// estimator is touched by exactly one goroutine, in tuple order. The
// counts are therefore bit-identical to runSerial's.
func (e *Executor) runPipelined(first, n uint64) (emitted uint64) {
	app := e.plan.App
	eg := e.plan.Graph
	g := eg.Graph()
	nv := app.N()
	if nv == 0 {
		return 0
	}

	// One channel per graph edge, plus one per exit service into the
	// emit collector. Edge channels are addressed [to][i] matching
	// Pred(to) order and [from][j] matching Succ(from) order.
	ins := make([][]chan bool, nv)
	outs := make([][]chan bool, nv)
	chans := make(map[[2]int]chan bool, g.EdgeCount())
	for v := 0; v < nv; v++ {
		for _, u := range g.Pred(v) {
			ch := make(chan bool, e.cfg.Buffer)
			chans[[2]int{u, v}] = ch
			ins[v] = append(ins[v], ch)
		}
	}
	var sinkChans []chan bool
	for v := 0; v < nv; v++ {
		for _, w := range g.Succ(v) {
			outs[v] = append(outs[v], chans[[2]int{v, w}])
		}
		if g.OutDegree(v) == 0 {
			ch := make(chan bool, e.cfg.Buffer)
			outs[v] = append(outs[v], ch)
			sinkChans = append(sinkChans, ch)
		}
	}

	// Resolve the per-stage estimators on this goroutine: the stage
	// goroutines then each own exactly one estimator for the round, so
	// no estimator (and no map) is ever touched concurrently.
	sts := make([]*estimator, nv)
	for v := 0; v < nv; v++ {
		sts[v] = e.estimatorFor(app.Name(v))
	}

	var wg sync.WaitGroup
	for v := 0; v < nv; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			name := app.Name(v)
			in, out := ins[v], outs[v]
			st := sts[v]
			cost := e.truthCost[name]
			for i := uint64(0); i < n; i++ {
				alive := true
				for _, ch := range in {
					if a := <-ch; !a {
						alive = false
					}
				}
				if alive {
					passed := e.verdict(name, first+i)
					st.observe(passed, cost)
					alive = passed
				}
				for _, ch := range out {
					ch <- alive
				}
			}
		}(v)
	}

	collectDone := make(chan uint64, 1)
	go func() {
		var em uint64
		for i := uint64(0); i < n; i++ {
			ok := true
			for _, ch := range sinkChans {
				if a := <-ch; !a {
					ok = false
				}
			}
			if ok {
				em++
			}
		}
		collectDone <- em
	}()

	wg.Wait()
	return <-collectDone
}

// estimatorFor returns the estimator of a service name, creating it for
// names first seen after a hot swap (canonicalization never renames, so
// this only happens for instances grown out-of-band).
func (e *Executor) estimatorFor(name string) *estimator {
	st := e.estimators[name]
	if st == nil {
		st = &estimator{name: name}
		e.estimators[name] = st
	}
	return st
}

// adoptExternal drains pending subscription events and adopts the last
// externally triggered re-plan: the event's drifted instance is planned
// (a cache hit on the service) and hot-swapped in. The executor's own
// PATCH echo — an event whose NewHash is already the active hash — is
// ignored. Returns whether a swap happened.
func (e *Executor) adoptExternal(ctx context.Context, events <-chan Replan, report *Report, tuple uint64, logger *slog.Logger) bool {
	swapped := false
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return swapped
			}
			if ev.NewHash == e.plan.Hash {
				continue // own PATCH echo
			}
			if ev.App == nil {
				logger.Warn("exec.replan.skipped", "new_hash", ev.NewHash, "reason", "event carried no instance")
				continue
			}
			span := e.span("exec.replan", e.cfg.RequestID)
			t0 := time.Now()
			p, err := e.cfg.Planner.Plan(ctx, ev.App, e.cfg.RequestID)
			if err != nil {
				logger.Warn("exec.replan.failed", "new_hash", ev.NewHash, "err", err)
				span.SetError(err.Error())
				span.End(500)
				continue
			}
			span.Observe(obs.PhaseSolve, time.Since(t0))
			span.SetHash(p.Hash, "")
			span.SetOutcome("adopted", "subscribe")
			span.End(200)
			report.Episodes = append(report.Episodes, DriftEpisode{
				Round:    report.Rounds,
				Tuple:    tuple,
				Source:   "subscribe",
				OldHash:  e.plan.Hash,
				NewHash:  p.Hash,
				OldValue: ev.OldValue,
				NewValue: ev.NewValue,
			})
			logger.Info("exec.swap", "source", "subscribe", "old_hash", e.plan.Hash, "new_hash", p.Hash)
			e.plan = p
			report.ReplanEvents++
			report.Swaps++
			if e.m != nil {
				e.m.replans.Inc()
				e.m.swaps.Inc()
			}
			swapped = true
		default:
			return swapped
		}
	}
}

// controller compares each confident estimator against the declared
// values of the active plan and, when any departs beyond the threshold,
// PATCHes the instance once with every drifted estimate and hot-swaps to
// the re-planned schedule. Declaring the empirical values is the
// hysteresis: after the swap the estimates sit exactly on the declared
// values, so the controller stays quiet until the stream moves again.
// Services are examined in name order — part of the determinism contract.
func (e *Executor) controller(ctx context.Context, report *Report, tuple uint64, logger *slog.Logger) (bool, error) {
	app := e.plan.App
	var updates []Update
	names := make([]string, 0, app.N())
	for v := 0; v < app.N(); v++ {
		names = append(names, app.Name(v))
	}
	sort.Strings(names)
	for _, name := range names {
		est := e.estimators[name]
		if est == nil || !est.confident(e.cfg.MinSamples) {
			continue
		}
		v := app.IndexOf(name)
		if v < 0 {
			continue
		}
		var up Update
		declSel := app.Selectivity(v)
		if declSel.Less(rat.One) {
			// An expanding (σ ≥ 1) service never drops tuples, so the
			// pass-fraction estimator carries no drift signal for it.
			if emp, ok := est.selectivity(); ok && drifted(emp, declSel, e.cfg.Threshold) {
				up.Selectivity = &emp
			}
		}
		declCost := app.Cost(v)
		if mean, ok := est.meanCost(); ok && drifted(mean, declCost, e.cfg.Threshold) {
			up.Cost = &mean
		}
		if up.Selectivity != nil || up.Cost != nil {
			up.Service = name
			updates = append(updates, up)
		}
	}
	if len(updates) == 0 {
		return false, nil
	}

	span := e.span("exec.drift", e.cfg.RequestID)
	t0 := time.Now()
	p, err := e.cfg.Planner.Drift(ctx, e.plan.Hash, e.plan.App, updates, e.cfg.RequestID)
	if err != nil {
		span.SetError(err.Error())
		if errors.Is(err, ErrUpstreamBusy) {
			// The service shed the PATCH even after the client's bounded
			// backoff. The estimators keep their samples, so the drift is
			// still visible next measurement round — retry then rather
			// than failing the whole run over load shedding.
			span.End(503)
			logger.Warn("exec.drift.deferred", "hash", e.plan.Hash, "err", err)
			if e.m != nil {
				e.m.driftDeferred.Inc()
			}
			return false, nil
		}
		span.End(500)
		return false, fmt.Errorf("exec: drift patch on %s: %w", e.plan.Hash, err)
	}
	span.Observe(obs.PhaseSolve, time.Since(t0))
	span.SetHash(p.Hash, "")
	span.SetOutcome("patched", "controller")
	span.End(200)

	ep := DriftEpisode{
		Round:    report.Rounds,
		Tuple:    tuple,
		Source:   "controller",
		OldHash:  e.plan.Hash,
		NewHash:  p.Hash,
		Updates:  updates,
		OldValue: e.plan.Value,
		NewValue: p.Value,
	}
	report.Episodes = append(report.Episodes, ep)
	logger.Info("exec.swap", "source", "controller",
		"old_hash", ep.OldHash, "new_hash", ep.NewHash,
		"updates", len(updates),
		"old_value", ep.OldValue.String(), "new_value", ep.NewValue.String())
	e.plan = p
	report.Patches++
	report.Swaps++
	if e.m != nil {
		e.m.patches.Inc()
		e.m.swaps.Inc()
	}
	return true, nil
}

// serviceStats snapshots the estimators against the final declared
// instance, name-sorted.
func (e *Executor) serviceStats() []ServiceStats {
	app := e.plan.App
	names := make([]string, 0, len(e.estimators))
	for name := range e.estimators {
		names = append(names, name)
	}
	sort.Strings(names)
	stats := make([]ServiceStats, 0, len(names))
	for _, name := range names {
		est := e.estimators[name]
		s := ServiceStats{Name: name, In: est.in, Out: est.out, EWMACost: est.ewma}
		if sel, ok := est.selectivity(); ok {
			s.EmpSelectivity = sel
		}
		if mean, ok := est.meanCost(); ok {
			s.MeanCost = mean
		}
		if v := app.IndexOf(name); v >= 0 {
			s.DeclSelectivity = app.Selectivity(v)
			s.DeclCost = app.Cost(v)
		}
		stats = append(stats, s)
	}
	return stats
}
