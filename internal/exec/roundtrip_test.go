package exec

// The closed-loop round trip the data plane exists for, against a real
// filterd HTTP surface (httptest + service.Handler): plan → execute →
// observe → PATCH → replan SSE event → hot swap. Run with -race; the
// executor, the SSE consumer, and the service share the process.

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/rat"
	"repro/internal/service"
	"repro/internal/workflow"
)

func newFilterd(t *testing.T) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(service.Handler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// countReplanEvents subscribes to hash over raw SSE and reports how many
// replan frames arrive before the connection is closed by cancel.
func countReplanEvents(t *testing.T, baseURL, hash string) (count func() int, stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/v1/subscribe/"+hash, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	events := make(chan struct{}, 64)
	ready := make(chan struct{})
	go func() {
		defer resp.Body.Close()
		r := bufio.NewReader(resp.Body)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, ": subscribed") {
				close(ready)
			}
			if strings.HasPrefix(line, "event: replan") {
				events <- struct{}{}
			}
		}
	}()
	<-ready
	return func() int { return len(events) }, cancel
}

// TestRoundTripControllerDrift is the acceptance scenario: injected cost
// drift on a bottleneck service makes the executor's estimates depart the
// declared instance, and the closed loop reacts with exactly one PATCH,
// exactly one replan SSE event, and a hot swap to a schedule bit-identical
// to planning the drifted instance directly — with no tuple loss.
func TestRoundTripControllerDrift(t *testing.T) {
	_, ts := newFilterd(t)
	client := &Client{BaseURL: ts.URL, Params: ClientParams{Model: "overlap", Objective: "period"}}
	ctx := context.Background()

	// The declared instance plans around cost ~1 services; the stream
	// charges service b cost 40 — the drifted bottleneck, so the re-plan
	// provably changes the objective (and therefore publishes an event).
	app, err := workflow.New([]workflow.Service{
		{Name: "a", Cost: rat.I(2), Selectivity: rat.New(1, 2)},
		{Name: "b", Cost: rat.One, Selectivity: rat.New(3, 4)},
		{Name: "c", Cost: rat.I(3), Selectivity: rat.New(1, 3)},
		{Name: "d", Cost: rat.New(1, 2), Selectivity: rat.New(4, 5)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	costB := rat.I(40)

	initial, err := client.Plan(ctx, app, "")
	if err != nil {
		t.Fatal(err)
	}
	replans, stopSub := countReplanEvents(t, ts.URL, initial.Hash)
	defer stopSub()

	// MinSamples 256 and threshold 1/4 put Bernoulli sampling noise ~8σ
	// away from a selectivity trigger, so the only drift episode is the
	// injected one.
	ex, err := New(Config{
		App: app, Planner: client, Seed: 11, Workers: 4,
		Truth:  map[string]Truth{"b": {Cost: &costB}},
		Window: 512, MinSamples: 256, Threshold: rat.New(1, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := ex.Run(ctx, 4096)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one PATCH, from the controller; the executor never adopts
	// its own echo from the subscription stream.
	if report.Patches != 1 || report.ReplanEvents != 0 || report.Swaps != 1 {
		t.Fatalf("patches=%d replans=%d swaps=%d, want 1/0/1\n%s",
			report.Patches, report.ReplanEvents, report.Swaps, describeReport(report))
	}
	ep := report.Episodes[0]
	if ep.Source != "controller" || ep.OldHash != initial.Hash || ep.NewHash != report.Hash {
		t.Fatalf("episode %+v inconsistent with run", ep)
	}
	if ep.NewValue.Equal(ep.OldValue) {
		t.Fatal("cost drift on the bottleneck did not move the objective")
	}
	// The PATCH carried b's measured cost exactly (the virtual clock
	// charges a constant, so the mean is exact) — the hysteresis that
	// keeps episode count at one.
	var sawB bool
	for _, u := range ep.Updates {
		if u.Service == "b" {
			sawB = true
			if u.Cost == nil || !u.Cost.Equal(costB) {
				t.Fatalf("b's update %+v, want cost %s", u, costB)
			}
		}
	}
	if !sawB {
		t.Fatalf("updates %+v missing the drifted service", ep.Updates)
	}

	// No tuple loss across the swap.
	if report.Tuples != 4096 {
		t.Fatalf("tuples %d, want 4096", report.Tuples)
	}

	// The hot-swapped schedule is bit-identical to planning the drifted
	// instance directly (what `filterplan` would print for it).
	direct, err := client.Plan(ctx, report.App, "")
	if err != nil {
		t.Fatal(err)
	}
	if direct.Hash != report.Hash || !bytes.Equal(direct.Schedule, report.Schedule) {
		t.Fatalf("swapped schedule diverges from direct plan of the drifted instance:\n%s\nvs\n%s",
			report.Schedule, direct.Schedule)
	}

	// Exactly one replan event crossed the SSE surface.
	deadline := time.Now().Add(2 * time.Second)
	for replans() < 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := replans(); got != 1 {
		t.Fatalf("observed %d replan SSE events, want exactly 1", got)
	}
}

// TestRoundTripExternalReplanAdoption covers the other half of the
// subscribe path: a PATCH the executor did NOT issue arrives through its
// SSE subscription mid-run and is adopted at a round boundary.
func TestRoundTripExternalReplanAdoption(t *testing.T) {
	_, ts := newFilterd(t)
	client := &Client{BaseURL: ts.URL, Params: ClientParams{Model: "overlap", Objective: "period"}}
	ctx := context.Background()

	app, err := workflow.New([]workflow.Service{
		{Name: "a", Cost: rat.I(2), Selectivity: rat.New(1, 2)},
		{Name: "b", Cost: rat.One, Selectivity: rat.New(3, 4)},
		{Name: "c", Cost: rat.I(3), Selectivity: rat.New(1, 3)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := client.Plan(ctx, app, "")
	if err != nil {
		t.Fatal(err)
	}

	// Pace the run to ~1.5s so the external PATCH lands mid-stream; the
	// estimates match the declared values (no Truth), so the controller
	// stays silent and the subscribe path is isolated.
	ex, err := New(Config{
		App: app, Planner: client, Seed: 5, Workers: 2,
		Rate: 2000, Window: 250, Threshold: neverDrift(),
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		report *Report
		err    error
	}
	done := make(chan result, 1)
	go func() {
		r, err := ex.Run(ctx, 3000)
		done <- result{r, err}
	}()

	time.Sleep(300 * time.Millisecond)
	cost := rat.I(99)
	external, err := client.Drift(ctx, initial.Hash, initial.App,
		[]Update{{Service: initial.App.Name(0), Cost: &cost}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if external.Hash == initial.Hash {
		t.Fatal("external drift did not re-hash the instance")
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	report := res.report
	if report.ReplanEvents != 1 || report.Patches != 0 || report.Swaps != 1 {
		t.Fatalf("replans=%d patches=%d swaps=%d, want 1/0/1\n%s",
			report.ReplanEvents, report.Patches, report.Swaps, describeReport(report))
	}
	ep := report.Episodes[0]
	if ep.Source != "subscribe" || ep.OldHash != initial.Hash || ep.NewHash != external.Hash {
		t.Fatalf("adoption episode %+v, want %s -> %s via subscribe", ep, initial.Hash, external.Hash)
	}
	if report.Hash != external.Hash || report.Tuples != 3000 {
		t.Fatalf("final hash %s tuples %d, want %s and 3000", report.Hash, report.Tuples, external.Hash)
	}
}
