package exec

// The client's 429/503 discipline: Retry-After is honored (bounded,
// jittered), a shedding service is retried in place, and exhaustion
// surfaces as ErrUpstreamBusy — the marker the controller uses to defer
// a drift PATCH to the next measurement round instead of failing the
// run.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryWaitHonorsRetryAfter: the advertised seconds win over the
// ladder, are capped at maxRetryWait, and malformed headers fall back to
// the doubling ladder. Jitter adds strictly less than 100ms.
func TestRetryWaitHonorsRetryAfter(t *testing.T) {
	cases := []struct {
		header  string
		attempt int
		min     time.Duration
	}{
		{"2", 0, 2 * time.Second},                   // advertised wait
		{"9999", 0, maxRetryWait},                   // capped
		{"", 0, 100 * time.Millisecond},             // ladder base
		{"", 2, 400 * time.Millisecond},             // ladder doubles
		{"not-a-number", 1, 200 * time.Millisecond}, // malformed → ladder
	}
	for _, tc := range cases {
		got := retryWait(tc.header, tc.attempt)
		if got < tc.min || got >= tc.min+100*time.Millisecond {
			t.Errorf("retryWait(%q, %d) = %v, want [%v, %v)",
				tc.header, tc.attempt, got, tc.min, tc.min+100*time.Millisecond)
		}
	}
}

// TestDoRetriesThroughBackpressure: a service shedding two requests and
// then answering yields a success — the client absorbed the 429s.
func TestDoRetriesThroughBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shedding", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok": true}`))
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.do(context.Background(), http.MethodPost, "/v1/plan", struct{}{}, "rid", &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Error("decoded response lost")
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (two shed, one served)", n)
	}
}

// TestDoExhaustionIsUpstreamBusy: a service that never stops shedding
// fails the call with ErrUpstreamBusy after the bounded retries — not a
// generic error, so the caller can hold state and re-issue later.
func TestDoExhaustionIsUpstreamBusy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL}
	err := c.do(context.Background(), http.MethodPatch, "/v1/instance/x", struct{}{}, "rid", &struct{}{})
	if err == nil {
		t.Fatal("exhausted backoff returned nil")
	}
	if !errors.Is(err, ErrUpstreamBusy) {
		t.Fatalf("err %v does not wrap ErrUpstreamBusy", err)
	}
	if n := calls.Load(); n != int64(busyRetries)+1 {
		t.Errorf("server saw %d calls, want %d", n, busyRetries+1)
	}
}

// TestDoBackoffRespectsContext: a context canceled mid-backoff aborts
// the wait instead of sleeping it out.
func TestDoBackoffRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "shedding", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	c := &Client{BaseURL: ts.URL}
	start := time.Now()
	err := c.do(ctx, http.MethodPost, "/v1/plan", struct{}{}, "rid", &struct{}{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v — the 30s Retry-After was slept out", elapsed)
	}
}
