package exec

// Online per-service estimators: the executor measures what the stream
// actually does — how many tuples each service consumed and passed, and
// how long each evaluation took — and distils that into empirical
// selectivity and cost estimates the drift controller compares against
// the declared instance.
//
// Two disciplines coexist. Selectivity is estimated exactly: emp = out/in
// as a rational, because the verdict substrate (internal/sim) is itself
// exact and the drift PATCH wants rationals. Cost keeps two views: the
// exact mean of the virtual per-tuple costs charged by the harness
// (deterministic, what the controller uses) and a float64 EWMA of the
// same samples (the observational smoother a real deployment would run;
// deterministic here because samples arrive in a fixed order). Both are
// windowed by sample count with a confidence gate: an estimator votes for
// drift only after MinSamples tuples, preventing the controller from
// PATCHing the control plane off early-stream noise.

import (
	"repro/internal/rat"
)

// ewmaAlpha is the smoothing factor of the observational cost EWMA:
// 2/(N+1) for an N=31 sample horizon.
const ewmaAlpha = 1.0 / 16

// estimator accumulates the per-service stream measurements.
type estimator struct {
	name string

	in  uint64 // tuples evaluated (all predecessors passed)
	out uint64 // tuples passed

	costSum rat.Rat // Σ virtual per-tuple cost (exact)
	ewma    float64 // observational cost smoother
	primed  bool    // ewma seeded with the first sample
}

// observe records one tuple evaluation: whether it passed and the virtual
// cost charged for it.
func (e *estimator) observe(passed bool, cost rat.Rat) {
	e.in++
	if passed {
		e.out++
	}
	e.costSum = e.costSum.Add(cost)
	f, _ := cost.Big().Float64()
	if !e.primed {
		e.ewma, e.primed = f, true
	} else {
		e.ewma += ewmaAlpha * (f - e.ewma)
	}
}

// selectivity returns the empirical selectivity out/in, exact. ok is
// false before any tuple was evaluated.
func (e *estimator) selectivity() (rat.Rat, bool) {
	if e.in == 0 {
		return rat.Zero, false
	}
	return rat.New(int64(e.out), int64(e.in)), true
}

// meanCost returns the exact mean virtual cost per evaluated tuple. ok is
// false before any tuple was evaluated.
func (e *estimator) meanCost() (rat.Rat, bool) {
	if e.in == 0 {
		return rat.Zero, false
	}
	return e.costSum.Div(rat.I(int64(e.in))), true
}

// confident reports whether the estimator has seen enough tuples for the
// drift controller to act on it.
func (e *estimator) confident(minSamples uint64) bool {
	return e.in >= minSamples
}

// drifted reports whether emp departs decl by more than the relative
// threshold: |emp - decl| > threshold · decl. A zero declared value only
// counts as drifted when the empirical value is non-zero.
func drifted(emp, decl, threshold rat.Rat) bool {
	if decl.IsZero() {
		return !emp.IsZero()
	}
	diff := emp.Sub(decl)
	if diff.Sign() < 0 {
		diff = diff.Neg()
	}
	return diff.Greater(threshold.Mul(decl))
}
