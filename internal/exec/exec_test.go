package exec

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/workflow"
)

// testApp is a 5-service mixed instance: mostly filtering, one expanding
// service, distinct costs so plans have a clear bottleneck.
func testApp(t *testing.T) *workflow.App {
	t.Helper()
	app, err := workflow.New([]workflow.Service{
		{Name: "a", Cost: rat.I(2), Selectivity: rat.New(1, 2)},
		{Name: "b", Cost: rat.One, Selectivity: rat.New(3, 4)},
		{Name: "c", Cost: rat.I(3), Selectivity: rat.New(1, 3)},
		{Name: "d", Cost: rat.New(1, 2), Selectivity: rat.New(4, 5)},
		{Name: "e", Cost: rat.One, Selectivity: rat.New(3, 2)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// localPlanner embeds a fresh planning service; the cleanup closes it.
func localPlanner(t *testing.T) *Local {
	t.Helper()
	srv := service.New(service.Config{})
	t.Cleanup(srv.Close)
	return &Local{Server: srv, Params: service.Request{
		Model: plan.Overlap, Objective: solve.PeriodObjective,
	}}
}

// neverDrift is a Threshold large enough that no estimate can depart the
// declared values far enough to trigger a PATCH.
func neverDrift() rat.Rat { return rat.I(1 << 20) }

// TestExecutorMatchesReferenceStream is the correctness oracle: with no
// injected drift and drift control silenced, both execution paths (serial
// and pipelined) must reproduce sim.ReferenceStream's counters exactly —
// same verdict function, same graph, independent evaluation order.
func TestExecutorMatchesReferenceStream(t *testing.T) {
	app := testApp(t)
	planner := localPlanner(t)
	const n, seed = 2048, uint64(3)

	p, err := planner.Plan(context.Background(), app, "")
	if err != nil {
		t.Fatal(err)
	}
	want := sim.ReferenceStream(p.App, p.Graph, seed, 0, n, nil)

	for _, workers := range []int{1, 4} {
		ex, err := New(Config{
			App: app, Planner: planner, Seed: seed,
			Workers: workers, Threshold: neverDrift(),
		})
		if err != nil {
			t.Fatal(err)
		}
		report, err := ex.Run(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		if report.Tuples != n || report.Emitted != want.Emitted {
			t.Fatalf("workers=%d: tuples %d emitted %d, want %d and %d",
				workers, report.Tuples, report.Emitted, n, want.Emitted)
		}
		if report.Swaps != 0 || len(report.Episodes) != 0 {
			t.Fatalf("workers=%d: unexpected re-plans: %+v", workers, report.Episodes)
		}
		for _, s := range report.Services {
			if s.In != want.In[s.Name] || s.Out != want.Out[s.Name] {
				t.Fatalf("workers=%d service %s: in/out %d/%d, reference %d/%d",
					workers, s.Name, s.In, s.Out, want.In[s.Name], want.Out[s.Name])
			}
		}
	}
}

// describeReport flattens everything inside the determinism contract —
// counters, final plan, estimator snapshot, and the full drift episode
// sequence — into a comparable string. Wall-clock fields are excluded.
func describeReport(r *Report) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "tuples=%d emitted=%d rounds=%d patches=%d replans=%d swaps=%d\n",
		r.Tuples, r.Emitted, r.Rounds, r.Patches, r.ReplanEvents, r.Swaps)
	fmt.Fprintf(&b, "hash=%s value=%s period=%s\nschedule=%s\n", r.Hash, r.Value, r.Period, r.Schedule)
	for _, s := range r.Services {
		fmt.Fprintf(&b, "svc %s in=%d out=%d emp=%s decl=%s mean=%s ewma=%x declc=%s\n",
			s.Name, s.In, s.Out, s.EmpSelectivity, s.DeclSelectivity, s.MeanCost, s.EWMACost, s.DeclCost)
	}
	for _, ep := range r.Episodes {
		fmt.Fprintf(&b, "episode round=%d tuple=%d source=%s %s->%s value %s->%s\n",
			ep.Round, ep.Tuple, ep.Source, ep.OldHash, ep.NewHash, ep.OldValue, ep.NewValue)
		for _, u := range ep.Updates {
			fmt.Fprintf(&b, "  update %s sel=%v cost=%v\n", u.Service, u.Selectivity, u.Cost)
		}
	}
	return b.String()
}

// TestExecutorDeterministicAcrossWorkers pins the determinism contract
// under drift: a run with injected selectivity AND cost drift produces a
// bit-identical report — verdicts, estimator values, drift-trigger
// sequence, final schedule — whether tuples run serially or through the
// pipelined stage network, across repeated runs.
func TestExecutorDeterministicAcrossWorkers(t *testing.T) {
	selC := rat.New(2, 3)  // declared 1/3: strong upward drift
	costA := rat.New(9, 2) // declared 2: strong upward drift
	truth := map[string]Truth{
		"c": {Selectivity: &selC},
		"a": {Cost: &costA},
	}
	run := func(workers int) string {
		app := testApp(t)
		ex, err := New(Config{
			App: app, Planner: localPlanner(t), Seed: 7,
			Workers: workers, Truth: truth,
			Window: 256, MinSamples: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		report, err := ex.Run(context.Background(), 4096)
		if err != nil {
			t.Fatal(err)
		}
		return describeReport(report)
	}
	serial := run(1)
	if serial != run(1) {
		t.Fatal("two serial runs diverged")
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d diverged from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
	// The injected drift actually exercised the loop.
	if !bytes.Contains([]byte(serial), []byte("source=controller")) {
		t.Fatalf("no controller episode in the drifted run:\n%s", serial)
	}
}

// TestPredicateOverridesSyntheticVerdicts: a user predicate replaces the
// Bernoulli draw and remains subject to the same counting.
func TestPredicateOverridesSyntheticVerdicts(t *testing.T) {
	app, err := workflow.New([]workflow.Service{
		{Name: "only", Cost: rat.One, Selectivity: rat.New(1, 2)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := New(Config{
		App: app, Planner: localPlanner(t),
		Threshold: neverDrift(),
		Predicate: func(name string, tuple uint64) bool { return tuple%4 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	report, err := ex.Run(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	s := report.Services[0]
	if s.In != n || s.Out != n/4 || report.Emitted != n/4 {
		t.Fatalf("predicate counts: in=%d out=%d emitted=%d, want %d/%d/%d",
			s.In, s.Out, report.Emitted, n, n/4, n/4)
	}
	if !s.EmpSelectivity.Equal(rat.New(1, 4)) {
		t.Fatalf("empirical selectivity %s, want 1/4", s.EmpSelectivity)
	}
}

// TestNewValidatesConfig pins the constructor's error surface.
func TestNewValidatesConfig(t *testing.T) {
	app := testApp(t)
	planner := localPlanner(t)
	bad := rat.New(3, 2)
	neg := rat.New(-1, 2)
	zero := rat.Zero
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil app", Config{Planner: planner}},
		{"nil planner", Config{App: app}},
		{"unknown truth service", Config{App: app, Planner: planner,
			Truth: map[string]Truth{"ghost": {}}}},
		{"selectivity above 1", Config{App: app, Planner: planner,
			Truth: map[string]Truth{"a": {Selectivity: &bad}}}},
		{"negative selectivity", Config{App: app, Planner: planner,
			Truth: map[string]Truth{"a": {Selectivity: &neg}}}},
		{"zero cost", Config{App: app, Planner: planner,
			Truth: map[string]Truth{"a": {Cost: &zero}}}},
		{"negative window", Config{App: app, Planner: planner, Window: -1}},
		{"negative threshold", Config{App: app, Planner: planner, Threshold: neg}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
	if _, err := New(Config{App: app, Planner: planner}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
