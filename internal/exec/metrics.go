package exec

// The executor's observability surface: filterexec_* instruments on the
// shared metrics registry, scraped through the same /metrics endpoint as
// the control plane's filterd_* families when cmd/filterexec runs with
// -debug-addr, and asserted on directly in tests otherwise.

import (
	"repro/internal/metrics"
)

// execMetrics bundles the executor's instruments.
type execMetrics struct {
	tuples        *metrics.Counter
	emitted       *metrics.Counter
	rounds        *metrics.Counter
	patches       *metrics.Counter
	replans       *metrics.Counter
	driftDeferred *metrics.Counter
	swaps         *metrics.Counter
	throughput    *metrics.Gauge
	occupancy     *metrics.GaugeVec
}

// newExecMetrics registers the filterexec_* instruments on r. The
// registry panics on duplicate names, so at most one Executor per
// process may carry a registry (cmd/filterexec's arrangement).
func newExecMetrics(r *metrics.Registry) *execMetrics {
	return &execMetrics{
		tuples: r.Counter("filterexec_tuples_total",
			"Tuples pushed through the execution graph."),
		emitted: r.Counter("filterexec_tuples_emitted_total",
			"Tuples alive at every exit service (stream survivors)."),
		rounds: r.Counter("filterexec_rounds_total",
			"Execution rounds completed."),
		patches: r.Counter("filterexec_drift_patches_total",
			"Drift PATCHes issued by the controller."),
		replans: r.Counter("filterexec_replan_events_total",
			"Externally triggered re-plans adopted from the subscription stream."),
		driftDeferred: r.Counter("filterexec_drift_deferred_total",
			"Drift PATCHes deferred to the next round because filterd shed load."),
		swaps: r.Counter("filterexec_schedule_swaps_total",
			"Schedule hot swaps (controller PATCHes plus adopted re-plans)."),
		throughput: r.Gauge("filterexec_throughput_tuples_per_second",
			"Wall-clock tuple throughput of the last completed run."),
		occupancy: r.GaugeVec("filterexec_service_occupancy",
			"Fraction of the stream reaching each service (evaluated / completed tuples).",
			"service"),
	}
}

// observeOccupancy publishes each service's stream occupancy: the
// fraction of completed tuples that reached (were evaluated by) it.
func (m *execMetrics) observeOccupancy(ests map[string]*estimator, completed uint64) {
	if completed == 0 {
		return
	}
	for name, est := range ests {
		m.occupancy.With(name).Set(float64(est.in) / float64(completed))
	}
}
