package exec

// The executor's view of the control plane. A Planner answers three
// questions — what is the plan for this instance, what is the re-plan
// after these measured updates, and what re-plans did someone else
// trigger — and two implementations exist: Local wraps an in-process
// service.Server (cmd/filterexec's embedded mode and the tests), Client
// (client.go) speaks the filterd HTTP API including the SSE subscribe
// stream with Last-Event-ID resume.

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/service"
	"repro/internal/workflow"
)

// Plan is the executor-facing slice of a planning response: the canonical
// instance the plan was computed from (declared costs and selectivities),
// the execution graph over its indices, and the schedule.
type Plan struct {
	Hash     string
	App      *workflow.App
	Graph    *plan.ExecGraph
	Value    rat.Rat
	Period   rat.Rat
	Schedule json.RawMessage
}

// Update is one measured drift: empirical values for a named service.
// Nil fields are unchanged.
type Update struct {
	Service     string
	Cost        *rat.Rat
	Selectivity *rat.Rat
}

// Replan is one external re-plan notification delivered by Subscribe:
// the subscribed hash was PATCHed into NewHash. App is the drifted
// instance when the event carried it (planning it is a cache hit on the
// service), nil otherwise.
type Replan struct {
	ID       uint64
	Hash     string
	NewHash  string
	OldValue rat.Rat
	NewValue rat.Rat
	App      *workflow.App
}

// Planner is the executor's control-plane client.
type Planner interface {
	// Plan plans app (or serves it from cache) and returns the current
	// plan. requestID, when non-empty, correlates the control-plane
	// request with the executor's round spans.
	Plan(ctx context.Context, app *workflow.App, requestID string) (Plan, error)
	// Drift reports measured updates against a previously planned hash
	// and returns the re-planned schedule. app is the currently declared
	// instance the updates apply to — the HTTP client needs it to
	// reconstruct the drifted instance, since the wire response carries
	// only names.
	Drift(ctx context.Context, hash string, app *workflow.App, updates []Update, requestID string) (Plan, error)
	// Subscribe streams re-plan events for hash until ctx ends. The
	// returned channel is closed when the subscription ends.
	Subscribe(ctx context.Context, hash string) (<-chan Replan, error)
}

// Local is the in-process Planner: an embedded service.Server plus the
// fixed solve parameters every request uses. It is what cmd/filterexec
// runs without -url, and what the tests wire the executor to.
type Local struct {
	Server *service.Server
	// Params carries the solve parameters (model, objective, method,
	// family, seed, ...); its App field is replaced per call.
	Params service.Request
}

// Plan implements Planner.
func (l *Local) Plan(ctx context.Context, app *workflow.App, requestID string) (Plan, error) {
	req := l.Params
	req.App = app
	resp, err := l.Server.PlanContext(ctx, req)
	if err != nil {
		return Plan{}, err
	}
	return planFromResponse(resp)
}

// Drift implements Planner.
func (l *Local) Drift(ctx context.Context, hash string, app *workflow.App, updates []Update, requestID string) (Plan, error) {
	ups := make([]service.Update, len(updates))
	for i, u := range updates {
		ups[i] = service.Update{Service: u.Service, Cost: u.Cost, Selectivity: u.Selectivity}
	}
	report, err := l.Server.DriftContext(ctx, hash, ups, l.Params)
	if err != nil {
		return Plan{}, err
	}
	return planFromResponse(report.Response)
}

// Subscribe implements Planner.
func (l *Local) Subscribe(ctx context.Context, hash string) (<-chan Replan, error) {
	sub, cancel := l.Server.Subscribe(hash)
	out := make(chan Replan, 16)
	go func() {
		defer cancel()
		defer close(out)
		for {
			select {
			case <-ctx.Done():
				return
			case ev := <-sub.Events():
				select {
				case out <- Replan{
					ID:       ev.ID,
					Hash:     ev.Hash,
					NewHash:  ev.NewHash,
					OldValue: ev.OldValue,
					NewValue: ev.NewValue,
					App:      ev.NewApp,
				}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out, nil
}

// planFromResponse converts a service response into the executor's Plan.
func planFromResponse(resp service.Response) (Plan, error) {
	sched, err := json.Marshal(resp.Solution.Sched.List)
	if err != nil {
		return Plan{}, fmt.Errorf("exec: encoding schedule: %w", err)
	}
	return Plan{
		Hash:     resp.Hash,
		App:      resp.Instance.App(),
		Graph:    resp.Solution.Graph,
		Value:    resp.Solution.Value,
		Period:   resp.Solution.Sched.List.Period(),
		Schedule: sched,
	}, nil
}
