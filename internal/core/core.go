// Package core ties the paper's contribution together: a one-stop Planner
// that maps filtering applications onto homogeneous platforms under the
// three communication models, and the paper's 12-entry complexity matrix as
// structured data, with each entry pointing at the algorithm implementing
// it in this repository.
package core

import (
	"fmt"

	"repro/internal/oplist"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/workflow"
)

// Planner solves mapping problems end to end with configurable effort.
type Planner struct {
	// Solve configures the plan-level search.
	Solve solve.Options
}

// NewPlanner returns a planner with default options (automatic method
// choice: exact enumeration on small instances, heuristics above).
func NewPlanner() *Planner { return &Planner{} }

// MinimizePeriod returns a full plan (execution graph + operation list)
// minimizing the period of app under model m.
func (p *Planner) MinimizePeriod(app *workflow.App, m plan.Model) (solve.Solution, error) {
	return solve.MinPeriod(app, m, p.Solve)
}

// MinimizeLatency returns a full plan minimizing the latency of app under
// model m.
func (p *Planner) MinimizeLatency(app *workflow.App, m plan.Model) (solve.Solution, error) {
	return solve.MinLatency(app, m, p.Solve)
}

// Orchestrate computes an operation list for a fixed execution graph: the
// paper's "given an execution graph, compute the period/latency" problem.
func (p *Planner) Orchestrate(eg *plan.ExecGraph, m plan.Model, obj solve.Objective) (orchestrate.Result, error) {
	w := eg.Weighted()
	if obj == solve.PeriodObjective {
		return orchestrate.Period(w, m, p.Solve.Orch)
	}
	return orchestrate.Latency(w, m, p.Solve.Orch)
}

// EvaluatePlan validates an operation list under model m and reports its
// period and latency.
func (p *Planner) EvaluatePlan(l *oplist.List, m plan.Model) (period, latency rat.Rat, err error) {
	if err := l.Validate(m); err != nil {
		return rat.Zero, rat.Zero, err
	}
	return l.Period(), l.Latency(), nil
}

// Complexity classifies one problem variant of the paper.
type Complexity struct {
	// Problem is "orchestration" (operation list for a given execution
	// graph) or "minimization" (find the whole plan).
	Problem string
	// Objective is "period" or "latency".
	Objective string
	// Model is the communication model.
	Model plan.Model
	// Class is the paper's complexity result.
	Class string
	// Reference is the paper's theorem/proposition.
	Reference string
	// Implementation names the algorithm in this repository.
	Implementation string
}

// Matrix returns the paper's 12 complexity results (§4, §5).
func Matrix() []Complexity {
	return []Complexity{
		{"orchestration", "period", plan.Overlap, "polynomial", "Thm 1 / Prop 1", "orchestrate.OverlapPeriod (Theorem-1 construction)"},
		{"orchestration", "period", plan.InOrder, "NP-hard", "Thm 1 / Prop 3", "orchestrate.InOrderPeriod (event-graph MCR + order search)"},
		{"orchestration", "period", plan.OutOrder, "NP-hard", "Thm 1 / Prop 2", "orchestrate.OutOrderPeriod (pipelined event-graph template)"},
		{"orchestration", "latency", plan.Overlap, "NP-hard", "Thm 3 / Prop 11", "orchestrate.OverlapLatency (bandwidth sharing + order search)"},
		{"orchestration", "latency", plan.InOrder, "NP-hard", "Thm 3 / Prop 10", "orchestrate.OnePortLatency (exhaustive/heuristic orders)"},
		{"orchestration", "latency", plan.OutOrder, "NP-hard", "Thm 3 / Prop 9", "orchestrate.OnePortLatency (exhaustive/heuristic orders)"},
		{"minimization", "period", plan.Overlap, "NP-hard", "Thm 2 / Prop 5", "solve.MinPeriod (forest enumeration / hill climbing)"},
		{"minimization", "period", plan.InOrder, "NP-hard", "Thm 2 / Prop 7", "solve.MinPeriod (forest enumeration / hill climbing)"},
		{"minimization", "period", plan.OutOrder, "NP-hard", "Thm 2 / Prop 6", "solve.MinPeriod (forest enumeration / hill climbing)"},
		{"minimization", "latency", plan.Overlap, "NP-hard", "Thm 4 / Prop 15", "solve.MinLatency (DAG enumeration / hill climbing)"},
		{"minimization", "latency", plan.InOrder, "NP-hard", "Thm 4 / Prop 14", "solve.MinLatency (DAG enumeration / hill climbing)"},
		{"minimization", "latency", plan.OutOrder, "NP-hard", "Thm 4 / Prop 13", "solve.MinLatency (DAG enumeration / hill climbing)"},
	}
}

// PolynomialCases lists the paper's tractable special cases and their
// implementations.
func PolynomialCases() []Complexity {
	return []Complexity{
		{"orchestration", "period", plan.Overlap, "polynomial", "Thm 1", "orchestrate.OverlapPeriod"},
		{"orchestration (chain plans)", "period", plan.InOrder, "polynomial", "Prop 8", "solve.GreedyChainOrder + orchestrate.InOrderPeriod"},
		{"orchestration (tree plans)", "latency", plan.InOrder, "polynomial", "Prop 12 / Alg 1", "orchestrate.TreeLatency"},
		{"minimization (chain plans)", "period", plan.Overlap, "polynomial", "Prop 8", "solve.GreedyChainOrder"},
		{"minimization (chain plans)", "latency", plan.InOrder, "polynomial", "Prop 16", "solve.GreedyLatencyChainOrder"},
	}
}

// String renders one matrix entry.
func (c Complexity) String() string {
	return fmt.Sprintf("%s/%s under %s: %s (%s) — %s",
		c.Problem, c.Objective, c.Model, c.Class, c.Reference, c.Implementation)
}
