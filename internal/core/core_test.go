package core

import (
	"strings"
	"testing"

	"repro/internal/paperex"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
)

func TestPlannerEndToEnd(t *testing.T) {
	p := NewPlanner()
	app := paperex.Fig1App()
	for _, m := range plan.Models {
		sol, err := p.MinimizePeriod(app, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := sol.Sched.List.Validate(m); err != nil {
			t.Fatalf("%s: invalid schedule: %v", m, err)
		}
		// Five uniform unit-selectivity services: the parallel plan gives
		// the global optimum (cost 4 dominates); sanity-check the value.
		if sol.Value.Greater(rat.I(21)) {
			t.Fatalf("%s: period %s absurd", m, sol.Value)
		}
	}
	sol, err := p.MinimizeLatency(app, plan.InOrder)
	if err != nil {
		t.Fatal(err)
	}
	// The parallel plan has latency 1+4+1 = 6; nothing can beat computing
	// at least one service plus its I/O.
	if !sol.Value.Equal(rat.I(6)) {
		t.Fatalf("latency optimum = %s, want 6", sol.Value)
	}
}

func TestPlannerOrchestrate(t *testing.T) {
	p := NewPlanner()
	eg := paperex.Fig1Graph()
	res, err := p.Orchestrate(eg, plan.InOrder, solve.PeriodObjective)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(rat.New(23, 3)) {
		t.Fatalf("INORDER period = %s, want 23/3", res.Value)
	}
	lat, err := p.Orchestrate(eg, plan.OutOrder, solve.LatencyObjective)
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Value.Equal(rat.I(21)) {
		t.Fatalf("latency = %s, want 21", lat.Value)
	}
}

func TestPlannerEvaluatePlan(t *testing.T) {
	p := NewPlanner()
	eg := paperex.Fig1Graph()
	res, err := p.Orchestrate(eg, plan.Overlap, solve.PeriodObjective)
	if err != nil {
		t.Fatal(err)
	}
	period, latency, err := p.EvaluatePlan(res.List, plan.Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !period.Equal(rat.I(4)) || latency.Less(period) {
		t.Fatalf("period=%s latency=%s", period, latency)
	}
	// The Theorem-1 list is not INORDER-valid (stretched comms).
	if _, _, err := p.EvaluatePlan(res.List, plan.InOrder); err == nil {
		t.Fatal("stretched multi-port list must fail one-port validation")
	}
}

func TestMatrixShape(t *testing.T) {
	m := Matrix()
	if len(m) != 12 {
		t.Fatalf("matrix has %d entries, want 12", len(m))
	}
	polys, nps := 0, 0
	for _, c := range m {
		switch c.Class {
		case "polynomial":
			polys++
		case "NP-hard":
			nps++
		default:
			t.Fatalf("unknown class %q", c.Class)
		}
		if c.Implementation == "" || c.Reference == "" {
			t.Fatal("entry missing implementation or reference")
		}
	}
	// The paper's headline: 11 of the 12 variants are NP-hard; only
	// OVERLAP period orchestration is polynomial.
	if polys != 1 || nps != 11 {
		t.Fatalf("polys=%d nps=%d, want 1/11", polys, nps)
	}
	if len(PolynomialCases()) == 0 {
		t.Fatal("no polynomial cases listed")
	}
	if s := m[0].String(); !strings.Contains(s, "OVERLAP") || !strings.Contains(s, "polynomial") {
		t.Fatalf("String() = %q", s)
	}
}
