package solve

// Admissible lower bounds on partially decided execution graphs, the
// pruning engine of the branch-and-bound searches (bnb.go).
//
// Each enumeration family decides its graphs incrementally — chains place
// one service per position, forests assign parents in node order, DAGs
// orient one node pair at a time — and every function here bounds the
// objective of EVERY completion of a partial decision from below:
//
//	bound(partial) ≤ objective(G)   for every graph G completing partial.
//
// Admissibility is what makes pruning safe: a subtree is discarded only
// when its bound strictly exceeds the incumbent, so a subtree containing an
// optimal graph (bound ≤ optimum ≤ incumbent) is never cut. The bounds
// build on the same per-server quantities as plan.PeriodLowerBound and
// plan.LatencyPathBound, with the undecided part replaced by its best case:
//
//   - a node's input product can only shrink by the selectivities < 1 of
//     services that may still become ancestors (never by current
//     descendants, which would close a cycle);
//   - a node's out-degree, and its set of decided children, only grow;
//   - once a node's ancestor chain ends at a permanently decided root, its
//     input product is final and enters the bound exactly.
//
// The admissibility of every bound against the completed graphs is pinned
// by TestPartialBoundsAdmissible.

import (
	"repro/internal/dag"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// shrinkFactor returns the multiplicative worst case a service can apply to
// a downstream input product: its selectivity when < 1, else 1.
func shrinkFactor(app *workflow.App, u int) rat.Rat {
	if s := app.Selectivity(u); s.Less(rat.One) {
		return s
	}
	return rat.One
}

// cexecUnit returns the per-unit-volume Cexec of service v under model m
// given k decided consumers: scaling it by the service's input product gives
// the per-server period bound (Cin = inProd, Ccomp = inProd·c, Cout =
// inProd·σ·max(1,k) on forests and chains).
func cexecUnit(app *workflow.App, m plan.Model, v, k int) rat.Rat {
	if k < 1 {
		k = 1
	}
	sK := app.Selectivity(v).MulInt(int64(k))
	if m == plan.Overlap {
		return rat.MaxOf(rat.One, app.Cost(v), sK)
	}
	return rat.One.Add(app.Cost(v)).Add(sK)
}

// --- forests ---

// forestPartialBound bounds the objective of every forest that completes the
// partial parent assignment: nodes 0..decided-1 carry their final parent
// (-1 = permanent root), nodes decided.. must still be -1 (free). The bound
// is exact-per-chain where possible: a decided node whose ancestor chain
// ends at a decided root keeps its input product forever, while chains
// ending at a free node may still gain every remaining shrinking service as
// an ancestor.
func forestPartialBound(app *workflow.App, m plan.Model, obj Objective, parent []int, decided int) rat.Rat {
	n := app.N()
	if n == 0 {
		return rat.Zero
	}
	// anc[v]: bitmask of v's decided ancestor chain; fixed[v]: the chain
	// ends at a decided root, so no completion can extend it.
	anc := make([]uint64, n)
	fixed := make([]bool, n)
	kids := make([]int, n)
	for v := 0; v < n; v++ {
		var mask uint64
		u := v
		for parent[u] >= 0 {
			u = parent[u]
			mask |= 1 << uint(u)
		}
		anc[v] = mask
		fixed[v] = u < decided
		if p := parent[v]; p >= 0 {
			kids[p]++
		}
	}
	// minProd[v]: the smallest input product v can reach in any completion.
	minProd := make([]rat.Rat, n)
	for v := 0; v < n; v++ {
		p := rat.One
		for u := 0; u < n; u++ {
			if anc[v]&(1<<uint(u)) != 0 {
				p = p.Mul(app.Selectivity(u))
			}
		}
		chain := anc[v]
		if !fixed[v] {
			// Any service that is neither v, an ancestor of v, nor a decided
			// descendant of v (v on its chain) may still end up above v.
			for u := 0; u < n; u++ {
				if u == v || chain&(1<<uint(u)) != 0 || anc[u]&(1<<uint(v)) != 0 {
					continue
				}
				p = p.Mul(shrinkFactor(app, u))
			}
		}
		minProd[v] = p
	}
	if obj == PeriodObjective {
		bound := rat.Zero
		for v := 0; v < n; v++ {
			bound = rat.Max(bound, minProd[v].Mul(cexecUnit(app, m, v, kids[v])))
		}
		return bound
	}
	// Latency: the heaviest decided root-to-v chain, each computation and
	// each traversed communication at its smallest possible volume, plus the
	// unit input communication. Services inserted above a free chain top
	// only lengthen the path, so the partial chain is a valid witness.
	best := rat.Zero
	for v := 0; v < n; v++ {
		t := rat.One
		u := v
		for {
			t = t.Add(minProd[u].Mul(app.Cost(u).Add(app.Selectivity(u))))
			if parent[u] < 0 {
				break
			}
			u = parent[u]
		}
		best = rat.Max(best, t)
	}
	return best
}

// --- DAGs ---

// dagPartialBound bounds the objective of every DAG that completes the
// first `decided` orientations of pairs on the (acyclic) partial graph g:
// the remaining pairs may each stay absent or add one edge in either
// direction. Only nodes touched by an undecided pair ("open") can gain
// predecessors, successors or ancestors.
//
// prec is the transitive closure of the application's precedence
// constraints (nil or edgeless means unconstrained). A valid completion
// must contain every precedence edge in its own closure, so a precedence
// predecessor u of v is an ancestor of v in EVERY valid completion: its
// selectivity enters v's input product exactly — growth (σ > 1)
// included, where the optional-ancestor worst case must clamp to 1 — and
// precedence descendants of v can never feed or precede v. This is what
// lets the last-position floor below recover the chain family's exact
// floor when precedence is a total order.
func dagPartialBound(app *workflow.App, m plan.Model, obj Objective, g *dag.Graph, prec *dag.Graph, pairs [][2]int, decided int) rat.Rat {
	n := app.N()
	if n == 0 {
		return rat.Zero
	}
	anc, err := g.Ancestors()
	if err != nil {
		return rat.Zero // cyclic partial graph: the caller prunes it outright
	}
	constrained := prec != nil && prec.EdgeCount() > 0
	// mandated(u, v): u precedes v in every valid completion.
	mandated := func(u, v int) bool {
		return constrained && prec.HasEdge(u, v)
	}
	open := make([]bool, n)
	for i := decided; i < len(pairs); i++ {
		open[pairs[i][0]] = true
		open[pairs[i][1]] = true
	}
	// minProd[v]: smallest reachable input product. Decided and
	// precedence-mandated ancestors contribute their exact selectivity;
	// the ancestor set is final once neither v nor any of its ancestors is
	// open; otherwise every service that may still move above v — not a
	// decided or mandated descendant — contributes its worst case.
	minProd := make([]rat.Rat, n)
	minOut := make([]rat.Rat, n)
	for v := 0; v < n; v++ {
		p := rat.One
		grows := open[v]
		anc[v].ForEach(func(u int) {
			p = p.Mul(app.Selectivity(u))
			if open[u] {
				grows = true
			}
		})
		if constrained {
			for _, u := range prec.Pred(v) { // closure: preds = all mandated ancestors
				if !anc[v].Has(u) {
					p = p.Mul(app.Selectivity(u))
				}
			}
		}
		if grows {
			for u := 0; u < n; u++ {
				if u == v || anc[v].Has(u) || anc[u].Has(v) ||
					mandated(u, v) || mandated(v, u) {
					continue
				}
				p = p.Mul(shrinkFactor(app, u))
			}
		}
		minProd[v] = p
		minOut[v] = p.Mul(app.Selectivity(v))
	}
	if obj == PeriodObjective {
		bound := rat.Zero
		for v := 0; v < n; v++ {
			// Cin: decided predecessors stay and new ones only add volume. A
			// node with no predecessors yet either remains an entry (volume
			// 1) or gains one with at least the smallest producible volume.
			var cin rat.Rat
			if preds := g.Pred(v); len(preds) > 0 {
				cin = rat.Zero
				for _, p := range preds {
					cin = cin.Add(minOut[p])
				}
			} else if !open[v] {
				cin = rat.One
			} else {
				cin = rat.One
				for u := 0; u < n; u++ {
					// Decided or mandated descendants cannot feed v.
					if u == v || anc[u].Has(v) || mandated(v, u) {
						continue
					}
					cin = rat.Min(cin, minOut[u])
				}
			}
			ccomp := minProd[v].Mul(app.Cost(v))
			k := g.OutDegree(v)
			if k < 1 {
				k = 1
			}
			cout := minOut[v].MulInt(int64(k))
			var cexec rat.Rat
			if m == plan.Overlap {
				cexec = rat.MaxOf(cin, ccomp, cout)
			} else {
				cexec = cin.Add(ccomp).Add(cout)
			}
			bound = rat.Max(bound, cexec)
		}
		// Source floor — every completion is acyclic, so its topological
		// first node has NO predecessors: it runs on input product exactly
		// 1, not the shrunk minProd the per-node terms use. Only a node
		// without decided predecessors — and without precedence
		// predecessors, which force a predecessor in every valid
		// completion — can end up there, edges only get added (its final
		// out-degree ≥ the decided one, and cexecUnit is monotone in k),
		// so the minimum unit-volume Cexec over those candidates bounds
		// every completion. On shrinking workloads with most pairs still
		// open the per-node terms collapse toward the full shrink product
		// and this floor is the binding part.
		var src rat.Rat
		haveSrc := false
		for v := 0; v < n; v++ {
			if len(g.Pred(v)) > 0 || (constrained && len(prec.Pred(v)) > 0) {
				continue
			}
			t := cexecUnit(app, m, v, g.OutDegree(v))
			if !haveSrc || t.Less(src) {
				src, haveSrc = t, true
			}
		}
		if haveSrc {
			bound = rat.Max(bound, src)
		}
		// Last-position floor — the mirror of the source floor at the
		// other end of the topological order: every completion has a last
		// node, which can only be a node without decided successors and
		// without precedence successors, and that node pays at least its
		// computation and one output copy on its smallest reachable input
		// product. The unit term deliberately omits the Cin component:
		// with several predecessors, Cin sums pred out-volumes while
		// minProd multiplies ancestor selectivities, and a product of
		// expanding branches can exceed the sum — including Cin here would
		// overshoot. The floor's strength comes from minProd's
		// precedence-exact products: under a total-order precedence the
		// (unique) candidate carries every other selectivity exactly,
		// growth included — the chain family's exact last-position floor.
		var last rat.Rat
		haveLast := false
		for v := 0; v < n; v++ {
			if g.OutDegree(v) > 0 || (constrained && len(prec.Succ(v)) > 0) {
				continue
			}
			var unit rat.Rat
			if m == plan.Overlap {
				unit = rat.Max(app.Cost(v), app.Selectivity(v))
			} else {
				unit = app.Cost(v).Add(app.Selectivity(v))
			}
			t := minProd[v].Mul(unit)
			if !haveLast || t.Less(last) {
				last, haveLast = t, true
			}
		}
		if haveLast {
			bound = rat.Max(bound, last)
		}
		return bound
	}
	// Latency: longest path over the decided edges with minimal volumes;
	// every node still pays its input (≥ the unit entry communication
	// somewhere upstream), its computation and one outgoing copy.
	topo, err := g.TopoSort()
	if err != nil {
		return rat.Zero
	}
	done := make([]rat.Rat, n)
	best := rat.Zero
	for _, v := range topo {
		start := rat.One
		for _, p := range g.Pred(v) {
			start = rat.Max(start, done[p].Add(minOut[p]))
		}
		done[v] = start.Add(minProd[v].Mul(app.Cost(v)))
		best = rat.Max(best, done[v].Add(minOut[v]))
	}
	return best
}

// --- chains ---

// chainCompletionBound bounds every chain extending an exact prefix state:
// prefixObj is the objective accumulated over the placed prefix (the max
// per-server Cexec for MINPERIOD, the running latency for MINLATENCY),
// inProd the data volume leaving the prefix, rest the unplaced services.
//
// Both objectives use the same dominance argument over the suffix. A
// service placed with k other rest services before it keeps an input
// product of at least inProd times the k smallest shrink factors of rest,
// and the predecessor counts of the suffix are exactly {0, .., r-1}:
//
//   - MINPERIOD: among the t services with the largest per-volume Cexec,
//     one has at most r-t rest predecessors (pigeonhole), so some server
//     costs at least inProd·Π(r-t smallest factors)·(t-th largest unit);
//     the bound maximizes over t. t = r recovers "the next service runs on
//     the prefix's volume undiminished".
//   - MINLATENCY: every service adds its computation and one outgoing
//     copy; by the rearrangement inequality the sum is smallest when the
//     largest weights take the most-shrunk positions, so pairing the t-th
//     largest weight with the product of the r-t smallest factors bounds
//     the total from below.
func chainCompletionBound(app *workflow.App, m plan.Model, obj Objective, prefixObj, inProd rat.Rat, rest []int) rat.Rat {
	r := len(rest)
	if r == 0 {
		return prefixObj
	}
	// shrink[k]: product of the k smallest shrink factors of rest.
	factors := make([]rat.Rat, r)
	for i, s := range rest {
		factors[i] = shrinkFactor(app, s)
	}
	sortRats(factors)
	shrink := make([]rat.Rat, r+1)
	shrink[0] = rat.One
	for k := 0; k < r; k++ {
		shrink[k+1] = shrink[k].Mul(factors[k])
	}
	// weights, descending: per-volume Cexec (period) or comp+copy (latency).
	weights := make([]rat.Rat, r)
	for i, s := range rest {
		if obj == PeriodObjective {
			weights[i] = cexecUnit(app, m, s, 1)
		} else {
			weights[i] = app.Cost(s).Add(app.Selectivity(s))
		}
	}
	sortRats(weights)
	reverseRats(weights)
	if obj == PeriodObjective {
		bound := prefixObj
		for t := 1; t <= r; t++ {
			bound = rat.Max(bound, inProd.Mul(shrink[r-t]).Mul(weights[t-1]))
		}
		// Last-position floor: whichever service ends the chain receives
		// the product of every other remaining selectivity EXACTLY — growth
		// included — so min over the possible last services bounds every
		// completion. This is the binding floor on expanding workloads,
		// where the shrink products above degenerate to 1.
		pre := make([]rat.Rat, r+1)
		pre[0] = rat.One
		for i, s := range rest {
			pre[i+1] = pre[i].Mul(app.Selectivity(s))
		}
		suf := rat.One
		var last rat.Rat
		for i := r - 1; i >= 0; i-- {
			v := pre[i].Mul(suf).Mul(cexecUnit(app, m, rest[i], 1))
			if i == r-1 || v.Less(last) {
				last = v
			}
			suf = suf.Mul(app.Selectivity(rest[i]))
		}
		return rat.Max(bound, inProd.Mul(last))
	}
	total := prefixObj
	for t := 1; t <= r; t++ {
		total = total.Add(inProd.Mul(shrink[r-t]).Mul(weights[t-1]))
	}
	return total
}

// sortRats sorts ascending (insertion sort: slices are search-suffix sized).
func sortRats(s []rat.Rat) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Less(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func reverseRats(s []rat.Rat) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
