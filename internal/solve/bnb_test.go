package solve

import (
	"fmt"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// --- cross-method equivalence: BranchBound vs the blind enumerations ---

// TestBranchBoundMatchesExactEnumerations is the equivalence contract of
// the branch-and-bound searches: on randomized small instances they return
// not just the same objective value as the blind ExactChain / ExactForest /
// ExactDAG enumerations but the bit-identical Solution (same graph, same
// operation list), for both MinPeriod and MinLatency. Strict pruning
// guarantees the first optimum-valued graph in enumeration order survives,
// which is exactly the graph the blind search keeps.
func TestBranchBoundMatchesExactEnumerations(t *testing.T) {
	profiles := []gen.Profile{gen.Filtering, gen.Mixed, gen.Expanding}
	type tc struct {
		name   string
		family Family
		exact  Method
		app    *workflow.App
		models []plan.Model
	}
	var cases []tc
	for seed := int64(0); seed < 3; seed++ {
		p := profiles[seed%int64(len(profiles))]
		cases = append(cases,
			tc{fmt.Sprintf("chain/seed%d", seed), FamilyChain, ExactChain,
				gen.App(gen.NewRand(seed), 5, p), plan.Models},
			tc{fmt.Sprintf("forest/seed%d", seed), FamilyForest, ExactForest,
				gen.App(gen.NewRand(seed+100), 4, p), []plan.Model{plan.Overlap, plan.InOrder}},
			tc{fmt.Sprintf("dag/seed%d", seed), FamilyDAG, ExactDAG,
				gen.App(gen.NewRand(seed+200), 4, p), []plan.Model{plan.Overlap, plan.InOrder}},
		)
	}
	withPrec := gen.AppWithPrecedence(gen.NewRand(8), 4, gen.Filtering, 0.3)
	if !withPrec.HasPrecedence() {
		t.Fatal("seed 8 must produce precedence constraints")
	}
	cases = append(cases, tc{"dag/precedence", FamilyDAG, ExactDAG,
		withPrec, []plan.Model{plan.Overlap, plan.InOrder}})

	for _, tc := range cases {
		for _, m := range tc.models {
			for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
				t.Run(fmt.Sprintf("%s/%s/%s", tc.name, m, obj), func(t *testing.T) {
					base := Options{Orch: smallOrch(), Restarts: 1, Workers: 1}
					exactOpts := base
					exactOpts.Method = tc.exact
					blind := solveOnce(t, tc.app, m, obj, exactOpts)
					bnbOpts := base
					bnbOpts.Method = BranchBound
					bnbOpts.Family = tc.family
					pruned := solveOnce(t, tc.app, m, obj, bnbOpts)
					if !pruned.Value.Equal(blind.Value) {
						t.Fatalf("objective diverged: blind %s, branch-and-bound %s",
							blind.Value, pruned.Value)
					}
					if got, want := describeSolution(pruned), describeSolution(blind); got != want {
						t.Fatalf("solution diverged from blind enumeration:\n--- blind ---\n%s\n--- bnb ---\n%s", want, got)
					}
				})
			}
		}
	}
}

// TestBranchBoundAutoFamilyMatchesAutoExact pins FamilyAuto to the same
// family choice the blind methods certify: forests for MINPERIOD without
// precedence, DAGs for MINLATENCY and under precedence constraints.
func TestBranchBoundAutoFamilyMatchesAutoExact(t *testing.T) {
	base := Options{Orch: smallOrch(), Restarts: 1, Workers: 1}
	app := gen.App(gen.NewRand(5), 4, gen.Mixed)
	forest := solveOnce(t, app, plan.InOrder, PeriodObjective, withM(base, ExactForest))
	auto := solveOnce(t, app, plan.InOrder, PeriodObjective, withM(base, BranchBound))
	if !auto.Value.Equal(forest.Value) || !auto.Exact {
		t.Fatalf("auto-family period: got %s (exact=%v), forest optimum %s", auto.Value, auto.Exact, forest.Value)
	}
	dagSol := solveOnce(t, app, plan.InOrder, LatencyObjective, withM(base, ExactDAG))
	autoLat := solveOnce(t, app, plan.InOrder, LatencyObjective, withM(base, BranchBound))
	if !autoLat.Value.Equal(dagSol.Value) {
		t.Fatalf("auto-family latency: got %s, DAG optimum %s", autoLat.Value, dagSol.Value)
	}
	withPrec := gen.AppWithPrecedence(gen.NewRand(8), 4, gen.Filtering, 0.3)
	prec := solveOnce(t, withPrec, plan.Overlap, PeriodObjective, withM(base, BranchBound))
	ok, err := prec.Graph.Graph().ClosureContains(withPrec.Precedence())
	if err != nil || !ok {
		t.Fatalf("auto-family with precedence returned a violating plan (ok=%v err=%v)", ok, err)
	}
}

func withM(o Options, m Method) Options {
	o.Method = m
	return o
}

// TestAutoBandRoutesRaisedMaxExactNToBranchBound pins the Auto cutoff
// semantics: raising MaxExactN widens only the branch-and-bound band (both
// exact searches certify the same optimum, so the headroom goes to the
// pruned one), the blind enumerations keep their defaults, and lowering it
// caps every exact method.
func TestAutoBandRoutesRaisedMaxExactNToBranchBound(t *testing.T) {
	app := func(n int) *workflow.App { return gen.App(gen.NewRand(1), n, gen.Mixed) }
	cases := []struct {
		n         int
		maxExactN int
		want      Method
	}{
		{5, 0, ExactForest},   // blind default band
		{7, 0, BranchBound},   // bnb default band
		{8, 0, HillClimb},     // above both defaults
		{5, 12, ExactForest},  // raising MaxExactN keeps the blind default
		{10, 12, BranchBound}, // ...and widens the bnb band instead
		{13, 12, HillClimb},
		{4, 3, HillClimb}, // lowering caps every exact method
		{3, 3, ExactForest},
	}
	for _, tc := range cases {
		got := autoMethod(app(tc.n), PeriodObjective, Options{MaxExactN: tc.maxExactN})
		if got != tc.want {
			t.Errorf("n=%d MaxExactN=%d: auto picked %v, want %v", tc.n, tc.maxExactN, got, tc.want)
		}
	}
}

// TestBranchBoundGuards mirrors the blind enumeration guards: families
// reject precedence where required and instances above their caps.
func TestBranchBoundGuards(t *testing.T) {
	big := gen.App(gen.NewRand(1), 16, gen.Mixed)
	for _, fam := range []Family{FamilyChain, FamilyForest, FamilyDAG} {
		opts := Options{Method: BranchBound, Family: fam}
		if _, err := MinPeriod(big, plan.Overlap, opts); err == nil {
			t.Errorf("family %s must reject n=16", fam)
		}
	}
	withPrec := gen.AppWithPrecedence(gen.NewRand(8), 4, gen.Filtering, 0.3)
	for _, fam := range []Family{FamilyChain, FamilyForest} {
		opts := Options{Method: BranchBound, Family: fam}
		if _, err := MinPeriod(withPrec, plan.Overlap, opts); err == nil {
			t.Errorf("family %s must reject precedence-constrained instances", fam)
		}
	}
	if FamilyAuto.String() != "auto" || FamilyChain.String() != "chain" ||
		FamilyForest.String() != "forest" || FamilyDAG.String() != "dag" ||
		Family(9).String() != "Family(9)" {
		t.Error("family names wrong")
	}
	if BranchBound.String() != "branch-bound" {
		t.Error("method name wrong")
	}
}

// --- admissibility: pruning can never discard the optimum ---

// TestPartialBoundsAdmissible checks the bound contract directly: for every
// enumerated graph of a family and every prefix of its incremental
// construction, the partial bound never exceeds the completed graph's
// objective — first against the closed-form/full-graph bound for every
// member of the family, then against the orchestrated objective of the
// enumerated optimal graphs (the values pruning actually competes with).
func TestPartialBoundsAdmissible(t *testing.T) {
	app := gen.App(gen.NewRand(3), 6, gen.Mixed)
	for _, m := range plan.Models {
		for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
			forEachChain(app.N(), func(order []int) bool {
				var val rat.Rat
				if obj == PeriodObjective {
					val = ChainPeriodValue(app, order, m)
				} else {
					val = ChainLatencyValue(app, order)
				}
				for k := 0; k <= app.N(); k++ {
					if b := chainPrefixBound(app, m, obj, order, k); b.Greater(val) {
						t.Fatalf("%s/%s chain %v prefix %d: bound %s exceeds value %s",
							m, obj, order, k, b, val)
					}
				}
				return true
			})
		}
	}

	small := gen.App(gen.NewRand(7), 4, gen.Mixed)
	n := small.N()
	for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
		for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
			forEachForest(n, func(parent []int) bool {
				full := forestPartialBound(small, m, obj, parent, n)
				prefix := make([]int, n)
				for k := 0; k <= n; k++ {
					copy(prefix, parent[:k])
					for v := k; v < n; v++ {
						prefix[v] = -1
					}
					if b := forestPartialBound(small, m, obj, prefix, k); b.Greater(full) {
						t.Fatalf("%s/%s forest %v prefix %d: bound %s exceeds full-graph bound %s",
							m, obj, parent, k, b, full)
					}
				}
				return true
			})
		}
	}

	// Against the orchestrated objective of the optimal graphs themselves:
	// the exact chain of values pruning relies on.
	for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
		for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
			opts := Options{Method: ExactForest, Orch: smallOrch(), Workers: 1}
			sol := solveOnce(t, small, m, obj, opts)
			parent := parentVector(t, sol.Graph)
			prefix := make([]int, n)
			for k := 0; k <= n; k++ {
				copy(prefix, parent[:k])
				for v := k; v < n; v++ {
					prefix[v] = -1
				}
				if b := forestPartialBound(small, m, obj, prefix, k); b.Greater(sol.Value) {
					t.Fatalf("%s/%s optimal forest prefix %d: bound %s exceeds optimum %s",
						m, obj, k, b, sol.Value)
				}
			}

			dagOpts := Options{Method: ExactDAG, Orch: smallOrch(), Workers: 1}
			dagSol := solveOnce(t, small, m, obj, dagOpts)
			pairs := nodePairs(n)
			g := dag.New(n)
			for i := 0; i <= len(pairs); i++ {
				if b := dagPartialBound(small, m, obj, g, nil, pairs, i); b.Greater(dagSol.Value) {
					t.Fatalf("%s/%s optimal DAG prefix %d: bound %s exceeds optimum %s",
						m, obj, i, b, dagSol.Value)
				}
				if i < len(pairs) {
					u, v := pairs[i][0], pairs[i][1]
					if dagSol.Graph.Graph().HasEdge(u, v) {
						g.AddEdge(u, v)
					} else if dagSol.Graph.Graph().HasEdge(v, u) {
						g.AddEdge(v, u)
					}
				}
			}
		}
	}
}

// TestDAGSourceFloorBinds pins the DAG bound's source floor on the case it
// exists for: a shrinking workload with every pair still open. There the
// per-node terms all collapse toward the full shrink product (well below
// 1), but every completion still runs its topological first node at input
// product 1 — so the bound must equal the minimum unit-volume Cexec over
// the possible sources, not the collapsed per-node maximum.
func TestDAGSourceFloorBinds(t *testing.T) {
	services := []workflow.Service{
		{Name: "a", Cost: rat.New(1, 2), Selectivity: rat.New(1, 3)},
		{Name: "b", Cost: rat.New(1, 4), Selectivity: rat.New(1, 2)},
		{Name: "c", Cost: rat.New(3, 4), Selectivity: rat.New(1, 5)},
		{Name: "d", Cost: rat.New(1, 8), Selectivity: rat.New(2, 3)},
	}
	app, err := workflow.New(services, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := app.N()
	pairs := nodePairs(n)
	g := dag.New(n)
	for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
		// Fully open: every node is a source candidate with out-degree 0.
		floor := cexecUnit(app, m, 0, 0)
		for v := 1; v < n; v++ {
			if u := cexecUnit(app, m, v, 0); u.Less(floor) {
				floor = u
			}
		}
		got := dagPartialBound(app, m, PeriodObjective, g, nil, pairs, 0)
		if !got.Equal(floor) {
			t.Fatalf("%s fully-open bound %s, want the source floor %s", m, got, floor)
		}
		// Sanity that the floor is doing work: with every cost < 1 and every
		// selectivity < 1, the pre-floor per-node terms are all < 1 for
		// OVERLAP-style maxima only because of the floor's unit volume.
		if m == plan.Overlap && got.Less(rat.One) {
			t.Fatalf("overlap floor %s < 1: the unit-volume source is not in the bound", got)
		}
	}
	// The floor stays admissible as decisions accumulate: covered for the
	// optimal DAG by TestPartialBoundsAdmissible; spot-check a decided edge
	// removes its head from the candidate set.
	g.AddEdge(0, 1)
	got := dagPartialBound(app, plan.InOrder, PeriodObjective, g, nil, pairs, 1)
	floor := cexecUnit(app, plan.InOrder, 0, 1)
	for _, v := range []int{2, 3} {
		if u := cexecUnit(app, plan.InOrder, v, 0); u.Less(floor) {
			floor = u
		}
	}
	if got.Less(floor) {
		t.Fatalf("bound %s below the candidate-source floor %s after deciding an edge", got, floor)
	}
}

// TestDAGPrecedenceBoundAdmissible checks the precedence-aware DAG bound
// against the blind enumeration: on precedence-constrained instances the
// partial bound — fed the precedence closure exactly as branchBoundDAG
// feeds it — never exceeds the ExactDAG optimum at any prefix of the
// optimal DAG's incremental construction, and branch-and-bound pruned by
// it still returns the blind optimum.
func TestDAGPrecedenceBoundAdmissible(t *testing.T) {
	for _, seed := range []int64{8, 21, 33} {
		app := gen.AppWithPrecedence(gen.NewRand(seed), 4, gen.Mixed, 0.4)
		if !app.HasPrecedence() {
			t.Fatalf("seed %d produced no precedence constraints", seed)
		}
		prec, err := app.Precedence().TransitiveClosure()
		if err != nil {
			t.Fatal(err)
		}
		n := app.N()
		pairs := nodePairs(n)
		for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
			for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
				blind := solveOnce(t, app, m, obj,
					Options{Method: ExactDAG, Orch: smallOrch(), Workers: 1})
				g := dag.New(n)
				for i := 0; i <= len(pairs); i++ {
					if b := dagPartialBound(app, m, obj, g, prec, pairs, i); b.Greater(blind.Value) {
						t.Fatalf("seed %d %s/%s optimal DAG prefix %d: bound %s exceeds optimum %s",
							seed, m, obj, i, b, blind.Value)
					}
					if i < len(pairs) {
						u, v := pairs[i][0], pairs[i][1]
						if blind.Graph.Graph().HasEdge(u, v) {
							g.AddEdge(u, v)
						} else if blind.Graph.Graph().HasEdge(v, u) {
							g.AddEdge(v, u)
						}
					}
				}
				pruned := solveOnce(t, app, m, obj,
					Options{Method: BranchBound, Family: FamilyDAG, Orch: smallOrch(), Workers: 1})
				if !pruned.Value.Equal(blind.Value) {
					t.Fatalf("seed %d %s/%s: branch-and-bound %s diverged from blind %s",
						seed, m, obj, pruned.Value, blind.Value)
				}
			}
		}
	}
}

// TestDAGPrecedenceLastFloorExactOnTotalOrder pins the strength the
// precedence-aware bound adds: under a total-order precedence the unique
// last-position candidate carries every other service's selectivity
// EXACTLY — growth included, where the precedence-blind bound worst-cases
// expanding services to factor 1 — so on an all-expanding instance the
// fully-open root bound equals the chain family's exact last-position
// floor, which here is the blind-enumeration optimum itself.
func TestDAGPrecedenceLastFloorExactOnTotalOrder(t *testing.T) {
	services := []workflow.Service{
		{Name: "a", Cost: rat.New(1, 4), Selectivity: rat.I(2)},
		{Name: "b", Cost: rat.New(1, 3), Selectivity: rat.New(3, 2)},
		{Name: "c", Cost: rat.New(1, 2), Selectivity: rat.New(5, 4)},
		{Name: "d", Cost: rat.New(1, 8), Selectivity: rat.I(3)},
	}
	app, err := workflow.New(services, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	prec, err := app.Precedence().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	n := app.N()
	pairs := nodePairs(n)
	g := dag.New(n)

	// d is the only node without precedence successors, so it ends every
	// valid completion on input product σa·σb·σc = 15/4 exactly; its
	// last-position floor σa·σb·σc·max(c_d, σ_d) = 45/4 under OVERLAP.
	want := rat.New(45, 4)
	got := dagPartialBound(app, plan.Overlap, PeriodObjective, g, prec, pairs, 0)
	if !got.Equal(want) {
		t.Fatalf("fully-open precedence bound %s, want the exact last-position floor %s", got, want)
	}
	// Without the closure the growth is invisible: every selectivity > 1
	// worst-cases to 1 and the bound collapses to the largest per-unit term.
	blind := dagPartialBound(app, plan.Overlap, PeriodObjective, g, nil, pairs, 0)
	if !blind.Less(got) {
		t.Fatalf("precedence-blind bound %s not below the precedence-aware %s", blind, got)
	}
	// The floor is tight: the blind DAG enumeration's optimum equals it
	// (the total order admits only the chain, whose bottleneck is d's
	// output copy), so the root bound certifies optimality before the
	// search decides a single pair.
	sol := solveOnce(t, app, plan.Overlap, PeriodObjective,
		Options{Method: ExactDAG, Orch: smallOrch(), Workers: 1})
	if !sol.Value.Equal(want) {
		t.Fatalf("ExactDAG optimum %s, want %s", sol.Value, want)
	}
	// ONE-PORT recovers the chain-style additive unit on the same exact
	// product: σa·σb·σc·(c_d + σ_d) ≤ bound ≤ optimum.
	floor1p := rat.New(15, 4).Mul(rat.New(1, 8).Add(rat.I(3)))
	got1p := dagPartialBound(app, plan.InOrder, PeriodObjective, g, prec, pairs, 0)
	sol1p := solveOnce(t, app, plan.InOrder, PeriodObjective,
		Options{Method: ExactDAG, Orch: smallOrch(), Workers: 1})
	if got1p.Less(floor1p) || got1p.Greater(sol1p.Value) {
		t.Fatalf("one-port bound %s outside [floor %s, optimum %s]", got1p, floor1p, sol1p.Value)
	}
}

// chainPrefixBound bounds every chain that starts with order[:k] and
// continues with some permutation of order[k:]: the admissibility test's
// from-scratch counterpart of the prefix state branchBoundChain maintains
// incrementally before calling chainCompletionBound.
func chainPrefixBound(app *workflow.App, m plan.Model, obj Objective, order []int, k int) rat.Rat {
	inProd := rat.One
	var prefixObj rat.Rat
	if obj == LatencyObjective {
		prefixObj = rat.One
	}
	for _, s := range order[:k] {
		if obj == PeriodObjective {
			prefixObj = rat.Max(prefixObj, inProd.Mul(cexecUnit(app, m, s, 1)))
			inProd = inProd.Mul(app.Selectivity(s))
		} else {
			prefixObj = prefixObj.Add(inProd.Mul(app.Cost(s)))
			inProd = inProd.Mul(app.Selectivity(s))
			prefixObj = prefixObj.Add(inProd)
		}
	}
	return chainCompletionBound(app, m, obj, prefixObj, inProd, order[k:])
}

// parentVector extracts the forest parent assignment of an execution graph.
func parentVector(t *testing.T, eg *plan.ExecGraph) []int {
	t.Helper()
	if !eg.IsForest() {
		t.Fatal("expected a forest plan")
	}
	parent := make([]int, eg.N())
	for v := range parent {
		parent[v] = -1
		if preds := eg.Graph().Pred(v); len(preds) == 1 {
			parent[v] = preds[0]
		}
	}
	return parent
}

// --- certification beyond the blind enumerations ---

// TestBranchBoundCertifiesBeyondBlindEnumeration is the scale payoff: at
// n = 12 the blind chain enumeration would evaluate 12! ≈ 4.8e8 chains
// (its guard rejects the instance outright), while branch-and-bound
// certifies the chain optimum in a vanishing fraction of that and stays
// worker-count deterministic.
func TestBranchBoundCertifiesBeyondBlindEnumeration(t *testing.T) {
	const n = 12
	app := gen.App(gen.NewRand(42), n, gen.Filtering)
	blind := Options{Method: ExactChain, Orch: smallOrch(), Workers: 1}
	if _, err := MinPeriod(app, plan.InOrder, blind); err == nil {
		t.Fatalf("blind chain enumeration must reject n=%d", n)
	}
	var st Stats
	opts := Options{Method: BranchBound, Family: FamilyChain, Orch: smallOrch(), Workers: 1, Stats: &st}
	sol := solveOnce(t, app, plan.InOrder, PeriodObjective, opts)
	greedy := ChainPeriodValue(app, GreedyChainOrder(app, plan.InOrder), plan.InOrder)
	if sol.Value.Greater(greedy) {
		t.Fatalf("certified optimum %s worse than the greedy chain %s", sol.Value, greedy)
	}
	var blindLeaves int64 = 1
	for i := int64(2); i <= n; i++ {
		blindLeaves *= i
	}
	if st.Evaluated == 0 || st.Evaluated >= blindLeaves/1000 {
		t.Fatalf("expected a >1000x evaluation reduction: evaluated %d of %d chains", st.Evaluated, blindLeaves)
	}
	if st.Pruned == 0 {
		t.Fatal("expected pruned subtrees")
	}
	want := describeSolution(sol)
	for _, workers := range []int{2, 8} {
		o := opts
		o.Workers = workers
		o.Stats = nil
		if got := describeSolution(solveOnce(t, app, plan.InOrder, PeriodObjective, o)); got != want {
			t.Fatalf("workers=%d diverged from serial:\n%s\nvs\n%s", workers, want, got)
		}
	}
}

// TestBranchBoundStatsDeterministicSerial pins the Workers: 1 counters:
// with a single worker the pruning threshold evolves deterministically, so
// repeated runs must report identical effort.
func TestBranchBoundStatsDeterministicSerial(t *testing.T) {
	app := gen.App(gen.NewRand(9), 5, gen.Mixed)
	run := func() Stats {
		var st Stats
		opts := Options{Method: BranchBound, Family: FamilyForest, Orch: smallOrch(), Restarts: 1, Workers: 1, Stats: &st}
		solveOnce(t, app, plan.Overlap, PeriodObjective, opts)
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("serial stats not reproducible: %+v vs %+v", a, b)
	}
	if a.Expanded == 0 || a.Evaluated == 0 {
		t.Fatalf("implausible stats: %+v", a)
	}
}
