package solve

// Incremental objective re-evaluation for the forest hill climb.
//
// A hill-climb move changes one node's parent, which only changes the input
// products (and hence all derived volumes) of that node's subtree — every
// other service keeps its ancestors. forestEval maintains the parent
// vector, the children lists and the per-node input products under such
// moves, recomputing exactly the touched subtree, and derives the model
// lower bounds (plan.PeriodLowerBound / plan.LatencyPathBound equivalents)
// without rebuilding an ExecGraph.
//
// The climb uses the bounds as an admissible move filter: a move whose
// lower bound already reaches the current value cannot be a strict
// improvement (the orchestrated objective never beats the bound), so the
// climb skips its orchestration without charging the evaluation budget.
// The filter never rejects an improving move, and
// TestForestEvalMatchesFullRecomputation pins the incremental quantities to
// a from-scratch rebuild move for move.

import (
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// forestEval is the incremental scheduling view of a forest parent vector.
type forestEval struct {
	app      *workflow.App
	parent   []int
	children [][]int
	inProd   []rat.Rat // Π σ over ancestors, maintained per move
}

// newForestEval computes the full state of the given assignment (the slice
// is copied; parent[v] == -1 means root).
func newForestEval(app *workflow.App, parent []int) *forestEval {
	n := app.N()
	e := &forestEval{
		app:      app,
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		inProd:   make([]rat.Rat, n),
	}
	for v, p := range e.parent {
		if p >= 0 {
			e.children[p] = append(e.children[p], v)
		}
	}
	for v := range e.parent {
		if e.parent[v] < 0 {
			e.recomputeSubtree(v)
		}
	}
	return e
}

// recomputeSubtree refreshes the input products of v and its descendants
// from v's (already correct) parent — the only volumes a move at v touches.
func (e *forestEval) recomputeSubtree(v int) {
	if p := e.parent[v]; p >= 0 {
		e.inProd[v] = e.inProd[p].Mul(e.app.Selectivity(p))
	} else {
		e.inProd[v] = rat.One
	}
	for _, c := range e.children[v] {
		e.recomputeSubtree(c)
	}
}

// CreatesCycle reports whether re-parenting v under p would close a cycle.
func (e *forestEval) CreatesCycle(v, p int) bool {
	return parentChainReaches(e.parent, p, v)
}

// Move re-parents v under p (-1 for root) and recomputes the volumes of v's
// subtree only. The caller must rule out cycles first.
func (e *forestEval) Move(v, p int) {
	if old := e.parent[v]; old >= 0 {
		kids := e.children[old]
		for i, c := range kids {
			if c == v {
				e.children[old] = append(kids[:i], kids[i+1:]...)
				break
			}
		}
	}
	e.parent[v] = p
	if p >= 0 {
		e.children[p] = append(e.children[p], v)
	}
	e.recomputeSubtree(v)
}

// PeriodLowerBound returns max_v Cexec(v, m) of the current forest,
// identical to the ExecGraph/Weighted value: on a forest Cin(v) is the
// input product itself and Cout(v) is outSize times max(1, #children).
func (e *forestEval) PeriodLowerBound(m plan.Model) rat.Rat {
	bound := rat.Zero
	for v := range e.parent {
		bound = rat.Max(bound, e.inProd[v].Mul(cexecUnit(e.app, m, v, len(e.children[v]))))
	}
	return bound
}

// LatencyPathBound returns the heaviest root-to-sink path (computations
// plus traversed communications plus the unit input), identical to
// plan.ExecGraph.LatencyPathBound on the same forest.
func (e *forestEval) LatencyPathBound() rat.Rat {
	best := rat.Zero
	var rec func(v int, done rat.Rat)
	rec = func(v int, start rat.Rat) {
		done := start.Add(e.inProd[v].Mul(e.app.Cost(v)))
		out := e.inProd[v].Mul(e.app.Selectivity(v))
		if len(e.children[v]) == 0 {
			best = rat.Max(best, done.Add(out))
			return
		}
		for _, c := range e.children[v] {
			rec(c, done.Add(out))
		}
	}
	for v, p := range e.parent {
		if p < 0 {
			rec(v, rat.One)
		}
	}
	return best
}

// Bound returns the objective-matching lower bound of the current forest.
func (e *forestEval) Bound(m plan.Model, obj Objective) rat.Rat {
	if obj == PeriodObjective {
		return e.PeriodLowerBound(m)
	}
	return e.LatencyPathBound()
}
