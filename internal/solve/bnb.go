package solve

// Branch-and-bound variants of the exact chain/forest/DAG searches.
//
// The blind enumerations of minimize.go orchestrate every member of their
// structural family; the searches here enumerate the same families in the
// same order but compute an admissible lower bound (bound.go) on every
// partial decision and discard any subtree whose bound strictly exceeds the
// shared incumbent — the best objective value any worker has proved
// achievable so far. The incumbent is seeded with the greedy-chain and
// hill-climbing solutions before the first expansion, so pruning bites from
// the root of the branching tree, and the searches certify the same optimum
// as the blind enumerations at a fraction of the evaluations (experiment
// E15 quantifies the reduction).
//
// # Determinism
//
// The top of the branching tree is sharded over the par pool exactly like
// the blind searches (chains by first service, forests by the first two
// parent assignments, DAGs by the first pair orientations) and per-shard
// winners reduce in shard order. The shared incumbent makes the SET of
// expanded nodes depend on worker interleaving, but not the returned
// Solution, because pruning follows two rules: against the shared incumbent
// the test is STRICT (bound > incumbent), and ties are cut only against the
// shard's own best-so-far, which evolves independently of the other
// workers. The bounds are admissible and the incumbent never drops below
// the family optimum, so in every interleaving each shard evaluates — and
// reports — the first graph of its serial enumeration order that reaches
// the shard's minimum value. The shard-order reduction then returns the
// identical Solution — the same one the blind enumeration returns — for
// every worker count. Only the Stats counters vary with the interleaving
// (run with Workers: 1 for reproducible counts).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// Family selects the structural family the BranchBound method searches.
type Family int

const (
	// FamilyAuto picks the family that makes the search exact: forests for
	// MINPERIOD without precedence constraints (Prop. 4), DAGs otherwise.
	FamilyAuto Family = iota
	// FamilyChain searches the n! linear chains (optimal among chains, like
	// ExactChain; closed-form evaluation, no orchestration per candidate).
	FamilyChain
	// FamilyForest searches all forests (like ExactForest).
	FamilyForest
	// FamilyDAG searches all DAGs containing the precedence constraints
	// (like ExactDAG).
	FamilyDAG
)

// String names the family for reports.
func (f Family) String() string {
	switch f {
	case FamilyAuto:
		return "auto"
	case FamilyChain:
		return "chain"
	case FamilyForest:
		return "forest"
	case FamilyDAG:
		return "dag"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Default instance-size caps of the branch-and-bound searches, above the
// blind-enumeration defaults because pruning shrinks the explored tree by
// orders of magnitude (Options.MaxExactN overrides all of them).
const (
	bnbMaxChainN  = 12
	bnbMaxForestN = 7
	bnbMaxDAGN    = 5
)

// Stats reports the search effort of one branch-and-bound run.
type Stats struct {
	// Expanded counts partial assignments whose bound was computed.
	Expanded int64
	// Pruned counts subtrees discarded because their bound exceeded the
	// incumbent (including infeasible DAG subtrees cut without a bound).
	Pruned int64
	// Evaluated counts complete graphs whose objective was computed — the
	// number a blind enumeration of the family would drive to its total
	// candidate count.
	Evaluated int64
}

func (s *Stats) add(o Stats) {
	s.Expanded += o.Expanded
	s.Pruned += o.Pruned
	s.Evaluated += o.Evaluated
}

// incumbent is the shared pruning threshold of one branch-and-bound run:
// the best objective value proved achievable so far, monotonically
// non-increasing. Workers read it on every expansion — through a
// generation-stamped per-shard cache, so the hot path is one atomic load
// rather than a contended mutex — and offer every improvement they
// evaluate. A stale (higher) cached value only weakens strict pruning,
// never breaks it.
type incumbent struct {
	gen atomic.Uint64 // bumped on every improvement
	mu  sync.Mutex
	ok  bool
	val rat.Rat
}

// offer lowers the incumbent to v if v improves it.
func (in *incumbent) offer(v rat.Rat) {
	in.mu.Lock()
	if !in.ok || v.Less(in.val) {
		in.val, in.ok = v, true
		in.gen.Add(1)
	}
	in.mu.Unlock()
}

// incumbentCache is one worker's snapshot of the shared incumbent,
// refreshed only when the generation counter says it changed.
type incumbentCache struct {
	gen uint64
	ok  bool
	val rat.Rat
}

// prunes reports whether a subtree with the given admissible bound can be
// discarded on the strength of the SHARED incumbent alone. The comparison
// is deliberately strict: a subtree whose bound equals the incumbent may
// still contain the graph the serial enumeration would return for that
// value, and cutting it would make the result depend on worker
// interleaving. Ties are cut by the shard-LOCAL rule instead (see
// bnbShard.prunes), which is interleaving-independent.
func (in *incumbent) prunes(c *incumbentCache, bound rat.Rat) bool {
	if g := in.gen.Load(); g != c.gen {
		in.mu.Lock()
		c.gen, c.ok, c.val = in.gen.Load(), in.ok, in.val
		in.mu.Unlock()
	}
	return c.ok && bound.Greater(c.val)
}

// bnbShard is one shard's outcome plus its local search counters, its
// cached view of the shared incumbent and its cancellation probe.
type bnbShard struct {
	shardResult
	stats Stats
	cache incumbentCache
	cc    cancelCheck
}

// prunes applies both pruning rules to one subtree bound. Against the
// shard's OWN best the comparison may include ties — the shard already
// holds its serial-first graph for that value, so cutting later ties
// changes nothing it reports and collapses the plateaus of equal-valued
// completions that dominate filtering instances. Against the shared
// incumbent the comparison stays strict so the result cannot depend on
// when other workers improve it.
func (sh *bnbShard) prunes(inc *incumbent, bound rat.Rat) bool {
	if sh.sol.Graph != nil && !bound.Less(sh.sol.Value) {
		return true
	}
	return inc.prunes(&sh.cache, bound)
}

// reduceBnBShards folds shard outcomes in shard order (like reduceShards)
// and accumulates the counters into opts.Stats when requested.
func reduceBnBShards(shards []bnbShard, opts Options) (Solution, error) {
	results := make([]shardResult, len(shards))
	var total Stats
	for i, sh := range shards {
		results[i] = sh.shardResult
		total.add(sh.stats)
	}
	if opts.Stats != nil {
		*opts.Stats = total
	}
	return reduceShards(results)
}

// ResolveFamily resolves FamilyAuto to the structural family the
// BranchBound method actually searches for this application and objective:
// DAGs with precedence constraints, forests for MINPERIOD without them
// (the Prop. 4 certificate), DAGs otherwise. Non-auto families pass
// through. Warm-start callers (the planning service) use it to check that
// a seed value is achievable within the searched family before offering it
// as Options.Incumbent.
func ResolveFamily(app *workflow.App, obj Objective, fam Family) Family {
	if fam != FamilyAuto {
		return fam
	}
	switch {
	case app.HasPrecedence():
		return FamilyDAG
	case obj == PeriodObjective:
		return FamilyForest
	default:
		return FamilyDAG
	}
}

// branchBound dispatches the BranchBound method to its family search.
func branchBound(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	switch ResolveFamily(app, obj, opts.Family) {
	case FamilyChain:
		return branchBoundChain(app, m, obj, opts)
	case FamilyForest:
		return branchBoundForest(app, m, obj, opts)
	case FamilyDAG:
		return branchBoundDAG(app, m, obj, opts)
	default:
		return Solution{}, fmt.Errorf("solve: unknown branch-and-bound family %v", opts.Family)
	}
}

// seedIncumbent primes the pruning threshold with fast in-family solutions:
// the greedy chain (a chain is a forest is a DAG) and the hill climb, both
// orchestrated with the same options as the search so their values are
// comparable — plus the caller's warm-start value (Options.Incumbent), the
// re-evaluated cached plan of the planning service's drift re-planning.
// Seeds only feed pruning — the search returns the first enumerated graph
// reaching the optimum, never the seed itself.
func seedIncumbent(inc *incumbent, app *workflow.App, m plan.Model, obj Objective, opts Options) {
	if opts.Incumbent != nil {
		inc.offer(*opts.Incumbent)
	}
	if !app.HasPrecedence() {
		if s, err := greedyChainSolution(app, m, obj, opts); err == nil {
			inc.offer(s.Value)
		}
	}
	if s, err := hillClimb(app, m, obj, opts); err == nil {
		inc.offer(s.Value)
	}
}

// --- chains ---

// branchBoundChain proves optimality among all n! chains like exactChain,
// but places services position by position and cuts every prefix whose
// completion bound exceeds the incumbent. Candidate evaluation is the
// closed chain formula; only the winner is orchestrated.
func branchBoundChain(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: chain branch-and-bound requires no precedence constraints")
	}
	n := app.N()
	if n > maxN(opts, bnbMaxChainN) {
		return Solution{}, fmt.Errorf("solve: %d services too large for chain branch-and-bound (max %d)", n, maxN(opts, bnbMaxChainN))
	}
	inc := &incumbent{}
	if opts.Incumbent != nil {
		inc.offer(*opts.Incumbent)
	}
	if obj == PeriodObjective {
		inc.offer(ChainPeriodValue(app, GreedyChainOrder(app, m), m))
	} else {
		inc.offer(ChainLatencyValue(app, GreedyLatencyChainOrder(app)))
	}
	type cand struct {
		order []int
		val   rat.Rat
		found bool
		stats Stats
	}
	shards := par.Map(opts.Workers, n, func(i int) cand {
		order := make([]int, n)
		for j := range order {
			order[j] = j
		}
		order[0], order[i] = order[i], order[0]
		var best cand
		st := &best.stats

		// place computes the exact prefix state after appending service s:
		// the running objective and the data volume leaving the prefix.
		place := func(prefixObj, inProd rat.Rat, s int) (rat.Rat, rat.Rat) {
			if obj == PeriodObjective {
				nextObj := rat.Max(prefixObj, inProd.Mul(cexecUnit(app, m, s, 1)))
				return nextObj, inProd.Mul(app.Selectivity(s))
			}
			nextProd := inProd.Mul(app.Selectivity(s))
			return prefixObj.Add(inProd.Mul(app.Cost(s))).Add(nextProd), nextProd
		}

		// prunes combines the shard-local (ties allowed) and shared
		// (strict) rules, as bnbShard.prunes does for the graph searches.
		var cache incumbentCache
		prunes := func(bound rat.Rat) bool {
			if best.found && !bound.Less(best.val) {
				return true
			}
			return inc.prunes(&cache, bound)
		}

		cc := cancelCheck{ctx: opts.Ctx}
		var rec func(k int, prefixObj, inProd rat.Rat)
		rec = func(k int, prefixObj, inProd rat.Rat) {
			if cc.stop() {
				return
			}
			if k == n {
				st.Evaluated++
				if !best.found || prefixObj.Less(best.val) {
					best.order = append(best.order[:0], order...)
					best.val = prefixObj
					best.found = true
					inc.offer(prefixObj)
				}
				return
			}
			for i := k; i < n; i++ {
				order[k], order[i] = order[i], order[k]
				nextObj, nextProd := place(prefixObj, inProd, order[k])
				st.Expanded++
				if prunes(chainCompletionBound(app, m, obj, nextObj, nextProd, order[k+1:])) {
					st.Pruned++
				} else {
					rec(k+1, nextObj, nextProd)
				}
				order[k], order[i] = order[i], order[k]
			}
		}

		startObj := rat.Zero
		if obj == LatencyObjective {
			startObj = rat.One // the unit input communication
		}
		firstObj, firstProd := place(startObj, rat.One, order[0])
		st.Expanded++
		if prunes(chainCompletionBound(app, m, obj, firstObj, firstProd, order[1:])) {
			st.Pruned++
		} else {
			rec(1, firstObj, firstProd)
		}
		return best
	})
	var winner cand
	var total Stats
	for _, sh := range shards {
		total.add(sh.stats)
		if !sh.found {
			continue
		}
		if !winner.found || sh.val.Less(winner.val) {
			winner = sh
			winner.found = true
		}
	}
	if opts.Stats != nil {
		*opts.Stats = total
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	if !winner.found {
		return Solution{}, fmt.Errorf("solve: chain branch-and-bound found no plan")
	}
	eg, err := plan.ChainFromOrder(app, winner.order)
	if err != nil {
		return Solution{}, err
	}
	sched, err := evaluate(eg, m, obj, opts.orchWide())
	if err != nil {
		return Solution{}, err
	}
	// Optimal among chains, like ExactChain — not globally.
	return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
}

// --- forests ---

// branchBoundForest proves the same optimum as exactForest (globally
// optimal for MINPERIOD without precedence constraints, Prop. 4) while
// assigning parents node by node and cutting every partial assignment whose
// bound exceeds the incumbent.
func branchBoundForest(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: forest branch-and-bound requires no precedence constraints")
	}
	n := app.N()
	if n > maxN(opts, bnbMaxForestN) {
		return Solution{}, fmt.Errorf("solve: %d services too large for forest branch-and-bound (max %d)", n, maxN(opts, bnbMaxForestN))
	}
	inc := &incumbent{}
	seedIncumbent(inc, app, m, obj, opts)
	prefixes := forestPrefixes(n, 2)
	shards := par.Map(opts.Workers, len(prefixes), func(i int) bnbShard {
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -1
		}
		copy(parent, prefixes[i])
		var sh bnbShard
		sh.cc = cancelCheck{ctx: opts.Ctx}
		sh.stats.Expanded++
		if sh.prunes(inc, forestPartialBound(app, m, obj, parent, len(prefixes[i]))) {
			sh.stats.Pruned++
			return sh
		}
		bnbForestRec(app, m, obj, opts, inc, parent, len(prefixes[i]), &sh)
		return sh
	})
	sol, firstErr := reduceBnBShards(shards, opts)
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	if sol.Graph == nil {
		return Solution{}, fmt.Errorf("solve: forest branch-and-bound found no plan: %v", firstErr)
	}
	sol.Exact = obj == PeriodObjective && sol.Sched.Exact && m != plan.OutOrder
	return sol, nil
}

// bnbForestRec extends the partial assignment at node v in the serial
// enumeration order (root first, then each non-cyclic parent), bounding
// every extension before descending and orchestrating only surviving
// complete forests.
func bnbForestRec(app *workflow.App, m plan.Model, obj Objective, opts Options, inc *incumbent, parent []int, v int, sh *bnbShard) {
	if sh.cc.stop() {
		return
	}
	n := len(parent)
	if v == n {
		sh.stats.Evaluated++
		eg, err := plan.FromGraph(app, forestGraph(parent))
		if err != nil {
			return
		}
		sched, err := evaluate(eg, m, obj, opts)
		if err != nil {
			if sh.err == nil {
				sh.err = err
			}
			return
		}
		if sh.sol.Graph == nil || sched.Value.Less(sh.sol.Value) {
			sh.sol = Solution{Graph: eg, Sched: sched, Value: sched.Value}
			inc.offer(sched.Value)
		}
		return
	}
	descend := func() {
		sh.stats.Expanded++
		if sh.prunes(inc, forestPartialBound(app, m, obj, parent, v+1)) {
			sh.stats.Pruned++
			return
		}
		bnbForestRec(app, m, obj, opts, inc, parent, v+1, sh)
	}
	parent[v] = -1
	descend()
	for p := 0; p < n; p++ {
		if p == v || parentChainReaches(parent, p, v) {
			continue
		}
		parent[v] = p
		descend()
	}
	parent[v] = -1
}

// parentChainReaches reports whether following parent pointers from p
// reaches v — i.e. making p the parent of v would close a cycle.
func parentChainReaches(parent []int, p, v int) bool {
	for a := p; a != -1; a = parent[a] {
		if a == v {
			return true
		}
	}
	return false
}

// --- DAGs ---

// branchBoundDAG proves the same optimum as exactDAG while orienting node
// pairs one at a time. Besides the bound, two feasibility cuts remove
// subtrees the blind enumeration would reject graph by graph: orientations
// that close a cycle, and orientations that reverse a precedence path
// (either makes every completion invalid).
func branchBoundDAG(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	n := app.N()
	if n > maxN(opts, bnbMaxDAGN) {
		return Solution{}, fmt.Errorf("solve: %d services too large for DAG branch-and-bound (max %d)", n, maxN(opts, bnbMaxDAGN))
	}
	inc := &incumbent{}
	seedIncumbent(inc, app, m, obj, opts)
	precClosure, err := app.Precedence().TransitiveClosure()
	if err != nil {
		return Solution{}, err
	}
	pairs := nodePairs(n)
	depth := 3
	if depth > len(pairs) {
		depth = len(pairs)
	}
	prefixes := dagPrefixes(n, depth)
	shards := par.Map(opts.Workers, len(prefixes), func(i int) bnbShard {
		var sh bnbShard
		sh.cc = cancelCheck{ctx: opts.Ctx}
		g := dag.New(n)
		for _, e := range prefixes[i] {
			if precClosure.HasEdge(e[1], e[0]) {
				sh.stats.Pruned++
				return sh // the shard's edge reverses a precedence path
			}
			g.AddEdge(e[0], e[1])
		}
		if !g.IsAcyclic() {
			sh.stats.Pruned++
			return sh
		}
		sh.stats.Expanded++
		if sh.prunes(inc, dagPartialBound(app, m, obj, g, precClosure, pairs, depth)) {
			sh.stats.Pruned++
			return sh
		}
		bnbDAGRec(app, m, obj, opts, inc, g, precClosure, pairs, depth, &sh)
		return sh
	})
	sol, firstErr := reduceBnBShards(shards, opts)
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	if sol.Graph == nil {
		return Solution{}, fmt.Errorf("solve: DAG branch-and-bound found no plan: %v", firstErr)
	}
	sol.Exact = sol.Sched.Exact && exactOrchestration(m, obj)
	return sol, nil
}

// bnbDAGRec decides pair i in the serial enumeration order (no edge, then
// u→v, then v→u), cutting infeasible orientations and bounded subtrees.
func bnbDAGRec(app *workflow.App, m plan.Model, obj Objective, opts Options, inc *incumbent, g *dag.Graph, precClosure *dag.Graph, pairs [][2]int, i int, sh *bnbShard) {
	if sh.cc.stop() {
		return
	}
	if i == len(pairs) {
		sh.stats.Evaluated++
		eg, err := plan.FromGraph(app, g)
		if err != nil {
			return // violates precedence constraints
		}
		sched, err := evaluate(eg, m, obj, opts)
		if err != nil {
			if sh.err == nil {
				sh.err = err
			}
			return
		}
		if sh.sol.Graph == nil || sched.Value.Less(sh.sol.Value) {
			sh.sol = Solution{Graph: eg, Sched: sched, Value: sched.Value}
			inc.offer(sched.Value)
		}
		return
	}
	descend := func() {
		sh.stats.Expanded++
		if sh.prunes(inc, dagPartialBound(app, m, obj, g, precClosure, pairs, i+1)) {
			sh.stats.Pruned++
			return
		}
		bnbDAGRec(app, m, obj, opts, inc, g, precClosure, pairs, i+1, sh)
	}
	withEdge := func(a, b int) {
		if precClosure.HasEdge(b, a) {
			sh.stats.Pruned++
			return // reversing a precedence path invalidates every completion
		}
		g.AddEdge(a, b)
		if g.IsAcyclic() {
			descend()
		} else {
			sh.stats.Pruned++ // every completion keeps the cycle
		}
		g.RemoveEdge(a, b)
	}
	u, v := pairs[i][0], pairs[i][1]
	descend()
	withEdge(u, v)
	withEdge(v, u)
}
