package solve

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

func smallOrch() orchestrate.Options {
	return orchestrate.Options{MaxExhaustive: 256, LocalSearchPasses: 2}
}

// --- E6/E7: the chain greedies match brute force over all n! chains ---

func TestGreedyChainPeriodMatchesExactChain(t *testing.T) {
	profiles := []gen.Profile{gen.Filtering, gen.Mixed, gen.Expanding}
	for seed := int64(0); seed < 12; seed++ {
		for _, p := range profiles {
			app := gen.App(gen.NewRand(seed), 6, p)
			for _, m := range plan.Models {
				greedy := ChainPeriodValue(app, GreedyChainOrder(app, m), m)
				var best rat.Rat
				first := true
				forEachChain(app.N(), func(order []int) bool {
					v := ChainPeriodValue(app, order, m)
					if first || v.Less(best) {
						best, first = v, false
					}
					return true
				})
				if !greedy.Equal(best) {
					t.Fatalf("seed %d profile %s model %s: greedy %s != optimal %s",
						seed, p, m, greedy, best)
				}
			}
		}
	}
}

func TestGreedyLatencyChainMatchesExactChain(t *testing.T) {
	profiles := []gen.Profile{gen.Filtering, gen.Mixed, gen.Expanding}
	for seed := int64(20); seed < 32; seed++ {
		for _, p := range profiles {
			app := gen.App(gen.NewRand(seed), 6, p)
			greedy := ChainLatencyValue(app, GreedyLatencyChainOrder(app))
			var best rat.Rat
			first := true
			forEachChain(app.N(), func(order []int) bool {
				v := ChainLatencyValue(app, order)
				if first || v.Less(best) {
					best, first = v, false
				}
				return true
			})
			if !greedy.Equal(best) {
				t.Fatalf("seed %d profile %s: greedy %s != optimal %s", seed, p, greedy, best)
			}
		}
	}
}

// The closed-form chain values must agree with full orchestration.
func TestChainValuesAgreeWithOrchestration(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := gen.NewRand(seed)
		app := gen.App(rng, 2+rng.Intn(4), gen.Mixed)
		order := rng.Perm(app.N())
		eg, err := plan.ChainFromOrder(app, order)
		if err != nil {
			t.Fatal(err)
		}
		w := eg.Weighted()
		for _, m := range plan.Models {
			res, err := orchestrate.Period(w, m, smallOrch())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Value.Equal(ChainPeriodValue(app, order, m)) {
				t.Fatalf("seed %d %s: orchestrated %s != formula %s",
					seed, m, res.Value, ChainPeriodValue(app, order, m))
			}
		}
		lat, err := orchestrate.Latency(w, plan.InOrder, smallOrch())
		if err != nil {
			t.Fatal(err)
		}
		if !lat.Value.Equal(ChainLatencyValue(app, order)) {
			t.Fatalf("seed %d: latency %s != formula %s", seed, lat.Value, ChainLatencyValue(app, order))
		}
	}
}

// --- E9: Prop. 4 — forests suffice for MINPERIOD without precedence ---

func TestProp4ForestOptimalEqualsDAGOptimal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		app := gen.App(gen.NewRand(seed), 4, gen.Mixed)
		for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
			forest, err := MinPeriod(app, m, Options{Method: ExactForest, Orch: smallOrch()})
			if err != nil {
				t.Fatal(err)
			}
			dagSol, err := MinPeriod(app, m, Options{Method: ExactDAG, Orch: smallOrch()})
			if err != nil {
				t.Fatal(err)
			}
			if !forest.Value.Equal(dagSol.Value) {
				t.Fatalf("seed %d %s: forest optimum %s != DAG optimum %s",
					seed, m, forest.Value, dagSol.Value)
			}
			if !forest.Exact {
				t.Fatalf("seed %d %s: forest search must be exact for MINPERIOD", seed, m)
			}
		}
	}
}

func TestExactForestBeatsOrMatchesChains(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		app := gen.App(gen.NewRand(seed), 5, gen.Filtering)
		for _, m := range plan.Models {
			forest, err := MinPeriod(app, m, Options{Method: ExactForest, Orch: smallOrch()})
			if err != nil {
				t.Fatal(err)
			}
			chain, err := MinPeriod(app, m, Options{Method: ExactChain, Orch: smallOrch()})
			if err != nil {
				t.Fatal(err)
			}
			if forest.Value.Greater(chain.Value) {
				t.Fatalf("seed %d %s: forest optimum %s worse than chain optimum %s",
					seed, m, forest.Value, chain.Value)
			}
		}
	}
}

func TestMinPeriodAutoIsExactOnSmallInstances(t *testing.T) {
	app := gen.App(gen.NewRand(3), 5, gen.Mixed)
	sol, err := MinPeriod(app, plan.Overlap, Options{Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Fatal("auto method must be exact at n=5 under OVERLAP")
	}
	if err := sol.Sched.List.Validate(plan.Overlap); err != nil {
		t.Fatal(err)
	}
	if !sol.Graph.IsForest() {
		t.Fatal("optimal MINPERIOD plan should be reported from the forest family")
	}
}

func TestHillClimbNeverWorseThanGreedyChain(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		app := gen.App(gen.NewRand(seed), 7, gen.Filtering)
		for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
			greedy, err := MinPeriod(app, m, Options{Method: GreedyChain, Orch: smallOrch()})
			if err != nil {
				t.Fatal(err)
			}
			hc, err := MinPeriod(app, m, Options{Method: HillClimb, Orch: smallOrch(), Restarts: 1, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if hc.Value.Greater(greedy.Value) {
				t.Fatalf("seed %d %s: hill climb %s worse than its greedy seed %s",
					seed, m, hc.Value, greedy.Value)
			}
		}
	}
}

func TestHillClimbFindsForestWhenChainIsBad(t *testing.T) {
	// Miniature of the paper's B.1 counter-example: two cheap filters and
	// six expensive expanders. Chaining everything inflates downstream
	// volumes; the optimum splits the expanders across the two filters.
	services := []workflow.Service{
		{Cost: rat.I(4), Selectivity: rat.New(1, 2)},
		{Cost: rat.I(4), Selectivity: rat.New(1, 2)},
	}
	for i := 0; i < 6; i++ {
		services = append(services, workflow.Service{Cost: rat.I(8), Selectivity: rat.I(4)})
	}
	app := workflow.MustNew(services, nil)
	chain, err := MinPeriod(app, plan.Overlap, Options{Method: GreedyChain, Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := MinPeriod(app, plan.Overlap, Options{Method: HillClimb, Orch: smallOrch(), Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !hc.Value.Less(chain.Value) {
		t.Fatalf("hill climb %s should beat the chain %s on this instance", hc.Value, chain.Value)
	}
}

func TestMinLatencySmall(t *testing.T) {
	app := gen.App(gen.NewRand(11), 4, gen.Filtering)
	sol, err := MinLatency(app, plan.InOrder, Options{Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	chainVal := ChainLatencyValue(app, GreedyLatencyChainOrder(app))
	if sol.Value.Greater(chainVal) {
		t.Fatalf("optimal latency %s worse than greedy chain %s", sol.Value, chainVal)
	}
	for _, m := range plan.Models {
		if err := sol.Sched.List.Validate(m); err != nil {
			t.Fatalf("latency schedule invalid under %s: %v", m, err)
		}
	}
}

func TestExactDAGHonorsPrecedence(t *testing.T) {
	app := workflow.MustNew([]workflow.Service{
		{Cost: rat.I(2), Selectivity: rat.New(1, 2)},
		{Cost: rat.I(3), Selectivity: rat.One},
		{Cost: rat.I(1), Selectivity: rat.Two},
	}, [][2]int{{2, 0}}) // C3 must precede C1
	sol, err := MinPeriod(app, plan.Overlap, Options{Method: ExactDAG, Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sol.Graph.Graph().ClosureContains(app.Precedence())
	if err != nil || !ok {
		t.Fatalf("returned plan violates precedence (ok=%v err=%v)", ok, err)
	}
}

func TestAutoWithPrecedenceUsesDAGSearch(t *testing.T) {
	app := workflow.MustNew([]workflow.Service{
		{Cost: rat.I(2), Selectivity: rat.New(1, 2)},
		{Cost: rat.I(3), Selectivity: rat.One},
	}, [][2]int{{0, 1}})
	sol, err := MinPeriod(app, plan.InOrder, Options{Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Graph == nil || !sol.Graph.Graph().HasEdge(0, 1) {
		// With one constraint and two services every valid plan contains
		// the edge 0->1 (directly or transitively; with 2 nodes, directly).
		t.Fatal("plan must contain the precedence edge")
	}
}

func TestGreedyChainRejectsPrecedence(t *testing.T) {
	app := workflow.MustNew([]workflow.Service{
		{Cost: rat.One, Selectivity: rat.One},
		{Cost: rat.One, Selectivity: rat.One},
	}, [][2]int{{0, 1}})
	if _, err := MinPeriod(app, plan.Overlap, Options{Method: GreedyChain}); err == nil {
		t.Fatal("greedy chain must reject precedence-constrained instances")
	}
	if _, err := MinPeriod(app, plan.Overlap, Options{Method: ExactChain}); err == nil {
		t.Fatal("exact chain must reject precedence-constrained instances")
	}
	if _, err := MinPeriod(app, plan.Overlap, Options{Method: ExactForest}); err == nil {
		t.Fatal("exact forest must reject precedence-constrained instances")
	}
}

func TestSizeGuards(t *testing.T) {
	app := gen.App(gen.NewRand(1), 12, gen.Mixed)
	if _, err := MinPeriod(app, plan.Overlap, Options{Method: ExactChain}); err == nil {
		t.Fatal("n=12 must exceed the chain enumeration guard")
	}
	if _, err := MinPeriod(app, plan.Overlap, Options{Method: ExactForest}); err == nil {
		t.Fatal("n=12 must exceed the forest enumeration guard")
	}
	if _, err := MinPeriod(app, plan.Overlap, Options{Method: ExactDAG}); err == nil {
		t.Fatal("n=12 must exceed the DAG enumeration guard")
	}
}

func TestBiCriteria(t *testing.T) {
	app := gen.App(gen.NewRand(5), 4, gen.Filtering)
	// The unconstrained minimal latency and period give the anchors.
	latOpt, err := MinLatency(app, plan.InOrder, Options{Method: ExactDAG, Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	perOpt, err := MinPeriod(app, plan.InOrder, Options{Method: ExactForest, Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	// Loose bound: the bi-criteria latency can reach close to the optimum.
	loose, err := BiCriteria(app, plan.InOrder, latOpt.Value.MulInt(10), Options{Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Value.Less(latOpt.Value) {
		t.Fatalf("bi-criteria latency %s beats the unconstrained optimum %s", loose.Value, latOpt.Value)
	}
	// Tight bound at the optimal period must still be feasible.
	tight, err := BiCriteria(app, plan.InOrder, perOpt.Value, Options{Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Value.Less(loose.Value) {
		t.Fatal("tightening the period bound cannot improve latency")
	}
	// Infeasible bound.
	if _, err := BiCriteria(app, plan.InOrder, rat.New(1, 100), Options{Orch: smallOrch()}); err == nil {
		t.Fatal("absurd period bound must be infeasible")
	}
}

func TestMethodAndObjectiveStrings(t *testing.T) {
	names := map[Method]string{
		Auto: "auto", GreedyChain: "greedy-chain", ExactChain: "exact-chain",
		ExactForest: "exact-forest", ExactDAG: "exact-dag", HillClimb: "hill-climb",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(42).String() != "Method(42)" {
		t.Error("unknown method formatting")
	}
	if PeriodObjective.String() != "period" || LatencyObjective.String() != "latency" {
		t.Error("objective names wrong")
	}
}

func TestBiCriteriaLargeInstanceStructuredCandidates(t *testing.T) {
	// n > exact threshold exercises the structured-candidate branch
	// (parallel plan, greedy chains, k-strided sub-chains).
	app := gen.App(gen.NewRand(9), 9, gen.Filtering)
	per, err := MinPeriod(app, plan.Overlap, Options{Method: GreedyChain, Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := BiCriteria(app, plan.Overlap, per.Value.MulInt(3), Options{Orch: smallOrch()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Sched.List.Validate(plan.Overlap); err != nil {
		t.Fatal(err)
	}
	if _, err := BiCriteria(app, plan.Overlap, rat.New(1, 1000), Options{Orch: smallOrch()}); err == nil {
		t.Fatal("absurd bound must be infeasible")
	}
	withPrec := gen.AppWithPrecedence(gen.NewRand(2), 5, gen.Mixed, 0.5)
	if _, err := BiCriteria(withPrec, plan.Overlap, rat.I(100), Options{}); err == nil {
		t.Fatal("BiCriteria must reject precedence-constrained instances")
	}
}

func TestHillClimbDAGWithPrecedence(t *testing.T) {
	app := gen.AppWithPrecedence(gen.NewRand(4), 6, gen.Filtering, 0.25)
	if !app.HasPrecedence() {
		t.Skip("seed produced no precedence constraints")
	}
	for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
		var sol Solution
		var err error
		if obj == PeriodObjective {
			sol, err = MinPeriod(app, plan.InOrder, Options{Method: HillClimb, Orch: smallOrch()})
		} else {
			sol, err = MinLatency(app, plan.InOrder, Options{Method: HillClimb, Orch: smallOrch()})
		}
		if err != nil {
			t.Fatal(err)
		}
		ok, err := sol.Graph.Graph().ClosureContains(app.Precedence())
		if err != nil || !ok {
			t.Fatalf("%s: hill-climbed plan violates precedence", obj)
		}
		if err := sol.Sched.List.Validate(plan.InOrder); err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
	}
}

func TestMinLatencyHillClimbBeatsOrMatchesParallel(t *testing.T) {
	app := gen.App(gen.NewRand(6), 7, gen.Expanding)
	parallel, err := plan.Parallel(app)
	if err != nil {
		t.Fatal(err)
	}
	base, err := orchestrate.Latency(parallel.Weighted(), plan.InOrder, smallOrch())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MinLatency(app, plan.InOrder, Options{Method: HillClimb, Orch: smallOrch(), Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value.Greater(base.Value) {
		t.Fatalf("hill climb %s worse than its parallel seed %s", sol.Value, base.Value)
	}
}
