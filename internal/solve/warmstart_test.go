package solve

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/rat"
)

// TestIncumbentWarmStartPreservesSolution is the warm-start contract of
// Options.Incumbent: seeding the branch-and-bound incumbent with any value
// achievable within the searched family — the exact optimum, the optimum
// re-derived by re-evaluating the optimal graph, or a looser achievable
// value — returns the bit-identical Solution of the unseeded search, for
// every family and worker count.
func TestIncumbentWarmStartPreservesSolution(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		seed   int64
		family Family
		obj    Objective
		m      plan.Model
	}{
		{"chain/period", 7, 41, FamilyChain, PeriodObjective, plan.InOrder},
		{"chain/latency", 6, 42, FamilyChain, LatencyObjective, plan.InOrder},
		{"forest/period", 5, 43, FamilyForest, PeriodObjective, plan.Overlap},
		{"dag/latency", 4, 44, FamilyDAG, LatencyObjective, plan.InOrder},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := gen.App(gen.NewRand(tc.seed), tc.n, gen.Mixed)
			base := Options{Method: BranchBound, Family: tc.family, Workers: 1}
			cold := solveOnce(t, app, tc.m, tc.obj, base)
			coldDesc := describeSolution(cold)

			// Re-evaluating the optimal graph certifies an achievable
			// seed the way the planning service's drift path does.
			reeval, err := Reevaluate(cold.Graph, tc.m, tc.obj, base)
			if err != nil {
				t.Fatal(err)
			}
			if !reeval.Value.Equal(cold.Value) {
				t.Fatalf("re-evaluated optimum %s != solved optimum %s", reeval.Value, cold.Value)
			}

			loose := cold.Value.Mul(rat.New(3, 2))
			for _, seed := range []rat.Rat{cold.Value, reeval.Value, loose} {
				for _, workers := range []int{1, 4} {
					opts := base
					opts.Incumbent = &seed
					opts.Workers = workers
					warm := solveOnce(t, app, tc.m, tc.obj, opts)
					if got := describeSolution(warm); got != coldDesc {
						t.Errorf("incumbent=%s workers=%d changed the solution:\ncold:\n%s\nwarm:\n%s",
							seed, workers, coldDesc, got)
					}
				}
			}
		})
	}
}

// TestIncumbentWarmStartPrunesHarder checks the point of warm starting: an
// exact-optimum seed can only shrink the serial search tree relative to the
// unseeded run.
func TestIncumbentWarmStartPrunesHarder(t *testing.T) {
	app := gen.App(gen.NewRand(41), 7, gen.Mixed)
	var coldStats Stats
	cold := solveOnce(t, app, plan.InOrder, PeriodObjective,
		Options{Method: BranchBound, Family: FamilyChain, Workers: 1, Stats: &coldStats})

	var warmStats Stats
	opts := Options{Method: BranchBound, Family: FamilyChain, Workers: 1, Stats: &warmStats}
	opts.Incumbent = &cold.Value
	warm := solveOnce(t, app, plan.InOrder, PeriodObjective, opts)
	if describeSolution(warm) != describeSolution(cold) {
		t.Fatal("warm start changed the solution")
	}
	if warmStats.Expanded > coldStats.Expanded {
		t.Errorf("warm start expanded more nodes than cold: %d > %d",
			warmStats.Expanded, coldStats.Expanded)
	}
}

// TestIncumbentIgnoredByOtherMethods pins that non-branch-and-bound methods
// are unaffected by a (possibly bogus) incumbent seed.
func TestIncumbentIgnoredByOtherMethods(t *testing.T) {
	app := gen.App(gen.NewRand(45), 4, gen.Mixed)
	bogus := rat.New(1, 1000)
	for _, method := range []Method{ExactChain, ExactForest, ExactDAG, GreedyChain, HillClimb} {
		plainOpts := Options{Method: method, Workers: 1}
		seeded := plainOpts
		seeded.Incumbent = &bogus
		plainSol := solveOnce(t, app, plan.Overlap, PeriodObjective, plainOpts)
		seededSol := solveOnce(t, app, plan.Overlap, PeriodObjective, seeded)
		if describeSolution(plainSol) != describeSolution(seededSol) {
			t.Errorf("method %s: incumbent seed changed the solution", method)
		}
	}
}
