package solve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/workflow"
)

// describeSolution flattens everything observable about a Solution —
// objective value, exactness, execution graph, schedule period and the full
// operation list — so two solutions compare bit for bit.
func describeSolution(sol Solution) string {
	return fmt.Sprintf("value=%s exact=%v graph=%s lambda=%s latency=%s\n%s",
		sol.Value, sol.Exact, sol.Graph, sol.Sched.List.Period(),
		sol.Sched.List.Latency(), sol.Sched.List.Timeline())
}

func solveOnce(t *testing.T, app *workflow.App, m plan.Model, obj Objective, opts Options) Solution {
	t.Helper()
	var sol Solution
	var err error
	if obj == PeriodObjective {
		sol, err = MinPeriod(app, m, opts)
	} else {
		sol, err = MinLatency(app, m, opts)
	}
	if err != nil {
		t.Fatalf("%s/%s workers=%d: %v", m, obj, opts.Workers, err)
	}
	return sol
}

// TestParallelSolversDeterministic is the determinism contract of the
// package doc: for every method × model × objective combination, Workers: 1
// and Workers: N return the identical Solution — same objective value, same
// execution graph, same operation list.
func TestParallelSolversDeterministic(t *testing.T) {
	plain := gen.App(gen.NewRand(31), 4, gen.Mixed)
	withPrec := gen.AppWithPrecedence(gen.NewRand(8), 4, gen.Filtering, 0.3)
	if !withPrec.HasPrecedence() {
		t.Fatal("seed 8 must produce precedence constraints")
	}
	cases := []struct {
		name   string
		app    *workflow.App
		method Method
	}{
		{"exact-chain/plain", plain, ExactChain},
		{"exact-forest/plain", plain, ExactForest},
		{"exact-dag/plain", plain, ExactDAG},
		{"hill-climb/plain", plain, HillClimb},
		{"exact-dag/precedence", withPrec, ExactDAG},
		{"hill-climb/precedence", withPrec, HillClimb},
		// The branch-and-bound searches add the shared incumbent as a new
		// determinism hazard: pruning depends on when other workers improve
		// it. The two-rule pruning of bnb.go (strict against the shared
		// value, ties only against the shard-local best) must keep the
		// returned Solution bit-identical for every worker count.
		{"branch-bound/plain", plain, BranchBound},
		{"branch-bound/precedence", withPrec, BranchBound},
	}
	for _, tc := range cases {
		for _, m := range plan.Models {
			for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
				t.Run(fmt.Sprintf("%s/%s/%s", tc.name, m, obj), func(t *testing.T) {
					opts := Options{Method: tc.method, Orch: smallOrch(), Restarts: 2, Seed: 7}
					opts.Workers = 1
					serial := solveOnce(t, tc.app, m, obj, opts)
					want := describeSolution(serial)
					for _, workers := range []int{2, 8} {
						opts.Workers = workers
						got := describeSolution(solveOnce(t, tc.app, m, obj, opts))
						if got != want {
							t.Fatalf("workers=%d diverged from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
								workers, want, workers, got)
						}
					}
				})
			}
		}
	}
}

// TestBiCriteriaParallelDeterministic pins the sharded bi-criteria forest
// scan to its serial result.
func TestBiCriteriaParallelDeterministic(t *testing.T) {
	app := gen.App(gen.NewRand(5), 4, gen.Filtering)
	base := Options{Orch: smallOrch(), Workers: 1}
	per, err := MinPeriod(app, plan.InOrder, base)
	if err != nil {
		t.Fatal(err)
	}
	bound := per.Value.MulInt(2)
	serial, err := BiCriteria(app, plan.InOrder, bound, base)
	if err != nil {
		t.Fatal(err)
	}
	want := describeSolution(serial)
	for _, workers := range []int{2, 8} {
		opts := base
		opts.Workers = workers
		sol, err := BiCriteria(app, plan.InOrder, bound, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := describeSolution(sol); got != want {
			t.Fatalf("workers=%d diverged:\n%s\nvs\n%s", workers, want, got)
		}
	}
}

// TestForestShardsPartitionSerialEnumeration pins the shard construction
// to the serial reference: concatenating the completions of every prefix
// (in prefix order) must reproduce forEachForest's sequence exactly — same
// forests, same order, no drops, no duplicates.
func TestForestShardsPartitionSerialEnumeration(t *testing.T) {
	const n = 5
	var serial [][]int
	forEachForest(n, func(parent []int) bool {
		serial = append(serial, append([]int(nil), parent...))
		return true
	})
	var sharded [][]int
	for _, prefix := range forestPrefixes(n, 2) {
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -1
		}
		copy(parent, prefix)
		forEachForestFrom(parent, len(prefix), func(parent []int) bool {
			sharded = append(sharded, append([]int(nil), parent...))
			return true
		})
	}
	if len(serial) != len(sharded) {
		t.Fatalf("serial enumerates %d forests, shards %d", len(serial), len(sharded))
	}
	for i := range serial {
		for v := range serial[i] {
			if serial[i][v] != sharded[i][v] {
				t.Fatalf("forest %d differs: serial %v, sharded %v", i, serial[i], sharded[i])
			}
		}
	}
}

// TestDAGShardsPartitionSerialEnumeration is the same pin for the DAG
// space: prefix completions in prefix order reproduce forEachDAG exactly.
func TestDAGShardsPartitionSerialEnumeration(t *testing.T) {
	const n = 4
	encode := func(g *dag.Graph) string {
		s := ""
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if g.HasEdge(u, v) {
					s += fmt.Sprintf("%d>%d;", u, v)
				}
			}
		}
		return s
	}
	var serial []string
	forEachDAG(n, func(g *dag.Graph) bool {
		serial = append(serial, encode(g))
		return true
	})
	pairs := nodePairs(n)
	var sharded []string
	for _, prefix := range dagPrefixes(n, 3) {
		g := dag.New(n)
		for _, e := range prefix {
			g.AddEdge(e[0], e[1])
		}
		forEachDAGFrom(g, pairs, 3, func(g *dag.Graph) bool {
			sharded = append(sharded, encode(g))
			return true
		})
	}
	if len(serial) != len(sharded) {
		t.Fatalf("serial enumerates %d DAGs, shards %d", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("DAG %d differs: serial %q, sharded %q", i, serial[i], sharded[i])
		}
	}
}

// TestBranchBoundChainDeterministic extends the determinism contract to the
// chain family, whose shards race on the incumbent with closed-form
// evaluations (no orchestration), the tightest interleaving pressure of the
// three searches.
func TestBranchBoundChainDeterministic(t *testing.T) {
	app := gen.App(gen.NewRand(19), 7, gen.Mixed)
	for _, m := range plan.Models {
		for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
			opts := Options{Method: BranchBound, Family: FamilyChain, Orch: smallOrch()}
			opts.Workers = 1
			want := describeSolution(solveOnce(t, app, m, obj, opts))
			for _, workers := range []int{2, 8} {
				opts.Workers = workers
				if got := describeSolution(solveOnce(t, app, m, obj, opts)); got != want {
					t.Fatalf("%s/%s workers=%d diverged:\n%s\nvs\n%s", m, obj, workers, want, got)
				}
			}
		}
	}
}

// TestConcurrentBranchBound hammers the branch-and-bound path from many
// goroutines sharing one App so `go test -race` can see the incumbent's
// locking and any shared state in the bound computations.
func TestConcurrentBranchBound(t *testing.T) {
	app := gen.App(gen.NewRand(2), 4, gen.Mixed)
	opts := Options{Method: BranchBound, Orch: smallOrch(), Restarts: 1, Workers: 4}
	ref := solveOnce(t, app, plan.Overlap, PeriodObjective, opts)
	want := describeSolution(ref)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := MinPeriod(app, plan.Overlap, opts)
			if err != nil {
				errs <- err.Error()
				return
			}
			if got := describeSolution(sol); got != want {
				errs <- fmt.Sprintf("concurrent branch-and-bound diverged:\n%s", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestHillClimbSeedSensitivity sanity-checks the per-restart RNG plumbing:
// a fixed seed reproduces itself.
func TestHillClimbSeedSensitivity(t *testing.T) {
	app := gen.App(gen.NewRand(13), 14, gen.Mixed) // n > 12 exercises the sampled neighborhood
	opts := Options{Method: HillClimb, Orch: smallOrch(), Restarts: 2, Seed: 3, Workers: 2}
	a := solveOnce(t, app, plan.Overlap, PeriodObjective, opts)
	b := solveOnce(t, app, plan.Overlap, PeriodObjective, opts)
	if describeSolution(a) != describeSolution(b) {
		t.Fatal("same seed, same workers: results differ")
	}
}

// TestConcurrentSolves hammers the solvers from many goroutines sharing one
// App so `go test -race` can see any shared mutable state in the search or
// evaluation path.
func TestConcurrentSolves(t *testing.T) {
	app := gen.App(gen.NewRand(2), 4, gen.Mixed)
	opts := Options{Method: ExactForest, Orch: smallOrch(), Workers: 4}
	ref := solveOnce(t, app, plan.Overlap, PeriodObjective, opts)
	want := describeSolution(ref)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := MinPeriod(app, plan.Overlap, opts)
			if err != nil {
				errs <- err.Error()
				return
			}
			if got := describeSolution(sol); got != want {
				errs <- fmt.Sprintf("concurrent solve diverged:\n%s", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
