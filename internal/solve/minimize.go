package solve

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// evaluate orchestrates the objective on one candidate execution graph.
func evaluate(eg *plan.ExecGraph, m plan.Model, obj Objective, orch orchestrate.Options) (orchestrate.Result, error) {
	w := eg.Weighted()
	if obj == PeriodObjective {
		return orchestrate.Period(w, m, orch)
	}
	return orchestrate.Latency(w, m, orch)
}

// MinPeriod solves MINPERIOD for the application under model m.
func MinPeriod(app *workflow.App, m plan.Model, opts Options) (Solution, error) {
	return minimize(app, m, PeriodObjective, opts)
}

// MinLatency solves MINLATENCY for the application under model m.
func MinLatency(app *workflow.App, m plan.Model, opts Options) (Solution, error) {
	return minimize(app, m, LatencyObjective, opts)
}

func minimize(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	opts = opts.withDefaults()
	method := opts.Method
	if method == Auto {
		method = autoMethod(app, obj, opts)
	}
	switch method {
	case GreedyChain:
		return greedyChainSolution(app, m, obj, opts)
	case ExactChain:
		return exactChain(app, m, obj, opts)
	case ExactForest:
		return exactForest(app, m, obj, opts)
	case ExactDAG:
		return exactDAG(app, m, obj, opts)
	case HillClimb:
		return hillClimb(app, m, obj, opts)
	default:
		return Solution{}, fmt.Errorf("solve: unknown method %v", opts.Method)
	}
}

func autoMethod(app *workflow.App, obj Objective, opts Options) Method {
	n := app.N()
	if app.HasPrecedence() {
		// DAG enumeration costs 3^(n(n-1)/2) orchestrations; keep the
		// automatic cutoff low and let callers raise MaxExactN knowingly.
		if n <= maxN(opts, 4) {
			return ExactDAG
		}
		return HillClimb
	}
	if obj == PeriodObjective && n <= maxN(opts, 6) {
		return ExactForest // sufficient by Prop. 4
	}
	if obj == LatencyObjective && n <= maxN(opts, 4) {
		return ExactDAG
	}
	return HillClimb
}

func maxN(opts Options, def int) int {
	if opts.MaxExactN > 0 {
		return opts.MaxExactN
	}
	return def
}

// greedyChainSolution builds the paper's greedy chain and orchestrates it.
func greedyChainSolution(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: the chain greedy applies only without precedence constraints")
	}
	var order []int
	if obj == PeriodObjective {
		order = GreedyChainOrder(app, m)
	} else {
		order = GreedyLatencyChainOrder(app)
	}
	eg, err := plan.ChainFromOrder(app, order)
	if err != nil {
		return Solution{}, err
	}
	sched, err := evaluate(eg, m, obj, opts.Orch)
	if err != nil {
		return Solution{}, err
	}
	// Optimal among chains (Prop. 8 / Prop. 16), not globally.
	return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
}

// exactChain enumerates all chains using the closed-form objective values
// and orchestrates only the winner.
func exactChain(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: chain enumeration requires no precedence constraints")
	}
	n := app.N()
	if n > maxN(opts, 8) {
		return Solution{}, fmt.Errorf("solve: %d services too large for exact chain enumeration (max %d)", n, maxN(opts, 8))
	}
	var best []int
	var bestVal rat.Rat
	forEachChain(n, func(order []int) bool {
		var v rat.Rat
		if obj == PeriodObjective {
			v = ChainPeriodValue(app, order, m)
		} else {
			v = ChainLatencyValue(app, order)
		}
		if best == nil || v.Less(bestVal) {
			best = append(best[:0], order...)
			bestVal = v
		}
		return true
	})
	eg, err := plan.ChainFromOrder(app, best)
	if err != nil {
		return Solution{}, err
	}
	sched, err := evaluate(eg, m, obj, opts.Orch)
	if err != nil {
		return Solution{}, err
	}
	return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
}

// exactForest enumerates all forests. For MINPERIOD without precedence
// constraints this family provably contains an optimal plan (Prop. 4), so
// the result is globally optimal when the orchestration is exact.
func exactForest(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: forest enumeration requires no precedence constraints")
	}
	n := app.N()
	if n > maxN(opts, 6) {
		return Solution{}, fmt.Errorf("solve: %d services too large for exact forest enumeration (max %d)", n, maxN(opts, 6))
	}
	var sol Solution
	var firstErr error
	forEachForest(n, func(parent []int) bool {
		eg, err := plan.FromGraph(app, forestGraph(parent))
		if err != nil {
			return true
		}
		sched, err := evaluate(eg, m, obj, opts.Orch)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return true
		}
		if sol.Graph == nil || sched.Value.Less(sol.Value) {
			sol = Solution{Graph: eg, Sched: sched, Value: sched.Value}
		}
		return true
	})
	if sol.Graph == nil {
		return Solution{}, fmt.Errorf("solve: forest enumeration found no plan: %v", firstErr)
	}
	sol.Exact = obj == PeriodObjective && sol.Sched.Exact && m != plan.OutOrder
	return sol, nil
}

// exactDAG enumerates all DAGs containing the precedence constraints.
func exactDAG(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	n := app.N()
	if n > maxN(opts, 5) {
		return Solution{}, fmt.Errorf("solve: %d services too large for exact DAG enumeration (max %d)", n, maxN(opts, 5))
	}
	var sol Solution
	var firstErr error
	forEachDAG(n, func(g *dag.Graph) bool {
		eg, err := plan.FromGraph(app, g)
		if err != nil {
			return true // violates precedence constraints
		}
		sched, err := evaluate(eg, m, obj, opts.Orch)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return true
		}
		if sol.Graph == nil || sched.Value.Less(sol.Value) {
			sol = Solution{Graph: eg, Sched: sched, Value: sched.Value}
		}
		return true
	})
	if sol.Graph == nil {
		return Solution{}, fmt.Errorf("solve: DAG enumeration found no plan: %v", firstErr)
	}
	// DAGs are fully general: exact whenever the orchestration is.
	sol.Exact = sol.Sched.Exact && exactOrchestration(m, obj)
	return sol, nil
}

// exactOrchestration reports whether the orchestration layer explores the
// full schedule space for the model/objective pair, so that exhaustive
// graph enumeration yields a certified optimum.
func exactOrchestration(m plan.Model, obj Objective) bool {
	if obj == PeriodObjective {
		// OVERLAP is Theorem-1 optimal; INORDER order search is complete
		// for the model; the OUTORDER family is a (pipelined) subset.
		return m != plan.OutOrder
	}
	// Latency: one-port order search is complete; the multi-port
	// bandwidth-sharing construction is heuristic.
	return m != plan.Overlap
}

// hillClimb performs randomized local search: over forests (parent vectors)
// without precedence constraints, over DAG edge sets with them. Seeds: the
// parallel plan, the greedy chain, plus random restarts.
func hillClimb(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	if app.HasPrecedence() {
		return hillClimbDAG(app, m, obj, opts, rng)
	}
	return hillClimbForest(app, m, obj, opts, rng)
}

func hillClimbForest(app *workflow.App, m plan.Model, obj Objective, opts Options, rng *rand.Rand) (Solution, error) {
	n := app.N()
	// Evaluation budget: full orchestration per candidate is the dominant
	// cost, so the neighborhood is sampled on large instances and the
	// climb stops when the budget runs out.
	budget := 400 + 40*n
	evalParent := func(parent []int) (Solution, error) {
		budget--
		eg, err := plan.FromGraph(app, forestGraph(parent))
		if err != nil {
			return Solution{}, err
		}
		sched, err := evaluate(eg, m, obj, opts.Orch)
		if err != nil {
			return Solution{}, err
		}
		return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
	}
	// candidateParents returns the parents to try for node v: all of them
	// on small instances, a random sample above.
	candidateParents := func(v int) []int {
		const sampleLimit = 12
		if n <= sampleLimit {
			out := make([]int, 0, n)
			out = append(out, -1)
			for p := 0; p < n; p++ {
				if p != v {
					out = append(out, p)
				}
			}
			return out
		}
		out := []int{-1}
		for len(out) < sampleLimit {
			p := rng.Intn(n)
			if p != v {
				out = append(out, p)
			}
		}
		return out
	}

	// Seed 1: parallel plan. Seed 2: greedy chain. Then random forests.
	seeds := [][]int{make([]int, n)}
	for i := range seeds[0] {
		seeds[0][i] = -1
	}
	var chainOrder []int
	if obj == PeriodObjective {
		chainOrder = GreedyChainOrder(app, m)
	} else {
		chainOrder = GreedyLatencyChainOrder(app)
	}
	chainParent := make([]int, n)
	chainParent[chainOrder[0]] = -1
	for i := 1; i < n; i++ {
		chainParent[chainOrder[i]] = chainOrder[i-1]
	}
	seeds = append(seeds, chainParent)
	for r := 0; r < opts.Restarts; r++ {
		p := make([]int, n)
		perm := rng.Perm(n)
		p[perm[0]] = -1
		for i := 1; i < n; i++ {
			if rng.Intn(3) == 0 {
				p[perm[i]] = -1
			} else {
				p[perm[i]] = perm[rng.Intn(i)]
			}
		}
		seeds = append(seeds, p)
	}

	var best Solution
	for _, seed := range seeds {
		cur := append([]int(nil), seed...)
		curSol, err := evalParent(cur)
		if err != nil {
			continue
		}
		if best.Graph == nil || curSol.Value.Less(best.Value) {
			best = curSol
		}
		for improved := true; improved && budget > 0; {
			improved = false
			for v := 0; v < n && budget > 0; v++ {
				old := cur[v]
				for _, p := range candidateParents(v) {
					if p == old {
						continue
					}
					cur[v] = p
					if p >= 0 && createsCycle(cur, v) {
						cur[v] = old
						continue
					}
					sol, err := evalParent(cur)
					if err == nil && sol.Value.Less(curSol.Value) {
						curSol = sol
						old = p
						improved = true
						if sol.Value.Less(best.Value) {
							best = sol
						}
					} else {
						cur[v] = old
					}
					if budget <= 0 {
						break
					}
				}
			}
		}
	}
	if best.Graph == nil {
		return Solution{}, fmt.Errorf("solve: hill climbing found no feasible plan")
	}
	return best, nil
}

// createsCycle reports whether parent pointers starting at parent[v] reach v.
func createsCycle(parent []int, v int) bool {
	for a := parent[v]; a != -1; a = parent[a] {
		if a == v {
			return true
		}
	}
	return false
}

func hillClimbDAG(app *workflow.App, m plan.Model, obj Objective, opts Options, rng *rand.Rand) (Solution, error) {
	n := app.N()
	budget := 400 + 40*n
	evalGraph := func(g *dag.Graph) (Solution, error) {
		budget--
		eg, err := plan.FromGraph(app, g)
		if err != nil {
			return Solution{}, err
		}
		sched, err := evaluate(eg, m, obj, opts.Orch)
		if err != nil {
			return Solution{}, err
		}
		return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
	}
	cur := app.Precedence().Clone()
	curSol, err := evalGraph(cur)
	if err != nil {
		return Solution{}, err
	}
	best := curSol
	for improved := true; improved && budget > 0; {
		improved = false
		for u := 0; u < n && budget > 0; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				var undo func()
				if cur.HasEdge(u, v) {
					cur.RemoveEdge(u, v)
					undo = func() { cur.AddEdge(u, v) }
				} else {
					cur.AddEdge(u, v)
					undo = func() { cur.RemoveEdge(u, v) }
				}
				if !cur.IsAcyclic() {
					undo()
					continue
				}
				sol, err := evalGraph(cur)
				if err == nil && sol.Value.Less(curSol.Value) {
					curSol = sol
					improved = true
					if sol.Value.Less(best.Value) {
						best = sol
					}
				} else {
					undo()
				}
			}
		}
	}
	_ = rng
	return best, nil
}

// BiCriteria minimizes latency subject to a period bound (the bi-criteria
// problem the paper's conclusion raises): it scans the forest family (plus
// the greedy chains) for plans whose period under m stays within bound and
// returns the best-latency one.
func BiCriteria(app *workflow.App, m plan.Model, periodBound rat.Rat, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: BiCriteria requires no precedence constraints")
	}
	opts = opts.withDefaults()
	n := app.N()
	var best Solution
	tryGraph := func(eg *plan.ExecGraph) {
		w := eg.Weighted()
		per, err := orchestrate.Period(w, m, opts.Orch)
		if err != nil || per.Value.Greater(periodBound) {
			return
		}
		lat, err := orchestrate.Latency(w, m, opts.Orch)
		if err != nil {
			return
		}
		if best.Graph == nil || lat.Value.Less(best.Value) {
			best = Solution{Graph: eg, Sched: lat, Value: lat.Value}
		}
	}
	if n <= maxN(opts, 6) {
		forEachForest(n, func(parent []int) bool {
			if eg, err := plan.FromGraph(app, forestGraph(parent)); err == nil {
				tryGraph(eg)
			}
			return true
		})
	} else {
		// Structured candidates: parallel, both greedy chains, and greedy
		// chains split into k parallel sub-chains.
		if eg, err := plan.Parallel(app); err == nil {
			tryGraph(eg)
		}
		for _, order := range [][]int{GreedyChainOrder(app, m), GreedyLatencyChainOrder(app)} {
			if eg, err := plan.ChainFromOrder(app, order); err == nil {
				tryGraph(eg)
			}
			for k := 2; k <= 4 && k <= n; k++ {
				var edges [][2]int
				for i := 0; i < n; i++ {
					if i >= k {
						edges = append(edges, [2]int{order[i-k], order[i]})
					}
				}
				if eg, err := plan.Build(app, edges); err == nil {
					tryGraph(eg)
				}
			}
		}
	}
	if best.Graph == nil {
		return Solution{}, fmt.Errorf("solve: no plan meets period bound %s under %s", periodBound, m)
	}
	return best, nil
}
