package solve

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/orchestrate"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// evaluate orchestrates the objective on one candidate execution graph,
// through the solve's orchestration memo when one is set: identical
// weighted graphs reached anywhere in the search orchestrate once.
func evaluate(eg *plan.ExecGraph, m plan.Model, obj Objective, opts Options) (orchestrate.Result, error) {
	w := eg.Weighted()
	if p := opts.Probe; p != nil {
		return p.evaluate(w, m, obj, opts)
	}
	if obj == PeriodObjective {
		return orchestrate.PeriodMemo(opts.Memo, w, m, opts.Orch)
	}
	return orchestrate.LatencyMemo(opts.Memo, w, m, opts.Orch)
}

// MinPeriod solves MINPERIOD for the application under model m.
func MinPeriod(app *workflow.App, m plan.Model, opts Options) (Solution, error) {
	return minimize(app, m, PeriodObjective, opts)
}

// MinLatency solves MINLATENCY for the application under model m.
func MinLatency(app *workflow.App, m plan.Model, opts Options) (Solution, error) {
	return minimize(app, m, LatencyObjective, opts)
}

// Reevaluate orchestrates one fixed execution graph under the same option
// normalization as the plan searches and returns the resulting Solution
// (never marked Exact — no search was performed). It is the warm-start
// companion of Options.Incumbent: re-evaluating a previously optimal graph
// on an instance whose costs or selectivities drifted yields a certified
// achievable objective to seed the branch-and-bound incumbent with.
func Reevaluate(eg *plan.ExecGraph, m plan.Model, obj Objective, opts Options) (Solution, error) {
	opts = opts.withDefaults()
	sched, err := evaluate(eg, m, obj, opts.orchWide())
	if err != nil {
		return Solution{}, err
	}
	return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
}

func minimize(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	opts = opts.withDefaults()
	// An already-expired request costs nothing: fail before any search
	// state is built (the searches poll the context periodically after).
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	method := opts.Method
	if method == Auto {
		method = autoMethod(app, obj, opts)
	}
	// The orchestration memo pays exactly where a search revisits
	// candidate graphs: hill-climb seeds/restarts converging on the same
	// forests, and branch-and-bound re-reaching the graphs its incumbent
	// seeding (greedy chain + hill climb, sharing this memo) already
	// orchestrated. The blind enumerations visit each graph once, so they
	// stay memo-less unless the caller supplies one.
	if opts.Memo == nil && !opts.NoMemo && (method == HillClimb || method == BranchBound) {
		opts.Memo = orchestrate.NewMemo(0)
	}
	switch method {
	case GreedyChain:
		return greedyChainSolution(app, m, obj, opts)
	case ExactChain:
		return exactChain(app, m, obj, opts)
	case ExactForest:
		return exactForest(app, m, obj, opts)
	case ExactDAG:
		return exactDAG(app, m, obj, opts)
	case HillClimb:
		return hillClimb(app, m, obj, opts)
	case BranchBound:
		return branchBound(app, m, obj, opts)
	default:
		return Solution{}, fmt.Errorf("solve: unknown method %v", opts.Method)
	}
}

func autoMethod(app *workflow.App, obj Objective, opts Options) Method {
	n := app.N()
	if app.HasPrecedence() {
		// DAG enumeration costs 3^(n(n-1)/2) orchestrations; keep the
		// automatic cutoff low. Above it, branch-and-bound extends the
		// exactly solvable band — it certifies the identical optimum, so
		// raising MaxExactN widens that band rather than the blind one.
		blind, bnb := autoBand(opts, 4, bnbMaxDAGN)
		switch {
		case n <= blind:
			return ExactDAG
		case n <= bnb:
			return BranchBound
		}
		return HillClimb
	}
	if obj == PeriodObjective {
		blind, bnb := autoBand(opts, 6, bnbMaxForestN)
		switch {
		case n <= blind:
			return ExactForest // sufficient by Prop. 4
		case n <= bnb:
			return BranchBound // same Prop. 4 certificate, pruned search
		}
		return HillClimb
	}
	blind, bnb := autoBand(opts, 4, bnbMaxDAGN)
	switch {
	case n <= blind:
		return ExactDAG
	case n <= bnb:
		return BranchBound
	}
	return HillClimb
}

// autoBand resolves Auto's two exact cutoffs: blind enumeration up to its
// default, branch-and-bound above it. MaxExactN moves only the outer
// (branch-and-bound) cutoff when raised — both searches certify the same
// optimum, so the extra headroom goes to the pruned one — and caps both
// when lowered below the blind default.
func autoBand(opts Options, blindDef, bnbDef int) (blind, bnb int) {
	blind = blindDef
	if opts.MaxExactN > 0 && opts.MaxExactN < blind {
		blind = opts.MaxExactN
	}
	bnb = maxN(opts, bnbDef)
	if bnb < blind {
		bnb = blind
	}
	return blind, bnb
}

func maxN(opts Options, def int) int {
	if opts.MaxExactN > 0 {
		return opts.MaxExactN
	}
	return def
}

// greedyChainSolution builds the paper's greedy chain and orchestrates it.
func greedyChainSolution(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: the chain greedy applies only without precedence constraints")
	}
	var order []int
	if obj == PeriodObjective {
		order = GreedyChainOrder(app, m)
	} else {
		order = GreedyLatencyChainOrder(app)
	}
	eg, err := plan.ChainFromOrder(app, order)
	if err != nil {
		return Solution{}, err
	}
	sched, err := evaluate(eg, m, obj, opts.orchWide())
	if err != nil {
		return Solution{}, err
	}
	// Optimal among chains (Prop. 8 / Prop. 16), not globally.
	return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
}

// exactChain enumerates all chains using the closed-form objective values
// and orchestrates only the winner. The n! orders are sharded by first
// service across the worker pool.
func exactChain(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: chain enumeration requires no precedence constraints")
	}
	n := app.N()
	if n > maxN(opts, 8) {
		return Solution{}, fmt.Errorf("solve: %d services too large for exact chain enumeration (max %d)", n, maxN(opts, 8))
	}
	type cand struct {
		order []int
		val   rat.Rat
	}
	winner, _ := par.MapBest(opts.Workers, n, func(i int) par.Candidate[cand] {
		var best cand
		found := false
		cc := cancelCheck{ctx: opts.Ctx}
		forEachChainShard(n, i, func(order []int) bool {
			if cc.stop() {
				return false
			}
			var v rat.Rat
			if obj == PeriodObjective {
				v = ChainPeriodValue(app, order, m)
			} else {
				v = ChainLatencyValue(app, order)
			}
			if !found || v.Less(best.val) {
				best.order = append(best.order[:0], order...)
				best.val = v
				found = true
			}
			return true
		})
		return par.Candidate[cand]{Value: best, OK: found}
	}, func(a, b cand) bool { return a.val.Less(b.val) })
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	eg, err := plan.ChainFromOrder(app, winner.order)
	if err != nil {
		return Solution{}, err
	}
	sched, err := evaluate(eg, m, obj, opts.orchWide())
	if err != nil {
		return Solution{}, err
	}
	return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
}

// exactForest enumerates all forests. For MINPERIOD without precedence
// constraints this family provably contains an optimal plan (Prop. 4), so
// the result is globally optimal when the orchestration is exact.
func exactForest(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: forest enumeration requires no precedence constraints")
	}
	n := app.N()
	if n > maxN(opts, 6) {
		return Solution{}, fmt.Errorf("solve: %d services too large for exact forest enumeration (max %d)", n, maxN(opts, 6))
	}
	sol, firstErr := reduceShards(forestShards(n, opts.Workers, opts.Ctx, func(parent []int, r *shardResult) {
		eg, err := plan.FromGraph(app, forestGraph(parent))
		if err != nil {
			return
		}
		sched, err := evaluate(eg, m, obj, opts)
		if err != nil {
			if r.err == nil {
				r.err = err
			}
			return
		}
		if r.sol.Graph == nil || sched.Value.Less(r.sol.Value) {
			r.sol = Solution{Graph: eg, Sched: sched, Value: sched.Value}
		}
	}))
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	if sol.Graph == nil {
		return Solution{}, fmt.Errorf("solve: forest enumeration found no plan: %v", firstErr)
	}
	sol.Exact = obj == PeriodObjective && sol.Sched.Exact && m != plan.OutOrder
	return sol, nil
}

// shardResult is one enumeration shard's outcome: its best solution (nil
// graph when the shard was infeasible) and the first evaluation error it
// hit.
type shardResult struct {
	sol Solution
	err error
}

// forestShards runs the sharded forest enumeration on the worker pool:
// forests are partitioned by the parent assignment of the first two nodes,
// try sees every complete parent vector of its shard together with the
// shard's accumulator, and the per-shard results come back in serial
// prefix order (ready for reduceShards). A done ctx stops every shard at
// its next probe (the caller detects the abort via ctxErr).
func forestShards(n, workers int, ctx context.Context, try func(parent []int, r *shardResult)) []shardResult {
	prefixes := forestPrefixes(n, 2)
	return par.Map(workers, len(prefixes), func(i int) shardResult {
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -1
		}
		copy(parent, prefixes[i])
		var r shardResult
		cc := cancelCheck{ctx: ctx}
		forEachForestFrom(parent, len(prefixes[i]), func(parent []int) bool {
			if cc.stop() {
				return false
			}
			try(parent, &r)
			return true
		})
		return r
	})
}

// reduceShards folds shard results in shard order, keeping the first
// strictly-best solution and the first error — exactly what the serial
// enumeration would have kept.
func reduceShards(shards []shardResult) (Solution, error) {
	var sol Solution
	var firstErr error
	for _, r := range shards {
		if firstErr == nil {
			firstErr = r.err
		}
		if r.sol.Graph == nil {
			continue
		}
		if sol.Graph == nil || r.sol.Value.Less(sol.Value) {
			sol = r.sol
		}
	}
	return sol, firstErr
}

// exactDAG enumerates all DAGs containing the precedence constraints.
func exactDAG(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	n := app.N()
	if n > maxN(opts, 5) {
		return Solution{}, fmt.Errorf("solve: %d services too large for exact DAG enumeration (max %d)", n, maxN(opts, 5))
	}
	// Shard by the orientation of the first pairs (3^depth shards), each
	// worker completing its prefix on a private graph copy.
	pairs := nodePairs(n)
	depth := 3
	if depth > len(pairs) {
		depth = len(pairs)
	}
	prefixes := dagPrefixes(n, depth)
	shards := par.Map(opts.Workers, len(prefixes), func(i int) shardResult {
		g := dag.New(n)
		for _, e := range prefixes[i] {
			g.AddEdge(e[0], e[1])
		}
		var r shardResult
		cc := cancelCheck{ctx: opts.Ctx}
		forEachDAGFrom(g, pairs, depth, func(g *dag.Graph) bool {
			if cc.stop() {
				return false
			}
			eg, err := plan.FromGraph(app, g)
			if err != nil {
				return true // violates precedence constraints
			}
			sched, err := evaluate(eg, m, obj, opts)
			if err != nil {
				if r.err == nil {
					r.err = err
				}
				return true
			}
			if r.sol.Graph == nil || sched.Value.Less(r.sol.Value) {
				r.sol = Solution{Graph: eg, Sched: sched, Value: sched.Value}
			}
			return true
		})
		return r
	})
	sol, firstErr := reduceShards(shards)
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	if sol.Graph == nil {
		return Solution{}, fmt.Errorf("solve: DAG enumeration found no plan: %v", firstErr)
	}
	// DAGs are fully general: exact whenever the orchestration is.
	sol.Exact = sol.Sched.Exact && exactOrchestration(m, obj)
	return sol, nil
}

// exactOrchestration reports whether the orchestration layer explores the
// full schedule space for the model/objective pair, so that exhaustive
// graph enumeration yields a certified optimum.
func exactOrchestration(m plan.Model, obj Objective) bool {
	if obj == PeriodObjective {
		// OVERLAP is Theorem-1 optimal; INORDER order search is complete
		// for the model; the OUTORDER family is a (pipelined) subset.
		return m != plan.OutOrder
	}
	// Latency: one-port order search is complete; the multi-port
	// bandwidth-sharing construction is heuristic.
	return m != plan.Overlap
}

// hillClimb performs randomized local search: over forests (parent vectors)
// without precedence constraints, over DAG edge sets with them. Seeds: the
// parallel plan, the greedy chain (resp. the bare precedence graph and its
// random densifications), plus random restarts. The climbs from distinct
// seeds are independent — each owns its RNG (derived from Options.Seed and
// the restart index) and its share of the evaluation budget — and run
// concurrently on the worker pool; the per-climb winners are reduced in
// restart order, so the result does not depend on the worker count.
func hillClimb(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return hillClimbDAG(app, m, obj, opts)
	}
	return hillClimbForest(app, m, obj, opts)
}

// climbRand returns the private RNG of restart i (a SplitMix64-style mix of
// the user seed and the restart index, so distinct restarts decorrelate even
// for adjacent seeds).
func climbRand(seed int64, i int) *rand.Rand {
	x := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return rand.New(rand.NewSource(int64(x)))
}

// climbBudget splits the total evaluation budget (full orchestration per
// candidate is the dominant cost) evenly across the restarts.
func climbBudget(n, restarts int) int {
	return (400 + 40*n + restarts - 1) / restarts
}

func hillClimbForest(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	n := app.N()
	// Seed 1: parallel plan. Seed 2: greedy chain. Then random forests,
	// drawn from a dedicated RNG so the seed list is a pure function of
	// Options.Seed.
	seeds := [][]int{make([]int, n)}
	for i := range seeds[0] {
		seeds[0][i] = -1
	}
	var chainOrder []int
	if obj == PeriodObjective {
		chainOrder = GreedyChainOrder(app, m)
	} else {
		chainOrder = GreedyLatencyChainOrder(app)
	}
	chainParent := make([]int, n)
	chainParent[chainOrder[0]] = -1
	for i := 1; i < n; i++ {
		chainParent[chainOrder[i]] = chainOrder[i-1]
	}
	seeds = append(seeds, chainParent)
	seedRng := rand.New(rand.NewSource(opts.Seed))
	for r := 0; r < opts.Restarts; r++ {
		p := make([]int, n)
		perm := seedRng.Perm(n)
		p[perm[0]] = -1
		for i := 1; i < n; i++ {
			if seedRng.Intn(3) == 0 {
				p[perm[i]] = -1
			} else {
				p[perm[i]] = perm[seedRng.Intn(i)]
			}
		}
		seeds = append(seeds, p)
	}

	shards := par.Map(opts.Workers, len(seeds), func(i int) shardResult {
		return climbForestFrom(app, m, obj, opts, seeds[i], climbBudget(n, len(seeds)), climbRand(opts.Seed, i))
	})
	best, firstErr := reduceShards(shards)
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	if best.Graph == nil {
		if firstErr != nil {
			return Solution{}, fmt.Errorf("solve: hill climbing found no feasible plan: %v", firstErr)
		}
		return Solution{}, fmt.Errorf("solve: hill climbing found no feasible plan")
	}
	return best, nil
}

// climbForestFrom runs one hill climb over forest parent vectors from the
// given start, spending at most budget orchestrations. Moves are evaluated
// incrementally: a forestEval recomputes only the touched subtree's volumes
// and orchestration is skipped (without charging the budget) whenever the
// moved forest's lower bound already rules out a strict improvement.
func climbForestFrom(app *workflow.App, m plan.Model, obj Objective, opts Options, seed []int, budget int, rng *rand.Rand) shardResult {
	n := app.N()
	evalParent := func(parent []int) (Solution, error) {
		budget--
		eg, err := plan.FromGraph(app, forestGraph(parent))
		if err != nil {
			return Solution{}, err
		}
		sched, err := evaluate(eg, m, obj, opts)
		if err != nil {
			return Solution{}, err
		}
		return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
	}
	// candidateParents returns the parents to try for node v: all of them
	// on small instances, a random sample above.
	candidateParents := func(v int) []int {
		const sampleLimit = 12
		if n <= sampleLimit {
			out := make([]int, 0, n)
			out = append(out, -1)
			for p := 0; p < n; p++ {
				if p != v {
					out = append(out, p)
				}
			}
			return out
		}
		out := []int{-1}
		for len(out) < sampleLimit {
			p := rng.Intn(n)
			if p != v {
				out = append(out, p)
			}
		}
		return out
	}

	var r shardResult
	cur := append([]int(nil), seed...)
	curSol, err := evalParent(cur)
	if err != nil {
		r.err = err
		return r
	}
	r.sol = curSol
	eval := newForestEval(app, cur)
	cc := cancelCheck{ctx: opts.Ctx}
	for improved := true; improved && budget > 0 && !cc.stop(); {
		improved = false
		for v := 0; v < n && budget > 0 && !cc.stop(); v++ {
			old := cur[v]
			for _, p := range candidateParents(v) {
				if p == old {
					continue
				}
				if p >= 0 && eval.CreatesCycle(v, p) {
					continue
				}
				eval.Move(v, p)
				cur[v] = p
				if !eval.Bound(m, obj).Less(curSol.Value) {
					// The incremental bound already reaches the current
					// value, so orchestration cannot return a strict
					// improvement: reject the move without spending budget.
					eval.Move(v, old)
					cur[v] = old
					continue
				}
				sol, err := evalParent(cur)
				if err == nil && sol.Value.Less(curSol.Value) {
					curSol = sol
					old = p
					improved = true
					if sol.Value.Less(r.sol.Value) {
						r.sol = sol
					}
				} else {
					eval.Move(v, old)
					cur[v] = old
				}
				if budget <= 0 {
					break
				}
			}
		}
	}
	return r
}

func hillClimbDAG(app *workflow.App, m plan.Model, obj Objective, opts Options) (Solution, error) {
	// Restart 0 climbs from the bare precedence graph; restarts 1..Restarts
	// from random acyclic densifications of it, so Restarts buys diversity
	// here exactly as in the forest climb.
	starts := []*dag.Graph{app.Precedence().Clone()}
	for r := 0; r < opts.Restarts; r++ {
		rng := climbRand(^opts.Seed, r)
		g := app.Precedence().Clone()
		n := app.N()
		for t := 0; t < 2*n; t++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v)
			if !g.IsAcyclic() {
				g.RemoveEdge(u, v)
			}
		}
		starts = append(starts, g)
	}
	shards := par.Map(opts.Workers, len(starts), func(i int) shardResult {
		return climbDAGFrom(app, m, obj, opts, starts[i], climbBudget(app.N(), len(starts)))
	})
	best, firstErr := reduceShards(shards)
	if err := ctxErr(opts.Ctx); err != nil {
		return Solution{}, err
	}
	if best.Graph == nil {
		return Solution{}, fmt.Errorf("solve: hill climbing found no feasible plan: %v", firstErr)
	}
	return best, nil
}

// climbDAGFrom runs one hill climb over DAG edge sets from the given start
// graph (which the climb mutates), spending at most budget orchestrations.
// Candidate graphs whose lower bound already reaches the current value are
// rejected before orchestration, without charging the budget.
func climbDAGFrom(app *workflow.App, m plan.Model, obj Objective, opts Options, cur *dag.Graph, budget int) shardResult {
	n := app.N()
	evalBuilt := func(eg *plan.ExecGraph) (Solution, error) {
		budget--
		sched, err := evaluate(eg, m, obj, opts)
		if err != nil {
			return Solution{}, err
		}
		return Solution{Graph: eg, Sched: sched, Value: sched.Value}, nil
	}
	var r shardResult
	start, err := plan.FromGraph(app, cur)
	if err != nil {
		r.err = err
		return r
	}
	curSol, err := evalBuilt(start)
	if err != nil {
		r.err = err
		return r
	}
	r.sol = curSol
	cc := cancelCheck{ctx: opts.Ctx}
	for improved := true; improved && budget > 0 && !cc.stop(); {
		improved = false
		for u := 0; u < n && budget > 0 && !cc.stop(); u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				var undo func()
				if cur.HasEdge(u, v) {
					cur.RemoveEdge(u, v)
					undo = func() { cur.AddEdge(u, v) }
				} else {
					cur.AddEdge(u, v)
					undo = func() { cur.RemoveEdge(u, v) }
				}
				if !cur.IsAcyclic() {
					undo()
					continue
				}
				eg, err := plan.FromGraph(app, cur)
				if err != nil {
					undo() // move violates the precedence constraints
					continue
				}
				if !graphBound(eg, m, obj).Less(curSol.Value) {
					undo() // cannot be a strict improvement; skip orchestration
					continue
				}
				sol, err := evalBuilt(eg)
				if err == nil && sol.Value.Less(curSol.Value) {
					curSol = sol
					improved = true
					if sol.Value.Less(r.sol.Value) {
						r.sol = sol
					}
				} else {
					undo()
				}
			}
		}
	}
	return r
}

// graphBound returns the objective-matching lower bound of one candidate
// execution graph: the per-server period bound or the longest-path latency
// bound. Orchestrated objectives never beat it under any model.
func graphBound(eg *plan.ExecGraph, m plan.Model, obj Objective) rat.Rat {
	if obj == PeriodObjective {
		return eg.PeriodLowerBound(m)
	}
	return eg.LatencyPathBound()
}

// BiCriteria minimizes latency subject to a period bound (the bi-criteria
// problem the paper's conclusion raises): it scans the forest family (plus
// the greedy chains) for plans whose period under m stays within bound and
// returns the best-latency one.
func BiCriteria(app *workflow.App, m plan.Model, periodBound rat.Rat, opts Options) (Solution, error) {
	if app.HasPrecedence() {
		return Solution{}, fmt.Errorf("solve: BiCriteria requires no precedence constraints")
	}
	opts = opts.withDefaults()
	n := app.N()
	var best Solution
	tryIntoWith := func(sol *Solution, eg *plan.ExecGraph, o Options) {
		w := eg.Weighted()
		per, err := orchestrate.PeriodMemo(o.Memo, w, m, o.Orch)
		if err != nil || per.Value.Greater(periodBound) {
			return
		}
		lat, err := orchestrate.LatencyMemo(o.Memo, w, m, o.Orch)
		if err != nil {
			return
		}
		if sol.Graph == nil || lat.Value.Less(sol.Value) {
			*sol = Solution{Graph: eg, Sched: lat, Value: lat.Value}
		}
	}
	// The structured-candidate scan below runs on the calling goroutine
	// with the pool idle, so its orchestrations borrow the solve's worker
	// budget; the forest enumeration holds the pool itself and keeps its
	// inner orchestrations serial.
	wide := opts.orchWide()
	tryGraph := func(eg *plan.ExecGraph) { tryIntoWith(&best, eg, wide) }
	if n <= maxN(opts, 6) {
		// Same sharding as the exact forest solver: each worker scans the
		// completions of a two-node prefix for the best bound-respecting
		// latency; the shard winners reduce in serial prefix order.
		best, _ = reduceShards(forestShards(n, opts.Workers, opts.Ctx, func(parent []int, r *shardResult) {
			if eg, err := plan.FromGraph(app, forestGraph(parent)); err == nil {
				tryIntoWith(&r.sol, eg, opts)
			}
		}))
	} else {
		// Structured candidates: parallel, both greedy chains, and greedy
		// chains split into k parallel sub-chains.
		if eg, err := plan.Parallel(app); err == nil {
			tryGraph(eg)
		}
		for _, order := range [][]int{GreedyChainOrder(app, m), GreedyLatencyChainOrder(app)} {
			if eg, err := plan.ChainFromOrder(app, order); err == nil {
				tryGraph(eg)
			}
			for k := 2; k <= 4 && k <= n; k++ {
				var edges [][2]int
				for i := 0; i < n; i++ {
					if i >= k {
						edges = append(edges, [2]int{order[i-k], order[i]})
					}
				}
				if eg, err := plan.Build(app, edges); err == nil {
					tryGraph(eg)
				}
			}
		}
	}
	if best.Graph == nil {
		return Solution{}, fmt.Errorf("solve: no plan meets period bound %s under %s", periodBound, m)
	}
	return best, nil
}
