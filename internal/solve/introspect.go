package solve

// Solver introspection: the per-solve search-effort record behind the
// planning service's GET /v1/explain (DESIGN.md §7).
//
// The paper's central claim is quantitative — pruned branch-and-bound and
// relaxed-event-graph bounds make the NP-hard mapping tractable — and the
// evidence is counters: nodes expanded versus pruned, candidate graphs
// orchestrated, memo hits, bound-patching and pre-filter effectiveness.
// The solvers already produce all of them; this file is the plumbing that
// keeps them attached to the solve that produced them instead of being
// dropped on the service floor. Everything here is observational: a probe
// never changes which graphs are searched, what Solution is returned, or
// any cache/memo key.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/workflow"
)

// EvalProbe observes every candidate orchestration of one solve: how many
// graphs were scored, how many were served by the orchestration memo, the
// orchestration wall time, and the aggregated orchestration-search
// counters (order-search prefixes/pruned, incremental-bound edge savings,
// float pre-filter certifications). Safe for concurrent use — the
// parallel searches score candidates from many goroutines.
type EvalProbe struct {
	evals     atomic.Int64
	memoHits  atomic.Int64
	orchNanos atomic.Int64

	mu   sync.Mutex
	orch orchestrate.Stats
}

// evaluate is the probe-instrumented twin of the package evaluate
// chokepoint: same memo discipline, same Result, plus accounting. The
// orchestration counters are collected into a probe-local Stats per call
// (the orchestrate layer overwrites rather than accumulates its Stats
// target) and merged, so concurrent evaluations never share a Stats
// pointer.
func (p *EvalProbe) evaluate(w *plan.Weighted, m plan.Model, obj Objective, opts Options) (orchestrate.Result, error) {
	var st orchestrate.Stats
	o := opts.Orch
	o.Stats = &st // excluded from the memo key, so hit behavior is unchanged
	start := time.Now()
	var (
		res orchestrate.Result
		hit bool
		err error
	)
	if obj == PeriodObjective {
		res, hit, err = orchestrate.PeriodMemoHit(opts.Memo, w, m, o)
	} else {
		res, hit, err = orchestrate.LatencyMemoHit(opts.Memo, w, m, o)
	}
	d := time.Since(start)
	p.evals.Add(1)
	if hit {
		p.memoHits.Add(1)
	}
	p.orchNanos.Add(int64(d))
	// A memo hit leaves st zero — correct: no orchestration work was done.
	p.mu.Lock()
	p.orch.Prefixes += st.Prefixes
	p.orch.Pruned += st.Pruned
	p.orch.Evaluated += st.Evaluated
	p.orch.BoundEdgesBuilt += st.BoundEdgesBuilt
	p.orch.BoundEdgesFlat += st.BoundEdgesFlat
	p.orch.FilterCertified += st.FilterCertified
	p.orch.FilterFallback += st.FilterFallback
	p.mu.Unlock()
	return res, err
}

// Evals returns the number of candidate orchestrations observed.
func (p *EvalProbe) Evals() int64 { return p.evals.Load() }

// MemoHits returns how many of them the orchestration memo served.
func (p *EvalProbe) MemoHits() int64 { return p.memoHits.Load() }

// OrchNanos returns the summed orchestration wall time in nanoseconds.
func (p *EvalProbe) OrchNanos() int64 { return p.orchNanos.Load() }

// Orch returns the aggregated orchestration-search counters.
func (p *EvalProbe) Orch() orchestrate.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.orch
}

// Effort is the search-effort record of one solve — what /v1/explain
// reports and the persistent plan store keeps alongside a Solution, so a
// warm-restarted service explains a stored plan with the counters of the
// solve that produced it. All fields are observational; two solves of the
// same request produce the same counters when run with Workers: 1 (the
// planning service pins exactly that).
type Effort struct {
	// Method and Family are the resolved search strategy (Auto already
	// dispatched).
	Method Method
	Family Family
	// Search is the branch-and-bound counter set (zero for other methods).
	Search Stats
	// Orch aggregates the orchestration-search counters across every
	// candidate evaluation of the solve.
	Orch orchestrate.Stats
	// Evals counts candidate orchestrations; MemoHits how many of them the
	// orchestration memo served without recomputing.
	Evals    int64
	MemoHits int64
	// QueueNanos is the wait for a pool worker, SolveNanos the solver wall
	// time, OrchNanos the orchestration share of it. (Store-write time is
	// deliberately absent: it happens after the solve, so a persisted
	// Effort replays identically on warm restart.)
	QueueNanos int64
	SolveNanos int64
	OrchNanos  int64
}

// ResolveMethod resolves Auto to the method minimize would dispatch for
// this application and objective under the given options; non-auto
// methods pass through. The planning service uses it to report the method
// actually searched rather than the literal "auto" the request carried.
func ResolveMethod(app *workflow.App, obj Objective, opts Options) Method {
	opts = opts.withDefaults()
	if opts.Method != Auto {
		return opts.Method
	}
	return autoMethod(app, obj, opts)
}
