package solve

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/rat"
)

// TestForestEvalMatchesFullRecomputation drives a forestEval through long
// random move sequences and, move for move, pins every incremental quantity
// — per-node input products, the period lower bounds of all three models
// and the latency path bound — to a from-scratch ExecGraph rebuild. This is
// the correctness contract of the hill climb's incremental re-evaluation:
// the filter may only skip orchestrations, never see different volumes.
func TestForestEvalMatchesFullRecomputation(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := gen.NewRand(seed)
		n := 4 + rng.Intn(6)
		app := gen.App(rng, n, []gen.Profile{gen.Filtering, gen.Mixed, gen.Expanding}[seed%3])
		parent := make([]int, n)
		for v := range parent {
			parent[v] = -1
		}
		eval := newForestEval(app, parent)
		for move := 0; move < 60; move++ {
			v := rng.Intn(n)
			p := rng.Intn(n+1) - 1 // -1..n-1
			if p == v || (p >= 0 && eval.CreatesCycle(v, p)) {
				continue
			}
			eval.Move(v, p)
			parent[v] = p
			eg, err := plan.FromGraph(app, forestGraph(parent))
			if err != nil {
				t.Fatalf("seed %d move %d: %v", seed, move, err)
			}
			for u := 0; u < n; u++ {
				if !eval.inProd[u].Equal(eg.InProd(u)) {
					t.Fatalf("seed %d move %d: inProd(%d) incremental %s, full %s",
						seed, move, u, eval.inProd[u], eg.InProd(u))
				}
			}
			for _, m := range plan.Models {
				if got, want := eval.PeriodLowerBound(m), eg.PeriodLowerBound(m); !got.Equal(want) {
					t.Fatalf("seed %d move %d %s: period bound incremental %s, full %s",
						seed, move, m, got, want)
				}
			}
			if got, want := eval.LatencyPathBound(), eg.LatencyPathBound(); !got.Equal(want) {
				t.Fatalf("seed %d move %d: latency bound incremental %s, full %s",
					seed, move, got, want)
			}
		}
	}
}

// TestIncrementalFilterNeverSkipsImprovingMoves is the admissibility of the
// hill-climb move filter in isolation: whenever the incremental bound of a
// moved forest is below the orchestrated value of the current one, the
// orchestrated value of the move can still improve — and conversely, a move
// the filter skips (bound ≥ current value) never orchestrates strictly
// better than the current value.
func TestIncrementalFilterNeverSkipsImprovingMoves(t *testing.T) {
	app := gen.App(gen.NewRand(17), 5, gen.Mixed)
	n := app.N()
	for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
		for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
			rng := gen.NewRand(99)
			parent := make([]int, n)
			for v := range parent {
				parent[v] = -1
			}
			eval := newForestEval(app, parent)
			value := func(p []int) rat.Rat {
				eg, err := plan.FromGraph(app, forestGraph(p))
				if err != nil {
					t.Fatal(err)
				}
				sched, err := evaluate(eg, m, obj, Options{Orch: smallOrch()})
				if err != nil {
					t.Fatal(err)
				}
				return sched.Value
			}
			cur := value(parent)
			for move := 0; move < 40; move++ {
				v := rng.Intn(n)
				p := rng.Intn(n+1) - 1
				if p == v || p == parent[v] || (p >= 0 && eval.CreatesCycle(v, p)) {
					continue
				}
				old := parent[v]
				eval.Move(v, p)
				parent[v] = p
				moved := value(parent)
				skipped := !eval.Bound(m, obj).Less(cur)
				if skipped && moved.Less(cur) {
					t.Fatalf("%s/%s move %d: filter skipped an improving move (bound %s, cur %s, moved %s)",
						m, obj, move, eval.Bound(m, obj), cur, moved)
				}
				// Walk like the climb: accept improvements, revert the rest.
				if moved.Less(cur) {
					cur = moved
				} else {
					eval.Move(v, old)
					parent[v] = old
				}
			}
			_ = fmt.Sprint(cur)
		}
	}
}
