package solve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/plan"
)

// probeCtx is a deterministic cancellation source: it reports itself done
// from the (allow+1)-th Err probe on, independent of wall clock, so the
// mid-search abort tests cannot flake on timing. Safe for concurrent
// probing (the parallel searches poll from every shard).
type probeCtx struct {
	context.Context
	allow  int64
	probes atomic.Int64
}

func newProbeCtx(allow int64) *probeCtx {
	return &probeCtx{Context: context.Background(), allow: allow}
}

func (p *probeCtx) Err() error {
	if p.probes.Add(1) > p.allow {
		return context.Canceled
	}
	return nil
}

// TestExpiredContextFailsEveryMethod: a context that is already done aborts
// every search method before any work, with the context error in the chain.
func TestExpiredContextFailsEveryMethod(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	app := gen.App(gen.NewRand(7), 5, gen.Mixed)
	for _, method := range []Method{Auto, GreedyChain, ExactChain, ExactForest, ExactDAG, HillClimb, BranchBound} {
		for _, workers := range []int{1, 4} {
			_, err := MinPeriod(app, plan.Overlap, Options{Method: method, Workers: workers, Ctx: ctx})
			if err == nil {
				t.Errorf("method %v workers %d: expired context did not abort", method, workers)
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("method %v workers %d: error %v does not wrap context.Canceled", method, workers, err)
			}
		}
	}
}

// TestDeadlineExceededIsReported: deadline expiry surfaces as
// context.DeadlineExceeded, the error the service maps to its 499-style
// status.
func TestDeadlineExceededIsReported(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	app := gen.App(gen.NewRand(7), 5, gen.Mixed)
	_, err := MinPeriod(app, plan.Overlap, Options{Method: HillClimb, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestMidSearchCancellationStopsBranchBound cancels after a fixed number of
// context probes and checks both that the search aborts with the context
// error and that it expanded far less of the tree than the uncanceled run —
// i.e. cancellation actually stops the expansion loop, not just the final
// return.
func TestMidSearchCancellationStopsBranchBound(t *testing.T) {
	app := gen.App(gen.NewRand(3), 10, gen.Expanding)
	base := Options{Method: BranchBound, Family: FamilyChain, Workers: 1, MaxExactN: 10}

	var full Stats
	opts := base
	opts.Stats = &full
	if _, err := MinPeriod(app, plan.Overlap, opts); err != nil {
		t.Fatal(err)
	}
	if full.Expanded < 512 {
		t.Skipf("instance too easy to observe a mid-search abort (%d expansions)", full.Expanded)
	}

	// One successful probe (the minimize entry check), done from then on:
	// the shards' first in-loop probe latches the abort.
	var aborted Stats
	opts = base
	opts.Stats = &aborted
	opts.Ctx = newProbeCtx(1)
	_, err := MinPeriod(app, plan.Overlap, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-search cancel: got error %v", err)
	}
	if aborted.Expanded*4 > full.Expanded {
		t.Errorf("canceled run expanded %d of %d nodes — cancellation did not stop the search",
			aborted.Expanded, full.Expanded)
	}
}

// TestMidSearchCancellationStopsBlindEnumeration: same probe-based abort
// for the blind forest enumeration (the other search family the service
// runs on its pool).
func TestMidSearchCancellationStopsBlindEnumeration(t *testing.T) {
	app := gen.App(gen.NewRand(5), 6, gen.Mixed)
	opts := Options{Method: ExactForest, Workers: 1, Ctx: newProbeCtx(1)}
	start := time.Now()
	_, err := MinPeriod(app, plan.Overlap, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got error %v", err)
	}
	// 6-node forest enumeration orchestrates ~17k graphs when not
	// canceled; the latched probe must cut it to a few hundred candidate
	// visits per shard. The generous wall bound only guards against the
	// enumeration having run to completion.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("canceled enumeration still took %v", elapsed)
	}
}
