package solve

// The solve-level orchestration-memo suite: a memo hit must be
// indistinguishable from recomputing, and the memo must actually fire on
// the searches that revisit candidate graphs.

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/plan"
)

// TestMemoDoesNotChangeSolutions pins the memo invariant of
// Options.Memo: with the memo disabled, defaulted, or shared explicitly,
// every method returns the bit-identical Solution.
func TestMemoDoesNotChangeSolutions(t *testing.T) {
	plain := gen.App(gen.NewRand(31), 4, gen.Mixed)
	withPrec := gen.AppWithPrecedence(gen.NewRand(8), 4, gen.Filtering, 0.3)
	type tcase struct {
		name   string
		method Method
		prec   bool
	}
	for _, tc := range []tcase{
		{"exact-forest", ExactForest, false},
		{"exact-dag", ExactDAG, false},
		{"hill-climb", HillClimb, false},
		{"branch-bound", BranchBound, false},
		{"branch-bound/precedence", BranchBound, true},
	} {
		app := plain
		if tc.prec {
			app = withPrec
		}
		for _, m := range plan.Models {
			for _, obj := range []Objective{PeriodObjective, LatencyObjective} {
				t.Run(fmt.Sprintf("%s/%s/%s", tc.name, m, obj), func(t *testing.T) {
					base := Options{Method: tc.method, Orch: smallOrch(), Restarts: 2, Seed: 7, Workers: 1}
					bare := base
					bare.NoMemo = true
					want := describeSolution(solveOnce(t, app, m, obj, bare))
					memoized := describeSolution(solveOnce(t, app, m, obj, base))
					if memoized != want {
						t.Fatalf("default memo diverged from memo-less solve:\n--- no memo ---\n%s\n--- memo ---\n%s", want, memoized)
					}
					shared := base
					shared.Memo = orchestrate.NewMemo(0)
					got := describeSolution(solveOnce(t, app, m, obj, shared))
					if got != want {
						t.Fatalf("explicit memo diverged from memo-less solve:\n--- no memo ---\n%s\n--- memo ---\n%s", want, got)
					}
				})
			}
		}
	}
}

// TestMemoHitsAcrossSearchPhases pins the point of the memo: the
// branch-and-bound search seeds its incumbent with greedy-chain and
// hill-climb solutions whose graphs the enumeration then reaches again, so
// a solve-shared memo must serve hits.
func TestMemoHitsAcrossSearchPhases(t *testing.T) {
	app := gen.App(gen.NewRand(31), 5, gen.Mixed)
	memo := orchestrate.NewMemo(0)
	opts := Options{Method: BranchBound, Family: FamilyForest, Orch: smallOrch(), Restarts: 2, Workers: 1, Memo: memo}
	if _, err := MinPeriod(app, plan.InOrder, opts); err != nil {
		t.Fatal(err)
	}
	if memo.Hits() == 0 {
		t.Fatalf("expected memo hits across search phases, got %s", memo)
	}
	if memo.Len() == 0 || memo.Misses() == 0 {
		t.Fatalf("implausible memo counters: %s", memo)
	}
	t.Logf("branch-and-bound forest solve: %s", memo)
}

// TestMemoKeySeparatesProblems guards the memo key: two different models
// (or objectives) on the same weighted plan must never share an entry.
func TestMemoKeySeparatesProblems(t *testing.T) {
	app := gen.App(gen.NewRand(3), 4, gen.Filtering)
	memo := orchestrate.NewMemo(0)
	opts := Options{Method: ExactForest, Orch: smallOrch(), Workers: 1, Memo: memo}
	ino, err := MinPeriod(app, plan.InOrder, opts)
	if err != nil {
		t.Fatal(err)
	}
	ovl, err := MinPeriod(app, plan.Overlap, opts)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := MinLatency(app, plan.InOrder, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Model power ordering and the period/latency gap both collapse if the
	// memo conflates the keys.
	if ovl.Value.Greater(ino.Value) {
		t.Fatalf("overlap %s > inorder %s: memo key conflated models", ovl.Value, ino.Value)
	}
	if lat.Value.Less(ino.Value) {
		t.Fatalf("latency %s < period %s on the same instance: memo key conflated objectives", lat.Value, ino.Value)
	}
	// And each must equal its memo-less answer.
	for _, m := range []plan.Model{plan.InOrder, plan.Overlap} {
		bare, err := MinPeriod(app, m, Options{Method: ExactForest, Orch: smallOrch(), Workers: 1, NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := MinPeriod(app, m, Options{Method: ExactForest, Orch: smallOrch(), Workers: 1, Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		if describeSolution(shared) != describeSolution(bare) {
			t.Fatalf("%s: memo-shared solve diverged from memo-less", m)
		}
	}
}
