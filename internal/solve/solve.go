// Package solve implements the paper's plan-level optimization problems:
// MINPERIOD and MINLATENCY — find an execution graph together with an
// operation list minimizing the period or the latency under one of the
// three communication models (§4.2 and §5.2).
//
// Both problems are NP-hard for every model (Theorems 2 and 4), so the
// package provides:
//
//   - the polynomial special cases proved in the paper: greedy chain
//     construction for MINPERIOD (Prop. 8) and MINLATENCY (Prop. 16)
//     restricted to linear-chain plans;
//   - exact solvers by exhaustive enumeration of chains, forests (which
//     Prop. 4 shows sufficient for MINPERIOD without precedence
//     constraints) and general DAGs, for small instances;
//   - branch-and-bound searches over the same structural families that
//     prove the same optima with lower-bound pruning on partial graphs,
//     reaching instance sizes the blind enumerations cannot (bnb.go);
//   - hill-climbing heuristics over forests and DAGs for everything else,
//     with incremental re-evaluation: each move recomputes only the touched
//     subtree's volumes and orchestrates only when the resulting lower
//     bound still allows an improvement (incremental.go).
//
// # Parallel search
//
// The exact enumerations and the hill-climbing restarts run on the shared
// bounded worker pool of package par: Options.Workers bounds the
// goroutines (0 means runtime.NumCPU(), 1 forces serial execution). The
// searches shard their spaces statically — chains by first service,
// forests by the parent assignment of the first two nodes, DAGs by the
// orientation of the first pairs, hill climbing by restart index with a
// per-restart seeded RNG — and reduce per-shard winners in shard order
// with strict-improvement comparison. The result is deterministic: for a
// fixed Options.Seed, every worker count (including 1) returns the same
// Solution, bit for bit — the same objective value, execution graph and
// operation list.
package solve

import (
	"context"
	"fmt"

	"repro/internal/dag"
	"repro/internal/orchestrate"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// Method selects the search strategy.
type Method int

const (
	// Auto picks: exact enumeration when the instance is small enough,
	// otherwise hill climbing seeded with the greedy chain.
	Auto Method = iota
	// GreedyChain builds the paper's greedy chain (polynomial; optimal
	// among chain plans).
	GreedyChain
	// ExactChain enumerates all n! chains.
	ExactChain
	// ExactForest enumerates all forests (optimal for MINPERIOD without
	// precedence constraints, by Prop. 4).
	ExactForest
	// ExactDAG enumerates all DAGs (only feasible for tiny instances).
	ExactDAG
	// HillClimb runs randomized local search over forests (or DAGs when
	// precedence constraints force merges).
	HillClimb
	// BranchBound proves the same optimum as the exact enumerations by
	// incremental construction with lower-bound pruning against a shared
	// incumbent (see bnb.go), reaching instance sizes the blind searches
	// cannot. Options.Family picks the structural family (default: the one
	// that makes the search exact, as the blind enumerations choose it).
	BranchBound
)

// String names the method for reports.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case GreedyChain:
		return "greedy-chain"
	case ExactChain:
		return "exact-chain"
	case ExactForest:
		return "exact-forest"
	case ExactDAG:
		return "exact-dag"
	case HillClimb:
		return "hill-climb"
	case BranchBound:
		return "branch-bound"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tunes the solvers. The zero value requests defaults.
type Options struct {
	Method Method
	// Orch is passed to the orchestration layer.
	Orch orchestrate.Options
	// MaxExactN caps instance sizes accepted by the exact methods
	// (default: 8 chains, 6 forests, 5 DAGs blind; 12 chains, 7 forests,
	// 5 DAGs with BranchBound). Under Auto, raising it widens only the
	// BranchBound band — the blind enumerations keep their defaults, since
	// both certify the identical optimum — while lowering it caps every
	// exact method.
	MaxExactN int
	// Family picks the structural family searched by BranchBound
	// (default FamilyAuto: forests for MINPERIOD without precedence
	// constraints, DAGs otherwise — the family the blind exact methods
	// would certify).
	Family Family
	// Incumbent, when non-nil, seeds the branch-and-bound pruning
	// threshold with an externally certified objective value before the
	// search starts — the warm-start hook of the planning service, which
	// re-evaluates a previously cached plan on a drifted instance and
	// offers the result here. The value MUST be achievable on the instance
	// being solved by a member of the searched structural family (e.g. the
	// orchestrated objective of a chain plan when Family is FamilyChain):
	// the shared-incumbent pruning rule is strict, so any such seed leaves
	// the returned Solution bit-identical to the unseeded search while
	// pruning harder from the root, whereas a value below the family
	// optimum would cut the optimum away. Methods other than BranchBound
	// ignore it.
	Incumbent *rat.Rat
	// Stats, when non-nil, receives the branch-and-bound search counters.
	// The returned Solution is identical for every worker count, but the
	// counters are not: with Workers > 1 the pruning threshold evolves
	// with goroutine timing. Use Workers: 1 for reproducible counts.
	Stats *Stats
	// Memo, when non-nil, is the orchestration memo shared by every
	// candidate evaluation of this solve: identical weighted candidate
	// graphs reached from different shards, restarts or search phases
	// (incumbent seeding included) orchestrate once and share the Result.
	// When nil, minimize creates one per call for the methods whose
	// searches revisit graphs by construction — HillClimb and BranchBound
	// — and leaves the blind exact enumerations memo-less (they visit
	// every graph exactly once, so a memo is pure key-building overhead).
	// Orchestration is deterministic for a fixed weighted plan and
	// options, so a memo hit is bit-identical to recomputing and the
	// returned Solution never depends on it (pinned by
	// TestMemoDoesNotChangeSolutions).
	Memo *orchestrate.Memo
	// NoMemo disables the per-solve orchestration memo; the determinism
	// suite uses it to pin memoized and memo-less searches to the
	// identical Solution.
	NoMemo bool
	// Seed drives the randomized restarts of HillClimb.
	Seed int64
	// Restarts is the number of random restarts for HillClimb (default 3).
	Restarts int
	// Workers bounds the worker goroutines of the parallel searches:
	// 0 means runtime.NumCPU(), 1 forces serial execution. Any value
	// yields the identical Solution (see the package documentation).
	Workers int
	// Ctx, when non-nil, bounds the search: the exact enumerations, the
	// branch-and-bound expansions and the hill climbs poll it periodically
	// and abort with the context's error once it is done — the
	// per-request deadline/cancellation hook of the planning service (a
	// dead client stops burning the pool). A canceled search never
	// returns a partial Solution, only the error, so cancellation cannot
	// weaken the determinism invariant.
	Ctx context.Context
	// Probe, when non-nil, observes every candidate orchestration of the
	// solve (evaluation counts, memo hits, orchestration-search counters,
	// orchestration wall time) — the introspection hook of the planning
	// service's /v1/explain. Purely observational: it never changes which
	// graphs are searched or what Solution is returned, and it is excluded
	// from every cache and memo key.
	Probe *EvalProbe
}

// ctxErr converts a done context into the search abort error (nil context
// or live context: nil). The context error stays in the chain for
// errors.Is(err, context.Canceled / context.DeadlineExceeded).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("solve: search aborted: %w", err)
	}
	return nil
}

// cancelCheck is the periodic cancellation probe of the search hot loops.
// Each shard owns one (no sharing across goroutines): stop polls the
// context only on the first and then every 256th call, so enumeration
// loops pay an increment-and-mask per candidate, and latches once done so
// a canceled recursion unwinds immediately instead of drifting to the next
// probe boundary.
type cancelCheck struct {
	ctx  context.Context
	tick uint
	done bool
}

func (c *cancelCheck) stop() bool {
	if c.done {
		return true
	}
	if c.ctx == nil {
		return false
	}
	c.tick++
	if c.tick&0xff != 1 {
		return false
	}
	if c.ctx.Err() != nil {
		c.done = true
	}
	return c.done
}

func (o Options) withDefaults() Options {
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	// Plan search evaluates thousands of candidate graphs; the
	// orchestration random-restart sampling is worth its cost only on a
	// single graph, so the inner loop disables it unless explicitly
	// requested.
	if o.Orch.RandomSamples == 0 {
		o.Orch.RandomSamples = -1
	}
	// Same multiplication argument for the exhaustive order-search cap:
	// the orchestrate-level default (65536, raised by the pruned fast
	// path) is for single-graph orchestrations; inside a plan search
	// every candidate pays it, so the inner cap stays at the historical
	// 4096 unless explicitly requested.
	if o.Orch.MaxExhaustive == 0 {
		o.Orch.MaxExhaustive = 4096
	}
	return o
}

// orchWide returns the options for a single-graph orchestration that runs
// while the plan-level search is not fanned out (the greedy chain, warm
// restarts, the post-reduction winner of a chain search): the pool is idle
// at that moment, so the order search borrows the solve's whole worker
// budget. Everything evaluated INSIDE plan-level shards keeps the zero
// value — serial orchestration — so the two levels never stack goroutines
// (one pool, never nested).
func (o Options) orchWide() Options {
	if o.Orch.Workers == 0 {
		o.Orch.Workers = par.Workers(o.Workers)
	}
	return o
}

// Solution is a complete plan: execution graph, operation list, objective
// value, and whether global optimality is guaranteed.
type Solution struct {
	Graph *plan.ExecGraph
	Sched orchestrate.Result
	Value rat.Rat
	// Exact is true when the solver proves global optimality: the searched
	// structural family provably contains an optimal plan AND the
	// orchestration was exact.
	Exact bool
}

// Objective selects period or latency.
type Objective int

const (
	// PeriodObjective minimizes the period (inverse throughput).
	PeriodObjective Objective = iota
	// LatencyObjective minimizes the latency (response time).
	LatencyObjective
)

// String names the objective.
func (o Objective) String() string {
	if o == PeriodObjective {
		return "period"
	}
	return "latency"
}

// --- chain construction (Prop. 8 and Prop. 16) ---

// GreedyChainOrder returns the paper's optimal-among-chains service order
// for MINPERIOD (Prop. 8): services with selectivity < 1 first by
// increasing c' (c' = 1+c+σ one-port, max(1,c) with overlap), followed by
// the others by increasing σ/c'.
func GreedyChainOrder(app *workflow.App, m plan.Model) []int {
	n := app.N()
	cPrime := func(i int) rat.Rat {
		if m == plan.Overlap {
			return rat.Max(rat.One, app.Cost(i))
		}
		return rat.One.Add(app.Cost(i)).Add(app.Selectivity(i))
	}
	var shrink, grow []int
	for i := 0; i < n; i++ {
		if app.Selectivity(i).Less(rat.One) {
			shrink = append(shrink, i)
		} else {
			grow = append(grow, i)
		}
	}
	sortBy(shrink, func(a, b int) bool { return cPrime(a).Less(cPrime(b)) })
	sortBy(grow, func(a, b int) bool {
		// increasing σ/c' ⟺ σ_a·c'_b < σ_b·c'_a
		return app.Selectivity(a).Mul(cPrime(b)).Less(app.Selectivity(b).Mul(cPrime(a)))
	})
	return append(shrink, grow...)
}

// GreedyLatencyChainOrder returns the paper's optimal-among-chains order
// for MINLATENCY (Prop. 16): decreasing (1−σ)/(1+c).
func GreedyLatencyChainOrder(app *workflow.App) []int {
	order := make([]int, app.N())
	for i := range order {
		order[i] = i
	}
	key := func(i int) (num, den rat.Rat) {
		return rat.One.Sub(app.Selectivity(i)), rat.One.Add(app.Cost(i))
	}
	sortBy(order, func(a, b int) bool {
		na, da := key(a)
		nb, db := key(b)
		// na/da > nb/db ⟺ na·db > nb·da (denominators positive).
		return na.Mul(db).Greater(nb.Mul(da))
	})
	return order
}

func sortBy(s []int, less func(a, b int) bool) {
	// Insertion sort keeps this dependency-free and stable; n is small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ChainPeriodValue computes the exact period of the chain plan visiting
// services in the given order: all three models reach the per-server lower
// bound on chains (no cross-server critical cycle exists).
func ChainPeriodValue(app *workflow.App, order []int, m plan.Model) rat.Rat {
	inProd := rat.One
	best := rat.Zero
	for _, s := range order {
		cin := inProd
		ccomp := inProd.Mul(app.Cost(s))
		cout := inProd.Mul(app.Selectivity(s))
		var v rat.Rat
		if m == plan.Overlap {
			v = rat.MaxOf(cin, ccomp, cout)
		} else {
			v = cin.Add(ccomp).Add(cout)
		}
		best = rat.Max(best, v)
		inProd = cout
	}
	return best
}

// ChainLatencyValue computes the exact latency of the chain plan: the
// single path's total communication and computation time (identical for
// all models on a chain).
func ChainLatencyValue(app *workflow.App, order []int) rat.Rat {
	t := rat.One // input communication
	inProd := rat.One
	for _, s := range order {
		t = t.Add(inProd.Mul(app.Cost(s)))
		inProd = inProd.Mul(app.Selectivity(s))
		t = t.Add(inProd) // communication to the successor (or output)
	}
	return t
}

// --- enumeration of structural families ---

// forEachChain enumerates all n! chain orders.
func forEachChain(n int, fn func(order []int) bool) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	permuteAll(order, 0, fn)
}

// forEachChainShard enumerates shard i of the chain space: the orders the
// serial enumeration visits with its i-th choice of first service, in the
// serial visiting order. The n shards partition all n! chains.
func forEachChainShard(n, i int, fn func(order []int) bool) {
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	order[0], order[i] = order[i], order[0]
	permuteAll(order, 1, fn)
}

func permuteAll(s []int, k int, fn func([]int) bool) bool {
	if k == len(s) {
		return fn(s)
	}
	for i := k; i < len(s); i++ {
		s[k], s[i] = s[i], s[k]
		if !permuteAll(s, k+1, fn) {
			s[k], s[i] = s[i], s[k]
			return false
		}
		s[k], s[i] = s[i], s[k]
	}
	return true
}

// forEachForest enumerates every forest over n nodes as a parent vector
// (parent[v] == -1 for roots), (n+1)^(n-1)... in fact all assignments with
// cycle rejection. fn receives the parent slice (not to be retained).
func forEachForest(n int, fn func(parent []int) bool) {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	forEachForestFrom(parent, 0, fn)
}

// forEachForestFrom continues the forest enumeration with nodes 0..from-1
// already assigned in parent (the remaining entries must be -1), visiting
// completions in the serial enumeration order.
func forEachForestFrom(parent []int, from int, fn func(parent []int) bool) bool {
	return forEachForestPartial(parent, from, len(parent), fn)
}

// forEachForestPartial enumerates every cycle-free assignment of parents to
// nodes from..upto-1 (nodes 0..from-1 fixed in parent, nodes upto.. left
// at -1), in the serial enumeration order. It is the single source of
// truth for the enumeration order and the cycle rule: both the full
// enumeration and the shard-prefix construction go through it, so they can
// never drift apart.
func forEachForestPartial(parent []int, from, upto int, fn func(parent []int) bool) bool {
	n := len(parent)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == upto {
			return fn(parent)
		}
		parent[v] = -1
		if !rec(v + 1) {
			return false
		}
		for p := 0; p < n; p++ {
			if p == v {
				continue
			}
			// Reject if choosing p as v's parent closes a cycle: walk p's
			// ancestor chain (unassigned nodes still have parent -1).
			cyc := false
			for a := p; a != -1; a = parent[a] {
				if a == v {
					cyc = true
					break
				}
			}
			if cyc {
				continue
			}
			parent[v] = p
			if !rec(v + 1) {
				return false
			}
		}
		parent[v] = -1
		return true
	}
	return rec(from)
}

// forestPrefixes returns every cycle-free parent assignment of nodes
// 0..depth-1, in the order the serial enumeration first reaches them. The
// prefixes are the shards of the parallel forest search: completing each
// prefix with forEachForestFrom partitions the whole forest space.
func forestPrefixes(n, depth int) [][]int {
	if depth > n {
		depth = n
	}
	var out [][]int
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	forEachForestPartial(parent, 0, depth, func(parent []int) bool {
		out = append(out, append([]int(nil), parent[:depth]...))
		return true
	})
	return out
}

// forestGraph converts a parent vector into a DAG.
func forestGraph(parent []int) *dag.Graph {
	g := dag.New(len(parent))
	for v, p := range parent {
		if p >= 0 {
			g.AddEdge(p, v)
		}
	}
	return g
}

// nodePairs lists the unordered node pairs in DAG-enumeration order.
func nodePairs(n int) [][2]int {
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	return pairs
}

// forEachDAG enumerates every labeled DAG on n nodes: each unordered pair
// gets one of {no edge, u→v, v→u}, filtered by acyclicity. 3^(n(n-1)/2)
// candidates, so this is for n ≤ 5.
func forEachDAG(n int, fn func(g *dag.Graph) bool) {
	forEachDAGFrom(dag.New(n), nodePairs(n), 0, fn)
}

// forEachDAGFrom continues the DAG enumeration with the first `from` pairs
// already decided in g, visiting completions in the serial order (for each
// remaining pair {u,v}: no edge, then u→v, then v→u).
func forEachDAGFrom(g *dag.Graph, pairs [][2]int, from int, fn func(g *dag.Graph) bool) bool {
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pairs) {
			if g.IsAcyclic() {
				return fn(g)
			}
			return true
		}
		p := pairs[i]
		if !rec(i + 1) {
			return false
		}
		g.AddEdge(p[0], p[1])
		ok := rec(i + 1)
		g.RemoveEdge(p[0], p[1])
		if !ok {
			return false
		}
		g.AddEdge(p[1], p[0])
		ok = rec(i + 1)
		g.RemoveEdge(p[1], p[0])
		return ok
	}
	return rec(from)
}

// dagPrefixes returns every orientation assignment of the first depth pairs
// as edge lists, in the serial enumeration order. The prefixes shard the
// DAG space into 3^depth pieces for the parallel search.
func dagPrefixes(n, depth int) [][][2]int {
	pairs := nodePairs(n)
	if depth > len(pairs) {
		depth = len(pairs)
	}
	out := [][][2]int{nil}
	for i := 0; i < depth; i++ {
		next := make([][][2]int, 0, 3*len(out))
		for _, prefix := range out {
			u, v := pairs[i][0], pairs[i][1]
			next = append(next,
				prefix,
				append(append([][2]int(nil), prefix...), [2]int{u, v}),
				append(append([][2]int(nil), prefix...), [2]int{v, u}))
		}
		out = next
	}
	return out
}
