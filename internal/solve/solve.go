// Package solve implements the paper's plan-level optimization problems:
// MINPERIOD and MINLATENCY — find an execution graph together with an
// operation list minimizing the period or the latency under one of the
// three communication models (§4.2 and §5.2).
//
// Both problems are NP-hard for every model (Theorems 2 and 4), so the
// package provides:
//
//   - the polynomial special cases proved in the paper: greedy chain
//     construction for MINPERIOD (Prop. 8) and MINLATENCY (Prop. 16)
//     restricted to linear-chain plans;
//   - exact solvers by exhaustive enumeration of chains, forests (which
//     Prop. 4 shows sufficient for MINPERIOD without precedence
//     constraints) and general DAGs, for small instances;
//   - hill-climbing heuristics over forests and DAGs for everything else.
package solve

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// Method selects the search strategy.
type Method int

const (
	// Auto picks: exact enumeration when the instance is small enough,
	// otherwise hill climbing seeded with the greedy chain.
	Auto Method = iota
	// GreedyChain builds the paper's greedy chain (polynomial; optimal
	// among chain plans).
	GreedyChain
	// ExactChain enumerates all n! chains.
	ExactChain
	// ExactForest enumerates all forests (optimal for MINPERIOD without
	// precedence constraints, by Prop. 4).
	ExactForest
	// ExactDAG enumerates all DAGs (only feasible for tiny instances).
	ExactDAG
	// HillClimb runs randomized local search over forests (or DAGs when
	// precedence constraints force merges).
	HillClimb
)

// String names the method for reports.
func (m Method) String() string {
	switch m {
	case Auto:
		return "auto"
	case GreedyChain:
		return "greedy-chain"
	case ExactChain:
		return "exact-chain"
	case ExactForest:
		return "exact-forest"
	case ExactDAG:
		return "exact-dag"
	case HillClimb:
		return "hill-climb"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tunes the solvers. The zero value requests defaults.
type Options struct {
	Method Method
	// Orch is passed to the orchestration layer.
	Orch orchestrate.Options
	// MaxExactN caps instance sizes accepted by the exact methods
	// (default: 8 chains, 6 forests, 5 DAGs).
	MaxExactN int
	// Seed drives the randomized restarts of HillClimb.
	Seed int64
	// Restarts is the number of random restarts for HillClimb (default 3).
	Restarts int
}

func (o Options) withDefaults() Options {
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	// Plan search evaluates thousands of candidate graphs; the
	// orchestration random-restart sampling is worth its cost only on a
	// single graph, so the inner loop disables it unless explicitly
	// requested.
	if o.Orch.RandomSamples == 0 {
		o.Orch.RandomSamples = -1
	}
	return o
}

// Solution is a complete plan: execution graph, operation list, objective
// value, and whether global optimality is guaranteed.
type Solution struct {
	Graph *plan.ExecGraph
	Sched orchestrate.Result
	Value rat.Rat
	// Exact is true when the solver proves global optimality: the searched
	// structural family provably contains an optimal plan AND the
	// orchestration was exact.
	Exact bool
}

// Objective selects period or latency.
type Objective int

const (
	// PeriodObjective minimizes the period (inverse throughput).
	PeriodObjective Objective = iota
	// LatencyObjective minimizes the latency (response time).
	LatencyObjective
)

// String names the objective.
func (o Objective) String() string {
	if o == PeriodObjective {
		return "period"
	}
	return "latency"
}

// --- chain construction (Prop. 8 and Prop. 16) ---

// GreedyChainOrder returns the paper's optimal-among-chains service order
// for MINPERIOD (Prop. 8): services with selectivity < 1 first by
// increasing c' (c' = 1+c+σ one-port, max(1,c) with overlap), followed by
// the others by increasing σ/c'.
func GreedyChainOrder(app *workflow.App, m plan.Model) []int {
	n := app.N()
	cPrime := func(i int) rat.Rat {
		if m == plan.Overlap {
			return rat.Max(rat.One, app.Cost(i))
		}
		return rat.One.Add(app.Cost(i)).Add(app.Selectivity(i))
	}
	var shrink, grow []int
	for i := 0; i < n; i++ {
		if app.Selectivity(i).Less(rat.One) {
			shrink = append(shrink, i)
		} else {
			grow = append(grow, i)
		}
	}
	sortBy(shrink, func(a, b int) bool { return cPrime(a).Less(cPrime(b)) })
	sortBy(grow, func(a, b int) bool {
		// increasing σ/c' ⟺ σ_a·c'_b < σ_b·c'_a
		return app.Selectivity(a).Mul(cPrime(b)).Less(app.Selectivity(b).Mul(cPrime(a)))
	})
	return append(shrink, grow...)
}

// GreedyLatencyChainOrder returns the paper's optimal-among-chains order
// for MINLATENCY (Prop. 16): decreasing (1−σ)/(1+c).
func GreedyLatencyChainOrder(app *workflow.App) []int {
	order := make([]int, app.N())
	for i := range order {
		order[i] = i
	}
	key := func(i int) (num, den rat.Rat) {
		return rat.One.Sub(app.Selectivity(i)), rat.One.Add(app.Cost(i))
	}
	sortBy(order, func(a, b int) bool {
		na, da := key(a)
		nb, db := key(b)
		// na/da > nb/db ⟺ na·db > nb·da (denominators positive).
		return na.Mul(db).Greater(nb.Mul(da))
	})
	return order
}

func sortBy(s []int, less func(a, b int) bool) {
	// Insertion sort keeps this dependency-free and stable; n is small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ChainPeriodValue computes the exact period of the chain plan visiting
// services in the given order: all three models reach the per-server lower
// bound on chains (no cross-server critical cycle exists).
func ChainPeriodValue(app *workflow.App, order []int, m plan.Model) rat.Rat {
	inProd := rat.One
	best := rat.Zero
	for _, s := range order {
		cin := inProd
		ccomp := inProd.Mul(app.Cost(s))
		cout := inProd.Mul(app.Selectivity(s))
		var v rat.Rat
		if m == plan.Overlap {
			v = rat.MaxOf(cin, ccomp, cout)
		} else {
			v = cin.Add(ccomp).Add(cout)
		}
		best = rat.Max(best, v)
		inProd = cout
	}
	return best
}

// ChainLatencyValue computes the exact latency of the chain plan: the
// single path's total communication and computation time (identical for
// all models on a chain).
func ChainLatencyValue(app *workflow.App, order []int) rat.Rat {
	t := rat.One // input communication
	inProd := rat.One
	for _, s := range order {
		t = t.Add(inProd.Mul(app.Cost(s)))
		inProd = inProd.Mul(app.Selectivity(s))
		t = t.Add(inProd) // communication to the successor (or output)
	}
	return t
}

// --- enumeration of structural families ---

// forEachChain enumerates all n! chain orders.
func forEachChain(n int, fn func(order []int) bool) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	permuteAll(order, 0, fn)
}

func permuteAll(s []int, k int, fn func([]int) bool) bool {
	if k == len(s) {
		return fn(s)
	}
	for i := k; i < len(s); i++ {
		s[k], s[i] = s[i], s[k]
		if !permuteAll(s, k+1, fn) {
			s[k], s[i] = s[i], s[k]
			return false
		}
		s[k], s[i] = s[i], s[k]
	}
	return true
}

// forEachForest enumerates every forest over n nodes as a parent vector
// (parent[v] == -1 for roots), (n+1)^(n-1)... in fact all assignments with
// cycle rejection. fn receives the parent slice (not to be retained).
func forEachForest(n int, fn func(parent []int) bool) {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return fn(parent)
		}
		parent[v] = -1
		if !rec(v + 1) {
			return false
		}
		for p := 0; p < n; p++ {
			if p == v {
				continue
			}
			// Reject if choosing p as v's parent closes a cycle: walk p's
			// ancestor chain (unassigned nodes still have parent -1).
			cyc := false
			for a := p; a != -1; a = parent[a] {
				if a == v {
					cyc = true
					break
				}
			}
			if cyc {
				continue
			}
			parent[v] = p
			if !rec(v + 1) {
				return false
			}
		}
		parent[v] = -1
		return true
	}
	rec(0)
}

// forestGraph converts a parent vector into a DAG.
func forestGraph(parent []int) *dag.Graph {
	g := dag.New(len(parent))
	for v, p := range parent {
		if p >= 0 {
			g.AddEdge(p, v)
		}
	}
	return g
}

// forEachDAG enumerates every labeled DAG on n nodes: each unordered pair
// gets one of {no edge, u→v, v→u}, filtered by acyclicity. 3^(n(n-1)/2)
// candidates, so this is for n ≤ 5.
func forEachDAG(n int, fn func(g *dag.Graph) bool) {
	type pair struct{ u, v int }
	var pairs []pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, pair{u, v})
		}
	}
	g := dag.New(n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pairs) {
			if g.IsAcyclic() {
				return fn(g)
			}
			return true
		}
		p := pairs[i]
		if !rec(i + 1) {
			return false
		}
		g.AddEdge(p.u, p.v)
		ok := rec(i + 1)
		g.RemoveEdge(p.u, p.v)
		if !ok {
			return false
		}
		g.AddEdge(p.v, p.u)
		ok = rec(i + 1)
		g.RemoveEdge(p.v, p.u)
		return ok
	}
	rec(0)
}
