// Package plancache is the plan cache of the long-running planning
// service: a bounded LRU keyed by canonical instance hash (package canon)
// with singleflight deduplication, so N concurrent identical requests cost
// exactly one solve and repeated requests cost none.
//
// The cache stores only successful results. A solve that returns an error
// is reported to every coalesced waiter and leaves no entry behind, so a
// transient failure never poisons the key. Entries still in flight are
// never evicted (their waiters hold them); the capacity bound applies to
// completed entries, evicted least-recently-used first.
package plancache

import (
	"container/list"
	"sync"
)

// Outcome classifies how one Do call was served.
type Outcome int

const (
	// Miss: this call ran the solve.
	Miss Outcome = iota
	// Hit: the value was already cached.
	Hit
	// Coalesced: another call was already solving the same key; this call
	// waited for its result instead of solving again.
	Coalesced
)

// String names the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// Stats are the running counters of a cache.
type Stats struct {
	Hits      int64
	Misses    int64
	Coalesced int64
	Evictions int64
	// Seeded counts entries inserted by Seed (the persistent store's
	// warm-load path) — they never touch the hit/miss counters, so
	// without this the warm-start population is invisible to metrics.
	Seeded int64
	// Len is the number of completed entries currently cached; InFlight the
	// number of solves currently running; Cap the capacity bound.
	Len      int
	InFlight int
	Cap      int
}

// entry is one key's slot: in flight until ready is closed, then holding
// val (or removed, when the solve failed).
type entry[V any] struct {
	key   string
	ready chan struct{}
	val   V
	err   error
	elem  *list.Element // position in the LRU list; nil while in flight
}

// Cache is a bounded LRU with singleflight deduplication. The zero value is
// not usable; call New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*entry[V]
	lru      *list.List // completed entries, most recent at the front
	inFlight int

	hits, misses, coalesced, evictions, seeded int64
}

// New returns a cache bounded to capacity completed entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		entries:  make(map[string]*entry[V]),
		lru:      list.New(),
	}
}

// Do returns the cached value for key, or runs solve to produce it. At most
// one solve per key runs at any moment: concurrent Do calls with the same
// key coalesce onto the running solve and all receive its result. On solve
// error, every coalesced caller receives the error and the key is removed,
// so a later Do retries.
func (c *Cache[V]) Do(key string, solve func() (V, error)) (V, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil { // completed: a plain hit
			c.hits++
			c.lru.MoveToFront(e.elem)
			v := e.val
			c.mu.Unlock()
			return v, Hit, nil
		}
		// In flight: wait for the running solve.
		c.coalesced++
		c.mu.Unlock()
		<-e.ready
		return e.val, Coalesced, e.err
	}
	e := &entry[V]{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.inFlight++
	c.mu.Unlock()

	val, err := solve()

	c.mu.Lock()
	c.inFlight--
	e.val, e.err = val, err
	if err != nil {
		delete(c.entries, key)
	} else {
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return val, Miss, err
}

// Seed inserts a completed entry without running a solve and without
// touching the hit/miss counters — the warm-load path of the persistent
// plan store, which replays previously solved entries into the LRU at
// startup. An existing entry (completed or in flight) is left untouched
// and Seed reports false; capacity is enforced as usual, so seeding more
// than Cap entries keeps only the most recently seeded ones.
func (c *Cache[V]) Seed(key string, val V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &entry[V]{key: key, ready: make(chan struct{}), val: val}
	close(e.ready)
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	c.seeded++
	c.evictLocked()
	return true
}

// Get returns the cached value for key without solving. It counts as a hit
// (and refreshes recency) when present and completed; in-flight entries are
// not waited for.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.elem != nil {
		c.hits++
		c.lru.MoveToFront(e.elem)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Keys returns the keys of every completed entry, most recently used
// first (the LRU order) — the digest the cluster sync layer advertises to
// its peers. Recency is not touched.
func (c *Cache[V]) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry[V]).key)
	}
	return keys
}

// Peek returns the cached value for key without counting a hit or
// refreshing recency — reads on behalf of a peer (the sync export path)
// must not distort the local LRU.
func (c *Cache[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok && e.elem != nil {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Remove drops key from the cache if present and completed (an in-flight
// entry stays; its waiters hold it). It reports whether an entry was
// removed.
func (c *Cache[V]) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.elem == nil {
		return false
	}
	c.lru.Remove(e.elem)
	delete(c.entries, key)
	return true
}

// evictLocked enforces the capacity bound on completed entries.
func (c *Cache[V]) evictLocked() {
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		e := oldest.Value.(*entry[V])
		c.lru.Remove(oldest)
		delete(c.entries, e.key)
		c.evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Seeded:    c.seeded,
		Len:       c.lru.Len(),
		InFlight:  c.inFlight,
		Cap:       c.capacity,
	}
}
