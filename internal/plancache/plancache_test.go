package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHitMiss(t *testing.T) {
	c := New[int](4)
	calls := 0
	solve := func() (int, error) { calls++; return 42, nil }

	v, out, err := c.Do("k", solve)
	if v != 42 || out != Miss || err != nil {
		t.Fatalf("first Do = %d, %s, %v", v, out, err)
	}
	v, out, err = c.Do("k", solve)
	if v != 42 || out != Hit || err != nil {
		t.Fatalf("second Do = %d, %s, %v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("solve ran %d times", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 || st.Len != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSingleflight holds one solve open while many goroutines request the
// same key: exactly one solve must run, everyone gets its value.
func TestSingleflight(t *testing.T) {
	c := New[int](4)
	var solves atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters+1)
	outcomes := make([]Outcome, waiters+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, out, err := c.Do("k", func() (int, error) {
			solves.Add(1)
			close(started)
			<-release
			return 7, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], outcomes[0] = v, out
	}()
	<-started
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do("k", func() (int, error) {
				solves.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	// Release the held solve only once every waiter has provably entered
	// Do (each increments Coalesced before blocking; none can finish while
	// the solve is held), so the coalescing below is deterministic.
	for deadline := time.Now().Add(10 * time.Second); c.Stats().Coalesced < waiters; {
		if time.Now().After(deadline) {
			t.Fatal("waiters never coalesced onto the in-flight solve")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := solves.Load(); n != 1 {
		t.Fatalf("%d solves for one key", n)
	}
	coalesced := 0
	for i, v := range results {
		if v != 7 {
			t.Fatalf("caller %d got %d", i, v)
		}
		if outcomes[i] == Coalesced {
			coalesced++
		}
	}
	if outcomes[0] != Miss {
		t.Fatalf("initiator outcome = %s", outcomes[0])
	}
	if st := c.Stats(); st.Coalesced != int64(coalesced) || coalesced != waiters {
		t.Fatalf("coalesced = %d, stats = %+v", coalesced, st)
	}
}

// TestErrorsAreNotCached: a failing solve reports the error and leaves no
// entry, so the next Do retries.
func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](4)
	boom := errors.New("boom")
	_, out, err := c.Do("k", func() (int, error) { return 0, boom })
	if out != Miss || !errors.Is(err, boom) {
		t.Fatalf("Do = %s, %v", out, err)
	}
	v, out, err := c.Do("k", func() (int, error) { return 9, nil })
	if v != 9 || out != Miss || err != nil {
		t.Fatalf("retry Do = %d, %s, %v", v, out, err)
	}
	if st := c.Stats(); st.Len != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLRUEviction fills past capacity and checks the least-recently-used
// entries fall out first, respecting Get/Do recency refreshes.
func TestLRUEviction(t *testing.T) {
	c := New[int](3)
	for i := 0; i < 3; i++ {
		c.Do(fmt.Sprintf("k%d", i), func() (int, error) { return i, nil })
	}
	// Refresh k0, then insert k3: k1 is now the LRU and must be evicted.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Do("k3", func() (int, error) { return 3, nil })

	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived past capacity")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Len != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemove(t *testing.T) {
	c := New[int](2)
	c.Do("k", func() (int, error) { return 1, nil })
	if !c.Remove("k") {
		t.Fatal("Remove found nothing")
	}
	if c.Remove("k") {
		t.Fatal("double Remove succeeded")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("removed key still cached")
	}
}

// TestConcurrentMixedKeys hammers the cache with identical and distinct
// keys from many goroutines (run under -race): per-key solve counts must
// stay at one and every caller must see its key's value.
func TestConcurrentMixedKeys(t *testing.T) {
	const keys = 8
	const callersPerKey = 8
	c := New[int](keys)
	var solves [keys]atomic.Int64

	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for g := 0; g < callersPerKey; g++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, _, err := c.Do(fmt.Sprintf("k%d", k), func() (int, error) {
					solves[k].Add(1)
					return 100 + k, nil
				})
				if err != nil || v != 100+k {
					t.Errorf("key %d: got %d, %v", k, v, err)
				}
			}(k)
		}
	}
	wg.Wait()

	for k := range solves {
		if n := solves[k].Load(); n != 1 {
			t.Errorf("key %d solved %d times", k, n)
		}
	}
	st := c.Stats()
	if st.Misses != keys || st.Hits+st.Coalesced != int64(keys*(callersPerKey-1)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[int](0)
	c.Do("a", func() (int, error) { return 1, nil })
	c.Do("b", func() (int, error) { return 2, nil })
	if st := c.Stats(); st.Len != 1 || st.Cap != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSeed: warm-loaded entries serve as hits without a solve, never
// replace existing entries, don't disturb the hit/miss counters at seed
// time, and respect the capacity bound.
func TestSeed(t *testing.T) {
	c := New[int](2)
	if !c.Seed("a", 1) {
		t.Fatal("seeding a fresh key failed")
	}
	if c.Seed("a", 99) {
		t.Fatal("re-seeding an existing key succeeded")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Len != 1 {
		t.Fatalf("stats after seed = %+v", st)
	}
	v, out, err := c.Do("a", func() (int, error) { t.Fatal("solved a seeded key"); return 0, nil })
	if v != 1 || out != Hit || err != nil {
		t.Fatalf("Do on seeded key = %d, %s, %v", v, out, err)
	}
	// Capacity still bounds seeded entries: after seeding "b" and "c",
	// "a" is the least recently used and falls out.
	c.Seed("b", 2)
	c.Seed("c", 3)
	if _, ok := c.Get("a"); ok {
		t.Error("LRU entry survived past capacity")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Len != 2 || st.Evictions != 1 {
		t.Errorf("stats after overflow = %+v", st)
	}
}

func TestSeedCountsSeeded(t *testing.T) {
	c := New[int](4)
	c.Seed("a", 1)
	c.Seed("b", 2)
	c.Seed("a", 9) // duplicate: rejected, not counted
	if st := c.Stats(); st.Seeded != 2 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats after seeding = %+v, want Seeded 2 and untouched hit/miss", st)
	}
}
