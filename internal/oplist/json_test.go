package oplist

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
)

func TestJSONRoundTrip(t *testing.T) {
	l := fig1Latency(t)
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadList(l.Plan(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Lambda().Equal(l.Lambda()) {
		t.Fatal("λ lost")
	}
	for v := 0; v < l.Plan().N(); v++ {
		if !back.CalcBegin(v).Equal(l.CalcBegin(v)) {
			t.Fatalf("calc %d differs", v)
		}
	}
	for idx := range l.Plan().Edges() {
		if !back.CommBegin(idx).Equal(l.CommBegin(idx)) || !back.CommEnd(idx).Equal(l.CommEnd(idx)) {
			t.Fatalf("comm %d differs", idx)
		}
	}
	for _, m := range plan.Models {
		if err := back.Validate(m); err != nil {
			t.Fatalf("restored list invalid under %s: %v", m, err)
		}
	}
}

func TestJSONRoundTripStretched(t *testing.T) {
	// Multi-port stretched communications must survive serialization.
	l := fig1Latency(t)
	idx := l.Plan().EdgeIndex(plan.Edge{From: 0, To: 1})
	l.SetCommStretched(idx, rat.I(5), rat.MustParse("11/2"))
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadList(l.Plan(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.CommEnd(idx).Equal(rat.MustParse("11/2")) {
		t.Fatal("stretched end lost")
	}
}

func TestLoadListErrors(t *testing.T) {
	l := fig1Latency(t)
	w := l.Plan()
	good, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(s string) string
		errPart string
	}{
		{"bad json", func(s string) string { return "{" }, "unexpected"},
		{"unknown node", func(s string) string { return strings.Replace(s, `"node":"C1"`, `"node":"CX"`, 1) }, "unknown node"},
		{"unknown endpoint", func(s string) string { return strings.Replace(s, `"from":"C1"`, `"from":"CX"`, 1) }, "unknown endpoint"},
		{"duplicate comm", func(s string) string {
			return strings.Replace(s, `"from":"C1","to":"C2"`, `"from":"C1","to":"C4"`, 1)
		}, ""},
	}
	for _, c := range cases {
		mutated := c.mutate(string(good))
		if mutated == string(good) {
			t.Fatalf("%s: mutation did not apply", c.name)
		}
		if _, err := LoadList(w, []byte(mutated)); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if c.errPart != "" && !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
}

func TestLoadListWrongPlan(t *testing.T) {
	l := fig1Latency(t)
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	other := plan.MustNewWeighted(nil,
		[]rat.Rat{rat.One, rat.One},
		[]plan.Edge{{From: plan.In, To: 0}, {From: 0, To: 1}, {From: 1, To: plan.Out}},
		[]rat.Rat{rat.One, rat.One, rat.One})
	if _, err := LoadList(other, data); err == nil {
		t.Fatal("loading a Fig1 schedule into a different plan must fail")
	}
}

func TestShiftAndCanonicalize(t *testing.T) {
	l := fig1Latency(t)
	l.Shift(rat.I(3))
	if !l.CalcBegin(0).Equal(rat.I(4)) {
		t.Fatalf("shifted calc = %s", l.CalcBegin(0))
	}
	for _, m := range plan.Models {
		if err := l.Validate(m); err != nil {
			t.Fatalf("shifted list invalid under %s: %v", m, err)
		}
	}
	l.Canonicalize()
	// The input comm originally began at 0; after canonicalization it must
	// again.
	idx := l.Plan().EdgeIndex(plan.Edge{From: plan.In, To: 0})
	if !l.CommBegin(idx).Equal(rat.Zero) {
		t.Fatalf("canonicalized input comm begins at %s", l.CommBegin(idx))
	}
	if err := l.Validate(plan.InOrder); err != nil {
		t.Fatal(err)
	}
}
