package oplist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// fuzzPlan builds the reference plan fuzz inputs are decoded against: the
// precedence-graph execution plan of the webquery8 testdata instance (its
// precedence edges make a non-trivial DAG with named services).
func fuzzPlan(t testing.TB) *plan.Weighted {
	t.Helper()
	app := loadTestdataApp(t, "webquery8.json")
	eg, err := plan.FromGraph(app, app.Precedence())
	if err != nil {
		t.Fatal(err)
	}
	return eg.Weighted()
}

func loadTestdataApp(t testing.TB, name string) *workflow.App {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var app workflow.App
	if err := json.Unmarshal(data, &app); err != nil {
		t.Fatal(err)
	}
	return &app
}

// seedList builds a syntactically complete schedule for w with arbitrary
// but deterministic times (round-tripping does not require validity).
func seedList(w *plan.Weighted, scale int64) *List {
	l := New(w, rat.New(7*scale, 3))
	for v := 0; v < w.N(); v++ {
		l.SetCalc(v, rat.New(int64(v)*scale, 2))
	}
	for idx := range w.Edges() {
		b := rat.New(int64(idx)*scale, 5)
		l.SetCommStretched(idx, b, b.Add(w.Vol(idx)))
	}
	return l
}

// FuzzListJSONRoundTrip feeds arbitrary bytes into the operation-list JSON
// decoder and, whenever they parse against the reference plan, requires the
// decode → render → decode loop to be lossless and panic-free: marshalling
// the decoded list must succeed, decoding that output must reproduce every
// begin/end time and λ exactly, and the text renderers and validators must
// not crash on whatever schedule the input described. The corpus is seeded
// from schedules over every testdata instance, marshalled with varying time
// grids, plus hostile fragments.
func FuzzListJSONRoundTrip(f *testing.F) {
	w := fuzzPlan(f)
	for _, scale := range []int64{1, 3, 1000} {
		data, err := seedList(w, scale).MarshalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Schedules of the other testdata instances exercise the unknown-name
	// and missing-entry error paths against the reference plan.
	for _, name := range []string{"mixed6.json", "expanding12.json"} {
		app := loadTestdataApp(f, name)
		eg, err := plan.FromGraph(app, app.Precedence())
		if err != nil {
			f.Fatal(err)
		}
		data, err := seedList(eg.Weighted(), 2).MarshalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"lambda":"1/0"}`))
	f.Add([]byte(`{"lambda":"4","calc":[{"node":"C1","begin":"-3/2"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := LoadList(w, data)
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		out, err := l.MarshalJSON()
		if err != nil {
			t.Fatalf("decoded list failed to marshal: %v", err)
		}
		back, err := LoadList(w, out)
		if err != nil {
			t.Fatalf("rendered JSON failed to decode: %v\n%s", err, out)
		}
		if !back.Lambda().Equal(l.Lambda()) {
			t.Fatalf("lambda drifted: %s vs %s", l.Lambda(), back.Lambda())
		}
		for v := 0; v < w.N(); v++ {
			if !back.CalcBegin(v).Equal(l.CalcBegin(v)) {
				t.Fatalf("calc %d drifted: %s vs %s", v, l.CalcBegin(v), back.CalcBegin(v))
			}
		}
		for idx := range w.Edges() {
			if !back.CommBegin(idx).Equal(l.CommBegin(idx)) || !back.CommEnd(idx).Equal(l.CommEnd(idx)) {
				t.Fatalf("comm %d drifted: [%s,%s] vs [%s,%s]", idx,
					l.CommBegin(idx), l.CommEnd(idx), back.CommBegin(idx), back.CommEnd(idx))
			}
		}
		// Renderers and validators must hold up on arbitrary decoded times.
		_ = l.Timeline()
		_ = l.Gantt(rat.Zero, 40)
		for _, m := range plan.Models {
			_ = l.Validate(m)
		}
	})
}
