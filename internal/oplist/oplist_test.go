package oplist

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// fig1Weighted rebuilds the §2.3 example's weighted plan locally (the
// shared paperex fixtures import this package, so tests here cannot use
// them without a cycle).
func fig1Weighted() *plan.Weighted {
	app := workflow.Uniform(5, rat.I(4), rat.One)
	eg := plan.MustBuild(app, [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 4}, {3, 4}})
	return eg.Weighted()
}

// fig1Latency builds the §2.3 operation list of the paper: the latency-21
// schedule for Figure 1 (service indices: C1=0, ..., C5=4).
func fig1Latency(t testing.TB) *List {
	t.Helper()
	w := fig1Weighted()
	l := New(w, rat.I(21))
	set := func(e plan.Edge, begin int64) {
		if err := l.SetCommByEdge(e, rat.I(begin)); err != nil {
			t.Fatal(err)
		}
	}
	l.SetCalc(0, rat.I(1))
	l.SetCalc(1, rat.I(6))
	l.SetCalc(2, rat.I(11))
	l.SetCalc(3, rat.I(7))
	l.SetCalc(4, rat.I(16))
	set(plan.Edge{From: plan.In, To: 0}, 0)
	set(plan.Edge{From: 0, To: 1}, 5)
	set(plan.Edge{From: 0, To: 3}, 6)
	set(plan.Edge{From: 1, To: 2}, 10)
	set(plan.Edge{From: 2, To: 4}, 15)
	set(plan.Edge{From: 3, To: 4}, 11)
	set(plan.Edge{From: 4, To: plan.Out}, 20)
	return l
}

func TestFig1LatencyScheduleValidAllModels(t *testing.T) {
	l := fig1Latency(t)
	for _, m := range plan.Models {
		if err := l.Validate(m); err != nil {
			t.Fatalf("λ=21 should be valid under %s: %v", m, err)
		}
	}
	if !l.Latency().Equal(rat.I(21)) {
		t.Fatalf("latency = %s, want 21", l.Latency())
	}
	if !l.Period().Equal(rat.I(21)) {
		t.Fatalf("period = %s", l.Period())
	}
}

func TestFig1PeriodFiveOverlapOnly(t *testing.T) {
	// Paper §2.3: "we can obtain a period P = 5 for the model OVERLAP: ...
	// keep the same list and only change λ = 21 into λ = 5".
	l := fig1Latency(t)
	l.SetLambda(rat.I(5))
	if err := l.Validate(plan.Overlap); err != nil {
		t.Fatalf("λ=5 must be OVERLAP-valid: %v", err)
	}
	if l.Validate(plan.InOrder) == nil {
		t.Fatal("λ=5 must not be INORDER-valid")
	}
	if l.Validate(plan.OutOrder) == nil {
		t.Fatal("λ=5 must not be OUTORDER-valid")
	}
}

func TestFig1PeriodFourOverlapAfterShift(t *testing.T) {
	// Paper §2.3: λ=4 becomes valid after moving comm C4->C5 from 11 to 12.
	l := fig1Latency(t)
	l.SetLambda(rat.I(4))
	if l.Validate(plan.Overlap) == nil {
		t.Fatal("λ=4 with comm(C4->C5) at 11 must violate C5's incoming capacity")
	}
	if err := l.SetCommByEdge(plan.Edge{From: 3, To: 4}, rat.I(12)); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(plan.Overlap); err != nil {
		t.Fatalf("λ=4 with the paper's fix must be valid: %v", err)
	}
	// 4 is the lower bound max Cexec, so nothing smaller can ever work.
	l.SetLambda(rat.New(39, 10))
	if l.Validate(plan.Overlap) == nil {
		t.Fatal("λ=3.9 must be invalid (calc duration exceeds period)")
	}
}

func TestFig1InOrderPeriodTenWithOriginalList(t *testing.T) {
	// Paper §2.3: "With the previous operation list, we obtain a period 10"
	// for INORDER (the send of data set n blocks the receive of n+1 on C5).
	l := fig1Latency(t)
	l.SetLambda(rat.I(10))
	if err := l.Validate(plan.InOrder); err != nil {
		t.Fatalf("λ=10 must be INORDER-valid: %v", err)
	}
	l.SetLambda(rat.New(999, 100)) // 9.99
	if l.Validate(plan.InOrder) == nil {
		t.Fatal("λ=9.99 must not be INORDER-valid with this list")
	}
	// OUTORDER tolerates the same list down to λ such that mod-λ ops fit.
	l.SetLambda(rat.I(10))
	if err := l.Validate(plan.OutOrder); err != nil {
		t.Fatalf("INORDER-valid implies OUTORDER-valid: %v", err)
	}
}

func TestFig1OutOrderPeriodSeven(t *testing.T) {
	// Paper §2.3: OUTORDER reaches the bound 7 by setting BeginComm(4,5)=14
	// and BeginCalc(4)=8; the original list fails at λ=7.
	l := fig1Latency(t)
	l.SetLambda(rat.I(7))
	if l.Validate(plan.OutOrder) == nil {
		t.Fatal("original list must not be OUTORDER-valid at λ=7")
	}
	if err := l.SetCommByEdge(plan.Edge{From: 3, To: 4}, rat.I(14)); err != nil {
		t.Fatal(err)
	}
	l.SetCalc(3, rat.I(8))
	if err := l.Validate(plan.OutOrder); err != nil {
		t.Fatalf("modified list must be OUTORDER-valid at λ=7: %v", err)
	}
	// The same schedule is out-of-order: C4 sends data set n after the
	// receive of data set n+1 began, so INORDER must reject it.
	if l.Validate(plan.InOrder) == nil {
		t.Fatal("modified list must not be INORDER-valid at λ=7")
	}
	// 7 is the one-port bound; OUTORDER can do no better on this plan.
	l.SetLambda(rat.New(699, 100))
	if l.Validate(plan.OutOrder) == nil {
		t.Fatal("λ=6.99 must be invalid")
	}
}

func TestFig1InOrderOptimalTwentyThreeThirds(t *testing.T) {
	// Paper §2.3: the optimal INORDER period is 23/3, achieved by spreading
	// the idle time across C1, C4 and C5.
	l := fig1Latency(t)
	l.SetLambda(rat.New(23, 3))
	if err := l.SetCommByEdge(plan.Edge{From: 0, To: 3}, rat.MustParse("20/3")); err != nil {
		t.Fatal(err)
	}
	l.SetCalc(3, rat.MustParse("23/3"))
	if err := l.SetCommByEdge(plan.Edge{From: 3, To: 4}, rat.MustParse("40/3")); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(plan.InOrder); err != nil {
		t.Fatalf("paper's 23/3 schedule must be INORDER-valid: %v", err)
	}
	// Any smaller period with the same structure is impossible.
	l.SetLambda(rat.MustParse("23/3").Sub(rat.New(1, 1000)))
	if l.Validate(plan.InOrder) == nil {
		t.Fatal("λ just below 23/3 must be invalid")
	}
}

func TestBestValidPeriod(t *testing.T) {
	l := fig1Latency(t)
	candidates := []rat.Rat{rat.I(21), rat.I(10), rat.I(5), rat.I(4), rat.New(23, 3), rat.I(7)}
	p, err := l.BestValidPeriod(plan.Overlap, candidates)
	if err != nil || !p.Equal(rat.I(5)) {
		// λ=4 fails with the original comm(C4->C5) start; 5 is the best.
		t.Fatalf("overlap best = %s, err=%v; want 5", p, err)
	}
	p, err = l.BestValidPeriod(plan.InOrder, candidates)
	if err != nil || !p.Equal(rat.I(10)) {
		t.Fatalf("inorder best = %s, err=%v; want 10", p, err)
	}
	if !l.Lambda().Equal(rat.I(21)) {
		t.Fatal("BestValidPeriod must restore λ")
	}
	_, err = l.BestValidPeriod(plan.InOrder, []rat.Rat{rat.I(1)})
	if err == nil {
		t.Fatal("expected no-valid-candidate error")
	}
}

func TestValidateRejectsBrokenLists(t *testing.T) {
	base := func() *List { return fig1Latency(t) }

	l := base()
	l.SetLambda(rat.Zero)
	if err := l.Validate(plan.Overlap); err == nil || !strings.Contains(err.Error(), "not positive") {
		t.Fatalf("zero period: %v", err)
	}

	l = base()
	l.SetCalc(0, rat.I(-1))
	if err := l.Validate(plan.Overlap); err == nil || !strings.Contains(err.Error(), "< 0") {
		t.Fatalf("negative calc begin: %v", err)
	}

	l = base()
	if err := l.SetCommByEdge(plan.Edge{From: 0, To: 1}, rat.I(4)); err != nil {
		t.Fatal(err)
	}
	// Comm now begins at 4 < calcEnd(C1)=5: precedence violation.
	if err := l.Validate(plan.Overlap); err == nil || !strings.Contains(err.Error(), "before calc") {
		t.Fatalf("send-before-compute: %v", err)
	}

	l = base()
	idx := l.Plan().EdgeIndex(plan.Edge{From: 2, To: 4})
	l.SetCommStretched(idx, rat.I(15), rat.I(17)) // duration 2 != volume 1
	if err := l.Validate(plan.InOrder); err == nil || !strings.Contains(err.Error(), "one-port") {
		t.Fatalf("stretched comm under one-port: %v", err)
	}
	// Under OVERLAP a stretched (slower) comm is legal if nothing conflicts:
	// C3->C5 may take [15,17) at ratio 1/2 since calc(C5) starts at 16...
	// no: precedence requires the comm to end before calc(C5) begins.
	if err := l.Validate(plan.Overlap); err == nil || !strings.Contains(err.Error(), "after calc") {
		t.Fatalf("stretched comm crossing calc begin: %v", err)
	}
	l.SetCalc(4, rat.I(17)) // move C5's computation; now it ends at 21
	l.SetCommStretched(l.Plan().EdgeIndex(plan.Edge{From: 4, To: plan.Out}), rat.I(21), rat.I(22))
	if err := l.Validate(plan.Overlap); err != nil {
		t.Fatalf("stretched comm should now be valid: %v", err)
	}

	l = base()
	idx = l.Plan().EdgeIndex(plan.Edge{From: 2, To: 4})
	l.SetCommStretched(idx, rat.I(15), rat.New(31, 2)) // duration 1/2 < volume 1
	if err := l.Validate(plan.Overlap); err == nil || !strings.Contains(err.Error(), "shorter than volume") {
		t.Fatalf("over-fast comm: %v", err)
	}

	l = base()
	idx = l.Plan().EdgeIndex(plan.Edge{From: 2, To: 4})
	l.SetCommStretched(idx, rat.I(16), rat.I(15)) // ends before it begins
	if err := l.Validate(plan.Overlap); err == nil || !strings.Contains(err.Error(), "ends before") {
		t.Fatalf("negative duration: %v", err)
	}

	if err := base().SetCommByEdge(plan.Edge{From: 4, To: 0}, rat.Zero); err == nil {
		t.Fatal("SetCommByEdge must reject unknown edges")
	}
}

func TestOnePortRendezvousConflictDetected(t *testing.T) {
	// Two services receiving from one sender at the same time: fine for the
	// receivers (distinct servers) but a one-port violation at the sender.
	w := plan.MustNewWeighted(nil,
		[]rat.Rat{rat.One, rat.One, rat.One},
		[]plan.Edge{{From: plan.In, To: 0}, {From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: plan.Out}, {From: 2, To: plan.Out}},
		[]rat.Rat{rat.One, rat.One, rat.One, rat.One, rat.One})
	l := New(w, rat.I(100))
	l.SetCalc(0, rat.One)
	l.SetComm(0, rat.Zero)
	l.SetComm(1, rat.Two) // C1->C2 at [2,3)
	l.SetComm(2, rat.Two) // C1->C3 at [2,3): conflict on C1's out port
	l.SetCalc(1, rat.I(3))
	l.SetCalc(2, rat.I(3))
	l.SetComm(3, rat.I(4))
	l.SetComm(4, rat.I(4))
	if err := l.Validate(plan.OutOrder); err == nil {
		t.Fatal("simultaneous sends from one server must be rejected under one-port")
	}
	// Under OVERLAP multi-port the same times are legal: each comm may use
	// ratio 1... no — both at full ratio exceed capacity. Stretch them.
	if err := l.Validate(plan.Overlap); err == nil {
		t.Fatal("two full-rate sends exceed outgoing capacity")
	}
	l.SetCommStretched(1, rat.Two, rat.I(4))
	l.SetCommStretched(2, rat.Two, rat.I(4))
	l.SetCalc(1, rat.I(4))
	l.SetCalc(2, rat.I(4))
	l.SetComm(3, rat.I(5))
	l.SetComm(4, rat.I(5))
	if err := l.Validate(plan.Overlap); err != nil {
		t.Fatalf("half-rate concurrent sends must be valid: %v", err)
	}
}

func TestOverlapWrappedCapacity(t *testing.T) {
	// A comm wrapping the cycle boundary must still count against capacity.
	w := plan.MustNewWeighted(nil,
		[]rat.Rat{rat.One, rat.One},
		[]plan.Edge{{From: plan.In, To: 0}, {From: 0, To: 1}, {From: 1, To: plan.Out}},
		[]rat.Rat{rat.I(3), rat.I(3), rat.One})
	l := New(w, rat.I(4))
	l.SetComm(0, rat.Zero) // in->C1 [0,3)
	l.SetCalc(0, rat.I(3)) // [3,4)
	l.SetComm(1, rat.I(4)) // C1->C2 [4,7), wraps to [0,3) mod 4
	l.SetCalc(1, rat.I(7)) // [7,8)
	l.SetComm(2, rat.I(8)) // C2->out [8,9)
	if err := l.Validate(plan.Overlap); err != nil {
		t.Fatalf("expected valid: %v", err)
	}
	// Shrink λ to 3: in->C1 [0,3) and C1->C2 [1,4)≡[1,3)∪[0,1) both at rate
	// 1 would be fine per-port (different directions), but C1->C2's copies
	// now abut; the receive of the NEXT data set on C1 overlaps in-comm? No:
	// different ports. Check instead that total in-capacity catches two
	// overlapping incoming comms after wrapping.
	w2 := plan.MustNewWeighted(nil,
		[]rat.Rat{rat.One, rat.One, rat.One},
		[]plan.Edge{{From: plan.In, To: 0}, {From: plan.In, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: plan.Out}, {From: 0, To: plan.Out}, {From: 1, To: plan.Out}},
		[]rat.Rat{rat.One, rat.One, rat.I(3), rat.I(2), rat.One, rat.One, rat.One})
	l2 := New(w2, rat.I(4))
	l2.SetComm(0, rat.Zero)
	l2.SetComm(1, rat.Zero)
	l2.SetCalc(0, rat.One)
	l2.SetCalc(1, rat.One)
	l2.SetComm(2, rat.Two)  // C1->C3 [2,5): wraps, active on [2,4)∪[0,1)
	l2.SetComm(3, rat.I(3)) // C2->C3 [3,5): wraps, active on [3,4)∪[0,1)
	l2.SetCalc(2, rat.I(5))
	l2.SetComm(4, rat.I(6))
	l2.SetComm(5, rat.I(5))
	l2.SetComm(6, rat.I(5))
	// Both at full rate overlap on [3,4) and [0,1): capacity 2 > 1.
	if err := l2.Validate(plan.Overlap); err == nil {
		t.Fatal("wrapped overlapping full-rate comms must exceed capacity")
	}
}

func TestCloneIndependence(t *testing.T) {
	l := fig1Latency(t)
	c := l.Clone()
	c.SetCalc(0, rat.I(99))
	c.SetLambda(rat.One)
	if l.CalcBegin(0).Equal(rat.I(99)) || l.Lambda().Equal(rat.One) {
		t.Fatal("clone not independent")
	}
	if err := l.Validate(plan.InOrder); err != nil {
		t.Fatalf("original must stay valid: %v", err)
	}
}

func TestZeroVolumeCommsAreFree(t *testing.T) {
	// Zero-volume comms (selectivity 0 upstream) never conflict.
	w := plan.MustNewWeighted(nil,
		[]rat.Rat{rat.One, rat.Zero},
		[]plan.Edge{{From: plan.In, To: 0}, {From: 0, To: 1}, {From: 1, To: plan.Out}},
		[]rat.Rat{rat.One, rat.Zero, rat.Zero})
	l := New(w, rat.Two)
	l.SetComm(0, rat.Zero)
	l.SetCalc(0, rat.One)
	l.SetComm(1, rat.Two)
	l.SetCalc(1, rat.Two)
	l.SetComm(2, rat.Two)
	for _, m := range plan.Models {
		if err := l.Validate(m); err != nil {
			t.Fatalf("zero-volume schedule invalid under %s: %v", m, err)
		}
	}
}

func TestAccessors(t *testing.T) {
	l := fig1Latency(t)
	if l.Plan().N() != 5 {
		t.Fatal("Plan accessor wrong")
	}
	if !l.CalcEnd(0).Equal(rat.I(5)) {
		t.Fatalf("CalcEnd = %s", l.CalcEnd(0))
	}
	idx := l.Plan().EdgeIndex(plan.Edge{From: 0, To: 1})
	if !l.CommBegin(idx).Equal(rat.I(5)) || !l.CommEnd(idx).Equal(rat.I(6)) {
		t.Fatal("comm accessors wrong")
	}
}
