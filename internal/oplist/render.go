package oplist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/rat"
)

// Gantt renders an ASCII timeline of the schedule, one row per server,
// covering [0, horizon) with the given number of character columns.
// Computations print as '#', receives as 'v', sends as '^'; overlapping
// multi-port activity of the same kind shares the cell, and mixed activity
// prints as '*'. Intended for human inspection in the CLI and examples.
func (l *List) Gantt(horizon rat.Rat, cols int) string {
	if cols < 10 {
		cols = 10
	}
	if horizon.Sign() <= 0 {
		horizon = rat.Max(l.Latency(), l.lambda)
	}
	w := l.w
	var b strings.Builder
	scale := horizon.Div(rat.I(int64(cols)))
	fmt.Fprintf(&b, "%-12s 0%s%s\n", "server", strings.Repeat(" ", cols-len(horizon.Decimal(1))), horizon.Decimal(1))
	type span struct {
		from, to rat.Rat
		ch       byte
	}
	for v := 0; v < w.N(); v++ {
		spans := []span{{l.calcBegin[v], l.CalcEnd(v), '#'}}
		for _, idx := range w.InEdges(v) {
			spans = append(spans, span{l.commBegin[idx], l.commEnd[idx], 'v'})
		}
		for _, idx := range w.OutEdges(v) {
			spans = append(spans, span{l.commBegin[idx], l.commEnd[idx], '^'})
		}
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range spans {
			if s.to.Equal(s.from) {
				continue
			}
			for c := 0; c < cols; c++ {
				cellStart := scale.MulInt(int64(c))
				cellEnd := scale.MulInt(int64(c + 1))
				if s.from.Less(cellEnd) && cellStart.Less(s.to) {
					switch {
					case row[c] == '.':
						row[c] = s.ch
					case row[c] != s.ch:
						row[c] = '*'
					}
				}
			}
		}
		fmt.Fprintf(&b, "%-12s |%s|\n", w.Name(v), row)
	}
	return b.String()
}

// Timeline returns a textual event-by-event description of the schedule
// for data set 0, sorted by begin time: the operation list in the paper's
// presentation style.
func (l *List) Timeline() string {
	w := l.w
	type ev struct {
		begin, end rat.Rat
		what       string
	}
	var evs []ev
	for v := 0; v < w.N(); v++ {
		evs = append(evs, ev{l.calcBegin[v], l.CalcEnd(v), fmt.Sprintf("compute %s", w.Name(v))})
	}
	for idx, e := range w.Edges() {
		from, to := endpointName(w, e.From), endpointName(w, e.To)
		evs = append(evs, ev{l.commBegin[idx], l.commEnd[idx], fmt.Sprintf("comm %s -> %s", from, to)})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if !evs[i].begin.Equal(evs[j].begin) {
			return evs[i].begin.Less(evs[j].begin)
		}
		return evs[i].end.Less(evs[j].end)
	})
	var b strings.Builder
	fmt.Fprintf(&b, "period λ = %s, latency = %s\n", l.lambda, l.Latency())
	for _, e := range evs {
		fmt.Fprintf(&b, "  [%8s, %8s) %s\n", e.begin, e.end, e.what)
	}
	return b.String()
}

func endpointName(w *plan.Weighted, v int) string {
	switch {
	case v == plan.In:
		return "in"
	case v == plan.Out:
		return "out"
	default:
		return w.Name(v)
	}
}
