// Package oplist implements operation lists — the second half of a plan in
// the paper's sense — together with exact validators for the three
// communication models of Appendix A.
//
// An operation list fixes, for data set 0, the begin time of every
// computation and the begin/end times of every communication; the schedule
// repeats with period λ (data set n is shifted by n·λ). The validators
// check, with exact rational arithmetic, every constraint the paper imposes:
//
//   - non-preemption and fixed durations,
//   - per-data-set precedence (receive ≤ compute ≤ send),
//   - one-port exclusiveness, expressed as circular (mod λ) interval
//     disjointness of all operations touching a server (OUTORDER), or as the
//     stronger in-order constraint that sends of data set n finish before
//     receives of data set n+1 begin (INORDER),
//   - bounded multi-port bandwidth: at every instant of the cycle the
//     incoming (resp. outgoing) bandwidth ratios of a server sum to ≤ 1,
//     with each communication holding a constant ratio (OVERLAP).
package oplist

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/rat"
)

// List is an operation list for a weighted plan. Times refer to data set 0;
// the cyclic schedule shifts all of them by λ per data set.
type List struct {
	w         *plan.Weighted
	lambda    rat.Rat
	calcBegin []rat.Rat
	commBegin []rat.Rat
	commEnd   []rat.Rat
}

// New returns an all-zero operation list for w with the given period λ.
// Communication ends default to begin+volume (the one-port duration).
func New(w *plan.Weighted, lambda rat.Rat) *List {
	l := &List{
		w:         w,
		lambda:    lambda,
		calcBegin: make([]rat.Rat, w.N()),
		commBegin: make([]rat.Rat, len(w.Edges())),
		commEnd:   make([]rat.Rat, len(w.Edges())),
	}
	for i := range l.commEnd {
		l.commEnd[i] = w.Vol(i)
	}
	return l
}

// Plan returns the weighted plan this list schedules.
func (l *List) Plan() *plan.Weighted { return l.w }

// Lambda returns the period λ.
func (l *List) Lambda() rat.Rat { return l.lambda }

// SetLambda replaces the period (used when re-validating the same schedule
// at a different period, as the paper does in §2.3).
func (l *List) SetLambda(lambda rat.Rat) { l.lambda = lambda }

// SetCalc sets the begin time of node v's computation.
func (l *List) SetCalc(v int, begin rat.Rat) { l.calcBegin[v] = begin }

// CalcBegin returns the begin time of node v's computation.
func (l *List) CalcBegin(v int) rat.Rat { return l.calcBegin[v] }

// CalcEnd returns begin+Ccomp of node v's computation.
func (l *List) CalcEnd(v int) rat.Rat { return l.calcBegin[v].Add(l.w.Comp(v)) }

// SetComm sets the begin time of the idx-th communication with the one-port
// duration (end = begin + volume).
func (l *List) SetComm(idx int, begin rat.Rat) {
	l.commBegin[idx] = begin
	l.commEnd[idx] = begin.Add(l.w.Vol(idx))
}

// SetCommStretched sets explicit begin and end times for the idx-th
// communication; the multi-port model may stretch a communication beyond
// its volume by assigning it a bandwidth ratio < 1.
func (l *List) SetCommStretched(idx int, begin, end rat.Rat) {
	l.commBegin[idx] = begin
	l.commEnd[idx] = end
}

// SetCommByEdge is SetComm addressed by edge value.
func (l *List) SetCommByEdge(e plan.Edge, begin rat.Rat) error {
	idx := l.w.EdgeIndex(e)
	if idx < 0 {
		return fmt.Errorf("oplist: edge %s not in plan", e)
	}
	l.SetComm(idx, begin)
	return nil
}

// CommBegin returns the begin time of the idx-th communication.
func (l *List) CommBegin(idx int) rat.Rat { return l.commBegin[idx] }

// CommEnd returns the end time of the idx-th communication.
func (l *List) CommEnd(idx int) rat.Rat { return l.commEnd[idx] }

// Clone returns an independent copy of the list (sharing the immutable
// plan).
func (l *List) Clone() *List {
	c := New(l.w, l.lambda)
	copy(c.calcBegin, l.calcBegin)
	copy(c.commBegin, l.commBegin)
	copy(c.commEnd, l.commEnd)
	return c
}

// Period returns λ.
func (l *List) Period() rat.Rat { return l.lambda }

// Latency returns max over communications of EndComm⁰, the paper's latency
// of the plan (output communications close every path).
func (l *List) Latency() rat.Rat {
	max := rat.Zero
	for i := range l.commEnd {
		max = rat.Max(max, l.commEnd[i])
	}
	return max
}

// op is one operation on a server's timeline, for conflict reporting.
type op struct {
	label string
	begin rat.Rat
	dur   rat.Rat
}

// serverOps collects every operation touching server v: its computation and
// all incident communications (virtual input/output endpoints are private
// and impose no constraints of their own).
func (l *List) serverOps(v int) []op {
	ops := []op{{
		label: fmt.Sprintf("calc(%s)", l.w.Name(v)),
		begin: l.calcBegin[v],
		dur:   l.w.Comp(v),
	}}
	for _, idx := range l.w.InEdges(v) {
		ops = append(ops, op{
			label: fmt.Sprintf("comm(%s)", l.w.Edge(idx)),
			begin: l.commBegin[idx],
			dur:   l.commEnd[idx].Sub(l.commBegin[idx]),
		})
	}
	for _, idx := range l.w.OutEdges(v) {
		ops = append(ops, op{
			label: fmt.Sprintf("comm(%s)", l.w.Edge(idx)),
			begin: l.commBegin[idx],
			dur:   l.commEnd[idx].Sub(l.commBegin[idx]),
		})
	}
	return ops
}

// Validate checks the full Appendix-A constraint set for the given model
// and returns nil if the operation list is a valid cyclic schedule.
func (l *List) Validate(m plan.Model) error {
	if l.lambda.Sign() <= 0 {
		return fmt.Errorf("oplist: period %s is not positive", l.lambda)
	}
	if err := l.validateCommon(m); err != nil {
		return err
	}
	switch m {
	case plan.Overlap:
		return l.validateOverlap()
	case plan.InOrder:
		if err := l.validateOnePortSameDataSet(); err != nil {
			return err
		}
		return l.validateInOrder()
	case plan.OutOrder:
		if err := l.validateOnePortSameDataSet(); err != nil {
			return err
		}
		return l.validateOutOrder()
	default:
		return fmt.Errorf("oplist: unknown model %v", m)
	}
}

// validateCommon checks constraints shared by all models: non-negative
// start times, duration rules, self-fit within the period, and per-data-set
// precedence.
func (l *List) validateCommon(m plan.Model) error {
	for v := 0; v < l.w.N(); v++ {
		if l.calcBegin[v].Sign() < 0 {
			return fmt.Errorf("oplist: calc(%s) begins at %s < 0", l.w.Name(v), l.calcBegin[v])
		}
		if l.w.Comp(v).Greater(l.lambda) {
			return fmt.Errorf("oplist: calc(%s) duration %s exceeds period %s", l.w.Name(v), l.w.Comp(v), l.lambda)
		}
	}
	for idx, e := range l.w.Edges() {
		b, en, vol := l.commBegin[idx], l.commEnd[idx], l.w.Vol(idx)
		if b.Sign() < 0 {
			return fmt.Errorf("oplist: comm(%s) begins at %s < 0", e, b)
		}
		dur := en.Sub(b)
		if dur.Sign() < 0 {
			return fmt.Errorf("oplist: comm(%s) ends before it begins", e)
		}
		if m == plan.Overlap {
			// Constant ratio vol/dur must be ≤ 1, i.e. dur ≥ vol.
			if dur.Less(vol) {
				return fmt.Errorf("oplist: comm(%s) duration %s shorter than volume %s", e, dur, vol)
			}
		} else {
			// One-port: full bandwidth, duration equals volume exactly.
			if !dur.Equal(vol) {
				return fmt.Errorf("oplist: comm(%s) duration %s != volume %s under one-port", e, dur, vol)
			}
		}
		if dur.Greater(l.lambda) {
			return fmt.Errorf("oplist: comm(%s) duration %s exceeds period %s", e, dur, l.lambda)
		}
	}
	// Per-data-set precedence: receive before compute before send.
	for idx, e := range l.w.Edges() {
		if e.To >= 0 {
			if l.commEnd[idx].Greater(l.calcBegin[e.To]) {
				return fmt.Errorf("oplist: comm(%s) ends at %s after calc(%s) begins at %s",
					e, l.commEnd[idx], l.w.Name(e.To), l.calcBegin[e.To])
			}
		}
		if e.From >= 0 {
			if l.CalcEnd(e.From).Greater(l.commBegin[idx]) {
				return fmt.Errorf("oplist: comm(%s) begins at %s before calc(%s) ends at %s",
					e, l.commBegin[idx], l.w.Name(e.From), l.CalcEnd(e.From))
			}
		}
	}
	return nil
}

// validateOnePortSameDataSet checks the base one-port constraints: for any
// server, two operations for the same data set never overlap in absolute
// time. (Cross-data-set conflicts are handled by the model-specific rules.)
func (l *List) validateOnePortSameDataSet() error {
	for v := 0; v < l.w.N(); v++ {
		ops := l.serverOps(v)
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, b := ops[i], ops[j]
				if a.dur.IsZero() || b.dur.IsZero() {
					continue
				}
				aEnd := a.begin.Add(a.dur)
				bEnd := b.begin.Add(b.dur)
				if a.begin.Less(bEnd) && b.begin.Less(aEnd) {
					return fmt.Errorf("oplist: server %s: %s [%s,%s) overlaps %s [%s,%s)",
						l.w.Name(v), a.label, a.begin, aEnd, b.label, b.begin, bEnd)
				}
			}
		}
	}
	return nil
}

// validateInOrder checks constraint (1) of Appendix A: on every server, all
// sends for data set n complete before any receive for data set n+1 begins.
// Together with the base constraints this makes each server process data
// sets one at a time.
func (l *List) validateInOrder() error {
	for v := 0; v < l.w.N(); v++ {
		for _, out := range l.w.OutEdges(v) {
			for _, in := range l.w.InEdges(v) {
				nextBegin := l.commBegin[in].Add(l.lambda)
				if l.commEnd[out].Greater(nextBegin) {
					return fmt.Errorf("oplist: server %s: comm(%s) ends at %s after next-data-set comm(%s) begins at %s",
						l.w.Name(v), l.w.Edge(out), l.commEnd[out], l.w.Edge(in), nextBegin)
				}
			}
		}
	}
	return nil
}

// validateOutOrder checks that all operations touching a server are
// pairwise disjoint on the λ-cycle, which is exactly the Appendix-A
// case-1/case-2 disjunction list for the OUTORDER model.
func (l *List) validateOutOrder() error {
	for v := 0; v < l.w.N(); v++ {
		ops := l.serverOps(v)
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				if !l.circularDisjoint(ops[i], ops[j]) {
					return fmt.Errorf("oplist: server %s: %s and %s overlap modulo λ=%s",
						l.w.Name(v), ops[i].label, ops[j].label, l.lambda)
				}
			}
		}
	}
	return nil
}

// circularDisjoint reports whether two operations with durations ≤ λ are
// disjoint when both repeat every λ. With x = (b2-b1) mod λ, the copies are
// disjoint iff d1 ≤ x ≤ λ-d2.
func (l *List) circularDisjoint(a, b op) bool {
	if a.dur.IsZero() || b.dur.IsZero() {
		return true
	}
	x := b.begin.Sub(a.begin).Mod(l.lambda)
	return a.dur.Leq(x) && x.Leq(l.lambda.Sub(b.dur))
}

// validateOverlap checks the multi-port capacity constraints: on every
// server, at every instant of the λ-cycle, the bandwidth ratios of active
// incoming (resp. outgoing) communications sum to at most 1. A
// communication of volume t and duration d holds ratio t/d for its whole
// lifetime (the paper requires the ratio to be constant).
func (l *List) validateOverlap() error {
	for v := 0; v < l.w.N(); v++ {
		if err := l.checkCapacity(v, l.w.InEdges(v), "incoming"); err != nil {
			return err
		}
		if err := l.checkCapacity(v, l.w.OutEdges(v), "outgoing"); err != nil {
			return err
		}
	}
	return nil
}

// checkCapacity verifies Σ ratios ≤ 1 over one direction of one server.
// Active intervals are projected on the λ-circle; between consecutive
// breakpoints the active set is constant, so checking each segment suffices.
func (l *List) checkCapacity(v int, edgeIdxs []int, dir string) error {
	type span struct {
		startMod rat.Rat // begin mod λ
		dur      rat.Rat
		rate     rat.Rat
		idx      int
	}
	var spans []span
	var points []rat.Rat
	for _, idx := range edgeIdxs {
		vol := l.w.Vol(idx)
		if vol.IsZero() {
			continue
		}
		dur := l.commEnd[idx].Sub(l.commBegin[idx])
		if dur.IsZero() {
			return fmt.Errorf("oplist: comm(%s) has zero duration but volume %s", l.w.Edge(idx), vol)
		}
		s := span{
			startMod: l.commBegin[idx].Mod(l.lambda),
			dur:      dur,
			rate:     vol.Div(dur),
			idx:      idx,
		}
		spans = append(spans, s)
		points = append(points, s.startMod, s.startMod.Add(s.dur).Mod(l.lambda))
	}
	if len(spans) == 0 {
		return nil
	}
	points = append(points, rat.Zero)
	sort.Slice(points, func(i, j int) bool { return points[i].Less(points[j]) })
	// Deduplicate.
	uniq := points[:1]
	for _, p := range points[1:] {
		if !p.Equal(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	for _, p := range uniq {
		// Activity is constant on [p, next); testing membership of p in each
		// half-open wrapped interval decides the whole segment.
		total := rat.Zero
		for _, s := range spans {
			if s.dur.Geq(l.lambda) {
				// Duration exactly λ: permanently active (durations > λ were
				// rejected by validateCommon).
				total = total.Add(s.rate)
				continue
			}
			x := p.Sub(s.startMod).Mod(l.lambda)
			if x.Less(s.dur) {
				total = total.Add(s.rate)
			}
		}
		if total.Greater(rat.One) {
			return fmt.Errorf("oplist: server %s: %s bandwidth %s exceeds capacity at cycle time %s",
				l.w.Name(v), dir, total, p)
		}
	}
	return nil
}

// BestValidPeriod returns the smallest period among the candidate λ values
// for which this schedule's op times are valid under model m, or an error
// if none is. It re-validates the same begin times at each candidate, which
// is how the paper reuses one operation list across models in §2.3.
func (l *List) BestValidPeriod(m plan.Model, candidates []rat.Rat) (rat.Rat, error) {
	sorted := append([]rat.Rat(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	saved := l.lambda
	defer func() { l.lambda = saved }()
	for _, c := range sorted {
		l.lambda = c
		if l.Validate(m) == nil {
			return c, nil
		}
	}
	return rat.Zero, fmt.Errorf("oplist: no candidate period is valid under %s", m)
}
