package oplist

import (
	"strings"
	"testing"

	"repro/internal/rat"
)

func TestGanttRendersAllServers(t *testing.T) {
	l := fig1Latency(t)
	out := l.Gantt(rat.I(21), 42)
	for _, name := range []string{"C1", "C2", "C3", "C4", "C5"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing server %s in:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "v") || !strings.Contains(out, "^") {
		t.Fatalf("missing activity glyphs in:\n%s", out)
	}
	// C1 computes during [1,5) of 21: roughly columns 2..10 of 42.
	lines := strings.Split(out, "\n")
	var c1 string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "C1") {
			c1 = ln
		}
	}
	if !strings.Contains(c1, "####") {
		t.Fatalf("C1 row lacks computation block: %q", c1)
	}
}

func TestGanttDefaults(t *testing.T) {
	l := fig1Latency(t)
	// Zero horizon and tiny width fall back to sane defaults.
	out := l.Gantt(rat.Zero, 1)
	if !strings.Contains(out, "C5") {
		t.Fatal("default render broken")
	}
}

func TestTimelineSortedAndComplete(t *testing.T) {
	l := fig1Latency(t)
	out := l.Timeline()
	if !strings.Contains(out, "period λ = 21, latency = 21") {
		t.Fatalf("header wrong:\n%s", out)
	}
	// All 5 computations and 7 communications present.
	if got := strings.Count(out, "compute "); got != 5 {
		t.Fatalf("%d compute lines, want 5", got)
	}
	if got := strings.Count(out, "comm "); got != 7 {
		t.Fatalf("%d comm lines, want 7", got)
	}
	if !strings.Contains(out, "comm in -> C1") || !strings.Contains(out, "comm C5 -> out") {
		t.Fatalf("virtual endpoints missing:\n%s", out)
	}
	// The input comm at time 0 must be the first event line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[1], "comm in -> C1") {
		t.Fatalf("first event is %q", lines[1])
	}
}
