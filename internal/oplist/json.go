package oplist

import (
	"encoding/json"
	"fmt"

	"repro/internal/plan"
	"repro/internal/rat"
)

// listJSON is the serialized form of an operation list. Times are exact
// rationals in string form; communications are keyed by their endpoints so
// files remain meaningful independent of internal edge numbering.
type listJSON struct {
	Lambda rat.Rat    `json:"lambda"`
	Calc   []calcJSON `json:"calc"`
	Comm   []commJSON `json:"comm"`
}

type calcJSON struct {
	Node  string  `json:"node"`
	Begin rat.Rat `json:"begin"`
}

type commJSON struct {
	From  string  `json:"from"` // node name, or "in"
	To    string  `json:"to"`   // node name, or "out"
	Begin rat.Rat `json:"begin"`
	End   rat.Rat `json:"end"`
}

// MarshalJSON serializes the schedule with exact times.
func (l *List) MarshalJSON() ([]byte, error) {
	w := l.w
	doc := listJSON{Lambda: l.lambda}
	for v := 0; v < w.N(); v++ {
		doc.Calc = append(doc.Calc, calcJSON{Node: w.Name(v), Begin: l.calcBegin[v]})
	}
	for idx, e := range w.Edges() {
		doc.Comm = append(doc.Comm, commJSON{
			From:  endpointName(w, e.From),
			To:    endpointName(w, e.To),
			Begin: l.commBegin[idx],
			End:   l.commEnd[idx],
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// LoadList reconstructs an operation list for plan w from data produced by
// MarshalJSON. Every node and communication of w must be present exactly
// once; times are restored exactly.
func LoadList(w *plan.Weighted, data []byte) (*List, error) {
	var doc listJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("oplist: %w", err)
	}
	l := New(w, doc.Lambda)
	nameToNode := make(map[string]int, w.N())
	for v := 0; v < w.N(); v++ {
		nameToNode[w.Name(v)] = v
	}
	seenCalc := make([]bool, w.N())
	for _, c := range doc.Calc {
		v, ok := nameToNode[c.Node]
		if !ok {
			return nil, fmt.Errorf("oplist: unknown node %q", c.Node)
		}
		if seenCalc[v] {
			return nil, fmt.Errorf("oplist: duplicate calc entry for %q", c.Node)
		}
		seenCalc[v] = true
		l.SetCalc(v, c.Begin)
	}
	for v, seen := range seenCalc {
		if !seen {
			return nil, fmt.Errorf("oplist: missing calc entry for %q", w.Name(v))
		}
	}
	resolve := func(name string, virtual int) (int, error) {
		switch name {
		case "in":
			return plan.In, nil
		case "out":
			return plan.Out, nil
		}
		if v, ok := nameToNode[name]; ok {
			return v, nil
		}
		return virtual, fmt.Errorf("oplist: unknown endpoint %q", name)
	}
	seenComm := make([]bool, len(w.Edges()))
	for _, c := range doc.Comm {
		from, err := resolve(c.From, plan.In)
		if err != nil {
			return nil, err
		}
		to, err := resolve(c.To, plan.Out)
		if err != nil {
			return nil, err
		}
		idx := w.EdgeIndex(plan.Edge{From: from, To: to})
		if idx < 0 {
			return nil, fmt.Errorf("oplist: plan has no communication %s -> %s", c.From, c.To)
		}
		if seenComm[idx] {
			return nil, fmt.Errorf("oplist: duplicate comm entry %s -> %s", c.From, c.To)
		}
		seenComm[idx] = true
		l.SetCommStretched(idx, c.Begin, c.End)
	}
	for idx, seen := range seenComm {
		if !seen {
			return nil, fmt.Errorf("oplist: missing comm entry for %s", w.Edge(idx))
		}
	}
	return l, nil
}

// Shift translates every begin/end time by delta (λ unchanged). Uniform
// shifts preserve validity under every model as long as no time becomes
// negative.
func (l *List) Shift(delta rat.Rat) {
	for v := range l.calcBegin {
		l.calcBegin[v] = l.calcBegin[v].Add(delta)
	}
	for i := range l.commBegin {
		l.commBegin[i] = l.commBegin[i].Add(delta)
		l.commEnd[i] = l.commEnd[i].Add(delta)
	}
}

// Canonicalize shifts the schedule so the earliest operation begins at
// exactly 0.
func (l *List) Canonicalize() {
	min := l.calcBegin[0]
	set := false
	for _, b := range l.calcBegin {
		if !set || b.Less(min) {
			min, set = b, true
		}
	}
	for _, b := range l.commBegin {
		if b.Less(min) {
			min = b
		}
	}
	l.Shift(min.Neg())
}
