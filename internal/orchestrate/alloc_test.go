package orchestrate

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/rat"
)

// Allocation-regression guards on the order-search hot path. The budgets
// are measured steady-state numbers with ~1.5x headroom, not aspirations:
// the patch+bound cycle legitimately allocates O(segment edges) because
// rebuilding a server's segment converts its exact delays to float
// enclosures, but repeat bound queries against an unchanged graph must
// stay near-free, and the one-port value() scratch reuse from PR 5 must
// stay exactly zero-alloc. If one of these trips, an inner-loop change
// started allocating per evaluation instead of per patch.

// allocEvalSetup mirrors runOrderShard's state machine up to "slot 0
// decided": everything decided except the permutable slots, then the
// first slot's side flipped to decided so patch(slot0) is the hot cycle.
func allocEvalSetup(t *testing.T, e orderEval, w interface {
	N() int
}, orders Orders) (slot0 int, decIn, decOut []bool) {
	t.Helper()
	slots := collectSlots(orders)
	if len(slots) == 0 {
		t.Fatal("generated plan has no permutable slots")
	}
	decIn = make([]bool, w.N())
	decOut = make([]bool, w.N())
	for v := range decIn {
		decIn[v], decOut[v] = true, true
	}
	for _, s := range slots {
		if s.out {
			decOut[s.server] = false
		} else {
			decIn[s.server] = false
		}
	}
	e.prepare(orders, decIn, decOut, nil)
	s0 := slots[0]
	if s0.out {
		decOut[s0.server] = true
	} else {
		decIn[s0.server] = true
	}
	return s0.server, decIn, decOut
}

func TestOrderEvalAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	w := gen.Weighted(gen.NewRand(5), 6, 0.6)
	cases := []struct {
		name       string
		eval       orderEval
		patchBound float64 // patch + exceedsIncremental cycle
		value      float64 // value() on full orders
	}{
		// Measured: inorder 98/24, outorder 98/87, oneport 222/0.
		{"inorder", newInOrderEval(w), 150, 50},
		{"outorder", newOutOrderEval(w), 150, 130},
		{"oneport", newOnePortEval(w), 330, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orders := DefaultOrders(w)
			slot0, decIn, decOut := allocEvalSetup(t, tc.eval, w, orders)
			limit := tc.eval.floor().Mul(rat.New(3, 2))
			for i := 0; i < 3; i++ {
				tc.eval.patch(slot0, orders, decIn, decOut)
				tc.eval.exceedsIncremental(limit)
			}
			got := testing.AllocsPerRun(200, func() {
				tc.eval.patch(slot0, orders, decIn, decOut)
				tc.eval.exceedsIncremental(limit)
			})
			if got > tc.patchBound {
				t.Errorf("patch+exceedsIncremental: %.2f allocs/run, budget %.0f", got, tc.patchBound)
			}
			got = testing.AllocsPerRun(200, func() {
				if _, err := tc.eval.value(orders); err != nil {
					t.Fatalf("value: %v", err)
				}
			})
			if got > tc.value {
				t.Errorf("value: %.2f allocs/run, budget %.0f", got, tc.value)
			}
		})
	}
}

// TestRepeatBoundAllocBudget pins the repeat-query path: bounding the same
// decided state again without an intervening patch reuses every cached
// segment weight, so the only allocations left are the float enclosure of
// the query limit itself (measured 10-12).
func TestRepeatBoundAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	w := gen.Weighted(gen.NewRand(5), 6, 0.6)
	e := newInOrderEval(w)
	orders := DefaultOrders(w)
	decIn := make([]bool, w.N())
	decOut := make([]bool, w.N())
	e.prepare(orders, decIn, decOut, nil)

	limit := e.floor().Mul(rat.New(3, 2))
	e.exceedsIncremental(limit)
	if got := testing.AllocsPerRun(200, func() { e.exceedsIncremental(limit) }); got > 20 {
		t.Errorf("repeat exceedsIncremental, fixed limit: %.2f allocs/run, budget 20", got)
	}

	l2 := e.floor().Mul(rat.New(5, 4))
	e.seg.FeasibleAt(l2)
	if got := testing.AllocsPerRun(200, func() { e.seg.FeasibleAt(l2) }); got > 20 {
		t.Errorf("segmented repeat FeasibleAt, same lambda: %.2f allocs/run, budget 20", got)
	}

	alt := [2]rat.Rat{l2, limit}
	i := 0
	if got := testing.AllocsPerRun(200, func() { e.seg.FeasibleAt(alt[i%2]); i++ }); got > 20 {
		t.Errorf("segmented FeasibleAt, alternating lambda: %.2f allocs/run, budget 20", got)
	}
}
