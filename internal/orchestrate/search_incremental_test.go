package orchestrate

// The inner-loop speed suite: the natural-rank tie-break that keeps the
// most-constrained-first slot nesting bit-identical to the serial flat
// enumeration, and the incremental (segmented, float-gated) bound protocol
// against its from-scratch reference.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/rat"
)

// TestSlotRankMatchesEnumerationOrder pins the rank arithmetic: walking the
// natural nesting (slot 0 outermost, permute's swap order within each side)
// must visit assignments in exactly increasing slotRanker rank.
func TestSlotRankMatchesEnumerationOrder(t *testing.T) {
	for pi, w := range searchTestPlans(t, 720) {
		orders := DefaultOrders(w)
		slots := collectSlots(orders)
		if len(slots) == 0 {
			continue
		}
		ranker := newSlotRanker(slots)
		serial := int64(0)
		var rec func(si int)
		rec = func(si int) {
			if si == len(slots) {
				if got := ranker.rank(slots); got != serial {
					t.Fatalf("plan %d assignment %d: rank = %d", pi, serial, got)
				}
				serial++
				return
			}
			permute(slots[si].side, 0, func() bool {
				rec(si + 1)
				return true
			})
		}
		rec(0)
	}
}

// reorderingTestPlans filters random plans down to those that pass the
// shouldReorder gate (out-of-order slot sizes AND an order space of at
// least reorderMinCombos), so the rank tie-break path is exercised rather
// than the natural fast path.
func reorderingTestPlans(t *testing.T, maxCombos int) []*plan.Weighted {
	t.Helper()
	var plans []*plan.Weighted
	for seed := int64(0); seed < 200 && len(plans) < 3; seed++ {
		rng := gen.NewRand(seed)
		w := gen.Weighted(rng, 6+rng.Intn(3), 0.7)
		if c := OrderCombinations(w, maxCombos); c < reorderMinCombos || c > maxCombos {
			continue
		}
		if shouldReorder(collectSlots(DefaultOrders(w))) {
			plans = append(plans, w)
		}
	}
	if len(plans) == 0 {
		t.Fatal("no reordering plans found: the probe degenerated")
	}
	return plans
}

// TestReorderedSearchMatchesFlatEnumeration is the tie-break equivalence on
// plans where the slot nesting IS reordered: the search must still return
// the bit-identical Result the serial flat product scan keeps, at every
// entry point and worker count.
func TestReorderedSearchMatchesFlatEnumeration(t *testing.T) {
	for pi, w := range reorderingTestPlans(t, 8192) {
		for _, c := range searchCases() {
			want, ok := naiveBest(w, c)
			for _, workers := range []int{1, 3} {
				res, err := c.run(w, Options{Workers: workers})
				if !ok {
					if err == nil {
						t.Fatalf("plan %d %s: naive found nothing but search returned %s", pi, c.name, res.Value)
					}
					continue
				}
				if err != nil {
					t.Fatalf("plan %d %s workers %d: %v", pi, c.name, workers, err)
				}
				if !res.Value.Equal(c.val(want)) {
					t.Fatalf("plan %d %s workers %d: value %s != flat enumeration %s", pi, c.name, workers, res.Value, c.val(want))
				}
				if !listsIdentical(res.List, want) {
					t.Fatalf("plan %d %s workers %d: schedule differs from the flat enumeration's winner", pi, c.name, workers)
				}
			}
		}
	}
}

// TestIncrementalBoundMatchesRebuild pins the incremental protocol at the
// evaluator level, replaying the partial assignments the search visits:
//
//   - a patched evaluator must decide exceedsIncremental exactly like a
//     second evaluator freshly prepared on the same state (patch ≡ rebuild);
//   - exceedsIncremental(limit) == true must imply exceeds(limit) == true —
//     the segmented bound may only be weaker than the from-scratch one (it
//     skips the zero-token deadlock pre-check), never stronger.
func TestIncrementalBoundMatchesRebuild(t *testing.T) {
	evals := []struct {
		name string
		mk   func(w *plan.Weighted) orderEval
	}{
		{"inorder", func(w *plan.Weighted) orderEval { return newInOrderEval(w) }},
		{"outorder", func(w *plan.Weighted) orderEval { return newOutOrderEval(w) }},
		{"oneport", func(w *plan.Weighted) orderEval { return newOnePortEval(w) }},
	}
	for pi, w := range searchTestPlans(t, 120) {
		for _, ev := range evals {
			patched := ev.mk(w)
			scorer := ev.mk(w)
			orders := DefaultOrders(w)
			slots := collectSlots(orders)
			decIn := make([]bool, w.N())
			decOut := make([]bool, w.N())
			for v := range decIn {
				decIn[v], decOut[v] = true, true
			}
			for _, s := range slots {
				if s.out {
					decOut[s.server] = false
				} else {
					decIn[s.server] = false
				}
			}
			var st Stats
			patched.prepare(orders, decIn, decOut, &st)
			// Limits bracketing the model floor exercise both outcomes.
			limits := []struct{ mulNum, mulDen int64 }{{1, 2}, {1, 1}, {3, 2}, {4, 1}}
			for k := 0; k <= len(slots); k++ {
				if k > 0 {
					s := slots[k-1]
					side := s.side
					first := side[0]
					copy(side, side[1:])
					side[len(side)-1] = first
					if s.out {
						decOut[s.server] = true
					} else {
						decIn[s.server] = true
					}
					patched.patch(s.server, orders, decIn, decOut)
				}
				fresh := ev.mk(w)
				fresh.prepare(orders, decIn, decOut, nil)
				for _, lm := range limits {
					limit := patched.floor().Mul(rat.New(lm.mulNum, lm.mulDen))
					got := patched.exceedsIncremental(limit)
					if want := fresh.exceedsIncremental(limit); got != want {
						t.Fatalf("plan %d %s prefix %d limit %s: patched=%v, rebuilt=%v",
							pi, ev.name, k, limit, got, want)
					}
					if got && !scorer.exceeds(orders, decIn, decOut, limit) {
						t.Fatalf("plan %d %s prefix %d limit %s: incremental bound prunes where the from-scratch bound does not",
							pi, ev.name, k, limit)
					}
				}
			}
			if st.BoundEdgesBuilt == 0 && len(slots) > 0 {
				t.Fatalf("plan %d %s: prepare built no edges", pi, ev.name)
			}
		}
	}
}
