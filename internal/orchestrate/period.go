package orchestrate

import (
	"fmt"
	"sort"

	"repro/internal/eventgraph"
	"repro/internal/oplist"
	"repro/internal/plan"
	"repro/internal/rat"
)

// OverlapPeriod builds the Theorem-1 operation list for the OVERLAP model:
// λ = max_k Cexec(k), every communication stretched to duration λ (ratio
// volume/λ ≤ 1 by definition of the bound), and data set 0 traversing the
// graph greedily. The result is always optimal, hence Exact.
func OverlapPeriod(w *plan.Weighted) (Result, error) {
	lambda := w.PeriodLowerBound(plan.Overlap)
	if lambda.Sign() == 0 {
		lambda = rat.One // degenerate all-zero plan; any positive period works
	}
	l := oplist.New(w, lambda)
	// ready[v] = completion time of all of v's incoming communications.
	ready := make([]rat.Rat, w.N())
	for _, idx := range entryInEdges(w) {
		l.SetCommStretched(idx, rat.Zero, lambda)
	}
	for _, v := range w.Topo() {
		r := rat.Zero
		for _, idx := range w.InEdges(v) {
			r = rat.Max(r, l.CommEnd(idx))
		}
		ready[v] = r
		l.SetCalc(v, r)
		done := r.Add(w.Comp(v))
		for _, idx := range w.OutEdges(v) {
			l.SetCommStretched(idx, done, done.Add(lambda))
		}
	}
	if err := l.Validate(plan.Overlap); err != nil {
		return Result{}, fmt.Errorf("orchestrate: Theorem-1 construction invalid: %w", err)
	}
	return Result{List: l, Value: lambda, LowerBound: lambda, Exact: true}, nil
}

// entryInEdges returns the indices of the virtual input communications.
func entryInEdges(w *plan.Weighted) []int {
	var out []int
	for idx, e := range w.Edges() {
		if e.From == plan.In {
			out = append(out, idx)
		}
	}
	return out
}

// buildInOrderGraph encodes the INORDER semantics for fixed orders as a
// timed event graph: per server, the chain in-comms → calc → out-comms with
// zero tokens and a one-token wrap edge from the last operation back to the
// first (constraint (1) of Appendix A). Communications appear in both
// endpoint servers' chains, which realizes the synchronous rendezvous.
func buildInOrderGraph(w *plan.Weighted, orders Orders) *eventgraph.Graph {
	g := eventgraph.New(opCount(w))
	for v := 0; v < w.N(); v++ {
		seq := serverSequence(w, orders, v)
		for i := 0; i+1 < len(seq); i++ {
			g.AddEdge(seq[i], seq[i+1], opDur(w, seq[i]), 0)
		}
		last := seq[len(seq)-1]
		g.AddEdge(last, seq[0], opDur(w, last), 1)
	}
	return g
}

// solvePeriodGraph computes the MCR of g and the earliest schedule at that
// period, returning the operation list and the critical cycle as
// human-readable operation labels.
func solvePeriodGraph(w *plan.Weighted, g *eventgraph.Graph) (rat.Rat, *oplist.List, []string, error) {
	res, err := g.MaximumCycleRatio()
	lambda := rat.One
	var critical []string
	switch err {
	case nil:
		lambda = res.Ratio
		if lambda.Sign() == 0 {
			lambda = rat.One
		}
		critical = describeCycle(w, g, res.CriticalCycle)
	case eventgraph.ErrNoCycle:
		// No cyclic constraint: any period works; keep 1.
	default:
		return rat.Zero, nil, nil, err
	}
	pi, err := g.Potentials(lambda)
	if err != nil {
		return rat.Zero, nil, nil, err
	}
	return lambda, listFromTimes(w, lambda, pi), critical, nil
}

// describeCycle renders the operations visited by a critical cycle.
func describeCycle(w *plan.Weighted, g *eventgraph.Graph, cycle []int) []string {
	edges := g.Edges()
	out := make([]string, 0, len(cycle))
	for _, ei := range cycle {
		out = append(out, opLabel(w, edges[ei].From))
	}
	return out
}

// opLabel names an event-graph operation node.
func opLabel(w *plan.Weighted, op int) string {
	if op < w.N() {
		return "calc(" + w.Name(op) + ")"
	}
	e := w.Edge(op - w.N())
	from, to := w.Name(0), w.Name(0)
	switch {
	case e.From == plan.In:
		from = "in"
	case e.From >= 0:
		from = w.Name(e.From)
	}
	switch {
	case e.To == plan.Out:
		to = "out"
	case e.To >= 0:
		to = w.Name(e.To)
	}
	return "comm(" + from + "->" + to + ")"
}

// InOrderPeriodWithOrders returns the optimal INORDER operation list for
// the given fixed orders: the exact maximum-cycle-ratio period.
func InOrderPeriodWithOrders(w *plan.Weighted, orders Orders) (*oplist.List, error) {
	_, l, _, err := solvePeriodGraph(w, buildInOrderGraph(w, orders))
	if err != nil {
		return nil, err
	}
	if err := l.Validate(plan.InOrder); err != nil {
		return nil, fmt.Errorf("orchestrate: INORDER construction invalid: %w", err)
	}
	return l, nil
}

// extractOrders reads the per-server receive/send orders realized by an
// operation list (sorting each side by communication begin time).
func extractOrders(l *oplist.List) Orders {
	w := l.Plan()
	orders := DefaultOrders(w)
	byBegin := func(s []int) {
		sort.SliceStable(s, func(i, j int) bool {
			return l.CommBegin(s[i]).Less(l.CommBegin(s[j]))
		})
	}
	for v := 0; v < w.N(); v++ {
		byBegin(orders.In[v])
		byBegin(orders.Out[v])
	}
	return orders
}

// InOrderBottleneck identifies the critical cycle binding an INORDER
// schedule's period: the sequence of operations whose durations sum to
// exactly λ times the number of data-set wraps on the cycle. Returns nil
// when the schedule's period is not the cycle optimum for its own orders
// (e.g. a schedule with deliberate slack).
func InOrderBottleneck(l *oplist.List) []string {
	g := buildInOrderGraph(l.Plan(), extractOrders(l))
	res, err := g.MaximumCycleRatio()
	if err != nil || !res.Ratio.Equal(l.Lambda()) {
		return nil
	}
	return describeCycle(l.Plan(), g, res.CriticalCycle)
}

// graphLambda maps an MCR outcome to the schedule period the way
// solvePeriodGraph does: the exact ratio (1 for degenerate all-zero
// cycles), 1 when no cyclic constraint exists, and the error otherwise.
func graphLambda(g *eventgraph.Graph) (rat.Rat, error) {
	res, err := g.MaximumCycleRatio()
	switch err {
	case nil:
		if res.Ratio.Sign() == 0 {
			return rat.One, nil
		}
		return res.Ratio, nil
	case eventgraph.ErrNoCycle:
		return rat.One, nil
	default:
		return rat.Zero, err
	}
}

// edgeSink receives the constraint edges an evaluator emits; satisfied by
// both the flat *eventgraph.Graph and the incremental *eventgraph.Segmented
// (after BeginSegment), so one per-server emitter feeds both the
// from-scratch build and the one-segment patch.
type edgeSink interface {
	AddEdge(from, to int, delay rat.Rat, tokens int)
}

// inOrderEval is the INORDER order-search evaluator: the value of an
// assignment is the maximum cycle ratio of its event graph, computed on a
// reused graph; the full operation list (potentials + validation) is built
// only for improving candidates.
type inOrderEval struct {
	w     *plan.Weighted
	g     *eventgraph.Graph
	seg   *eventgraph.Segmented // incremental bound graph, one segment per server
	st    *Stats
	pi    []rat.Rat
	cexec []rat.Rat // per-server one-port execution time (Cin+comp+Cout)
	fl    rat.Rat
}

func newInOrderEval(w *plan.Weighted) *inOrderEval {
	e := &inOrderEval{
		w:     w,
		g:     eventgraph.New(opCount(w)),
		cexec: make([]rat.Rat, w.N()),
		fl:    w.PeriodLowerBound(plan.InOrder),
	}
	for v := 0; v < w.N(); v++ {
		e.cexec[v] = w.Cexec(v, plan.InOrder)
	}
	return e
}

func (e *inOrderEval) floor() rat.Rat { return e.fl }

// build fills the scratch graph with the INORDER constraints of a partial
// assignment. Decided sides contribute their exact chain and wrap edges
// (with both sides decided the graph matches buildInOrderGraph plus the
// dominated per-server self-loops); open sides contribute only constraints
// every completion implies:
//
//   - each in-comm precedes the computation by at least its own volume,
//     the computation precedes each out-comm by at least the computation
//     time (zero tokens: sub-paths of the completed chain);
//   - every possible last operation reaches every possible first operation
//     of the next data set through the wrap (one token, at least the last
//     operation's own duration);
//   - the full server cycle carries one token and total delay Cexec
//     whatever the orders — the calc self-loop keeps that per-server floor
//     in every partial graph.
func (e *inOrderEval) build(o Orders, decidedIn, decidedOut []bool) {
	e.g.Reset(opCount(e.w))
	for v := 0; v < e.w.N(); v++ {
		din := decidedIn == nil || decidedIn[v]
		dout := decidedOut == nil || decidedOut[v]
		e.serverEdges(e.g, v, o, din, dout)
	}
}

// serverEdges emits server v's INORDER constraints (see build) into sink.
func (e *inOrderEval) serverEdges(sink edgeSink, v int, o Orders, din, dout bool) {
	w := e.w
	calc := calcOp(v)
	ins, outs := o.In[v], o.Out[v]
	first := calc
	if din {
		prev := -1
		for _, ei := range ins {
			op := commOp(w, ei)
			if prev >= 0 {
				sink.AddEdge(prev, op, opDur(w, prev), 0)
			}
			prev = op
		}
		if prev >= 0 {
			sink.AddEdge(prev, calc, opDur(w, prev), 0)
			first = commOp(w, ins[0])
		}
	} else {
		for _, ei := range ins {
			sink.AddEdge(commOp(w, ei), calc, w.Vol(ei), 0)
		}
	}
	last := calc
	if dout {
		prev := calc
		for _, ei := range outs {
			op := commOp(w, ei)
			sink.AddEdge(prev, op, opDur(w, prev), 0)
			prev = op
		}
		last = prev
	} else {
		for _, ei := range outs {
			sink.AddEdge(calc, commOp(w, ei), w.Comp(v), 0)
		}
	}
	// Wrap edges (one token): every possible last op to every possible
	// first op of the next data set.
	switch {
	case dout && din:
		sink.AddEdge(last, first, opDur(w, last), 1)
	case dout:
		for _, fi := range ins {
			sink.AddEdge(last, commOp(w, fi), opDur(w, last), 1)
		}
	case din:
		for _, li := range outs {
			sink.AddEdge(commOp(w, li), first, w.Vol(li), 1)
		}
	default:
		for _, li := range outs {
			for _, fi := range ins {
				sink.AddEdge(commOp(w, li), commOp(w, fi), w.Vol(li), 1)
			}
		}
	}
	sink.AddEdge(calc, calc, e.cexec[v], 1)
}

// prepare builds the segmented bound graph — one segment per server — for
// the current decided state; patch rebuilds one server's segment in place.
func (e *inOrderEval) prepare(o Orders, decidedIn, decidedOut []bool, st *Stats) {
	e.st = st
	if e.seg == nil {
		e.seg = eventgraph.NewSegmented(opCount(e.w), e.w.N())
	} else {
		e.seg.Reset(opCount(e.w), e.w.N())
	}
	before := e.seg.EdgesBuilt()
	for v := 0; v < e.w.N(); v++ {
		e.seg.BeginSegment(v)
		e.serverEdges(e.seg, v, o, decidedIn[v], decidedOut[v])
	}
	if st != nil {
		st.BoundEdgesBuilt += e.seg.EdgesBuilt() - before
	}
}

func (e *inOrderEval) patch(v int, o Orders, decidedIn, decidedOut []bool) {
	before := e.seg.EdgesBuilt()
	e.seg.BeginSegment(v)
	e.serverEdges(e.seg, v, o, decidedIn[v], decidedOut[v])
	if e.st != nil {
		e.st.BoundEdgesBuilt += e.seg.EdgesBuilt() - before
	}
}

// exceedsIncremental answers exceeds against the patched graph, certified
// float pre-filter first. It never prunes where exceeds would not: the
// segmented relaxation decides feasibility identically except for the
// zero-token deadlock pre-check, whose absence only reports feasible more
// often (a weaker, still admissible bound).
func (e *inOrderEval) exceedsIncremental(limit rat.Rat) bool {
	feasible, fellBack := e.seg.FeasibleAt(limit)
	if e.st != nil {
		e.st.BoundEdgesFlat += int64(e.seg.TotalEdges())
		if fellBack {
			e.st.FilterFallback++
		} else {
			e.st.FilterCertified++
		}
	}
	return !feasible
}

func (e *inOrderEval) value(o Orders) (rat.Rat, error) {
	e.build(o, nil, nil)
	return graphLambda(e.g)
}

func (e *inOrderEval) list(o Orders) (*oplist.List, error) {
	return InOrderPeriodWithOrders(e.w, o)
}

// exceeds prunes a partial assignment when even its relaxed event graph —
// every edge of which is implied by every completion — admits no period of
// at most limit: the maximum cycle ratio of each completion is then
// strictly above limit too. The feasibility check is one longest-path
// relaxation at limit (no MCR needed), and a relaxed deadlock means every
// completion deadlocks.
func (e *inOrderEval) exceeds(o Orders, decidedIn, decidedOut []bool, limit rat.Rat) bool {
	e.build(o, decidedIn, decidedOut)
	pi, err := e.g.PotentialsInto(e.pi, limit)
	if pi != nil {
		e.pi = pi
	}
	return err != nil
}

// InOrderPeriod searches receive/send orders for the best INORDER period.
// Exact reports whether the whole order space was covered — flat product
// scoring replaced by the pruned prefix search of search.go, which
// preserves the optimum and the returned schedule (the optimum over the
// INORDER schedule family); the general problem is NP-hard (paper
// Prop. 3).
func InOrderPeriod(w *plan.Weighted, opts Options) (Result, error) {
	res, err := searchOrders(w, opts, func() orderEval { return newInOrderEval(w) })
	if err != nil {
		return Result{}, err
	}
	res.Value = res.List.Lambda()
	res.LowerBound = w.PeriodLowerBound(plan.InOrder)
	res.Bottleneck = InOrderBottleneck(res.List)
	return res, nil
}

// generations returns per-node pipeline stages: the hop-length of the
// longest path from the node to an exit, plus the per-edge generation of
// every communication (its sender's stage; one more for input comms).
func generations(w *plan.Weighted) (gen []int, commGen []int) {
	gen = make([]int, w.N())
	topo := w.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		g := 0
		for _, ei := range w.OutEdges(v) {
			if to := w.Edge(ei).To; to >= 0 && gen[to]+1 > g {
				g = gen[to] + 1
			}
		}
		gen[v] = g
	}
	commGen = make([]int, len(w.Edges()))
	for ei, e := range w.Edges() {
		if e.From >= 0 {
			commGen[ei] = gen[e.From]
		} else {
			commGen[ei] = gen[e.To] + 1
		}
	}
	return gen, commGen
}

// buildPipelinedGraph encodes the software-pipelined OUTORDER template in
// generation-shifted time: each operation is retimed by its pipeline stage
// (μ = stage), so that on every server the cycle "out-comms, calc, in-comms"
// carries exactly one token (between the last out-comm and the calc) while
// data precedence edges carry the stage differences. Begin times recovered
// by b = π + λ·(maxStage − μ) satisfy the original OUTORDER constraints.
func buildPipelinedGraph(w *plan.Weighted, orders Orders) (*eventgraph.Graph, []int, int) {
	gen, commGen := generations(w)
	mu := make([]int, opCount(w))
	maxMu := 0
	for v := 0; v < w.N(); v++ {
		mu[calcOp(v)] = gen[v]
	}
	for ei := range w.Edges() {
		mu[commOp(w, ei)] = commGen[ei]
	}
	for _, m := range mu {
		if m > maxMu {
			maxMu = m
		}
	}
	g := eventgraph.New(opCount(w))
	// Per-server residue cycle: O_1..O_q, calc, I_1..I_p, wrap to O_1.
	for v := 0; v < w.N(); v++ {
		outs := orders.Out[v]
		ins := orders.In[v]
		seq := make([]int, 0, len(outs)+1+len(ins))
		for _, e := range outs {
			seq = append(seq, commOp(w, e))
		}
		seq = append(seq, calcOp(v))
		for _, e := range ins {
			seq = append(seq, commOp(w, e))
		}
		for i := 0; i+1 < len(seq); i++ {
			tok := 0
			if seq[i+1] == calcOp(v) {
				tok = 1 // the single wrap token sits before the calc
			}
			g.AddEdge(seq[i], seq[i+1], opDur(w, seq[i]), tok)
		}
		last := seq[len(seq)-1]
		g.AddEdge(last, seq[0], opDur(w, last), 0)
	}
	// Data precedence in shifted time: calc(u) → comm carries no tokens
	// (same stage); comm → calc(v) carries the stage difference ≥ 1.
	for ei, e := range w.Edges() {
		if e.From >= 0 {
			g.AddEdge(calcOp(e.From), commOp(w, ei), w.Comp(e.From), 0)
		}
		if e.To >= 0 {
			g.AddEdge(commOp(w, ei), calcOp(e.To), w.Vol(ei), commGen[ei]-gen[e.To])
		}
	}
	return g, mu, maxMu
}

// OutOrderPeriodWithOrders builds the pipelined OUTORDER schedule for fixed
// orders and returns the better of it and the INORDER schedule (an INORDER
// list is always OUTORDER-valid).
func OutOrderPeriodWithOrders(w *plan.Weighted, orders Orders) (*oplist.List, error) {
	inorder, inErr := InOrderPeriodWithOrders(w, orders)

	g, mu, maxMu := buildPipelinedGraph(w, orders)
	lambda, shifted, _, err := solvePeriodGraph(w, g)
	var pipelined *oplist.List
	if err == nil {
		pipelined = oplist.New(w, lambda)
		for v := 0; v < w.N(); v++ {
			shift := lambda.MulInt(int64(maxMu - mu[calcOp(v)]))
			pipelined.SetCalc(v, shifted.CalcBegin(v).Add(shift))
		}
		for ei := range w.Edges() {
			shift := lambda.MulInt(int64(maxMu - mu[commOp(w, ei)]))
			pipelined.SetComm(ei, shifted.CommBegin(ei).Add(shift))
		}
		if verr := pipelined.Validate(plan.OutOrder); verr != nil {
			return nil, fmt.Errorf("orchestrate: pipelined construction invalid: %w", verr)
		}
	}
	switch {
	case pipelined == nil && inorder == nil:
		return nil, fmt.Errorf("orchestrate: no OUTORDER schedule for these orders (inorder: %v, pipelined: %v)", inErr, err)
	case pipelined == nil:
		return inorder, nil
	case inorder == nil || pipelined.Lambda().Less(inorder.Lambda()):
		return pipelined, nil
	default:
		return inorder, nil
	}
}

// outOrderEval is the OUTORDER order-search evaluator: the value of an
// assignment is the better of its INORDER period and its pipelined-
// template period (an INORDER list is always OUTORDER-valid), each an MCR
// on a reused event graph; OutOrderPeriodWithOrders materializes the
// winner.
type outOrderEval struct {
	ino     *inOrderEval
	g       *eventgraph.Graph     // pipelined-template scratch
	seg     *eventgraph.Segmented // incremental bound graph: per-server + static segment
	st      *Stats
	pi      []rat.Rat
	gen     []int
	commGen []int
	fl      rat.Rat
}

func newOutOrderEval(w *plan.Weighted) *outOrderEval {
	e := &outOrderEval{
		ino: newInOrderEval(w),
		g:   eventgraph.New(opCount(w)),
		fl:  w.PeriodLowerBound(plan.OutOrder),
	}
	e.gen, e.commGen = generations(w)
	return e
}

func (e *outOrderEval) floor() rat.Rat { return e.fl }

// build fills the pipelined scratch graph for a partial assignment. The
// data-precedence edges (stage-shifted, cf. buildPipelinedGraph) do not
// depend on the orders and are exact in every completion. Per server, the
// residue cycle "out-comms, calc (one token before it), in-comms, wrap"
// contributes its exact edges on decided sides; open sides contribute the
// constraints every permutation implies: each out-comm reaches the calc
// through the single wrap token carrying at least its own volume, the
// calc precedes each in-comm by the computation time, each in-comm
// reaches the first out-comm tokenlessly with at least its own volume —
// and the full residue cycle carries one token and total delay Cexec
// whatever the orders (the calc self-loop).
func (e *outOrderEval) build(o Orders, decidedIn, decidedOut []bool) {
	w := e.ino.w
	e.g.Reset(opCount(w))
	e.staticEdges(e.g)
	for v := 0; v < w.N(); v++ {
		din := decidedIn == nil || decidedIn[v]
		dout := decidedOut == nil || decidedOut[v]
		e.residueEdges(e.g, v, o, din, dout)
	}
}

// staticEdges emits the order-independent data-precedence edges in shifted
// time: calc(u) → comm carries no tokens (same stage); comm → calc(v)
// carries the stage difference ≥ 1.
func (e *outOrderEval) staticEdges(sink edgeSink) {
	w := e.ino.w
	for ei, ed := range w.Edges() {
		if ed.From >= 0 {
			sink.AddEdge(calcOp(ed.From), commOp(w, ei), w.Comp(ed.From), 0)
		}
		if ed.To >= 0 {
			sink.AddEdge(commOp(w, ei), calcOp(ed.To), w.Vol(ei), e.commGen[ei]-e.gen[ed.To])
		}
	}
}

// residueEdges emits server v's residue-cycle constraints (see build).
func (e *outOrderEval) residueEdges(sink edgeSink, v int, o Orders, din, dout bool) {
	w := e.ino.w
	calc := calcOp(v)
	ins, outs := o.In[v], o.Out[v]
	firstOut := -1
	if dout {
		if len(outs) > 0 {
			firstOut = commOp(w, outs[0])
			prev := -1
			for _, ei := range outs {
				op := commOp(w, ei)
				if prev >= 0 {
					sink.AddEdge(prev, op, opDur(w, prev), 0)
				}
				prev = op
			}
			sink.AddEdge(prev, calc, opDur(w, prev), 1)
		}
	} else {
		for _, ei := range outs {
			sink.AddEdge(commOp(w, ei), calc, w.Vol(ei), 1)
		}
	}
	// wrapTo closes the residue cycle from the last in-side operation
	// toward the out-comms (token 0) — toward each possible first
	// out-comm when the out side is open.
	wrapTo := func(from int, delay rat.Rat) {
		switch {
		case firstOut >= 0:
			sink.AddEdge(from, firstOut, delay, 0)
		case dout: // no out-comms: the residue wraps straight to calc
			sink.AddEdge(from, calc, delay, 0)
		default:
			for _, ei := range outs {
				sink.AddEdge(from, commOp(w, ei), delay, 0)
			}
		}
	}
	if din {
		prev := calc
		for _, ei := range ins {
			op := commOp(w, ei)
			sink.AddEdge(prev, op, opDur(w, prev), 0)
			prev = op
		}
		wrapTo(prev, opDur(w, prev))
	} else {
		for _, ei := range ins {
			sink.AddEdge(calc, commOp(w, ei), w.Comp(v), 0)
			wrapTo(commOp(w, ei), w.Vol(ei))
		}
	}
	sink.AddEdge(calc, calc, e.ino.cexec[v], 1)
}

// prepare/patch/exceedsIncremental: the OUTORDER bound needs BOTH templates
// infeasible (value is their minimum), so the evaluator drives two
// segmented graphs — the embedded INORDER one and its own pipelined one,
// whose segment w.N() holds the static data-precedence edges built once per
// prepare.
func (e *outOrderEval) prepare(o Orders, decidedIn, decidedOut []bool, st *Stats) {
	e.ino.prepare(o, decidedIn, decidedOut, st)
	w := e.ino.w
	e.st = st
	if e.seg == nil {
		e.seg = eventgraph.NewSegmented(opCount(w), w.N()+1)
	} else {
		e.seg.Reset(opCount(w), w.N()+1)
	}
	before := e.seg.EdgesBuilt()
	e.seg.BeginSegment(w.N())
	e.staticEdges(e.seg)
	for v := 0; v < w.N(); v++ {
		e.seg.BeginSegment(v)
		e.residueEdges(e.seg, v, o, decidedIn[v], decidedOut[v])
	}
	if st != nil {
		st.BoundEdgesBuilt += e.seg.EdgesBuilt() - before
	}
}

func (e *outOrderEval) patch(v int, o Orders, decidedIn, decidedOut []bool) {
	e.ino.patch(v, o, decidedIn, decidedOut)
	before := e.seg.EdgesBuilt()
	e.seg.BeginSegment(v)
	e.residueEdges(e.seg, v, o, decidedIn[v], decidedOut[v])
	if e.st != nil {
		e.st.BoundEdgesBuilt += e.seg.EdgesBuilt() - before
	}
}

func (e *outOrderEval) exceedsIncremental(limit rat.Rat) bool {
	if !e.ino.exceedsIncremental(limit) {
		return false
	}
	feasible, fellBack := e.seg.FeasibleAt(limit)
	if e.st != nil {
		e.st.BoundEdgesFlat += int64(e.seg.TotalEdges())
		if fellBack {
			e.st.FilterFallback++
		} else {
			e.st.FilterCertified++
		}
	}
	return !feasible
}

func (e *outOrderEval) value(o Orders) (rat.Rat, error) {
	inoVal, inoErr := e.ino.value(o)
	e.build(o, nil, nil)
	pipVal, pipErr := graphLambda(e.g)
	switch {
	case inoErr != nil && pipErr != nil:
		return rat.Zero, fmt.Errorf("orchestrate: no OUTORDER schedule for these orders (inorder: %v, pipelined: %v)", inoErr, pipErr)
	case inoErr != nil:
		return pipVal, nil
	case pipErr != nil:
		return inoVal, nil
	default:
		return rat.Min(pipVal, inoVal), nil
	}
}

func (e *outOrderEval) list(o Orders) (*oplist.List, error) {
	return OutOrderPeriodWithOrders(e.ino.w, o)
}

// exceeds prunes a partial assignment only when BOTH templates rule the
// limit out: the OUTORDER value is the minimum of the two, so the bound
// must hold for whichever branch a completion ends up taking.
func (e *outOrderEval) exceeds(o Orders, decidedIn, decidedOut []bool, limit rat.Rat) bool {
	if !e.ino.exceeds(o, decidedIn, decidedOut, limit) {
		return false
	}
	e.build(o, decidedIn, decidedOut)
	pi, err := e.g.PotentialsInto(e.pi, limit)
	if pi != nil {
		e.pi = pi
	}
	return err != nil
}

// OutOrderPeriod searches orders for the best OUTORDER period found. The
// schedule family (per-server pipelined residue orders) does not cover
// every conceivable OUTORDER schedule, so Exact refers to the family; the
// general problem is NP-hard (paper Prop. 2).
func OutOrderPeriod(w *plan.Weighted, opts Options) (Result, error) {
	res, err := searchOrders(w, opts, func() orderEval { return newOutOrderEval(w) })
	if err != nil {
		return Result{}, err
	}
	res.Value = res.List.Lambda()
	res.LowerBound = w.PeriodLowerBound(plan.OutOrder)
	res.Bottleneck = OutOrderBottleneck(res.List)
	return res, nil
}

// OutOrderBottleneck identifies the critical cycle of an OUTORDER schedule
// produced by this package: it re-analyzes the schedule's realized orders
// under both the in-order and the pipelined event-graph templates and
// reports the cycle of whichever matches the schedule's period. Returns nil
// when neither does.
func OutOrderBottleneck(l *oplist.List) []string {
	if labels := InOrderBottleneck(l); labels != nil {
		return labels
	}
	w := l.Plan()
	g, _, _ := buildPipelinedGraph(w, extractOrders(l))
	res, err := g.MaximumCycleRatio()
	if err != nil || !res.Ratio.Equal(l.Lambda()) {
		return nil
	}
	return describeCycle(w, g, res.CriticalCycle)
}

// Period dispatches to the model-specific period orchestrator.
func Period(w *plan.Weighted, m plan.Model, opts Options) (Result, error) {
	switch m {
	case plan.Overlap:
		return OverlapPeriod(w)
	case plan.InOrder:
		return InOrderPeriod(w, opts)
	case plan.OutOrder:
		return OutOrderPeriod(w, opts)
	default:
		return Result{}, fmt.Errorf("orchestrate: unknown model %v", m)
	}
}
