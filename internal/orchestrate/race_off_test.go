//go:build !race

package orchestrate

const raceEnabled = false
