// Package orchestrate computes operation lists for a given execution graph:
// the "orchestration" half of the paper's problems (§4.1 and §5.1).
//
// Period orchestration:
//
//   - OVERLAP: the polynomial construction of Theorem 1 — every
//     communication is stretched to the period and data set 0 traverses the
//     graph greedily. Always optimal.
//   - INORDER: for fixed per-server receive/send orders the optimal period
//     is the maximum cycle ratio of a timed event graph (package
//     eventgraph); choosing the orders is the NP-hard part (Theorem 1 of
//     the paper), handled by exhaustive search below a budget and priority
//     heuristics plus local search above it.
//   - OUTORDER: a software-pipelined event-graph template (receive data set
//     n while computing n−1 and sending n−2, generation-shifted by the
//     node's depth) searched the same way, never worse than the INORDER
//     result.
//
// Latency orchestration (§5.1) is NP-hard for all models: one-port
// schedules are explored exactly over per-server orders (the longest path
// of the induced DAG is the latency), multi-port adds a bandwidth-sharing
// construction, and tree-shaped graphs use the O(n log n) Algorithm 1.
package orchestrate

import (
	"sort"

	"repro/internal/oplist"
	"repro/internal/plan"
	"repro/internal/rat"
)

// Options tunes the order searches. The zero value asks for defaults.
type Options struct {
	// MaxExhaustive caps the number of order combinations searched
	// exactly; above it the heuristic path is taken. The exhaustive path
	// enumerates order prefixes with lower-bound pruning (search.go)
	// rather than scoring the flat product, so the default affords 65536
	// combinations — 16x the pre-fast-path default of 4096. The solve
	// layer pins its inner searches back to 4096 (thousands of candidate
	// graphs multiply whatever this costs); the raised default serves
	// single-graph orchestrations.
	MaxExhaustive int
	// LocalSearchPasses bounds the hill-climbing passes of the heuristic
	// path. Defaults to 8.
	LocalSearchPasses int
	// RandomSamples is the number of random order assignments the
	// heuristic path additionally draws (the best one gets its own local
	// search); deterministic seeds escape local optima this way.
	// Defaults to 128; set negative to disable.
	RandomSamples int
	// Seed drives the random sampling. The default 0 is a valid seed.
	Seed int64
	// Workers bounds the goroutines of the exhaustive order search:
	// values > 1 shard the order space over the internal/par pool, while
	// 0 and 1 (the zero default) run serially. The default is serial —
	// unlike solve.Options.Workers — because order searches usually run
	// inside plan-level search shards that already own the pool (one
	// pool, never nested); the solve layer passes its worker budget down
	// only for single-graph evaluations, where the pool is otherwise
	// idle. Every value returns the bit-identical Result.
	Workers int
	// Stats, when non-nil, receives the pruned-search counters of the
	// exhaustive path. The Result is identical for every worker count,
	// but the counters are not: with Workers > 1 the shared pruning
	// threshold evolves with goroutine timing. Run with Workers 0/1 for
	// reproducible counts.
	Stats *Stats
}

func (o Options) withDefaults() Options {
	if o.MaxExhaustive == 0 {
		o.MaxExhaustive = 65536
	}
	if o.LocalSearchPasses == 0 {
		o.LocalSearchPasses = 8
	}
	if o.RandomSamples == 0 {
		o.RandomSamples = 128
	}
	return o
}

// Result is an orchestration outcome: a validated operation list, the
// objective value reached, the model-specific lower bound, and whether the
// search was exhaustive (Exact — the value is optimal within the searched
// schedule family).
type Result struct {
	List       *oplist.List
	Value      rat.Rat
	LowerBound rat.Rat
	Exact      bool
	// Bottleneck describes the operations on the binding (critical) cycle
	// of the schedule when the period is cycle-limited: the chain of
	// computations and communications whose durations sum to the period.
	// Empty when no cycle analysis applies (e.g. Theorem-1 OVERLAP
	// schedules, where the bound is a single server's port or CPU).
	Bottleneck []string
}

// Orders fixes, for every server, the order of its incoming and outgoing
// communications (slices of edge indices into the plan's edge list).
type Orders struct {
	In  [][]int
	Out [][]int
}

// DefaultOrders returns the natural (plan edge order) orders.
func DefaultOrders(w *plan.Weighted) Orders {
	o := Orders{In: make([][]int, w.N()), Out: make([][]int, w.N())}
	for v := 0; v < w.N(); v++ {
		o.In[v] = append([]int(nil), w.InEdges(v)...)
		o.Out[v] = append([]int(nil), w.OutEdges(v)...)
	}
	return o
}

// clone returns a deep copy of the orders.
func (o Orders) clone() Orders {
	c := Orders{In: make([][]int, len(o.In)), Out: make([][]int, len(o.Out))}
	for i := range o.In {
		c.In[i] = append([]int(nil), o.In[i]...)
	}
	for i := range o.Out {
		c.Out[i] = append([]int(nil), o.Out[i]...)
	}
	return c
}

// Operation node numbering inside event graphs: calcs first, then comms.
func calcOp(v int) int                         { return v }
func commOp(w *plan.Weighted, edgeIdx int) int { return w.N() + edgeIdx }

// opCount returns the number of operation nodes for plan w.
func opCount(w *plan.Weighted) int { return w.N() + len(w.Edges()) }

// opDur returns the duration of operation node op.
func opDur(w *plan.Weighted, op int) rat.Rat {
	if op < w.N() {
		return w.Comp(op)
	}
	return w.Vol(op - w.N())
}

// serverSequence returns server v's operations in per-data-set order:
// in-comms (given order), computation, out-comms (given order).
func serverSequence(w *plan.Weighted, orders Orders, v int) []int {
	seq := make([]int, 0, len(orders.In[v])+1+len(orders.Out[v]))
	for _, e := range orders.In[v] {
		seq = append(seq, commOp(w, e))
	}
	seq = append(seq, calcOp(v))
	for _, e := range orders.Out[v] {
		seq = append(seq, commOp(w, e))
	}
	return seq
}

// listFromTimes assembles an operation list from per-operation begin times.
func listFromTimes(w *plan.Weighted, lambda rat.Rat, begin []rat.Rat) *oplist.List {
	l := oplist.New(w, lambda)
	for v := 0; v < w.N(); v++ {
		l.SetCalc(v, begin[calcOp(v)])
	}
	for idx := range w.Edges() {
		l.SetComm(idx, begin[commOp(w, idx)])
	}
	return l
}

// downstreamWork returns, per node, the heaviest chain of computation and
// communication volume from the node to an output: the priority used by the
// heuristic orders ("critical path first").
func downstreamWork(w *plan.Weighted) []rat.Rat {
	work := make([]rat.Rat, w.N())
	topo := w.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		best := rat.Zero
		for _, ei := range w.OutEdges(v) {
			e := w.Edge(ei)
			t := w.Vol(ei)
			if e.To != plan.Out {
				t = t.Add(work[e.To])
			}
			best = rat.Max(best, t)
		}
		work[v] = w.Comp(v).Add(best)
	}
	return work
}

// heuristicOrderSeeds returns a few deterministic order candidates:
// the natural order and critical-path-driven variants.
func heuristicOrderSeeds(w *plan.Weighted) []Orders {
	natural := DefaultOrders(w)
	work := downstreamWork(w)

	// edgePriority scores an edge by the work still ahead of it.
	edgePriority := func(ei int) rat.Rat {
		e := w.Edge(ei)
		t := w.Vol(ei)
		if e.To >= 0 {
			t = t.Add(work[e.To])
		}
		return t
	}
	critical := natural.clone()
	for v := 0; v < w.N(); v++ {
		sort.SliceStable(critical.Out[v], func(i, j int) bool {
			return edgePriority(critical.Out[v][i]).Greater(edgePriority(critical.Out[v][j]))
		})
		// Receive first from senders that were ready earliest: those with
		// the least upstream work, approximated by the sender's own work
		// being largest downstream (they started sooner on the path).
		sort.SliceStable(critical.In[v], func(i, j int) bool {
			return edgePriority(critical.In[v][i]).Greater(edgePriority(critical.In[v][j]))
		})
	}
	reversed := critical.clone()
	for v := 0; v < w.N(); v++ {
		reverseInts(reversed.In[v])
		reverseInts(reversed.Out[v])
	}
	return []Orders{greedyOrders(w), natural, critical, reversed}
}

// greedyOrders runs an earliest-start-first list scheduler for one data set
// under one-port rules (ties broken toward heavier downstream work) and
// returns the per-server orders it induces. On wide communication phases —
// bipartite shapes like the paper's B.2 example — this seed is far better
// than any static priority order.
func greedyOrders(w *plan.Weighted) Orders {
	work := downstreamWork(w)
	n := w.N()
	serverFree := make([]rat.Rat, n)
	calcEnd := make([]rat.Rat, n)
	calcSched := make([]bool, n)
	insLeft := make([]int, n)
	insMaxEnd := make([]rat.Rat, n)
	commSched := make([]bool, len(w.Edges()))
	commBegin := make([]rat.Rat, len(w.Edges()))
	calcBegin := make([]rat.Rat, n)
	for v := 0; v < n; v++ {
		insLeft[v] = len(w.InEdges(v))
	}

	priority := func(isCalc bool, id int) rat.Rat {
		if isCalc {
			return work[id]
		}
		e := w.Edge(id)
		p := w.Vol(id)
		if e.To >= 0 {
			p = p.Add(work[e.To])
		}
		return p
	}

	total := n + len(w.Edges())
	for scheduled := 0; scheduled < total; scheduled++ {
		bestSet := false
		var bestStart, bestPrio rat.Rat
		bestIsCalc := false
		bestID := -1
		consider := func(isCalc bool, id int, start rat.Rat) {
			p := priority(isCalc, id)
			if !bestSet || start.Less(bestStart) ||
				(start.Equal(bestStart) && p.Greater(bestPrio)) {
				bestSet, bestStart, bestPrio, bestIsCalc, bestID = true, start, p, isCalc, id
			}
		}
		for v := 0; v < n; v++ {
			if !calcSched[v] && insLeft[v] == 0 {
				consider(true, v, rat.Max(insMaxEnd[v], serverFree[v]))
			}
		}
		for ei, e := range w.Edges() {
			if commSched[ei] {
				continue
			}
			start := rat.Zero
			if e.From >= 0 {
				if !calcSched[e.From] {
					continue
				}
				start = rat.Max(calcEnd[e.From], serverFree[e.From])
			}
			if e.To >= 0 {
				start = rat.Max(start, serverFree[e.To])
			}
			consider(false, ei, start)
		}
		if !bestSet {
			// Cannot happen on a valid plan; fall back to natural orders.
			return DefaultOrders(w)
		}
		if bestIsCalc {
			calcSched[bestID] = true
			calcBegin[bestID] = bestStart
			calcEnd[bestID] = bestStart.Add(w.Comp(bestID))
			serverFree[bestID] = calcEnd[bestID]
		} else {
			commSched[bestID] = true
			commBegin[bestID] = bestStart
			end := bestStart.Add(w.Vol(bestID))
			e := w.Edge(bestID)
			if e.From >= 0 {
				serverFree[e.From] = rat.Max(serverFree[e.From], end)
			}
			if e.To >= 0 {
				serverFree[e.To] = rat.Max(serverFree[e.To], end)
				insLeft[e.To]--
				insMaxEnd[e.To] = rat.Max(insMaxEnd[e.To], end)
			}
		}
	}
	orders := DefaultOrders(w)
	byBegin := func(s []int) {
		sort.SliceStable(s, func(i, j int) bool {
			return commBegin[s[i]].Less(commBegin[s[j]])
		})
	}
	for v := 0; v < n; v++ {
		byBegin(orders.In[v])
		byBegin(orders.Out[v])
	}
	return orders
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// orderCombinations counts Π (ins! · outs!) over servers, capping at limit.
func orderCombinations(w *plan.Weighted, limit int) int {
	total := 1
	for v := 0; v < w.N(); v++ {
		total *= factorialCapped(len(w.InEdges(v)), limit)
		if total > limit {
			return limit + 1
		}
		total *= factorialCapped(len(w.OutEdges(v)), limit)
		if total > limit {
			return limit + 1
		}
	}
	return total
}

func factorialCapped(n, limit int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
		if f > limit {
			return limit + 1
		}
	}
	return f
}

// forEachOrders enumerates every order combination, invoking fn with a
// reused Orders value (fn must not retain it). fn returns false to stop.
func forEachOrders(w *plan.Weighted, fn func(Orders) bool) {
	orders := DefaultOrders(w)
	// Collect the permutable slots: one per server side with ≥ 2 comms.
	type slot struct{ s []int }
	var slots []slot
	for v := 0; v < w.N(); v++ {
		if len(orders.In[v]) > 1 {
			slots = append(slots, slot{orders.In[v]})
		}
		if len(orders.Out[v]) > 1 {
			slots = append(slots, slot{orders.Out[v]})
		}
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(slots) {
			return fn(orders)
		}
		cont := true
		permute(slots[i].s, 0, func() bool {
			cont = rec(i + 1)
			return cont
		})
		return cont
	}
	rec(0)
}

// permute enumerates permutations of s[k:] in place (Heap-style recursion),
// calling fn for each; fn returns false to stop early. The slice is
// restored to its entry order before returning.
func permute(s []int, k int, fn func() bool) bool {
	if k == len(s) {
		return fn()
	}
	for i := k; i < len(s); i++ {
		s[k], s[i] = s[i], s[k]
		if !permute(s, k+1, fn) {
			s[k], s[i] = s[i], s[k]
			return false
		}
		s[k], s[i] = s[i], s[k]
	}
	return true
}

// OrderCombinations counts the order assignments of w — the product of
// ins!·outs! over servers — capping at limit (limit+1 is returned beyond
// it). The search compares it against Options.MaxExhaustive to pick the
// exact or the heuristic path; the experiment harness reports it as the
// flat product the pruned search avoids scoring.
func OrderCombinations(w *plan.Weighted, limit int) int {
	return orderCombinations(w, limit)
}
