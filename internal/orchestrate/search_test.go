package orchestrate

// The order-search fast-path suite: equivalence with the pre-fast-path
// flat enumeration, bit-identical results across worker counts, bound
// admissibility on partial assignments, and the search counters.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/oplist"
	"repro/internal/paperex"
	"repro/internal/plan"
	"repro/internal/rat"
)

// searchCase is one (plan, entry point) pair of the equivalence suite.
type searchCase struct {
	name string
	run  func(w *plan.Weighted, opts Options) (Result, error)
	with func(w *plan.Weighted, o Orders) (*oplist.List, error)
	val  func(l *oplist.List) rat.Rat
}

func searchCases() []searchCase {
	return []searchCase{
		{
			name: "inorder-period",
			run:  InOrderPeriod,
			with: InOrderPeriodWithOrders,
			val:  func(l *oplist.List) rat.Rat { return l.Lambda() },
		},
		{
			name: "outorder-period",
			run:  OutOrderPeriod,
			with: OutOrderPeriodWithOrders,
			val:  func(l *oplist.List) rat.Rat { return l.Lambda() },
		},
		{
			name: "oneport-latency",
			run:  OnePortLatency,
			with: OnePortLatencyWithOrders,
			val:  func(l *oplist.List) rat.Rat { return l.Latency() },
		},
	}
}

// naiveBest is the pre-fast-path reference: score every order assignment
// through the full WithOrders constructor and keep the first strictly-best
// feasible one.
func naiveBest(w *plan.Weighted, c searchCase) (*oplist.List, bool) {
	var best *oplist.List
	var bestVal rat.Rat
	forEachOrders(w, func(o Orders) bool {
		l, err := c.with(w, o)
		if err != nil {
			return true
		}
		if v := c.val(l); best == nil || v.Less(bestVal) {
			best, bestVal = l, v
		}
		return true
	})
	return best, best != nil
}

// listsIdentical compares two schedules operation by operation.
func listsIdentical(a, b *oplist.List) bool {
	w := a.Plan()
	if !a.Lambda().Equal(b.Lambda()) {
		return false
	}
	for v := 0; v < w.N(); v++ {
		if !a.CalcBegin(v).Equal(b.CalcBegin(v)) {
			return false
		}
	}
	for ei := range w.Edges() {
		if !a.CommBegin(ei).Equal(b.CommBegin(ei)) || !a.CommEnd(ei).Equal(b.CommEnd(ei)) {
			return false
		}
	}
	return true
}

// searchTestPlans yields a mix of paper and random plans whose order
// spaces are exhaustively searchable yet non-trivial; maxCombos bounds
// the ground-truth enumeration the caller can afford.
func searchTestPlans(t *testing.T, maxCombos int) []*plan.Weighted {
	t.Helper()
	plans := []*plan.Weighted{paperex.Fig1Graph().Weighted()}
	if OrderCombinations(paperex.B3Weighted(), maxCombos) <= maxCombos {
		plans = append(plans, paperex.B3Weighted())
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := gen.NewRand(seed)
		var w *plan.Weighted
		if seed%2 == 0 {
			app := gen.App(rng, 3+rng.Intn(4), gen.Mixed)
			w = gen.DAGPlan(rng, app, 0.5).Weighted()
		} else {
			w = gen.Weighted(rng, 3+rng.Intn(4), 0.5)
		}
		if c := OrderCombinations(w, maxCombos); c < 2 || c > maxCombos {
			continue
		}
		plans = append(plans, w)
	}
	return plans
}

// TestPrunedSearchMatchesFlatEnumeration pins the tentpole equivalence:
// the pruned + sharded exhaustive search returns the bit-identical Result
// (value, schedule, Exact) the pre-fast-path flat product scan kept, on
// every entry point.
func TestPrunedSearchMatchesFlatEnumeration(t *testing.T) {
	for pi, w := range searchTestPlans(t, 720) {
		for _, c := range searchCases() {
			want, ok := naiveBest(w, c)
			res, err := c.run(w, Options{})
			if !ok {
				if err == nil {
					t.Fatalf("plan %d %s: naive found nothing but search returned %s", pi, c.name, res.Value)
				}
				continue
			}
			if err != nil {
				t.Fatalf("plan %d %s: %v", pi, c.name, err)
			}
			if !res.Exact {
				t.Fatalf("plan %d %s: search must be exhaustive (%d combinations)", pi, c.name, OrderCombinations(w, 4096))
			}
			if !res.Value.Equal(c.val(want)) {
				t.Fatalf("plan %d %s: pruned value %s != flat enumeration %s", pi, c.name, res.Value, c.val(want))
			}
			if !listsIdentical(res.List, want) {
				t.Fatalf("plan %d %s: pruned schedule differs from the flat enumeration's winner", pi, c.name)
			}
		}
	}
}

// TestSearchWorkerDeterminism pins the sharding invariant: every worker
// count returns the bit-identical Result — value, Exact, full operation
// list and Bottleneck — including the serial single-shard special case.
func TestSearchWorkerDeterminism(t *testing.T) {
	for pi, w := range searchTestPlans(t, 2000) {
		for _, c := range searchCases() {
			base, baseErr := c.run(w, Options{Workers: 1})
			for _, workers := range []int{0, 2, 3, 8} {
				res, err := c.run(w, Options{Workers: workers})
				if (err == nil) != (baseErr == nil) {
					t.Fatalf("plan %d %s workers %d: error mismatch (%v vs %v)", pi, c.name, workers, err, baseErr)
				}
				if err != nil {
					continue
				}
				if !res.Value.Equal(base.Value) || res.Exact != base.Exact {
					t.Fatalf("plan %d %s workers %d: (%s, %v) != serial (%s, %v)",
						pi, c.name, workers, res.Value, res.Exact, base.Value, base.Exact)
				}
				if !listsIdentical(res.List, base.List) {
					t.Fatalf("plan %d %s workers %d: schedule differs from serial", pi, c.name, workers)
				}
				if len(res.Bottleneck) != len(base.Bottleneck) {
					t.Fatalf("plan %d %s workers %d: bottleneck %v != %v", pi, c.name, workers, res.Bottleneck, base.Bottleneck)
				}
				for i := range res.Bottleneck {
					if res.Bottleneck[i] != base.Bottleneck[i] {
						t.Fatalf("plan %d %s workers %d: bottleneck %v != %v", pi, c.name, workers, res.Bottleneck, base.Bottleneck)
					}
				}
			}
		}
	}
}

// TestPrefixBoundAdmissible checks the pruning bounds against ground
// truth: whenever exceeds(partial, limit) claims every completion lies
// strictly above limit, no completion's true value may be ≤ limit. The
// partial assignments replayed here are exactly the ones the search
// visits: the first k slots fixed (in shard-prefix order), the rest open.
func TestPrefixBoundAdmissible(t *testing.T) {
	evals := []struct {
		name string
		mk   func(w *plan.Weighted) orderEval
	}{
		{"inorder", func(w *plan.Weighted) orderEval { return newInOrderEval(w) }},
		{"outorder", func(w *plan.Weighted) orderEval { return newOutOrderEval(w) }},
		{"oneport", func(w *plan.Weighted) orderEval { return newOnePortEval(w) }},
	}
	for pi, w := range searchTestPlans(t, 120) {
		for _, ev := range evals {
			bound := ev.mk(w)
			scorer := ev.mk(w)
			orders := DefaultOrders(w)
			slots := collectSlots(orders)
			decIn := make([]bool, w.N())
			decOut := make([]bool, w.N())
			for v := range decIn {
				decIn[v], decOut[v] = true, true
			}
			for _, s := range slots {
				if s.out {
					decOut[s.server] = false
				} else {
					decIn[s.server] = false
				}
			}
			// Fix slots one by one (each in a deterministic non-natural
			// permutation) and verify the bound at every prefix depth.
			for k := 0; k <= len(slots); k++ {
				if k > 0 {
					s := slots[k-1]
					// rotate the side by one: a fixed, non-trivial choice
					side := s.side
					first := side[0]
					copy(side, side[1:])
					side[len(side)-1] = first
					if s.out {
						decOut[s.server] = true
					} else {
						decIn[s.server] = true
					}
				}
				// Ground truth: the best completion value over the open slots.
				var bestVal rat.Rat
				found := false
				var complete func(si int)
				complete = func(si int) {
					if si == len(slots) {
						if v, err := scorer.value(orders); err == nil {
							if !found || v.Less(bestVal) {
								bestVal, found = v, true
							}
						}
						return
					}
					permute(slots[si].side, 0, func() bool {
						complete(si + 1)
						return true
					})
				}
				complete(k)
				if !found {
					// Every completion infeasible: exceeds may claim anything.
					continue
				}
				if bound.exceeds(orders, decIn, decOut, bestVal) {
					t.Fatalf("plan %d %s prefix %d: bound claims every completion > %s, but one achieves it",
						pi, ev.name, k, bestVal)
				}
			}
		}
	}
}

// TestSearchStatsAndPruning exercises the counters on an instance the
// probe established prunes hard (seed 2: 1728 combinations): the pruned
// search must both cut subtrees and score strictly fewer assignments than
// the flat product, while still certifying the flat enumeration's value.
func TestSearchStatsAndPruning(t *testing.T) {
	rng := gen.NewRand(2)
	app := gen.App(rng, 3+rng.Intn(4), gen.Mixed)
	w := gen.DAGPlan(rng, app, 0.6).Weighted()
	combos := OrderCombinations(w, 1<<30)
	if combos < 100 {
		t.Fatalf("probe instance degenerated: %d combinations", combos)
	}
	var st Stats
	res, err := InOrderPeriod(w, Options{Stats: &st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("order space (%d) must be searched exhaustively", combos)
	}
	if st.Pruned == 0 {
		t.Fatal("expected pruned subtrees on this instance")
	}
	if st.Evaluated >= int64(combos) {
		t.Fatalf("evaluated %d, want strictly fewer than the %d-combination product", st.Evaluated, combos)
	}
	naive, ok := naiveBest(w, searchCases()[0])
	if !ok || !res.Value.Equal(naive.Lambda()) {
		t.Fatalf("pruned value %s disagrees with the flat enumeration", res.Value)
	}
	t.Logf("%d combinations, %d prefixes bounded, %d pruned, %d evaluated",
		combos, st.Prefixes, st.Pruned, st.Evaluated)

	// An instance whose first candidate already meets the per-server floor
	// (probe seed 27 under OUTORDER) must stop after one evaluation.
	rng = gen.NewRand(27)
	app = gen.App(rng, 3+rng.Intn(4), gen.Mixed)
	fw := gen.DAGPlan(rng, app, 0.6).Weighted()
	var fst Stats
	fres, err := OutOrderPeriod(fw, Options{Stats: &fst, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fres.Value.Equal(fw.PeriodLowerBound(plan.OutOrder)) {
		t.Fatalf("probe instance degenerated: value %s != floor %s", fres.Value, fw.PeriodLowerBound(plan.OutOrder))
	}
	if fst.Evaluated != 1 {
		t.Fatalf("floor early exit expected after 1 evaluation, got %d", fst.Evaluated)
	}
}

// TestHeuristicPathStatsReset pins that the heuristic path zeroes the
// caller's Stats instead of leaving stale exhaustive counters around.
func TestHeuristicPathStatsReset(t *testing.T) {
	w := paperex.B2Graph().Weighted()
	st := Stats{Evaluated: 99}
	res, err := InOrderPeriod(w, Options{MaxExhaustive: 1, LocalSearchPasses: 1, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("budget 1 must take the heuristic path")
	}
	if st != (Stats{}) {
		t.Fatalf("heuristic path left stale stats %+v", st)
	}
}
