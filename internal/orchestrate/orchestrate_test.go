package orchestrate

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/paperex"
	"repro/internal/plan"
	"repro/internal/rat"
)

// --- E1: the §2.3 example (Figure 1) ---

func TestFig1OverlapPeriodIsFour(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	res, err := OverlapPeriod(w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(rat.I(4)) {
		t.Fatalf("OVERLAP period = %s, want 4", res.Value)
	}
	if !res.Exact {
		t.Fatal("Theorem 1 result must be exact")
	}
	if err := res.List.Validate(plan.Overlap); err != nil {
		t.Fatal(err)
	}
}

func TestFig1InOrderPeriodIsTwentyThreeThirds(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	res, err := InOrderPeriod(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("Fig1 order space is tiny; search must be exhaustive")
	}
	if !res.Value.Equal(rat.New(23, 3)) {
		t.Fatalf("INORDER period = %s, want 23/3", res.Value)
	}
	if err := res.List.Validate(plan.InOrder); err != nil {
		t.Fatal(err)
	}
	if !res.LowerBound.Equal(rat.I(7)) {
		t.Fatalf("lower bound = %s, want 7", res.LowerBound)
	}
}

func TestFig1OutOrderPeriodIsSeven(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	res, err := OutOrderPeriod(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(rat.I(7)) {
		t.Fatalf("OUTORDER period = %s, want 7", res.Value)
	}
	if err := res.List.Validate(plan.OutOrder); err != nil {
		t.Fatal(err)
	}
}

func TestFig1LatencyIsTwentyOne(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	onePort, err := OnePortLatency(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !onePort.Value.Equal(rat.I(21)) {
		t.Fatalf("one-port latency = %s, want 21", onePort.Value)
	}
	if !onePort.Exact {
		t.Fatal("search must be exhaustive on Fig1")
	}
	// Multi-port cannot do better on this instance (paper §2.3).
	overlap, err := OverlapLatency(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !overlap.Value.Equal(rat.I(21)) {
		t.Fatalf("overlap latency = %s, want 21", overlap.Value)
	}
}

// --- E3: counter-example B.2 (Figure 5), one-port vs multi-port latency ---

func TestB2MultiportLatencyTwenty(t *testing.T) {
	w := paperex.B2Graph().Weighted()
	shared, err := OverlapLatencyShared(w)
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Latency().Equal(rat.I(20)) {
		t.Fatalf("multi-port latency = %s, want 20", shared.Latency())
	}
	res, err := OverlapLatency(w, Options{MaxExhaustive: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(rat.I(20)) {
		t.Fatalf("OverlapLatency = %s, want 20", res.Value)
	}
}

func TestB2OnePortStrictlyWorse(t *testing.T) {
	w := paperex.B2Graph().Weighted()
	res, err := OnePortLatency(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper proves no one-port schedule reaches 20; our best valid
	// schedule demonstrates the gap (21 is achievable).
	if !res.Value.Greater(rat.I(20)) {
		t.Fatalf("one-port latency %s contradicts the paper's strict bound > 20", res.Value)
	}
	if res.Value.Greater(rat.I(22)) {
		t.Fatalf("one-port latency %s unexpectedly poor (heuristic regression)", res.Value)
	}
}

// --- E4: counter-example B.3 (Figure 6), one-port vs multi-port period ---

func TestB3MultiportPeriodTwelve(t *testing.T) {
	w := paperex.B3Weighted()
	res, err := OverlapPeriod(w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(rat.I(12)) {
		t.Fatalf("multi-port period = %s, want 12", res.Value)
	}
}

func TestB3OnePortStrictlyWorse(t *testing.T) {
	w := paperex.B3Weighted()
	res, err := OutOrderPeriod(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Greater(rat.I(12)) {
		t.Fatalf("one-port period %s contradicts the paper's strict bound > 12", res.Value)
	}
	if res.Value.Greater(rat.I(16)) {
		t.Fatalf("one-port period %s unexpectedly poor", res.Value)
	}
	if err := res.List.Validate(plan.OutOrder); err != nil {
		t.Fatal(err)
	}
}

// --- E5 and general properties on random instances ---

func TestRandomPlansModelOrdering(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := gen.NewRand(seed)
		var w *plan.Weighted
		if seed%2 == 0 {
			app := gen.App(rng, 3+rng.Intn(4), gen.Mixed)
			w = gen.DAGPlan(rng, app, 0.4).Weighted()
		} else {
			w = gen.Weighted(rng, 3+rng.Intn(4), 0.4)
		}
		ovl, err := OverlapPeriod(w)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ino, err := InOrderPeriod(w, Options{MaxExhaustive: 720})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := OutOrderPeriod(w, Options{MaxExhaustive: 720})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Model power ordering: OVERLAP ≤ OUTORDER ≤ INORDER.
		if ovl.Value.Greater(out.Value) {
			t.Fatalf("seed %d: overlap %s > outorder %s", seed, ovl.Value, out.Value)
		}
		if out.Value.Greater(ino.Value) {
			t.Fatalf("seed %d: outorder %s > inorder %s", seed, out.Value, ino.Value)
		}
		// Bounds.
		if ovl.Value.Less(w.PeriodLowerBound(plan.Overlap)) ||
			ino.Value.Less(w.PeriodLowerBound(plan.InOrder)) {
			t.Fatalf("seed %d: value below lower bound", seed)
		}
		// The Theorem-1 schedule achieves the bound exactly.
		if !ovl.Value.Equal(w.PeriodLowerBound(plan.Overlap)) {
			t.Fatalf("seed %d: Theorem 1 missed the bound", seed)
		}
	}
}

func TestRandomPlansLatencyProperties(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := gen.NewRand(seed)
		w := gen.Weighted(rng, 3+rng.Intn(4), 0.4)
		op, err := OnePortLatency(w, Options{MaxExhaustive: 720})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if op.Value.Less(w.LatencyPathBound()) {
			t.Fatalf("seed %d: latency %s below path bound %s", seed, op.Value, w.LatencyPathBound())
		}
		ovl, err := OverlapLatency(w, Options{MaxExhaustive: 720})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ovl.Value.Greater(op.Value) {
			t.Fatalf("seed %d: overlap latency %s > one-port %s", seed, ovl.Value, op.Value)
		}
		// Latency of any schedule is at least the period bound.
		if op.Value.Less(w.PeriodLowerBound(plan.Overlap)) {
			t.Fatalf("seed %d: latency below overlap period bound", seed)
		}
	}
}

func TestTreeLatencyMatchesExhaustiveSearch(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := gen.NewRand(seed)
		app := gen.App(rng, 3+rng.Intn(4), gen.Filtering)
		w := gen.ForestPlan(rng, app).Weighted()
		tree, err := TreeLatency(w)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		exhaustive, err := OnePortLatency(w, Options{MaxExhaustive: 50000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !exhaustive.Exact {
			continue // skip the rare too-wide instance
		}
		if !tree.Value.Equal(exhaustive.Value) {
			t.Fatalf("seed %d: tree latency %s != exhaustive %s", seed, tree.Value, exhaustive.Value)
		}
	}
}

func TestTreeLatencyFeedsLargestSubtreeFirst(t *testing.T) {
	// Root with two children: heavy (rest 10) and light (rest 1), unit
	// volumes. Feeding heavy first: max(1+10, 2+1) = 11; light first:
	// max(1+1, 2+10) = 12.
	one := rat.One
	w := plan.MustNewWeighted(nil,
		[]rat.Rat{one, rat.I(9), one},
		[]plan.Edge{
			{From: plan.In, To: 0},
			{From: 0, To: 1}, {From: 0, To: 2},
			{From: 1, To: plan.Out}, {From: 2, To: plan.Out},
		},
		[]rat.Rat{one, one, one, one, one})
	res, err := TreeLatency(w)
	if err != nil {
		t.Fatal(err)
	}
	// in[0,1) calc0[1,2) comm->C2[2,3) calc2(9)[3,12) out[12,13)
	// comm->C3[3,4) calc3[4,5) out[5,6): latency 13.
	if !res.Value.Equal(rat.I(13)) {
		t.Fatalf("latency = %s, want 13", res.Value)
	}
}

func TestTreeLatencyRejectsNonForest(t *testing.T) {
	w := paperex.Fig1Graph().Weighted() // C5 has two predecessors
	if _, err := TreeLatency(w); err == nil {
		t.Fatal("expected error on non-forest plan")
	}
}

func TestLatencyDispatcherUsesTreeOnForests(t *testing.T) {
	rng := gen.NewRand(9)
	app := gen.App(rng, 6, gen.Filtering)
	w := gen.ForestPlan(rng, app).Weighted()
	for _, m := range plan.Models {
		res, err := Latency(w, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("forest latency under %s must be exact", m)
		}
	}
}

func TestPeriodDispatcher(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	for _, m := range plan.Models {
		res, err := Period(w, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.List.Validate(m); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	if _, err := Period(w, plan.Model(9), Options{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Latency(w, plan.Model(9), Options{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestInOrderPeriodChainMeetsBound(t *testing.T) {
	// On chains the one-port bound max Cexec is always reached (the event
	// graph has no cross-server critical cycle).
	for seed := int64(0); seed < 15; seed++ {
		rng := gen.NewRand(seed)
		app := gen.App(rng, 2+rng.Intn(5), gen.Mixed)
		w := gen.ChainPlan(rng, app).Weighted()
		res, err := InOrderPeriod(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Value.Equal(w.PeriodLowerBound(plan.InOrder)) {
			t.Fatalf("seed %d: chain period %s != bound %s", seed, res.Value, w.PeriodLowerBound(plan.InOrder))
		}
	}
}

func TestHeuristicPathOnWidePlan(t *testing.T) {
	// Force the heuristic (non-exhaustive) path with a tiny budget and
	// check it still returns valid schedules.
	w := paperex.B2Graph().Weighted()
	res, err := InOrderPeriod(w, Options{MaxExhaustive: 1, LocalSearchPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("must not be exact with budget 1")
	}
	if err := res.List.Validate(plan.InOrder); err != nil {
		t.Fatal(err)
	}
	if res.Value.Less(w.PeriodLowerBound(plan.InOrder)) {
		t.Fatal("value below lower bound")
	}
}

func TestOrderCombinationsCounting(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	// C1 has 2 outs (2), C5 has 2 ins (2): total 4 combinations.
	if got := orderCombinations(w, 1000); got != 4 {
		t.Fatalf("combinations = %d, want 4", got)
	}
	if got := orderCombinations(w, 3); got != 4 {
		t.Fatalf("capped combinations = %d, want 4 (just above cap)", got)
	}
	count := 0
	forEachOrders(w, func(Orders) bool { count++; return true })
	if count != 4 {
		t.Fatalf("forEachOrders visited %d, want 4", count)
	}
}

func TestOverlapPeriodB1Instances(t *testing.T) {
	// E2 ingredient: the two B.1 plans under OVERLAP.
	chain := paperex.B1ChainFanGraph().Weighted()
	res, err := OverlapPeriod(chain)
	if err != nil {
		t.Fatal(err)
	}
	want := rat.I(200).Mul(rat.New(9999, 10000).PowInt(2))
	if !res.Value.Equal(want) {
		t.Fatalf("chain-fan period = %s, want %s", res.Value, want)
	}
	opt := paperex.B1OptimalGraph().Weighted()
	res2, err := OverlapPeriod(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Value.Equal(rat.I(100)) {
		t.Fatalf("optimal plan period = %s, want 100", res2.Value)
	}
}

func TestBottleneckDiagnostics(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	ino, err := InOrderPeriod(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ino.Bottleneck) == 0 {
		t.Fatal("INORDER result must report its critical cycle")
	}
	// The 23/3 cycle traverses the full pipeline: it must mention C1's
	// input comm and C5's output comm among its operations.
	joined := strings.Join(ino.Bottleneck, " ")
	if !strings.Contains(joined, "comm(in->C1)") || !strings.Contains(joined, "comm(C5->out)") {
		t.Fatalf("unexpected critical cycle: %v", ino.Bottleneck)
	}
	// The cycle's duration sum equals λ times its wrap count; with three
	// wraps on the 23/3 cycle the sum is 23.
	out, err := OutOrderPeriod(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Bottleneck) == 0 {
		t.Fatal("OUTORDER result must report its critical cycle")
	}
	// A schedule with deliberate slack yields no bottleneck claim.
	slack := ino.List.Clone()
	slack.SetLambda(ino.List.Lambda().AddInt(1))
	if InOrderBottleneck(slack) != nil {
		t.Fatal("slackened schedule must not claim a tight cycle")
	}
}

func TestRandomSamplesDeterministicAndOptional(t *testing.T) {
	w := paperex.B2Graph().Weighted()
	// Same seed: identical outcome.
	a, err := OnePortLatency(w, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OnePortLatency(w, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Value.Equal(b.Value) {
		t.Fatalf("same seed, different results: %s vs %s", a.Value, b.Value)
	}
	// Disabled sampling still returns a valid schedule.
	c, err := OnePortLatency(w, Options{RandomSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.List.Validate(plan.InOrder); err != nil {
		t.Fatal(err)
	}
	// Sampling can only help (it is an extra candidate pool).
	if a.Value.Greater(c.Value) {
		t.Fatalf("sampling made the result worse: %s vs %s", a.Value, c.Value)
	}
}
