package orchestrate

// Solve-level orchestration memoization.
//
// Plan-level searches reach the same weighted candidate graph many times —
// hill-climb restarts revisit forests, branch-and-bound re-evaluates the
// graphs its incumbent seeding already orchestrated, different shards meet
// at symmetric candidates. Orchestration is deterministic for a fixed
// weighted plan and options (every worker count returns the bit-identical
// Result), so a fingerprint-keyed memo can return the first computation's
// Result for all of them without touching the determinism invariant: a hit
// is indistinguishable from recomputing.
//
// The key serializes the problem exactly — no hashing, so collisions are
// impossible: objective kind, model, the Options fields that can change
// the Result (Workers and Stats are deliberately excluded), and the full
// weighted plan including names (bottleneck labels mention them).

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
)

// Memo caches orchestration Results across the candidate evaluations of
// one plan-level solve. It is safe for concurrent use; entries are
// immutable once stored (callers must not mutate a memoized Result's
// operation list — schedules are read-only after construction throughout
// this repository). Errors are cached too: an infeasible weighted plan is
// infeasible on every shard.
type Memo struct {
	mu      sync.Mutex
	entries map[string]memoEntry
	max     int
	hits    atomic.Int64
	misses  atomic.Int64
}

type memoEntry struct {
	res Result
	err error
}

// defaultMemoEntries bounds a zero-configured memo. A solve call touches
// at most its evaluation budget's worth of distinct graphs, so this is
// generous; beyond it the memo stops inserting (lookups stay correct,
// extra evaluations just recompute).
const defaultMemoEntries = 4096

// NewMemo returns a memo holding at most max entries (max <= 0: a default
// of 4096).
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = defaultMemoEntries
	}
	return &Memo{entries: make(map[string]memoEntry), max: max}
}

// lookup returns the cached outcome for key.
func (m *Memo) lookup(key string) (Result, error, bool) {
	m.mu.Lock()
	e, ok := m.entries[key]
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return e.res, e.err, ok
}

// store records an outcome, first writer wins; a full memo drops the
// insert (never an entry).
func (m *Memo) store(key string, res Result, err error) {
	m.mu.Lock()
	if _, ok := m.entries[key]; !ok && len(m.entries) < m.max {
		m.entries[key] = memoEntry{res: res, err: err}
	}
	m.mu.Unlock()
}

// Hits returns the number of lookups served from the memo.
func (m *Memo) Hits() int64 { return m.hits.Load() }

// Misses returns the number of lookups that fell through to a fresh
// orchestration.
func (m *Memo) Misses() int64 { return m.misses.Load() }

// Len returns the number of cached outcomes.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// memoKey serializes one orchestration problem exactly. kind distinguishes
// the period and latency searches; opts contributes only the fields that
// can change the Result. Built with strconv appends (no fmt): the key is
// computed per candidate evaluation of a memoized plan search, so its
// cost is part of the orchestration hot path.
func memoKey(kind byte, m plan.Model, opts Options, w *plan.Weighted) string {
	opts = opts.withDefaults()
	b := make([]byte, 0, 64+16*w.N()+24*len(w.Edges()))
	b = append(b, kind, '|')
	b = strconv.AppendInt(b, int64(m), 10)
	for _, f := range [...]int64{int64(opts.MaxExhaustive), int64(opts.LocalSearchPasses), int64(opts.RandomSamples), opts.Seed} {
		b = append(b, '|')
		b = strconv.AppendInt(b, f, 10)
	}
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(w.N()), 10)
	for v := 0; v < w.N(); v++ {
		name := w.Name(v)
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(len(name)), 10)
		b = append(b, ':')
		b = append(b, name...)
		b = append(b, '=')
		b = w.Comp(v).Append(b)
	}
	for ei, e := range w.Edges() {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(e.From), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(e.To), 10)
		b = append(b, '=')
		b = w.Vol(ei).Append(b)
	}
	return string(b)
}

// PeriodMemo is Period through a memo: a nil memo is a direct call, and a
// hit returns the Result of the first evaluation of an identical weighted
// plan under identical options — bit-identical to recomputing, since
// orchestration is deterministic.
func PeriodMemo(memo *Memo, w *plan.Weighted, m plan.Model, opts Options) (Result, error) {
	if memo == nil {
		return Period(w, m, opts)
	}
	key := memoKey('p', m, opts, w)
	if res, err, ok := memo.lookup(key); ok {
		return res, err
	}
	res, err := Period(w, m, opts)
	memo.store(key, res, err)
	return res, err
}

// LatencyMemo is Latency through a memo; see PeriodMemo.
func LatencyMemo(memo *Memo, w *plan.Weighted, m plan.Model, opts Options) (Result, error) {
	if memo == nil {
		return Latency(w, m, opts)
	}
	key := memoKey('l', m, opts, w)
	if res, err, ok := memo.lookup(key); ok {
		return res, err
	}
	res, err := Latency(w, m, opts)
	memo.store(key, res, err)
	return res, err
}

// String renders the memo counters for stats reporting.
func (m *Memo) String() string {
	return fmt.Sprintf("memo{hits: %d, misses: %d, entries: %d}", m.Hits(), m.Misses(), m.Len())
}
