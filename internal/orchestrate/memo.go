package orchestrate

// Solve-level and service-wide orchestration memoization.
//
// Plan-level searches reach the same weighted candidate graph many times —
// hill-climb restarts revisit forests, branch-and-bound re-evaluates the
// graphs its incumbent seeding already orchestrated, different shards meet
// at symmetric candidates — and a long-running service sees the same
// subgraphs across requests that share structure. Orchestration is
// deterministic for a fixed weighted plan and options (every worker count
// returns the bit-identical Result), so a fingerprint-keyed memo can return
// the first computation's Result for all of them without touching the
// determinism invariant: a hit is indistinguishable from recomputing.
//
// The key serializes the problem exactly — no hashing, so collisions are
// impossible: objective kind, model, the Options fields that can change
// the Result (Workers and Stats are deliberately excluded), and the full
// weighted plan including names (bottleneck labels mention them).
//
// The memo is a bounded LRU (least-recently-used completed entry evicted
// first), not an insert-until-full map: a per-solve memo never notices the
// difference, but a service-wide memo lives for days and must keep the
// subgraphs current requests actually share rather than whatever the first
// 4096 solves happened to touch.

import (
	"container/list"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/plan"
)

// Memo caches orchestration Results across candidate evaluations — of one
// plan-level solve, or of every solve in a service when shared wider. It
// is safe for concurrent use; entries are immutable once stored (callers
// must not mutate a memoized Result's operation list — schedules are
// read-only after construction throughout this repository). Errors are
// cached too: an infeasible weighted plan is infeasible on every shard and
// in every request.
type Memo struct {
	mu        sync.Mutex
	entries   map[string]*memoEntry
	lru       *list.List // *memoEntry, most recently used at the front
	max       int
	hits      int64
	misses    int64
	evictions int64
}

type memoEntry struct {
	key  string
	res  Result
	err  error
	elem *list.Element
}

// defaultMemoEntries bounds a zero-configured memo. A solve call touches
// at most its evaluation budget's worth of distinct graphs, so this is
// generous; a service-wide memo under steady load converges to its hottest
// working set instead.
const defaultMemoEntries = 4096

// NewMemo returns a memo holding at most max entries (max <= 0: a default
// of 4096), evicting least-recently-used first.
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = defaultMemoEntries
	}
	return &Memo{entries: make(map[string]*memoEntry), lru: list.New(), max: max}
}

// lookup returns the cached outcome for key, refreshing its recency.
func (m *Memo) lookup(key string) (Result, error, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		m.misses++
		return Result{}, nil, false
	}
	m.hits++
	m.lru.MoveToFront(e.elem)
	return e.res, e.err, true
}

// store records an outcome, first writer wins (concurrent solvers of the
// same key computed the bit-identical Result, so which one lands is
// immaterial; keeping the first preserves its recency position). The
// least-recently-used entry is evicted when the memo is over capacity.
func (m *Memo) store(key string, res Result, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[key]; ok {
		return
	}
	e := &memoEntry{key: key, res: res, err: err}
	e.elem = m.lru.PushFront(e)
	m.entries[key] = e
	for m.lru.Len() > m.max {
		oldest := m.lru.Back()
		ev := oldest.Value.(*memoEntry)
		m.lru.Remove(oldest)
		delete(m.entries, ev.key)
		m.evictions++
	}
}

// Hits returns the number of lookups served from the memo.
func (m *Memo) Hits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits
}

// Misses returns the number of lookups that fell through to a fresh
// orchestration.
func (m *Memo) Misses() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.misses
}

// Evictions returns the number of entries dropped by the capacity bound.
func (m *Memo) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// Len returns the number of cached outcomes.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// memoKey serializes one orchestration problem exactly. kind distinguishes
// the period and latency searches; opts contributes only the fields that
// can change the Result. Built with strconv appends (no fmt): the key is
// computed per candidate evaluation of a memoized plan search, so its
// cost is part of the orchestration hot path.
func memoKey(kind byte, m plan.Model, opts Options, w *plan.Weighted) string {
	opts = opts.withDefaults()
	b := make([]byte, 0, 64+16*w.N()+24*len(w.Edges()))
	b = append(b, kind, '|')
	b = strconv.AppendInt(b, int64(m), 10)
	for _, f := range [...]int64{int64(opts.MaxExhaustive), int64(opts.LocalSearchPasses), int64(opts.RandomSamples), opts.Seed} {
		b = append(b, '|')
		b = strconv.AppendInt(b, f, 10)
	}
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(w.N()), 10)
	for v := 0; v < w.N(); v++ {
		name := w.Name(v)
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(len(name)), 10)
		b = append(b, ':')
		b = append(b, name...)
		b = append(b, '=')
		b = w.Comp(v).Append(b)
	}
	for ei, e := range w.Edges() {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(e.From), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(e.To), 10)
		b = append(b, '=')
		b = w.Vol(ei).Append(b)
	}
	return string(b)
}

// PeriodMemo is Period through a memo: a nil memo is a direct call, and a
// hit returns the Result of the first evaluation of an identical weighted
// plan under identical options — bit-identical to recomputing, since
// orchestration is deterministic.
func PeriodMemo(memo *Memo, w *plan.Weighted, m plan.Model, opts Options) (Result, error) {
	res, _, err := PeriodMemoHit(memo, w, m, opts)
	return res, err
}

// PeriodMemoHit is PeriodMemo reporting whether the Result came from the
// memo — observational only (a hit is bit-identical to recomputing); the
// introspection layer uses it to account memo effectiveness per request.
func PeriodMemoHit(memo *Memo, w *plan.Weighted, m plan.Model, opts Options) (Result, bool, error) {
	if memo == nil {
		res, err := Period(w, m, opts)
		return res, false, err
	}
	key := memoKey('p', m, opts, w)
	if res, err, ok := memo.lookup(key); ok {
		return res, true, err
	}
	res, err := Period(w, m, opts)
	memo.store(key, res, err)
	return res, false, err
}

// LatencyMemo is Latency through a memo; see PeriodMemo.
func LatencyMemo(memo *Memo, w *plan.Weighted, m plan.Model, opts Options) (Result, error) {
	res, _, err := LatencyMemoHit(memo, w, m, opts)
	return res, err
}

// LatencyMemoHit is LatencyMemo reporting memo hits; see PeriodMemoHit.
func LatencyMemoHit(memo *Memo, w *plan.Weighted, m plan.Model, opts Options) (Result, bool, error) {
	if memo == nil {
		res, err := Latency(w, m, opts)
		return res, false, err
	}
	key := memoKey('l', m, opts, w)
	if res, err, ok := memo.lookup(key); ok {
		return res, true, err
	}
	res, err := Latency(w, m, opts)
	memo.store(key, res, err)
	return res, false, err
}

// String renders the memo counters for stats reporting.
func (m *Memo) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("memo{hits: %d, misses: %d, entries: %d, evictions: %d}", m.hits, m.misses, m.lru.Len(), m.evictions)
}
