package orchestrate

import (
	"fmt"
	"sort"

	"repro/internal/eventgraph"
	"repro/internal/oplist"
	"repro/internal/plan"
	"repro/internal/rat"
)

// OnePortLatencyWithOrders computes the single-data-set schedule induced by
// fixed per-server orders under one-port communications: the begin times
// are the longest paths of the order-induced DAG. It fails when the orders
// deadlock (cross-server circular wait).
func OnePortLatencyWithOrders(w *plan.Weighted, orders Orders) (*oplist.List, error) {
	g := eventgraph.New(opCount(w))
	for v := 0; v < w.N(); v++ {
		seq := serverSequence(w, orders, v)
		for i := 0; i+1 < len(seq); i++ {
			g.AddEdge(seq[i], seq[i+1], opDur(w, seq[i]), 0)
		}
	}
	pi, err := g.Potentials(rat.One) // tokens are all 0: period-independent
	if err != nil {
		return nil, fmt.Errorf("orchestrate: orders deadlock: %w", err)
	}
	l := listFromTimes(w, rat.One, pi)
	lat := l.Latency()
	if lat.Sign() == 0 {
		lat = rat.One
	}
	l.SetLambda(lat)
	return l, nil
}

// onePortEval is the latency order-search evaluator: the value of an
// assignment is the longest path of the order-induced DAG, computed on a
// reused event graph and begin-time buffer; the operation list is only
// built (by OnePortLatencyWithOrders) for improving candidates.
type onePortEval struct {
	w     *plan.Weighted
	g     *eventgraph.Graph
	seg   *eventgraph.Segmented // incremental bound graph, one segment per server
	st    *Stats
	terms []eventgraph.LatencyTerm // latency score terms: comm-op end times
	pi    []rat.Rat
	fl    rat.Rat
}

func newOnePortEval(w *plan.Weighted) orderEval {
	e := &onePortEval{w: w, g: eventgraph.New(opCount(w)), fl: w.LatencyPathBound()}
	e.terms = make([]eventgraph.LatencyTerm, len(w.Edges()))
	for ei := range w.Edges() {
		e.terms[ei] = eventgraph.LatencyTerm{Node: commOp(w, ei), Add: w.Vol(ei)}
	}
	return e
}

func (e *onePortEval) floor() rat.Rat { return e.fl }

// build fills the scratch graph with the one-port precedence constraints:
// exact per-server chains for decided sides, and for open sides only the
// constraints every permutation implies (each in-comm precedes the
// computation by its own volume, the computation precedes each out-comm by
// the computation time). With all sides decided the graph is exactly the
// one OnePortLatencyWithOrders solves.
func (e *onePortEval) build(o Orders, decidedIn, decidedOut []bool) {
	e.g.Reset(opCount(e.w))
	for v := 0; v < e.w.N(); v++ {
		din := decidedIn == nil || decidedIn[v]
		dout := decidedOut == nil || decidedOut[v]
		e.serverEdges(e.g, v, o, din, dout)
	}
}

// serverEdges emits server v's one-port precedence constraints (see build)
// into sink.
func (e *onePortEval) serverEdges(sink edgeSink, v int, o Orders, din, dout bool) {
	w := e.w
	calc := calcOp(v)
	if din {
		prev := -1
		for _, ei := range o.In[v] {
			op := commOp(w, ei)
			if prev >= 0 {
				sink.AddEdge(prev, op, opDur(w, prev), 0)
			}
			prev = op
		}
		if prev >= 0 {
			sink.AddEdge(prev, calc, opDur(w, prev), 0)
		}
	} else {
		for _, ei := range o.In[v] {
			sink.AddEdge(commOp(w, ei), calc, w.Vol(ei), 0)
		}
	}
	if dout {
		prev := calc
		for _, ei := range o.Out[v] {
			op := commOp(w, ei)
			sink.AddEdge(prev, op, opDur(w, prev), 0)
			prev = op
		}
	} else {
		for _, ei := range o.Out[v] {
			sink.AddEdge(calc, commOp(w, ei), w.Comp(v), 0)
		}
	}
}

// prepare builds the segmented bound graph — one segment per server — for
// the current decided state; patch rebuilds one server's segment in place.
func (e *onePortEval) prepare(o Orders, decidedIn, decidedOut []bool, st *Stats) {
	e.st = st
	if e.seg == nil {
		e.seg = eventgraph.NewSegmented(opCount(e.w), e.w.N())
	} else {
		e.seg.Reset(opCount(e.w), e.w.N())
	}
	before := e.seg.EdgesBuilt()
	for v := 0; v < e.w.N(); v++ {
		e.seg.BeginSegment(v)
		e.serverEdges(e.seg, v, o, decidedIn[v], decidedOut[v])
	}
	if st != nil {
		st.BoundEdgesBuilt += e.seg.EdgesBuilt() - before
	}
}

func (e *onePortEval) patch(v int, o Orders, decidedIn, decidedOut []bool) {
	before := e.seg.EdgesBuilt()
	e.seg.BeginSegment(v)
	e.serverEdges(e.seg, v, o, decidedIn[v], decidedOut[v])
	if e.st != nil {
		e.st.BoundEdgesBuilt += e.seg.EdgesBuilt() - before
	}
}

// exceedsIncremental answers exceeds against the patched graph through the
// certified float pre-filter: LatencyExceeds decides "relaxed latency
// strictly above limit or deadlocked" with interval endpoints first, exact
// arithmetic only when they cannot separate.
func (e *onePortEval) exceedsIncremental(limit rat.Rat) bool {
	exceeds, fellBack := e.seg.LatencyExceeds(rat.One, limit, e.terms)
	if e.st != nil {
		e.st.BoundEdgesFlat += int64(e.seg.TotalEdges())
		if fellBack {
			e.st.FilterFallback++
		} else {
			e.st.FilterCertified++
		}
	}
	return exceeds
}

// latency runs the longest-path relaxation on the current scratch graph
// and returns the latest communication end — List.Latency of the induced
// schedule. The error is the deadlock of the (partial) orders.
func (e *onePortEval) latency() (rat.Rat, error) {
	pi, err := e.g.PotentialsInto(e.pi, rat.One) // tokens all 0: period-independent
	if pi != nil {
		e.pi = pi
	}
	if err != nil {
		return rat.Zero, err
	}
	lat := rat.Zero
	for ei := range e.w.Edges() {
		lat = rat.Max(lat, pi[commOp(e.w, ei)].Add(e.w.Vol(ei)))
	}
	return lat, nil
}

func (e *onePortEval) value(o Orders) (rat.Rat, error) {
	e.build(o, nil, nil)
	return e.latency()
}

func (e *onePortEval) list(o Orders) (*oplist.List, error) {
	return OnePortLatencyWithOrders(e.w, o)
}

// exceeds bounds all completions of the partial assignment: decided sides
// contribute their exact chains, open sides only implied constraints, so
// the relaxed longest path is a lower bound on every completion's latency
// (a relaxed deadlock is a deadlock of every completion — the open-side
// edges are implied by each of them).
func (e *onePortEval) exceeds(o Orders, decidedIn, decidedOut []bool, limit rat.Rat) bool {
	e.build(o, decidedIn, decidedOut)
	lb, err := e.latency()
	if err != nil {
		return true // every completion deadlocks
	}
	return lb.Greater(limit)
}

// OnePortLatency searches per-server orders for the minimal one-port
// latency. The search is exact (over all schedules, since any valid
// one-port single-data-set schedule induces such orders) when the
// combination count fits the exhaustive budget. Applies to both INORDER
// and OUTORDER, which coincide for latency (paper §2.2).
func OnePortLatency(w *plan.Weighted, opts Options) (Result, error) {
	res, err := searchOrders(w, opts, func() orderEval { return newOnePortEval(w) })
	if err != nil {
		return Result{}, err
	}
	res.Value = res.List.Latency()
	res.LowerBound = w.LatencyPathBound()
	for _, m := range plan.Models {
		if verr := res.List.Validate(m); verr != nil {
			return Result{}, fmt.Errorf("orchestrate: one-port latency schedule invalid under %s: %w", m, verr)
		}
	}
	return res, nil
}

// OverlapLatencyShared builds the bandwidth-sharing multi-port schedule:
// every communication leaving a node starts as soon as the node finishes
// computing and is stretched to duration max(volume, Cout(sender),
// Cin(receiver)). The per-port ratio sums are then ≤ 1 by construction
// (each ratio is at most vol/Cout resp. vol/Cin), so the schedule is always
// valid; on wide bipartite graphs such as the paper's B.2 example it beats
// every one-port schedule.
func OverlapLatencyShared(w *plan.Weighted) (*oplist.List, error) {
	l := oplist.New(w, rat.One)
	commEnd := make([]rat.Rat, len(w.Edges()))
	// Input communications: start at 0.
	for _, idx := range entryInEdges(w) {
		e := w.Edge(idx)
		dur := rat.Max(w.Vol(idx), w.Cin(e.To))
		l.SetCommStretched(idx, rat.Zero, dur)
		commEnd[idx] = dur
	}
	for _, v := range w.Topo() {
		begin := rat.Zero
		for _, idx := range w.InEdges(v) {
			begin = rat.Max(begin, commEnd[idx])
		}
		l.SetCalc(v, begin)
		done := begin.Add(w.Comp(v))
		for _, idx := range w.OutEdges(v) {
			e := w.Edge(idx)
			dur := rat.Max(w.Vol(idx), w.Cout(v))
			if e.To >= 0 {
				dur = rat.Max(dur, w.Cin(e.To))
			}
			l.SetCommStretched(idx, done, done.Add(dur))
			commEnd[idx] = done.Add(dur)
		}
	}
	lat := l.Latency()
	if lat.Sign() == 0 {
		lat = rat.One
	}
	l.SetLambda(lat)
	if err := l.Validate(plan.Overlap); err != nil {
		return nil, fmt.Errorf("orchestrate: shared-bandwidth construction invalid: %w", err)
	}
	return l, nil
}

// OverlapLatency returns the better of the bandwidth-sharing multi-port
// schedule and the best one-port schedule (one-port lists are OVERLAP-valid
// as-is). Computing the true multi-port optimum is NP-hard (paper Prop. 11).
func OverlapLatency(w *plan.Weighted, opts Options) (Result, error) {
	onePort, opErr := OnePortLatency(w, opts)
	shared, shErr := OverlapLatencyShared(w)
	switch {
	case opErr != nil && shErr != nil:
		return Result{}, fmt.Errorf("orchestrate: no overlap latency schedule (one-port: %v, shared: %v)", opErr, shErr)
	case shErr != nil:
		return onePort, nil
	case opErr != nil:
		return Result{List: shared, Value: shared.Latency(), LowerBound: w.LatencyPathBound()}, nil
	}
	if shared.Latency().Less(onePort.Value) {
		return Result{List: shared, Value: shared.Latency(), LowerBound: w.LatencyPathBound()}, nil
	}
	return onePort, nil
}

// TreeLatency computes the optimal one-port latency schedule for a
// forest-shaped weighted plan (every node has exactly one incoming
// communication): Algorithm 1 of the paper, generalized to arbitrary
// per-edge volumes. Children are fed in non-increasing order of their
// remaining completion time, which an exchange argument shows optimal. The
// returned schedule is valid under all three models.
func TreeLatency(w *plan.Weighted) (Result, error) {
	for v := 0; v < w.N(); v++ {
		if len(w.InEdges(v)) != 1 {
			return Result{}, fmt.Errorf("orchestrate: node %s has %d incoming communications; TreeLatency requires a forest", w.Name(v), len(w.InEdges(v)))
		}
	}
	// rest[v] = time from the end of v's incoming communication to the
	// completion of everything below v (including output communications).
	rest := make([]rat.Rat, w.N())
	order := make([][]int, w.N()) // chosen out-edge order per node
	topo := w.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		type child struct {
			edge int
			r    rat.Rat
		}
		children := make([]child, 0, len(w.OutEdges(v)))
		for _, ei := range w.OutEdges(v) {
			r := rat.Zero
			if to := w.Edge(ei).To; to >= 0 {
				r = rest[to]
			}
			children = append(children, child{ei, r})
		}
		sort.SliceStable(children, func(a, b int) bool {
			return children[a].r.Greater(children[b].r)
		})
		prefix := rat.Zero
		worst := rat.Zero
		order[v] = order[v][:0]
		for _, c := range children {
			prefix = prefix.Add(w.Vol(c.edge))
			worst = rat.Max(worst, prefix.Add(c.r))
			order[v] = append(order[v], c.edge)
		}
		rest[v] = w.Comp(v).Add(worst)
	}
	// Build the schedule: every root's input communication starts at 0.
	l := oplist.New(w, rat.One)
	var schedule func(v int, calcBegin rat.Rat)
	schedule = func(v int, calcBegin rat.Rat) {
		l.SetCalc(v, calcBegin)
		t := calcBegin.Add(w.Comp(v))
		for _, ei := range order[v] {
			l.SetComm(ei, t)
			t = t.Add(w.Vol(ei))
			if to := w.Edge(ei).To; to >= 0 {
				schedule(to, t)
			}
		}
	}
	latency := rat.Zero
	for v := 0; v < w.N(); v++ {
		in := w.InEdges(v)[0]
		if w.Edge(in).From != plan.In {
			continue // not a root
		}
		l.SetComm(in, rat.Zero)
		schedule(v, w.Vol(in))
		latency = rat.Max(latency, w.Vol(in).Add(rest[v]))
	}
	if latency.Sign() == 0 {
		latency = rat.One
	}
	l.SetLambda(latency)
	for _, m := range plan.Models {
		if err := l.Validate(m); err != nil {
			return Result{}, fmt.Errorf("orchestrate: tree latency schedule invalid under %s: %w", m, err)
		}
	}
	return Result{List: l, Value: l.Latency(), LowerBound: w.LatencyPathBound(), Exact: true}, nil
}

// Latency dispatches to the model-specific latency orchestrator. For
// forest-shaped plans the exact tree algorithm is used directly (one-port
// communications are dominant on trees, paper Prop. 12).
func Latency(w *plan.Weighted, m plan.Model, opts Options) (Result, error) {
	if isForestShaped(w) {
		return TreeLatency(w)
	}
	switch m {
	case plan.Overlap:
		return OverlapLatency(w, opts)
	case plan.InOrder, plan.OutOrder:
		return OnePortLatency(w, opts)
	default:
		return Result{}, fmt.Errorf("orchestrate: unknown model %v", m)
	}
}

func isForestShaped(w *plan.Weighted) bool {
	for v := 0; v < w.N(); v++ {
		if len(w.InEdges(v)) != 1 {
			return false
		}
	}
	return true
}
