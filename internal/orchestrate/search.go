package orchestrate

// The order-search fast path.
//
// Choosing per-server receive/send orders is the NP-hard inner loop of
// every plan-level search (Theorem 1 / Prop. 2 / Prop. 3), so this file
// replaces the former flat product enumeration with a pruned, sharded,
// allocation-lean search:
//
//   - Prefix pruning. Orders are fixed slot by slot (one slot per server
//     side with ≥ 2 communications, in server order). After each slot an
//     admissible relaxation of the model's event graph — fixed sides
//     contribute their exact chains, open sides only the constraints every
//     permutation implies — yields a lower bound on all completions, and
//     the subtree is cut when the bound exceeds min(shared incumbent,
//     shard-local best) STRICTLY. Strictness against the shared incumbent
//     is required (a tie may still hide the schedule the serial scan would
//     keep — the solve-layer branch-and-bound discipline); against the
//     shard-local best a tie-cut would also be safe, but the period
//     evaluator's one feasibility check is inherently strict, so ties are
//     conservatively enumerated on both rules. A shard also stops outright
//     once its best reaches the model's static lower bound — nothing can
//     beat the floor.
//
//   - Sharding. The slot decisions are split into contiguous ranges of the
//     serial enumeration order (orderShardPrefixes) and evaluated on the
//     internal/par pool; per-shard winners reduce in shard order with
//     strict-improvement comparison, so every worker count — and the
//     pre-fast-path serial enumeration — returns the bit-identical Result.
//
//   - Scratch reuse. Each shard owns one orderEval, which keeps a
//     resettable event graph and a begin-time buffer; complete assignments
//     are scored with value() (no operation list), and the list is only
//     materialized when a candidate improves the shard's best.
//
// The heuristic path (above MaxExhaustive: priority seeds, adjacent-swap
// climbing, random samples) is unchanged in shape but scores candidates
// with value() too.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/oplist"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/rat"
)

// Stats reports the search effort of one exhaustive (pruned) order search.
type Stats struct {
	// Prefixes counts partial order assignments whose bound was computed.
	Prefixes int64
	// Pruned counts subtrees discarded because their bound ruled out any
	// improvement on the incumbent.
	Pruned int64
	// Evaluated counts complete order assignments scored — the number the
	// flat product enumeration would drive to OrderCombinations.
	Evaluated int64
}

func (s *Stats) add(o Stats) {
	s.Prefixes += o.Prefixes
	s.Pruned += o.Pruned
	s.Evaluated += o.Evaluated
}

// orderEval is the model-specific machinery of the order search, one
// instance per shard (it owns scratch):
//
//   - value scores a complete assignment cheaply — no operation list;
//   - list materializes and validates the schedule, called only when a
//     candidate improves the shard's best (a list error marks the
//     candidate infeasible exactly where the pre-fast-path evaluator
//     errored, so the candidate is skipped either way);
//   - exceeds is the admissible pruning test on partial assignments:
//     it may return true only when EVERY completion of the partial orders
//     is forced strictly above limit;
//   - floor is the static model lower bound no schedule can beat.
type orderEval interface {
	value(o Orders) (rat.Rat, error)
	list(o Orders) (*oplist.List, error)
	exceeds(o Orders, decidedIn, decidedOut []bool, limit rat.Rat) bool
	floor() rat.Rat
}

// searchIncumbent is the shared pruning threshold of one exhaustive order
// search: the best value any shard has materialized so far. Same
// generation-stamped design as the solve layer's branch-and-bound
// incumbent — the hot path reads one atomic, and a stale (higher) cached
// value only weakens strict pruning, never breaks it.
type searchIncumbent struct {
	gen atomic.Uint64
	mu  sync.Mutex
	ok  bool
	val rat.Rat
}

func (in *searchIncumbent) offer(v rat.Rat) {
	in.mu.Lock()
	if !in.ok || v.Less(in.val) {
		in.val, in.ok = v, true
		in.gen.Add(1)
	}
	in.mu.Unlock()
}

// load refreshes the caller's snapshot when the generation moved.
func (in *searchIncumbent) load(gen *uint64, ok *bool, val *rat.Rat) {
	if g := in.gen.Load(); g != *gen {
		in.mu.Lock()
		*gen, *ok, *val = in.gen.Load(), in.ok, in.val
		in.mu.Unlock()
	}
}

// slotRef is one permutable server side; side aliases the search Orders'
// slice, so permuting it permutes the orders in place.
type slotRef struct {
	server int
	out    bool
	side   []int
}

// collectSlots lists the permutable sides of o in the enumeration order of
// the pre-fast-path forEachOrders: server by server, In before Out, only
// sides with at least two communications.
func collectSlots(o Orders) []slotRef {
	var slots []slotRef
	for v := range o.In {
		if len(o.In[v]) > 1 {
			slots = append(slots, slotRef{server: v, out: false, side: o.In[v]})
		}
		if len(o.Out[v]) > 1 {
			slots = append(slots, slotRef{server: v, out: true, side: o.Out[v]})
		}
	}
	return slots
}

// suffixCombos returns, per slot, the number of order combinations of the
// slots strictly after it (capped at limit), i.e. the subtree size a
// successful prune at that slot cuts.
func suffixCombos(slots []slotRef, limit int) []int {
	out := make([]int, len(slots))
	total := 1
	for i := len(slots) - 1; i >= 0; i-- {
		out[i] = total
		total *= factorialCapped(len(slots[i].side), limit)
		if total > limit {
			total = limit + 1
		}
	}
	return out
}

// shardPrefix fixes the leading decision levels of the serial enumeration:
// full position-space permutations for all but the last touched slot, plus
// the first resume positions of the last one. Completing each prefix in
// enumeration order yields a contiguous range of the serial order, and the
// prefixes in sequence partition the whole space.
type shardPrefix struct {
	perms  [][]int
	resume int
}

// searchMinShards is the shard target of the exhaustive search. It is a
// constant — never derived from the worker count — so the shard set, and
// with it the deterministic shard-order reduction, is identical for every
// Options.Workers value.
const searchMinShards = 32

// orderShardPrefixes expands decision levels slot-major, position-minor —
// exactly as the serial enumeration nests them — until at least min
// prefixes exist (or the space is exhausted), returning them in serial
// order.
func orderShardPrefixes(sizes []int, min int) []shardPrefix {
	prefixes := []shardPrefix{{}}
	for s := 0; s < len(sizes); s++ {
		size := sizes[s]
		for k := 0; k+1 < size; k++ {
			if len(prefixes) >= min {
				return prefixes
			}
			next := make([]shardPrefix, 0, len(prefixes)*(size-k))
			for _, p := range prefixes {
				cur := identityPerm(size)
				if len(p.perms) == s+1 {
					cur = p.perms[s]
				}
				for i := k; i < size; i++ {
					perm := append([]int(nil), cur...)
					perm[k], perm[i] = perm[i], perm[k]
					perms := make([][]int, s+1)
					copy(perms, p.perms)
					perms[s] = perm
					next = append(next, shardPrefix{perms: perms, resume: k + 1})
				}
			}
			prefixes = next
		}
	}
	return prefixes
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// orderShardResult is one shard's outcome.
type orderShardResult struct {
	list  *oplist.List
	val   rat.Rat
	found bool
	stats Stats
}

// boundMinSuffix gates prefix bounding: a bound costs about one relaxed
// evaluation, so it only runs where a successful prune cuts at least this
// many completions.
const boundMinSuffix = 4

// searchOrders minimizes the model evaluator over order assignments:
// exhaustively (pruned + sharded, see the file comment) when the
// combination count fits the budget, otherwise seeds + adjacent-swap local
// search. newEval builds one evaluator per shard.
func searchOrders(w *plan.Weighted, opts Options, newEval func() orderEval) (Result, error) {
	opts = opts.withDefaults()
	if orderCombinations(w, opts.MaxExhaustive) <= opts.MaxExhaustive {
		return searchOrdersExhaustive(w, opts, newEval)
	}
	if opts.Stats != nil {
		*opts.Stats = Stats{}
	}
	return searchOrdersHeuristic(w, opts, newEval())
}

// searchOrdersExhaustive runs the pruned + sharded exact search. Exact is
// always true on this path: pruning is admissible (it never cuts a
// candidate strictly better than a value already proved achievable), so
// the minimum over the searched family is preserved — and the returned
// schedule is the one the serial flat enumeration would keep.
func searchOrdersExhaustive(w *plan.Weighted, opts Options, newEval func() orderEval) (Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1 // serial default: the caller owns the parallelism budget
	}
	// A serial search runs the whole space as one shard — no per-shard
	// setup, and the shared incumbent degenerates to the local best. The
	// shard granularity cannot change the Result: shards are contiguous
	// ranges of the serial enumeration order, pruning is strict against
	// the shared incumbent, and the shard-order reduction keeps the first
	// strictly-best candidate — the same one for every partition (pinned
	// by the worker-count determinism suite). Small order spaces also run
	// as one serial shard even when workers were offered: below roughly
	// one bound-gated subtree per shard, the goroutine spawns and
	// per-shard evaluator scratch outweigh the work being split.
	minShards := 1
	if workers > 1 && orderCombinations(w, searchMinShards*boundMinSuffix) > searchMinShards*boundMinSuffix {
		minShards = searchMinShards
	}
	if minShards == 1 {
		workers = 1
	}
	sizes := func() []int {
		var out []int
		for _, s := range collectSlots(DefaultOrders(w)) {
			out = append(out, len(s.side))
		}
		return out
	}()
	prefixes := orderShardPrefixes(sizes, minShards)
	inc := &searchIncumbent{}
	shards := par.Map(workers, len(prefixes), func(i int) orderShardResult {
		return runOrderShard(w, newEval(), prefixes[i], inc)
	})
	var best orderShardResult
	var total Stats
	for _, sh := range shards {
		total.add(sh.stats)
		if !sh.found {
			continue
		}
		if !best.found || sh.val.Less(best.val) {
			best = sh
		}
	}
	if opts.Stats != nil {
		*opts.Stats = total
	}
	if !best.found {
		return Result{}, fmt.Errorf("orchestrate: no feasible order assignment found")
	}
	return Result{List: best.list, Value: best.val, Exact: true}, nil
}

// runOrderShard enumerates the completions of one shard prefix in serial
// order, bounding each slot decision and keeping the first strictly-best
// feasible candidate.
func runOrderShard(w *plan.Weighted, eval orderEval, prefix shardPrefix, inc *searchIncumbent) orderShardResult {
	orders := DefaultOrders(w)
	slots := collectSlots(orders)
	suffix := suffixCombos(slots, 1<<30)
	floor := eval.floor()

	// decided side flags: trivial sides (≤ 1 comm) are decided from the
	// start; slot sides toggle as the recursion fixes them.
	decIn := make([]bool, w.N())
	decOut := make([]bool, w.N())
	for v := range decIn {
		decIn[v], decOut[v] = true, true
	}
	for _, s := range slots {
		if s.out {
			decOut[s.server] = false
		} else {
			decIn[s.server] = false
		}
	}
	setDecided := func(si int, d bool) {
		if slots[si].out {
			decOut[slots[si].server] = d
		} else {
			decIn[slots[si].server] = d
		}
	}

	// Apply the shard prefix: position-space permutations over the natural
	// side contents, exactly the state the serial enumeration is in when it
	// reaches this shard's range.
	for i, perm := range prefix.perms {
		side := slots[i].side
		natural := append([]int(nil), side...)
		for j, p := range perm {
			side[j] = natural[p]
		}
	}
	fixed := len(prefix.perms) - 1
	if fixed < 0 {
		fixed = 0
	}
	for i := 0; i < fixed; i++ {
		setDecided(i, true)
	}

	var r orderShardResult
	var incGen uint64
	var incOK bool
	var incVal rat.Rat

	// pruneLimit is min(shared incumbent, shard-local best): a subtree
	// whose bound exceeds it STRICTLY cannot contain a candidate the
	// search would keep — pruned values above the shared incumbent never
	// win the reduction, and values above the local best never replace
	// the shard's kept candidate. Subtrees whose bound exactly ties the
	// limit are enumerated (see the file comment).
	pruneLimit := func() (rat.Rat, bool) {
		inc.load(&incGen, &incOK, &incVal)
		switch {
		case r.found && incOK:
			return rat.Min(r.val, incVal), true
		case r.found:
			return r.val, true
		case incOK:
			return incVal, true
		}
		return rat.Rat{}, false
	}

	stopped := false
	var rec func(si int)
	rec = func(si int) {
		if si == len(slots) {
			r.stats.Evaluated++
			val, err := eval.value(orders)
			if err != nil {
				return
			}
			if !r.found || val.Less(r.val) {
				// A candidate strictly above the shared incumbent can
				// neither win the shard-order reduction (strict
				// improvement) nor tighten the pruning limit below the
				// incumbent, so its materialization is skipped. Ties must
				// materialize: the shard holding the serial-first achiever
				// of the final value wins the reduction, and the incumbent
				// may have been offered by a later shard. A stale (higher)
				// snapshot only materializes more, never less.
				inc.load(&incGen, &incOK, &incVal)
				if incOK && val.Greater(incVal) {
					return
				}
				l, lerr := eval.list(orders)
				if lerr != nil {
					return
				}
				r.list, r.val, r.found = l, val, true
				inc.offer(val)
				if !r.val.Greater(floor) {
					// Early exit: every remaining candidate is ≥ the static
					// floor = the shard's best; ties never replace it.
					stopped = true
				}
			}
			return
		}
		resume := 0
		if si == len(prefix.perms)-1 {
			resume = prefix.resume
		}
		permute(slots[si].side, resume, func() bool {
			setDecided(si, true)
			prune := false
			if si+1 < len(slots) && suffix[si] >= boundMinSuffix {
				if limit, ok := pruneLimit(); ok {
					r.stats.Prefixes++
					if eval.exceeds(orders, decIn, decOut, limit) {
						r.stats.Pruned++
						prune = true
					}
				}
			}
			if !prune {
				rec(si + 1)
			}
			setDecided(si, false)
			return !stopped
		})
	}

	// Shard-entry bound: the fully fixed prefix slots alone may already
	// rule the whole shard out.
	if fixed > 0 {
		if limit, ok := pruneLimit(); ok {
			r.stats.Prefixes++
			if eval.exceeds(orders, decIn, decOut, limit) {
				r.stats.Pruned++
				return r
			}
		}
	}
	rec(fixed)
	return r
}

// searchOrdersHeuristic runs the above-budget path: deterministic priority
// seeds and random samples refined by adjacent-swap climbing. Candidates
// are scored with value(); the operation list is materialized only on
// improvements over the best so far.
func searchOrdersHeuristic(w *plan.Weighted, opts Options, eval orderEval) (Result, error) {
	var best *oplist.List
	var bestVal rat.Rat
	// consider records a scored assignment, materializing its schedule; a
	// materialization failure means the candidate was infeasible all along
	// (the pre-fast-path evaluator errored during construction), so it is
	// skipped the same way.
	consider := func(o Orders, val rat.Rat) {
		if best == nil || val.Less(bestVal) {
			if l, err := eval.list(o); err == nil {
				best, bestVal = l, val
			}
		}
	}
	climb := func(cur Orders) {
		val, err := eval.value(cur)
		if err != nil {
			return
		}
		consider(cur, val)
		// Adjacent-swap hill climbing.
		for pass := 0; pass < opts.LocalSearchPasses; pass++ {
			improved := false
			for v := 0; v < w.N(); v++ {
				for _, side := range [][]int{cur.In[v], cur.Out[v]} {
					for i := 0; i+1 < len(side); i++ {
						side[i], side[i+1] = side[i+1], side[i]
						nv, err := eval.value(cur)
						if err == nil && nv.Less(val) {
							val = nv
							improved = true
							consider(cur, nv)
						} else {
							side[i], side[i+1] = side[i+1], side[i]
						}
					}
				}
			}
			if !improved {
				break
			}
		}
	}
	for _, seed := range heuristicOrderSeeds(w) {
		climb(seed.clone())
	}
	// Random restarts: sample order assignments, then climb from the best
	// sample found.
	if opts.RandomSamples > 0 {
		rng := rand.New(rand.NewSource(opts.Seed))
		var bestSample Orders
		var bestSampleVal rat.Rat
		haveSample := false
		for s := 0; s < opts.RandomSamples; s++ {
			cand := DefaultOrders(w)
			for v := 0; v < w.N(); v++ {
				rng.Shuffle(len(cand.In[v]), func(i, j int) {
					cand.In[v][i], cand.In[v][j] = cand.In[v][j], cand.In[v][i]
				})
				rng.Shuffle(len(cand.Out[v]), func(i, j int) {
					cand.Out[v][i], cand.Out[v][j] = cand.Out[v][j], cand.Out[v][i]
				})
			}
			val, err := eval.value(cand)
			if err != nil {
				continue
			}
			consider(cand, val)
			if !haveSample || val.Less(bestSampleVal) {
				bestSample, bestSampleVal, haveSample = cand.clone(), val, true
			}
		}
		if haveSample {
			climb(bestSample)
		}
	}
	if best == nil {
		return Result{}, fmt.Errorf("orchestrate: no feasible order assignment found")
	}
	return Result{List: best, Value: bestVal, Exact: false}, nil
}
