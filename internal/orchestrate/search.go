package orchestrate

// The order-search fast path.
//
// Choosing per-server receive/send orders is the NP-hard inner loop of
// every plan-level search (Theorem 1 / Prop. 2 / Prop. 3), so this file
// replaces the former flat product enumeration with a pruned, sharded,
// allocation-lean search:
//
//   - Prefix pruning. Orders are fixed slot by slot (one slot per server
//     side with ≥ 2 communications, in server order). After each slot an
//     admissible relaxation of the model's event graph — fixed sides
//     contribute their exact chains, open sides only the constraints every
//     permutation implies — yields a lower bound on all completions, and
//     the subtree is cut when the bound exceeds min(shared incumbent,
//     shard-local best) STRICTLY. Strictness against the shared incumbent
//     is required (a tie may still hide the schedule the serial scan would
//     keep — the solve-layer branch-and-bound discipline); against the
//     shard-local best a tie-cut would also be safe, but the period
//     evaluator's one feasibility check is inherently strict, so ties are
//     conservatively enumerated on both rules. A shard also stops outright
//     once its best reaches the model's static lower bound — nothing can
//     beat the floor.
//
//   - Sharding. The slot decisions are split into contiguous ranges of the
//     serial enumeration order (orderShardPrefixes) and evaluated on the
//     internal/par pool; per-shard winners reduce in shard order with
//     strict-improvement comparison, so every worker count — and the
//     pre-fast-path serial enumeration — returns the bit-identical Result.
//
//   - Scratch reuse. Each shard owns one orderEval, which keeps a
//     resettable event graph and a begin-time buffer; complete assignments
//     are scored with value() (no operation list), and the list is only
//     materialized when a candidate improves the shard's best.
//
// The heuristic path (above MaxExhaustive: priority seeds, adjacent-swap
// climbing, random samples) is unchanged in shape but scores candidates
// with value() too.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/oplist"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/rat"
)

// Stats reports the search effort of one exhaustive (pruned) order search.
type Stats struct {
	// Prefixes counts partial order assignments whose bound was computed.
	Prefixes int64
	// Pruned counts subtrees discarded because their bound ruled out any
	// improvement on the incumbent.
	Pruned int64
	// Evaluated counts complete order assignments scored — the number the
	// flat product enumeration would drive to OrderCombinations.
	Evaluated int64
	// BoundEdgesBuilt counts relaxed-graph edges actually constructed by the
	// incremental bound path (full prepares plus one-segment patches);
	// BoundEdgesFlat what from-scratch rebuilds would have constructed
	// (current edge total × bound evaluations). Their ratio is the rebuild
	// work the patching avoids (experiment E19).
	BoundEdgesBuilt int64
	BoundEdgesFlat  int64
	// FilterCertified counts bound feasibility queries decided by the
	// certified float pre-filter alone; FilterFallback those that fell back
	// to exact rational arithmetic.
	FilterCertified int64
	FilterFallback  int64
}

func (s *Stats) add(o Stats) {
	s.Prefixes += o.Prefixes
	s.Pruned += o.Pruned
	s.Evaluated += o.Evaluated
	s.BoundEdgesBuilt += o.BoundEdgesBuilt
	s.BoundEdgesFlat += o.BoundEdgesFlat
	s.FilterCertified += o.FilterCertified
	s.FilterFallback += o.FilterFallback
}

// orderEval is the model-specific machinery of the order search, one
// instance per shard (it owns scratch):
//
//   - value scores a complete assignment cheaply — no operation list;
//   - list materializes and validates the schedule, called only when a
//     candidate improves the shard's best (a list error marks the
//     candidate infeasible exactly where the pre-fast-path evaluator
//     errored, so the candidate is skipped either way);
//   - exceeds is the admissible pruning test on partial assignments:
//     it may return true only when EVERY completion of the partial orders
//     is forced strictly above limit;
//   - floor is the static model lower bound no schedule can beat.
type orderEval interface {
	value(o Orders) (rat.Rat, error)
	list(o Orders) (*oplist.List, error)
	exceeds(o Orders, decidedIn, decidedOut []bool, limit rat.Rat) bool
	floor() rat.Rat

	// Incremental bound protocol. prepare builds the segmented relaxed
	// graph for the current decided state (once per shard); patch rebuilds
	// exactly server v's segment after its decided flags or side contents
	// changed; exceedsIncremental answers the same admissible question as
	// exceeds against the prepared+patched graph, running the certified
	// float pre-filter before exact arithmetic. st (may be nil) receives
	// the filter and rebuild-work counters.
	prepare(o Orders, decidedIn, decidedOut []bool, st *Stats)
	patch(server int, o Orders, decidedIn, decidedOut []bool)
	exceedsIncremental(limit rat.Rat) bool
}

// searchIncumbent is the shared pruning threshold of one exhaustive order
// search: the best value any shard has materialized so far. Same
// generation-stamped design as the solve layer's branch-and-bound
// incumbent — the hot path reads one atomic, and a stale (higher) cached
// value only weakens strict pruning, never breaks it.
type searchIncumbent struct {
	gen atomic.Uint64
	mu  sync.Mutex
	ok  bool
	val rat.Rat
}

func (in *searchIncumbent) offer(v rat.Rat) {
	in.mu.Lock()
	if !in.ok || v.Less(in.val) {
		in.val, in.ok = v, true
		in.gen.Add(1)
	}
	in.mu.Unlock()
}

// load refreshes the caller's snapshot when the generation moved.
func (in *searchIncumbent) load(gen *uint64, ok *bool, val *rat.Rat) {
	if g := in.gen.Load(); g != *gen {
		in.mu.Lock()
		*gen, *ok, *val = in.gen.Load(), in.ok, in.val
		in.mu.Unlock()
	}
}

// slotRef is one permutable server side; side aliases the search Orders'
// slice, so permuting it permutes the orders in place. nat is the slot's
// index in the natural (forEachOrders) enumeration order, the anchor of
// the rank tie-break after most-constrained-first reordering.
type slotRef struct {
	server int
	out    bool
	side   []int
	nat    int
}

// collectSlots lists the permutable sides of o in the enumeration order of
// the pre-fast-path forEachOrders: server by server, In before Out, only
// sides with at least two communications.
func collectSlots(o Orders) []slotRef {
	var slots []slotRef
	for v := range o.In {
		if len(o.In[v]) > 1 {
			slots = append(slots, slotRef{server: v, out: false, side: o.In[v], nat: len(slots)})
		}
		if len(o.Out[v]) > 1 {
			slots = append(slots, slotRef{server: v, out: true, side: o.Out[v], nat: len(slots)})
		}
	}
	return slots
}

// sortSlots reorders the decision nesting most-constrained-first: the
// largest sides outermost, so the admissible bound sees the most committed
// exact chains earliest and one successful prune cuts the biggest subtree.
// The sort is stable on the natural order and reports whether anything
// moved — the unmoved case keeps the PR 5 fast path (floor early-exit,
// rank-free shard-order reduction) verbatim.
func sortSlots(slots []slotRef) bool {
	sort.SliceStable(slots, func(a, b int) bool {
		return len(slots[a].side) > len(slots[b].side)
	})
	for i := range slots {
		if slots[i].nat != i {
			return true
		}
	}
	return false
}

// reorderMinCombos gates the most-constrained-first nesting by order-space
// size. Reordering trades the natural nesting's floor early-exit (stop at
// the first floor-achieving leaf — serial order makes it the canonical
// winner) for earlier bound prunes plus rank bookkeeping; on small spaces
// the bound fires too low to recoup that, and the solve-suite instances
// measurably regress. Above the threshold one outermost prune removes
// (combos / |side₀|!) leaves and the trade wins.
const reorderMinCombos = 1024

// shouldReorder reports whether runOrderShard nests the slots
// most-constrained-first. A pure function of the static slot sizes, so the
// shard-prefix layout and every shard agree without coordination. It never
// mutates slots.
func shouldReorder(slots []slotRef) bool {
	outOfOrder := false
	for i := 0; i+1 < len(slots); i++ {
		if len(slots[i+1].side) > len(slots[i].side) {
			outOfOrder = true
			break
		}
	}
	if !outOfOrder {
		return false
	}
	combos := int64(1)
	for i := range slots {
		combos *= fact64(len(slots[i].side))
		if combos >= reorderMinCombos {
			return true
		}
	}
	return false
}

// slotRanker assigns every complete assignment its serial rank in the
// NATURAL enumeration order. With the slots reordered, the first candidate
// reached at the final value is no longer the one the flat serial scan
// keeps — the rank restores it: among equal-valued candidates the search
// keeps the minimum natural rank, which is exactly the serial-first
// achiever, so Results stay bit-identical to the natural nesting.
type slotRanker struct {
	natural [][]int // natural side contents, indexed by natural slot index
	weight  []int64 // Π of factorials of later slots, natural order
	work    []int   // permRank scratch
}

// newSlotRanker snapshots the sides; the slots must still hold their
// natural contents and order (call before sortSlots and prefix application).
func newSlotRanker(slots []slotRef) *slotRanker {
	r := &slotRanker{
		natural: make([][]int, len(slots)),
		weight:  make([]int64, len(slots)),
	}
	w := int64(1)
	maxSide := 0
	for i := len(slots) - 1; i >= 0; i-- {
		r.natural[i] = append([]int(nil), slots[i].side...)
		r.weight[i] = w
		w *= fact64(len(slots[i].side))
		if len(slots[i].side) > maxSide {
			maxSide = len(slots[i].side)
		}
	}
	r.work = make([]int, maxSide)
	return r
}

// rank returns the natural serial rank of the assignment the slots
// currently hold: mixed radix over the slots in natural order, each digit
// the side's position in permute's swap enumeration. The total fits int64:
// the product of all side factorials is the combination count, which passed
// the MaxExhaustive gate.
func (r *slotRanker) rank(slots []slotRef) int64 {
	total := int64(0)
	for i := range slots {
		total += r.weight[slots[i].nat] * permRank(r.natural[slots[i].nat], slots[i].side, r.work)
	}
	return total
}

// permRank is the 0-based position of target within permute's enumeration
// of natural: at step k permute swaps position k with each i ≥ k in turn,
// so the digit of step k is where target[k] sits in the working array,
// weighted by (m-1-k)!.
func permRank(natural, target, work []int) int64 {
	m := len(natural)
	work = work[:m]
	copy(work, natural)
	rank := int64(0)
	f := fact64(m)
	for k := 0; k < m; k++ {
		f /= int64(m - k) // (m-1-k)! for this step
		idx := k
		for work[idx] != target[k] {
			idx++
		}
		rank += int64(idx-k) * f
		work[k], work[idx] = work[idx], work[k]
	}
	return rank
}

func fact64(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// suffixCombos returns, per slot, the number of order combinations of the
// slots strictly after it (capped at limit), i.e. the subtree size a
// successful prune at that slot cuts.
func suffixCombos(slots []slotRef, limit int) []int {
	out := make([]int, len(slots))
	total := 1
	for i := len(slots) - 1; i >= 0; i-- {
		out[i] = total
		total *= factorialCapped(len(slots[i].side), limit)
		if total > limit {
			total = limit + 1
		}
	}
	return out
}

// shardPrefix fixes the leading decision levels of the serial enumeration:
// full position-space permutations for all but the last touched slot, plus
// the first resume positions of the last one. Completing each prefix in
// enumeration order yields a contiguous range of the serial order, and the
// prefixes in sequence partition the whole space.
type shardPrefix struct {
	perms  [][]int
	resume int
}

// searchMinShards is the shard target of the exhaustive search. It is a
// constant — never derived from the worker count — so the shard set, and
// with it the deterministic shard-order reduction, is identical for every
// Options.Workers value.
const searchMinShards = 32

// orderShardPrefixes expands decision levels slot-major, position-minor —
// exactly as the serial enumeration nests them — until at least min
// prefixes exist (or the space is exhausted), returning them in serial
// order.
func orderShardPrefixes(sizes []int, min int) []shardPrefix {
	prefixes := []shardPrefix{{}}
	for s := 0; s < len(sizes); s++ {
		size := sizes[s]
		for k := 0; k+1 < size; k++ {
			if len(prefixes) >= min {
				return prefixes
			}
			next := make([]shardPrefix, 0, len(prefixes)*(size-k))
			for _, p := range prefixes {
				cur := identityPerm(size)
				if len(p.perms) == s+1 {
					cur = p.perms[s]
				}
				for i := k; i < size; i++ {
					perm := append([]int(nil), cur...)
					perm[k], perm[i] = perm[i], perm[k]
					perms := make([][]int, s+1)
					copy(perms, p.perms)
					perms[s] = perm
					next = append(next, shardPrefix{perms: perms, resume: k + 1})
				}
			}
			prefixes = next
		}
	}
	return prefixes
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// orderShardResult is one shard's outcome. rank is the kept candidate's
// natural serial rank, meaningful only when the slots were reordered (the
// natural nesting keeps shard-order reduction instead).
type orderShardResult struct {
	list  *oplist.List
	val   rat.Rat
	rank  int64
	found bool
	stats Stats
}

// boundMinSuffix gates prefix bounding: a bound costs about one relaxed
// evaluation, so it only runs where a successful prune cuts at least this
// many completions.
const boundMinSuffix = 4

// searchOrders minimizes the model evaluator over order assignments:
// exhaustively (pruned + sharded, see the file comment) when the
// combination count fits the budget, otherwise seeds + adjacent-swap local
// search. newEval builds one evaluator per shard.
func searchOrders(w *plan.Weighted, opts Options, newEval func() orderEval) (Result, error) {
	opts = opts.withDefaults()
	if orderCombinations(w, opts.MaxExhaustive) <= opts.MaxExhaustive {
		return searchOrdersExhaustive(w, opts, newEval)
	}
	if opts.Stats != nil {
		*opts.Stats = Stats{}
	}
	return searchOrdersHeuristic(w, opts, newEval())
}

// searchOrdersExhaustive runs the pruned + sharded exact search. Exact is
// always true on this path: pruning is admissible (it never cuts a
// candidate strictly better than a value already proved achievable), so
// the minimum over the searched family is preserved — and the returned
// schedule is the one the serial flat enumeration would keep.
func searchOrdersExhaustive(w *plan.Weighted, opts Options, newEval func() orderEval) (Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1 // serial default: the caller owns the parallelism budget
	}
	// A serial search runs the whole space as one shard — no per-shard
	// setup, and the shared incumbent degenerates to the local best. The
	// shard granularity cannot change the Result: shards are contiguous
	// ranges of the serial enumeration order, pruning is strict against
	// the shared incumbent, and the shard-order reduction keeps the first
	// strictly-best candidate — the same one for every partition (pinned
	// by the worker-count determinism suite). Small order spaces also run
	// as one serial shard even when workers were offered: below roughly
	// one bound-gated subtree per shard, the goroutine spawns and
	// per-shard evaluator scratch outweigh the work being split.
	minShards := 1
	if workers > 1 && orderCombinations(w, searchMinShards*boundMinSuffix) > searchMinShards*boundMinSuffix {
		minShards = searchMinShards
	}
	if minShards == 1 {
		workers = 1
	}
	// Shard prefixes are laid out over the SORTED slot sequence — the same
	// ordering every shard recomputes locally (the heuristic is a pure
	// function of static plan data, so all shards agree).
	probe := collectSlots(DefaultOrders(w))
	reordered := shouldReorder(probe)
	if reordered {
		sortSlots(probe)
	}
	sizes := make([]int, len(probe))
	for i, s := range probe {
		sizes[i] = len(s.side)
	}
	prefixes := orderShardPrefixes(sizes, minShards)
	inc := &searchIncumbent{}
	shards := par.Map(workers, len(prefixes), func(i int) orderShardResult {
		return runOrderShard(w, newEval(), prefixes[i], inc)
	})
	var best orderShardResult
	var total Stats
	for _, sh := range shards {
		total.add(sh.stats)
		if !sh.found {
			continue
		}
		// Natural nesting: first strictly-best in shard order (= serial
		// order). Reordered nesting: minimum (value, natural rank) — the
		// rank restores the serial-first winner among ties.
		if !best.found || sh.val.Less(best.val) ||
			(reordered && sh.val.Equal(best.val) && sh.rank < best.rank) {
			best = sh
		}
	}
	if opts.Stats != nil {
		*opts.Stats = total
	}
	if !best.found {
		return Result{}, fmt.Errorf("orchestrate: no feasible order assignment found")
	}
	return Result{List: best.list, Value: best.val, Exact: true}, nil
}

// runOrderShard enumerates the completions of one shard prefix in serial
// order, bounding each slot decision and keeping the first strictly-best
// feasible candidate.
func runOrderShard(w *plan.Weighted, eval orderEval, prefix shardPrefix, inc *searchIncumbent) orderShardResult {
	orders := DefaultOrders(w)
	slots := collectSlots(orders)
	// The ranker snapshot and the sort only happen when the gate fires —
	// the natural nesting pays nothing.
	var ranker *slotRanker
	reordered := shouldReorder(slots)
	if reordered {
		ranker = newSlotRanker(slots) // natural contents, before sorting
		sortSlots(slots)
	}
	suffix := suffixCombos(slots, 1<<30)
	floor := eval.floor()

	// decided side flags: trivial sides (≤ 1 comm) are decided from the
	// start; slot sides toggle as the recursion fixes them.
	decIn := make([]bool, w.N())
	decOut := make([]bool, w.N())
	for v := range decIn {
		decIn[v], decOut[v] = true, true
	}
	for _, s := range slots {
		if s.out {
			decOut[s.server] = false
		} else {
			decIn[s.server] = false
		}
	}
	setDecided := func(si int, d bool) {
		if slots[si].out {
			decOut[slots[si].server] = d
		} else {
			decIn[slots[si].server] = d
		}
	}

	// Apply the shard prefix: position-space permutations over the natural
	// side contents, exactly the state the serial enumeration is in when it
	// reaches this shard's range.
	for i, perm := range prefix.perms {
		side := slots[i].side
		natural := append([]int(nil), side...)
		for j, p := range perm {
			side[j] = natural[p]
		}
	}
	fixed := len(prefix.perms) - 1
	if fixed < 0 {
		fixed = 0
	}
	for i := 0; i < fixed; i++ {
		setDecided(i, true)
	}

	var r orderShardResult
	var incGen uint64
	var incOK bool
	var incVal rat.Rat

	// Incremental bound state: one full build per shard, then one-segment
	// patches as slots toggle. Patches are gated exactly like the bounds
	// (suffix ≥ boundMinSuffix); suffix counts are nonincreasing in slot
	// index, so every level at or above a bounding level has patched and the
	// graph is current wherever a bound runs. Shards where no bound can ever
	// fire (tiny slot spaces, no shard prefix) skip the build entirely.
	prepared := fixed > 0 || (len(slots) > 1 && suffix[0] >= boundMinSuffix)
	if prepared {
		eval.prepare(orders, decIn, decOut, &r.stats)
	}
	patchGate := func(si int) bool {
		return prepared && si+1 < len(slots) && suffix[si] >= boundMinSuffix
	}

	// pruneLimit is min(shared incumbent, shard-local best): a subtree
	// whose bound exceeds it STRICTLY cannot contain a candidate the
	// search would keep — pruned values above the shared incumbent never
	// win the reduction, and values above the local best never replace
	// the shard's kept candidate. Subtrees whose bound exactly ties the
	// limit are enumerated (see the file comment).
	pruneLimit := func() (rat.Rat, bool) {
		inc.load(&incGen, &incOK, &incVal)
		switch {
		case r.found && incOK:
			return rat.Min(r.val, incVal), true
		case r.found:
			return r.val, true
		case incOK:
			return incVal, true
		}
		return rat.Rat{}, false
	}

	// atFloor reports the shard's kept candidate already sits on the static
	// floor: no value can improve, only a smaller natural rank can replace
	// it. In the reordered nesting this powers rank pruning — the natural
	// fast path keeps the outright stop instead.
	atFloor := func() bool { return r.found && !r.val.Greater(floor) }

	// curRank is the rank contribution of the slots decided so far (exact
	// natural rank at a leaf, since open slots can always still reach their
	// digit-0 natural arrangement); meaningful only when reordered.
	stopped := false
	var rec func(si int, curRank int64)
	rec = func(si int, curRank int64) {
		if si == len(slots) {
			if reordered && atFloor() && curRank >= r.rank {
				// Value can't improve and the rank doesn't either: skip
				// the evaluation outright.
				return
			}
			r.stats.Evaluated++
			val, err := eval.value(orders)
			if err != nil {
				return
			}
			improved := !r.found || val.Less(r.val)
			tied := reordered && !improved && r.found && val.Equal(r.val) && curRank < r.rank
			if !improved && !tied {
				return
			}
			// A candidate strictly above the shared incumbent can
			// neither win the reduction nor tighten the pruning limit
			// below the incumbent, so its materialization is skipped.
			// Ties must materialize: the shard holding the serial-first
			// achiever of the final value wins the reduction, and the
			// incumbent may have been offered by a later shard. A stale
			// (higher) snapshot only materializes more, never less.
			inc.load(&incGen, &incOK, &incVal)
			if incOK && val.Greater(incVal) {
				return
			}
			l, lerr := eval.list(orders)
			if lerr != nil {
				return
			}
			r.list, r.val, r.rank, r.found = l, val, curRank, true
			inc.offer(val)
			if !reordered && !r.val.Greater(floor) {
				// Early exit: every remaining candidate is ≥ the static
				// floor = the shard's best; ties never replace it under
				// the natural nesting. A reordered nesting keeps going —
				// a later candidate at the floor may hold a smaller
				// natural rank — but prunes by rank instead.
				stopped = true
			}
			return
		}
		resume := 0
		if si == len(prefix.perms)-1 {
			resume = prefix.resume
		}
		permute(slots[si].side, resume, func() bool {
			setDecided(si, true)
			next := curRank
			if reordered {
				nat := slots[si].nat
				next += ranker.weight[nat] * permRank(ranker.natural[nat], slots[si].side, ranker.work)
				if atFloor() && next >= r.rank {
					// Every completion of this subtree ranks at least next:
					// with the value pinned to the floor, none can replace
					// the kept candidate.
					setDecided(si, false)
					return true
				}
			}
			prune := false
			if patchGate(si) {
				eval.patch(slots[si].server, orders, decIn, decOut)
				if limit, ok := pruneLimit(); ok {
					r.stats.Prefixes++
					if eval.exceedsIncremental(limit) {
						r.stats.Pruned++
						prune = true
					}
				}
			}
			if !prune {
				rec(si+1, next)
			}
			setDecided(si, false)
			if patchGate(si) {
				// Roll the segment back to the open form for the next
				// placement at this level (and correctness of any bound at
				// an outer level after return).
				eval.patch(slots[si].server, orders, decIn, decOut)
			}
			return !stopped
		})
	}

	// Shard-entry bound: the fully fixed prefix slots alone may already
	// rule the whole shard out.
	if fixed > 0 {
		if limit, ok := pruneLimit(); ok {
			r.stats.Prefixes++
			if eval.exceedsIncremental(limit) {
				r.stats.Pruned++
				return r
			}
		}
	}
	baseRank := int64(0)
	if reordered {
		for i := 0; i < fixed; i++ {
			nat := slots[i].nat
			baseRank += ranker.weight[nat] * permRank(ranker.natural[nat], slots[i].side, ranker.work)
		}
	}
	rec(fixed, baseRank)
	return r
}

// searchOrdersHeuristic runs the above-budget path: deterministic priority
// seeds and random samples refined by adjacent-swap climbing. Candidates
// are scored with value(); the operation list is materialized only on
// improvements over the best so far.
func searchOrdersHeuristic(w *plan.Weighted, opts Options, eval orderEval) (Result, error) {
	var best *oplist.List
	var bestVal rat.Rat
	// consider records a scored assignment, materializing its schedule; a
	// materialization failure means the candidate was infeasible all along
	// (the pre-fast-path evaluator errored during construction), so it is
	// skipped the same way.
	consider := func(o Orders, val rat.Rat) {
		if best == nil || val.Less(bestVal) {
			if l, err := eval.list(o); err == nil {
				best, bestVal = l, val
			}
		}
	}
	climb := func(cur Orders) {
		val, err := eval.value(cur)
		if err != nil {
			return
		}
		consider(cur, val)
		// Adjacent-swap hill climbing.
		for pass := 0; pass < opts.LocalSearchPasses; pass++ {
			improved := false
			for v := 0; v < w.N(); v++ {
				for _, side := range [][]int{cur.In[v], cur.Out[v]} {
					for i := 0; i+1 < len(side); i++ {
						side[i], side[i+1] = side[i+1], side[i]
						nv, err := eval.value(cur)
						if err == nil && nv.Less(val) {
							val = nv
							improved = true
							consider(cur, nv)
						} else {
							side[i], side[i+1] = side[i+1], side[i]
						}
					}
				}
			}
			if !improved {
				break
			}
		}
	}
	for _, seed := range heuristicOrderSeeds(w) {
		climb(seed.clone())
	}
	// Random restarts: sample order assignments, then climb from the best
	// sample found.
	if opts.RandomSamples > 0 {
		rng := rand.New(rand.NewSource(opts.Seed))
		var bestSample Orders
		var bestSampleVal rat.Rat
		haveSample := false
		for s := 0; s < opts.RandomSamples; s++ {
			cand := DefaultOrders(w)
			for v := 0; v < w.N(); v++ {
				rng.Shuffle(len(cand.In[v]), func(i, j int) {
					cand.In[v][i], cand.In[v][j] = cand.In[v][j], cand.In[v][i]
				})
				rng.Shuffle(len(cand.Out[v]), func(i, j int) {
					cand.Out[v][i], cand.Out[v][j] = cand.Out[v][j], cand.Out[v][i]
				})
			}
			val, err := eval.value(cand)
			if err != nil {
				continue
			}
			consider(cand, val)
			if !haveSample || val.Less(bestSampleVal) {
				bestSample, bestSampleVal, haveSample = cand.clone(), val, true
			}
		}
		if haveSample {
			climb(bestSample)
		}
	}
	if best == nil {
		return Result{}, fmt.Errorf("orchestrate: no feasible order assignment found")
	}
	return Result{List: best, Value: bestVal, Exact: false}, nil
}
