package cliopt

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/solve"
)

func TestModel(t *testing.T) {
	cases := map[string]plan.Model{
		"overlap": plan.Overlap, "INORDER": plan.InOrder, "OutOrder": plan.OutOrder,
	}
	for in, want := range cases {
		got, err := Model(in)
		if err != nil || got != want {
			t.Errorf("Model(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Model("bogus"); err == nil {
		t.Error("bogus model accepted")
	}
}

func TestObjective(t *testing.T) {
	cases := map[string]solve.Objective{
		"period": solve.PeriodObjective, "Latency": solve.LatencyObjective,
	}
	for in, want := range cases {
		got, err := Objective(in)
		if err != nil || got != want {
			t.Errorf("Objective(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Objective("bogus"); err == nil {
		t.Error("bogus objective accepted")
	}
}

func TestMethod(t *testing.T) {
	cases := map[string]solve.Method{
		"auto": solve.Auto, "greedy-chain": solve.GreedyChain, "exact-chain": solve.ExactChain,
		"exact-forest": solve.ExactForest, "exact-dag": solve.ExactDAG, "hill-climb": solve.HillClimb,
		"bnb": solve.BranchBound, "Branch-Bound": solve.BranchBound,
	}
	for in, want := range cases {
		got, err := Method(in)
		if err != nil || got != want {
			t.Errorf("Method(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Method("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestFamily(t *testing.T) {
	cases := map[string]solve.Family{
		"auto": solve.FamilyAuto, "chain": solve.FamilyChain,
		"Forest": solve.FamilyForest, "DAG": solve.FamilyDAG,
	}
	for in, want := range cases {
		got, err := Family(in)
		if err != nil || got != want {
			t.Errorf("Family(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Family("bogus"); err == nil {
		t.Error("bogus family accepted")
	}
}

// TestRoundTrips pins the contract that every parser accepts the String()
// form of every value it can return, so reports and requests interoperate.
func TestRoundTrips(t *testing.T) {
	for _, m := range plan.Models {
		if got, err := Model(m.String()); err != nil || got != m {
			t.Errorf("Model(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, o := range []solve.Objective{solve.PeriodObjective, solve.LatencyObjective} {
		if got, err := Objective(o.String()); err != nil || got != o {
			t.Errorf("Objective(%q) = %v, %v", o.String(), got, err)
		}
	}
	for _, m := range []solve.Method{solve.Auto, solve.GreedyChain, solve.ExactChain,
		solve.ExactForest, solve.ExactDAG, solve.HillClimb, solve.BranchBound} {
		if got, err := Method(m.String()); err != nil || got != m {
			t.Errorf("Method(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, f := range []solve.Family{solve.FamilyAuto, solve.FamilyChain, solve.FamilyForest, solve.FamilyDAG} {
		if got, err := Family(f.String()); err != nil || got != f {
			t.Errorf("Family(%q) = %v, %v", f.String(), got, err)
		}
	}
}
