// Package cliopt parses the option vocabulary shared by the command-line
// tools and the filterd planning service: communication models, objectives,
// search methods and branch-and-bound families. Parsing is case-insensitive
// and every parser round-trips the String() form of the value it returns,
// so CLI flags, HTTP request fields and report output all speak the same
// names.
package cliopt

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/solve"
)

// Model parses a communication-model name: overlap, inorder, outorder.
func Model(s string) (plan.Model, error) {
	switch strings.ToLower(s) {
	case "overlap":
		return plan.Overlap, nil
	case "inorder":
		return plan.InOrder, nil
	case "outorder":
		return plan.OutOrder, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want overlap, inorder or outorder)", s)
	}
}

// Objective parses an objective name: period or latency.
func Objective(s string) (solve.Objective, error) {
	switch strings.ToLower(s) {
	case "period":
		return solve.PeriodObjective, nil
	case "latency":
		return solve.LatencyObjective, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want period or latency)", s)
	}
}

// Method parses a search-method name: auto, greedy-chain, exact-chain,
// exact-forest, exact-dag, hill-climb, bnb (alias branch-bound).
func Method(s string) (solve.Method, error) {
	switch strings.ToLower(s) {
	case "auto":
		return solve.Auto, nil
	case "greedy-chain":
		return solve.GreedyChain, nil
	case "exact-chain":
		return solve.ExactChain, nil
	case "exact-forest":
		return solve.ExactForest, nil
	case "exact-dag":
		return solve.ExactDAG, nil
	case "hill-climb":
		return solve.HillClimb, nil
	case "bnb", "branch-bound":
		return solve.BranchBound, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

// Family parses a branch-and-bound structural-family name: auto, chain,
// forest, dag.
func Family(s string) (solve.Family, error) {
	switch strings.ToLower(s) {
	case "auto":
		return solve.FamilyAuto, nil
	case "chain":
		return solve.FamilyChain, nil
	case "forest":
		return solve.FamilyForest, nil
	case "dag":
		return solve.FamilyDAG, nil
	default:
		return 0, fmt.Errorf("unknown family %q (want auto, chain, forest or dag)", s)
	}
}
