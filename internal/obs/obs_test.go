package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSanitizeID(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"abc123", "abc123"},
		{"req.id-4_x", "req.id-4_x"},
		{"has space", ""},
		{"semi;colon", ""},
		{"new\nline", ""},
		{"<script>", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
	}
	for _, c := range cases {
		if got := SanitizeID(c.in); got != c.want {
			t.Errorf("SanitizeID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNewIDShape(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("ID lengths %d, %d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatalf("two fresh IDs collided: %s", a)
	}
	if SanitizeID(a) != a {
		t.Fatalf("generated ID %q does not survive its own sanitizer", a)
	}
}

// TestRingEvictionAndOrder fills a 3-slot ring with five spans and checks
// the snapshot keeps the newest three, most recent first.
func TestRingEvictionAndOrder(t *testing.T) {
	tr := NewTracer(3)
	for i, id := range []string{"a", "b", "c", "d", "e"} {
		sp := tr.Start("GET /x", id)
		sp.End(200 + i)
	}
	if got := tr.Total(); got != 5 {
		t.Fatalf("total %d, want 5", got)
	}
	views := tr.Snapshot()
	if len(views) != 3 {
		t.Fatalf("snapshot length %d, want 3", len(views))
	}
	for i, want := range []string{"e", "d", "c"} {
		if views[i].ID != want {
			t.Errorf("snapshot[%d].ID = %q, want %q", i, views[i].ID, want)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("GET /x", "once")
	sp.End(200)
	sp.End(500) // must not double-record or overwrite the status
	if got := tr.Total(); got != 1 {
		t.Fatalf("total %d after double End, want 1", got)
	}
	v := tr.Snapshot()[0]
	if v.Status != 200 {
		t.Fatalf("status %d, want the first End's 200", v.Status)
	}
}

func TestSpanAnnotations(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start("POST /v1/plan", "annotated")
	sp.SetHash("deadbeef", "deadbeef|inorder|period")
	sp.SetOutcome("hit", "cache")
	sp.SetShard(7, "http://peer")
	sp.SetServedBy("http://peer")
	sp.Observe(PhaseCanon, 2*time.Millisecond)
	sp.Observe(PhaseCanon, 3*time.Millisecond) // accumulates
	sp.SetSolver(10, 4, 6, 2)
	sp.SetError("boom")
	sp.End(500)
	v := tr.Snapshot()[0]
	if v.Hash != "deadbeef" || v.Outcome != "hit" || v.Source != "cache" {
		t.Errorf("hash/outcome/source = %q/%q/%q", v.Hash, v.Outcome, v.Source)
	}
	if v.Shard != 7 || v.Owner != "http://peer" || v.ServedBy != "http://peer" {
		t.Errorf("shard/owner/served_by = %v/%q/%q", v.Shard, v.Owner, v.ServedBy)
	}
	if got := v.PhaseSeconds["canon"]; got != (5 * time.Millisecond).Seconds() {
		t.Errorf("canon phase %v, want 0.005", got)
	}
	if v.Solver == nil || v.Solver.Expanded != 10 || v.Solver.Pruned != 4 || v.Solver.Evals != 6 || v.Solver.MemoHits != 2 {
		t.Errorf("solver view %+v", v.Solver)
	}
	if v.Error != "boom" || v.Status != 500 {
		t.Errorf("error/status = %q/%d", v.Error, v.Status)
	}
}

// TestNilSafety drives every span and tracer method through nil receivers
// and disabled tracers — the hot path calls them unconditionally.
func TestNilSafety(t *testing.T) {
	var sp *Span
	if sp.ID() != "" {
		t.Error("nil span ID not empty")
	}
	sp.SetHash("h", "k")
	sp.SetOutcome("miss", "solve")
	sp.SetShard(1, "o")
	sp.SetServedBy("x")
	sp.Observe(PhaseSolve, time.Millisecond)
	sp.SetSolver(1, 2, 3, 4)
	sp.SetError("e")
	sp.End(200)

	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	if tr.Total() != 0 || tr.Capacity() != 0 || tr.Snapshot() != nil {
		t.Error("nil tracer not empty")
	}
	s2 := tr.Start("GET /x", "id")
	s2.SetOutcome("miss", "solve")
	s2.End(200) // records nowhere

	disabled := NewTracer(0)
	if disabled.Enabled() {
		t.Error("zero-capacity tracer enabled")
	}
	disabled.Start("GET /x", "id").End(200)
	if disabled.Total() != 0 {
		t.Error("disabled tracer recorded a span")
	}
}

func TestMiddlewareGeneratesAndEchoes(t *testing.T) {
	tr := NewTracer(4)
	h := Middleware(tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := From(r.Context())
		if sp == nil {
			t.Error("handler context has no span")
			return
		}
		// The header copy carries the canonical ID for proxy layers.
		if got := r.Header.Get(HeaderRequestID); got != sp.ID() {
			t.Errorf("request header %q != span ID %q", got, sp.ID())
		}
		w.WriteHeader(http.StatusTeapot)
	}))

	// No inbound ID: one is generated and echoed.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	id := rec.Header().Get(HeaderRequestID)
	if id == "" || SanitizeID(id) != id {
		t.Fatalf("generated header %q", id)
	}
	if v := tr.Snapshot()[0]; v.ID != id || v.Status != http.StatusTeapot || v.Route != "GET /v1/stats" {
		t.Fatalf("span %+v, want id=%s status=418", v, id)
	}

	// Valid inbound ID: honored verbatim.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	req.Header.Set(HeaderRequestID, "client-id-42")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(HeaderRequestID); got != "client-id-42" {
		t.Fatalf("inbound ID not echoed: %q", got)
	}

	// Malformed inbound ID: replaced, never reflected back.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/v1/stats", nil)
	req.Header.Set(HeaderRequestID, "bad id;\n")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(HeaderRequestID); got == "" || SanitizeID(got) != got || got == "bad id;\n" {
		t.Fatalf("malformed inbound ID handled as %q", got)
	}
}

// TestMiddlewareEchoBeforeHandler pins the shed contract: the response
// carries the ID even when the handler writes an error without touching
// headers (429/503 sheds, panicking-adjacent paths).
func TestMiddlewareEchoBeforeHandler(t *testing.T) {
	h := Middleware(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/plan", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get(HeaderRequestID) == "" {
		t.Fatal("shed response lost the request ID")
	}
}

// TestMiddlewareNestedPassthrough pins the router-over-service layering:
// the inner middleware must not start a second span or mint a second ID.
func TestMiddlewareNestedPassthrough(t *testing.T) {
	innerTracer := NewTracer(4)
	var innerSpan *Span
	inner := Middleware(innerTracer, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		innerSpan = From(r.Context())
		w.WriteHeader(http.StatusOK)
	}))
	outerTracer := NewTracer(4)
	var outerSpan *Span
	outer := Middleware(outerTracer, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		outerSpan = From(r.Context())
		inner.ServeHTTP(w, r)
	}))
	rec := httptest.NewRecorder()
	outer.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if innerSpan == nil || innerSpan != outerSpan {
		t.Fatal("nested middleware did not reuse the outer span")
	}
	if got := innerTracer.Total(); got != 0 {
		t.Fatalf("inner tracer recorded %d spans, want 0 (outer owns the span)", got)
	}
	if got := outerTracer.Total(); got != 1 {
		t.Fatalf("outer tracer recorded %d spans, want 1", got)
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(2)
	tr.Start("GET /x", "h1").End(200)
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var doc struct {
		Enabled  bool       `json:"enabled"`
		Capacity int        `json:"capacity"`
		Total    int64      `json:"total"`
		Spans    []SpanView `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Enabled || doc.Capacity != 2 || doc.Total != 1 || len(doc.Spans) != 1 {
		t.Fatalf("document %+v", doc)
	}

	// Disabled (nil) tracer still answers, with an empty document.
	var nilTr *Tracer
	rec = httptest.NewRecorder()
	nilTr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Enabled || doc.Spans == nil || len(doc.Spans) != 0 {
		t.Fatalf("disabled document %+v", doc)
	}
}

func TestFailoverMark(t *testing.T) {
	ctx := httptest.NewRequest("GET", "/", nil).Context()
	if IsFailover(ctx) {
		t.Fatal("fresh context marked failover")
	}
	if !IsFailover(MarkFailover(ctx)) {
		t.Fatal("marked context not reported")
	}
	if IsFailover(nil) {
		t.Fatal("nil context marked failover")
	}
}
