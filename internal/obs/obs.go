// Package obs is the observability spine of the planning service: request
// IDs, per-request spans, and a bounded in-process trace ring, all
// dependency-free (DESIGN.md §7).
//
// Every HTTP request entering the router or a replica gets one ID —
// honoring an inbound X-Filterd-Request-Id so a client-chosen or
// router-assigned ID survives the whole forwarding chain — and one Span
// carried in the request context. The layers below annotate that span as
// the request traverses them: the router records shard, owner and
// served-by; the service records the canonical hash, the cache outcome and
// the phase timings (canon / cache / queue / solve / orchestrate / store);
// the solver's search-effort counters are attached when a solve actually
// ran. Ended spans land in a bounded ring buffer served as JSON at
// GET /debug/requests — the flight recorder for "what did request X cost
// and who answered it".
//
// Tracing is observational by construction: a Span never influences
// routing, caching or solving, so answers are bit-identical with tracing
// on, off, or absent. All Span methods are nil-receiver-safe no-ops and
// allocation-free — code below the HTTP layer annotates unconditionally
// without caring whether a span exists, and the cache-hit hot path stays
// zero-allocation when tracing is disabled (pinned by the service's
// AllocBudget guard).
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"runtime/debug"
	"sync"
	"time"
)

// HeaderRequestID is the request-correlation header: honored inbound,
// echoed on every response, and propagated on every forward.
const HeaderRequestID = "X-Filterd-Request-Id"

// maxIDLen bounds an inbound request ID; longer (or non-token) values are
// replaced, so a hostile client cannot inject log noise or unbounded
// strings through the header.
const maxIDLen = 64

// NewID returns a fresh request ID: 16 hex characters of crypto/rand.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// requests flowing (correlation degrades, serving does not).
		return "00000000826f7273"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeID validates an inbound request ID: IDs up to 64 characters of
// [A-Za-z0-9._-] pass through unchanged, anything else (empty included)
// returns "" and the caller generates a fresh one.
func SanitizeID(s string) string {
	if len(s) == 0 || len(s) > maxIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}

// Phase indexes one timed segment of a request's life. The enum indexes a
// fixed array in Span, so recording a phase is a field write — no string
// keys, no map, no allocation.
type Phase int

const (
	// PhaseCanon is instance canonicalization (hashing included).
	PhaseCanon Phase = iota
	// PhaseCache is the plan-cache interaction: for a hit, essentially the
	// whole service time; for a miss, the singleflight bookkeeping around
	// the solve.
	PhaseCache
	// PhaseQueue is the wait between solve admission and a pool worker
	// picking the solve up.
	PhaseQueue
	// PhaseSolve is the solver wall time (orchestration included).
	PhaseSolve
	// PhaseOrchestrate is the orchestration share of the solve: the time
	// spent scoring candidate graphs (a subset of PhaseSolve).
	PhaseOrchestrate
	// PhaseStore is the write-through persistence of a fresh solve.
	PhaseStore

	phaseCount
)

// String names the phase for the /debug/requests JSON and metric labels.
func (p Phase) String() string {
	switch p {
	case PhaseCanon:
		return "canon"
	case PhaseCache:
		return "cache"
	case PhaseQueue:
		return "queue"
	case PhaseSolve:
		return "solve"
	case PhaseOrchestrate:
		return "orchestrate"
	case PhaseStore:
		return "store"
	default:
		return "unknown"
	}
}

// Span is one request's trace record. Created by Middleware, carried in
// the request context, annotated by the routing and serving layers, and
// recorded into the creating Tracer's ring at End. All methods are safe
// for concurrent use (batch fan-out and pool workers touch one span) and
// are nil-receiver-safe no-ops, so annotation sites never branch on
// whether tracing is attached.
type Span struct {
	tracer *Tracer

	mu       sync.Mutex
	id       string
	route    string
	start    time.Time
	duration time.Duration
	status   int
	hash     string
	key      string
	outcome  string
	source   string
	shard    int
	owner    string
	servedBy string
	errMsg   string
	phases   [phaseCount]time.Duration
	// Solver effort of the serving solve (zero when served without one).
	expanded, pruned, evals, memoHits int64
	ended                             bool
}

// ID returns the request ID ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// SetHash records the canonical hash and full cache key.
func (s *Span) SetHash(hash, key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.hash, s.key = hash, key
	s.mu.Unlock()
}

// SetOutcome records how the request was served: the cache outcome
// (miss/hit/coalesced) and the plan source (cache/store/solve/failover).
func (s *Span) SetOutcome(outcome, source string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.outcome, s.source = outcome, source
	s.mu.Unlock()
}

// SetShard records the routing decision: the shard index and its owner.
func (s *Span) SetShard(shard int, owner string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.shard, s.owner = shard, owner
	s.mu.Unlock()
}

// SetServedBy records who produced the answer (a peer URL, or the
// router's "unroutable"/"local-failover" verdicts).
func (s *Span) SetServedBy(by string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.servedBy = by
	s.mu.Unlock()
}

// SetSolver records the search effort behind the answer.
func (s *Span) SetSolver(expanded, pruned, evals, memoHits int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.expanded, s.pruned, s.evals, s.memoHits = expanded, pruned, evals, memoHits
	s.mu.Unlock()
}

// SetError records the request's error message.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = msg
	s.mu.Unlock()
}

// Observe accumulates d into a phase timer (phases can be visited more
// than once — e.g. the drift path solves twice).
func (s *Span) Observe(p Phase, d time.Duration) {
	if s == nil || p < 0 || p >= phaseCount {
		return
	}
	s.mu.Lock()
	s.phases[p] += d
	s.mu.Unlock()
}

// End closes the span with the response status and records it into the
// creating tracer's ring (idempotent; only the first End lands).
func (s *Span) End(status int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.status = status
	s.duration = time.Since(s.start)
	t := s.tracer
	s.mu.Unlock()
	if t.Enabled() {
		t.record(s)
	}
}

// SolverView is the search-effort block of a SpanView.
type SolverView struct {
	Expanded int64 `json:"expanded"`
	Pruned   int64 `json:"pruned"`
	Evals    int64 `json:"orchestrations"`
	MemoHits int64 `json:"memo_hits"`
}

// SpanView is the JSON form of one recorded span.
type SpanView struct {
	ID              string             `json:"id"`
	Route           string             `json:"route"`
	Start           time.Time          `json:"start"`
	DurationSeconds float64            `json:"duration_seconds"`
	Status          int                `json:"status"`
	Hash            string             `json:"hash,omitempty"`
	Key             string             `json:"key,omitempty"`
	Outcome         string             `json:"outcome,omitempty"`
	Source          string             `json:"source,omitempty"`
	Shard           int                `json:"shard"`
	Owner           string             `json:"owner,omitempty"`
	ServedBy        string             `json:"served_by,omitempty"`
	Error           string             `json:"error,omitempty"`
	PhaseSeconds    map[string]float64 `json:"phase_seconds,omitempty"`
	Solver          *SolverView        `json:"solver,omitempty"`
}

// view snapshots the span for reporting.
func (s *Span) view() SpanView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := SpanView{
		ID:              s.id,
		Route:           s.route,
		Start:           s.start,
		DurationSeconds: s.duration.Seconds(),
		Status:          s.status,
		Hash:            s.hash,
		Key:             s.key,
		Outcome:         s.outcome,
		Source:          s.source,
		Shard:           s.shard,
		Owner:           s.owner,
		ServedBy:        s.servedBy,
		Error:           s.errMsg,
	}
	for p := Phase(0); p < phaseCount; p++ {
		if s.phases[p] > 0 {
			if v.PhaseSeconds == nil {
				v.PhaseSeconds = make(map[string]float64, int(phaseCount))
			}
			v.PhaseSeconds[p.String()] = s.phases[p].Seconds()
		}
	}
	if s.expanded != 0 || s.pruned != 0 || s.evals != 0 || s.memoHits != 0 {
		v.Solver = &SolverView{Expanded: s.expanded, Pruned: s.pruned, Evals: s.evals, MemoHits: s.memoHits}
	}
	return v
}

// Tracer owns the bounded ring of ended spans. A nil or zero-capacity
// tracer is "tracing disabled": Start still issues spans (the request ID
// must exist regardless), End simply drops them.
type Tracer struct {
	mu    sync.Mutex
	buf   []*Span
	next  int
	total int64
	cap   int
}

// NewTracer returns a tracer keeping the most recent capacity spans
// (capacity <= 0: tracing disabled — spans are issued but never kept).
func NewTracer(capacity int) *Tracer {
	if capacity < 0 {
		capacity = 0
	}
	return &Tracer{cap: capacity}
}

// Enabled reports whether ended spans are recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.cap > 0 }

// Capacity returns the ring bound (0 when disabled).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Start issues the span of one request. Safe on a nil tracer — the span
// works normally and is dropped at End.
func (t *Tracer) Start(route, id string) *Span {
	return &Span{tracer: t, route: route, id: id, start: time.Now(), shard: -1}
}

// record appends an ended span to the ring, evicting the oldest beyond
// capacity.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % t.cap
	}
	t.total++
}

// Total counts the spans ever recorded (evicted ones included).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the recorded spans, most recent first.
func (t *Tracer) Snapshot() []SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.buf))
	// Ring order: buf[next:] are the oldest entries, buf[:next] the newest.
	for i := 0; i < len(t.buf); i++ {
		spans = append(spans, t.buf[(t.next+i)%len(t.buf)])
	}
	t.mu.Unlock()
	out := make([]SpanView, 0, len(spans))
	for i := len(spans) - 1; i >= 0; i-- {
		out = append(out, spans[i].view())
	}
	return out
}

// Handler serves the ring as JSON — the GET /debug/requests endpoint.
// Always answers (an empty, "enabled": false document when tracing is
// disabled), so probing the endpoint never needs to special-case 404s.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := struct {
			Enabled  bool       `json:"enabled"`
			Capacity int        `json:"capacity"`
			Total    int64      `json:"total"`
			Spans    []SpanView `json:"spans"`
		}{
			Enabled:  t.Enabled(),
			Capacity: t.Capacity(),
			Total:    t.Total(),
			Spans:    t.Snapshot(),
		}
		if out.Spans == nil {
			out.Spans = []SpanView{}
		}
		writeJSON(w, out)
	})
}

// writeJSON writes v as an indented JSON document (a debug endpoint —
// human eyes first).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type ctxKey int

const (
	spanKey ctxKey = iota
	failoverKey
)

// WithSpan attaches a span to a context.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// From returns the span carried by ctx, or nil. Reading is
// allocation-free, so hot paths may call it unconditionally.
func From(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// MarkFailover marks the context of a request the router failed over to
// its local service, so the serving layer reports source "failover"
// regardless of whether tracing is enabled. Only the (rare) failover path
// pays the context allocation.
func MarkFailover(ctx context.Context) context.Context {
	return context.WithValue(ctx, failoverKey, true)
}

// IsFailover reports whether MarkFailover ran on this request's context.
func IsFailover(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	b, _ := ctx.Value(failoverKey).(bool)
	return b
}

// statusRecorder captures the committed status for Span.End, forwarding
// Flush so traced SSE streams still flush event by event.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusRecorder) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// Middleware is the request-ID and span boundary of one HTTP surface:
// it resolves the request ID (inbound header honored, sanitized, or
// freshly generated), echoes it on the response BEFORE the handler runs —
// so sheds, failures and streamed responses all carry it — starts a span
// in the request context, and ends the span with the committed status.
//
// Layered surfaces compose: when the context already carries a span (the
// cluster router serving its embedded local service), the inner middleware
// passes straight through — one request, one ID, one span, annotated by
// every layer it crossed.
func Middleware(t *Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if From(r.Context()) != nil {
			next.ServeHTTP(w, r)
			return
		}
		id := SanitizeID(r.Header.Get(HeaderRequestID))
		if id == "" {
			id = NewID()
			// Downstream layers (forwards, logs) read the canonical ID from
			// the span; the header copy keeps body-level proxying honest.
			r.Header.Set(HeaderRequestID, id)
		}
		w.Header().Set(HeaderRequestID, id)
		sp := t.Start(r.Method+" "+r.URL.Path, id)
		sw := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(WithSpan(r.Context(), sp)))
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		sp.End(code)
	})
}

// BuildInfo returns the binary's module version and VCS revision
// (shortened), from runtime/debug.ReadBuildInfo. Builds without VCS
// stamping report ("devel", "unknown").
func BuildInfo() (version, revision string) {
	version, revision = "devel", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return version, revision
}
