package eventgraph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
)

func TestTwoNodeCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, rat.I(3), 0)
	g.AddEdge(1, 0, rat.I(2), 1)
	res, err := g.MaximumCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.I(5)) {
		t.Fatalf("MCR = %s, want 5", res.Ratio)
	}
	if len(res.CriticalCycle) != 2 {
		t.Fatalf("critical cycle = %v", res.CriticalCycle)
	}
	pi, err := g.Potentials(rat.I(5))
	if err != nil {
		t.Fatal(err)
	}
	// begin(1) ≥ begin(0)+3; begin(0) ≥ begin(1)+2−5.
	if !pi[0].Equal(rat.Zero) || !pi[1].Equal(rat.I(3)) {
		t.Fatalf("potentials = %v", pi)
	}
	if _, err := g.Potentials(rat.New(49, 10)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("λ=4.9 must be infeasible, got %v", err)
	}
	if !g.FeasiblePeriod(rat.I(6)) || g.FeasiblePeriod(rat.I(4)) {
		t.Fatal("FeasiblePeriod wrong")
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0, rat.I(4), 1)
	res, err := g.MaximumCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.I(4)) {
		t.Fatalf("MCR = %s", res.Ratio)
	}
}

func TestFractionalRatio(t *testing.T) {
	// Cycle with 3 delay-units over 2 tokens: ratio 23/3 requires tokens...
	// build Σd = 23, Σh = 3.
	g := New(3)
	g.AddEdge(0, 1, rat.I(10), 1)
	g.AddEdge(1, 2, rat.I(6), 1)
	g.AddEdge(2, 0, rat.I(7), 1)
	res, err := g.MaximumCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.New(23, 3)) {
		t.Fatalf("MCR = %s, want 23/3", res.Ratio)
	}
}

func TestMaxOverMultipleCycles(t *testing.T) {
	// Two disjoint cycles with ratios 3 and 7: MCR must be 7.
	g := New(4)
	g.AddEdge(0, 1, rat.I(2), 1)
	g.AddEdge(1, 0, rat.I(4), 1) // ratio 3
	g.AddEdge(2, 3, rat.I(10), 1)
	g.AddEdge(3, 2, rat.I(4), 1) // ratio 7
	res, err := g.MaximumCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.I(7)) {
		t.Fatalf("MCR = %s, want 7", res.Ratio)
	}
}

func TestSharedNodeCycles(t *testing.T) {
	// Two cycles through node 0 inside one SCC: 0->1->0 ratio 5,
	// 0->2->0 ratio 9/2.
	g := New(3)
	g.AddEdge(0, 1, rat.I(4), 0)
	g.AddEdge(1, 0, rat.I(6), 2)
	g.AddEdge(0, 2, rat.I(8), 1)
	g.AddEdge(2, 0, rat.One, 1)
	res, err := g.MaximumCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(rat.I(5)) {
		t.Fatalf("MCR = %s, want 5", res.Ratio)
	}
}

func TestZeroTokenCycleDetected(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, rat.One, 0)
	g.AddEdge(1, 0, rat.One, 0)
	if _, err := g.MaximumCycleRatio(); !errors.Is(err, ErrZeroTokenCycle) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Potentials(rat.I(100)); !errors.Is(err, ErrZeroTokenCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestAcyclicGraph(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, rat.I(5), 0)
	g.AddEdge(1, 2, rat.I(7), 0)
	if _, err := g.MaximumCycleRatio(); !errors.Is(err, ErrNoCycle) {
		t.Fatalf("err = %v", err)
	}
	pi, err := g.Potentials(rat.One)
	if err != nil {
		t.Fatal(err)
	}
	if !pi[2].Equal(rat.I(12)) {
		t.Fatalf("potentials = %v", pi)
	}
	if _, err := g.BruteForceMCR(); !errors.Is(err, ErrNoCycle) {
		t.Fatalf("brute err = %v", err)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, rat.One, 0)
	g.AddEdge(0, 1, rat.I(9), 1) // slower but with a token
	g.AddEdge(1, 0, rat.One, 1)
	res, err := g.MaximumCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	// Cycles: (1+1)/1 = 2 and (9+1)/2 = 5 -> 5.
	if !res.Ratio.Equal(rat.I(5)) {
		t.Fatalf("MCR = %s, want 5", res.Ratio)
	}
}

func TestAddEdgePanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(1).AddEdge(0, 1, rat.One, 0) },
		func() { New(1).AddEdge(0, 0, rat.I(-1), 0) },
		func() { New(1).AddEdge(0, 0, rat.One, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCriticalCycleRatioConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		g := randomEventGraph(rng, 2+rng.Intn(6))
		res, err := g.MaximumCycleRatio()
		if errors.Is(err, ErrNoCycle) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		sumD, sumH := rat.Zero, 0
		for _, ei := range res.CriticalCycle {
			sumD = sumD.Add(g.edges[ei].Delay)
			sumH += g.edges[ei].Tokens
		}
		if sumH == 0 {
			t.Fatal("critical cycle without tokens")
		}
		if !sumD.Div(rat.I(int64(sumH))).Equal(res.Ratio) {
			t.Fatalf("critical cycle ratio mismatch: %s vs %s", sumD.Div(rat.I(int64(sumH))), res.Ratio)
		}
		// The cycle edges must chain head to tail.
		for i, ei := range res.CriticalCycle {
			next := res.CriticalCycle[(i+1)%len(res.CriticalCycle)]
			if g.edges[ei].To != g.edges[next].From {
				t.Fatal("critical cycle edges do not chain")
			}
		}
	}
}

// randomEventGraph builds a random event graph whose zero-token edges only
// go forward (index order), guaranteeing no zero-token cycle.
func randomEventGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	edges := 1 + rng.Intn(3*n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		delay := rat.New(rng.Int63n(20), 1+rng.Int63n(4))
		if u < v && rng.Intn(2) == 0 {
			g.AddEdge(u, v, delay, 0)
		} else {
			g.AddEdge(u, v, delay, 1+rng.Intn(2))
		}
	}
	return g
}

func TestQuickHowardMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(23))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEventGraph(rng, 2+rng.Intn(6))
		howard, err1 := g.MaximumCycleRatio()
		brute, err2 := g.BruteForceMCR()
		if err1 != nil || err2 != nil {
			return errors.Is(err1, ErrNoCycle) && errors.Is(err2, ErrNoCycle)
		}
		return howard.Ratio.Equal(brute.Ratio)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickPotentialsSatisfyConstraints(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(29))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEventGraph(rng, 2+rng.Intn(6))
		res, err := g.MaximumCycleRatio()
		lambda := rat.I(1 + rng.Int63n(5))
		if err == nil {
			lambda = res.Ratio.Add(rat.New(rng.Int63n(3), 1))
		}
		pi, err := g.Potentials(lambda)
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			lhs := pi[e.To]
			rhs := pi[e.From].Add(e.Delay).Sub(lambda.MulInt(int64(e.Tokens)))
			if lhs.Less(rhs) {
				return false
			}
		}
		for _, p := range pi {
			if p.Sign() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMCRIsExactFeasibilityThreshold(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomEventGraph(rng, 2+rng.Intn(5))
		res, err := g.MaximumCycleRatio()
		if errors.Is(err, ErrNoCycle) {
			return g.FeasiblePeriod(rat.Zero)
		}
		if err != nil {
			return false
		}
		eps := rat.New(1, 1000)
		return g.FeasiblePeriod(res.Ratio) && !g.FeasiblePeriod(res.Ratio.Sub(eps))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkHowardMCR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomEventGraph(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MaximumCycleRatio(); err != nil && !errors.Is(err, ErrNoCycle) {
			b.Fatal(err)
		}
	}
}

func BenchmarkPotentials(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomEventGraph(rng, 200)
	res, err := g.MaximumCycleRatio()
	if err != nil {
		b.Skip("no cycle")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Potentials(res.Ratio); err != nil {
			b.Fatal(err)
		}
	}
}

// TestResetMatchesFreshGraph pins the scratch-reuse contract of the order
// search: a graph rebuilt through Reset must analyze exactly like a fresh
// one — same MCR (ratio and critical cycle), same potentials — whatever
// the graph it held before, including across size changes.
func TestResetMatchesFreshGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reused := New(0)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		seed := rng.Int63()
		fresh := randomEventGraph(rand.New(rand.NewSource(seed)), n)
		reused.Reset(n)
		for _, e := range randomEventGraph(rand.New(rand.NewSource(seed)), n).Edges() {
			reused.AddEdge(e.From, e.To, e.Delay, e.Tokens)
		}
		fr, ferr := fresh.MaximumCycleRatio()
		rr, rerr := reused.MaximumCycleRatio()
		if !errors.Is(rerr, ferr) {
			t.Fatalf("trial %d: MCR errors diverge: fresh %v, reused %v", trial, ferr, rerr)
		}
		if ferr != nil {
			continue
		}
		if !fr.Ratio.Equal(rr.Ratio) {
			t.Fatalf("trial %d: ratio %s != %s", trial, fr.Ratio, rr.Ratio)
		}
		if len(fr.CriticalCycle) != len(rr.CriticalCycle) {
			t.Fatalf("trial %d: critical cycles differ: %v vs %v", trial, fr.CriticalCycle, rr.CriticalCycle)
		}
		for i := range fr.CriticalCycle {
			if fr.CriticalCycle[i] != rr.CriticalCycle[i] {
				t.Fatalf("trial %d: critical cycles differ: %v vs %v", trial, fr.CriticalCycle, rr.CriticalCycle)
			}
		}
		fp, err1 := fresh.Potentials(fr.Ratio)
		rp, err2 := reused.Potentials(rr.Ratio)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: potentials failed: %v / %v", trial, err1, err2)
		}
		for v := range fp {
			if !fp[v].Equal(rp[v]) {
				t.Fatalf("trial %d: potential %d: %s != %s", trial, v, fp[v], rp[v])
			}
		}
	}
}

// TestPotentialsIntoReusesBuffer pins the buffer contract: the result
// matches Potentials, a big-enough buffer is reused in place, and error
// paths hand the (possibly grown) buffer back instead of dropping it.
func TestPotentialsIntoReusesBuffer(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, rat.I(2), 0)
	g.AddEdge(1, 2, rat.I(3), 0)
	g.AddEdge(2, 0, rat.I(1), 1)
	want, err := g.Potentials(rat.I(10))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]rat.Rat, 8)
	got, err := g.PotentialsInto(buf, rat.I(10))
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("big-enough buffer was not reused")
	}
	for v := range want {
		if !want[v].Equal(got[v]) {
			t.Fatalf("potential %d: %s != %s", v, want[v], got[v])
		}
	}
	// Infeasible period: the buffer must come back for reuse.
	back, err := g.PotentialsInto(buf, rat.I(1))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
	if back == nil {
		t.Fatal("error path dropped the buffer")
	}
}
