// Package eventgraph implements timed event graphs and the exact maximum
// cycle ratio (MCR) computation at the core of one-port period analysis.
//
// An event graph has one node per operation and constraint edges
// u -> w carrying a delay d and a token count h, meaning
//
//	begin(w, n+h) ≥ begin(u, n) + d   for all data sets n,
//
// which for a cyclic schedule of period λ collapses to
// begin(w) ≥ begin(u) + d − λ·h. Such a system is feasible iff λ is at
// least the maximum over all cycles of Σd/Σh (every cycle must carry at
// least one token); the optimum is attained and a valid earliest schedule
// is the least fixpoint of the longest-path relaxation at λ = MCR.
//
// The MCR is computed exactly (rational arithmetic) with Howard's policy
// iteration, cross-checked in tests against brute-force simple-cycle
// enumeration.
package eventgraph

import (
	"errors"
	"fmt"

	"repro/internal/rat"
)

// ErrZeroTokenCycle is returned when the graph has a cycle whose edges
// carry no tokens: such a system deadlocks (circular wait within a single
// data set) and has no valid schedule for any period.
var ErrZeroTokenCycle = errors.New("eventgraph: cycle with zero tokens (deadlock)")

// ErrInfeasible is returned by Potentials when the requested period is
// smaller than the maximum cycle ratio.
var ErrInfeasible = errors.New("eventgraph: period below maximum cycle ratio")

// ErrNoCycle is returned by MaximumCycleRatio when the graph is acyclic:
// any period satisfies the constraints, there is no cycle-imposed bound.
var ErrNoCycle = errors.New("eventgraph: graph has no cycle")

// Edge is one precedence constraint between operations.
type Edge struct {
	From, To int
	Delay    rat.Rat
	Tokens   int
}

// Graph is a timed event graph. Parallel edges and self-loops are allowed
// (a self-loop with one token encodes "the operation must fit in the
// period"). A Graph is not safe for concurrent use: besides the edge
// lists it owns scratch buffers reused by the analyses, so searches that
// evaluate many graphs concurrently must give each goroutine its own
// Graph (typically one reset with Reset between candidates).
type Graph struct {
	n     int
	edges []Edge
	out   [][]int // edge indices by source node
	in    [][]int // edge indices by target node

	scratch howardScratch
	color   []int // checkZeroTokenAcyclic working state, reused across calls
}

// New returns an empty event graph with n operation nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("eventgraph: negative node count")
	}
	return &Graph{n: n, out: make([][]int, n), in: make([][]int, n)}
}

// Reset empties the graph and resizes it to n operation nodes, keeping the
// allocated edge and adjacency storage for reuse. Hot search loops that
// build one event graph per candidate call Reset instead of New so the
// per-candidate allocations disappear after the first candidate.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("eventgraph: negative node count")
	}
	g.edges = g.edges[:0]
	if cap(g.out) < n {
		g.out = make([][]int, n)
		g.in = make([][]int, n)
	}
	g.out = g.out[:n]
	g.in = g.in[:n]
	for v := 0; v < n; v++ {
		g.out[v] = g.out[v][:0]
		g.in[v] = g.in[v][:0]
	}
	g.n = n
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Edges returns all edges; the slice is owned by the graph.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge inserts the constraint begin(to, n+tokens) ≥ begin(from, n)+delay.
// Delays must be non-negative and token counts ≥ 0.
func (g *Graph) AddEdge(from, to int, delay rat.Rat, tokens int) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("eventgraph: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if delay.Sign() < 0 {
		panic(fmt.Sprintf("eventgraph: negative delay %s", delay))
	}
	if tokens < 0 {
		panic(fmt.Sprintf("eventgraph: negative token count %d", tokens))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Delay: delay, Tokens: tokens})
	g.out[from] = append(g.out[from], idx)
	g.in[to] = append(g.in[to], idx)
}

// checkZeroTokenAcyclic verifies that the subgraph of zero-token edges is
// acyclic; otherwise the system deadlocks.
func (g *Graph) checkZeroTokenAcyclic() error {
	if cap(g.color) < g.n {
		g.color = make([]int, g.n)
	}
	color := g.color[:g.n] // 0 white, 1 grey, 2 black
	for i := range color {
		color[i] = 0
	}
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = 1
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			if e.Tokens != 0 {
				continue
			}
			switch color[e.To] {
			case 1:
				return false
			case 0:
				if !visit(e.To) {
					return false
				}
			}
		}
		color[v] = 2
		return true
	}
	for v := 0; v < g.n; v++ {
		if color[v] == 0 && !visit(v) {
			return ErrZeroTokenCycle
		}
	}
	return nil
}

// sccs returns the strongly connected components (Tarjan), smallest-index
// first within each component, components in reverse topological order.
func (g *Graph) sccs() [][]int {
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, ei := range g.out[v] {
			w := g.edges[ei].To
			if index[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for v := 0; v < g.n; v++ {
		if index[v] == -1 {
			strong(v)
		}
	}
	return comps
}

// MCRResult carries the outcome of MaximumCycleRatio.
type MCRResult struct {
	// Ratio is the maximum cycle ratio Σdelay/Σtokens.
	Ratio rat.Rat
	// CriticalCycle lists edge indices of one cycle attaining the ratio,
	// in traversal order.
	CriticalCycle []int
}

// MaximumCycleRatio computes the exact maximum over all cycles of
// Σdelay/Σtokens, the smallest feasible period of the encoded cyclic
// scheduling problem. It returns ErrNoCycle for acyclic graphs and
// ErrZeroTokenCycle when a deadlock cycle exists.
func (g *Graph) MaximumCycleRatio() (MCRResult, error) {
	if err := g.checkZeroTokenAcyclic(); err != nil {
		return MCRResult{}, err
	}
	// One full scratch clear per call; howardSCC touches only its own
	// component's entries (and resets the shared inComp marks), so the
	// per-component cost stays proportional to the component.
	g.scratch.resize(g.n)
	best := MCRResult{Ratio: rat.Zero}
	found := false
	for _, comp := range g.sccs() {
		res, ok, err := g.howardSCC(comp)
		if err != nil {
			return MCRResult{}, err
		}
		if ok && (!found || res.Ratio.Greater(best.Ratio)) {
			best = res
			found = true
		}
	}
	if !found {
		return MCRResult{}, ErrNoCycle
	}
	return best, nil
}

// howardScratch holds the per-node working state of Howard's policy
// iteration, indexed by global node id and reused across calls (the order
// searches run one MCR per candidate graph, so these buffers are the hot
// allocation site of period orchestration). resize clears what it keeps,
// so each call starts clean.
type howardScratch struct {
	inComp  []bool
	hasOut  []bool
	policy  []int
	etaSet  []bool
	eta     []rat.Rat
	val     []rat.Rat
	cycleOf [][]int
	state   []uint8
	local   []int // edge indices internal to the component
	stack   []int
}

func (s *howardScratch) resize(n int) {
	if cap(s.inComp) < n {
		s.inComp = make([]bool, n)
		s.hasOut = make([]bool, n)
		s.policy = make([]int, n)
		s.etaSet = make([]bool, n)
		s.eta = make([]rat.Rat, n)
		s.val = make([]rat.Rat, n)
		s.cycleOf = make([][]int, n)
		s.state = make([]uint8, n)
	}
	s.inComp = s.inComp[:n]
	s.hasOut = s.hasOut[:n]
	s.policy = s.policy[:n]
	s.etaSet = s.etaSet[:n]
	s.eta = s.eta[:n]
	s.val = s.val[:n]
	s.cycleOf = s.cycleOf[:n]
	s.state = s.state[:n]
	for i := 0; i < n; i++ {
		s.inComp[i] = false
		s.hasOut[i] = false
		s.policy[i] = -1
		s.etaSet[i] = false
		s.eta[i] = rat.Zero
		s.val[i] = rat.Zero
		s.cycleOf[i] = nil
		s.state[i] = 0
	}
	s.local = s.local[:0]
	s.stack = s.stack[:0]
}

// howardSCC runs Howard's policy iteration (maximum version) on one
// strongly connected component of a graph whose scratch MaximumCycleRatio
// just cleared. ok is false when the component contains no cycle (single
// node without self-loop). All state lives in slice scratch indexed by
// node id and every scan follows slice order, so the tie-break among
// equal-ratio policy cycles — and therefore the returned critical cycle —
// is deterministic. Only the component's own entries are written, except
// inComp, whose marks are reset on return (cross-component edges read
// other nodes' entries).
func (g *Graph) howardSCC(comp []int) (MCRResult, bool, error) {
	s := &g.scratch
	s.local = s.local[:0]
	for _, v := range comp {
		s.inComp[v] = true
	}
	defer func() {
		for _, v := range comp {
			s.inComp[v] = false
		}
	}()
	for _, v := range comp {
		for _, ei := range g.out[v] {
			if s.inComp[g.edges[ei].To] {
				s.local = append(s.local, ei)
				s.hasOut[v] = true
			}
		}
	}
	if len(s.local) == 0 {
		return MCRResult{}, false, nil
	}
	if len(comp) > 1 {
		// In a nontrivial SCC every node has an internal out-edge.
		for _, v := range comp {
			if !s.hasOut[v] {
				return MCRResult{}, false, fmt.Errorf("eventgraph: internal error: SCC node %d without out-edge", v)
			}
		}
	} else if !s.hasOut[comp[0]] {
		return MCRResult{}, false, nil // single node, no self-loop
	}

	// policy[v] = chosen out-edge index (into g.edges).
	for _, v := range comp {
		for _, ei := range g.out[v] {
			if s.inComp[g.edges[ei].To] {
				s.policy[v] = ei
				break
			}
		}
	}

	evaluate := func() error {
		for _, v := range comp {
			s.etaSet[v] = false
			s.cycleOf[v] = nil
			s.state[v] = 0
		}
		for _, start := range comp {
			if s.state[start] != 0 {
				continue
			}
			// Walk the functional graph until reaching a visited node.
			s.stack = s.stack[:0]
			v := start
			for s.state[v] == 0 {
				s.state[v] = 1
				s.stack = append(s.stack, v)
				v = g.edges[s.policy[v]].To
			}
			if s.state[v] == 1 {
				// Found a new policy cycle; v is its entry point.
				var cyc []int
				i := len(s.stack) - 1
				for s.stack[i] != v {
					i--
				}
				cycNodes := s.stack[i:]
				sumD, sumH := rat.Zero, 0
				for _, u := range cycNodes {
					e := g.edges[s.policy[u]]
					sumD = sumD.Add(e.Delay)
					sumH += e.Tokens
					cyc = append(cyc, s.policy[u])
				}
				if sumH == 0 {
					return ErrZeroTokenCycle
				}
				ratio := sumD.Div(rat.I(int64(sumH)))
				// Values around the cycle: anchor v at 0 and walk the cycle
				// list backwards so each node's successor value is known.
				s.etaSet[v] = true
				s.eta[v] = ratio
				s.val[v] = rat.Zero
				s.cycleOf[v] = cyc
				for j := len(cycNodes) - 1; j >= 1; j-- {
					u := cycNodes[j]
					e := g.edges[s.policy[u]]
					s.etaSet[u] = true
					s.eta[u] = ratio
					s.val[u] = e.Delay.Sub(ratio.MulInt(int64(e.Tokens))).Add(s.val[e.To])
				}
			}
			// Unwind the tail: nodes leading into the (now evaluated) cycle.
			for j := len(s.stack) - 1; j >= 0; j-- {
				u := s.stack[j]
				if !s.etaSet[u] {
					e := g.edges[s.policy[u]]
					s.etaSet[u] = true
					s.eta[u] = s.eta[e.To]
					s.val[u] = e.Delay.Sub(s.eta[u].MulInt(int64(e.Tokens))).Add(s.val[e.To])
				}
				s.state[u] = 2
			}
		}
		return nil
	}

	const maxIters = 100000
	for iter := 0; iter < maxIters; iter++ {
		if err := evaluate(); err != nil {
			return MCRResult{}, false, err
		}
		// Phase 1: ratio improvements.
		changed := false
		for _, ei := range s.local {
			e := g.edges[ei]
			if s.eta[e.To].Greater(s.eta[e.From]) {
				s.policy[e.From] = ei
				changed = true
			}
		}
		if changed {
			continue
		}
		// Phase 2: value improvements at equal ratio.
		for _, ei := range s.local {
			e := g.edges[ei]
			if !s.eta[e.To].Equal(s.eta[e.From]) {
				continue
			}
			cand := e.Delay.Sub(s.eta[e.From].MulInt(int64(e.Tokens))).Add(s.val[e.To])
			if cand.Greater(s.val[e.From]) {
				s.policy[e.From] = ei
				changed = true
			}
		}
		if !changed {
			// Converged: the best policy cycle carries the MCR; comp-order
			// scanning keeps the winner deterministic among equal ratios.
			var best MCRResult
			first := true
			for _, v := range comp {
				if s.cycleOf[v] == nil {
					continue
				}
				if first || s.eta[v].Greater(best.Ratio) {
					best = MCRResult{Ratio: s.eta[v], CriticalCycle: s.cycleOf[v]}
					first = false
				}
			}
			if first {
				return MCRResult{}, false, fmt.Errorf("eventgraph: internal error: converged without cycle")
			}
			return best, true, nil
		}
	}
	return MCRResult{}, false, fmt.Errorf("eventgraph: Howard iteration did not converge")
}

// Potentials returns the earliest begin times for the cyclic schedule of
// period lambda: the least non-negative fixpoint of
// begin(w) ≥ begin(u) + delay − lambda·tokens. It returns ErrInfeasible if
// lambda is below the maximum cycle ratio and ErrZeroTokenCycle on
// deadlock.
func (g *Graph) Potentials(lambda rat.Rat) ([]rat.Rat, error) {
	pi, err := g.PotentialsInto(nil, lambda)
	if err != nil {
		return nil, err
	}
	return pi, nil
}

// PotentialsInto is Potentials writing into the caller's buffer (grown
// when too small, zeroed before use), so per-candidate searches can reuse
// one begin-time vector across evaluations. The returned slice aliases
// buf whenever buf had the capacity; on error it is the (possibly grown)
// working buffer with unspecified contents — callers keep it for the next
// call instead of dropping the allocation.
func (g *Graph) PotentialsInto(buf []rat.Rat, lambda rat.Rat) ([]rat.Rat, error) {
	if err := g.checkZeroTokenAcyclic(); err != nil {
		return buf, err
	}
	pi := buf
	if cap(pi) < g.n {
		pi = make([]rat.Rat, g.n)
	} else {
		pi = pi[:g.n]
		for i := range pi {
			pi[i] = rat.Zero
		}
	}
	// Bellman-Ford longest path; n rounds suffice when no positive cycle.
	for round := 0; round <= g.n; round++ {
		changed := false
		for _, e := range g.edges {
			bound := pi[e.From].Add(e.Delay).Sub(lambda.MulInt(int64(e.Tokens)))
			if bound.Greater(pi[e.To]) {
				pi[e.To] = bound
				changed = true
			}
		}
		if !changed {
			return pi, nil
		}
	}
	return pi, ErrInfeasible
}

// FeasiblePeriod reports whether the given period admits a schedule.
func (g *Graph) FeasiblePeriod(lambda rat.Rat) bool {
	_, err := g.Potentials(lambda)
	return err == nil
}

// BruteForceMCR enumerates all simple cycles (Johnson-style DFS) and
// returns the maximum ratio; exponential, used to cross-check Howard in
// tests and usable on small graphs. Self-loops count as simple cycles.
func (g *Graph) BruteForceMCR() (MCRResult, error) {
	if err := g.checkZeroTokenAcyclic(); err != nil {
		return MCRResult{}, err
	}
	best := MCRResult{}
	found := false
	onPath := make([]bool, g.n)
	var path []int // edge indices
	var dfs func(start, v int, sumD rat.Rat, sumH int)
	dfs = func(start, v int, sumD rat.Rat, sumH int) {
		for _, ei := range g.out[v] {
			e := g.edges[ei]
			// Only consider cycles whose smallest node is start, to avoid
			// revisiting each cycle once per rotation.
			if e.To < start {
				continue
			}
			if e.To == start {
				d := sumD.Add(e.Delay)
				h := sumH + e.Tokens
				if h > 0 {
					ratio := d.Div(rat.I(int64(h)))
					if !found || ratio.Greater(best.Ratio) {
						cyc := append(append([]int(nil), path...), ei)
						best = MCRResult{Ratio: ratio, CriticalCycle: cyc}
						found = true
					}
				}
				continue
			}
			if onPath[e.To] {
				continue
			}
			onPath[e.To] = true
			path = append(path, ei)
			dfs(start, e.To, sumD.Add(e.Delay), sumH+e.Tokens)
			path = path[:len(path)-1]
			onPath[e.To] = false
		}
	}
	for v := 0; v < g.n; v++ {
		onPath[v] = true
		dfs(v, v, rat.Zero, 0)
		onPath[v] = false
	}
	if !found {
		return MCRResult{}, ErrNoCycle
	}
	return best, nil
}
