package eventgraph

import (
	"math/rand"
	"testing"

	"repro/internal/rat"
)

// randSegmented builds a random segmented graph and the equivalent flat
// exact relaxation (same edges, no zero-token pre-check semantics needed:
// the generator never closes zero-token cycles).
func randSegmented(rng *rand.Rand) *Segmented {
	n := 2 + rng.Intn(6)
	segs := 1 + rng.Intn(4)
	s := NewSegmented(n, segs)
	for i := 0; i < segs; i++ {
		s.BeginSegment(i)
		for e := rng.Intn(2 * n); e > 0; e-- {
			from, to := rng.Intn(n), rng.Intn(n)
			delay := rat.New(rng.Int63n(50), 1+rng.Int63n(7))
			tokens := 0
			if to <= from || rng.Intn(3) == 0 {
				tokens = 1 // forward zero-token edges only: no deadlock cycles
			}
			s.AddEdge(from, to, delay, tokens)
		}
	}
	return s
}

// exactFeasible is the reference decision: the segmented graph's own exact
// relaxation (shared by the fallback path, so the test pins that the float
// certificate never contradicts it).
func exactFeasible(s *Segmented, lambda rat.Rat) bool {
	_, err := s.PotentialsInto(nil, lambda)
	return err == nil
}

// TestSegmentedFilterAgreement is the pre-filter soundness property: on
// every query, a certified answer (fellBack == false) must equal the exact
// decision, and fallbacks must still return the exact decision.
func TestSegmentedFilterAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	certified, fallbacks := 0, 0
	for trial := 0; trial < 400; trial++ {
		s := randSegmented(rng)
		for q := 0; q < 8; q++ {
			lambda := rat.New(rng.Int63n(200), 1+rng.Int63n(9))
			want := exactFeasible(s, lambda)
			got, fellBack := s.FeasibleAt(lambda)
			if got != want {
				t.Fatalf("trial %d λ=%s: FeasibleAt=%v (fellBack=%v), exact=%v", trial, lambda, got, fellBack, want)
			}
			if fellBack {
				fallbacks++
			} else {
				certified++
				if !got {
					t.Fatalf("trial %d λ=%s: infeasible must never be float-certified", trial, lambda)
				}
			}
		}
	}
	if certified == 0 {
		t.Fatal("pre-filter never certified anything: the fast path is dead")
	}
	t.Logf("%d certified, %d fallbacks", certified, fallbacks)
}

// TestSegmentedPatchMatchesRebuild pins the incremental contract: patching
// one segment leaves the graph equal to a from-scratch build of the same
// edge sets, for both the filter and the exact potentials.
func TestSegmentedPatchMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s := randSegmented(rng)
		n := s.N()
		// Snapshot, patch one segment with new random edges, and rebuild a
		// fresh graph with identical contents.
		target := rng.Intn(len(s.segs))
		s.BeginSegment(target)
		for e := rng.Intn(2 * n); e > 0; e-- {
			from, to := rng.Intn(n), rng.Intn(n)
			tokens := 0
			if to <= from || rng.Intn(3) == 0 {
				tokens = 1
			}
			s.AddEdge(from, to, rat.New(rng.Int63n(50), 1+rng.Int63n(7)), tokens)
		}
		fresh := NewSegmented(n, len(s.segs))
		for i := range s.segs {
			fresh.BeginSegment(i)
			for _, e := range s.segs[i].edges {
				fresh.AddEdge(e.From, e.To, e.Delay, e.Tokens)
			}
		}
		for q := 0; q < 4; q++ {
			lambda := rat.New(rng.Int63n(200), 1+rng.Int63n(9))
			pa, ea := s.PotentialsInto(nil, lambda)
			pb, eb := fresh.PotentialsInto(nil, lambda)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("trial %d λ=%s: patched err=%v, rebuilt err=%v", trial, lambda, ea, eb)
			}
			if ea != nil {
				continue
			}
			for v := 0; v < n; v++ {
				if !pa[v].Equal(pb[v]) {
					t.Fatalf("trial %d λ=%s node %d: patched π=%s, rebuilt π=%s", trial, lambda, v, pa[v], pb[v])
				}
			}
		}
	}
}

// TestSegmentedLatencyExceeds pins LatencyExceeds against the exact
// fallback decision recomputed independently.
func TestSegmentedLatencyExceeds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		s := randSegmented(rng)
		n := s.N()
		terms := make([]LatencyTerm, 1+rng.Intn(3))
		for i := range terms {
			terms[i] = LatencyTerm{Node: rng.Intn(n), Add: rat.New(rng.Int63n(20), 1+rng.Int63n(5))}
		}
		lambda := rat.One
		limit := rat.New(rng.Int63n(300), 1+rng.Int63n(4))
		var want bool
		if pi, err := s.PotentialsInto(nil, lambda); err != nil {
			want = true
		} else {
			score := rat.Zero
			for _, tm := range terms {
				score = rat.Max(score, pi[tm.Node].Add(tm.Add))
			}
			want = score.Greater(limit)
		}
		got, _ := s.LatencyExceeds(lambda, limit, terms)
		if got != want {
			t.Fatalf("trial %d limit=%s: LatencyExceeds=%v, exact=%v", trial, limit, got, want)
		}
	}
}
