package eventgraph

// Segmented is a timed event graph partitioned into independently
// rebuildable edge segments, the incremental core of the order-search
// prefix bounds: the relaxed graph of a partial order assignment changes
// in exactly one server's segment when a slot is decided or undone, so the
// search patches that segment in place instead of rebuilding every edge.
//
// Feasibility queries run a certified float pre-filter before exact
// arithmetic: every edge weight d − λ·h is enclosed in a certified float
// interval (rat.Interval), and an upward-rounded Bellman-Ford relaxation
// over the upper endpoints that converges to finite values IS an exact
// feasibility certificate — its fixpoint satisfies π(to) ≥ π(from) + w in
// real arithmetic (float values are exact rationals and the rounding is
// directed), i.e. a valid potential function ruling out positive cycles.
// Infeasibility is never certified in float: a run that still changes
// after n rounds may be one ulp of creep, not a positive cycle, so those
// queries fall back to the exact relaxation. The pre-filter therefore
// never decides against the exact answer — TestSegmentedFilterAgreement
// pins it.
//
// Unlike Graph.PotentialsInto there is no zero-token-acyclic pre-check:
// the relaxed bounds only need admissible answers, a zero-delay deadlock
// cycle simply reports feasible (no prune), and a positive-delay one
// diverges into ErrInfeasible at the round cutoff.

import (
	"fmt"

	"repro/internal/rat"
)

// segment is one independently rebuildable edge list plus two cached
// certified enclosure layers: the per-edge delay enclosures (dLo/dHi,
// invalidated only by a patch — one exact conversion per edge per rebuild)
// and the weight enclosures at wLambda (wLo/wHi, reassembled from the delay
// enclosures in pure float arithmetic whenever the query λ moves).
type segment struct {
	edges   []Edge
	dLo     []float64
	dHi     []float64
	dOK     bool
	wLo     []float64
	wHi     []float64
	wOK     bool
	wLambda rat.Rat
}

// Segmented is not safe for concurrent use; like Graph, each goroutine
// owns one and patches it between queries.
type Segmented struct {
	n    int
	segs []segment
	cur  int

	fpi []float64 // float relaxation scratch
	pi  []rat.Rat // exact fallback scratch

	edgesBuilt int64
}

// NewSegmented returns an empty graph with n nodes and the given number of
// segments.
func NewSegmented(n, segments int) *Segmented {
	s := &Segmented{}
	s.Reset(n, segments)
	return s
}

// Reset empties the graph and resizes it, keeping allocated storage.
func (s *Segmented) Reset(n, segments int) {
	if n < 0 || segments < 0 {
		panic("eventgraph: negative segmented size")
	}
	s.n = n
	if cap(s.segs) < segments {
		segs := make([]segment, segments)
		copy(segs, s.segs)
		s.segs = segs
	}
	s.segs = s.segs[:segments]
	for i := range s.segs {
		s.segs[i].edges = s.segs[i].edges[:0]
		s.segs[i].dOK = false
		s.segs[i].wOK = false
	}
	s.cur = -1
}

// N returns the number of nodes.
func (s *Segmented) N() int { return s.n }

// BeginSegment clears segment i and directs subsequent AddEdge calls into
// it — the patch operation: rebuild exactly one segment, leave the rest.
func (s *Segmented) BeginSegment(i int) {
	if i < 0 || i >= len(s.segs) {
		panic(fmt.Sprintf("eventgraph: segment %d out of range [0,%d)", i, len(s.segs)))
	}
	s.segs[i].edges = s.segs[i].edges[:0]
	s.segs[i].dOK = false
	s.segs[i].wOK = false
	s.cur = i
}

// AddEdge appends one constraint to the segment opened by BeginSegment.
func (s *Segmented) AddEdge(from, to int, delay rat.Rat, tokens int) {
	if s.cur < 0 {
		panic("eventgraph: AddEdge before BeginSegment")
	}
	if from < 0 || from >= s.n || to < 0 || to >= s.n {
		panic(fmt.Sprintf("eventgraph: edge (%d,%d) out of range [0,%d)", from, to, s.n))
	}
	if delay.Sign() < 0 || tokens < 0 {
		panic("eventgraph: negative delay or token count")
	}
	s.segs[s.cur].edges = append(s.segs[s.cur].edges, Edge{From: from, To: to, Delay: delay, Tokens: tokens})
	s.edgesBuilt++
}

// TotalEdges returns the current edge count across all segments — what one
// from-scratch rebuild would have to construct.
func (s *Segmented) TotalEdges() int {
	t := 0
	for i := range s.segs {
		t += len(s.segs[i].edges)
	}
	return t
}

// EdgesBuilt returns the cumulative number of edges constructed over the
// graph's lifetime (Reset included) — the actual incremental build work,
// compared against bounds-evaluated × TotalEdges by experiment E19.
func (s *Segmented) EdgesBuilt() int64 { return s.edgesBuilt }

// weightsAt (re)computes segment i's certified weight enclosures for
// lambda, given lambda's own enclosure. The exact-arithmetic work (delay
// conversion) is cached until the segment is patched; a λ move reassembles
// the weights in float only: the enclosure of w = d − λ·h is
// [dLo − up(h·λHi), dHi − down(h·λLo)] with directed rounding on the
// product and the sum (h is an exact small integer in float64, so one ulp
// step after each operation certifies the direction).
func (s *Segmented) weightsAt(i int, lambda rat.Rat, lamIv rat.Interval) {
	sg := &s.segs[i]
	if sg.wOK && sg.wLambda.Equal(lambda) {
		return
	}
	if !sg.dOK {
		if cap(sg.dLo) < len(sg.edges) {
			sg.dLo = make([]float64, len(sg.edges))
			sg.dHi = make([]float64, len(sg.edges))
		}
		sg.dLo = sg.dLo[:len(sg.edges)]
		sg.dHi = sg.dHi[:len(sg.edges)]
		for j, e := range sg.edges {
			iv := e.Delay.Interval()
			sg.dLo[j], sg.dHi[j] = iv.Lo, iv.Hi
		}
		sg.dOK = true
	}
	if cap(sg.wLo) < len(sg.edges) {
		sg.wLo = make([]float64, len(sg.edges))
		sg.wHi = make([]float64, len(sg.edges))
	}
	sg.wLo = sg.wLo[:len(sg.edges)]
	sg.wHi = sg.wHi[:len(sg.edges)]
	for j := range sg.edges {
		h := float64(sg.edges[j].Tokens)
		if h == 0 {
			sg.wLo[j], sg.wHi[j] = sg.dLo[j], sg.dHi[j]
			continue
		}
		sg.wHi[j] = rat.AddUp(sg.dHi[j], -rat.MulDown(h, lamIv.Lo))
		sg.wLo[j] = rat.AddDown(sg.dLo[j], -rat.MulUp(h, lamIv.Hi))
	}
	sg.wOK = true
	sg.wLambda = lambda
}

// relaxUp runs the upward-rounded relaxation at lambda. ok reports a
// finite converged fixpoint, in which case s.fpi[v] ≥ the exact potential
// of node v (and the system is exactly feasible).
func (s *Segmented) relaxUp(lambda rat.Rat) bool {
	lamIv := lambda.Interval()
	for i := range s.segs {
		s.weightsAt(i, lambda, lamIv)
	}
	if cap(s.fpi) < s.n {
		s.fpi = make([]float64, s.n)
	}
	fpi := s.fpi[:s.n]
	for v := range fpi {
		fpi[v] = 0
	}
	for round := 0; round <= s.n; round++ {
		changed := false
		for i := range s.segs {
			sg := &s.segs[i]
			for j := range sg.edges {
				cand := rat.AddUp(fpi[sg.edges[j].From], sg.wHi[j])
				if cand != cand { // NaN: certification impossible
					return false
				}
				if cand > fpi[sg.edges[j].To] {
					fpi[sg.edges[j].To] = cand
					changed = true
				}
			}
		}
		if !changed {
			for _, v := range fpi {
				if v > maxFinite || v != v {
					return false
				}
			}
			return true
		}
	}
	return false
}

const maxFinite = 1.7976931348623157e308

// FeasibleAt reports whether period lambda admits a schedule of the
// relaxed system. fellBack reports that the float pre-filter could not
// certify the answer and the exact relaxation decided it.
func (s *Segmented) FeasibleAt(lambda rat.Rat) (feasible, fellBack bool) {
	if s.relaxUp(lambda) {
		return true, false
	}
	_, err := s.PotentialsInto(s.pi, lambda)
	return err == nil, true
}

// PotentialsInto is the exact longest-path relaxation over all segments,
// Graph.PotentialsInto minus the zero-token deadlock pre-check (see the
// package comment on why the relaxed bounds don't want it). The buffer is
// retained on s for reuse when the caller passes s.pi back.
func (s *Segmented) PotentialsInto(buf []rat.Rat, lambda rat.Rat) ([]rat.Rat, error) {
	pi := buf
	if cap(pi) < s.n {
		pi = make([]rat.Rat, s.n)
	} else {
		pi = pi[:s.n]
		for i := range pi {
			pi[i] = rat.Zero
		}
	}
	s.pi = pi
	for round := 0; round <= s.n; round++ {
		changed := false
		for i := range s.segs {
			for _, e := range s.segs[i].edges {
				bound := pi[e.From].Add(e.Delay).Sub(lambda.MulInt(int64(e.Tokens)))
				if bound.Greater(pi[e.To]) {
					pi[e.To] = bound
					changed = true
				}
			}
		}
		if !changed {
			return pi, nil
		}
	}
	return pi, ErrInfeasible
}

// LatencyExceeds decides "is the least fixpoint's score strictly above
// limit, or the system infeasible, at λ = lambda" for score = max over the
// given terms of π(term.Node) + term.Add — the one-port latency bound —
// certifying through floats where possible. fellBack reports the exact
// fallback ran.
//
// Certificates: an upward run converging finite gives π̂ ≥ π exactly, so
// score ≤ max(π̂+add.Hi) ≤ limit certifies false; a downward run (lower
// endpoints, downward rounding) converging gives π̌ ≤ π whenever the
// system is feasible, so max(π̌+add.Lo) > limit certifies true — and when
// the system is infeasible, true is the right answer regardless.
func (s *Segmented) LatencyExceeds(lambda, limit rat.Rat, terms []LatencyTerm) (exceeds, fellBack bool) {
	lim := limit.Interval()
	if s.relaxUp(lambda) {
		hi := -1.0
		for _, t := range terms {
			if v := rat.AddUp(s.fpi[t.Node], t.Add.Interval().Hi); v > hi {
				hi = v
			}
		}
		// score ≤ hi; hi ≤ lim.Lo ≤ limit certifies "not exceeded".
		if hi <= lim.Lo {
			return false, false
		}
		if s.relaxDown(lambda) {
			lo := -1.0
			for _, t := range terms {
				if v := rat.AddDown(s.fpi[t.Node], t.Add.Interval().Lo); v > lo {
					lo = v
				}
			}
			// score ≥ lo; lo > lim.Hi ≥ limit certifies "exceeded".
			if lo > lim.Hi {
				return true, false
			}
		}
	}
	pi, err := s.PotentialsInto(s.pi, lambda)
	if err != nil {
		return true, true
	}
	score := rat.Zero
	for _, t := range terms {
		score = rat.Max(score, pi[t.Node].Add(t.Add))
	}
	return score.Greater(limit), true
}

// LatencyTerm is one contribution to the latency score of LatencyExceeds.
type LatencyTerm struct {
	Node int
	Add  rat.Rat
}

// relaxDown runs the downward-rounded relaxation over the lower endpoints.
// On a converged run every value is ≤ the exact potential of a feasible
// system (each update is dominated by the exact fixpoint, by induction).
func (s *Segmented) relaxDown(lambda rat.Rat) bool {
	lamIv := lambda.Interval()
	for i := range s.segs {
		s.weightsAt(i, lambda, lamIv)
	}
	if cap(s.fpi) < s.n {
		s.fpi = make([]float64, s.n)
	}
	fpi := s.fpi[:s.n]
	for v := range fpi {
		fpi[v] = 0
	}
	for round := 0; round <= s.n; round++ {
		changed := false
		for i := range s.segs {
			sg := &s.segs[i]
			for j := range sg.edges {
				cand := rat.AddDown(fpi[sg.edges[j].From], sg.wLo[j])
				if cand > fpi[sg.edges[j].To] {
					fpi[sg.edges[j].To] = cand
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
	return false
}
