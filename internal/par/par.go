// Package par is the shared parallel-search layer of the repository: a
// bounded worker pool plus deterministic best-result reduction, used by the
// exact enumerators and hill-climbing restarts of package solve, by the
// order-search sharding of package orchestrate, and by the experiment
// harness.
//
// Every optimization problem of the paper is NP-hard (Theorems 2 and 4), so
// the hot paths of this repository are exhaustive enumerations and
// randomized restarts — embarrassingly parallel workloads. The contract of
// this package is strict determinism: a search sharded over N workers
// returns bit-identical results to the same search on 1 worker, because
//
//   - shards are fixed, data-independent partitions of the search space
//     (never work stealing on candidate granularity), each evaluated with
//     its own state (scratch buffers, seeded RNGs);
//   - per-shard results are reduced in shard-index order with
//     strict-improvement comparison, so the winner is the one a serial scan
//     of the shards would keep, regardless of goroutine interleaving;
//   - shard partitions never change the reduced result: shards are
//     contiguous ranges of the serial scan order, so any partition — the
//     searches use fixed shard counts when parallel, and the orchestrate
//     order search collapses to a single shard when serial — reduces to
//     the same winner the unsharded serial scan would keep.
//
// Exactly one layer fans out at a time (one pool, never nested): whoever
// owns the top level — the experiment harness, a plan-level search, the
// planning service's intake queue, or an orchestration-level order search
// running under a serial plan search — runs everything beneath it
// serially.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: n > 0 is taken as given, n <= 0
// (the zero value of option structs) means runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Run executes job(0) .. job(n-1) on at most workers goroutines (resolved
// by Workers) and returns when all jobs finished. Jobs are handed out by an
// atomic counter, so the assignment of jobs to goroutines is nondeterministic
// — jobs must not share mutable state. With workers <= 1 (after resolution)
// the jobs run serially on the calling goroutine, in index order.
func Run(workers, n int, job func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(0) .. fn(n-1) through Run and returns the results in index
// order. The result order — and, given pure fn, the result values — are
// identical for every worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Run(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Candidate is one shard's best result in a Best reduction.
type Candidate[T any] struct {
	// Value is the shard's winner; meaningful only when OK is true.
	Value T
	// OK is false when the shard produced no feasible candidate.
	OK bool
}

// Best reduces per-shard candidates to the overall winner with canonical
// tie-breaking: candidates are scanned in shard-index order and the current
// winner is replaced only on strict improvement (less returns true). This
// reproduces exactly what a serial scan of the concatenated shards keeps,
// so parallel and serial searches agree even when distinct shards tie on
// the objective. The boolean result is false when no shard had a candidate.
func Best[T any](cands []Candidate[T], less func(a, b T) bool) (T, bool) {
	var best T
	found := false
	for _, c := range cands {
		if !c.OK {
			continue
		}
		if !found || less(c.Value, best) {
			best = c.Value
			found = true
		}
	}
	return best, found
}

// MapBest shards a search into n independent pieces, evaluates them on the
// pool and returns the deterministic winner: shard(i) computes the i-th
// shard's local best (returning OK=false for infeasible shards) and less
// orders candidates. It is the one-call form of Map followed by Best.
func MapBest[T any](workers, n int, shard func(i int) Candidate[T], less func(a, b T) bool) (T, bool) {
	return Best(Map(workers, n, shard), less)
}
