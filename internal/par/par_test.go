package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestRunCoversAllJobsOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		Run(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	Run(4, 0, func(int) { t.Fatal("job ran") })
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	fn := func(i int) int { return i * i }
	serial := Map(1, 300, fn)
	for _, workers := range []int{2, 3, 16} {
		got := Map(workers, 300, fn)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestBestCanonicalTieBreaking(t *testing.T) {
	type cand struct{ val, shard int }
	less := func(a, b cand) bool { return a.val < b.val }
	cands := []Candidate[cand]{
		{Value: cand{5, 0}, OK: true},
		{OK: false},
		{Value: cand{3, 2}, OK: true},
		{Value: cand{3, 3}, OK: true}, // ties shard 2: must lose
		{Value: cand{4, 4}, OK: true},
	}
	best, ok := Best(cands, less)
	if !ok || best.val != 3 || best.shard != 2 {
		t.Fatalf("Best = %+v, %v; want value 3 from shard 2", best, ok)
	}
	if _, ok := Best(nil, less); ok {
		t.Fatal("empty reduction reported a winner")
	}
	if _, ok := Best([]Candidate[cand]{{OK: false}}, less); ok {
		t.Fatal("all-infeasible reduction reported a winner")
	}
}

func TestMapBestMatchesSerial(t *testing.T) {
	// Each shard minimizes a bumpy function over its own range; the global
	// winner must be identical for every worker count.
	shard := func(i int) Candidate[int] {
		if i%5 == 3 {
			return Candidate[int]{} // infeasible shard
		}
		best := 1 << 30
		for x := i * 100; x < (i+1)*100; x++ {
			v := (x*7919)%2048 + i
			if v < best {
				best = v
			}
		}
		return Candidate[int]{Value: best, OK: true}
	}
	less := func(a, b int) bool { return a < b }
	want, wantOK := MapBest(1, 40, shard, less)
	for _, workers := range []int{2, 4, 13} {
		got, ok := MapBest(workers, 40, shard, less)
		if ok != wantOK || got != want {
			t.Fatalf("workers=%d: MapBest = %d,%v want %d,%v", workers, got, ok, want, wantOK)
		}
	}
}

// TestPoolHammer drives many overlapping pools from concurrent goroutines so
// `go test -race` exercises the handout counter, result slices and the
// reduction under real contention.
func TestPoolHammer(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				n := 50 + g
				res := Map(4, n, func(i int) int { return i + g })
				for i, v := range res {
					if v != i+g {
						t.Errorf("goroutine %d: res[%d] = %d", g, i, v)
						return
					}
				}
				best, ok := MapBest(3, n, func(i int) Candidate[int] {
					return Candidate[int]{Value: (i*31 + g) % 97, OK: i%7 != 0}
				}, func(a, b int) bool { return a < b })
				want, wantOK := 1<<30, false
				for i := 0; i < n; i++ {
					if i%7 == 0 {
						continue
					}
					if v := (i*31 + g) % 97; v < want {
						want, wantOK = v, true
					}
				}
				if ok != wantOK || (ok && best != want) {
					t.Errorf("goroutine %d: best = %d,%v want %d,%v", g, best, ok, want, wantOK)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
