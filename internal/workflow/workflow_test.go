package workflow

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/rat"
)

func TestNewDefaultsAndValidation(t *testing.T) {
	a, err := New([]Service{
		{Cost: rat.I(4), Selectivity: rat.One},
		{Name: "filter", Cost: rat.New(1, 2), Selectivity: rat.New(9999, 10000)},
	}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 2 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Name(0) != "C1" || a.Name(1) != "filter" {
		t.Fatalf("names = %q, %q", a.Name(0), a.Name(1))
	}
	if a.IndexOf("filter") != 1 || a.IndexOf("nope") != -1 {
		t.Fatal("IndexOf broken")
	}
	if !a.Cost(0).Equal(rat.I(4)) || !a.Selectivity(1).Equal(rat.New(9999, 10000)) {
		t.Fatal("accessors broken")
	}
	if !a.HasPrecedence() || !a.Precedence().HasEdge(0, 1) {
		t.Fatal("precedence lost")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		name     string
		services []Service
		edges    [][2]int
		errPart  string
	}{
		{"negative cost", []Service{{Cost: rat.I(-1), Selectivity: rat.One}}, nil, "negative cost"},
		{"negative selectivity", []Service{{Cost: rat.One, Selectivity: rat.I(-1)}}, nil, "negative selectivity"},
		{"dup names", []Service{{Name: "x", Cost: rat.One, Selectivity: rat.One}, {Name: "x", Cost: rat.One, Selectivity: rat.One}}, nil, "duplicate"},
		{"edge out of range", []Service{{Cost: rat.One, Selectivity: rat.One}}, [][2]int{{0, 1}}, "out of range"},
		{"self loop", []Service{{Cost: rat.One, Selectivity: rat.One}}, [][2]int{{0, 0}}, "self-loop"},
		{"cycle", []Service{{Cost: rat.One, Selectivity: rat.One}, {Cost: rat.One, Selectivity: rat.One}}, [][2]int{{0, 1}, {1, 0}}, "cycle"},
	}
	for _, c := range cases {
		_, err := New(c.services, c.edges)
		if err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.errPart)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew([]Service{{Cost: rat.I(-1), Selectivity: rat.One}}, nil)
}

func TestUniformAndFromCostsSels(t *testing.T) {
	a := Uniform(5, rat.I(4), rat.One)
	if a.N() != 5 || !a.Cost(4).Equal(rat.I(4)) || a.HasPrecedence() {
		t.Fatal("Uniform wrong")
	}
	b, err := FromCostsSels([]rat.Rat{rat.I(1), rat.I(2)}, []rat.Rat{rat.New(1, 2), rat.I(3)})
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 2 || !b.Selectivity(0).Equal(rat.New(1, 2)) {
		t.Fatal("FromCostsSels wrong")
	}
	if _, err := FromCostsSels([]rat.Rat{rat.One}, nil); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Uniform(3, rat.I(1), rat.One)
	c := a.Clone()
	c.Precedence().AddEdge(0, 1)
	if a.HasPrecedence() {
		t.Fatal("clone shares precedence graph")
	}
}

func TestServicesCopy(t *testing.T) {
	a := Uniform(2, rat.I(1), rat.One)
	s := a.Services()
	s[0].Cost = rat.I(99)
	if a.Cost(0).Equal(rat.I(99)) {
		t.Fatal("Services returned internal slice")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := MustNew([]Service{
		{Name: "scan", Cost: rat.I(4), Selectivity: rat.New(1, 2)},
		{Name: "join", Cost: rat.MustParse("23/3"), Selectivity: rat.I(2)},
		{Cost: rat.One, Selectivity: rat.One},
	}, [][2]int{{0, 1}, {1, 2}})

	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back App
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 {
		t.Fatalf("N = %d", back.N())
	}
	for i := 0; i < 3; i++ {
		if back.Name(i) != a.Name(i) || !back.Cost(i).Equal(a.Cost(i)) || !back.Selectivity(i).Equal(a.Selectivity(i)) {
			t.Fatalf("service %d differs after round trip", i)
		}
	}
	if !back.Precedence().HasEdge(0, 1) || !back.Precedence().HasEdge(1, 2) || back.Precedence().EdgeCount() != 2 {
		t.Fatal("precedence lost in round trip")
	}
}

func TestUnmarshalHandWritten(t *testing.T) {
	doc := `{
	  "services": [
	    {"cost": "4", "selectivity": "1"},
	    {"name": "f", "cost": "0.5", "selectivity": "9999/10000"}
	  ],
	  "precedence": [["C1", "f"]]
	}`
	var a App
	if err := json.Unmarshal([]byte(doc), &a); err != nil {
		t.Fatal(err)
	}
	if a.Name(0) != "C1" || !a.Selectivity(1).Equal(rat.New(9999, 10000)) {
		t.Fatal("hand-written instance parsed wrong")
	}
	if !a.Precedence().HasEdge(0, 1) {
		t.Fatal("precedence edge missing")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"services":[{"cost":"1","selectivity":"1"}],"precedence":[["C1","nope"]]}`,
		`{"services":[{"cost":"-1","selectivity":"1"}]}`,
		`{"services":[{"cost":"x","selectivity":"1"}]}`,
		`not json`,
	}
	for _, doc := range cases {
		var a App
		if err := json.Unmarshal([]byte(doc), &a); err == nil {
			t.Errorf("expected error for %s", doc)
		}
	}
}

func TestNormalize(t *testing.T) {
	a := Uniform(2, rat.I(10), rat.New(1, 2))
	// δ0 = 4 MB, bandwidth 2 MB/s, speed 5 units/s.
	norm, scale, err := a.Normalize(rat.I(4), rat.I(2), rat.I(5))
	if err != nil {
		t.Fatal(err)
	}
	if !norm.Cost(0).Equal(rat.I(4)) { // 10·2/5
		t.Fatalf("normalized cost = %s", norm.Cost(0))
	}
	if !scale.Equal(rat.I(2)) { // δ0/b = 4/2
		t.Fatalf("scale = %s", scale)
	}
	// Selectivities are ratios and must be untouched.
	if !norm.Selectivity(0).Equal(rat.New(1, 2)) {
		t.Fatal("selectivity changed")
	}
	if _, _, err := a.Normalize(rat.Zero, rat.One, rat.One); err == nil {
		t.Fatal("zero delta0 not rejected")
	}
}
