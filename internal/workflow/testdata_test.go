package workflow

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestTestdataInstancesLoad ensures the shipped instance files stay valid.
func TestTestdataInstancesLoad(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		found++
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var app App
		if err := json.Unmarshal(data, &app); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if app.N() == 0 {
			t.Fatalf("%s: empty instance", e.Name())
		}
		// Round trip must be lossless.
		out, err := json.Marshal(&app)
		if err != nil {
			t.Fatal(err)
		}
		var back App
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatal(err)
		}
		if back.N() != app.N() || back.Precedence().EdgeCount() != app.Precedence().EdgeCount() {
			t.Fatalf("%s: lossy round trip", e.Name())
		}
	}
	if found < 2 {
		t.Fatalf("expected at least 2 testdata instances, found %d", found)
	}
}
