// Package workflow defines the application model of the paper: a set of
// services (filters) with costs and selectivities, linked by precedence
// constraints, to be mapped one-to-one onto a homogeneous platform.
//
// Everything is expressed in the paper's normalized units (input size
// δ0 = 1, bandwidth b = 1, speed s = 1); Normalize converts a physical
// description into this form and reports the factor with which computed
// periods and latencies must be re-scaled.
package workflow

import (
	"encoding/json"
	"fmt"

	"repro/internal/dag"
	"repro/internal/rat"
)

// Service is one filter: it consumes a data set of size δ, spends c·δ time
// units computing, and emits a data set of size σ·δ.
type Service struct {
	// Name identifies the service in output and instance files. Empty names
	// are given the default "C<index+1>" (1-based, following the paper).
	Name string
	// Cost is the elementary cost c ≥ 0 per unit of input data.
	Cost rat.Rat
	// Selectivity is the output/input size ratio σ ≥ 0. σ < 1 filters
	// (shrinks) the stream; σ > 1 expands it.
	Selectivity rat.Rat
}

// App is an application A = (F, G): services plus precedence constraints.
type App struct {
	services []Service
	prec     *dag.Graph
}

// New builds an application from its services and precedence edges (pairs of
// service indices). It validates costs, selectivities and acyclicity.
func New(services []Service, precEdges [][2]int) (*App, error) {
	a := &App{
		services: make([]Service, len(services)),
		prec:     dag.New(len(services)),
	}
	copy(a.services, services)
	names := make(map[string]int)
	for i := range a.services {
		s := &a.services[i]
		if s.Name == "" {
			s.Name = fmt.Sprintf("C%d", i+1)
		}
		if prev, dup := names[s.Name]; dup {
			return nil, fmt.Errorf("workflow: duplicate service name %q (indices %d and %d)", s.Name, prev, i)
		}
		names[s.Name] = i
		if s.Cost.Sign() < 0 {
			return nil, fmt.Errorf("workflow: service %q has negative cost %s", s.Name, s.Cost)
		}
		if s.Selectivity.Sign() < 0 {
			return nil, fmt.Errorf("workflow: service %q has negative selectivity %s", s.Name, s.Selectivity)
		}
	}
	for _, e := range precEdges {
		if e[0] < 0 || e[0] >= len(services) || e[1] < 0 || e[1] >= len(services) {
			return nil, fmt.Errorf("workflow: precedence edge %v out of range", e)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("workflow: precedence self-loop on service %d", e[0])
		}
		a.prec.AddEdge(e[0], e[1])
	}
	if !a.prec.IsAcyclic() {
		return nil, fmt.Errorf("workflow: precedence constraints contain a cycle")
	}
	return a, nil
}

// MustNew is New that panics on error, for tests and fixed examples.
func MustNew(services []Service, precEdges [][2]int) *App {
	a, err := New(services, precEdges)
	if err != nil {
		panic(err)
	}
	return a
}

// N returns the number of services.
func (a *App) N() int { return len(a.services) }

// Service returns the i-th service.
func (a *App) Service(i int) Service { return a.services[i] }

// Services returns a copy of the service list.
func (a *App) Services() []Service {
	out := make([]Service, len(a.services))
	copy(out, a.services)
	return out
}

// Cost returns c_i.
func (a *App) Cost(i int) rat.Rat { return a.services[i].Cost }

// Selectivity returns σ_i.
func (a *App) Selectivity(i int) rat.Rat { return a.services[i].Selectivity }

// Name returns the name of service i.
func (a *App) Name(i int) string { return a.services[i].Name }

// IndexOf returns the index of the service with the given name, or -1.
func (a *App) IndexOf(name string) int {
	for i := range a.services {
		if a.services[i].Name == name {
			return i
		}
	}
	return -1
}

// Precedence returns the precedence-constraint graph. The caller must not
// modify it.
func (a *App) Precedence() *dag.Graph { return a.prec }

// HasPrecedence reports whether the application has any precedence
// constraints (the paper's NP-hardness results hold even without them).
func (a *App) HasPrecedence() bool { return a.prec.EdgeCount() > 0 }

// Clone returns an independent copy.
func (a *App) Clone() *App {
	c := &App{services: a.Services(), prec: a.prec.Clone()}
	return c
}

// Normalize converts a physical instance (input size delta0, link bandwidth
// bw, server speed speed) into the paper's normalized form: each cost is
// scaled as c ← c·bw/speed so that letting δ0 = b = s = 1 preserves all
// relative durations. The returned scale is δ0/bw: multiply periods and
// latencies computed on the normalized instance by it to recover physical
// time units.
func (a *App) Normalize(delta0, bw, speed rat.Rat) (*App, rat.Rat, error) {
	if delta0.Sign() <= 0 || bw.Sign() <= 0 || speed.Sign() <= 0 {
		return nil, rat.Zero, fmt.Errorf("workflow: delta0, bandwidth and speed must be positive")
	}
	c := a.Clone()
	factor := bw.Div(speed)
	for i := range c.services {
		c.services[i].Cost = a.services[i].Cost.Mul(factor)
	}
	return c, delta0.Div(bw), nil
}

// --- JSON instance files ---

type serviceJSON struct {
	Name        string  `json:"name,omitempty"`
	Cost        rat.Rat `json:"cost"`
	Selectivity rat.Rat `json:"selectivity"`
}

type appJSON struct {
	Services   []serviceJSON `json:"services"`
	Precedence [][2]string   `json:"precedence,omitempty"`
}

// MarshalJSON encodes the application as a self-describing instance file
// with exact rational costs and selectivities.
func (a *App) MarshalJSON() ([]byte, error) {
	doc := appJSON{Services: make([]serviceJSON, a.N())}
	for i, s := range a.services {
		doc.Services[i] = serviceJSON{Name: s.Name, Cost: s.Cost, Selectivity: s.Selectivity}
	}
	for _, e := range a.prec.Edges() {
		doc.Precedence = append(doc.Precedence, [2]string{a.Name(e[0]), a.Name(e[1])})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalJSON decodes an instance file produced by MarshalJSON (or written
// by hand; names may be omitted and default to C1, C2, ...).
func (a *App) UnmarshalJSON(data []byte) error {
	var doc appJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	services := make([]Service, len(doc.Services))
	for i, s := range doc.Services {
		services[i] = Service{Name: s.Name, Cost: s.Cost, Selectivity: s.Selectivity}
	}
	tmp, err := New(services, nil)
	if err != nil {
		return err
	}
	var edges [][2]int
	for _, e := range doc.Precedence {
		u, v := tmp.IndexOf(e[0]), tmp.IndexOf(e[1])
		if u < 0 || v < 0 {
			return fmt.Errorf("workflow: precedence edge %v references unknown service", e)
		}
		edges = append(edges, [2]int{u, v})
	}
	built, err := New(services, edges)
	if err != nil {
		return err
	}
	*a = *built
	return nil
}

// Uniform returns n services all with the given cost and selectivity, named
// C1..Cn, without precedence constraints.
func Uniform(n int, cost, sel rat.Rat) *App {
	services := make([]Service, n)
	for i := range services {
		services[i] = Service{Cost: cost, Selectivity: sel}
	}
	return MustNew(services, nil)
}

// FromCostsSels builds an application from parallel cost and selectivity
// slices, without precedence constraints.
func FromCostsSels(costs, sels []rat.Rat) (*App, error) {
	if len(costs) != len(sels) {
		return nil, fmt.Errorf("workflow: %d costs but %d selectivities", len(costs), len(sels))
	}
	services := make([]Service, len(costs))
	for i := range services {
		services[i] = Service{Cost: costs[i], Selectivity: sels[i]}
	}
	return New(services, nil)
}
