package plan

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/rat"
)

// Weighted is the scheduling-level view of a plan: per-node computation
// times and per-communication volumes, independent of how they were derived.
// An ExecGraph lowers to a Weighted via ExecGraph.Weighted(); a traditional
// workflow (no selectivities, explicit volumes — the setting of the paper's
// counter-examples B.2/B.3) can be built directly with NewWeighted.
//
// All operation lists, validators, orchestrators and the event-graph engine
// operate on Weighted plans, so every result automatically covers both
// filtering and regular streaming applications, as the paper points out.
type Weighted struct {
	names    []string
	comp     []rat.Rat
	edges    []Edge
	vol      []rat.Rat
	inEdges  [][]int // per node: indices into edges with To == node
	outEdges [][]int // per node: indices into edges with From == node
	topo     []int
}

// NewWeighted builds a weighted plan from computation times, communications
// and their volumes. Edges may use the virtual endpoints In and Out. The
// service-to-service edges must form a DAG. Names may be nil (defaults to
// C1..Cn) or must have one entry per node.
func NewWeighted(names []string, comp []rat.Rat, edges []Edge, vols []rat.Rat) (*Weighted, error) {
	n := len(comp)
	if len(edges) != len(vols) {
		return nil, fmt.Errorf("plan: %d edges but %d volumes", len(edges), len(vols))
	}
	if names == nil {
		names = make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("C%d", i+1)
		}
	}
	if len(names) != n {
		return nil, fmt.Errorf("plan: %d names but %d nodes", len(names), n)
	}
	w := &Weighted{
		names:    append([]string(nil), names...),
		comp:     append([]rat.Rat(nil), comp...),
		edges:    append([]Edge(nil), edges...),
		vol:      append([]rat.Rat(nil), vols...),
		inEdges:  make([][]int, n),
		outEdges: make([][]int, n),
	}
	for i, c := range comp {
		if c.Sign() < 0 {
			return nil, fmt.Errorf("plan: node %d has negative computation time %s", i, c)
		}
	}
	g := dag.New(n)
	seen := make(map[Edge]bool)
	for idx, e := range edges {
		if vols[idx].Sign() < 0 {
			return nil, fmt.Errorf("plan: edge %s has negative volume %s", e, vols[idx])
		}
		if seen[e] {
			return nil, fmt.Errorf("plan: duplicate edge %s", e)
		}
		seen[e] = true
		switch {
		case e.From == In && e.To >= 0 && e.To < n:
			w.inEdges[e.To] = append(w.inEdges[e.To], idx)
		case e.To == Out && e.From >= 0 && e.From < n:
			w.outEdges[e.From] = append(w.outEdges[e.From], idx)
		case e.From >= 0 && e.From < n && e.To >= 0 && e.To < n && e.From != e.To:
			g.AddEdge(e.From, e.To)
			w.outEdges[e.From] = append(w.outEdges[e.From], idx)
			w.inEdges[e.To] = append(w.inEdges[e.To], idx)
		default:
			return nil, fmt.Errorf("plan: invalid edge %s", e)
		}
	}
	topo, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("plan: weighted plan is cyclic")
	}
	w.topo = topo
	for v := 0; v < n; v++ {
		if len(w.inEdges[v]) == 0 {
			return nil, fmt.Errorf("plan: node %d (%s) has no incoming communication; entry nodes need an In edge", v, w.names[v])
		}
		if len(w.outEdges[v]) == 0 {
			return nil, fmt.Errorf("plan: node %d (%s) has no outgoing communication; exit nodes need an Out edge", v, w.names[v])
		}
	}
	return w, nil
}

// MustNewWeighted is NewWeighted that panics on error.
func MustNewWeighted(names []string, comp []rat.Rat, edges []Edge, vols []rat.Rat) *Weighted {
	w, err := NewWeighted(names, comp, edges, vols)
	if err != nil {
		panic(err)
	}
	return w
}

// Weighted lowers the execution graph to its scheduling-level view, with
// Ccomp as node weights and CommSize as edge volumes.
func (eg *ExecGraph) Weighted() *Weighted {
	n := eg.N()
	comp := make([]rat.Rat, n)
	names := make([]string, n)
	for v := 0; v < n; v++ {
		comp[v] = eg.Ccomp(v)
		names[v] = eg.app.Name(v)
	}
	edges := eg.Edges()
	vols := make([]rat.Rat, len(edges))
	for i, e := range edges {
		vols[i] = eg.CommSize(e)
	}
	w, err := NewWeighted(names, comp, edges, vols)
	if err != nil {
		// Construction from a valid ExecGraph cannot fail.
		panic(fmt.Sprintf("plan: internal error lowering execution graph: %v", err))
	}
	return w
}

// N returns the number of (real) nodes.
func (w *Weighted) N() int { return len(w.comp) }

// Name returns the display name of node v.
func (w *Weighted) Name(v int) string { return w.names[v] }

// Comp returns the computation time of node v.
func (w *Weighted) Comp(v int) rat.Rat { return w.comp[v] }

// Edges returns all communications. The slice is owned by the plan.
func (w *Weighted) Edges() []Edge { return w.edges }

// Edge returns the idx-th communication.
func (w *Weighted) Edge(idx int) Edge { return w.edges[idx] }

// Vol returns the volume of the idx-th communication.
func (w *Weighted) Vol(idx int) rat.Rat { return w.vol[idx] }

// EdgeIndex returns the index of edge e, or -1 if absent.
func (w *Weighted) EdgeIndex(e Edge) int {
	for i, x := range w.edges {
		if x == e {
			return i
		}
	}
	return -1
}

// InEdges returns the indices of communications into node v (including the
// virtual input comm for entry nodes). The slice is owned by the plan.
func (w *Weighted) InEdges(v int) []int { return w.inEdges[v] }

// OutEdges returns the indices of communications out of node v (including
// the virtual output comm for exit nodes). The slice is owned by the plan.
func (w *Weighted) OutEdges(v int) []int { return w.outEdges[v] }

// Topo returns a topological order of the real nodes.
func (w *Weighted) Topo() []int { return w.topo }

// Cin returns the total incoming volume of node v.
func (w *Weighted) Cin(v int) rat.Rat {
	s := rat.Zero
	for _, idx := range w.inEdges[v] {
		s = s.Add(w.vol[idx])
	}
	return s
}

// Cout returns the total outgoing volume of node v.
func (w *Weighted) Cout(v int) rat.Rat {
	s := rat.Zero
	for _, idx := range w.outEdges[v] {
		s = s.Add(w.vol[idx])
	}
	return s
}

// Cexec returns the per-node period lower bound under the given model.
func (w *Weighted) Cexec(v int, m Model) rat.Rat {
	if m == Overlap {
		return rat.MaxOf(w.Cin(v), w.comp[v], w.Cout(v))
	}
	return w.Cin(v).Add(w.comp[v]).Add(w.Cout(v))
}

// PeriodLowerBound returns max_v Cexec(v, m).
func (w *Weighted) PeriodLowerBound(m Model) rat.Rat {
	bound := rat.Zero
	for v := 0; v < w.N(); v++ {
		bound = rat.Max(bound, w.Cexec(v, m))
	}
	return bound
}

// LatencyPathBound returns the longest in-to-out path, counting each
// computation and each traversed communication once: a latency lower bound
// for every model, exact for one-port schedules on chains.
func (w *Weighted) LatencyPathBound() rat.Rat {
	done := make([]rat.Rat, w.N())
	best := rat.Zero
	for _, v := range w.topo {
		start := rat.Zero
		for _, idx := range w.inEdges[v] {
			e := w.edges[idx]
			t := w.vol[idx]
			if e.From != In {
				t = t.Add(done[e.From])
			}
			start = rat.Max(start, t)
		}
		done[v] = start.Add(w.comp[v])
		for _, idx := range w.outEdges[v] {
			if w.edges[idx].To == Out {
				best = rat.Max(best, done[v].Add(w.vol[idx]))
			}
		}
	}
	return best
}
