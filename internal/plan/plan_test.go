package plan

import (
	"strings"
	"testing"

	"repro/internal/rat"
	"repro/internal/workflow"
)

// fig1 rebuilds the paper's §2.3 example locally to avoid an import cycle
// with paperex.
func fig1() *ExecGraph {
	app := workflow.Uniform(5, rat.I(4), rat.One)
	return MustBuild(app, [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 4}, {3, 4}})
}

func TestFig1DerivedQuantities(t *testing.T) {
	eg := fig1()
	for v := 0; v < 5; v++ {
		if !eg.InProd(v).Equal(rat.One) || !eg.OutSize(v).Equal(rat.One) {
			t.Fatalf("service %d: inProd=%s outSize=%s, want 1", v, eg.InProd(v), eg.OutSize(v))
		}
		if !eg.Ccomp(v).Equal(rat.I(4)) {
			t.Fatalf("Ccomp(%d) = %s", v, eg.Ccomp(v))
		}
	}
	// C1 (index 0): one input comm, two successors.
	if !eg.Cin(0).Equal(rat.One) || !eg.Cout(0).Equal(rat.Two) {
		t.Fatalf("C1: Cin=%s Cout=%s", eg.Cin(0), eg.Cout(0))
	}
	// C5 (index 4): two predecessors, exit node.
	if !eg.Cin(4).Equal(rat.Two) || !eg.Cout(4).Equal(rat.One) {
		t.Fatalf("C5: Cin=%s Cout=%s", eg.Cin(4), eg.Cout(4))
	}
	// Period lower bounds: 4 with overlap, 7 without (paper §2.3).
	if !eg.PeriodLowerBound(Overlap).Equal(rat.I(4)) {
		t.Fatalf("overlap bound = %s", eg.PeriodLowerBound(Overlap))
	}
	if !eg.PeriodLowerBound(InOrder).Equal(rat.I(7)) {
		t.Fatalf("one-port bound = %s", eg.PeriodLowerBound(InOrder))
	}
	if !eg.PeriodLowerBound(OutOrder).Equal(rat.I(7)) {
		t.Fatalf("out-order bound = %s", eg.PeriodLowerBound(OutOrder))
	}
	// The longest path gives exactly the optimal latency 21 here.
	if !eg.LatencyPathBound().Equal(rat.I(21)) {
		t.Fatalf("latency path bound = %s", eg.LatencyPathBound())
	}
}

func TestFig1Ancestors(t *testing.T) {
	eg := fig1()
	if eg.Ancestors(0).Count() != 0 {
		t.Fatal("C1 has no ancestors")
	}
	got := eg.Ancestors(4).Elements()
	if len(got) != 4 { // C1..C4
		t.Fatalf("ancestors of C5 = %v", got)
	}
}

func TestSelectivityProducts(t *testing.T) {
	// in -> A(σ=1/2) -> B(σ=3) -> C; diamond merge checked separately.
	app := workflow.MustNew([]workflow.Service{
		{Cost: rat.I(2), Selectivity: rat.New(1, 2)},
		{Cost: rat.I(2), Selectivity: rat.I(3)},
		{Cost: rat.I(2), Selectivity: rat.One},
	}, nil)
	eg := MustBuild(app, [][2]int{{0, 1}, {1, 2}})
	if !eg.InProd(1).Equal(rat.New(1, 2)) {
		t.Fatalf("inProd(B) = %s", eg.InProd(1))
	}
	if !eg.InProd(2).Equal(rat.New(3, 2)) {
		t.Fatalf("inProd(C) = %s", eg.InProd(2))
	}
	if !eg.OutSize(1).Equal(rat.New(3, 2)) {
		t.Fatalf("outSize(B) = %s", eg.OutSize(1))
	}
	if !eg.Ccomp(2).Equal(rat.I(3)) {
		t.Fatalf("Ccomp(C) = %s", eg.Ccomp(2))
	}
}

func TestDiamondAncestorProductCountsOnce(t *testing.T) {
	// A(σ=1/2) feeds B and C, both feed D: A's selectivity must be counted
	// once in inProd(D), not once per path.
	app := workflow.MustNew([]workflow.Service{
		{Cost: rat.One, Selectivity: rat.New(1, 2)},
		{Cost: rat.One, Selectivity: rat.One},
		{Cost: rat.One, Selectivity: rat.One},
		{Cost: rat.One, Selectivity: rat.One},
	}, nil)
	eg := MustBuild(app, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if !eg.InProd(3).Equal(rat.New(1, 2)) {
		t.Fatalf("inProd(D) = %s, want 1/2", eg.InProd(3))
	}
	// D receives from both B and C, each sending 1/2.
	if !eg.Cin(3).Equal(rat.One) {
		t.Fatalf("Cin(D) = %s", eg.Cin(3))
	}
}

func TestBuildRejectsBadGraphs(t *testing.T) {
	app := workflow.Uniform(3, rat.One, rat.One)
	if _, err := Build(app, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := Build(app, [][2]int{{0, 3}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := Build(app, [][2]int{{0, 0}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuildEnforcesPrecedence(t *testing.T) {
	app := workflow.MustNew([]workflow.Service{
		{Cost: rat.One, Selectivity: rat.One},
		{Cost: rat.One, Selectivity: rat.One},
		{Cost: rat.One, Selectivity: rat.One},
	}, [][2]int{{0, 2}}) // C1 must precede C3
	// Direct edge satisfies it.
	if _, err := Build(app, [][2]int{{0, 2}}); err != nil {
		t.Fatalf("direct edge rejected: %v", err)
	}
	// Transitive path satisfies it.
	if _, err := Build(app, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Fatalf("transitive path rejected: %v", err)
	}
	// Missing constraint must be rejected.
	if _, err := Build(app, [][2]int{{1, 2}}); err == nil {
		t.Fatal("plan violating precedence accepted")
	}
	// Reversed edge must be rejected (it also creates no path 0->2).
	if _, err := Build(app, [][2]int{{2, 0}}); err == nil {
		t.Fatal("reversed precedence accepted")
	}
}

func TestEdgesIncludeVirtualEndpoints(t *testing.T) {
	eg := fig1()
	edges := eg.Edges()
	var ins, outs, mids int
	for _, e := range edges {
		switch {
		case e.From == In:
			ins++
			if !eg.CommSize(e).Equal(rat.One) {
				t.Fatalf("input comm size = %s", eg.CommSize(e))
			}
		case e.To == Out:
			outs++
		default:
			mids++
		}
	}
	if ins != 1 || outs != 1 || mids != 5 {
		t.Fatalf("ins=%d outs=%d mids=%d", ins, outs, mids)
	}
}

func TestEdgeString(t *testing.T) {
	if (Edge{In, 0}).String() != "in->0" {
		t.Fatalf("got %q", Edge{In, 0}.String())
	}
	if (Edge{4, Out}).String() != "4->out" {
		t.Fatalf("got %q", Edge{4, Out}.String())
	}
	if (Edge{1, 2}).String() != "1->2" {
		t.Fatalf("got %q", Edge{1, 2}.String())
	}
}

func TestModelString(t *testing.T) {
	if Overlap.String() != "OVERLAP" || InOrder.String() != "INORDER" || OutOrder.String() != "OUTORDER" {
		t.Fatal("model names wrong")
	}
	if Model(99).String() != "Model(99)" {
		t.Fatal("unknown model formatting wrong")
	}
}

func TestChainFromOrderAndParallel(t *testing.T) {
	app := workflow.Uniform(3, rat.One, rat.New(1, 2))
	chain, err := ChainFromOrder(app, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !chain.IsChain() {
		t.Fatal("not a chain")
	}
	if !chain.InProd(1).Equal(rat.New(1, 4)) { // after C3 and C1
		t.Fatalf("inProd = %s", chain.InProd(1))
	}
	if _, err := ChainFromOrder(app, []int{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	par, err := Parallel(app)
	if err != nil {
		t.Fatal(err)
	}
	if par.Graph().EdgeCount() != 0 || !par.IsForest() {
		t.Fatal("parallel plan wrong")
	}
}

func TestStringAndDescribe(t *testing.T) {
	eg := fig1()
	s := eg.String()
	if !strings.Contains(s, "5 services") || !strings.Contains(s, "C1->C2") {
		t.Fatalf("String() = %q", s)
	}
	d := eg.Describe()
	if !strings.Contains(d, "Cexec") || !strings.Contains(d, "C5") {
		t.Fatalf("Describe() missing content:\n%s", d)
	}
}

func TestWeightedLoweringMatchesExecGraph(t *testing.T) {
	eg := fig1()
	w := eg.Weighted()
	if w.N() != eg.N() {
		t.Fatal("node count mismatch")
	}
	for v := 0; v < eg.N(); v++ {
		if !w.Comp(v).Equal(eg.Ccomp(v)) {
			t.Fatalf("comp(%d) mismatch", v)
		}
		if !w.Cin(v).Equal(eg.Cin(v)) || !w.Cout(v).Equal(eg.Cout(v)) {
			t.Fatalf("Cin/Cout(%d) mismatch", v)
		}
		for _, m := range Models {
			if !w.Cexec(v, m).Equal(eg.Cexec(v, m)) {
				t.Fatalf("Cexec(%d, %s) mismatch", v, m)
			}
		}
	}
	for _, m := range Models {
		if !w.PeriodLowerBound(m).Equal(eg.PeriodLowerBound(m)) {
			t.Fatalf("period bound mismatch under %s", m)
		}
	}
	if !w.LatencyPathBound().Equal(eg.LatencyPathBound()) {
		t.Fatal("latency bound mismatch")
	}
}

func TestNewWeightedValidation(t *testing.T) {
	one := rat.One
	okEdges := []Edge{{In, 0}, {0, Out}}
	okVols := []rat.Rat{one, one}
	if _, err := NewWeighted(nil, []rat.Rat{one}, okEdges, okVols); err != nil {
		t.Fatalf("valid weighted rejected: %v", err)
	}
	cases := []struct {
		name  string
		comp  []rat.Rat
		edges []Edge
		vols  []rat.Rat
	}{
		{"len mismatch", []rat.Rat{one}, okEdges, []rat.Rat{one}},
		{"negative comp", []rat.Rat{rat.I(-1)}, okEdges, okVols},
		{"negative vol", []rat.Rat{one}, okEdges, []rat.Rat{one, rat.I(-1)}},
		{"duplicate edge", []rat.Rat{one}, []Edge{{In, 0}, {In, 0}, {0, Out}}, []rat.Rat{one, one, one}},
		{"no input", []rat.Rat{one}, []Edge{{0, Out}}, []rat.Rat{one}},
		{"no output", []rat.Rat{one}, []Edge{{In, 0}}, []rat.Rat{one}},
		{"bad endpoint", []rat.Rat{one}, []Edge{{In, 0}, {0, Out}, {5, 0}}, []rat.Rat{one, one, one}},
		{"cycle", []rat.Rat{one, one},
			[]Edge{{In, 0}, {0, 1}, {1, 0}, {1, Out}, {0, Out}, {In, 1}},
			[]rat.Rat{one, one, one, one, one, one}},
	}
	for _, c := range cases {
		if _, err := NewWeighted(nil, c.comp, c.edges, c.vols); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWeightedAccessors(t *testing.T) {
	w := MustNewWeighted([]string{"a", "b"}, []rat.Rat{rat.One, rat.Two},
		[]Edge{{In, 0}, {0, 1}, {1, Out}},
		[]rat.Rat{rat.One, rat.New(1, 2), rat.I(3)})
	if w.Name(0) != "a" || w.Name(1) != "b" {
		t.Fatal("names wrong")
	}
	if idx := w.EdgeIndex(Edge{0, 1}); idx != 1 || !w.Vol(idx).Equal(rat.New(1, 2)) {
		t.Fatal("EdgeIndex/Vol wrong")
	}
	if w.EdgeIndex(Edge{1, 0}) != -1 {
		t.Fatal("missing edge should be -1")
	}
	if len(w.InEdges(1)) != 1 || len(w.OutEdges(0)) != 1 {
		t.Fatal("adjacency wrong")
	}
	if w.Edge(2) != (Edge{1, Out}) {
		t.Fatal("Edge accessor wrong")
	}
	if len(w.Topo()) != 2 {
		t.Fatal("topo wrong")
	}
	// Chain latency bound: 1 + 1 + 1/2 + 2 + 3 = 15/2.
	if !w.LatencyPathBound().Equal(rat.New(15, 2)) {
		t.Fatalf("latency = %s", w.LatencyPathBound())
	}
}
