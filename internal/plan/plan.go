// Package plan implements execution graphs, the first half of a plan in the
// paper's sense: a DAG over services whose transitive closure contains the
// application's precedence constraints, annotated with the derived volumes
// and costs (inProd, outSize, Cin, Ccomp, Cout, Cexec) that every scheduling
// decision is based on.
//
// Entry services receive their input (volume δ0 = 1) from a private input
// node; exit services send their output to a private output node. These
// virtual endpoints appear as the special indices In and Out in Edge values.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// Model identifies one of the paper's three communication models.
type Model int

const (
	// Overlap is the multi-port model with full communication/computation
	// overlap; concurrent communications share bandwidth.
	Overlap Model = iota
	// InOrder is the one-port model without overlap where each server fully
	// processes data set n (receive all, compute, send all) before touching
	// data set n+1.
	InOrder
	// OutOrder is the one-port model without overlap that allows operations
	// of different data sets to interleave on a server.
	OutOrder
)

// Models lists all three communication models in presentation order.
var Models = []Model{Overlap, InOrder, OutOrder}

// String returns the paper's name for the model.
func (m Model) String() string {
	switch m {
	case Overlap:
		return "OVERLAP"
	case InOrder:
		return "INORDER"
	case OutOrder:
		return "OUTORDER"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Virtual node indices used in Edge endpoints.
const (
	// In denotes the private input node of an entry service.
	In = -1
	// Out denotes the private output node of an exit service.
	Out = -2
)

// Edge is one communication of the plan: service-to-service, input-node-to-
// entry-service (From == In) or exit-service-to-output-node (To == Out).
type Edge struct {
	From, To int
}

// String renders the edge using service indices, with "in"/"out" for the
// virtual endpoints.
func (e Edge) String() string {
	from, to := fmt.Sprint(e.From), fmt.Sprint(e.To)
	if e.From == In {
		from = "in"
	}
	if e.To == Out {
		to = "out"
	}
	return from + "->" + to
}

// ExecGraph is an execution graph with all derived quantities precomputed.
// It is immutable after construction.
type ExecGraph struct {
	app     *workflow.App
	g       *dag.Graph
	topo    []int
	anc     []*bitset.Set
	inProd  []rat.Rat // Π σ over strict ancestors
	outSize []rat.Rat // inProd·σ
	edges   []Edge    // all comms incl. virtual, deterministic order
}

// Build constructs an execution graph for app from the given service-to-
// service edges. It fails if the edges form a cycle or if the application's
// precedence constraints are not contained in the transitive closure.
func Build(app *workflow.App, edges [][2]int) (*ExecGraph, error) {
	g := dag.New(app.N())
	for _, e := range edges {
		if e[0] < 0 || e[0] >= app.N() || e[1] < 0 || e[1] >= app.N() {
			return nil, fmt.Errorf("plan: edge %v out of range", e)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("plan: self-loop on service %d", e[0])
		}
		g.AddEdge(e[0], e[1])
	}
	return FromGraph(app, g)
}

// FromGraph constructs an execution graph from an already-built DAG. The
// graph is cloned; the caller keeps ownership of g.
func FromGraph(app *workflow.App, g *dag.Graph) (*ExecGraph, error) {
	if g.N() != app.N() {
		return nil, fmt.Errorf("plan: graph has %d nodes, application has %d services", g.N(), app.N())
	}
	eg := &ExecGraph{app: app, g: g.Clone()}
	topo, err := eg.g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("plan: execution graph is cyclic")
	}
	eg.topo = topo
	ok, err := eg.g.ClosureContains(app.Precedence())
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("plan: execution graph does not honor the precedence constraints")
	}
	eg.anc, err = eg.g.Ancestors()
	if err != nil {
		return nil, err
	}
	n := app.N()
	eg.inProd = make([]rat.Rat, n)
	eg.outSize = make([]rat.Rat, n)
	for _, v := range topo {
		p := rat.One
		// Multiplying along one incoming path would double-count shared
		// ancestors; the paper defines inProd over the ancestor *set*.
		eg.anc[v].ForEach(func(u int) { p = p.Mul(app.Selectivity(u)) })
		eg.inProd[v] = p
		eg.outSize[v] = p.Mul(app.Selectivity(v))
	}
	// Deterministic edge order: input comms, service comms, output comms.
	for v := 0; v < n; v++ {
		if eg.g.InDegree(v) == 0 {
			eg.edges = append(eg.edges, Edge{In, v})
		}
	}
	for _, e := range eg.g.Edges() {
		eg.edges = append(eg.edges, Edge{e[0], e[1]})
	}
	for v := 0; v < n; v++ {
		if eg.g.OutDegree(v) == 0 {
			eg.edges = append(eg.edges, Edge{v, Out})
		}
	}
	return eg, nil
}

// MustBuild is Build that panics on error, for fixed examples and tests.
func MustBuild(app *workflow.App, edges [][2]int) *ExecGraph {
	eg, err := Build(app, edges)
	if err != nil {
		panic(err)
	}
	return eg
}

// App returns the underlying application.
func (eg *ExecGraph) App() *workflow.App { return eg.app }

// Graph returns the service-to-service DAG. The caller must not modify it.
func (eg *ExecGraph) Graph() *dag.Graph { return eg.g }

// N returns the number of services.
func (eg *ExecGraph) N() int { return eg.app.N() }

// Topo returns a topological order of the services.
func (eg *ExecGraph) Topo() []int { return eg.topo }

// Ancestors returns the strict ancestor set of service v.
func (eg *ExecGraph) Ancestors(v int) *bitset.Set { return eg.anc[v] }

// InProd returns Π σ over the strict ancestors of v: the size of the data
// set v receives (per predecessor path merge, as the paper assumes
// independent selectivities and free joins).
func (eg *ExecGraph) InProd(v int) rat.Rat { return eg.inProd[v] }

// OutSize returns InProd(v)·σ_v: the volume v sends to each successor.
func (eg *ExecGraph) OutSize(v int) rat.Rat { return eg.outSize[v] }

// Edges returns every communication of the plan, including the virtual
// input and output communications, in a deterministic order. The returned
// slice is owned by the graph and must not be modified.
func (eg *ExecGraph) Edges() []Edge { return eg.edges }

// CommSize returns the data volume of edge e: δ0 = 1 for input comms, the
// sender's OutSize otherwise.
func (eg *ExecGraph) CommSize(e Edge) rat.Rat {
	if e.From == In {
		return rat.One
	}
	return eg.outSize[e.From]
}

// Cin returns the total incoming communication volume of service v
// (lower bound on its receive time).
func (eg *ExecGraph) Cin(v int) rat.Rat {
	preds := eg.g.Pred(v)
	if len(preds) == 0 {
		return rat.One // input node sends δ0 = 1
	}
	s := rat.Zero
	for _, p := range preds {
		s = s.Add(eg.outSize[p])
	}
	return s
}

// Ccomp returns the computation time of service v: InProd(v)·c_v.
func (eg *ExecGraph) Ccomp(v int) rat.Rat {
	return eg.inProd[v].Mul(eg.app.Cost(v))
}

// Cout returns the total outgoing communication volume of v: one copy of
// OutSize(v) per successor, or one copy to the output node for exit
// services.
func (eg *ExecGraph) Cout(v int) rat.Rat {
	k := eg.g.OutDegree(v)
	if k == 0 {
		k = 1
	}
	return eg.outSize[v].MulInt(int64(k))
}

// Cexec returns the per-service period lower bound under the given model:
// max{Cin, Ccomp, Cout} with overlap, Cin+Ccomp+Cout without.
func (eg *ExecGraph) Cexec(v int, m Model) rat.Rat {
	cin, ccomp, cout := eg.Cin(v), eg.Ccomp(v), eg.Cout(v)
	if m == Overlap {
		return rat.MaxOf(cin, ccomp, cout)
	}
	return cin.Add(ccomp).Add(cout)
}

// PeriodLowerBound returns max_v Cexec(v, m); the OVERLAP bound is always
// achievable (Theorem 1), the one-port bounds are not (paper §2.3).
func (eg *ExecGraph) PeriodLowerBound(m Model) rat.Rat {
	if eg.N() == 0 {
		return rat.Zero
	}
	bound := rat.Zero
	for v := 0; v < eg.N(); v++ {
		bound = rat.Max(bound, eg.Cexec(v, m))
	}
	return bound
}

// LatencyPathBound returns the longest-path latency lower bound: the
// heaviest in-to-out path counting each computation and one copy of each
// traversed communication. With one-port communications and a single path
// this is exact; with branching it remains a valid lower bound for every
// model.
func (eg *ExecGraph) LatencyPathBound() rat.Rat {
	if eg.N() == 0 {
		return rat.Zero
	}
	// done[v] = earliest completion of v's computation along the heaviest
	// path; result adds the exit communication.
	done := make([]rat.Rat, eg.N())
	best := rat.Zero
	for _, v := range eg.topo {
		start := rat.One // in-comm from the input node
		for _, p := range eg.g.Pred(v) {
			t := done[p].Add(eg.outSize[p])
			start = rat.Max(start, t)
		}
		if eg.g.InDegree(v) == 0 {
			start = rat.One
		}
		done[v] = start.Add(eg.Ccomp(v))
		if eg.g.OutDegree(v) == 0 {
			best = rat.Max(best, done[v].Add(eg.outSize[v]))
		}
	}
	return best
}

// IsForest reports whether the execution graph is a forest (every service
// has at most one direct predecessor), the structure that Prop. 4 proves
// sufficient for MINPERIOD without precedence constraints.
func (eg *ExecGraph) IsForest() bool { return eg.g.IsForest() }

// IsChain reports whether the execution graph is a single linear chain.
func (eg *ExecGraph) IsChain() bool { return eg.g.IsChain() }

// String renders a compact description of the graph with per-service costs.
func (eg *ExecGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ExecGraph{%d services", eg.N())
	var es []string
	for _, e := range eg.g.Edges() {
		es = append(es, fmt.Sprintf("%s->%s", eg.app.Name(e[0]), eg.app.Name(e[1])))
	}
	sort.Strings(es)
	if len(es) > 0 {
		fmt.Fprintf(&b, "; %s", strings.Join(es, ", "))
	}
	b.WriteString("}")
	return b.String()
}

// Describe renders a per-service cost table (Cin, Ccomp, Cout, Cexec for
// both model families), for diagnostics and the CLI.
func (eg *ExecGraph) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %14s %14s\n", "service", "Cin", "Ccomp", "Cout", "Cexec(ovl)", "Cexec(1port)")
	for v := 0; v < eg.N(); v++ {
		fmt.Fprintf(&b, "%-10s %12s %12s %12s %14s %14s\n",
			eg.app.Name(v), eg.Cin(v), eg.Ccomp(v), eg.Cout(v),
			eg.Cexec(v, Overlap), eg.Cexec(v, InOrder))
	}
	return b.String()
}

// ChainFromOrder builds the linear-chain execution graph visiting services
// in the given order (a permutation of 0..N-1).
func ChainFromOrder(app *workflow.App, order []int) (*ExecGraph, error) {
	if len(order) != app.N() {
		return nil, fmt.Errorf("plan: order has %d entries, want %d", len(order), app.N())
	}
	edges := make([][2]int, 0, len(order)-1)
	for i := 0; i+1 < len(order); i++ {
		edges = append(edges, [2]int{order[i], order[i+1]})
	}
	return Build(app, edges)
}

// Parallel builds the execution graph with no edges at all: every service
// is independent, fed directly by its input node.
func Parallel(app *workflow.App) (*ExecGraph, error) {
	return Build(app, nil)
}
