package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rat"
	"repro/internal/workflow"
)

// randomApp builds a random application with rational selectivities.
func randomApp(rng *rand.Rand, n int) *workflow.App {
	services := make([]workflow.Service, n)
	for i := range services {
		services[i] = workflow.Service{
			Cost:        rat.New(1+rng.Int63n(12), 1+rng.Int63n(3)),
			Selectivity: rat.New(1+rng.Int63n(30), 10),
		}
	}
	return workflow.MustNew(services, nil)
}

// randomEG builds a random execution graph (forward edges under a random
// permutation).
func randomEG(rng *rand.Rand, app *workflow.App, density float64) *ExecGraph {
	n := app.N()
	perm := rng.Perm(n)
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				edges = append(edges, [2]int{perm[i], perm[j]})
			}
		}
	}
	return MustBuild(app, edges)
}

// TestQuickInProdMatchesBruteForceAncestors checks inProd(v) against a
// direct product over a recomputed ancestor set.
func TestQuickInProdMatchesBruteForceAncestors(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(21))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		app := randomApp(rng, 2+rng.Intn(8))
		eg := randomEG(rng, app, 0.4)
		for v := 0; v < eg.N(); v++ {
			// Brute-force ancestors by reverse DFS over predecessors.
			anc := map[int]bool{}
			var walk func(u int)
			walk = func(u int) {
				for _, p := range eg.Graph().Pred(u) {
					if !anc[p] {
						anc[p] = true
						walk(p)
					}
				}
			}
			walk(v)
			prod := rat.One
			for a := range anc {
				prod = prod.Mul(app.Selectivity(a))
			}
			if !prod.Equal(eg.InProd(v)) {
				return false
			}
			if !eg.OutSize(v).Equal(prod.Mul(app.Selectivity(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCexecDecomposition checks the Cin/Ccomp/Cout identities: the sum
// of Cin over all services equals the sum of Cout minus the boundary terms.
func TestQuickCexecDecomposition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(22))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		app := randomApp(rng, 2+rng.Intn(8))
		eg := randomEG(rng, app, 0.4)
		// Σ_v Cin(v) counts every service edge once plus 1 per entry;
		// Σ_v Cout(v) counts every service edge once plus outSize per exit.
		sumIn, sumOut := rat.Zero, rat.Zero
		entries, exitVol := rat.Zero, rat.Zero
		for v := 0; v < eg.N(); v++ {
			sumIn = sumIn.Add(eg.Cin(v))
			sumOut = sumOut.Add(eg.Cout(v))
			if eg.Graph().InDegree(v) == 0 {
				entries = entries.Add(rat.One)
			}
			if eg.Graph().OutDegree(v) == 0 {
				exitVol = exitVol.Add(eg.OutSize(v))
			}
		}
		return sumIn.Sub(entries).Equal(sumOut.Sub(exitVol))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWeightedLoweringAgrees re-checks the ExecGraph→Weighted lowering
// on random graphs (the Fig-1 case is covered in plan_test.go).
func TestQuickWeightedLoweringAgrees(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(23))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		app := randomApp(rng, 2+rng.Intn(8))
		eg := randomEG(rng, app, 0.4)
		w := eg.Weighted()
		for v := 0; v < eg.N(); v++ {
			for _, m := range Models {
				if !w.Cexec(v, m).Equal(eg.Cexec(v, m)) {
					return false
				}
			}
		}
		return w.LatencyPathBound().Equal(eg.LatencyPathBound())
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
