package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // spans three words
	if !s.IsEmpty() || s.Count() != 0 || s.Len() != 130 {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) after Add", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 5 {
		t.Fatal("Remove failed")
	}
	s.Remove(64) // removing absent element is a no-op
	if s.Count() != 5 {
		t.Fatal("double Remove changed count")
	}
	want := []int{0, 63, 127, 128, 129}
	if got := s.Elements(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	s.Clear()
	if !s.IsEmpty() {
		t.Fatal("Clear failed")
	}
}

func TestFillTrims(t *testing.T) {
	s := New(70)
	s.Fill()
	if s.Count() != 70 {
		t.Fatalf("Fill Count = %d, want 70", s.Count())
	}
	// A second set unioned in must not resurrect out-of-range bits.
	o := New(70)
	o.Fill()
	s.UnionWith(o)
	if s.Count() != 70 {
		t.Fatalf("after union Count = %d", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Has(10) },
		func() { s.Remove(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestSetAlgebra(t *testing.T) {
	a := New(100)
	b := New(100)
	for _, i := range []int{1, 5, 50, 99} {
		a.Add(i)
	}
	for _, i := range []int{5, 50, 80} {
		b.Add(i)
	}

	u := a.Clone()
	if changed := u.UnionWith(b); !changed {
		t.Fatal("union should report change")
	}
	if got := u.Elements(); !reflect.DeepEqual(got, []int{1, 5, 50, 80, 99}) {
		t.Fatalf("union = %v", got)
	}
	if changed := u.UnionWith(b); changed {
		t.Fatal("second union should be a no-op")
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Elements(); !reflect.DeepEqual(got, []int{5, 50}) {
		t.Fatalf("intersection = %v", got)
	}

	d := a.Clone()
	d.SubtractWith(b)
	if got := d.Elements(); !reflect.DeepEqual(got, []int{1, 99}) {
		t.Fatalf("difference = %v", got)
	}

	if !u.ContainsAll(a) || !u.ContainsAll(b) {
		t.Fatal("union must contain both operands")
	}
	if a.ContainsAll(b) {
		t.Fatal("a does not contain 80")
	}
	if !a.Intersects(b) {
		t.Fatal("a and b share elements")
	}
	if i.Intersects(d) {
		t.Fatal("intersection and difference are disjoint")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Add(3)
	c := a.Clone()
	c.Add(4)
	if a.Has(4) {
		t.Fatal("clone not independent")
	}
	b := New(64)
	b.CopyFrom(a)
	b.Add(5)
	if a.Has(5) {
		t.Fatal("CopyFrom not independent")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(50), New(50)
	a.Add(7)
	b.Add(7)
	if !a.Equal(b) {
		t.Fatal("equal sets not Equal")
	}
	b.Add(8)
	if a.Equal(b) {
		t.Fatal("different sets Equal")
	}
	if a.Equal(New(51)) {
		t.Fatal("different universes must not be Equal")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if s.String() != "{}" {
		t.Fatalf("empty String = %q", s.String())
	}
	s.Add(1)
	s.Add(9)
	if s.String() != "{1, 9}" {
		t.Fatalf("String = %q", s.String())
	}
}

// reference implementation: map[int]bool
type refSet map[int]bool

func TestQuickAgainstMapReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	prop := func(ops []uint16) bool {
		const n = 97
		s := New(n)
		ref := refSet{}
		for _, op := range ops {
			i := int(op) % n
			switch (op / 97) % 3 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				if s.Has(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, e := range s.Elements() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}
	build := func(elems []uint16, n int) *Set {
		s := New(n)
		for _, e := range elems {
			s.Add(int(e) % n)
		}
		return s
	}
	prop := func(ea, eb []uint16) bool {
		const n = 130
		a, b := build(ea, n), build(eb, n)
		// complement(a ∪ b) == complement(a) ∩ complement(b)
		u := a.Clone()
		u.UnionWith(b)
		cu := New(n)
		cu.Fill()
		cu.SubtractWith(u)

		ca := New(n)
		ca.Fill()
		ca.SubtractWith(a)
		cb := New(n)
		cb.Fill()
		cb.SubtractWith(b)
		ca.IntersectWith(cb)
		return cu.Equal(ca)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}

func BenchmarkForEach(b *testing.B) {
	x := New(4096)
	for i := 0; i < 4096; i += 2 {
		x.Add(i)
	}
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(e int) { sum += e })
	}
	_ = sum
}
