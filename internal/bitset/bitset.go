// Package bitset provides a compact dense bitset used throughout the
// scheduler for ancestor sets, reachability matrices and execution-graph
// enumeration. Sets are fixed-capacity: every operation assumes both
// operands were created with the same length.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset over the universe [0, Len()).
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the universe size the set was created with.
func (s *Set) Len() int { return s.n }

// check panics if i is outside the universe. Out-of-range access is always a
// bug in the callers, never recoverable input error.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (i % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits beyond the universe in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (s.n % wordBits)) - 1
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o (same universe required).
func (s *Set) CopyFrom(o *Set) {
	s.sameUniverse(o)
	copy(s.words, o.words)
}

func (s *Set) sameUniverse(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, o.n))
	}
}

// UnionWith adds every element of o to s and reports whether s changed.
func (s *Set) UnionWith(o *Set) bool {
	s.sameUniverse(o)
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			changed = true
			s.words[i] = nw
		}
	}
	return changed
}

// IntersectWith removes from s every element not in o.
func (s *Set) IntersectWith(o *Set) {
	s.sameUniverse(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// SubtractWith removes from s every element of o.
func (s *Set) SubtractWith(o *Set) {
	s.sameUniverse(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every element of o is in s.
func (s *Set) ContainsAll(o *Set) bool {
	s.sameUniverse(o)
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	s.sameUniverse(o)
	for i, w := range o.words {
		if w&s.words[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every element in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elements returns the members of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
