// Package resilience provides the failure-isolation primitives of the
// cluster layer (DESIGN.md §5): a circuit breaker and a bounded
// retry-with-backoff helper.
//
// The breaker is a per-peer state machine wired around every forward in
// internal/cluster: Closed (traffic flows; K consecutive failures open
// it) → Open (traffic is rejected without touching the peer until the
// cooldown elapses) → HalfOpen (exactly one probe is let through; its
// success closes the breaker, its failure re-opens it). A flapping
// replica is therefore isolated after K failures instead of being
// hammered by every request, while the deterministic local solve keeps
// answering in its place — the breaker decides only WHO computes an
// answer, never what the answer is.
//
// Retry bounds re-attempts of idempotent operations: a fixed number of
// tries with doubling backoff, aborted early by context death or a
// Permanent error. Planning forwards are idempotent by the determinism
// invariant (the same request always has the same answer), so a retry
// can never produce a different response — it only rides out transient
// transport noise.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is the breaker position.
type State int32

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed State = iota
	// Open: traffic is rejected until the cooldown elapses.
	Open
	// HalfOpen: one probe is in flight; its outcome decides the state.
	HalfOpen
)

// String names the state for stats and metrics labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig tunes a Breaker. The zero value requests defaults.
type BreakerConfig struct {
	// Threshold is K: consecutive failures that open the breaker
	// (default 3).
	Threshold int
	// Cooldown is the Open → HalfOpen delay (default 5s).
	Cooldown time.Duration
	// Now is the clock (default time.Now) — injectable for tests.
	Now func() time.Time
	// OnTransition, when set, observes every state change (from, to).
	// It runs outside the breaker's lock, so it may log or call back into
	// the breaker; consequently it can observe states slightly out of
	// order under contention — acceptable for its observability purpose.
	OnTransition func(from, to State)
}

// Breaker is a circuit breaker. Create with NewBreaker; all methods are
// safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while Closed
	openedAt time.Time // of the transition to Open (or its refresh)
	probing  bool      // HalfOpen: the single probe slot is taken
	opens    int64     // transitions to Open, for metrics
}

// NewBreaker returns a Closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may proceed. Closed always allows.
// Open allows nothing until the cooldown has elapsed, at which point the
// breaker moves to HalfOpen and this call takes the single probe slot.
// HalfOpen allows only the caller holding that slot; everyone else is
// rejected until the probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var moved bool
	var allowed bool
	switch b.state {
	case Closed:
		allowed = true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = HalfOpen
			b.probing = true
			moved = true
			allowed = true
		}
	default: // HalfOpen
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	if moved {
		b.notify(Open, HalfOpen)
	}
	return allowed
}

// Success records a successful interaction with the peer: the failure
// streak resets and the breaker closes (from any state — a peer that
// demonstrably answered is healthy, whether the proof came from a
// half-open probe or an out-of-band health check).
func (b *Breaker) Success() {
	b.mu.Lock()
	from := b.state
	b.state = Closed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	if from != Closed {
		b.notify(from, Closed)
	}
}

// Failure records a failed interaction. Closed: the streak grows, and at
// Threshold the breaker opens. HalfOpen: the probe failed, the breaker
// re-opens. Open: the cooldown clock refreshes (out-of-band failures —
// health probes — keep a dead peer's breaker open without waiting for a
// half-open trial).
func (b *Breaker) Failure() {
	b.mu.Lock()
	from := b.state
	opened := false
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.openLocked()
			opened = true
		}
	case HalfOpen:
		b.openLocked()
		opened = true
	case Open:
		b.openedAt = b.cfg.Now()
	}
	b.mu.Unlock()
	if opened {
		b.notify(from, Open)
	}
}

// openLocked transitions to Open. Callers hold b.mu.
func (b *Breaker) openLocked() {
	b.state = Open
	b.failures = 0
	b.probing = false
	b.openedAt = b.cfg.Now()
	b.opens++
}

// notify fires the transition hook, if any, outside the breaker's lock.
func (b *Breaker) notify(from, to State) {
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// State returns the current position. An elapsed cooldown only shows
// after the next Allow — State never mutates.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts the transitions into Open since creation.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry stops immediately instead of re-trying —
// for failures more attempts cannot fix (a request that cannot be built,
// a breaker that opened mid-retry, a caller whose own context died).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Retry runs op up to attempts times (minimum 1), sleeping backoff
// before the first re-attempt and doubling it after each, until op
// succeeds, returns a Permanent error, or ctx dies (a nil ctx never
// dies). It returns nil on success and the last error otherwise,
// unwrapped of the Permanent marker.
func Retry(ctx context.Context, attempts int, backoff time.Duration, op func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return ctx.Err()
			}
			backoff *= 2
		}
		if err = op(); err == nil {
			return nil
		}
		var p *permanentError
		if errors.As(err, &p) {
			return p.err
		}
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("%w (last attempt: %w)", ctx.Err(), err)
		}
	}
	return err
}
