package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an adjustable Now for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(k int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{Threshold: k, Cooldown: cooldown, Now: clock.now}), clock
}

func TestBreakerOpensAfterKConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != Closed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker rejected after %d failures", i+1)
		}
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after 3 failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Error("open breaker allowed a request before the cooldown")
	}
	if b.Opens() != 1 {
		t.Errorf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsTheStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", got)
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("3 consecutive failures left state %v", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clock := newTestBreaker(1, time.Minute)
	b.Failure() // open
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	clock.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but the probe was rejected")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	if b.Allow() {
		t.Error("second caller stole the half-open probe slot")
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("probe success left state %v", got)
	}
	if !b.Allow() {
		t.Error("closed breaker rejected")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clock := newTestBreaker(1, time.Minute)
	b.Failure()
	clock.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("probe failure left state %v, want open", got)
	}
	if b.Allow() {
		t.Error("re-opened breaker allowed immediately")
	}
	if b.Opens() != 2 {
		t.Errorf("opens = %d, want 2", b.Opens())
	}
	// Failures while open refresh the cooldown (health probes keep a dead
	// peer's breaker open).
	clock.advance(50 * time.Second)
	b.Failure()
	clock.advance(30 * time.Second)
	if b.Allow() {
		t.Error("refreshed cooldown did not hold the breaker open")
	}
	clock.advance(31 * time.Second)
	if !b.Allow() {
		t.Error("cooldown after the refresh did not elapse")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b, _ := newTestBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if j%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				_ = b.State()
				_ = b.Opens()
			}
		}(i)
	}
	wg.Wait()
}

// TestBreakerHalfOpenProbeRace: two goroutines racing Allow on a
// breaker whose cooldown just elapsed must admit EXACTLY one — the
// half-open probe slot is single-occupancy under contention, not just
// sequentially. Run with -race; the assertion holds for any number of
// racers.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	for round := 0; round < 100; round++ {
		b, clock := newTestBreaker(1, time.Minute)
		b.Failure() // open
		clock.advance(time.Minute)

		const racers = 8
		var start, done sync.WaitGroup
		admitted := make(chan bool, racers)
		start.Add(1)
		done.Add(racers)
		for i := 0; i < racers; i++ {
			go func() {
				defer done.Done()
				start.Wait() // maximize the collision window
				admitted <- b.Allow()
			}()
		}
		start.Done()
		done.Wait()
		close(admitted)

		n := 0
		for ok := range admitted {
			if ok {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("round %d: %d racers took the half-open probe slot, want exactly 1", round, n)
		}
		if got := b.State(); got != HalfOpen {
			t.Fatalf("round %d: state %v, want half-open", round, got)
		}
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err %v after %d calls", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	wantErr := errors.New("still down")
	err := Retry(context.Background(), 3, time.Microsecond, func() error {
		calls++
		return fmt.Errorf("attempt %d: %w", calls, wantErr)
	})
	if calls != 3 || !errors.Is(err, wantErr) {
		t.Fatalf("calls %d err %v", calls, err)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	inner := errors.New("bad request")
	err := Retry(context.Background(), 5, time.Microsecond, func() error {
		calls++
		return Permanent(inner)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	// The marker is stripped: callers see the underlying error.
	if !errors.Is(err, inner) || IsPermanent(err) {
		t.Fatalf("err %v (permanent %v)", err, IsPermanent(err))
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, 10, time.Hour, func() error {
		calls++
		cancel() // die while backing off
		return errors.New("transient")
	})
	if calls != 1 {
		t.Fatalf("%d calls after cancellation", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}
