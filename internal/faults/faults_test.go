package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDecideIsDeterministic: two injectors with the same seed draw
// identical fault sequences on every stream; a different seed diverges.
func TestDecideIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 5, Err: 7, Truncate: 11, Delay: 3}
	a, b := New(cfg), New(cfg)
	streams := []string{"http://peer-1:8080", "http://peer-2:8080", "store.write"}
	for _, stream := range streams {
		for n := 0; n < 256; n++ {
			aAct, aDelay := a.Decide(stream)
			bAct, bDelay := b.Decide(stream)
			if aAct != bAct || aDelay != bDelay {
				t.Fatalf("stream %s call %d: %v/%v vs %v/%v",
					stream, n, aAct, aDelay, bAct, bDelay)
			}
		}
	}

	other := New(Config{Seed: 43, Drop: 5, Err: 7, Truncate: 11, Delay: 3})
	same := true
	fresh := New(cfg)
	for n := 0; n < 256 && same; n++ {
		fAct, _ := fresh.Decide("http://peer-1:8080")
		oAct, _ := other.Decide("http://peer-1:8080")
		same = fAct == oAct
	}
	if same {
		t.Error("seeds 42 and 43 drew identical 256-call sequences")
	}
}

// TestDecideStreamsAreIndependent: interleaving calls on one stream does
// not shift another stream's sequence — the per-stream counter, not
// global call order, indexes the schedule.
func TestDecideStreamsAreIndependent(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 3, Err: 5, Truncate: 7, Delay: 11}
	solo := New(cfg)
	var want []Action
	for n := 0; n < 64; n++ {
		act, _ := solo.Decide("http://peer-a")
		want = append(want, act)
	}

	mixed := New(cfg)
	for n := 0; n < 64; n++ {
		mixed.Decide("http://peer-b") // noise on another stream
		act, _ := mixed.Decide("http://peer-a")
		if act != want[n] {
			t.Fatalf("call %d on peer-a drew %v with interleaving, %v without", n, act, want[n])
		}
		mixed.Decide("http://peer-c")
	}
}

// TestDecideRates: every configured fault fires at roughly its 1-in-N
// rate over a long sequence, and a zero rate never fires.
func TestDecideRates(t *testing.T) {
	in := New(Config{Seed: 1, Drop: 10})
	const calls = 10000
	for i := 0; i < calls; i++ {
		in.Decide("s")
	}
	st := in.Stats()
	if st.Calls != calls {
		t.Fatalf("calls %d", st.Calls)
	}
	if st.Errors != 0 || st.Truncates != 0 || st.Delays != 0 {
		t.Errorf("disabled faults fired: %+v", st)
	}
	// 1-in-10 over 10000 calls: expect ~1000, accept a wide band.
	if st.Drops < 500 || st.Drops > 2000 {
		t.Errorf("drop rate 1/10 produced %d drops in %d calls", st.Drops, calls)
	}
}

// TestRoundTripperInjection drives a real HTTP round trip through each
// fault: drops surface as transport errors, injected 502s as responses,
// truncation as a mid-body read failure — all marked IsInjected.
func TestRoundTripperInjection(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	get := func(client *http.Client) (*http.Response, error) {
		return client.Get(ts.URL)
	}

	t.Run("drop", func(t *testing.T) {
		in := New(Config{Seed: 1, Drop: 1}) // every call drops
		client := &http.Client{Transport: in.RoundTripper(nil)}
		_, err := get(client)
		if err == nil {
			t.Fatal("dropped request succeeded")
		}
		if !strings.Contains(err.Error(), "injected") {
			t.Errorf("drop error %v not marked injected", err)
		}
	})

	t.Run("error", func(t *testing.T) {
		in := New(Config{Seed: 1, Err: 1})
		client := &http.Client{Transport: in.RoundTripper(nil)}
		resp, err := get(client)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Errorf("injected error status %d, want 502", resp.StatusCode)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		in := New(Config{Seed: 1, Truncate: 1})
		client := &http.Client{Transport: in.RoundTripper(nil)}
		resp, err := get(client)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil {
			t.Fatalf("truncated body read %d bytes cleanly (payload %d)", len(body), len(payload))
		}
		if !IsInjected(err) {
			t.Errorf("truncation error %v not IsInjected", err)
		}
		if len(body) >= len(payload) {
			t.Errorf("truncation delivered the full %d-byte payload", len(body))
		}
	})

	t.Run("delay", func(t *testing.T) {
		in := New(Config{Seed: 1, Delay: 1, MaxDelay: 40 * time.Millisecond})
		client := &http.Client{Transport: in.RoundTripper(nil)}
		start := time.Now()
		resp, err := get(client)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if elapsed := time.Since(start); elapsed < time.Millisecond {
			t.Errorf("delayed call returned in %v", elapsed)
		}
	})
}

// TestSetDownKillsAndRestores: a down target drops every request
// regardless of the schedule; restoring it brings traffic back. This is
// the suites' kill-a-replica switch.
func TestSetDownKillsAndRestores(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	in := New(Config{Seed: 9}) // no scheduled faults at all
	client := &http.Client{Transport: in.RoundTripper(nil)}

	if _, err := client.Get(ts.URL); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	in.SetDown(ts.URL, true)
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("call to a down target succeeded")
	}
	in.SetDown(ts.URL, false)
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("restored target still down: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestStoreHooksInjection: the store-facing hook fails, tears, or passes
// writes on the deterministic schedule; a nil receiver is a no-op.
func TestStoreHooksInjection(t *testing.T) {
	data := []byte(strings.Repeat("y", 100))

	var zero StoreHooks
	out, err := zero.BeforeWrite("e", data)
	if err != nil || len(out) != len(data) {
		t.Fatalf("zero hooks altered the write: %d bytes, %v", len(out), err)
	}

	fail := New(Config{Seed: 1, Err: 1}).StoreHooks()
	if _, err := fail.BeforeWrite("e", data); err == nil {
		t.Error("scheduled write error did not fire")
	}

	tear := New(Config{Seed: 1, Truncate: 1}).StoreHooks()
	out, err = tear.BeforeWrite("e", data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(data) {
		t.Errorf("torn write kept %d of %d bytes", len(out), len(data))
	}
}
