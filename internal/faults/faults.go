// Package faults is the deterministic fault-injection layer of the
// cluster's robustness suites (DESIGN.md §4): a seeded decision source
// plus two injection points — an http.RoundTripper wrapper for the wire
// and I/O hooks for the plan store — that drop, delay, truncate and error
// operations on a fixed, reproducible schedule.
//
// Determinism is the whole point. Every decision is a pure function of
// (seed, stream, n-th call on that stream): the n-th store write or the
// n-th forward to one peer sees the same fault in every run with the same
// seed, so a failing chaos test replays exactly. Concurrency only
// interleaves WHICH request draws which sequence number per stream; the
// properties the suites assert (zero client-visible 5xx, bit-identical
// answers, convergence) hold under every interleaving, which is what
// makes them race-enabled.
//
// The injector never changes an answer — it can only lose, slow, cut or
// fail an interaction. The cluster's job is to make that invisible to
// clients; the suites in internal/cluster prove it does.
package faults

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Action is one injected fault.
type Action int

const (
	// None: the operation proceeds untouched.
	None Action = iota
	// Drop: the operation fails as if the wire (or disk) swallowed it —
	// a transport error, no response.
	Drop
	// Error: the operation completes with a failure the other side
	// produced — an HTTP 502 on the wire, a write error in the store.
	Error
	// Truncate: the operation's payload is cut short mid-body — a peer
	// dying mid-response, a torn write.
	Truncate
	// Delay: the operation succeeds after an injected pause.
	Delay
)

// String names the action for counters and logs.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Error:
		return "error"
	case Truncate:
		return "truncate"
	default:
		return "delay"
	}
}

// Config tunes an Injector. Rates are 1-in-N per call (0 disables that
// fault). Rate checks are ordered drop, error, truncate, delay: one call
// suffers at most one fault.
type Config struct {
	// Seed fixes the schedule. Two injectors with the same seed and
	// config make identical decisions on every stream.
	Seed int64
	// Drop fails 1-in-Drop operations with a transport-level error.
	Drop int
	// Err completes 1-in-Err operations with a produced failure (HTTP
	// 502 / write error).
	Err int
	// Truncate cuts 1-in-Truncate payloads short.
	Truncate int
	// Delay pauses 1-in-Delay operations for up to MaxDelay.
	Delay int
	// MaxDelay bounds one injected pause (default 20ms). The actual
	// pause is a deterministic fraction of it per decision.
	MaxDelay time.Duration
}

// Stats counts injected faults since creation.
type Stats struct {
	Calls     int64
	Drops     int64
	Errors    int64
	Truncates int64
	Delays    int64
}

// Injector is a seeded fault source. Create with New; all methods are
// safe for concurrent use.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	streams map[string]*uint64 // per-stream call counters

	calls     atomic.Int64
	drops     atomic.Int64
	errors    atomic.Int64
	truncates atomic.Int64
	delays    atomic.Int64

	// down marks targets (peer base URLs) whose every operation drops —
	// the "kill this replica" switch of the in-process suites, flipped
	// and restored without tearing down listeners.
	down sync.Map // string -> bool
}

// New returns an injector with the given schedule.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &Injector{cfg: cfg, streams: make(map[string]*uint64)}
}

// splitmix64 is the repository's stream-seeding mixer (internal/par uses
// the same construction): a full-avalanche pass over the call identity.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashStream folds a stream name into the seed (FNV-1a).
func hashStream(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// next returns the sequence number of this call on stream.
func (in *Injector) next(stream string) uint64 {
	in.mu.Lock()
	c, ok := in.streams[stream]
	if !ok {
		c = new(uint64)
		in.streams[stream] = c
	}
	n := *c
	*c++
	in.mu.Unlock()
	return n
}

// Decide draws the fault for the next call on stream: a pure function of
// (seed, stream, call number). The returned delay is meaningful only for
// Delay.
func (in *Injector) Decide(stream string) (Action, time.Duration) {
	n := in.next(stream)
	in.calls.Add(1)
	r := splitmix64(uint64(in.cfg.Seed) ^ hashStream(stream) ^ (n * 0x9e3779b97f4a7c15))
	pick := func(rate int, shift uint) bool {
		return rate > 0 && (r>>shift)%uint64(rate) == 0
	}
	switch {
	case pick(in.cfg.Drop, 0):
		in.drops.Add(1)
		return Drop, 0
	case pick(in.cfg.Err, 13):
		in.errors.Add(1)
		return Error, 0
	case pick(in.cfg.Truncate, 26):
		in.truncates.Add(1)
		return Truncate, 0
	case pick(in.cfg.Delay, 39):
		in.delays.Add(1)
		// A deterministic fraction of MaxDelay in [1/8, 1].
		frac := 1 + (r>>52)%8
		return Delay, in.cfg.MaxDelay * time.Duration(frac) / 8
	}
	return None, 0
}

// SetDown marks (or clears) a target as dead: every operation whose
// stream has the target as a prefix drops unconditionally until restored.
// This is the deterministic stand-in for killing a process in the
// in-process suites.
func (in *Injector) SetDown(target string, dead bool) {
	if dead {
		in.down.Store(target, true)
	} else {
		in.down.Delete(target)
	}
}

// isDown reports whether stream addresses a target marked dead.
func (in *Injector) isDown(stream string) bool {
	dead := false
	in.down.Range(func(k, _ any) bool {
		if strings.HasPrefix(stream, k.(string)) {
			dead = true
			return false
		}
		return true
	})
	return dead
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:     in.calls.Load(),
		Drops:     in.drops.Load(),
		Errors:    in.errors.Load(),
		Truncates: in.truncates.Load(),
		Delays:    in.delays.Load(),
	}
}

// errInjected marks a fault-injected transport failure.
type errInjected struct{ what string }

func (e *errInjected) Error() string { return "faults: injected " + e.what }

// IsInjected reports whether err came from this package — so suites can
// tell injected noise from real bugs.
func IsInjected(err error) bool {
	_, ok := err.(*errInjected)
	return ok
}

// roundTripper wraps a base transport with the injector's schedule. The
// stream of a request is its scheme://host, so each peer has its own
// deterministic fault sequence regardless of client concurrency.
type roundTripper struct {
	in   *Injector
	base http.RoundTripper
}

// RoundTripper wraps base (nil: http.DefaultTransport) with fault
// injection. Pass it as the Transport of the router's forwarding client.
func (in *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{in: in, base: base}
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	stream := req.URL.Scheme + "://" + req.URL.Host
	if rt.in.isDown(stream) {
		rt.in.drops.Add(1)
		return nil, &errInjected{what: "drop (target down): " + stream}
	}
	action, pause := rt.in.Decide(stream)
	switch action {
	case Drop:
		return nil, &errInjected{what: "drop: " + stream}
	case Error:
		// A produced failure: the peer answered, but with a 502. The
		// caller must treat it as a peer failure, not a client answer.
		return &http.Response{
			StatusCode: http.StatusBadGateway,
			Status:     "502 Bad Gateway (injected)",
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("faults: injected error")),
			Request:    req,
		}, nil
	case Delay:
		timer := time.NewTimer(pause)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil || action != Truncate {
		return resp, err
	}
	// Truncate: cut the body after a deterministic handful of bytes; the
	// reader then fails, so the caller sees a mid-body peer death.
	resp.Body = &truncatingBody{rc: resp.Body, remaining: 16}
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp, nil
}

// truncatingBody yields at most remaining bytes, then fails the read —
// an unexpected cut, not a clean EOF, so buffered readers detect it.
type truncatingBody struct {
	rc        io.ReadCloser
	remaining int
}

func (t *truncatingBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, &errInjected{what: "truncated body"}
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= n
	if err == io.EOF {
		// The upstream body really ended inside the budget: pass the EOF
		// through, this call drew a truncation the body was too short to
		// suffer.
		return n, err
	}
	if t.remaining <= 0 {
		t.rc.Close()
		return n, &errInjected{what: "truncated body"}
	}
	return n, err
}

func (t *truncatingBody) Close() error { return t.rc.Close() }

// StoreHooks adapts the injector to the plan store's I/O hook points
// (store.Hooks): writes on the "store.write" stream can drop (write
// error), error, truncate (torn payload on disk) or delay. The store's
// quarantine path turns a truncated entry into a skipped-and-renamed
// file on the next load instead of a startup abort.
func (in *Injector) StoreHooks() StoreHooks {
	return StoreHooks{in: in}
}

// StoreHooks is the store-facing injection point. Its method set matches
// store.Hooks so the store package needs no dependency on this one.
type StoreHooks struct {
	in *Injector
}

// BeforeWrite intercepts one entry write: it may fail the write, tear
// the payload, or pause. A nil receiver injects nothing.
func (h StoreHooks) BeforeWrite(name string, data []byte) ([]byte, error) {
	if h.in == nil {
		return data, nil
	}
	action, pause := h.in.Decide("store.write")
	switch action {
	case Drop, Error:
		return nil, &errInjected{what: "store write failure: " + name}
	case Truncate:
		if len(data) > 2 {
			return data[:len(data)/2], nil
		}
	case Delay:
		time.Sleep(pause)
	}
	return data, nil
}

// String renders the schedule for logs.
func (in *Injector) String() string {
	return fmt.Sprintf("faults(seed=%d drop=1/%d err=1/%d trunc=1/%d delay=1/%d)",
		in.cfg.Seed, in.cfg.Drop, in.cfg.Err, in.cfg.Truncate, in.cfg.Delay)
}
