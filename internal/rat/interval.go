package rat

// Certified float intervals: the bridge between exact rational arithmetic
// and the float pre-filters on the search hot path. An Interval encloses an
// exact Rat between two float64 endpoints whose correctness is certified by
// exact comparison (FromFloat is exact — floats are binary rationals), so a
// pre-filter that separates two quantities through intervals proves the
// exact comparison without performing it. When the intervals overlap the
// caller must fall back to exact arithmetic; nothing here is ever allowed
// to decide a comparison the endpoints cannot certify.

import "math"

// Interval is a closed float64 enclosure of an exact rational: Lo ≤ r ≤ Hi,
// certified at construction. Non-finite rationals-out-of-range degrade to
// the whole extended real line, which certifies nothing and forces the
// exact fallback.
type Interval struct {
	Lo, Hi float64
}

// Interval returns a certified enclosure of r. Float64 rounds to nearest,
// so the loops below run at most one step in practice; they are exact-
// comparison-guarded, never trusted.
func (r Rat) Interval() Interval {
	f := r.Float64()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Interval{math.Inf(-1), math.Inf(1)}
	}
	lo := f
	for !math.IsInf(lo, -1) && FromFloat(lo).Greater(r) {
		lo = math.Nextafter(lo, math.Inf(-1))
	}
	hi := f
	for !math.IsInf(hi, 1) && FromFloat(hi).Less(r) {
		hi = math.Nextafter(hi, math.Inf(1))
	}
	return Interval{lo, hi}
}

// AddUp returns a float64 guaranteed ≥ the exact real sum a+b. The rounded
// sum is within one ulp of the exact value, so one upward step certifies
// the direction; +Inf stays +Inf and an overflow to -Inf steps back to
// -MaxFloat64, which still dominates any sum that rounded there.
func AddUp(a, b float64) float64 {
	return math.Nextafter(a+b, math.Inf(1))
}

// AddDown returns a float64 guaranteed ≤ the exact real sum a+b.
func AddDown(a, b float64) float64 {
	return math.Nextafter(a+b, math.Inf(-1))
}

// MulUp returns a float64 guaranteed ≥ the exact real product a·b, and
// MulDown one guaranteed ≤ it — same one-ulp directed step as AddUp/AddDown
// (the rounded product is within half an ulp of the exact value).
func MulUp(a, b float64) float64 {
	return math.Nextafter(a*b, math.Inf(1))
}

func MulDown(a, b float64) float64 {
	return math.Nextafter(a*b, math.Inf(-1))
}
