// Package rat implements immutable exact rational arithmetic with an int64
// fast path and transparent promotion to math/big on overflow.
//
// The scheduling theory reproduced by this repository depends on exact
// arithmetic: optimal periods are rationals such as 23/3, selectivities are
// values such as 9999/10000, and the NP-hardness gadgets use constants with
// denominators of the form 2^n. Floating point would silently break validator
// decisions (interval disjointness, bandwidth capacity), so every quantity on
// the correctness path is a Rat.
//
// A Rat is a value type: all operations return new values and never mutate
// their operands, so Rats may be freely copied, shared across goroutines and
// embedded in other structs. The zero value is the number 0 and is ready to
// use.
package rat

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"strconv"
	"strings"
)

// Rat is an immutable arbitrary-precision rational number.
//
// Internally a Rat is either "small" (numerator and denominator fit in
// int64; b is nil) or "big" (b holds a normalized big.Rat and the small
// fields are unused). Small Rats keep den > 0 and gcd(|num|, den) == 1.
// Operations stay on the int64 fast path whenever the result fits and
// promote to big.Rat otherwise; big results that fit back in int64 are
// demoted so chains of operations recover the fast path.
type Rat struct {
	num int64
	den int64 // 0 means "zero value, interpret as 0/1"; otherwise > 0
	b   *big.Rat
}

// Common constants. They are values, not pointers, so they cannot be
// corrupted by callers.
var (
	// Zero is the rational 0.
	Zero = Rat{num: 0, den: 1}
	// One is the rational 1.
	One = Rat{num: 1, den: 1}
	// Two is the rational 2.
	Two = Rat{num: 2, den: 1}
)

// New returns the rational num/den in lowest terms. It panics if den == 0;
// a zero denominator is always a programming error in this code base.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if num == math.MinInt64 || den == math.MinInt64 {
		// Negation of MinInt64 overflows; take the slow path.
		return fromBigRat(new(big.Rat).SetFrac64(num, den))
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Rat{num: num, den: den}
}

// I returns the rational n/1.
func I(n int64) Rat { return Rat{num: n, den: 1} }

// FromBig returns a Rat equal to r. The argument is copied; later mutation
// of r does not affect the result.
func FromBig(r *big.Rat) Rat {
	return fromBigRat(new(big.Rat).Set(r))
}

// FromFloat returns the exact rational value of f (floats are binary
// rationals). It panics if f is NaN or infinite.
func FromFloat(f float64) Rat {
	br := new(big.Rat).SetFloat64(f)
	if br == nil {
		panic(fmt.Sprintf("rat: FromFloat(%v): not finite", f))
	}
	return fromBigRat(br)
}

// fromBigRat normalizes ownership of br (the caller must not retain it) and
// demotes to the small representation when possible.
func fromBigRat(br *big.Rat) Rat {
	if br.Num().IsInt64() && br.Denom().IsInt64() {
		n, d := br.Num().Int64(), br.Denom().Int64()
		if n != math.MinInt64 && d != math.MinInt64 {
			// big.Rat is already normalized with positive denominator.
			return Rat{num: n, den: d}
		}
	}
	return Rat{b: br}
}

// big returns the value as a big.Rat. The result is freshly allocated for
// small Rats and MUST NOT be mutated when r is big; use bigCopy for a
// mutable copy.
func (r Rat) big() *big.Rat {
	if r.b != nil {
		return r.b
	}
	d := r.den
	if d == 0 {
		d = 1
	}
	return new(big.Rat).SetFrac64(r.num, d)
}

// bigCopy returns a freshly allocated big.Rat equal to r.
func (r Rat) bigCopy() *big.Rat {
	if r.b != nil {
		return new(big.Rat).Set(r.b)
	}
	return r.big()
}

// Big returns a freshly allocated big.Rat equal to r; the caller owns it.
func (r Rat) Big() *big.Rat { return r.bigCopy() }

// small reports whether r uses the int64 representation, normalizing the
// zero value's denominator.
func (r Rat) small() (n, d int64, ok bool) {
	if r.b != nil {
		return 0, 0, false
	}
	d = r.den
	if d == 0 {
		d = 1
	}
	return r.num, d, true
}

// Add returns r + o.
func (r Rat) Add(o Rat) Rat {
	rn, rd, rok := r.small()
	on, od, ook := o.small()
	if rok && ook {
		// r + o = (rn*od + on*rd) / (rd*od), computed with overflow checks.
		if x, ok := mul64(rn, od); ok {
			if y, ok := mul64(on, rd); ok {
				if s, ok := add64(x, y); ok {
					if d, ok := mul64(rd, od); ok {
						return New(s, d)
					}
				}
			}
		}
	}
	return fromBigRat(new(big.Rat).Add(r.big(), o.big()))
}

// Sub returns r - o.
func (r Rat) Sub(o Rat) Rat { return r.Add(o.Neg()) }

// Neg returns -r.
func (r Rat) Neg() Rat {
	if n, d, ok := r.small(); ok && n != math.MinInt64 {
		return Rat{num: -n, den: d}
	}
	return fromBigRat(new(big.Rat).Neg(r.big()))
}

// Mul returns r * o.
func (r Rat) Mul(o Rat) Rat {
	rn, rd, rok := r.small()
	on, od, ook := o.small()
	if rok && ook {
		// Cross-reduce first so intermediate products stay small.
		g1 := gcd64(abs64(rn), od)
		g2 := gcd64(abs64(on), rd)
		a, b := rn/g1, on/g2
		c, d := rd/g2, od/g1
		if n, ok := mul64(a, b); ok {
			if dd, ok := mul64(c, d); ok {
				return Rat{num: n, den: dd} // already in lowest terms
			}
		}
	}
	return fromBigRat(new(big.Rat).Mul(r.big(), o.big()))
}

// Div returns r / o. It panics if o is zero.
func (r Rat) Div(o Rat) Rat {
	if o.IsZero() {
		panic("rat: division by zero")
	}
	return r.Mul(o.Inv())
}

// Inv returns 1/r. It panics if r is zero.
func (r Rat) Inv() Rat {
	if r.IsZero() {
		panic("rat: inverse of zero")
	}
	if n, d, ok := r.small(); ok && n != math.MinInt64 {
		if n < 0 {
			return Rat{num: -d, den: -n}
		}
		return Rat{num: d, den: n}
	}
	return fromBigRat(new(big.Rat).Inv(r.big()))
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.Sign() < 0 {
		return r.Neg()
	}
	return r
}

// MulInt returns r * k.
func (r Rat) MulInt(k int64) Rat { return r.Mul(I(k)) }

// AddInt returns r + k.
func (r Rat) AddInt(k int64) Rat { return r.Add(I(k)) }

// PowInt returns r^k for any integer k (negative exponents invert r and
// panic if r is zero).
func (r Rat) PowInt(k int) Rat {
	if k < 0 {
		return r.Inv().PowInt(-k)
	}
	result := One
	base := r
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return result
}

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	if r.b != nil {
		return r.b.Sign()
	}
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.Sign() == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool {
	if n, d, ok := r.small(); ok {
		_ = n
		return d == 1
	}
	return r.b.IsInt()
}

// Cmp compares r and o, returning -1 if r < o, 0 if r == o, +1 if r > o.
func (r Rat) Cmp(o Rat) int {
	rn, rd, rok := r.small()
	on, od, ook := o.small()
	if rok && ook {
		// Compare rn/rd and on/od via 128-bit cross multiplication.
		return cmpCross(rn, rd, on, od)
	}
	return r.big().Cmp(o.big())
}

// Equal reports whether r == o.
func (r Rat) Equal(o Rat) bool { return r.Cmp(o) == 0 }

// Less reports whether r < o.
func (r Rat) Less(o Rat) bool { return r.Cmp(o) < 0 }

// Leq reports whether r <= o.
func (r Rat) Leq(o Rat) bool { return r.Cmp(o) <= 0 }

// Greater reports whether r > o.
func (r Rat) Greater(o Rat) bool { return r.Cmp(o) > 0 }

// Geq reports whether r >= o.
func (r Rat) Geq(o Rat) bool { return r.Cmp(o) >= 0 }

// Min returns the smaller of a and b.
func Min(a, b Rat) Rat {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Rat) Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// MaxOf returns the maximum of one or more values.
func MaxOf(first Rat, rest ...Rat) Rat {
	m := first
	for _, v := range rest {
		m = Max(m, v)
	}
	return m
}

// MinOf returns the minimum of one or more values.
func MinOf(first Rat, rest ...Rat) Rat {
	m := first
	for _, v := range rest {
		m = Min(m, v)
	}
	return m
}

// Sum returns the sum of vs (0 for an empty slice).
func Sum(vs ...Rat) Rat {
	s := Zero
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// Floor returns the greatest integer <= r, as a Rat.
func (r Rat) Floor() Rat {
	if n, d, ok := r.small(); ok {
		q := n / d
		if n%d != 0 && n < 0 {
			q--
		}
		return I(q)
	}
	q := new(big.Int).Quo(r.b.Num(), r.b.Denom())
	// big.Int Quo truncates toward zero; adjust for negative non-integers.
	if r.b.Sign() < 0 && !r.b.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return fromBigRat(new(big.Rat).SetInt(q))
}

// Ceil returns the least integer >= r, as a Rat.
func (r Rat) Ceil() Rat { return r.Neg().Floor().Neg() }

// Mod returns r modulo m, i.e. r - floor(r/m)*m, for m > 0.
// The result lies in [0, m). It panics if m <= 0.
func (r Rat) Mod(m Rat) Rat {
	if m.Sign() <= 0 {
		panic("rat: Mod with non-positive modulus")
	}
	return r.Sub(r.Div(m).Floor().Mul(m))
}

// Float64 returns the nearest float64 to r. It is intended for reporting and
// heuristic scoring only; never use it in correctness decisions.
func (r Rat) Float64() float64 {
	if n, d, ok := r.small(); ok {
		return float64(n) / float64(d)
	}
	f, _ := r.b.Float64()
	return f
}

// Num64 returns the numerator and whether it fits in an int64.
func (r Rat) Num64() (int64, bool) {
	if n, _, ok := r.small(); ok {
		return n, true
	}
	if r.b.Num().IsInt64() {
		return r.b.Num().Int64(), true
	}
	return 0, false
}

// Den64 returns the denominator and whether it fits in an int64.
func (r Rat) Den64() (int64, bool) {
	if _, d, ok := r.small(); ok {
		return d, true
	}
	if r.b.Denom().IsInt64() {
		return r.b.Denom().Int64(), true
	}
	return 0, false
}

// Append appends the String form of r to dst and returns the extended
// slice. On the int64 fast path it allocates nothing beyond dst's own
// growth (strconv, no fmt) — key-building hot loops use it.
func (r Rat) Append(dst []byte) []byte {
	if n, d, ok := r.small(); ok {
		dst = strconv.AppendInt(dst, n, 10)
		if d != 1 {
			dst = append(dst, '/')
			dst = strconv.AppendInt(dst, d, 10)
		}
		return dst
	}
	return append(dst, r.String()...)
}

// String renders r as "n" for integers and "n/d" otherwise.
func (r Rat) String() string {
	if n, d, ok := r.small(); ok {
		if d == 1 {
			return fmt.Sprintf("%d", n)
		}
		return fmt.Sprintf("%d/%d", n, d)
	}
	if r.b.IsInt() {
		return r.b.Num().String()
	}
	return r.b.RatString()
}

// Decimal renders r as a decimal string with the given number of fractional
// digits, for human-readable tables.
func (r Rat) Decimal(digits int) string {
	return r.bigCopy().FloatString(digits)
}

// Parse parses a rational from one of three forms: an integer ("42", "-7"),
// a fraction ("23/3", "-9999/10000"), or a decimal ("0.9999", "-1.5").
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Zero, fmt.Errorf("rat: empty string")
	}
	if strings.Contains(s, "/") {
		parts := strings.SplitN(s, "/", 2)
		num, ok1 := new(big.Int).SetString(strings.TrimSpace(parts[0]), 10)
		den, ok2 := new(big.Int).SetString(strings.TrimSpace(parts[1]), 10)
		if !ok1 || !ok2 {
			return Zero, fmt.Errorf("rat: cannot parse %q", s)
		}
		if den.Sign() == 0 {
			return Zero, fmt.Errorf("rat: zero denominator in %q", s)
		}
		return fromBigRat(new(big.Rat).SetFrac(num, den)), nil
	}
	br, ok := new(big.Rat).SetString(s)
	if !ok {
		return Zero, fmt.Errorf("rat: cannot parse %q", s)
	}
	return fromBigRat(br), nil
}

// MustParse is Parse that panics on error; intended for constants in tests
// and examples.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// MarshalText implements encoding.TextMarshaler using the String form.
func (r Rat) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler accepting any form
// understood by Parse.
func (r *Rat) UnmarshalText(text []byte) error {
	v, err := Parse(string(text))
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// MarshalJSON encodes r as a JSON string in exact form, e.g. "23/3".
func (r Rat) MarshalJSON() ([]byte, error) {
	return []byte(`"` + r.String() + `"`), nil
}

// UnmarshalJSON decodes either a JSON string ("23/3", "0.9999") or a bare
// JSON number (42, 0.5). Bare floats are converted exactly (binary value).
func (r *Rat) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := Parse(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// --- int64 helpers ---

func abs64(x int64) int64 {
	if x < 0 {
		return -x // caller guarantees x != MinInt64
	}
	return x
}

// gcd64 returns the greatest common divisor of non-negative a and b
// (gcd(0, b) == b).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// add64 returns a+b and whether it did not overflow.
func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mul64 returns a*b and whether it did not overflow.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// cmpCross compares a/b and c/d (b, d > 0) exactly using 128-bit magnitude
// products, avoiding both overflow and allocation.
func cmpCross(a, b, c, d int64) int {
	// Signs first: a/b sign is sign(a); c/d sign is sign(c).
	sa, sc := sign64(a), sign64(c)
	if sa != sc {
		if sa < sc {
			return -1
		}
		return 1
	}
	if sa == 0 {
		return 0
	}
	// Same nonzero sign: compare |a|*d vs |c|*b, flip if negative.
	hi1, lo1 := mulUint128(absU64(a), uint64(d))
	hi2, lo2 := mulUint128(absU64(c), uint64(b))
	cmp := cmpUint128(hi1, lo1, hi2, lo2)
	if sa < 0 {
		return -cmp
	}
	return cmp
}

func sign64(x int64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func absU64(x int64) uint64 {
	if x < 0 {
		return uint64(-(x + 1)) + 1 // handles MinInt64
	}
	return uint64(x)
}

// mulUint128 returns the 128-bit product of a and b as (hi, lo).
func mulUint128(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

func cmpUint128(h1, l1, h2, l2 uint64) int {
	switch {
	case h1 < h2:
		return -1
	case h1 > h2:
		return 1
	case l1 < l2:
		return -1
	case l1 > l2:
		return 1
	default:
		return 0
	}
}
