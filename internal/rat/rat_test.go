package rat

import (
	"encoding/json"
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEq(t *testing.T, got Rat, want string) {
	t.Helper()
	w := MustParse(want)
	if !got.Equal(w) {
		t.Fatalf("got %s, want %s", got, w)
	}
}

func TestNewNormalizes(t *testing.T) {
	cases := []struct {
		n, d int64
		want string
	}{
		{4, 8, "1/2"},
		{-4, 8, "-1/2"},
		{4, -8, "-1/2"},
		{-4, -8, "1/2"},
		{0, 5, "0"},
		{0, -5, "0"},
		{7, 1, "7"},
		{9999, 10000, "9999/10000"},
		{6, 3, "2"},
	}
	for _, c := range cases {
		got := New(c.n, c.d)
		mustEq(t, got, c.want)
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 0)
}

func TestNewMinInt64(t *testing.T) {
	r := New(math.MinInt64, 2)
	want := new(big.Rat).SetFrac64(math.MinInt64, 2)
	if r.big().Cmp(want) != 0 {
		t.Fatalf("got %s want %s", r, want.RatString())
	}
	r2 := New(1, math.MinInt64)
	want2 := new(big.Rat).SetFrac64(1, math.MinInt64)
	if r2.big().Cmp(want2) != 0 {
		t.Fatalf("got %s want %s", r2, want2.RatString())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Fatal("zero value should equal 0")
	}
	mustEq(t, z.Add(One), "1")
	mustEq(t, z.Mul(Two), "0")
	if z.String() != "0" {
		t.Fatalf("String() = %q", z.String())
	}
}

func TestBasicArithmetic(t *testing.T) {
	a := New(1, 3)
	b := New(1, 6)
	mustEq(t, a.Add(b), "1/2")
	mustEq(t, a.Sub(b), "1/6")
	mustEq(t, a.Mul(b), "1/18")
	mustEq(t, a.Div(b), "2")
	mustEq(t, a.Neg(), "-1/3")
	mustEq(t, a.Inv(), "3")
	mustEq(t, a.Neg().Abs(), "1/3")
	mustEq(t, a.MulInt(9), "3")
	mustEq(t, a.AddInt(1), "4/3")
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	One.Div(Zero)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Zero.Inv()
}

func TestPowInt(t *testing.T) {
	mustEq(t, Two.PowInt(10), "1024")
	mustEq(t, Two.PowInt(0), "1")
	mustEq(t, Two.PowInt(-2), "1/4")
	mustEq(t, New(3, 2).PowInt(3), "27/8")
	mustEq(t, Zero.PowInt(5), "0")
	// Deep power requiring big representation.
	p := Two.PowInt(100)
	want, _ := new(big.Rat).SetString("1267650600228229401496703205376")
	if p.big().Cmp(want) != 0 {
		t.Fatalf("2^100 = %s", p)
	}
	// And back down again: demotion must restore the fast path.
	back := p.Mul(Two.PowInt(-99))
	mustEq(t, back, "2")
	if back.b != nil {
		t.Fatal("expected demotion to small representation")
	}
}

func TestCmpAndOrderingHelpers(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp inconsistent")
	}
	if !a.Less(b) || !a.Leq(b) || !a.Leq(a) || a.Greater(b) || !b.Greater(a) || !b.Geq(a) || !a.Geq(a) {
		t.Fatal("ordering helpers inconsistent")
	}
	if !a.Equal(New(2, 6)) {
		t.Fatal("Equal failed on unnormalized-equivalent input")
	}
	mustEq(t, Min(a, b), "1/3")
	mustEq(t, Max(a, b), "1/2")
	mustEq(t, MinOf(b, a, One), "1/3")
	mustEq(t, MaxOf(b, a, One), "1")
}

func TestCmpNegatives(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"-1/3", "1/3", -1},
		{"-1/3", "-1/2", 1},
		{"-2", "-2", 0},
		{"0", "-1/1000000", 1},
	}
	for _, c := range cases {
		if got := MustParse(c.a).Cmp(MustParse(c.b)); got != c.want {
			t.Errorf("Cmp(%s,%s)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCmpLargeNoOverflow(t *testing.T) {
	// Cross products here overflow int64; Cmp must still be exact.
	a := New(math.MaxInt64-1, 3)
	b := New(math.MaxInt64-2, 3)
	if a.Cmp(b) != 1 {
		t.Fatal("large Cmp wrong")
	}
	c := New(math.MaxInt64, math.MaxInt64-1)
	d := New(math.MaxInt64-1, math.MaxInt64-2)
	// c = M/(M-1) vs d = (M-1)/(M-2): c < d since the sequence (k+1)/k decreases.
	if c.Cmp(d) != -1 {
		t.Fatal("large near-one Cmp wrong")
	}
}

func TestFloorCeilMod(t *testing.T) {
	cases := []struct {
		in, floor, ceil string
	}{
		{"7/2", "3", "4"},
		{"-7/2", "-4", "-3"},
		{"3", "3", "3"},
		{"-3", "-3", "-3"},
		{"0", "0", "0"},
		{"1/1000", "0", "1"},
		{"-1/1000", "-1", "0"},
	}
	for _, c := range cases {
		r := MustParse(c.in)
		mustEq(t, r.Floor(), c.floor)
		mustEq(t, r.Ceil(), c.ceil)
	}
	mustEq(t, MustParse("22/3").Mod(MustParse("7/3")), "1/3")
	mustEq(t, MustParse("-1/3").Mod(One), "2/3")
	mustEq(t, MustParse("14").Mod(MustParse("7")), "0")
	mustEq(t, MustParse("19").Mod(MustParse("23/3")), "11/3")
}

func TestModPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	One.Mod(Zero)
}

func TestModRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		r := New(rng.Int63n(2000)-1000, rng.Int63n(50)+1)
		m := New(rng.Int63n(100)+1, rng.Int63n(20)+1)
		got := r.Mod(m)
		if got.Sign() < 0 || !got.Less(m) {
			t.Fatalf("Mod(%s, %s) = %s out of [0, m)", r, m, got)
		}
		// r - got must be an integer multiple of m.
		q := r.Sub(got).Div(m)
		if !q.IsInt() {
			t.Fatalf("Mod(%s, %s): quotient %s not integral", r, m, q)
		}
	}
}

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"42", "42"},
		{"-7", "-7"},
		{"23/3", "23/3"},
		{" 23 / 3 ", "23/3"},
		{"-9999/10000", "-9999/10000"},
		{"4/8", "1/2"},
		{"0.9999", "9999/10000"},
		{"-1.5", "-3/2"},
		{"0.25", "1/4"},
	}
	for _, c := range cases {
		r, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if r.String() != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, r.String(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "1/0", "1/2/3", "1//2", "x/2", "2/x"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not-a-rat")
}

func TestDecimal(t *testing.T) {
	if got := MustParse("23/3").Decimal(4); got != "7.6667" {
		t.Fatalf("Decimal = %q", got)
	}
	if got := MustParse("-1/2").Decimal(2); got != "-0.50" {
		t.Fatalf("Decimal = %q", got)
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 2).Float64(); got != 0.5 {
		t.Fatalf("Float64 = %v", got)
	}
	big := Two.PowInt(80)
	if got := big.Float64(); got != math.Exp2(80) {
		t.Fatalf("big Float64 = %v", got)
	}
}

func TestFromFloat(t *testing.T) {
	mustEq(t, FromFloat(0.5), "1/2")
	mustEq(t, FromFloat(-0.25), "-1/4")
	mustEq(t, FromFloat(3), "3")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN")
		}
	}()
	FromFloat(math.NaN())
}

func TestNumDen64(t *testing.T) {
	r := New(-3, 7)
	if n, ok := r.Num64(); !ok || n != -3 {
		t.Fatalf("Num64 = %d, %v", n, ok)
	}
	if d, ok := r.Den64(); !ok || d != 7 {
		t.Fatalf("Den64 = %d, %v", d, ok)
	}
	huge := Two.PowInt(100)
	if _, ok := huge.Num64(); ok {
		t.Fatal("huge numerator should not fit in int64")
	}
	if d, ok := huge.Den64(); !ok || d != 1 {
		t.Fatalf("huge Den64 = %d, %v", d, ok)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Rat{Zero, One, New(-23, 3), MustParse("9999/10000"), Two.PowInt(90)}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back Rat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(v) {
			t.Fatalf("round trip: %s != %s", back, v)
		}
	}
	// Bare JSON numbers are accepted too.
	var r Rat
	if err := json.Unmarshal([]byte("42"), &r); err != nil {
		t.Fatal(err)
	}
	mustEq(t, r, "42")
	if err := json.Unmarshal([]byte("0.5"), &r); err != nil {
		t.Fatal(err)
	}
	mustEq(t, r, "1/2")
	if err := json.Unmarshal([]byte(`"oops"`), &r); err == nil {
		t.Fatal("expected error")
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	v := New(-23, 3)
	data, err := v.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Rat
	if err := back.UnmarshalText(data); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(v) {
		t.Fatalf("round trip: %s != %s", back, v)
	}
}

func TestSum(t *testing.T) {
	mustEq(t, Sum(), "0")
	mustEq(t, Sum(New(1, 2), New(1, 3), New(1, 6)), "1")
}

func TestFromBigIndependence(t *testing.T) {
	src := new(big.Rat).SetFrac64(1, 3)
	r := FromBig(src)
	src.SetFrac64(9, 1) // mutating the source must not affect r
	mustEq(t, r, "1/3")
}

// --- property-based tests against the big.Rat reference implementation ---

// genRat produces a mix of small and overflow-provoking rationals.
func genRat(rng *rand.Rand) Rat {
	switch rng.Intn(4) {
	case 0: // tiny
		return New(rng.Int63n(21)-10, rng.Int63n(10)+1)
	case 1: // medium
		return New(rng.Int63n(2_000_001)-1_000_000, rng.Int63n(1_000_000)+1)
	case 2: // near-overflow
		return New(rng.Int63()-rng.Int63(), rng.Int63n(math.MaxInt64-1)+1)
	default: // already big
		return Two.PowInt(int(rng.Int63n(40)) + 60).Add(New(rng.Int63n(100), rng.Int63n(100)+1))
	}
}

func refOf(r Rat) *big.Rat { return r.bigCopy() }

func TestQuickArithmeticMatchesBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a, b := genRat(rng), genRat(rng)
		ra, rb := refOf(a), refOf(b)
		if got, want := a.Add(b).bigCopy(), new(big.Rat).Add(ra, rb); got.Cmp(want) != 0 {
			t.Fatalf("Add(%s,%s): got %s want %s", a, b, got.RatString(), want.RatString())
		}
		if got, want := a.Sub(b).bigCopy(), new(big.Rat).Sub(ra, rb); got.Cmp(want) != 0 {
			t.Fatalf("Sub(%s,%s): got %s want %s", a, b, got.RatString(), want.RatString())
		}
		if got, want := a.Mul(b).bigCopy(), new(big.Rat).Mul(ra, rb); got.Cmp(want) != 0 {
			t.Fatalf("Mul(%s,%s): got %s want %s", a, b, got.RatString(), want.RatString())
		}
		if !b.IsZero() {
			if got, want := a.Div(b).bigCopy(), new(big.Rat).Quo(ra, rb); got.Cmp(want) != 0 {
				t.Fatalf("Div(%s,%s): got %s want %s", a, b, got.RatString(), want.RatString())
			}
		}
		if got, want := a.Cmp(b), ra.Cmp(rb); got != want {
			t.Fatalf("Cmp(%s,%s): got %d want %d", a, b, got, want)
		}
	}
}

func TestQuickFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(7))}
	gen := func(vals []int64) (a, b, c Rat) {
		den := func(x int64) int64 { return x%1000 + 1001 } // positive
		a = New(vals[0]%100000, den(vals[1]))
		b = New(vals[2]%100000, den(vals[3]))
		c = New(vals[4]%100000, den(vals[5]))
		return
	}
	commut := func(v0, v1, v2, v3, v4, v5 int64) bool {
		a, b, _ := gen([]int64{v0, v1, v2, v3, v4, v5})
		return a.Add(b).Equal(b.Add(a)) && a.Mul(b).Equal(b.Mul(a))
	}
	if err := quick.Check(commut, cfg); err != nil {
		t.Error(err)
	}
	assoc := func(v0, v1, v2, v3, v4, v5 int64) bool {
		a, b, c := gen([]int64{v0, v1, v2, v3, v4, v5})
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c))) &&
			a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Error(err)
	}
	distrib := func(v0, v1, v2, v3, v4, v5 int64) bool {
		a, b, c := gen([]int64{v0, v1, v2, v3, v4, v5})
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Error(err)
	}
	inverses := func(v0, v1, v2, v3, v4, v5 int64) bool {
		a, _, _ := gen([]int64{v0, v1, v2, v3, v4, v5})
		if a.IsZero() {
			return a.Neg().IsZero()
		}
		return a.Add(a.Neg()).IsZero() && a.Mul(a.Inv()).Equal(One)
	}
	if err := quick.Check(inverses, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderingTotalAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		a, b := genRat(rng), genRat(rng)
		if a.Cmp(b) != -b.Cmp(a) {
			t.Fatalf("antisymmetry violated for %s, %s", a, b)
		}
		// Cmp must agree with the sign of the difference.
		if a.Sub(b).Sign() != a.Cmp(b) {
			t.Fatalf("Cmp(%s,%s) inconsistent with Sub sign", a, b)
		}
	}
}

func TestQuickNormalizationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		r := genRat(rng).Mul(genRat(rng)).Add(genRat(rng))
		if n, d, ok := r.small(); ok {
			if d <= 0 {
				t.Fatalf("non-positive small denominator in %v", r)
			}
			if g := gcd64(abs64(n), d); n != math.MinInt64 && g != 1 {
				t.Fatalf("unnormalized small rat %d/%d (gcd %d)", n, d, g)
			}
		} else if r.b == nil {
			t.Fatal("neither small nor big")
		}
	}
}

func TestMul64Edges(t *testing.T) {
	if _, ok := mul64(math.MinInt64, -1); ok {
		t.Fatal("MinInt64 * -1 must report overflow")
	}
	if _, ok := mul64(-1, math.MinInt64); ok {
		t.Fatal("-1 * MinInt64 must report overflow")
	}
	if v, ok := mul64(0, math.MinInt64); !ok || v != 0 {
		t.Fatal("0 * MinInt64 must be 0")
	}
	if v, ok := mul64(1<<31, 1<<31); !ok || v != 1<<62 {
		t.Fatal("2^31 * 2^31 should fit")
	}
	if _, ok := mul64(1<<32, 1<<32); ok {
		t.Fatal("2^32 * 2^32 must overflow")
	}
}

func TestAdd64Edges(t *testing.T) {
	if _, ok := add64(math.MaxInt64, 1); ok {
		t.Fatal("MaxInt64+1 must overflow")
	}
	if _, ok := add64(math.MinInt64, -1); ok {
		t.Fatal("MinInt64-1 must overflow")
	}
	if v, ok := add64(math.MaxInt64, math.MinInt64); !ok || v != -1 {
		t.Fatal("MaxInt64+MinInt64 should be -1")
	}
}

func BenchmarkAddSmall(b *testing.B) {
	x, y := New(1, 3), New(1, 6)
	for i := 0; i < b.N; i++ {
		x = x.Add(y).Sub(y)
	}
}

func BenchmarkMulSmall(b *testing.B) {
	x, y := New(9999, 10000), New(10000, 9999)
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
}

func BenchmarkCmpSmall(b *testing.B) {
	x, y := New(math.MaxInt64-1, 3), New(math.MaxInt64-2, 3)
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

// TestCmpFastPathAllocFree guards the int64 comparison fast path: the
// order-search bound pruning sits on Cmp (via Less/Greater/Min/Max in the
// incumbent tests and the longest-path relaxations), so a regression that
// makes small-small comparisons allocate — e.g. falling back to big() —
// would tax every pruned prefix. AllocsPerRun pins it to zero, including
// the 128-bit cross-multiplication overflow path and the zero value.
func TestCmpFastPathAllocFree(t *testing.T) {
	pairs := [][2]Rat{
		{New(23, 3), New(7, 1)},
		{New(math.MaxInt64-1, 3), New(math.MaxInt64-2, 3)}, // 128-bit cross products
		{New(-9999, 10000), New(9999, 10000)},
		{Zero, Rat{}}, // the uninitialized zero value normalizes without allocating
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, p := range pairs {
			_ = p[0].Cmp(p[1])
			_ = p[0].Less(p[1])
			_ = Max(p[0], p[1])
			_ = Min(p[0], p[1])
		}
	})
	if allocs != 0 {
		t.Fatalf("small-small comparisons allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkCmpMixed covers the promotion path (one small, one big
// operand), which legitimately allocates the temporary big.Rat — the
// guard above only pins the small-small fast path.
func BenchmarkCmpMixed(b *testing.B) {
	x := Two.PowInt(100)
	y := New(1, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

func BenchmarkAddBig(b *testing.B) {
	x := Two.PowInt(100)
	y := New(1, 3)
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}
