package rat

import (
	"math"
	"math/rand"
	"testing"
)

// randRat draws rationals across the small and big representations,
// including values far outside float range.
func randRat(rng *rand.Rand) Rat {
	switch rng.Intn(6) {
	case 0:
		return I(rng.Int63n(2000) - 1000)
	case 1:
		return New(rng.Int63n(1<<40)-(1<<39), 1+rng.Int63n(1<<20))
	case 2: // huge numerators: above float64 range after a few squarings
		r := New(rng.Int63n(1<<60)+1, 1+rng.Int63n(1<<10))
		return r.Mul(r).Mul(r).Mul(r).Mul(r)
	case 3: // tiny: below subnormal range
		r := New(1, rng.Int63n(1<<60)+2)
		return r.Mul(r).Mul(r).Mul(r).Mul(r)
	case 4:
		return FromFloat(rng.NormFloat64() * math.Ldexp(1, rng.Intn(120)-60))
	default:
		return New(rng.Int63n(2001)-1000, 1+rng.Int63n(997))
	}
}

// TestIntervalEnclosure is the certification property: for every rational,
// the returned endpoints exactly enclose it.
func TestIntervalEnclosure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		r := randRat(rng)
		iv := r.Interval()
		if !math.IsInf(iv.Lo, -1) && FromFloat(iv.Lo).Greater(r) {
			t.Fatalf("Interval(%s).Lo = %v > value", r, iv.Lo)
		}
		if !math.IsInf(iv.Hi, 1) && FromFloat(iv.Hi).Less(r) {
			t.Fatalf("Interval(%s).Hi = %v < value", r, iv.Hi)
		}
		if iv.Hi < iv.Lo {
			t.Fatalf("Interval(%s) inverted: [%v, %v]", r, iv.Lo, iv.Hi)
		}
	}
}

// TestIntervalExactFloats pins that a float-representable rational gets a
// tight (single-point or one-ulp) interval — the pre-filter's common case.
func TestIntervalExactFloats(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 0.5, 3.75, -1024, 1e300, 5e-324} {
		iv := FromFloat(f).Interval()
		if iv.Lo > f || iv.Hi < f {
			t.Fatalf("Interval(FromFloat(%v)) = [%v, %v] misses the value", f, iv.Lo, iv.Hi)
		}
	}
}

// TestAddUpDown is the directed-rounding property: AddUp dominates and
// AddDown is dominated by the exact real sum, for finite operands.
func TestAddUpDown(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		a := rng.NormFloat64() * math.Ldexp(1, rng.Intn(200)-100)
		b := rng.NormFloat64() * math.Ldexp(1, rng.Intn(200)-100)
		exact := FromFloat(a).Add(FromFloat(b))
		up := AddUp(a, b)
		if !math.IsInf(up, 1) && FromFloat(up).Less(exact) {
			t.Fatalf("AddUp(%v, %v) = %v < exact sum %s", a, b, up, exact)
		}
		down := AddDown(a, b)
		if !math.IsInf(down, -1) && FromFloat(down).Greater(exact) {
			t.Fatalf("AddDown(%v, %v) = %v > exact sum %s", a, b, down, exact)
		}
	}
	// Overflow corners: the directed results must still dominate.
	if AddUp(math.MaxFloat64, math.MaxFloat64) != math.Inf(1) {
		t.Fatal("AddUp must saturate to +Inf on overflow")
	}
	if got := AddUp(-math.MaxFloat64, -math.MaxFloat64); FromFloat(got).Less(FromFloat(-math.MaxFloat64).Add(FromFloat(-math.MaxFloat64))) {
		t.Fatalf("AddUp overflow-down result %v below the exact sum", got)
	}
}

// TestMulUpDown is the same directed-rounding property for the products
// the weight reassembly uses (token count × λ endpoint).
func TestMulUpDown(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		a := rng.NormFloat64() * math.Ldexp(1, rng.Intn(200)-100)
		b := rng.NormFloat64() * math.Ldexp(1, rng.Intn(200)-100)
		exact := FromFloat(a).Mul(FromFloat(b))
		up := MulUp(a, b)
		if !math.IsInf(up, 1) && FromFloat(up).Less(exact) {
			t.Fatalf("MulUp(%v, %v) = %v < exact product %s", a, b, up, exact)
		}
		down := MulDown(a, b)
		if !math.IsInf(down, -1) && FromFloat(down).Greater(exact) {
			t.Fatalf("MulDown(%v, %v) = %v > exact product %s", a, b, down, exact)
		}
		if up < down {
			t.Fatalf("MulUp(%v, %v) = %v < MulDown = %v", a, b, up, down)
		}
	}
	// Zero and overflow corners.
	if MulUp(0, 1e300) < 0 || MulDown(0, 1e300) > 0 {
		t.Fatal("directed products of an exact zero must bracket 0")
	}
	if MulUp(math.MaxFloat64, 2) != math.Inf(1) {
		t.Fatal("MulUp must saturate to +Inf on overflow")
	}
}
