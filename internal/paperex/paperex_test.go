package paperex

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
)

func TestFig1Invariants(t *testing.T) {
	eg := Fig1Graph()
	if eg.N() != 5 || eg.Graph().EdgeCount() != 5 {
		t.Fatal("Fig1 shape wrong")
	}
	if !eg.PeriodLowerBound(plan.Overlap).Equal(rat.I(4)) {
		t.Fatalf("overlap bound = %s", eg.PeriodLowerBound(plan.Overlap))
	}
	if !eg.PeriodLowerBound(plan.InOrder).Equal(rat.I(7)) {
		t.Fatalf("one-port bound = %s", eg.PeriodLowerBound(plan.InOrder))
	}
	if !eg.LatencyPathBound().Equal(rat.I(21)) {
		t.Fatalf("latency bound = %s", eg.LatencyPathBound())
	}
}

func TestB1ChainFanBlowsUpWithCommunication(t *testing.T) {
	chain := B1ChainFanGraph()
	// Without communication this plan is fine: all Ccomp <= 100.
	for v := 0; v < chain.N(); v++ {
		if chain.Ccomp(v).Greater(rat.I(100)) {
			t.Fatalf("Ccomp(%d) = %s > 100", v, chain.Ccomp(v))
		}
	}
	// With communication, C2's outgoing volume wrecks the period:
	// Cout(C2) = 200·(9999/10000)² = 199.960002 > 100.
	want := rat.I(200).Mul(rat.New(9999, 10000).PowInt(2))
	if !chain.Cout(1).Equal(want) {
		t.Fatalf("Cout(C2) = %s, want %s", chain.Cout(1), want)
	}
	if !chain.PeriodLowerBound(plan.Overlap).Equal(want) {
		t.Fatalf("overlap bound = %s", chain.PeriodLowerBound(plan.Overlap))
	}
}

func TestB1OptimalGraphAchieves100(t *testing.T) {
	opt := B1OptimalGraph()
	if !opt.IsForest() {
		t.Fatal("Figure 4 plan must be a forest")
	}
	// Ccomp of every fan service is exactly 100: (9999/10000)·(100/(9999/10000)).
	if !opt.Ccomp(2).Equal(rat.I(100)) {
		t.Fatalf("Ccomp(C3) = %s", opt.Ccomp(2))
	}
	// Cout(C1) = 100·(9999/10000) = 99.99 < 100.
	if !opt.Cout(0).Equal(rat.New(9999, 100)) {
		t.Fatalf("Cout(C1) = %s", opt.Cout(0))
	}
	if !opt.PeriodLowerBound(plan.Overlap).Equal(rat.I(100)) {
		t.Fatalf("overlap bound = %s", opt.PeriodLowerBound(plan.Overlap))
	}
}

func TestB2GraphCostStructure(t *testing.T) {
	eg := B2Graph()
	// Every right-side service receives 1+2+3 = 6, computes 6, sends 6.
	for j := 6; j < 12; j++ {
		if !eg.Cin(j).Equal(rat.I(6)) {
			t.Fatalf("Cin(C%d) = %s", j+1, eg.Cin(j))
		}
		if !eg.Ccomp(j).Equal(rat.I(6)) {
			t.Fatalf("Ccomp(C%d) = %s", j+1, eg.Ccomp(j))
		}
		if !eg.Cout(j).Equal(rat.I(6)) {
			t.Fatalf("Cout(C%d) = %s", j+1, eg.Cout(j))
		}
	}
	// Every left-side service sends a total volume of 6.
	for i := 0; i < 6; i++ {
		if !eg.Cout(i).Equal(rat.I(6)) {
			t.Fatalf("Cout(C%d) = %s", i+1, eg.Cout(i))
		}
	}
	if !eg.PeriodLowerBound(plan.Overlap).Equal(rat.I(6)) {
		t.Fatalf("overlap bound = %s", eg.PeriodLowerBound(plan.Overlap))
	}
}

func TestB3WeightedCostStructure(t *testing.T) {
	w := B3Weighted()
	// Cout(C1)=Cout(C2)=Cout(C3)=12, Cout(C4)=8.
	for _, c := range []struct {
		v    int
		want int64
	}{{0, 12}, {1, 12}, {2, 12}, {3, 8}} {
		if !w.Cout(c.v).Equal(rat.I(c.want)) {
			t.Fatalf("Cout(C%d) = %s, want %d", c.v+1, w.Cout(c.v), c.want)
		}
	}
	// Cin(C5)=Cin(C6)=Cin(C7)=12, Cin(C8)=8.
	for _, c := range []struct {
		v    int
		want int64
	}{{4, 12}, {5, 12}, {6, 12}, {7, 8}} {
		if !w.Cin(c.v).Equal(rat.I(c.want)) {
			t.Fatalf("Cin(C%d) = %s, want %d", c.v+1, w.Cin(c.v), c.want)
		}
	}
	if !w.PeriodLowerBound(plan.Overlap).Equal(rat.I(12)) {
		t.Fatalf("overlap bound = %s", w.PeriodLowerBound(plan.Overlap))
	}
}

func TestB2OnePort21Witness(t *testing.T) {
	l := B2OnePort21List()
	if !l.Latency().Equal(rat.I(21)) {
		t.Fatalf("witness latency = %s, want 21", l.Latency())
	}
	for _, m := range plan.Models {
		if err := l.Validate(m); err != nil {
			t.Fatalf("witness invalid under %s: %v", m, err)
		}
	}
}
