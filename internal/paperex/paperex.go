// Package paperex builds the concrete instances used in the paper: the
// running example of §2.3 (Figure 1) and the three counter-examples of §3 /
// Appendix B (Figures 4, 5 and 6). They are shared by tests, the experiment
// harness, and the benchmarks, so the numbers reported in EXPERIMENTS.md are
// produced from exactly one definition of each instance.
package paperex

import (
	"fmt"

	"repro/internal/oplist"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// Fig1App returns the §2.3 example application: five services of cost 4 and
// selectivity 1, no precedence constraints.
func Fig1App() *workflow.App {
	return workflow.Uniform(5, rat.I(4), rat.One)
}

// Fig1Graph returns the execution graph of Figure 1:
//
//	in -> C1; C1 -> C2 -> C3 -> C5; C1 -> C4 -> C5; C5 -> out.
//
// Known results (paper §2.3): optimal latency 21 for all models; optimal
// period 4 (OVERLAP), 7 (OUTORDER), 23/3 (INORDER).
func Fig1Graph() *plan.ExecGraph {
	return plan.MustBuild(Fig1App(), [][2]int{
		{0, 1}, {0, 3}, // C1 -> C2, C1 -> C4
		{1, 2}, // C2 -> C3
		{2, 4}, // C3 -> C5
		{3, 4}, // C4 -> C5
	})
}

// B1App returns the Appendix B.1 application with 202 services:
// C1, C2 have selectivity 9999/10000 and cost 100; C3..C202 have
// selectivity 100 and cost 100/(9999/10000) = 1000000/9999.
func B1App() *workflow.App {
	services := make([]workflow.Service, 202)
	fsel := rat.New(9999, 10000)
	for i := 0; i < 2; i++ {
		services[i] = workflow.Service{Cost: rat.I(100), Selectivity: fsel}
	}
	bigCost := rat.I(100).Div(fsel) // 100/0.9999
	for i := 2; i < 202; i++ {
		services[i] = workflow.Service{Cost: bigCost, Selectivity: rat.I(100)}
	}
	return workflow.MustNew(services, nil)
}

// B1ChainFanGraph returns the plan that is optimal WITHOUT communication
// costs: C1 -> C2, then C2 feeds all 200 remaining services. Its OVERLAP
// period is ruined by Cout(C2) ≈ 200.
func B1ChainFanGraph() *plan.ExecGraph {
	edges := [][2]int{{0, 1}}
	for i := 2; i < 202; i++ {
		edges = append(edges, [2]int{1, i})
	}
	return plan.MustBuild(B1App(), edges)
}

// B1OptimalGraph returns the Figure 4 plan, optimal WITH communication
// costs under OVERLAP: C1 feeds C3..C102, C2 feeds C103..C202 (two
// independent fans, a forest). Its OVERLAP period is exactly 100.
func B1OptimalGraph() *plan.ExecGraph {
	var edges [][2]int
	for i := 2; i < 102; i++ {
		edges = append(edges, [2]int{0, i})
	}
	for i := 102; i < 202; i++ {
		edges = append(edges, [2]int{1, i})
	}
	return plan.MustBuild(B1App(), edges)
}

// B2App returns the Appendix B.2 application: 12 services of unit cost,
// σ2 = σ3 = 2, σ4 = σ5 = σ6 = 3, all other selectivities 1.
func B2App() *workflow.App {
	services := make([]workflow.Service, 12)
	for i := range services {
		services[i] = workflow.Service{Cost: rat.One, Selectivity: rat.One}
	}
	services[1].Selectivity = rat.I(2) // C2
	services[2].Selectivity = rat.I(2) // C3
	services[3].Selectivity = rat.I(3) // C4
	services[4].Selectivity = rat.I(3) // C5
	services[5].Selectivity = rat.I(3) // C6
	return workflow.MustNew(services, nil)
}

// B2Graph returns the Figure 5 execution graph: each right-side service
// C7..C12 receives from C1, from one of {C2, C3} and from one of
// {C4, C5, C6}, so each receives volumes 1+2+3 = 6 and computes 6 units.
// Known results: optimal multi-port latency 20; the one-port optimum is 21
// (strictly above 20 by the paper's proof, achieved by B2OnePort21List).
func B2Graph() *plan.ExecGraph {
	var edges [][2]int
	for j := 6; j < 12; j++ {
		edges = append(edges, [2]int{0, j}) // C1 -> each
	}
	// C2 -> C7,C8,C9 ; C3 -> C10,C11,C12
	for j := 6; j < 9; j++ {
		edges = append(edges, [2]int{1, j})
	}
	for j := 9; j < 12; j++ {
		edges = append(edges, [2]int{2, j})
	}
	// C4 -> C7,C10 ; C5 -> C8,C11 ; C6 -> C9,C12
	edges = append(edges, [2]int{3, 6}, [2]int{3, 9})
	edges = append(edges, [2]int{4, 7}, [2]int{4, 10})
	edges = append(edges, [2]int{5, 8}, [2]int{5, 11})
	return plan.MustBuild(B2App(), edges)
}

// B2OnePort21List returns a hand-constructed one-port operation list for
// the Figure 5 graph with latency exactly 21: the 6×6 communication phase
// packs into 7 time units (an open-shop-style schedule), one more than the
// multi-port optimum's 6. Together with the paper's proof that latency 20
// is unreachable for one-port schedules, this witness pins the one-port
// optimum at 21. The schedule validates under all three models.
func B2OnePort21List() *oplist.List {
	w := B2Graph().Weighted()
	l := oplist.New(w, rat.I(21))
	set := func(from, to int, begin int64) {
		idx := w.EdgeIndex(plan.Edge{From: from, To: to})
		if idx < 0 {
			panic(fmt.Sprintf("paperex: missing edge %d->%d", from, to))
		}
		l.SetComm(idx, rat.I(begin))
	}
	for i := 0; i < 6; i++ {
		set(plan.In, i, 0)
		l.SetCalc(i, rat.One)
	}
	// The communication phase, [2, 9): sender C1 (volume 1 each), C2/C3
	// (volume 2), C4/C5/C6 (volume 3).
	set(0, 10, 2)
	set(0, 9, 4)
	set(0, 11, 5)
	set(0, 7, 6)
	set(0, 6, 7)
	set(0, 8, 8)
	set(1, 8, 2)
	set(1, 6, 5)
	set(1, 7, 7)
	set(2, 9, 2)
	set(2, 10, 4)
	set(2, 11, 6)
	set(3, 6, 2)
	set(3, 9, 5)
	set(4, 7, 2)
	set(4, 10, 6)
	set(5, 11, 2)
	set(5, 8, 5)
	// Right-side computations and output communications.
	for j := 6; j < 12; j++ {
		begin := rat.Zero
		for _, idx := range w.InEdges(j) {
			begin = rat.Max(begin, l.CommEnd(idx))
		}
		l.SetCalc(j, begin)
		out := w.EdgeIndex(plan.Edge{From: j, To: plan.Out})
		l.SetComm(out, begin.Add(w.Comp(j)))
	}
	return l
}

// B3Weighted returns the Appendix B.3 instance as a traditional weighted
// workflow (the paper notes the counter-example "still holds for
// traditional workflows"): 8 nodes of unit computation time; senders
// C1..C4 emit volumes 3, 3, 4, 2 per successor; C1, C2 and C4 feed all of
// C5..C8 while C3 feeds only C5..C7. Each of C1..C4 has a private input of
// volume 1, each of C5..C8 a private output of volume 1.
//
// Known results: optimal multi-port period 12; no one-port operation list
// achieves 12 (paper B.3).
//
// Note the filtering reading of B.3 (σ1=σ2=3, σ3=4, σ4=2, unit costs) would
// make each right-side computation cost the full selectivity product (72),
// contradicting the stated period 12; like the paper's own argument, the
// instance only makes sense with literal volumes, which is exactly what
// Weighted expresses.
func B3Weighted() *plan.Weighted {
	comp := make([]rat.Rat, 8)
	for i := range comp {
		comp[i] = rat.One
	}
	var edges []plan.Edge
	var vols []rat.Rat
	add := func(e plan.Edge, v rat.Rat) {
		edges = append(edges, e)
		vols = append(vols, v)
	}
	for i := 0; i < 4; i++ {
		add(plan.Edge{From: plan.In, To: i}, rat.One)
	}
	outVol := []rat.Rat{rat.I(3), rat.I(3), rat.I(4), rat.I(2)}
	for _, i := range []int{0, 1, 3} { // C1, C2, C4 -> C5..C8
		for j := 4; j < 8; j++ {
			add(plan.Edge{From: i, To: j}, outVol[i])
		}
	}
	for j := 4; j < 7; j++ { // C3 -> C5..C7
		add(plan.Edge{From: 2, To: j}, outVol[2])
	}
	for j := 4; j < 8; j++ {
		add(plan.Edge{From: j, To: plan.Out}, rat.One)
	}
	return plan.MustNewWeighted(nil, comp, edges, vols)
}
