package texttab

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tab := New("name", "value").Row("x", 1).Row("longer-name", "23/3")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
	// All lines align: the "value" column starts at the same offset.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[3][idx:], "23/3") {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestRowPaddingAndTruncation(t *testing.T) {
	tab := New("a", "b").Row("only-one").Row("x", "y", "extra-dropped")
	out := tab.String()
	if strings.Contains(out, "extra-dropped") {
		t.Fatal("extra cell not truncated")
	}
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row lost")
	}
}

func TestMarkdown(t *testing.T) {
	md := New("h1", "h2").Row("a", "b").Markdown()
	want := "| h1 | h2 |\n| --- | --- |\n| a | b |\n"
	if md != want {
		t.Fatalf("markdown = %q", md)
	}
}

func TestUnicodeWidths(t *testing.T) {
	out := New("σ", "λ").Row("9999/10000", "23/3").String()
	if !strings.Contains(out, "σ") || !strings.Contains(out, "23/3") {
		t.Fatal("unicode header lost")
	}
}
