// Package texttab renders small plain-text and Markdown tables for the
// experiment harness and CLI output. It is deliberately tiny: fixed-width
// text columns sized to their content, no wrapping.
package texttab

import (
	"fmt"
	"strings"
)

// Table accumulates rows under a fixed header.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: append([]string(nil), header...)}
}

// Row appends a row; values are formatted with %v. Rows shorter than the
// header are padded, longer ones are truncated.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprint(cells[i])
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// widths returns the per-column content widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if l := len([]rune(c)); l > w[i] {
				w[i] = l
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	w := t.widths()
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", w[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}
