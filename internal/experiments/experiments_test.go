package experiments

import "testing"

func checkReports(t *testing.T, reports []Report) {
	t.Helper()
	for _, r := range reports {
		if r.Table == nil || r.ID == "" || r.Title == "" {
			t.Fatalf("%s: malformed report", r.ID)
		}
		if !r.OK {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Title, r.Table.String())
		}
	}
}

// TestAllExperimentsPass runs the full harness at smoke budget and requires
// every paper claim to reproduce (the Prop 17 discrepancy is recorded in
// notes, not in OK). Under -short the expensive random sweeps are gated
// off and only the fixed sub-second experiments run (see TestSmoke); the
// full budget-1 harness remains the long-mode/CI configuration.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive sweeps are gated behind long mode; -short runs TestSmokeExperimentsPass")
	}
	checkReports(t, All(1))
}

// TestSmokeExperimentsPass always runs the fixed fast experiments, so even
// `go test -short` verifies the paper's worked example, counter-examples
// and gadgets end to end.
func TestSmokeExperimentsPass(t *testing.T) {
	checkReports(t, Smoke())
}

// TestAllWorkersPreservesOrderAndResults runs the harness with a forced
// multi-worker pool and requires the canonical report order and verdicts.
// (Each experiment is individually deterministic up to E13's informational
// wall-time column — seeded RNGs throughout —
// and solver-level 1-vs-N bitwise determinism is pinned exhaustively in
// internal/solve; what concurrency could break here is the report order and
// cross-experiment interference, which is what this test watches.)
func TestAllWorkersPreservesOrderAndResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full harness; long mode only")
	}
	reports := AllWorkers(1, 4)
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	if len(reports) != len(want) {
		t.Fatalf("got %d reports, want %d", len(reports), len(want))
	}
	for i, r := range reports {
		if r.ID != want[i] {
			t.Errorf("report %d: ID %s, want %s", i, r.ID, want[i])
		}
		if !r.OK {
			t.Errorf("%s (%s) failed under the parallel harness:\n%s", r.ID, r.Title, r.Table.String())
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := E1Fig1()
	if r.Table.String() == "" || r.Table.Markdown() == "" {
		t.Fatal("empty render")
	}
	if !r.OK {
		t.Fatal("E1 must reproduce")
	}
}
