package experiments

import "testing"

// TestAllExperimentsPass runs the full harness at smoke budget and requires
// every paper claim to reproduce (the Prop 17 discrepancy is recorded in
// notes, not in OK).
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	for _, r := range All(1) {
		if r.Table == nil || r.ID == "" || r.Title == "" {
			t.Fatalf("%s: malformed report", r.ID)
		}
		if !r.OK {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Title, r.Table.String())
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := E1Fig1()
	if r.Table.String() == "" || r.Table.Markdown() == "" {
		t.Fatal("empty render")
	}
	if !r.OK {
		t.Fatal("E1 must reproduce")
	}
}
