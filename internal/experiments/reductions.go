package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/reduction"
	"repro/internal/sim"
	"repro/internal/solve"
	"repro/internal/texttab"
)

// E10Reductions machine-checks the NP-hardness gadgets on small instances:
// YES instances reach the decision bound K, NO instances stay above it.
func E10Reductions() Report {
	tab := texttab.New("gadget", "instance", "bound K", "measured", "verdict")
	ok := true
	row := func(name, inst string, k, v rat.Rat, want string, good bool) {
		ok = ok && good
		tab.Row(name, inst, k, v, fmt.Sprintf("%s %s", want, mark(good)))
	}

	// Prop 2/3: one-port period orchestration (Figure 9 gadget).
	{
		r := reduction.RandomYes(gen.NewRand(3), 3)
		lam1, lam2, _ := r.Solve()
		g, err := reduction.NewOrchPeriodGadget(r)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		l, err := orchestrate.InOrderPeriodWithOrders(g.Graph.Weighted(), g.WitnessOrders(lam1, lam2))
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		row("Prop 2 (period, one-port)", "YES n=3", g.K, l.Lambda(), "== K", l.Lambda().Equal(g.K))

		no, _ := reduction.NoInstance(4)
		gn, err := reduction.NewOrchPeriodGadget(no)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		res, err := orchestrate.InOrderPeriod(gn.Graph.Weighted(), orchestrate.Options{MaxExhaustive: 1, LocalSearchPasses: 4})
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		row("Prop 2 (period, one-port)", "NO n=4", gn.K, res.Value, "> K", res.Value.Greater(gn.K))
	}

	// Prop 9: fork-join latency orchestration (Figure 12 gadget).
	{
		r := reduction.RandomYes(gen.NewRand(5), 3)
		g, err := reduction.NewForkJoinLatencyGadget(r)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		res, err := orchestrate.OnePortLatency(g.Graph.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		row("Prop 9 (latency, given graph)", "YES n=3", g.K, res.Value, "== K", res.Value.Equal(g.K))

		no, _ := reduction.NoInstance(4)
		gn, err := reduction.NewForkJoinLatencyGadget(no)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		resNo, err := orchestrate.OnePortLatency(gn.Graph.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		row("Prop 9 (latency, given graph)", "NO n=4", gn.K, resNo.Value, "> K", resNo.Value.Greater(gn.K))
	}

	// Prop 5: MINPERIOD-OVERLAP gadget.
	{
		r := reduction.RandomYes(gen.NewRand(7), 4)
		lam1, lam2, _ := r.Solve()
		g, err := reduction.NewMinPeriodOverlapGadget(r)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		eg, err := g.WitnessPlan(lam1, lam2)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		res, err := orchestrate.OverlapPeriod(eg.Weighted())
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		row("Prop 5 (MINPERIOD-OVERLAP)", "YES n=4 witness", g.K, res.Value, "== K", res.Value.Equal(g.K))

		wrong, err := g.WitnessPlan([]int{1, 2, 3, 4}, []int{4, 3, 2, 1})
		if err == nil {
			if resW, err := orchestrate.OverlapPeriod(wrong.Weighted()); err == nil {
				good := resW.Value.Greater(g.K) || lamMatches(r, []int{1, 2, 3, 4}, []int{4, 3, 2, 1})
				row("Prop 5 (MINPERIOD-OVERLAP)", "wrong matching", g.K, resW.Value, "> K", good)
			}
		}
	}

	// Prop 13: MINLATENCY gadget (fork-join witness).
	{
		r := reduction.RandomYes(gen.NewRand(9), 3)
		g, err := reduction.NewMinLatencyGadget(r)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		fj, err := g.ForkJoinPlan()
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		res, err := orchestrate.OnePortLatency(fj.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		row("Prop 13 (MINLATENCY)", "YES n=3 fork-join", g.K, res.Value, "<= K", res.Value.Leq(g.K))

		no, _ := reduction.NoInstance(4)
		gn, err := reduction.NewMinLatencyGadget(no)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		fjn, err := gn.ForkJoinPlan()
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		resNo, err := orchestrate.OnePortLatency(fjn.Weighted(), orchestrate.Options{MaxExhaustive: 2000})
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		row("Prop 13 (MINLATENCY)", "NO n=4 fork-join", gn.K, resNo.Value, "> K", resNo.Value.Greater(gn.K))
	}

	// Prop 17: the 2-Partition forest gadget — reproduction finding.
	notes := []string{
		"Prop 2/9 checked exactly (witness schedules and exhaustive order search); Prop 5/13 on the YES witness plans plus NO fork-joins.",
		"Prop 17 (2-Partition forest gadget): with the printed constants the gadget does NOT separate YES from NO in exact arithmetic —",
		"under the full §2 cost model the empty chain always wins (each chain communication costs ≈1 to save O(x/A)),",
		"and under the proof's own communication-free chain formula latency is monotone in the chained sum.",
		"See reduction.TestProp17DiscrepancyFinding; recorded as a discrepancy, not counted against reproduction.",
	}
	{
		yes := reduction.TwoPartition{X: []int64{1, 2, 3, 4}}
		g, err := reduction.NewForestLatencyGadget(yes)
		if err != nil {
			return fail("E10", "reduction gadgets", err)
		}
		full := []bool{true, true, true, true}
		empty := []bool{false, false, false, false}
		lFull, err1 := g.SubsetLatency(full)
		lEmpty, err2 := g.SubsetLatency(empty)
		if err1 == nil && err2 == nil {
			tab.Row("Prop 17 (2-Partition, forests)", "full-model chains", g.K.Decimal(6),
				fmt.Sprintf("empty=%s full=%s", lEmpty.Decimal(6), lFull.Decimal(6)), "discrepancy (see notes)")
		}
	}
	return Report{ID: "E10", Title: "NP-hardness gadgets, machine-checked", Table: tab, OK: ok, Notes: notes}
}

func lamMatches(r reduction.RN3DM, lam1, lam2 []int) bool {
	for i := range lam1 {
		if lam1[i]+lam2[i] != r.A[i] {
			return false
		}
	}
	return true
}

// E11HeuristicQuality compares the polynomial/heuristic solvers against the
// exact forest optimum for MINPERIOD on random instances.
func E11HeuristicQuality(budget int) Report { return e11HeuristicQuality(budget, 0) }

// e11HeuristicQuality bounds the inner plan searches to solverWorkers
// (1 under the parallel harness, which owns the parallelism budget).
func e11HeuristicQuality(budget, solverWorkers int) Report {
	trials := 6 * budget
	n := 5
	opts := solve.Options{Orch: orchestrate.Options{MaxExhaustive: 128}, Workers: solverWorkers}
	type agg struct {
		sumRatio float64
		worst    float64
		exactHit int
	}
	stats := map[string]*agg{"greedy-chain": {}, "hill-climb": {}}
	models := []plan.Model{plan.Overlap, plan.InOrder}
	count := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		app := gen.App(gen.NewRand(seed+500), n, profileFor(seed))
		for _, m := range models {
			exact, err := solve.MinPeriod(app, m, withMethod(opts, solve.ExactForest))
			if err != nil {
				continue
			}
			count++
			for name, method := range map[string]solve.Method{
				"greedy-chain": solve.GreedyChain,
				"hill-climb":   solve.HillClimb,
			} {
				o := withMethod(opts, method)
				o.Restarts = 2
				sol, err := solve.MinPeriod(app, m, o)
				if err != nil {
					continue
				}
				ratio := sol.Value.Div(exact.Value).Float64()
				s := stats[name]
				s.sumRatio += ratio
				if ratio > s.worst {
					s.worst = ratio
				}
				if sol.Value.Equal(exact.Value) {
					s.exactHit++
				}
			}
		}
	}
	tab := texttab.New("method", "mean ratio to optimum", "worst ratio", "optimum found")
	for _, name := range []string{"greedy-chain", "hill-climb"} {
		s := stats[name]
		tab.Row(name,
			fmt.Sprintf("%.4f", s.sumRatio/float64(count)),
			fmt.Sprintf("%.4f", s.worst),
			fmt.Sprintf("%d/%d", s.exactHit, count))
	}
	return Report{
		ID: "E11", Title: "Heuristic quality vs exact forest optimum (MINPERIOD)", Table: tab, OK: true,
		Notes: []string{
			fmt.Sprintf("%d random 5-service instances × {OVERLAP, INORDER}; exact = exhaustive forest enumeration (Prop 4).", trials),
			"The chain greedy is optimal among chains only; hill climbing searches the forest family.",
		},
	}
}

// E12ModelGaps measures the period ordering OVERLAP ≤ OUTORDER ≤ INORDER on
// random plans and confirms the self-timed simulation reaches the
// analytical period.
func E12ModelGaps(budget int) Report {
	trials := 20 * budget
	okOrder, okSim, simTried := 0, 0, 0
	var sumOutOvl, sumInoOut float64
	for seed := int64(0); seed < int64(trials); seed++ {
		rng := gen.NewRand(seed + 900)
		var w *plan.Weighted
		if seed%2 == 0 {
			app := gen.App(rng, 3+rng.Intn(4), gen.Mixed)
			w = gen.DAGPlan(rng, app, 0.4).Weighted()
		} else {
			w = gen.Weighted(rng, 3+rng.Intn(4), 0.4)
		}
		ovl, err1 := orchestrate.OverlapPeriod(w)
		ino, err2 := orchestrate.InOrderPeriod(w, orchestrate.Options{MaxExhaustive: 256})
		out, err3 := orchestrate.OutOrderPeriod(w, orchestrate.Options{MaxExhaustive: 256})
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		if ovl.Value.Leq(out.Value) && out.Value.Leq(ino.Value) {
			okOrder++
		}
		sumOutOvl += out.Value.Div(ovl.Value).Float64()
		sumInoOut += ino.Value.Div(out.Value).Float64()

		// Natural orders can deadlock (circular rendezvous wait); such
		// order assignments are rejected analytically and operationally
		// alike, so only feasible ones enter the convergence count.
		orders := orchestrate.DefaultOrders(w)
		analytic, err := orchestrate.InOrderPeriodWithOrders(w, orders)
		if err != nil {
			continue
		}
		simTried++
		tr, err := sim.SelfTimedInOrder(w, orders, 200)
		if err != nil {
			continue
		}
		if tr.ConvergedTo(analytic.Lambda(), 40) {
			okSim++
		}
	}
	tab := texttab.New("property", "measured", "expected")
	tab.Row("P(OVERLAP) ≤ P(OUTORDER) ≤ P(INORDER)", fmt.Sprintf("%d/%d", okOrder, trials), "always")
	tab.Row("mean P(OUTORDER)/P(OVERLAP)", fmt.Sprintf("%.3f", sumOutOvl/float64(trials)), "≥ 1")
	tab.Row("mean P(INORDER)/P(OUTORDER)", fmt.Sprintf("%.3f", sumInoOut/float64(trials)), "≥ 1")
	tab.Row("self-timed period == event-graph MCR", fmt.Sprintf("%d/%d feasible-order cases", okSim, simTried), "always")
	return Report{
		ID: "E12", Title: "Model power ordering and self-timed convergence", Table: tab,
		OK: okOrder == trials && okSim == simTried && simTried > 0,
		Notes: []string{
			"The multi-port overlap model strictly dominates one-port; out-of-order execution recovers part of the gap.",
			"The discrete-event self-timed execution converges to the maximum cycle ratio, confirming the event-graph analysis operationally.",
		},
	}
}
