package experiments

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/texttab"
)

// E13Scaling measures how the production path (hill-climbing plan search
// plus heuristic orchestration, all schedules fully validated) scales with
// instance size, and how far its periods stay from the per-model lower
// bounds. The paper gives no algorithms beyond the polynomial special
// cases; this experiment characterizes the heuristics a user of this
// library actually runs.
func E13Scaling(budget int) Report { return e13Scaling(budget, 0) }

// e13Scaling bounds the inner plan searches to solverWorkers (1 under the
// parallel harness, which owns the parallelism budget).
func e13Scaling(budget, solverWorkers int) Report {
	sizes := []int{10, 20, 40}
	if budget > 1 {
		sizes = append(sizes, 80)
	}
	tab := texttab.New("services", "model", "period / lower bound", "valid", "wall time")
	ok := true
	for _, n := range sizes {
		app := gen.App(gen.NewRand(int64(n)), n, gen.Filtering)
		for _, m := range []plan.Model{plan.Overlap, plan.InOrder} {
			start := time.Now()
			sol, err := solve.MinPeriod(app, m, solve.Options{
				Method:   solve.HillClimb,
				Restarts: 1,
				Workers:  solverWorkers,
				Orch:     orchestrate.Options{MaxExhaustive: 64, LocalSearchPasses: 2},
			})
			elapsed := time.Since(start).Round(time.Millisecond)
			if err != nil {
				ok = false
				tab.Row(n, m, "error: "+err.Error(), "-", elapsed)
				continue
			}
			valid := sol.Sched.List.Validate(m) == nil
			ok = ok && valid
			lb := sol.Graph.Weighted().PeriodLowerBound(m)
			tab.Row(n, m, fmt.Sprintf("%.4f", sol.Value.Div(lb).Float64()), mark(valid), elapsed)
		}
	}
	return Report{
		ID: "E13", Title: "Scalability of the heuristic pipeline", Table: tab, OK: ok,
		Notes: []string{
			"Ratio is the achieved period over the winning plan's own per-server lower bound (1.0 = provably tight for that graph).",
			"Every emitted schedule is checked by the exact Appendix-A validator; wall times include the full search.",
		},
	}
}

// E14BiCriteria traces the period/latency trade-off frontier the paper's
// conclusion poses as future work: minimal achievable latency under a
// sweep of period bounds, on a fixed filtering workload under INORDER.
func E14BiCriteria(budget int) Report { return e14BiCriteria(budget, 0) }

// e14BiCriteria bounds the inner plan searches to solverWorkers (1 under
// the parallel harness, which owns the parallelism budget).
func e14BiCriteria(budget, solverWorkers int) Report {
	app := gen.App(gen.NewRand(77), 6, gen.Filtering)
	opts := solve.Options{Orch: orchestrate.Options{MaxExhaustive: 128}, Workers: solverWorkers}
	perOpt, err := solve.MinPeriod(app, plan.InOrder, opts)
	if err != nil {
		return fail("E14", "bi-criteria frontier", err)
	}
	// The frontier's asymptote: the bi-criteria search with an effectively
	// unbounded period is the latency optimum over the same plan family,
	// so the monotonicity checks are self-consistent.
	latOpt, err := solve.BiCriteria(app, plan.InOrder, perOpt.Value.MulInt(1000), opts)
	if err != nil {
		return fail("E14", "bi-criteria frontier", err)
	}
	tab := texttab.New("period bound", "best latency", "plan shape")
	ok := true
	steps := 4 * budget
	prev := latOpt.Value.MulInt(1000) // sentinel: effectively +inf
	for i := 0; i <= steps; i++ {
		bound := perOpt.Value.MulInt(int64(steps + i)).Div(rat.I(int64(steps)))
		sol, err := solve.BiCriteria(app, plan.InOrder, bound, opts)
		if err != nil {
			tab.Row(bound.Decimal(3), "infeasible", "-")
			ok = false
			continue
		}
		// Monotonicity: relaxing the bound never hurts latency.
		if sol.Value.Greater(prev) {
			ok = false
		}
		prev = sol.Value
		shape := "forest"
		switch {
		case sol.Graph.IsChain():
			shape = "chain"
		case sol.Graph.Graph().EdgeCount() == 0:
			shape = "parallel"
		}
		if sol.Value.Less(latOpt.Value) {
			ok = false // cannot beat the unconstrained optimum
		}
		tab.Row(bound.Decimal(3), sol.Value.Decimal(3), shape)
	}
	return Report{
		ID: "E14", Title: "Bi-criteria frontier: latency under a period bound", Table: tab, OK: ok,
		Notes: []string{
			"The paper's conclusion poses this as future work; the frontier is monotone and anchored at the unconstrained optima.",
			fmt.Sprintf("Unconstrained anchors: period %s, latency %s.", perOpt.Value.Decimal(3), latOpt.Value.Decimal(3)),
		},
	}
}
