package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/solve"
	"repro/internal/texttab"
)

// E15Pruning measures the pruning effectiveness of the branch-and-bound
// searches: for each structural family it runs the blind enumeration and
// the bounded search on the same instance, checks that both certify the
// identical optimum, and reports the evaluation reduction (candidates
// orchestrated or closed-form-evaluated vs the family's full candidate
// count). The last row is the scale payoff: a chain instance whose 12! ≈
// 4.8e8 candidates the blind enumeration cannot finish (its guard rejects
// the size outright), certified by branch-and-bound in a few thousand
// expansions.
func E15Pruning(budget int) Report { return e15Pruning(budget, 0) }

// e15Pruning bounds the inner blind searches to solverWorkers (1 under the
// parallel harness, which owns the parallelism budget). The branch-and-
// bound runs always use one worker so the reported node counters are
// reproducible: with more workers the result is still identical, but the
// pruning counters depend on goroutine timing.
func e15Pruning(budget, solverWorkers int) Report {
	tab := texttab.New("family", "n", "objective", "blind candidates", "expanded", "evaluated", "evals kept", "optimum")
	ok := true
	orch := orchestrate.Options{MaxExhaustive: 128}

	type pcase struct {
		family solve.Family
		exact  solve.Method
		n      int
		seed   int64
		obj    solve.Objective
		m      plan.Model
		blind  int64 // full candidate count of the family at this n
	}
	factorial := func(n int) int64 {
		f := int64(1)
		for i := int64(2); i <= int64(n); i++ {
			f *= i
		}
		return f
	}
	forests := func(n int) int64 { // labeled rooted forests: (n+1)^(n-1)
		f := int64(1)
		for i := 0; i < n-1; i++ {
			f *= int64(n + 1)
		}
		return f
	}
	dags := [...]int64{1, 1, 3, 25, 543, 29281} // labeled DAGs on n nodes

	cases := []pcase{
		{solve.FamilyChain, solve.ExactChain, 7, 31, solve.PeriodObjective, plan.InOrder, factorial(7)},
		{solve.FamilyChain, solve.ExactChain, 7, 32, solve.LatencyObjective, plan.InOrder, factorial(7)},
		{solve.FamilyForest, solve.ExactForest, 5, 33, solve.PeriodObjective, plan.Overlap, forests(5)},
		{solve.FamilyDAG, solve.ExactDAG, 4, 34, solve.LatencyObjective, plan.InOrder, dags[4]},
	}
	if budget > 1 {
		cases = append(cases,
			pcase{solve.FamilyForest, solve.ExactForest, 6, 35, solve.PeriodObjective, plan.InOrder, forests(6)},
		)
	}

	for _, c := range cases {
		app := gen.App(gen.NewRand(c.seed), c.n, profileFor(c.seed))
		solveObj := func(opts solve.Options) (s solve.Solution, err error) {
			if c.obj == solve.PeriodObjective {
				return solve.MinPeriod(app, c.m, opts)
			}
			return solve.MinLatency(app, c.m, opts)
		}
		blindSol, err := solveObj(solve.Options{Method: c.exact, Orch: orch, Workers: solverWorkers})
		if err != nil {
			return fail("E15", "pruning effectiveness", err)
		}
		var st solve.Stats
		bnbSol, err := solveObj(solve.Options{
			Method: solve.BranchBound, Family: c.family,
			Orch: orch, Restarts: 1, Workers: 1, Stats: &st,
		})
		if err != nil {
			return fail("E15", "pruning effectiveness", err)
		}
		match := bnbSol.Value.Equal(blindSol.Value)
		ok = ok && match
		tab.Row(c.family, c.n, c.obj, c.blind, st.Expanded, st.Evaluated,
			fmt.Sprintf("%.3f%%", 100*float64(st.Evaluated)/float64(c.blind)), mark(match))
	}

	// The certification row: blind chain enumeration rejects n = 12, the
	// bounded search certifies the chain optimum anyway.
	big := gen.App(gen.NewRand(42), 12, gen.Filtering)
	if _, err := solve.MinPeriod(big, plan.InOrder, solve.Options{Method: solve.ExactChain, Orch: orch}); err == nil {
		return fail("E15", "pruning effectiveness", fmt.Errorf("blind chain enumeration unexpectedly accepted n=12"))
	}
	var st solve.Stats
	bigSol, err := solve.MinPeriod(big, plan.InOrder, solve.Options{
		Method: solve.BranchBound, Family: solve.FamilyChain,
		Orch: orch, Workers: 1, Stats: &st,
	})
	if err != nil {
		return fail("E15", "pruning effectiveness", err)
	}
	greedy := solve.ChainPeriodValue(big, solve.GreedyChainOrder(big, plan.InOrder), plan.InOrder)
	certOK := !bigSol.Value.Greater(greedy) && st.Evaluated < factorial(12)/1000
	ok = ok && certOK
	tab.Row(solve.FamilyChain, 12, solve.PeriodObjective, fmt.Sprintf("%d (blind guard rejects)", factorial(12)),
		st.Expanded, st.Evaluated,
		fmt.Sprintf("%.6f%%", 100*float64(st.Evaluated)/float64(factorial(12))), mark(certOK))

	return Report{
		ID: "E15", Title: "Branch-and-bound pruning effectiveness vs blind enumeration", Table: tab, OK: ok,
		Notes: []string{
			"'blind candidates' is the family's full candidate count (n! chains, (n+1)^(n-1) forests, labeled DAGs); 'evaluated' counts the candidates branch-and-bound actually scored after lower-bound pruning.",
			"Every shared-size row checks that branch-and-bound certifies the identical optimum as the blind enumeration (the cross-method equivalence suite pins the full Solutions bit for bit).",
			"The n=12 chain row is beyond the blind guard: the optimum is certified against the greedy-chain incumbent with a ~1e-4% evaluation fraction.",
			"Counters come from Workers: 1 runs; parallel runs return the identical Solution but timing-dependent counters.",
		},
	}
}
