// Package experiments regenerates every quantitative artifact of the paper
// (the §2.3 worked example, the three counter-examples of Appendix B, the
// polynomial special cases, the structural theorem, and the NP-hardness
// gadgets) plus the simulation studies its framework implies (heuristic
// quality, model gaps, self-timed convergence). cmd/filterexp renders the
// reports; the root benchmarks time each experiment; EXPERIMENTS.md records
// paper-vs-measured values produced here.
package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/paperex"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/texttab"
	"repro/internal/workflow"
)

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	Table *texttab.Table
	// Notes carry commentary: what the paper claims, what was measured,
	// discrepancies.
	Notes []string
	// OK is false when a paper claim failed to reproduce.
	OK bool
}

// All runs every experiment on the shared worker pool with the default
// worker count (runtime.NumCPU) and returns the reports in experiment
// order. Budget scales the expensive sweeps (1 = fast smoke run, 2 = the
// full EXPERIMENTS.md configuration).
func All(budget int) []Report {
	return AllWorkers(budget, 0)
}

// AllWorkers is All with an explicit worker bound (0 = runtime.NumCPU(),
// 1 = serial). The bound is the harness's whole parallelism budget: the
// experiments fan out across the pool while their inner plan searches run
// serially (Workers: 1), so workers = 1 is end-to-end serial and larger
// counts never nest pools or oversubscribe the CPUs. The experiments are
// mutually independent and deterministic, so report order, verdicts and
// measured values do not depend on the worker count (the one exception is
// E13's informational wall-time column, which reports real elapsed time).
func AllWorkers(budget, workers int) []Report {
	runs := []func() Report{
		E1Fig1,
		E2ChainVsForest,
		E3MultiportLatency,
		E4MultiportPeriod,
		func() Report { return E5OverlapOrchestration(budget) },
		func() Report { return E6ChainPeriodGreedy(budget) },
		func() Report { return E7ChainLatencyGreedy(budget) },
		func() Report { return E8TreeLatency(budget) },
		func() Report { return e9ForestStructure(budget, 1) },
		E10Reductions,
		func() Report { return e11HeuristicQuality(budget, 1) },
		func() Report { return E12ModelGaps(budget) },
		func() Report { return e13Scaling(budget, 1) },
		func() Report { return e14BiCriteria(budget, 1) },
		func() Report { return e15Pruning(budget, 1) },
		func() Report { return e16CacheAmortization(budget, 1) },
		func() Report { return e17StoreCluster(budget, 1) },
		func() Report { return E18OrderPruning(budget) },
		func() Report { return E19IncrementalBound(budget) },
		func() Report { return E20DataPlane(budget) },
	}
	return par.Map(workers, len(runs), func(i int) Report { return runs[i]() })
}

// Smoke runs only the fixed, fast experiments (the worked example, the
// three counter-examples and the NP-hardness gadgets — no random sweeps):
// the sub-second subset that `go test -short` exercises.
func Smoke() []Report {
	return []Report{
		E1Fig1(),
		E2ChainVsForest(),
		E3MultiportLatency(),
		E4MultiportPeriod(),
		E10Reductions(),
	}
}

// E1Fig1 reproduces the §2.3 worked example: optimal period per model and
// the shared optimal latency on the Figure 1 execution graph.
func E1Fig1() Report {
	eg := paperex.Fig1Graph()
	w := eg.Weighted()
	tab := texttab.New("quantity", "paper", "measured", "match")
	ok := true
	check := func(name string, want rat.Rat, got rat.Rat) {
		match := got.Equal(want)
		ok = ok && match
		tab.Row(name, want, got, mark(match))
	}
	ovl, err := orchestrate.OverlapPeriod(w)
	if err != nil {
		return fail("E1", "Fig. 1 worked example", err)
	}
	ino, err := orchestrate.InOrderPeriod(w, orchestrate.Options{})
	if err != nil {
		return fail("E1", "Fig. 1 worked example", err)
	}
	out, err := orchestrate.OutOrderPeriod(w, orchestrate.Options{})
	if err != nil {
		return fail("E1", "Fig. 1 worked example", err)
	}
	lat, err := orchestrate.OnePortLatency(w, orchestrate.Options{})
	if err != nil {
		return fail("E1", "Fig. 1 worked example", err)
	}
	mlat, err := orchestrate.OverlapLatency(w, orchestrate.Options{})
	if err != nil {
		return fail("E1", "Fig. 1 worked example", err)
	}
	check("period OVERLAP", rat.I(4), ovl.Value)
	check("period OUTORDER", rat.I(7), out.Value)
	check("period INORDER", rat.New(23, 3), ino.Value)
	check("latency one-port", rat.I(21), lat.Value)
	check("latency multi-port", rat.I(21), mlat.Value)
	return Report{
		ID: "E1", Title: "§2.3 worked example (Figure 1)", Table: tab, OK: ok,
		Notes: []string{
			"Optimal values per model on the fixed execution graph of Fig. 1.",
			"The INORDER optimum 23/3 distributes idle time across C1, C4, C5 exactly as the paper derives.",
		},
	}
}

// E2ChainVsForest reproduces counter-example B.1: with communication costs
// the optimal MINPERIOD plan is no longer a chain.
func E2ChainVsForest() Report {
	chain := paperex.B1ChainFanGraph()
	opt := paperex.B1OptimalGraph()
	tab := texttab.New("plan", "no-comm max Ccomp", "OVERLAP period", "paper")
	chainRes, err := orchestrate.OverlapPeriod(chain.Weighted())
	if err != nil {
		return fail("E2", "counter-example B.1", err)
	}
	optRes, err := orchestrate.OverlapPeriod(opt.Weighted())
	if err != nil {
		return fail("E2", "counter-example B.1", err)
	}
	maxComp := func(eg *plan.ExecGraph) rat.Rat {
		m := rat.Zero
		for v := 0; v < eg.N(); v++ {
			m = rat.Max(m, eg.Ccomp(v))
		}
		return m
	}
	tab.Row("chain C1→C2 + fan (no-comm optimal)", maxComp(chain).Decimal(2), chainRes.Value.Decimal(4), "≈200")
	tab.Row("two fans C1→C3..C102, C2→C103..C202 (Fig. 4)", maxComp(opt).Decimal(2), optRes.Value.Decimal(2), "100")
	ok := optRes.Value.Equal(rat.I(100)) &&
		chainRes.Value.Equal(rat.I(200).Mul(rat.New(9999, 10000).PowInt(2)))
	return Report{
		ID: "E2", Title: "B.1: communication costs break the chain structure", Table: tab, OK: ok,
		Notes: []string{
			"Without communication both plans keep every computation ≤ 100, and chaining the two filters is optimal.",
			"With OVERLAP communication, C2's 200 outgoing copies cost 199.960002; splitting into two fans restores period 100.",
		},
	}
}

// E3MultiportLatency reproduces counter-example B.2: multi-port latency 20
// strictly beats every one-port schedule on the Figure 5 bipartite graph.
func E3MultiportLatency() Report {
	w := paperex.B2Graph().Weighted()
	shared, err := orchestrate.OverlapLatencyShared(w)
	if err != nil {
		return fail("E3", "counter-example B.2", err)
	}
	onePort, err := orchestrate.OnePortLatency(w, orchestrate.Options{})
	if err != nil {
		return fail("E3", "counter-example B.2", err)
	}
	witness := paperex.B2OnePort21List()
	bestOnePort := rat.Min(onePort.Value, witness.Latency())
	witnessOK := witness.Validate(plan.InOrder) == nil && witness.Latency().Equal(rat.I(21))
	tab := texttab.New("model", "latency", "paper")
	tab.Row("multi-port (bandwidth sharing)", shared.Latency(), "20")
	tab.Row("one-port (validated witness)", bestOnePort, "> 20")
	ok := shared.Latency().Equal(rat.I(20)) && bestOnePort.Greater(rat.I(20)) && witnessOK
	return Report{
		ID: "E3", Title: "B.2: one-port vs multi-port latency (Figure 5)", Table: tab, OK: ok,
		Notes: []string{
			"Multi-port executes the 6×6 communication phase in exactly 6 time units by bandwidth sharing; the paper proves no one-port schedule can.",
			"The one-port value 21 is a hand-constructed, validator-checked schedule (paperex.B2OnePort21List); with the paper's >20 bound it is the exact one-port optimum.",
			"The result holds for traditional workflows (σ ≡ 1) as well — the volumes, not the selectivities, drive it.",
		},
	}
}

// E4MultiportPeriod reproduces counter-example B.3: multi-port period 12 is
// unreachable for one-port schedules on the Figure 6 graph.
func E4MultiportPeriod() Report {
	w := paperex.B3Weighted()
	ovl, err := orchestrate.OverlapPeriod(w)
	if err != nil {
		return fail("E4", "counter-example B.3", err)
	}
	onePort, err := orchestrate.OutOrderPeriod(w, orchestrate.Options{})
	if err != nil {
		return fail("E4", "counter-example B.3", err)
	}
	tab := texttab.New("model", "period", "paper")
	tab.Row("multi-port (Theorem 1)", ovl.Value, "12")
	tab.Row("one-port OUTORDER (best found)", onePort.Value, "> 12")
	ok := ovl.Value.Equal(rat.I(12)) && onePort.Value.Greater(rat.I(12))
	return Report{
		ID: "E4", Title: "B.3: one-port vs multi-port period (Figure 6)", Table: tab, OK: ok,
		Notes: []string{
			"The instance is the paper's traditional-workflow reading: unit computations, sender volumes 3/3/4/2.",
			"Note the filtering reading of B.3 would give right-side computations of cost 72 > 12, contradicting the stated optimum; see DESIGN.md.",
		},
	}
}

// E5OverlapOrchestration verifies Theorem 1 empirically: the constructed
// OVERLAP schedule meets max_k Cexec(k) on every random execution graph.
func E5OverlapOrchestration(budget int) Report {
	trials := 200 * budget
	okCount := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		rng := gen.NewRand(seed)
		var w *plan.Weighted
		if seed%2 == 0 {
			app := gen.App(rng, 3+rng.Intn(8), gen.Mixed)
			w = gen.DAGPlan(rng, app, 0.35).Weighted()
		} else {
			w = gen.Weighted(rng, 3+rng.Intn(8), 0.35)
		}
		res, err := orchestrate.OverlapPeriod(w)
		if err == nil && res.Value.Equal(w.PeriodLowerBound(plan.Overlap)) {
			okCount++
		}
	}
	tab := texttab.New("random execution graphs", "period == max Cexec", "paper")
	tab.Row(trials, fmt.Sprintf("%d/%d", okCount, trials), "always (Thm 1)")
	return Report{
		ID: "E5", Title: "Theorem 1: OVERLAP period orchestration is polynomial and tight", Table: tab,
		OK: okCount == trials,
		Notes: []string{
			"Every constructed schedule passes the Appendix-A multi-port validator and meets the lower bound exactly.",
		},
	}
}

// E6ChainPeriodGreedy verifies Prop. 8: the greedy chain equals exhaustive
// chain search for MINPERIOD under all three models.
func E6ChainPeriodGreedy(budget int) Report {
	trials := 60 * budget
	n := 6
	matches := map[plan.Model]int{}
	for seed := int64(0); seed < int64(trials); seed++ {
		app := gen.App(gen.NewRand(seed), n, profileFor(seed))
		for _, m := range plan.Models {
			greedy := solve.ChainPeriodValue(app, solve.GreedyChainOrder(app, m), m)
			best := bestChainPeriod(app, m)
			if greedy.Equal(best) {
				matches[m]++
			}
		}
	}
	tab := texttab.New("model", "greedy == optimal chain", "paper")
	for _, m := range plan.Models {
		tab.Row(m, fmt.Sprintf("%d/%d", matches[m], trials), "always (Prop 8)")
	}
	ok := true
	for _, m := range plan.Models {
		ok = ok && matches[m] == trials
	}
	return Report{
		ID: "E6", Title: "Prop. 8: greedy chain is period-optimal among chains", Table: tab, OK: ok,
		Notes: []string{fmt.Sprintf("Random instances with %d services, brute force over all %d! chains.", n, n)},
	}
}

// E7ChainLatencyGreedy verifies Prop. 16: sorting by decreasing
// (1−σ)/(1+c) is latency-optimal among chains.
func E7ChainLatencyGreedy(budget int) Report {
	trials := 60 * budget
	n := 6
	match := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		app := gen.App(gen.NewRand(seed+1000), n, profileFor(seed))
		greedy := solve.ChainLatencyValue(app, solve.GreedyLatencyChainOrder(app))
		if greedy.Equal(bestChainLatency(app)) {
			match++
		}
	}
	tab := texttab.New("instances", "greedy == optimal chain", "paper")
	tab.Row(trials, fmt.Sprintf("%d/%d", match, trials), "always (Prop 16)")
	return Report{
		ID: "E7", Title: "Prop. 16: greedy chain is latency-optimal among chains", Table: tab,
		OK: match == trials,
	}
}

// E8TreeLatency verifies Prop. 12 / Algorithm 1: the O(n log n) tree
// algorithm matches exhaustive order search on random forests.
func E8TreeLatency(budget int) Report {
	trials := 40 * budget
	match, skipped := 0, 0
	for seed := int64(0); seed < int64(trials); seed++ {
		rng := gen.NewRand(seed)
		app := gen.App(rng, 3+rng.Intn(4), gen.Filtering)
		w := gen.ForestPlan(rng, app).Weighted()
		tree, err := orchestrate.TreeLatency(w)
		if err != nil {
			skipped++
			continue
		}
		ex, err := orchestrate.OnePortLatency(w, orchestrate.Options{MaxExhaustive: 50000})
		if err != nil || !ex.Exact {
			skipped++
			continue
		}
		if tree.Value.Equal(ex.Value) {
			match++
		}
	}
	tab := texttab.New("random forests", "Algorithm 1 == exhaustive", "skipped (too wide)", "paper")
	tab.Row(trials, fmt.Sprintf("%d/%d", match, trials-skipped), skipped, "always (Prop 12)")
	return Report{
		ID: "E8", Title: "Prop. 12 / Algorithm 1: tree latency in O(n log n)", Table: tab,
		OK: match == trials-skipped,
	}
}

// E9ForestStructure verifies Prop. 4: the forest-restricted optimum equals
// the unrestricted (DAG) optimum for MINPERIOD without precedence.
func E9ForestStructure(budget int) Report { return e9ForestStructure(budget, 0) }

// e9ForestStructure bounds the inner plan searches to solverWorkers
// (1 under the parallel harness, which owns the parallelism budget).
func e9ForestStructure(budget, solverWorkers int) Report {
	trials := 4 * budget
	matches := map[plan.Model]int{}
	models := []plan.Model{plan.Overlap, plan.InOrder}
	opts := solve.Options{Orch: orchestrate.Options{MaxExhaustive: 256}, Workers: solverWorkers}
	for seed := int64(0); seed < int64(trials); seed++ {
		app := gen.App(gen.NewRand(seed), 4, gen.Mixed)
		for _, m := range models {
			f, err1 := solve.MinPeriod(app, m, withMethod(opts, solve.ExactForest))
			d, err2 := solve.MinPeriod(app, m, withMethod(opts, solve.ExactDAG))
			if err1 == nil && err2 == nil && f.Value.Equal(d.Value) {
				matches[m]++
			}
		}
	}
	tab := texttab.New("model", "forest opt == DAG opt", "paper")
	for _, m := range models {
		tab.Row(m, fmt.Sprintf("%d/%d", matches[m], trials), "always (Prop 4)")
	}
	ok := true
	for _, m := range models {
		ok = ok && matches[m] == trials
	}
	return Report{
		ID: "E9", Title: "Prop. 4: some optimal MINPERIOD plan is a forest", Table: tab, OK: ok,
		Notes: []string{"Exhaustive enumeration of all 125 forests vs all 543 DAGs on 4 services."},
	}
}

// --- helpers ---

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func fail(id, title string, err error) Report {
	return Report{ID: id, Title: title, OK: false,
		Table: texttab.New("error").Row(err),
		Notes: []string{"experiment aborted"}}
}

func profileFor(seed int64) gen.Profile {
	switch seed % 3 {
	case 0:
		return gen.Filtering
	case 1:
		return gen.Mixed
	default:
		return gen.Expanding
	}
}

func withMethod(o solve.Options, m solve.Method) solve.Options {
	o.Method = m
	return o
}

// bestChainPeriod brute-forces the optimal chain period over all n! orders.
func bestChainPeriod(app *workflow.App, m plan.Model) rat.Rat {
	var best rat.Rat
	first := true
	permutations(app.N(), func(order []int) {
		v := solve.ChainPeriodValue(app, order, m)
		if first || v.Less(best) {
			best, first = v, false
		}
	})
	return best
}

// bestChainLatency brute-forces the optimal chain latency.
func bestChainLatency(app *workflow.App) rat.Rat {
	var best rat.Rat
	first := true
	permutations(app.N(), func(order []int) {
		v := solve.ChainLatencyValue(app, order)
		if first || v.Less(best) {
			best, first = v, false
		}
	})
	return best
}

// permutations enumerates all orders of 0..n-1.
func permutations(n int, fn func([]int)) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			fn(order)
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			rec(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	rec(0)
}
