package experiments

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/texttab"
)

// E18OrderPruning measures the orchestration fast path (PR 5): the pruned
// prefix search against the flat order-space product it replaced, and the
// exact-rate gain of raising the default exhaustive cap from 4096 to
// 65536 combinations. The first table's rows run the exhaustive search
// with counters on instances of growing order spaces: 'combinations' is
// the full product a flat enumeration scores, 'evaluated' what the pruned
// search actually scored (prefix bounds + the static-floor early exit cut
// the rest). The closing rows sweep random DAG plans: spaces in the
// (4096, 65536] band were heuristic before the cap raise and are searched
// exactly now — at a pruned cost far below the product — so their
// orchestrations gained Exact: true.
func E18OrderPruning(budget int) Report {
	tab := texttab.New("instance", "search", "combinations", "prefixes", "pruned", "evaluated", "evals kept", "exact")
	ok := true

	// small instances draw 3-6 services at density 0.6, large ones (the
	// fast-path benchmark family, cf. BenchmarkOrchestratePeriod*) 6-8 at
	// density 0.5.
	mkPlan := func(seed int64, small bool) *plan.Weighted {
		rng := gen.NewRand(seed)
		if small {
			return gen.DAGPlan(rng, gen.App(rng, 3+rng.Intn(4), gen.Mixed), 0.6).Weighted()
		}
		return gen.DAGPlan(rng, gen.App(rng, 6+rng.Intn(3), gen.Mixed), 0.5).Weighted()
	}
	type ocase struct {
		name  string
		seed  int64
		small bool
		kind  string // "period" or "latency"
	}
	cases := []ocase{
		{"dag-a", 2, true, "period"},
		{"dag-a", 2, true, "latency"},
		{"dag-b", 18, true, "period"},
		{"dag-c", 42, false, "period"},
		{"dag-c", 42, false, "latency"},
	}
	if budget > 1 {
		cases = append(cases,
			ocase{"dag-d", 44, false, "period"},
			ocase{"dag-d", 44, false, "latency"},
		)
	}
	for _, c := range cases {
		w := mkPlan(c.seed, c.small)
		combos := orchestrate.OrderCombinations(w, 1<<30)
		var st orchestrate.Stats
		opts := orchestrate.Options{Stats: &st, Workers: 1}
		var res orchestrate.Result
		var err error
		if c.kind == "period" {
			res, err = orchestrate.InOrderPeriod(w, opts)
		} else {
			res, err = orchestrate.OnePortLatency(w, opts)
		}
		if err != nil {
			return fail("E18", "orchestration order-search pruning", err)
		}
		rowOK := res.Exact && st.Evaluated <= int64(combos) && !res.Value.Less(res.LowerBound)
		ok = ok && rowOK
		tab.Row(c.name, c.kind, combos, st.Prefixes, st.Pruned, st.Evaluated,
			fmt.Sprintf("%.3f%%", 100*float64(st.Evaluated)/float64(combos)), mark(rowOK))
	}

	// Exact-rate sweep: random DAG plans binned by where their order space
	// falls relative to the old and the new default cap.
	trials := 60 * budget
	within4096, within65536, beyond := 0, 0, 0
	var promoted []*plan.Weighted
	for seed := int64(1000); seed < int64(1000+trials); seed++ {
		rng := gen.NewRand(seed)
		app := gen.App(rng, 4+rng.Intn(5), profileFor(seed))
		w := gen.DAGPlan(rng, app, 0.5).Weighted()
		c := orchestrate.OrderCombinations(w, 1<<30)
		switch {
		case c <= 4096:
			within4096++
		case c <= 65536:
			within65536++
			if len(promoted) < 2 {
				promoted = append(promoted, w)
			}
		default:
			beyond++
		}
	}
	oldRate := float64(within4096) / float64(trials)
	newRate := float64(within4096+within65536) / float64(trials)
	tab.Row("sweep", fmt.Sprintf("%d plans", trials), "-", "-", "-", "-",
		fmt.Sprintf("exact-rate %.0f%% -> %.0f%%", 100*oldRate, 100*newRate), mark(newRate >= oldRate))
	ok = ok && newRate >= oldRate

	// The promoted band, verified end to end: under the old cap the search
	// is heuristic; under the new default it is exact and never worse.
	for i, w := range promoted {
		heur, err := orchestrate.InOrderPeriod(w, orchestrate.Options{MaxExhaustive: 4096})
		if err != nil {
			return fail("E18", "orchestration order-search pruning", err)
		}
		var st orchestrate.Stats
		exact, err := orchestrate.InOrderPeriod(w, orchestrate.Options{Stats: &st, Workers: 1})
		if err != nil {
			return fail("E18", "orchestration order-search pruning", err)
		}
		rowOK := !heur.Exact && exact.Exact && !exact.Value.Greater(heur.Value)
		ok = ok && rowOK
		combos := orchestrate.OrderCombinations(w, 1<<30)
		tab.Row(fmt.Sprintf("promoted-%d", i+1), "period", combos, st.Prefixes, st.Pruned, st.Evaluated,
			fmt.Sprintf("heur %s -> exact %s", heur.Value, exact.Value), mark(rowOK))
	}

	return Report{
		ID: "E18", Title: "Orchestration fast path: order-prefix pruning and the exhaustive-cap raise", Table: tab, OK: ok,
		Notes: []string{
			"'combinations' is the flat per-server order product (Π ins!·outs!) the pre-fast-path search scored one by one; 'evaluated' counts complete assignments the pruned search still scored after bound pruning and the static-floor early exit.",
			"Search equivalence (bit-identical schedules vs the flat enumeration, across worker counts) is pinned by internal/orchestrate's fast-path suite; this experiment records the effort reduction.",
			"The sweep bins random DAG plans by order-space size: plans in the (4096, 65536] band were searched heuristically before the cap raise and exactly after it — the 'promoted' rows verify heuristic -> exact on two of them, with the exact value never worse.",
			"Counters come from Workers: 1 runs; parallel runs return the identical Result but timing-dependent counters.",
		},
	}
}

// E19IncrementalBound measures the PR-6 inner-loop changes: how much
// relaxed-graph rebuild work the one-segment patching avoids against the
// from-scratch rebuilds it replaced, and how often the certified float
// pre-filter decides a bound query without falling back to exact rational
// arithmetic. 'edges built' counts relaxed-graph edges the incremental
// path actually constructed (full prepares + one-segment patches);
// 'edges flat' what per-query from-scratch rebuilds would have built.
// Both paths return bit-identical Results (pinned by the orchestrate
// equivalence suite); this experiment records the effort reduction.
func E19IncrementalBound(budget int) Report {
	tab := texttab.New("instance", "search", "edges built", "edges flat", "rebuild avoided", "float-certified", "exact fallback", "fallback rate", "exact")
	ok := true

	mkPlan := func(seed int64, small bool) *plan.Weighted {
		rng := gen.NewRand(seed)
		if small {
			return gen.DAGPlan(rng, gen.App(rng, 3+rng.Intn(4), gen.Mixed), 0.6).Weighted()
		}
		return gen.DAGPlan(rng, gen.App(rng, 6+rng.Intn(3), gen.Mixed), 0.5).Weighted()
	}
	type icase struct {
		name  string
		seed  int64
		small bool
		kind  string // "period" or "latency"
	}
	cases := []icase{
		{"dag-a", 2, true, "period"},
		{"dag-c", 42, false, "period"},
		{"dag-c", 42, false, "latency"},
	}
	if budget > 1 {
		cases = append(cases,
			icase{"dag-d", 44, false, "period"},
			icase{"dag-d", 44, false, "latency"},
			icase{"dag-e", 55, false, "period"},
		)
	}
	var totBuilt, totFlat, totCert, totFall int64
	for _, c := range cases {
		w := mkPlan(c.seed, c.small)
		var st orchestrate.Stats
		opts := orchestrate.Options{Stats: &st, Workers: 1}
		var res orchestrate.Result
		var err error
		if c.kind == "period" {
			res, err = orchestrate.InOrderPeriod(w, opts)
		} else {
			res, err = orchestrate.OnePortLatency(w, opts)
		}
		if err != nil {
			return fail("E19", "incremental bound + float pre-filter", err)
		}
		totBuilt += st.BoundEdgesBuilt
		totFlat += st.BoundEdgesFlat
		totCert += st.FilterCertified
		totFall += st.FilterFallback
		avoided, fallback := "-", "-"
		rowOK := res.Exact
		if st.BoundEdgesFlat > 0 {
			avoided = fmt.Sprintf("%.1f%%", 100*(1-float64(st.BoundEdgesBuilt)/float64(st.BoundEdgesFlat)))
		}
		if q := st.FilterCertified + st.FilterFallback; q > 0 {
			fallback = fmt.Sprintf("%.1f%%", 100*float64(st.FilterFallback)/float64(q))
		}
		ok = ok && rowOK
		tab.Row(c.name, c.kind, st.BoundEdgesBuilt, st.BoundEdgesFlat, avoided,
			st.FilterCertified, st.FilterFallback, fallback, mark(rowOK))
	}
	totalOK := totFlat > 0 && totBuilt < totFlat && totCert+totFall > 0
	ok = ok && totalOK
	tab.Row("total", "-", totBuilt, totFlat,
		fmt.Sprintf("%.1f%%", 100*(1-float64(totBuilt)/float64(totFlat))),
		totCert, totFall,
		fmt.Sprintf("%.1f%%", 100*float64(totFall)/float64(totCert+totFall)), mark(totalOK))

	return Report{
		ID: "E19", Title: "Incremental relaxed-graph patching and the certified float pre-filter", Table: tab, OK: ok,
		Notes: []string{
			"'rebuild avoided' = 1 − built/flat: the fraction of relaxed-graph edge construction the one-segment patching saves versus rebuilding the whole graph on every bound query (the pre-PR-6 path). A row can go negative when pruning kills the search after few queries — the per-shard prepare then dominates — but the aggregate must come out ahead, and does.",
			"'fallback rate' = exact / (certified + exact): bound feasibility queries the one-sided float run could not certify and that re-ran under exact rational arithmetic. Infeasibility is never float-certified, so the filter is sound by construction.",
			"Both figures leave the Results bit-identical — the orchestrate suite pins incremental == from-scratch and filtered == unfiltered across worker counts; only the work, not the answer, changes.",
			"Counters come from Workers: 1 runs; parallel runs return the identical Result but timing-dependent counters.",
		},
	}
}
