package experiments

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/service"
	"repro/internal/solve"
	"repro/internal/texttab"
	"repro/internal/workflow"
)

// e20App is the fixed data-plane instance: five filtering services with
// mild selectivities, so even the last service in the plan still sees
// thousands of tuples at the largest stream budget (the estimators need
// samples to converge).
func e20App() (*workflow.App, error) {
	return workflow.New([]workflow.Service{
		{Name: "S1", Cost: rat.I(2), Selectivity: rat.New(1, 2)},
		{Name: "S2", Cost: rat.One, Selectivity: rat.New(3, 5)},
		{Name: "S3", Cost: rat.I(3), Selectivity: rat.New(7, 10)},
		{Name: "S4", Cost: rat.New(1, 2), Selectivity: rat.New(4, 5)},
		{Name: "S5", Cost: rat.I(4), Selectivity: rat.New(9, 10)},
	}, nil)
}

// E20DataPlane measures the data plane (internal/exec) end to end:
// how fast the online selectivity estimators converge on the declared
// values as the stream grows, and — with an injected cost drift — how
// many tuples the closed loop needs to detect the drift, PATCH the
// instance and hot-swap to the re-planned schedule.
func E20DataPlane(budget int) Report {
	app, err := e20App()
	if err != nil {
		return fail("E20", "data plane", err)
	}
	mkPlanner := func() (*exec.Local, func()) {
		srv := service.New(service.Config{Workers: 1})
		return &exec.Local{Server: srv, Params: service.Request{
			Model: plan.Overlap, Objective: solve.PeriodObjective,
		}}, srv.Close
	}

	tab := texttab.New("phase", "tuples", "measurement", "value", "check")
	ok := true
	ctx := context.Background()

	// Phase 1: convergence. No drift injected (the stream follows the
	// declared selectivities), drift control silenced; the worst-case
	// relative estimation error over all services must shrink with the
	// stream and end within 10% of declared.
	budgets := []uint64{512, 2048, 8192}
	if budget > 1 {
		budgets = append(budgets, 32768)
	}
	var last rat.Rat
	for _, n := range budgets {
		planner, close := mkPlanner()
		ex, err := exec.New(exec.Config{
			App: app, Planner: planner, Seed: 7,
			Threshold: rat.I(1 << 20), // never re-plan
		})
		if err != nil {
			close()
			return fail("E20", "data plane", err)
		}
		report, err := ex.Run(ctx, n)
		close()
		if err != nil {
			return fail("E20", "data plane", err)
		}
		worst := rat.Zero
		for _, s := range report.Services {
			err := s.EmpSelectivity.Sub(s.DeclSelectivity).Div(s.DeclSelectivity).Abs()
			worst = rat.Max(worst, err)
		}
		last = worst
		tab.Row("converge", n, "max |emp-decl|/decl", worst.Decimal(4), "-")
	}
	convOK := last.Less(rat.New(1, 10))
	ok = ok && convOK
	tab.Row("converge", budgets[len(budgets)-1], "final error < 1/10", last.Decimal(4), mark(convOK))

	// Phase 2: re-plan latency. The stream head's true cost is 4x its
	// declared value; the controller must detect it after one round of
	// samples, PATCH exactly once and hot-swap to the schedule a direct
	// solve of the drifted instance produces.
	driftCost := rat.I(8)
	planner, close := mkPlanner()
	defer close()
	ex, err := exec.New(exec.Config{
		App: app, Planner: planner, Seed: 7,
		Window: 512, MinSamples: 256, Threshold: rat.New(1, 4),
		Truth: map[string]exec.Truth{"S1": {Cost: &driftCost}},
	})
	if err != nil {
		return fail("E20", "data plane", err)
	}
	report, err := ex.Run(ctx, 4096)
	if err != nil {
		return fail("E20", "data plane", err)
	}
	patchOK := report.Patches == 1 && report.Swaps == 1 && len(report.Episodes) == 1
	ok = ok && patchOK
	tab.Row("re-plan", report.Tuples, "controller patches", report.Patches, mark(patchOK))
	if len(report.Episodes) == 1 {
		ep := report.Episodes[0]
		// The swap lands on a round boundary, within the first two
		// rounds (the service clears the min-samples gate no later than
		// one full window after the stream starts).
		latencyOK := ep.Tuple > 0 && ep.Tuple <= 1024 && ep.Tuple%512 == 0
		ok = ok && latencyOK
		tab.Row("re-plan", ep.Tuple, "detection latency (tuples)", ep.Tuple, mark(latencyOK))
		tab.Row("re-plan", report.Tuples, "objective value",
			fmt.Sprintf("%s -> %s", ep.OldValue, ep.NewValue), "-")
	}

	// The hot-swapped plan must be the plan of the drifted instance.
	direct, err := planner.Plan(ctx, report.App, "")
	if err != nil {
		return fail("E20", "data plane", err)
	}
	swapOK := direct.Hash == report.Hash && direct.Value.Equal(report.Value)
	ok = ok && swapOK
	tab.Row("re-plan", report.Tuples, "swapped == direct solve", direct.Value, mark(swapOK))

	return Report{
		ID: "E20", Title: "Data plane: estimator convergence and closed-loop re-plan latency", Table: tab, OK: ok,
		Notes: []string{
			"Convergence rows stream the declared instance (no drift) with re-planning silenced and report the worst relative selectivity-estimation error across all five services; Bernoulli noise shrinks as 1/sqrt(samples), and services deep in the plan see fewer tuples, so the error is dominated by the most-filtered service.",
			"The re-plan phase injects a 4x cost drift on S1: per-tuple cost measurement is exact, so the controller fires deterministically at the first round boundary where S1 clears the min-samples gate (tuple 1024 — S1 is not first in the plan, so it needs a second window of survivors), PATCHes once, and hot-swaps.",
			"'swapped == direct solve' re-plans the PATCHed instance directly and requires the same plan hash and objective value the executor ended on — the closed loop lands exactly where a from-scratch plan of measured reality lands.",
			"Fixed seed: every row is bit-reproducible across runs and -workers settings.",
		},
	}
}
