package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/canon"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/solve"
	"repro/internal/texttab"
	"repro/internal/workflow"
)

// E16CacheAmortization measures the planning service's cache amortization
// on the shipped testdata instances: the cold request pays the full
// NP-hard plan search, every identical request after it is a cache hit
// whose cost is canonicalization plus a map lookup, and concurrent
// identical requests collapse to one solve (singleflight). Correctness —
// cached responses identical in objective value to a direct solver call on
// the canonical instance, exactly one solve per canonical key — gates the
// verdict; the request-rate columns are informational wall-clock
// measurements like E13's.
func E16CacheAmortization(budget int) Report { return e16CacheAmortization(budget, 0) }

// e16CacheAmortization bounds the service's solver pool to solverWorkers
// (1 under the parallel harness, which owns the parallelism budget).
func e16CacheAmortization(budget, solverWorkers int) Report {
	tab := texttab.New("instance", "n", "cold", "warm (avg)", "amortization", "req/s warm", "1-solve", "match")
	ok := true

	instances, err := loadTestdataInstances()
	if err != nil {
		return fail("E16", "plan-cache amortization", err)
	}

	warmRequests := 100 * budget
	for _, ti := range instances {
		srv := service.New(service.Config{Workers: solverWorkers})
		req := service.Request{App: ti.app, Model: plan.Overlap, Objective: solve.PeriodObjective}

		// Reference: a direct solver call on the canonical instance with
		// the request's options.
		inst, err := canon.Canonicalize(ti.app)
		if err != nil {
			srv.Close()
			return fail("E16", "plan-cache amortization", err)
		}
		direct, err := solve.MinPeriod(inst.App(), req.Model, solve.Options{Workers: 1})
		if err != nil {
			srv.Close()
			return fail("E16", "plan-cache amortization", err)
		}

		coldStart := time.Now()
		cold, err := srv.Plan(req)
		coldDur := time.Since(coldStart)
		if err != nil {
			srv.Close()
			return fail("E16", "plan-cache amortization", err)
		}

		warmStart := time.Now()
		match := cold.Solution.Value.Equal(direct.Value)
		for i := 0; i < warmRequests; i++ {
			warm, err := srv.Plan(req)
			if err != nil {
				srv.Close()
				return fail("E16", "plan-cache amortization", err)
			}
			match = match && warm.Solution.Value.Equal(direct.Value)
		}
		warmDur := time.Since(warmStart) / time.Duration(warmRequests)

		// Singleflight: a burst of concurrent identical requests on the
		// warm cache still reports exactly one solve in total.
		burst := make([]service.Request, 8)
		for i := range burst {
			burst[i] = req
		}
		for _, r := range srv.PlanBatch(burst) {
			if r.Err != nil {
				srv.Close()
				return fail("E16", "plan-cache amortization", r.Err)
			}
			match = match && r.Response.Solution.Value.Equal(direct.Value)
		}
		oneSolve := srv.Stats().Solves == 1
		srv.Close()

		ok = ok && match && oneSolve
		amort := "n/a"
		reqPerSec := "n/a"
		if warmDur > 0 {
			amort = fmt.Sprintf("%.0fx", float64(coldDur)/float64(warmDur))
			reqPerSec = fmt.Sprintf("%.0f", float64(time.Second)/float64(warmDur))
		}
		tab.Row(ti.name, ti.app.N(), roundDur(coldDur), roundDur(warmDur), amort, reqPerSec,
			mark(oneSolve), mark(match))
	}

	return Report{
		ID: "E16", Title: "Planning-service cache amortization (cold vs warm requests)", Table: tab, OK: ok,
		Notes: []string{
			"Each row plans one shipped testdata instance through internal/service (OVERLAP period, auto method): the cold request runs the full plan search, the warm rows repeat the identical request against the populated cache.",
			fmt.Sprintf("'warm (avg)' averages %d sequential cache hits; 'amortization' is cold/warm; '1-solve' checks that an 8-request concurrent burst plus all warm repeats still total exactly one solver run (singleflight + cache).", warmRequests),
			"'match' requires every served value to equal a direct solve.MinPeriod on the canonical instance (the service test suite pins full bit-identity of graphs and operation lists).",
			"Wall-clock columns are informational and vary per host, like E13's; the verdict gates only on the correctness checks.",
		},
	}
}

type testdataInstance struct {
	name string
	app  *workflow.App
}

// loadTestdataInstances reads the shipped instance files, tolerating both
// the repository root (filterexp) and package-relative (go test) working
// directories.
func loadTestdataInstances() ([]testdataInstance, error) {
	names := []string{"mixed6", "webquery8", "expanding12"}
	var out []testdataInstance
	for _, name := range names {
		var data []byte
		var err error
		for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
			data, err = os.ReadFile(filepath.Join(dir, name+".json"))
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("loading testdata instance %s: %w", name, err)
		}
		app := new(workflow.App)
		if err := app.UnmarshalJSON(data); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		out = append(out, testdataInstance{name: name, app: app})
	}
	return out, nil
}

// roundDur trims a duration to a readable precision for the table.
func roundDur(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(10 * time.Millisecond)
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
