package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/solve"
	"repro/internal/store"
	"repro/internal/texttab"
)

// E17StoreCluster measures the PR-4 distribution subsystem on the shipped
// testdata instances: restarting a replica over a populated plan store
// (warm-load) versus re-solving from scratch (cold start), and the warm
// request throughput of a 2-replica sharded cluster behind the router
// versus a standalone replica. Correctness gates the verdict — the
// restarted replica must answer warm (a cache hit, zero solves) with the
// cold objective, and routed answers must equal local ones; the wall-clock
// columns are informational like E13's and E16's.
func E17StoreCluster(budget int) Report { return e17StoreCluster(budget, 0) }

// e17StoreCluster bounds the services' solver pools to solverWorkers
// (1 under the parallel harness, which owns the parallelism budget).
func e17StoreCluster(budget, solverWorkers int) Report {
	tab := texttab.New("instance", "n", "cold solve", "restart warm-load", "speedup",
		"local req/s", "routed req/s", "warm-hit", "match")
	ok := true

	instances, err := loadTestdataInstances()
	if err != nil {
		return fail("E17", "plan store + cluster", err)
	}
	warmRequests := 50 * budget

	for _, ti := range instances {
		dir, err := os.MkdirTemp("", "filterd-e17-*")
		if err != nil {
			return fail("E17", "plan store + cluster", err)
		}
		row, err := e17Row(ti, dir, warmRequests, solverWorkers)
		os.RemoveAll(dir)
		if err != nil {
			return fail("E17", "plan store + cluster", err)
		}
		ok = ok && row.warmHit && row.match
		speedup := "n/a"
		if row.warmLoad > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(row.cold)/float64(row.warmLoad))
		}
		tab.Row(ti.name, ti.app.N(), roundDur(row.cold), roundDur(row.warmLoad), speedup,
			fmt.Sprintf("%.0f", row.localRate), fmt.Sprintf("%.0f", row.routedRate),
			mark(row.warmHit), mark(row.match))
	}

	return Report{
		ID: "E17", Title: "Plan store warm-load vs cold start; routed vs local throughput", Table: tab, OK: ok,
		Notes: []string{
			"'cold solve' is the first request against an empty persistent store (full plan search + write-through persist); 'restart warm-load' is a full replica restart over the populated store — service construction with warm-load plus the first request, which must be a cache hit with zero solver runs.",
			fmt.Sprintf("'local req/s' repeats %d warm requests against a standalone replica in process; 'routed req/s' sends the same %d warm requests over HTTP through the cluster router to a 2-replica cluster (one network hop more per request).", warmRequests, warmRequests),
			"'warm-hit' requires the restarted replica to answer from the warm-loaded cache (outcome hit, 0 solves); 'match' requires the restarted, local and routed objective values to all equal the cold solve's.",
			"Wall-clock columns are informational and vary per host; the verdict gates only on the correctness checks.",
		},
	}
}

type e17Results struct {
	cold, warmLoad        time.Duration
	localRate, routedRate float64
	warmHit, match        bool
}

func e17Row(ti testdataInstance, dir string, warmRequests, solverWorkers int) (e17Results, error) {
	var out e17Results
	req := service.Request{App: ti.app, Model: plan.Overlap, Objective: solve.PeriodObjective}

	// Phase 1: cold solve against an empty store (write-through persist).
	st1, err := store.Open(dir)
	if err != nil {
		return out, err
	}
	srv1 := service.New(service.Config{Workers: solverWorkers, Store: st1})
	coldStart := time.Now()
	cold, err := srv1.Plan(req)
	out.cold = time.Since(coldStart)
	srv1.Close()
	if err != nil {
		return out, err
	}

	// Phase 2: replica restart — warm-load the store, then the first
	// request must be served warm, without a solver run.
	warmStart := time.Now()
	st2, err := store.Open(dir)
	if err != nil {
		return out, err
	}
	srv2 := service.New(service.Config{Workers: solverWorkers, Store: st2})
	defer srv2.Close()
	warm, err := srv2.Plan(req)
	out.warmLoad = time.Since(warmStart)
	if err != nil {
		return out, err
	}
	out.warmHit = warm.Outcome.String() == "hit" && srv2.Stats().Solves == 0
	out.match = warm.Solution.Value.Equal(cold.Solution.Value)

	// Phase 3a: standalone warm throughput (in-process, like E16).
	localStart := time.Now()
	for i := 0; i < warmRequests; i++ {
		resp, err := srv2.Plan(req)
		if err != nil {
			return out, err
		}
		out.match = out.match && resp.Solution.Value.Equal(cold.Solution.Value)
	}
	if d := time.Since(localStart); d > 0 {
		out.localRate = float64(warmRequests) / d.Seconds()
	}

	// Phase 3b: routed warm throughput — a 2-replica cluster behind the
	// router, driven over HTTP.
	var replicas []*httptest.Server
	var peers []string
	var servers []*service.Server
	for i := 0; i < 2; i++ {
		s := service.New(service.Config{Workers: solverWorkers})
		ts := httptest.NewServer(service.Handler(s))
		servers = append(servers, s)
		replicas = append(replicas, ts)
		peers = append(peers, ts.URL)
	}
	local := service.New(service.Config{Workers: solverWorkers})
	rt, err := cluster.New(cluster.Config{Peers: peers, Local: local})
	if err != nil {
		return out, err
	}
	gw := httptest.NewServer(rt)
	defer func() {
		gw.Close()
		rt.Close()
		local.Close()
		for i := range replicas {
			replicas[i].Close()
			servers[i].Close()
		}
	}()

	instData, err := ti.app.MarshalJSON()
	if err != nil {
		return out, err
	}
	body := fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instData)
	routedValue := func() (string, error) {
		resp, err := http.Post(gw.URL+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var doc struct {
			Value string `json:"value"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return "", err
		}
		if doc.Error != "" {
			return "", fmt.Errorf("routed request failed: %s", doc.Error)
		}
		return doc.Value, nil
	}
	// Warm the owner, then measure.
	v, err := routedValue()
	if err != nil {
		return out, err
	}
	out.match = out.match && v == cold.Solution.Value.String()
	routedStart := time.Now()
	for i := 0; i < warmRequests; i++ {
		if v, err = routedValue(); err != nil {
			return out, err
		}
		out.match = out.match && v == cold.Solution.Value.String()
	}
	if d := time.Since(routedStart); d > 0 {
		out.routedRate = float64(warmRequests) / d.Seconds()
	}
	return out, nil
}
