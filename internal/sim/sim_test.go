package sim

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/orchestrate"
	"repro/internal/paperex"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

func TestReplayPeriodAndLatency(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	res, err := orchestrate.OverlapPeriod(w)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Replay(res.List, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 50 {
		t.Fatalf("N = %d", tr.N())
	}
	// Every inter-completion gap equals the period exactly.
	for n := 1; n < tr.N(); n++ {
		if !tr.Gap(n).Equal(rat.I(4)) {
			t.Fatalf("gap(%d) = %s, want 4", n, tr.Gap(n))
		}
	}
	sp, err := tr.SteadyPeriod(10)
	if err != nil || !sp.Equal(rat.I(4)) {
		t.Fatalf("steady period = %s, err=%v", sp, err)
	}
	// Latency is the same for every data set.
	l0 := tr.Latency(0)
	for n := 1; n < tr.N(); n++ {
		if !tr.Latency(n).Equal(l0) {
			t.Fatalf("latency(%d) = %s != latency(0) = %s", n, tr.Latency(n), l0)
		}
	}
}

func TestReplayErrors(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	res, err := orchestrate.OverlapPeriod(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(res.List, 0); err == nil {
		t.Fatal("nData=0 must fail")
	}
	tr, _ := Replay(res.List, 5)
	if _, err := tr.SteadyPeriod(10); err == nil {
		t.Fatal("window larger than trace must fail")
	}
	if _, err := tr.SteadyPeriod(0); err == nil {
		t.Fatal("zero window must fail")
	}
	if _, err := tr.Utilization(0, 10); err == nil {
		t.Fatal("bad from must fail")
	}
}

// The self-timed INORDER execution must converge to the analytical period
// (the MCR of the event graph) for the same orders.
func TestSelfTimedConvergesToAnalyticalPeriod(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	orders := orchestrate.DefaultOrders(w)
	analytic, err := orchestrate.InOrderPeriodWithOrders(w, orders)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SelfTimedInOrder(w, orders, 200)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := tr.SteadyPeriod(60)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Equal(analytic.Lambda()) {
		t.Fatalf("self-timed steady period %s != analytical MCR %s", sp, analytic.Lambda())
	}
}

func TestSelfTimedMatchesMCROnRandomPlans(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := gen.NewRand(seed)
		var w *plan.Weighted
		if seed%2 == 0 {
			w = gen.Weighted(rng, 3+rng.Intn(4), 0.4)
		} else {
			app := gen.App(rng, 3+rng.Intn(4), gen.Mixed)
			w = gen.DAGPlan(rng, app, 0.4).Weighted()
		}
		orders := orchestrate.DefaultOrders(w)
		analytic, err := orchestrate.InOrderPeriodWithOrders(w, orders)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, err := SelfTimedInOrder(w, orders, 160)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Average over a large window divisible by plausible regime lengths.
		sp, err := tr.SteadyPeriod(60)
		if err != nil {
			t.Fatal(err)
		}
		if !sp.Equal(analytic.Lambda()) {
			t.Fatalf("seed %d: self-timed %s != MCR %s", seed, sp, analytic.Lambda())
		}
	}
}

// A slowed-down server must shift the self-timed throughput to the new MCR:
// failure/degradation injection agrees with the analysis.
func TestSelfTimedDegradationTracksAnalysis(t *testing.T) {
	app := workflow.Uniform(4, rat.I(2), rat.One)
	eg, err := plan.ChainFromOrder(app, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	w := eg.Weighted()
	orders := orchestrate.DefaultOrders(w)
	base, err := orchestrate.InOrderPeriodWithOrders(w, orders)
	if err != nil {
		t.Fatal(err)
	}

	// Degrade service C3 by 5x: rebuild the app with a higher cost.
	services := app.Services()
	services[2].Cost = rat.I(10)
	slowApp := workflow.MustNew(services, nil)
	slowEg, err := plan.ChainFromOrder(slowApp, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	slow := slowEg.Weighted()
	slowOrders := orchestrate.DefaultOrders(slow)
	slowAnalytic, err := orchestrate.InOrderPeriodWithOrders(slow, slowOrders)
	if err != nil {
		t.Fatal(err)
	}
	if !slowAnalytic.Lambda().Greater(base.Lambda()) {
		t.Fatal("degradation must raise the period")
	}
	tr, err := SelfTimedInOrder(slow, slowOrders, 120)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := tr.SteadyPeriod(40)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Equal(slowAnalytic.Lambda()) {
		t.Fatalf("degraded self-timed %s != analysis %s", sp, slowAnalytic.Lambda())
	}
}

func TestSelfTimedLatencyAtLeastPathBound(t *testing.T) {
	for seed := int64(30); seed < 40; seed++ {
		rng := gen.NewRand(seed)
		w := gen.Weighted(rng, 4, 0.5)
		tr, err := SelfTimedInOrder(w, orchestrate.DefaultOrders(w), 20)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < tr.N(); n++ {
			if tr.Latency(n).Less(w.LatencyPathBound()) {
				t.Fatalf("seed %d: latency(%d) = %s below path bound %s",
					seed, n, tr.Latency(n), w.LatencyPathBound())
			}
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	orders := orchestrate.DefaultOrders(w)
	tr, err := SelfTimedInOrder(w, orders, 100)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < w.N(); v++ {
		u, err := tr.Utilization(v, 20)
		if err != nil {
			t.Fatal(err)
		}
		if u.Sign() <= 0 || u.Greater(rat.One) {
			t.Fatalf("utilization(%d) = %s out of (0,1]", v, u)
		}
	}
	// The bottleneck server C1 (Cexec 7) runs at ~7/MCR once the transient
	// has died out; allow a small tolerance for the residual transient.
	analytic, _ := orchestrate.InOrderPeriodWithOrders(w, orders)
	want := rat.I(7).Div(analytic.Lambda()).Float64()
	u, _ := tr.Utilization(0, 60)
	if got := u.Float64(); got < want-0.01 || got > want+0.01 {
		t.Fatalf("C1 utilization = %v, want ≈ %v (period %s)", got, want, analytic.Lambda())
	}
}

func TestSelfTimedRejectsBadInput(t *testing.T) {
	w := paperex.Fig1Graph().Weighted()
	if _, err := SelfTimedInOrder(w, orchestrate.DefaultOrders(w), 0); err == nil {
		t.Fatal("nData=0 must fail")
	}
}
