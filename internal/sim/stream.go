package sim

// Tuple-stream substrate for the data plane (internal/exec): the
// deterministic filtering verdicts and the serial reference execution the
// concurrent executor is tested against.
//
// The executor's determinism contract — fixed seed ⇒ bit-identical tuple
// verdicts, estimator values and drift-trigger sequence across runs and
// worker counts — rests on one property: a service's verdict on a tuple is
// a pure function of (seed, service name, tuple ID), independent of
// goroutine interleaving, stage wiring, or which plan is currently
// executing. Bernoulli provides that function; ReferenceStream executes a
// whole stream with it serially, one tuple at a time through the execution
// graph, so the pipelined executor has an independent oracle for its
// counters.

import (
	"math/big"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// Threshold converts a selectivity into the acceptance threshold of
// Bernoulli: floor(sel·2^64), computed exactly. A 64-bit hash drawn
// uniformly is below the threshold with probability sel (up to the 2^-64
// grid). Selectivities ≤ 0 map to 0 (never pass), ≥ 1 to the maximum
// (Bernoulli special-cases them to always pass).
func Threshold(sel rat.Rat) uint64 {
	if sel.Sign() <= 0 {
		return 0
	}
	if sel.Geq(rat.One) {
		return ^uint64(0)
	}
	// floor(p/q · 2^64) with exact big-integer arithmetic.
	br := sel.Big()
	num := new(big.Int).Lsh(br.Num(), 64)
	num.Quo(num, br.Denom())
	return num.Uint64()
}

// Verdict reports whether the tuple passes a filter whose acceptance
// threshold is Threshold(sel): the deterministic per-(seed, name, tuple)
// hash compared against it. Selectivity ≥ 1 (threshold max) always passes —
// expanding services do not drop tuples.
func Verdict(seed uint64, name string, tuple uint64, threshold uint64) bool {
	if threshold == ^uint64(0) {
		return true
	}
	return TupleHash(seed, name, tuple) < threshold
}

// Bernoulli is Verdict with the threshold computed on the spot: the
// deterministic filtering verdict of one service on one tuple. Hot loops
// should precompute Threshold once per service instead.
func Bernoulli(seed uint64, name string, tuple uint64, sel rat.Rat) bool {
	return Verdict(seed, name, tuple, Threshold(sel))
}

// TupleHash is the pinned 64-bit hash behind Verdict: an FNV-1a pass over
// the service name folded with the seed, then a splitmix64 finalizer over
// the tuple ID. The function is part of the determinism contract — golden
// values are pinned by tests, so any change is a deliberate,
// verdict-breaking one.
func TupleHash(seed uint64, name string, tuple uint64) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
		golden    = 0x9E3779B97F4A7C15
	)
	h := uint64(fnvOffset) ^ seed
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	// splitmix64 finalizer over the name hash advanced by the tuple index.
	z := h + (tuple+1)*golden
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// StreamCounts are the per-service tuple counters of one executed stream
// segment: In counts tuples a service evaluated (every graph ancestor
// passed them), Out the subset it passed. Completed counts tuples pushed
// through the graph, Emitted the survivors — tuples alive at every exit
// service, i.e. passed by every service that saw them on every path to the
// output.
type StreamCounts struct {
	In        map[string]uint64
	Out       map[string]uint64
	Completed uint64
	Emitted   uint64
}

// Sel returns the empirical selectivity Out/In of a service as an exact
// rational, and false when the service evaluated no tuples.
func (c StreamCounts) Sel(name string) (rat.Rat, bool) {
	in := c.In[name]
	if in == 0 {
		return rat.Zero, false
	}
	return rat.I(int64(c.Out[name])).Div(rat.I(int64(in))), true
}

// ReferenceStream executes tuples [first, first+n) serially through the
// execution graph: tuple t reaches service v iff every ancestor of v
// passed t, v's own verdict is Bernoulli under truth (the service's true
// selectivity; missing entries default to the declared one), and t is
// emitted iff it stays alive through every exit. This is the oracle the
// concurrent executor's counters are compared against — same verdict
// function, trivially sequential evaluation.
func ReferenceStream(app *workflow.App, eg *plan.ExecGraph, seed uint64, first, n uint64, truth map[string]rat.Rat) StreamCounts {
	nv := app.N()
	counts := StreamCounts{
		In:  make(map[string]uint64, nv),
		Out: make(map[string]uint64, nv),
	}
	topo := eg.Topo()
	thresholds := make([]uint64, nv)
	for v := 0; v < nv; v++ {
		sel := app.Selectivity(v)
		if t, ok := truth[app.Name(v)]; ok {
			sel = t
		}
		thresholds[v] = Threshold(sel)
	}
	pass := make([]bool, nv) // alive after v, this tuple
	for t := first; t < first+n; t++ {
		for _, v := range topo {
			alive := true
			for _, p := range eg.Graph().Pred(v) {
				if !pass[p] {
					alive = false
					break
				}
			}
			if alive {
				name := app.Name(v)
				counts.In[name]++
				alive = Verdict(seed, name, t, thresholds[v])
				if alive {
					counts.Out[name]++
				}
			}
			pass[v] = alive
		}
		counts.Completed++
		emitted := true
		for v := 0; v < nv; v++ {
			if eg.Graph().OutDegree(v) == 0 && !pass[v] {
				emitted = false
				break
			}
		}
		if nv > 0 && emitted {
			counts.Emitted++
		}
	}
	return counts
}
