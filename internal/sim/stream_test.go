package sim

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/workflow"
)

// TestTupleHashGoldens pins the verdict hash bit-for-bit. The executor's
// determinism contract (fixed seed ⇒ identical verdicts across runs,
// workers, and machines) makes this function part of the wire-level
// behavior: changing it silently would change every measured selectivity,
// so any change must break this test deliberately.
func TestTupleHashGoldens(t *testing.T) {
	goldens := []struct {
		seed  uint64
		name  string
		tuple uint64
		want  uint64
	}{
		{0, "", 0, 14087677454934409008},
		{1, "C1", 0, 3171853099896201835},
		{1, "C1", 1, 17504047275386016899},
		{1, "C2", 0, 7781931822814771976},
		{42, "C1", 0, 11416054335621976338},
		{1, "C1", 1 << 40, 2664679742599864127},
	}
	for _, g := range goldens {
		if got := TupleHash(g.seed, g.name, g.tuple); got != g.want {
			t.Errorf("TupleHash(%d, %q, %d) = %d, want %d", g.seed, g.name, g.tuple, got, g.want)
		}
	}
	// The three inputs are all live: perturbing any one moves the hash.
	base := TupleHash(1, "C1", 7)
	if TupleHash(2, "C1", 7) == base || TupleHash(1, "C9", 7) == base || TupleHash(1, "C1", 8) == base {
		t.Error("hash insensitive to one of (seed, name, tuple)")
	}
}

// TestThresholdEdges checks the exact selectivity→threshold conversion,
// including the clamped edges the verdict special-cases.
func TestThresholdEdges(t *testing.T) {
	cases := []struct {
		sel  rat.Rat
		want uint64
	}{
		{rat.Zero, 0},
		{rat.New(-1, 2), 0},
		{rat.One, ^uint64(0)},
		{rat.I(3), ^uint64(0)},
		{rat.New(1, 2), 1 << 63},
		{rat.New(1, 4), 1 << 62},
		{rat.New(1, 3), 6148914691236517205}, // floor(2^64 / 3)
	}
	for _, c := range cases {
		if got := Threshold(c.sel); got != c.want {
			t.Errorf("Threshold(%s) = %d, want %d", c.sel, got, c.want)
		}
	}
	// Threshold 0 never passes; threshold max always passes, regardless of
	// the hash value.
	if Verdict(1, "x", 0, 0) {
		t.Error("selectivity 0 passed a tuple")
	}
	if !Verdict(1, "x", 0, ^uint64(0)) {
		t.Error("selectivity ≥ 1 dropped a tuple")
	}
}

// TestBernoulliConvergesToSelectivity is the statistical contract: the
// deterministic per-tuple verdicts behave like independent Bernoulli
// draws, so the pass rate over a long stream converges to the selectivity.
// 100k tuples put the standard error near 0.0014; a 0.01 tolerance is ~7σ.
func TestBernoulliConvergesToSelectivity(t *testing.T) {
	const n = 100000
	for _, sel := range []rat.Rat{rat.New(1, 10), rat.New(1, 4), rat.New(1, 2), rat.New(9, 10)} {
		threshold := Threshold(sel)
		passed := 0
		for tuple := uint64(0); tuple < n; tuple++ {
			if Verdict(7, "svc", tuple, threshold) {
				passed++
			}
		}
		got := float64(passed) / n
		want, _ := sel.Big().Float64()
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("selectivity %s: empirical pass rate %.4f", sel, got)
		}
	}
}

// TestReferenceStreamSemantics pins the oracle's counter semantics on a
// diamond a→{b,c}: In counts tuples whose ancestors all passed, Out the
// subset passed, and Emitted the tuples alive at EVERY exit.
func TestReferenceStreamSemantics(t *testing.T) {
	app := workflow.MustNew([]workflow.Service{
		{Name: "a", Cost: rat.One, Selectivity: rat.New(1, 2)},
		{Name: "b", Cost: rat.One, Selectivity: rat.New(2, 3)},
		{Name: "c", Cost: rat.One, Selectivity: rat.New(3, 4)},
	}, nil)
	eg, err := plan.Build(app, [][2]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	c := ReferenceStream(app, eg, 1, 0, n, nil)

	if c.Completed != n {
		t.Fatalf("Completed = %d, want %d", c.Completed, n)
	}
	if c.In["a"] != n {
		t.Fatalf("entry service saw %d tuples, want %d", c.In["a"], n)
	}
	// b and c gate on a alone: both see exactly a's survivors.
	if c.In["b"] != c.Out["a"] || c.In["c"] != c.Out["a"] {
		t.Fatalf("In[b]=%d In[c]=%d, want both = Out[a]=%d", c.In["b"], c.In["c"], c.Out["a"])
	}
	// Emitted requires survival at both exits: recompute it from the
	// verdicts directly.
	var want uint64
	tb, tc := Threshold(app.Selectivity(1)), Threshold(app.Selectivity(2))
	ta := Threshold(app.Selectivity(0))
	for tuple := uint64(0); tuple < n; tuple++ {
		if Verdict(1, "a", tuple, ta) && Verdict(1, "b", tuple, tb) && Verdict(1, "c", tuple, tc) {
			want++
		}
	}
	if c.Emitted != want {
		t.Fatalf("Emitted = %d, want %d", c.Emitted, want)
	}
	if c.Emitted >= c.Out["b"] || c.Emitted >= c.Out["c"] {
		t.Fatalf("Emitted %d not strictly filtered below single exits (b: %d, c: %d)",
			c.Emitted, c.Out["b"], c.Out["c"])
	}

	// Sel returns the exact rational Out/In; a name that saw no tuples
	// reports false.
	sel, ok := c.Sel("a")
	if !ok || !sel.Equal(rat.New(int64(c.Out["a"]), int64(c.In["a"]))) {
		t.Fatalf("Sel(a) = %s, %v", sel, ok)
	}
	if _, ok := c.Sel("ghost"); ok {
		t.Fatal("Sel of an unknown service reported data")
	}

	// Streams are position-independent and composable: [0,n) equals
	// [0,k) + [k,n) counter-for-counter.
	const k = 1000
	head := ReferenceStream(app, eg, 1, 0, k, nil)
	tail := ReferenceStream(app, eg, 1, k, n-k, nil)
	for _, name := range []string{"a", "b", "c"} {
		if head.In[name]+tail.In[name] != c.In[name] || head.Out[name]+tail.Out[name] != c.Out[name] {
			t.Fatalf("segment counters for %s do not compose", name)
		}
	}
	if head.Emitted+tail.Emitted != c.Emitted {
		t.Fatal("segment Emitted does not compose")
	}
}

// TestReferenceStreamTruthOverride: the truth map redirects a service's
// verdicts without touching the declared instance — the mechanism behind
// filterexec -drift.
func TestReferenceStreamTruthOverride(t *testing.T) {
	app := workflow.MustNew([]workflow.Service{
		{Name: "a", Cost: rat.One, Selectivity: rat.New(1, 2)},
		{Name: "b", Cost: rat.One, Selectivity: rat.New(1, 2)},
	}, nil)
	eg, err := plan.Build(app, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2048
	blocked := ReferenceStream(app, eg, 1, 0, n, map[string]rat.Rat{"a": rat.Zero})
	if blocked.Out["a"] != 0 || blocked.In["b"] != 0 || blocked.Emitted != 0 {
		t.Fatalf("truth 0 leaked tuples: %+v", blocked)
	}
	open := ReferenceStream(app, eg, 1, 0, n, map[string]rat.Rat{"a": rat.One})
	if open.Out["a"] != n || open.In["b"] != n {
		t.Fatalf("truth 1 dropped tuples: %+v", open)
	}
	// b keeps its declared behavior either way.
	declared := ReferenceStream(app, eg, 1, 0, n, nil)
	if sel, _ := open.Sel("b"); open.In["b"] == declared.In["b"] && !sel.Equal(mustSel(declared, "b")) {
		t.Fatal("override of a changed b's verdicts")
	}
}

func mustSel(c StreamCounts, name string) rat.Rat {
	s, _ := c.Sel(name)
	return s
}
