// Package sim provides a discrete-event execution substrate for plans: the
// experimental platform the paper lacks. It executes schedules
// operationally, independent of the analytical machinery, so that every
// period/latency claim can be confirmed by actually running the system on a
// stream of data sets.
//
// Two executors are provided:
//
//   - Replay executes a strictly periodic operation list for N data sets
//     and reports completions, per-data-set latency, and server
//     utilization.
//   - SelfTimedInOrder executes the INORDER semantics greedily (every
//     operation as soon as its rendezvous partners allow), with no
//     prescribed period; its steady-state throughput must converge to the
//     maximum cycle ratio of the corresponding event graph, which the tests
//     verify.
package sim

import (
	"fmt"

	"repro/internal/oplist"
	"repro/internal/orchestrate"
	"repro/internal/plan"
	"repro/internal/rat"
)

// Trace records the execution of nData consecutive data sets.
type Trace struct {
	w *plan.Weighted
	// CalcEnd[n][v] is the completion of node v's computation on data set n.
	CalcEnd [][]rat.Rat
	// CommEnd[n][e] is the completion of communication e for data set n.
	CommEnd [][]rat.Rat
	// Start[n] is the begin time of the first operation of data set n.
	Start []rat.Rat
	// Done[n] is the completion time of data set n (its last communication).
	Done []rat.Rat
}

// N returns the number of data sets traced.
func (t *Trace) N() int { return len(t.Done) }

// Latency returns Done[n] − Start[n], the response time of data set n.
func (t *Trace) Latency(n int) rat.Rat { return t.Done[n].Sub(t.Start[n]) }

// Gap returns Done[n] − Done[n−1], the inter-completion time at n ≥ 1.
func (t *Trace) Gap(n int) rat.Rat { return t.Done[n].Sub(t.Done[n-1]) }

// SteadyPeriod averages the inter-completion gaps over the last window data
// sets: in the periodic regime of a self-timed execution this equals the
// maximum cycle ratio exactly (the regime may be K-periodic, so a window
// that is a multiple of K averages to the ratio).
func (t *Trace) SteadyPeriod(window int) (rat.Rat, error) {
	n := t.N()
	if window < 1 || window >= n {
		return rat.Zero, fmt.Errorf("sim: window %d out of range (have %d data sets)", window, n)
	}
	total := t.Done[n-1].Sub(t.Done[n-1-window])
	return total.Div(rat.I(int64(window))), nil
}

// ConvergedTo reports whether the execution has reached a K-periodic
// regime with the given per-data-set period for some K ≤ maxK: the last
// K-step completion difference equals exactly K·period. Self-timed
// executions of event graphs converge to such regimes, but K (the
// cyclicity of the critical subgraph) is instance-dependent, so a fixed
// averaging window can straddle a partial cycle.
func (t *Trace) ConvergedTo(period rat.Rat, maxK int) bool {
	n := t.N()
	for k := 1; k <= maxK && k < n; k++ {
		if t.Done[n-1].Sub(t.Done[n-1-k]).Equal(period.MulInt(int64(k))) {
			return true
		}
	}
	return false
}

// Utilization returns the busy fraction of server v between the completion
// of data set `from` and the completion of the last data set: the total
// operation time charged to v divided by the elapsed time.
func (t *Trace) Utilization(v, from int) (rat.Rat, error) {
	n := t.N()
	if from < 0 || from >= n-1 {
		return rat.Zero, fmt.Errorf("sim: from %d out of range", from)
	}
	elapsed := t.Done[n-1].Sub(t.Done[from])
	if elapsed.Sign() <= 0 {
		return rat.Zero, fmt.Errorf("sim: empty measurement window")
	}
	busy := rat.Zero
	perSet := t.w.Comp(v)
	for _, ei := range t.w.InEdges(v) {
		perSet = perSet.Add(t.w.Vol(ei))
	}
	for _, ei := range t.w.OutEdges(v) {
		perSet = perSet.Add(t.w.Vol(ei))
	}
	busy = perSet.MulInt(int64(n - 1 - from))
	return busy.Div(elapsed), nil
}

// Replay executes a validated operation list for nData data sets: data set
// n runs at the list's times shifted by n·λ. The resulting trace is exact
// by construction; Replay exists so experiments can report operational
// numbers (completions, latencies, utilizations) rather than analytical
// ones.
func Replay(l *oplist.List, nData int) (*Trace, error) {
	if nData < 1 {
		return nil, fmt.Errorf("sim: need at least one data set")
	}
	w := l.Plan()
	tr := &Trace{
		w:       w,
		CalcEnd: make([][]rat.Rat, nData),
		CommEnd: make([][]rat.Rat, nData),
		Start:   make([]rat.Rat, nData),
		Done:    make([]rat.Rat, nData),
	}
	for n := 0; n < nData; n++ {
		shift := l.Lambda().MulInt(int64(n))
		tr.CalcEnd[n] = make([]rat.Rat, w.N())
		for v := 0; v < w.N(); v++ {
			tr.CalcEnd[n][v] = l.CalcEnd(v).Add(shift)
		}
		tr.CommEnd[n] = make([]rat.Rat, len(w.Edges()))
		start := rat.Zero
		startSet := false
		done := rat.Zero
		for ei := range w.Edges() {
			tr.CommEnd[n][ei] = l.CommEnd(ei).Add(shift)
			b := l.CommBegin(ei).Add(shift)
			if !startSet || b.Less(start) {
				start, startSet = b, true
			}
			done = rat.Max(done, tr.CommEnd[n][ei])
		}
		for v := 0; v < w.N(); v++ {
			b := l.CalcBegin(v).Add(shift)
			if b.Less(start) {
				start = b
			}
		}
		tr.Start[n] = start
		tr.Done[n] = done
	}
	return tr, nil
}

// SelfTimedInOrder executes the INORDER semantics greedily for nData data
// sets with the given per-server receive/send orders: every operation
// starts as soon as (a) the previous operation of its server for the same
// data set has finished, (b) the server's last operation for the previous
// data set has finished (in-order constraint), and (c) for communications,
// both endpoint servers have reached it (synchronous rendezvous). No period
// is prescribed; throughput emerges from the synchronization alone.
func SelfTimedInOrder(w *plan.Weighted, orders orchestrate.Orders, nData int) (*Trace, error) {
	if nData < 1 {
		return nil, fmt.Errorf("sim: need at least one data set")
	}
	nOps := w.N() + len(w.Edges())
	calcID := func(v int) int { return v }
	commID := func(e int) int { return w.N() + e }
	dur := make([]rat.Rat, nOps)
	for v := 0; v < w.N(); v++ {
		dur[calcID(v)] = w.Comp(v)
	}
	for e := range w.Edges() {
		dur[commID(e)] = w.Vol(e)
	}

	// Per-op lists of same-data-set predecessors and of wrap predecessors
	// (the last op of each server sequence containing the op).
	samePred := make([][]int, nOps)
	wrapPred := make([][]int, nOps)
	for v := 0; v < w.N(); v++ {
		seq := make([]int, 0, len(orders.In[v])+1+len(orders.Out[v]))
		for _, e := range orders.In[v] {
			seq = append(seq, commID(e))
		}
		seq = append(seq, calcID(v))
		for _, e := range orders.Out[v] {
			seq = append(seq, commID(e))
		}
		for i := 1; i < len(seq); i++ {
			samePred[seq[i]] = append(samePred[seq[i]], seq[i-1])
		}
		wrapPred[seq[0]] = append(wrapPred[seq[0]], seq[len(seq)-1])
	}

	// Evaluation order within one data set: topological on samePred.
	topo, err := topoOrder(nOps, samePred)
	if err != nil {
		return nil, fmt.Errorf("sim: orders deadlock: %w", err)
	}

	end := make([][]rat.Rat, nData) // end[n][op]
	tr := &Trace{
		w:       w,
		CalcEnd: make([][]rat.Rat, nData),
		CommEnd: make([][]rat.Rat, nData),
		Start:   make([]rat.Rat, nData),
		Done:    make([]rat.Rat, nData),
	}
	for n := 0; n < nData; n++ {
		end[n] = make([]rat.Rat, nOps)
		startSet := false
		for _, op := range topo {
			begin := rat.Zero
			for _, p := range samePred[op] {
				begin = rat.Max(begin, end[n][p])
			}
			if n > 0 {
				for _, p := range wrapPred[op] {
					begin = rat.Max(begin, end[n-1][p])
				}
			}
			end[n][op] = begin.Add(dur[op])
			if !startSet || begin.Less(tr.Start[n]) {
				tr.Start[n], startSet = begin, true
			}
		}
		tr.CalcEnd[n] = make([]rat.Rat, w.N())
		for v := 0; v < w.N(); v++ {
			tr.CalcEnd[n][v] = end[n][calcID(v)]
		}
		tr.CommEnd[n] = make([]rat.Rat, len(w.Edges()))
		done := rat.Zero
		for e := range w.Edges() {
			tr.CommEnd[n][e] = end[n][commID(e)]
			done = rat.Max(done, end[n][commID(e)])
		}
		tr.Done[n] = done
	}
	return tr, nil
}

func topoOrder(n int, preds [][]int) ([]int, error) {
	state := make([]int, n) // 0 white, 1 grey, 2 black
	order := make([]int, 0, n)
	var visit func(v int) error
	visit = func(v int) error {
		state[v] = 1
		for _, p := range preds[v] {
			switch state[p] {
			case 1:
				return fmt.Errorf("cycle through operation %d", v)
			case 0:
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		state[v] = 2
		order = append(order, v)
		return nil
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 {
			if err := visit(v); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}
