// Package canon computes the canonical form and stable content hash of a
// filtering-workflow instance — the cache key of the long-running planning
// service (internal/service, internal/plancache).
//
// Two instance files describe the same planning problem whenever they agree
// up to the three representation freedoms of the model:
//
//   - service permutation: the order services are listed in is arbitrary
//     (indices are names' positions, not identity — names are identity);
//   - rational representation: 2/4, 1/2 and "0.5" are the same cost;
//   - precedence representation: only the transitive CLOSURE of the
//     precedence DAG constrains plans (plan.Build checks closure
//     containment), so edge sets with equal closures are the same
//     constraint set.
//
// Canonicalize normalizes all three: services are permuted into a total
// order keyed by (cost, selectivity, name), rationals are reduced to lowest
// terms (package rat maintains this invariant; the hash serializes the
// reduced num/den form), and the precedence DAG is replaced by its
// transitive reduction — the unique minimal representative of its closure
// class on DAGs. The content hash is a SHA-256 over an unambiguous
// serialization of that canonical form, so it is stable across processes,
// platforms and releases of this repository (golden values are pinned by
// canon_test.go; bump the version tag in the serialization if the format
// ever has to change).
package canon

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/rat"
	"repro/internal/workflow"
)

// hashVersion tags the serialized form; bump it if the serialization ever
// changes so stale cache keys cannot alias new ones.
const hashVersion = "filtering-instance/v1"

// Instance is a canonicalized workflow instance: the canonical application,
// the permutation that produced it, and its content hash.
type Instance struct {
	app  *workflow.App
	perm []int // perm[originalIndex] = canonicalIndex
	hash string
}

// Canonicalize computes the canonical form of app. The result shares no
// mutable state with app.
func Canonicalize(app *workflow.App) (*Instance, error) {
	if app == nil {
		return nil, fmt.Errorf("canon: nil application")
	}
	n := app.N()
	if n == 0 {
		return nil, fmt.Errorf("canon: empty application")
	}

	// Canonical service order: by cost, then selectivity, then name. Names
	// are unique (workflow.New enforces it), so the order is total and the
	// permutation deterministic.
	byCanon := make([]int, n) // byCanon[canonicalIndex] = originalIndex
	for i := range byCanon {
		byCanon[i] = i
	}
	sort.SliceStable(byCanon, func(a, b int) bool {
		sa, sb := app.Service(byCanon[a]), app.Service(byCanon[b])
		if c := sa.Cost.Cmp(sb.Cost); c != 0 {
			return c < 0
		}
		if c := sa.Selectivity.Cmp(sb.Selectivity); c != 0 {
			return c < 0
		}
		return sa.Name < sb.Name
	})
	perm := make([]int, n)
	for canonical, original := range byCanon {
		perm[original] = canonical
	}

	services := make([]workflow.Service, n)
	for canonical, original := range byCanon {
		services[canonical] = app.Service(original)
	}

	// Precedence: the transitive reduction of the closure class, relabeled
	// through the permutation and sorted, is the canonical edge set.
	reduced, err := app.Precedence().TransitiveReduction()
	if err != nil {
		return nil, fmt.Errorf("canon: %w", err)
	}
	var edges [][2]int
	for _, e := range reduced.Edges() {
		edges = append(edges, [2]int{perm[e[0]], perm[e[1]]})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})

	canonApp, err := workflow.New(services, edges)
	if err != nil {
		return nil, fmt.Errorf("canon: rebuilding canonical app: %w", err)
	}
	return &Instance{app: canonApp, perm: perm, hash: contentHash(canonApp, edges)}, nil
}

// contentHash serializes the canonical form unambiguously and hashes it.
// Every field is delimited (names are %q-quoted, numbers end in "\n"), so
// no two distinct canonical forms serialize identically.
func contentHash(app *workflow.App, edges [][2]int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nn=%d\n", hashVersion, app.N())
	for i := 0; i < app.N(); i++ {
		s := app.Service(i)
		fmt.Fprintf(h, "s %q %s %s\n", s.Name, ratKey(s.Cost), ratKey(s.Selectivity))
	}
	for _, e := range edges {
		fmt.Fprintf(h, "e %d %d\n", e[0], e[1])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ratKey is the canonical text of a rational: num/den in lowest terms with
// positive denominator, the form rat.Rat.String always emits.
func ratKey(r rat.Rat) string { return r.String() }

// App returns the canonical application. Callers must not modify it.
func (in *Instance) App() *workflow.App { return in.app }

// Hash returns the hex SHA-256 content hash of the canonical form.
func (in *Instance) Hash() string { return in.hash }

// N returns the number of services.
func (in *Instance) N() int { return in.app.N() }

// CanonicalIndex maps an original service index to its canonical index.
func (in *Instance) CanonicalIndex(original int) int { return in.perm[original] }
