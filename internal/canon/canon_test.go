package canon

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
	"repro/internal/workflow"
)

func mustCanon(t *testing.T, app *workflow.App) *Instance {
	t.Helper()
	in, err := Canonicalize(app)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestGoldenHashes pins the content hash of fixed instances. These values
// are the wire-visible cache keys of the planning service: a change here is
// a cache-busting format change and must come with a hashVersion bump.
func TestGoldenHashes(t *testing.T) {
	chain := workflow.MustNew([]workflow.Service{
		{Name: "A", Cost: rat.I(4), Selectivity: rat.New(1, 2)},
		{Name: "B", Cost: rat.I(2), Selectivity: rat.I(2)},
		{Name: "C", Cost: rat.I(1), Selectivity: rat.I(1)},
	}, [][2]int{{0, 1}, {1, 2}})
	uniform := workflow.Uniform(5, rat.I(4), rat.I(1))

	golden := map[string]*workflow.App{
		"2d549eefabad0267b7f5e4e754557aa596f504b880f4db12efe31bd9799f7fb2": chain,
		"acaaca716360898a7fca1c2e095665908ac421ef10b2d092f5a3ab47f47570a7": uniform,
	}
	seen := map[string]bool{}
	for want, app := range golden {
		in := mustCanon(t, app)
		if in.Hash() != want {
			t.Errorf("hash drifted: got %s want %s — a format change must bump hashVersion", in.Hash(), want)
		}
		if seen[in.Hash()] {
			t.Errorf("distinct instances collided on %s", in.Hash())
		}
		seen[in.Hash()] = true
	}
}

// TestHashHexShape sanity-checks the hash format (64 lowercase hex chars).
func TestHashHexShape(t *testing.T) {
	in := mustCanon(t, workflow.Uniform(3, rat.I(1), rat.I(1)))
	if len(in.Hash()) != 64 || strings.ToLower(in.Hash()) != in.Hash() {
		t.Fatalf("unexpected hash shape %q", in.Hash())
	}
}

// TestServicePermutationInvariance: listing the same services in any order
// yields the same canonical app and hash; the permutation maps back.
func TestServicePermutationInvariance(t *testing.T) {
	services := []workflow.Service{
		{Name: "X", Cost: rat.I(3), Selectivity: rat.New(1, 3)},
		{Name: "Y", Cost: rat.I(1), Selectivity: rat.New(1, 2)},
		{Name: "Z", Cost: rat.I(2), Selectivity: rat.I(2)},
	}
	// Precedence X → Z expressed against each listing's indices.
	orig := workflow.MustNew(services, [][2]int{{0, 2}})
	permuted := workflow.MustNew(
		[]workflow.Service{services[2], services[0], services[1]},
		[][2]int{{1, 0}})

	a, b := mustCanon(t, orig), mustCanon(t, permuted)
	if a.Hash() != b.Hash() {
		t.Fatalf("permuted listings hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	for i := 0; i < orig.N(); i++ {
		name := orig.Name(i)
		if got := a.App().Name(a.CanonicalIndex(i)); got != name {
			t.Errorf("CanonicalIndex broke name identity: %s → %s", name, got)
		}
	}
}

// TestRationalNormalization: equal rationals in different representations
// (2/4 vs 1/2 vs decimal 0.5) canonicalize identically.
func TestRationalNormalization(t *testing.T) {
	half1 := workflow.MustNew([]workflow.Service{
		{Name: "S", Cost: rat.New(2, 4), Selectivity: rat.New(6, 4)},
	}, nil)
	half2 := workflow.MustNew([]workflow.Service{
		{Name: "S", Cost: rat.MustParse("0.5"), Selectivity: rat.MustParse("3/2")},
	}, nil)
	if a, b := mustCanon(t, half1), mustCanon(t, half2); a.Hash() != b.Hash() {
		t.Fatalf("equal rationals hash differently: %s vs %s", a.Hash(), b.Hash())
	}
}

// TestPrecedenceClosureInvariance: edge sets with the same transitive
// closure are the same constraint set, so they must hash identically —
// while genuinely different closures must not.
func TestPrecedenceClosureInvariance(t *testing.T) {
	services := []workflow.Service{
		{Name: "A", Cost: rat.I(1), Selectivity: rat.New(1, 2)},
		{Name: "B", Cost: rat.I(2), Selectivity: rat.New(1, 3)},
		{Name: "C", Cost: rat.I(3), Selectivity: rat.New(1, 5)},
	}
	reduced := workflow.MustNew(services, [][2]int{{0, 1}, {1, 2}})
	withTransitive := workflow.MustNew(services, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	none := workflow.MustNew(services, nil)

	a, b, c := mustCanon(t, reduced), mustCanon(t, withTransitive), mustCanon(t, none)
	if a.Hash() != b.Hash() {
		t.Errorf("equal closures hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if a.Hash() == c.Hash() {
		t.Error("dropping all precedence constraints did not change the hash")
	}
}

// TestNamesAreIdentity: renaming a service changes the instance (names key
// drift updates and appear in plans), so the hash must change.
func TestNamesAreIdentity(t *testing.T) {
	a := mustCanon(t, workflow.MustNew([]workflow.Service{
		{Name: "A", Cost: rat.I(1), Selectivity: rat.I(1)},
	}, nil))
	b := mustCanon(t, workflow.MustNew([]workflow.Service{
		{Name: "B", Cost: rat.I(1), Selectivity: rat.I(1)},
	}, nil))
	if a.Hash() == b.Hash() {
		t.Error("renamed service did not change the hash")
	}
}

// TestCostChangesHash: a drifted cost must produce a fresh hash (the drift
// path of the planning service re-registers under the new hash).
func TestCostChangesHash(t *testing.T) {
	base := mustCanon(t, workflow.Uniform(4, rat.I(4), rat.I(1)))
	services := workflow.Uniform(4, rat.I(4), rat.I(1)).Services()
	services[2].Cost = rat.I(5)
	drifted := mustCanon(t, workflow.MustNew(services, nil))
	if base.Hash() == drifted.Hash() {
		t.Error("cost drift did not change the hash")
	}
}

// TestCanonicalAppPreservesOptimum: canonicalization relabels but does not
// change the problem — the optimal objective value is identical.
func TestCanonicalAppPreservesOptimum(t *testing.T) {
	for _, seed := range []int64{7, 8, 9} {
		app := gen.AppWithPrecedence(gen.NewRand(seed), 4, gen.Mixed, 0.3)
		in := mustCanon(t, app)
		opts := solve.Options{Workers: 1}
		orig, err := solve.MinPeriod(app, plan.Overlap, opts)
		if err != nil {
			t.Fatal(err)
		}
		canonSol, err := solve.MinPeriod(in.App(), plan.Overlap, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !orig.Value.Equal(canonSol.Value) {
			t.Errorf("seed %d: optimum changed under canonicalization: %s vs %s",
				seed, orig.Value, canonSol.Value)
		}
	}
}

// TestCanonicalizeIsIdempotent: canonicalizing the canonical app is a
// fixed point.
func TestCanonicalizeIsIdempotent(t *testing.T) {
	app := gen.App(gen.NewRand(11), 6, gen.Filtering)
	once := mustCanon(t, app)
	twice := mustCanon(t, once.App())
	if once.Hash() != twice.Hash() {
		t.Fatalf("canonicalization not idempotent: %s vs %s", once.Hash(), twice.Hash())
	}
	for i := 0; i < twice.N(); i++ {
		if p := twice.CanonicalIndex(i); p != i {
			t.Fatalf("canonical app re-permuted: perm[%d] = %d", i, p)
		}
	}
}

func TestCanonicalizeRejectsDegenerate(t *testing.T) {
	if _, err := Canonicalize(nil); err == nil {
		t.Error("nil app accepted")
	}
	empty := workflow.MustNew(nil, nil)
	if _, err := Canonicalize(empty); err == nil {
		t.Error("empty app accepted")
	}
}
