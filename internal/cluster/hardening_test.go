package cluster

// Regression tests for the router hardening: bounded batch fan-out, no
// truncated-200 forwards (mid-body peer death fails over), concurrent
// capped health probes, and breaker isolation of a flapping peer — plus
// the /metrics surface the smoke test scrapes.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// fakePeer is a replica stub: /v1/stats always healthy, /v1/plan under
// test control.
func fakePeer(t *testing.T, plan http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("POST /v1/plan", plan)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Local == nil {
		local := service.New(service.Config{Workers: 2})
		t.Cleanup(local.Close)
		cfg.Local = local
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestBatchFanoutBounded: a 12-item batch against a single slow peer
// keeps at most BatchFanout forwards in flight — the per-item-goroutine
// regression would show all 12 concurrently.
func TestBatchFanoutBounded(t *testing.T) {
	var cur, max atomic.Int64
	peer := fakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		cur.Add(-1)
		w.Write([]byte(`{"ok":true}`))
	})
	rt := newRouter(t, Config{
		Peers: []string{peer.URL}, HealthInterval: time.Hour,
		BatchFanout: 2, ForwardRetries: -1,
	})
	gw := httptest.NewServer(rt)
	defer gw.Close()

	instance := string(readTestdata(t, "mixed6.json"))
	item := fmt.Sprintf(`{"instance": %s, "model": "overlap"}`, instance)
	items := make([]string, 12)
	for i := range items {
		items[i] = item
	}
	body := fmt.Sprintf(`{"requests": [%s]}`, strings.Join(items, ","))

	resp := post(t, gw.URL+"/v1/batch", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Error string          `json:"error"`
			Plan  json.RawMessage `json:"plan"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 12 {
		t.Fatalf("%d results", len(out.Results))
	}
	for i, res := range out.Results {
		if res.Error != "" || len(res.Plan) == 0 {
			t.Fatalf("item %d failed: %q", i, res.Error)
		}
	}
	if m := max.Load(); m > 2 {
		t.Errorf("%d forwards in flight at once, fan-out bound is 2", m)
	}
}

// TestMidBodyPeerDeathFailsOver: a peer that dies after committing a 200
// and 100 of its promised 4096 body bytes must NOT surface as a truncated
// 200 — the router buffers before committing, counts the read failure
// against the peer, and fails over to the bit-identical local solve.
func TestMidBodyPeerDeathFailsOver(t *testing.T) {
	peer := fakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "4096")
		w.WriteHeader(http.StatusOK)
		w.Write(make([]byte, 100))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	rt := newRouter(t, Config{
		Peers: []string{peer.URL}, HealthInterval: time.Hour, ForwardRetries: -1,
	})
	gw := httptest.NewServer(rt)
	defer gw.Close()

	instance := readTestdata(t, "mixed6.json")
	resp := post(t, gw.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance))
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading routed response: %v — the truncation leaked through", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if by := resp.Header.Get("X-Filterd-Served-By"); by != "local-failover" {
		t.Fatalf("served by %q, want local-failover", by)
	}
	var planned planWire
	if err := json.Unmarshal(payload, &planned); err != nil {
		t.Fatalf("failover body is not a plan answer: %v (%s)", err, payload)
	}
	if planned.Hash == "" || planned.Outcome == "" {
		t.Errorf("incomplete failover answer: %+v", planned)
	}
	if st := rt.Stats(); st.Failovers != 1 {
		t.Errorf("failovers %d, want 1", st.Failovers)
	}
}

// TestHealthProbesConcurrentAndCapped: a health pass probes its peers
// concurrently (max in-flight probes at one slow endpoint exceeds 1) and
// Close aborts in-flight probes instead of waiting them out.
func TestHealthProbesConcurrentAndCapped(t *testing.T) {
	var cur, max atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		defer cur.Add(-1)
		select {
		case <-time.After(150 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		w.Write([]byte("{}"))
	})
	slow := httptest.NewServer(mux)
	defer slow.Close()

	// Four peer slots at the same slow endpoint: a serial health pass
	// never has two probes in flight, a concurrent one does immediately.
	local := service.New(service.Config{Workers: 1})
	defer local.Close()
	rt, err := New(Config{
		Peers:          []string{slow.URL, slow.URL, slow.URL, slow.URL},
		Local:          local,
		HealthInterval: 100 * time.Millisecond,
		ProbeTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for max.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m := max.Load(); m < 2 {
		rt.Close()
		t.Fatalf("max concurrent probes %d, want >= 2 — probing is serial", m)
	}

	// Close must cancel probes still sleeping at the slow peer.
	start := time.Now()
	rt.Close()
	if d := time.Since(start); d > time.Second {
		t.Errorf("Close took %v waiting out in-flight probes", d)
	}
}

// TestBreakerIsolatesFlappingPeer: after K consecutive forward failures
// the peer's breaker opens, requests stop touching the peer (its hit
// count freezes) and every answer still arrives via local failover. The
// router /metrics page reports the open breaker — the signal the cluster
// smoke test scrapes.
func TestBreakerIsolatesFlappingPeer(t *testing.T) {
	var hits atomic.Int64
	peer := fakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		panic(http.ErrAbortHandler)
	})
	rt := newRouter(t, Config{
		Peers: []string{peer.URL}, HealthInterval: time.Hour,
		BreakerThreshold: 3, ForwardRetries: 2, RetryBackoff: time.Millisecond,
	})
	gw := httptest.NewServer(rt)
	defer gw.Close()

	instance := readTestdata(t, "mixed6.json")
	body := fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance)

	// One request = up to 3 attempts = the whole failure budget.
	resp := post(t, gw.URL+"/v1/plan", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if by := resp.Header.Get("X-Filterd-Served-By"); by != "local-failover" {
		t.Fatalf("served by %q, want local-failover", by)
	}
	frozen := hits.Load()
	if frozen < 3 {
		t.Fatalf("peer saw %d attempts, want the full retry budget of 3", frozen)
	}

	for i := 0; i < 4; i++ {
		resp := post(t, gw.URL+"/v1/plan", body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after open: status %d", i, resp.StatusCode)
		}
		if by := resp.Header.Get("X-Filterd-Served-By"); by != "local-failover" {
			t.Fatalf("request %d served by %q, want local-failover", i, by)
		}
	}
	if h := hits.Load(); h != frozen {
		t.Errorf("open breaker leaked %d more attempts to the peer", h-frozen)
	}
	if st := rt.Stats(); st.PeersUp != 0 || st.Retries < 2 {
		t.Errorf("stats after open: PeersUp %d Retries %d", st.PeersUp, st.Retries)
	}

	mresp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	out, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{
		fmt.Sprintf(`filterd_router_breaker_state{peer="%s"} 1`, peer.URL),
		fmt.Sprintf(`filterd_router_breaker_opens_total{peer="%s"} 1`, peer.URL),
		fmt.Sprintf(`filterd_router_failovers_total{peer="%s"} 5`, peer.URL),
		"filterd_router_peers_up 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// JSON stats mirror the breaker for humans.
	sresp, err := http.Get(gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st struct {
		Peers []struct {
			Up      bool   `json:"up"`
			Breaker string `json:"breaker"`
		} `json:"peers"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Peers) != 1 || st.Peers[0].Up || st.Peers[0].Breaker != "open" {
		t.Errorf("stats peers %+v, want one open breaker", st.Peers)
	}
}

// TestRouterMetricsEndpoint: the healthy-path families — per-peer forward
// counters and closed breakers — appear on the router's /metrics.
func TestRouterMetricsEndpoint(t *testing.T) {
	rt, gw, _ := newCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")
	resp := post(t, gw.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	owner := resp.Header.Get("X-Filterd-Served-By")
	if !strings.HasPrefix(owner, "http") {
		t.Fatalf("plan served by %q, want a peer", owner)
	}

	mresp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text format", ct)
	}
	out, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{
		fmt.Sprintf(`filterd_router_forwards_total{peer="%s"} 1`, owner),
		fmt.Sprintf(`filterd_router_breaker_state{peer="%s"} 0`, owner),
		"filterd_router_peers_up 2",
		"filterd_router_forward_seconds_count 1",
		"# TYPE filterd_router_forward_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if st := rt.Stats(); st.Forwarded != 1 {
		t.Errorf("forwarded %d, want 1", st.Forwarded)
	}
}
