package cluster

// The replication chaos suites (DESIGN.md §4): a 3-replica R=2 cluster
// driven through a deterministic fault injector, killing each replica in
// turn mid-traffic. The asserted properties — zero client-visible 5xx,
// every answer bit-identical to a fault-free standalone replica, the
// under-replication gauge rising on the kill and healing on the restore
// — hold under every goroutine interleaving, which is why the suite is
// race-enabled.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
)

// newChaosCluster boots n replicas and a router whose forwards AND
// health probes ride the injector's transport, so SetDown kills a
// replica end to end without tearing down its listener.
func newChaosCluster(t *testing.T, n, r int, in *faults.Injector) (*Router, *httptest.Server, []*replica) {
	t.Helper()
	replicas := make([]*replica, n)
	peers := make([]string, n)
	for i := range replicas {
		replicas[i] = newReplica(t)
		peers[i] = replicas[i].ts.URL
	}
	local := service.New(service.Config{Workers: 2})
	t.Cleanup(local.Close)
	rt, err := New(Config{
		Peers:           peers,
		Local:           local,
		Replicas:        r,
		HealthInterval:  100 * time.Millisecond,
		BreakerCooldown: 300 * time.Millisecond,
		Client:          &http.Client{Transport: in.RoundTripper(nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	gw := httptest.NewServer(rt)
	t.Cleanup(gw.Close)
	return rt, gw, replicas
}

// TestChaosKillAnyReplica is the acceptance suite: under scheduled wire
// faults, kill each replica in turn mid-traffic and require zero 5xx
// and bit-identical answers throughout, with the under-replication
// gauge observing the loss and the heal.
func TestChaosKillAnyReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not short")
	}
	instances := []string{"mixed6.json", "webquery8.json"}
	bodies := make([]string, len(instances))
	for i, name := range instances {
		bodies[i] = fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`,
			readTestdata(t, name))
	}

	// The fault-free reference answers, from a standalone replica. The
	// comparison covers the deterministic plan content — hash, objective
	// value, schedule — not the serve provenance (cached/outcome), which
	// legitimately varies between a cold owner and a warm one.
	standalone := newReplica(t)
	want := make([]planWire, len(bodies))
	for i, body := range bodies {
		resp := post(t, standalone.ts.URL+"/v1/plan", body)
		err := json.NewDecoder(resp.Body).Decode(&want[i])
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("reference solve %d: status %d (%v)", i, resp.StatusCode, err)
		}
	}

	for victim := 0; victim < 3; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("victim-%d", victim), func(t *testing.T) {
			// Moderate scheduled noise on every wire, same seed per
			// subtest: drops, injected 502s, torn bodies, small delays.
			in := faults.New(faults.Config{
				Seed: 20090822, Drop: 12, Err: 15, Truncate: 18,
				Delay: 6, MaxDelay: 2 * time.Millisecond,
			})
			rt, gw, replicas := newChaosCluster(t, 3, 2, in)

			hit := func(round int) {
				t.Helper()
				ref := want[round%len(bodies)]
				resp := post(t, gw.URL+"/v1/plan", bodies[round%len(bodies)])
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("round %d: reading response: %v", round, err)
				}
				if resp.StatusCode >= http.StatusInternalServerError {
					t.Fatalf("round %d: client saw a %d: %s", round, resp.StatusCode, raw)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, raw)
				}
				var got planWire
				if err := json.Unmarshal(raw, &got); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if got.Hash != ref.Hash || !got.Value.Equal(ref.Value) {
					t.Fatalf("round %d: answer %s/%s differs from the reference %s/%s",
						round, got.Hash, got.Value, ref.Hash, ref.Value)
				}
				var a, b any
				json.Unmarshal(got.Schedule, &a)
				json.Unmarshal(ref.Schedule, &b)
				aj, _ := json.Marshal(a)
				bj, _ := json.Marshal(b)
				if string(aj) != string(bj) {
					t.Fatalf("round %d: schedule differs from the reference", round)
				}
			}

			round := 0
			for ; round < 8; round++ {
				hit(round)
			}

			// Kill the victim mid-traffic: forwards and probes both drop.
			in.SetDown(replicas[victim].ts.URL, true)
			for end := round + 12; round < end; round++ {
				hit(round)
			}
			// The victim's breaker has opened by now (forwards and probes
			// both failed): some shards run below R.
			deadline := time.Now().Add(5 * time.Second)
			for rt.Stats().UnderReplicated == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("under-replication never observed: %+v", rt.Stats())
				}
				hit(round)
				round++
			}

			// Restore the victim: the health loop probes it back to
			// available and the cluster re-heals to full replication.
			in.SetDown(replicas[victim].ts.URL, false)
			for rt.Stats().UnderReplicated != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("cluster did not re-heal: %+v", rt.Stats())
				}
				time.Sleep(50 * time.Millisecond)
			}
			for end := round + 8; round < end; round++ {
				hit(round)
			}

			if st := rt.Stats(); st.PeersUp != 3 {
				t.Errorf("after heal: %d peers up, want 3 (%+v)", st.PeersUp, st)
			}
		})
	}
}
