package cluster

// The router's Prometheus families (DESIGN.md §5), served at GET /metrics
// alongside the JSON /v1/stats. Per-peer counters are labeled by the
// peer's base URL; breaker positions are mirrored into gauges at scrape
// time so the breaker itself stays the single source of truth.

// initMetrics registers the router families into rt.metrics. Called once
// from New, before the health loop starts.
func (rt *Router) initMetrics() {
	m := rt.metrics
	rt.mForwards = m.CounterVec("filterd_router_forwards_total",
		"Requests served by their owning replica, by peer.", "peer")
	rt.mFailovers = m.CounterVec("filterd_router_failovers_total",
		"Forwards that fell back to the local deterministic solve, by peer.", "peer")
	rt.mRetries = m.CounterVec("filterd_router_retries_total",
		"Forward re-attempts after a transient failure, by peer.", "peer")
	rt.mBreakerState = m.GaugeVec("filterd_router_breaker_state",
		"Peer breaker position: 0 closed, 1 open, 2 half-open.", "peer")
	rt.mBreakerOpens = m.CounterVec("filterd_router_breaker_opens_total",
		"Transitions of the peer's breaker into Open.", "peer")
	rt.mForwardSeconds = m.Histogram("filterd_router_forward_seconds",
		"Latency of committed forwards in seconds.", nil)

	m.CounterFunc("filterd_router_local_served_total",
		"Requests answered by the embedded service (owned locally, unroutable, or failovers).",
		func() float64 { return float64(rt.localServed.Load()) })
	m.GaugeFunc("filterd_router_peers",
		"Configured replicas.", func() float64 { return float64(len(rt.peers)) })
	m.GaugeFunc("filterd_router_peers_up",
		"Replicas whose breaker is not open.",
		func() float64 { return float64(rt.Stats().PeersUp) })
	m.GaugeFunc("filterd_router_shards",
		"Shard count 2^ShardBits.", func() float64 { return float64(int(1) << rt.cfg.ShardBits) })

	m.OnScrape(func() {
		for _, p := range rt.peers {
			rt.mBreakerState.With(p.url).Set(float64(p.breaker.State()))
			rt.mBreakerOpens.With(p.url).Set(p.breaker.Opens())
		}
	})
}
