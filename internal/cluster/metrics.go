package cluster

// The router's Prometheus families (DESIGN.md §5), served at GET /metrics
// alongside the JSON /v1/stats. Per-peer counters are labeled by the
// peer's base URL; breaker positions are mirrored into gauges at scrape
// time so the breaker itself stays the single source of truth.

import "strconv"

// initMetrics registers the router families into rt.metrics. Called once
// from New, before the health loop starts.
func (rt *Router) initMetrics() {
	m := rt.metrics
	rt.mForwards = m.CounterVec("filterd_router_forwards_total",
		"Requests served by their owning replica, by peer.", "peer")
	rt.mFailovers = m.CounterVec("filterd_router_failovers_total",
		"Forwards that fell back to the local deterministic solve, by peer.", "peer")
	rt.mRetries = m.CounterVec("filterd_router_retries_total",
		"Forward re-attempts after a transient failure, by peer.", "peer")
	rt.mBreakerState = m.GaugeVec("filterd_router_breaker_state",
		"Peer breaker position: 0 closed, 1 open, 2 half-open.", "peer")
	rt.mBreakerOpens = m.CounterVec("filterd_router_breaker_opens_total",
		"Transitions of the peer's breaker into Open.", "peer")
	rt.mForwardSeconds = m.Histogram("filterd_router_forward_seconds",
		"Latency of committed forwards in seconds.", nil)

	rt.mFanoutWrites = m.CounterVec("filterd_router_fanout_writes_total",
		"Secondary write copies fanned to co-owners, by peer.", "peer")
	rt.mShardReplicas = m.GaugeVec("filterd_router_shards_by_replication",
		"Shards whose currently available owner count equals the factor label.", "factor")

	m.CounterFunc("filterd_router_local_served_total",
		"Requests answered by the embedded service (owned locally, unroutable, or failovers).",
		func() float64 { return float64(rt.localServed.Load()) })
	m.CounterFunc("filterd_router_replica_failovers_total",
		"Reads served by a non-preferred owner after an earlier owner failed.",
		func() float64 { return float64(rt.replicaFailovers.Load()) })
	m.CounterFunc("filterd_router_fanout_errors_total",
		"Failed secondary write copies (tolerated; gossip converges the owner).",
		func() float64 { return float64(rt.fanoutErrors.Load()) })
	m.GaugeFunc("filterd_router_peers",
		"Configured replicas.", func() float64 { return float64(len(rt.peers)) })
	m.GaugeFunc("filterd_router_peers_up",
		"Replicas whose breaker is not open.",
		func() float64 { return float64(rt.Stats().PeersUp) })
	m.GaugeFunc("filterd_router_shards",
		"Shard count 2^ShardBits.", func() float64 { return float64(int(1) << rt.cfg.ShardBits) })
	m.GaugeFunc("filterd_router_replicas",
		"Configured owners per shard (R).", func() float64 { return float64(rt.cfg.Replicas) })
	m.GaugeFunc("filterd_router_underreplicated_shards",
		"Shards with fewer than R owners currently available.",
		func() float64 { return float64(rt.Stats().UnderReplicated) })

	m.OnScrape(func() {
		for _, p := range rt.peers {
			rt.mBreakerState.With(p.url).Set(float64(p.breaker.State()))
			rt.mBreakerOpens.With(p.url).Set(p.breaker.Opens())
		}
		// Per-shard replication factor, summarized as shard counts per
		// available-owner count (owner availability depends only on
		// shard mod len(peers), so the residues cover every shard).
		shards := 1 << rt.cfg.ShardBits
		byFactor := make(map[int]int, rt.cfg.Replicas+1)
		for shard := 0; shard < shards; shard++ {
			up := 0
			for _, p := range rt.ownersOf(shard) {
				if p.available() {
					up++
				}
			}
			byFactor[up]++
		}
		for f := 0; f <= rt.cfg.Replicas; f++ {
			rt.mShardReplicas.With(strconv.Itoa(f)).Set(float64(byFactor[f]))
		}
	})
}
