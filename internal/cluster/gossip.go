package cluster

// The anti-entropy loop between co-owners (DESIGN.md §5): each replica
// runs a Gossip agent that periodically exchanges /v1/sync digests with
// its peers and merges the difference, so canonical-instance
// registrations and PATCHed drift state spread to every owner without a
// coordinator, and a restarted or newly joined owner streams the store
// entries it missed instead of cold-solving them.
//
// One exchange with one peer is push-pull in at most two round trips:
//
//  1. POST the local digest (hashes + cache keys). The peer imports
//     nothing yet, answers with the items the digest lacks (bounded) and
//     a "want" list of what the peer itself is missing.
//  2. Import the answered items; if the peer wanted anything, POST a
//     second exchange carrying those items (plus the digest again, so the
//     peer neither re-requests nor echoes them).
//
// Determinism makes the merge conflict-free — a hash names one instance,
// a key one solution — so convergence needs no versioning: after one
// completed round between two live replicas their registries and caches
// agree (the suites pin this). Transfers larger than the per-exchange
// bound spread across successive rounds.
//
// Failure discipline mirrors the router's forwarding path: one
// resilience.Breaker per peer, fed by exchange outcomes, gates each
// attempt — a dead peer costs nothing after its breaker opens, and the
// breaker's cooldown IS the backoff of the loop. Every import is
// verified by the service (hash recomputation, store-codec decode), so a
// faulty peer can waste a round but never corrupt local state.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/service"
)

// GossipConfig tunes a Gossip agent. Peers and Local are required.
type GossipConfig struct {
	// Peers are the co-replica base URLs to exchange with (this
	// replica's own URL excluded).
	Peers []string
	// Local is the replica's own service, the state being synchronized.
	Local *service.Server
	// Interval is the anti-entropy period (default 2s).
	Interval time.Duration
	// Timeout bounds one exchange round trip (default 10s).
	Timeout time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-peer breakers
	// (defaults from internal/resilience: 3 failures, 5s cooldown). The
	// cooldown doubles as the loop's backoff against a dead peer.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client performs the exchanges (default http.Client).
	Client *http.Client
	// Metrics receives the gossip families (default: a private
	// registry). cmd/filterd shares the service's registry.
	Metrics *metrics.Registry
	// Logger receives the agent's structured log lines. Nil discards.
	Logger *slog.Logger
}

// GossipStats snapshots the agent's counters.
type GossipStats struct {
	// Rounds counts completed anti-entropy passes over all peers;
	// Exchanges the individual peer round trips that succeeded; Failures
	// the round trips that did not; Skipped the attempts a breaker
	// rejected. Imported totals items merged from exchange answers,
	// Pushed the items sent on peers' want lists.
	Rounds    int64
	Exchanges int64
	Failures  int64
	Skipped   int64
	Imported  int64
	Pushed    int64
}

// gossipPeer is one co-replica and its breaker.
type gossipPeer struct {
	url     string
	breaker *resilience.Breaker
}

// Gossip is the anti-entropy agent. Create with NewGossip, start its
// loop with Start, release with Close. RunOnce drives one deterministic
// round by hand (the suites and the smoke tests use it via the loop's
// first immediate pass).
type Gossip struct {
	cfg    GossipConfig
	peers  []*gossipPeer
	client *http.Client
	logger *slog.Logger

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	rounds    atomic.Int64
	exchanges atomic.Int64
	failures  atomic.Int64
	skipped   atomic.Int64
	imported  atomic.Int64
	pushed    atomic.Int64
}

// NewGossip validates the configuration and returns an idle agent —
// Start launches the loop, or call RunOnce directly.
func NewGossip(cfg GossipConfig) (*Gossip, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: gossip has no peers")
	}
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: gossip has no local service")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	g := &Gossip{cfg: cfg, client: cfg.Client, logger: logger, stop: make(chan struct{})}
	for _, u := range cfg.Peers {
		peerURL := u
		g.peers = append(g.peers, &gossipPeer{
			url: u,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
				OnTransition: func(from, to resilience.State) {
					level := slog.LevelInfo
					if to == resilience.Open {
						level = slog.LevelWarn
					}
					g.logger.Log(context.Background(), level,
						"gossip peer breaker transition",
						"peer", peerURL, "from", from.String(), "to", to.String())
				},
			}),
		})
	}
	g.initMetrics()
	return g, nil
}

// initMetrics registers the gossip families (names register once per
// registry — one agent per process per registry).
func (g *Gossip) initMetrics() {
	m := g.cfg.Metrics
	m.CounterFunc("filterd_gossip_rounds_total",
		"Completed anti-entropy passes over all gossip peers.",
		func() float64 { return float64(g.rounds.Load()) })
	m.CounterFunc("filterd_gossip_exchanges_total",
		"Successful peer sync round trips.",
		func() float64 { return float64(g.exchanges.Load()) })
	m.CounterFunc("filterd_gossip_failures_total",
		"Failed peer sync round trips.",
		func() float64 { return float64(g.failures.Load()) })
	m.CounterFunc("filterd_gossip_skipped_total",
		"Sync attempts rejected by an open peer breaker (backoff).",
		func() float64 { return float64(g.skipped.Load()) })
	m.CounterFunc("filterd_gossip_imported_total",
		"Items merged from peers' exchange answers.",
		func() float64 { return float64(g.imported.Load()) })
	m.CounterFunc("filterd_gossip_pushed_total",
		"Items pushed to peers on their want lists.",
		func() float64 { return float64(g.pushed.Load()) })
}

// Start launches the anti-entropy loop: an immediate first round, then
// one per Interval until Close.
func (g *Gossip) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.RunOnce(context.Background())
		ticker := time.NewTicker(g.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				g.RunOnce(context.Background())
			}
		}
	}()
}

// Close stops the loop. In-flight exchanges finish on their own timeout.
func (g *Gossip) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Stats snapshots the agent's counters.
func (g *Gossip) Stats() GossipStats {
	return GossipStats{
		Rounds:    g.rounds.Load(),
		Exchanges: g.exchanges.Load(),
		Failures:  g.failures.Load(),
		Skipped:   g.skipped.Load(),
		Imported:  g.imported.Load(),
		Pushed:    g.pushed.Load(),
	}
}

// RunOnce executes one anti-entropy round: one push-pull exchange with
// every peer, sequentially (rounds are cheap; sequencing keeps the
// suites deterministic). Safe to call concurrently with the loop —
// imports are idempotent set unions.
func (g *Gossip) RunOnce(ctx context.Context) {
	for _, p := range g.peers {
		if !p.breaker.Allow() {
			g.skipped.Add(1)
			continue
		}
		if err := g.exchange(ctx, p); err != nil {
			p.breaker.Failure()
			g.failures.Add(1)
			g.logger.Info("gossip exchange failed", "peer", p.url, "err", err)
			continue
		}
		p.breaker.Success()
		g.exchanges.Add(1)
	}
	g.rounds.Add(1)
}

// exchange runs the (at most) two round trips of one peer sync.
func (g *Gossip) exchange(ctx context.Context, p *gossipPeer) error {
	local := g.cfg.Local
	digest := local.SyncDigest()
	resp, err := g.post(ctx, p, service.SyncRequest{Digest: digest})
	if err != nil {
		return err
	}
	g.importAnswer(p, resp)
	if len(resp.Want.Hashes) == 0 && len(resp.Want.Keys) == 0 {
		return nil
	}
	// The peer named what it misses: push it, with the refreshed digest
	// so the answer neither echoes these items back nor re-requests them.
	push := service.SyncRequest{
		Digest:    local.SyncDigest(),
		Instances: local.ExportInstances(resp.Want.Hashes),
		Entries:   local.ExportEntries(resp.Want.Keys),
	}
	if len(push.Instances) == 0 && len(push.Entries) == 0 {
		return nil
	}
	g.pushed.Add(int64(len(push.Instances) + len(push.Entries)))
	resp, err = g.post(ctx, p, push)
	if err != nil {
		return err
	}
	g.importAnswer(p, resp)
	return nil
}

// importAnswer merges the items a peer answered with.
func (g *Gossip) importAnswer(p *gossipPeer, resp *service.SyncResponse) {
	for _, si := range resp.Instances {
		if err := g.cfg.Local.ImportInstance(si); err != nil {
			g.logger.Warn("gossip import rejected", "peer", p.url, "err", err)
			continue
		}
		g.imported.Add(1)
	}
	for _, e := range resp.Entries {
		if err := g.cfg.Local.ImportEntry(e); err != nil {
			g.logger.Warn("gossip import rejected", "peer", p.url, "err", err)
			continue
		}
		g.imported.Add(1)
	}
}

// post performs one POST /v1/sync round trip.
func (g *Gossip) post(ctx context.Context, p *gossipPeer, req service.SyncRequest) (*service.SyncResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding sync request: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/sync", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := g.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, maxRespBytes+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading sync response: %w", err)
	}
	if len(data) > maxRespBytes {
		return nil, fmt.Errorf("cluster: sync response exceeds %d bytes", maxRespBytes)
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s answered %d to sync", p.url, hresp.StatusCode)
	}
	out := new(service.SyncResponse)
	if err := json.Unmarshal(data, out); err != nil {
		return nil, fmt.Errorf("cluster: decoding sync response: %w", err)
	}
	return out, nil
}
