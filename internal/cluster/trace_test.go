package cluster

// Request-ID tracing across the cluster: one ID at the router and the
// owning replica, preserved across failover and SSE proxying, and the
// /v1/explain surface reachable through the router (including the
// failover source annotation).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// newTracedCluster boots n replicas and a router, all with span rings, so
// the tests can observe which spans each layer recorded.
func newTracedCluster(t *testing.T, n int) (*httptest.Server, []*replica, []*obs.Tracer, *obs.Tracer) {
	t.Helper()
	replicas := make([]*replica, n)
	tracers := make([]*obs.Tracer, n)
	peers := make([]string, n)
	for i := range replicas {
		tracers[i] = obs.NewTracer(64)
		s := service.New(service.Config{Workers: 2, Tracer: tracers[i]})
		ts := httptest.NewServer(service.Handler(s))
		t.Cleanup(func() { ts.Close(); s.Close() })
		replicas[i] = &replica{srv: s, ts: ts}
		peers[i] = ts.URL
	}
	local := service.New(service.Config{Workers: 2})
	t.Cleanup(local.Close)
	routerTracer := obs.NewTracer(64)
	rt, err := New(Config{
		Peers: peers,
		Local: local,
		// R=1 keeps a single owner per shard, so killing it exercises the
		// local-failover span path these tests pin down.
		Replicas:       1,
		HealthInterval: 100 * time.Millisecond,
		Tracer:         routerTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	gw := httptest.NewServer(rt)
	t.Cleanup(gw.Close)
	return gw, replicas, tracers, routerTracer
}

// postWithID POSTs raw JSON with a client-chosen request ID.
func postWithID(t *testing.T, url, body, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderRequestID, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// findSpan scans a tracer's ring for a span with the given request ID.
func findSpan(tr *obs.Tracer, id string) (obs.SpanView, bool) {
	for _, v := range tr.Snapshot() {
		if v.ID == id {
			return v, true
		}
	}
	return obs.SpanView{}, false
}

// TestRequestIDSharedByRouterAndOwner pins the propagation contract: the
// client's ID appears on the routed response, in the router's span (with
// the routing verdict), and in exactly one replica's span — the owner's.
func TestRequestIDSharedByRouterAndOwner(t *testing.T) {
	gw, replicas, tracers, routerTracer := newTracedCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")
	body := fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance)
	const id = "trace-shared-1"

	resp := postWithID(t, gw.URL+"/v1/plan", body, id)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != id {
		t.Fatalf("routed response ID %q, want %q", got, id)
	}
	owner := resp.Header.Get("X-Filterd-Shard-Owner")

	rsp, ok := findSpan(routerTracer, id)
	if !ok {
		t.Fatal("router recorded no span for the request")
	}
	if rsp.Shard < 0 || rsp.Owner != owner || rsp.ServedBy != owner {
		t.Errorf("router span shard/owner/served_by = %d/%q/%q, want owner %q",
			rsp.Shard, rsp.Owner, rsp.ServedBy, owner)
	}

	holders := 0
	for i, tr := range tracers {
		v, ok := findSpan(tr, id)
		if !ok {
			continue
		}
		holders++
		if replicas[i].ts.URL != owner {
			t.Errorf("replica %d recorded the span but is not the owner %s", i, owner)
		}
		if v.Route != "POST /v1/plan" {
			t.Errorf("owner span route %q", v.Route)
		}
		if v.Outcome == "" || v.Source == "" {
			t.Errorf("owner span missing provenance: outcome=%q source=%q", v.Outcome, v.Source)
		}
	}
	if holders != 1 {
		t.Fatalf("%d replicas recorded the request ID, want exactly the owner", holders)
	}
}

// TestRequestIDPreservedAcrossFailover kills the owner and checks the
// failover response still echoes the client's ID, and that /v1/explain
// (itself failing over) reports source "failover" with that ID.
func TestRequestIDPreservedAcrossFailover(t *testing.T) {
	gw, replicas, _, routerTracer := newTracedCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")
	body := fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance)

	resp := postWithID(t, gw.URL+"/v1/plan", body, "failover-pre")
	var planned planWire
	if err := json.NewDecoder(resp.Body).Decode(&planned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	owner := resp.Header.Get("X-Filterd-Shard-Owner")
	for _, rep := range replicas {
		if rep.ts.URL == owner {
			rep.ts.CloseClientConnections()
			rep.ts.Close()
		}
	}

	const id = "failover-post"
	resp2 := postWithID(t, gw.URL+"/v1/plan", body, id)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("failover status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(obs.HeaderRequestID); got != id {
		t.Fatalf("failover response ID %q, want %q", got, id)
	}
	if by := resp2.Header.Get("X-Filterd-Served-By"); by != "local-failover" {
		t.Fatalf("served by %q", by)
	}
	if v, ok := findSpan(routerTracer, id); !ok || v.ServedBy != "local-failover" {
		t.Errorf("router failover span served_by = %q (found %v)", v.ServedBy, ok)
	}

	// The explain GET also fails over to the router's local service, whose
	// record of the failover serve must say source "failover".
	eresp, err := http.Get(gw.URL + "/v1/explain/" + planned.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("failover explain status %d", eresp.StatusCode)
	}
	var doc struct {
		Source    string `json:"source"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(eresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Source != "failover" {
		t.Errorf("explain source %q, want failover", doc.Source)
	}
	if doc.RequestID != id {
		t.Errorf("explain request_id %q, want %q", doc.RequestID, id)
	}
}

// TestRequestIDOnProxiedSubscribe pins the SSE path: the stream commits
// its headers before any event, and the ID must already be on them.
func TestRequestIDOnProxiedSubscribe(t *testing.T) {
	gw, _, _, _ := newTracedCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")

	resp := postWithID(t, gw.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance), "sse-plan")
	var planned planWire
	if err := json.NewDecoder(resp.Body).Decode(&planned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodGet, gw.URL+"/v1/subscribe/"+planned.Hash, nil)
	if err != nil {
		t.Fatal(err)
	}
	const id = "sse-stream-7"
	req.Header.Set(obs.HeaderRequestID, id)
	sub, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", sub.StatusCode)
	}
	if got := sub.Header.Get(obs.HeaderRequestID); got != id {
		t.Fatalf("SSE response ID %q, want %q", got, id)
	}
	r := bufio.NewReader(sub.Body)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("stream preamble %q, %v", line, err)
	}
}

// TestExplainRoutedToOwner checks GET /v1/explain/{hash} rides the same
// hash routing as every per-instance read: the owner that solved the plan
// answers with its provenance record.
func TestExplainRoutedToOwner(t *testing.T) {
	gw, _, _, _ := newTracedCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")

	resp := post(t, gw.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance))
	var planned planWire
	if err := json.NewDecoder(resp.Body).Decode(&planned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	owner := resp.Header.Get("X-Filterd-Shard-Owner")

	eresp, err := http.Get(gw.URL + "/v1/explain/" + planned.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("routed explain status %d", eresp.StatusCode)
	}
	if by := eresp.Header.Get("X-Filterd-Served-By"); by != owner {
		t.Errorf("explain served by %q, want the owner %q", by, owner)
	}
	var doc struct {
		Hash    string `json:"hash"`
		Source  string `json:"source"`
		Outcome string `json:"outcome"`
	}
	if err := json.NewDecoder(eresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Hash != planned.Hash || doc.Source != "solve" || doc.Outcome != "miss" {
		t.Errorf("routed explain %+v", doc)
	}
}

// TestRouterHealthzAndDebug covers the router's own observability
// endpoints: /v1/healthz answers without peer I/O, /debug/requests serves
// the router's ring, and /v1/stats carries the build identity.
func TestRouterHealthzAndDebug(t *testing.T) {
	gw, _, _, _ := newTracedCluster(t, 2)

	hresp, err := http.Get(gw.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.Role != "router" || hz.Version == "" {
		t.Fatalf("healthz %d %+v", hresp.StatusCode, hz)
	}

	dresp, err := http.Get(gw.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if !doc.Enabled {
		t.Fatal("router tracer not enabled")
	}

	sresp, err := http.Get(gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Role    string `json:"role"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Role != "router" || st.Version == "" {
		t.Fatalf("router stats %+v", st)
	}
}
