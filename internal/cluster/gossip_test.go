package cluster

// The anti-entropy agent's convergence and backoff properties: one
// RunOnce converges two replicas' registries and caches (including
// PATCHed drift state — the acceptance property that a write to one
// surviving owner is visible at every owner after one gossip round),
// and a dead peer costs one breaker-opening failure, then nothing.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// statsDoc is the slice of /v1/stats the gossip tests read.
type statsDoc struct {
	Registered   int   `json:"registered_instances"`
	SyncInstance int64 `json:"sync_instances"`
	SyncEntries  int64 `json:"sync_entries"`
}

func replicaStats(t *testing.T, rep *replica) statsDoc {
	t.Helper()
	resp, err := http.Get(rep.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestGossipConvergesReplicas: two replicas solve different instances;
// one RunOnce from a single agent converges both directions (push-pull),
// and a second round moves nothing.
func TestGossipConvergesReplicas(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	for rep, name := range map[*replica]string{a: "mixed6.json", b: "webquery8.json"} {
		resp := post(t, rep.ts.URL+"/v1/plan",
			fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, readTestdata(t, name)))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status %d", resp.StatusCode)
		}
	}

	g, err := NewGossip(GossipConfig{Peers: []string{b.ts.URL}, Local: a.srv})
	if err != nil {
		t.Fatal(err)
	}
	g.RunOnce(context.Background())

	da, db := a.srv.SyncDigest(), b.srv.SyncDigest()
	if len(da.Hashes) != 2 || len(da.Keys) != 2 {
		t.Fatalf("a digest %+v, want 2 hashes / 2 keys", da)
	}
	if len(db.Hashes) != 2 || len(db.Keys) != 2 {
		t.Fatalf("b digest %+v, want 2 hashes / 2 keys", db)
	}
	if replicaStats(t, b).Registered != 2 {
		t.Error("b /v1/stats does not report both instances registered")
	}

	st := g.Stats()
	if st.Rounds != 1 || st.Exchanges != 1 || st.Failures != 0 {
		t.Errorf("gossip stats %+v", st)
	}
	if st.Imported == 0 || st.Pushed == 0 {
		t.Errorf("push-pull moved nothing: %+v", st)
	}

	// Converged replicas exchange empty rounds.
	before := b.srv.SyncStats()
	g.RunOnce(context.Background())
	after := b.srv.SyncStats()
	if after.AcceptedInstances != before.AcceptedInstances || after.AcceptedEntries != before.AcceptedEntries {
		t.Errorf("second round imported again: %+v vs %+v", before, after)
	}
}

// TestGossipSpreadsPatchedDrift pins the acceptance property: a PATCH
// applied at one owner is visible at the co-owner after one gossip round
// — the new instance is PATCHable there without it ever seeing the
// original write.
func TestGossipSpreadsPatchedDrift(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	instance := readTestdata(t, "mixed6.json")
	resp := post(t, a.ts.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance))
	var planned struct {
		Hash  string `json:"hash"`
		Graph struct {
			Services []string `json:"services"`
		} `json:"graph"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&planned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	g, err := NewGossip(GossipConfig{Peers: []string{b.ts.URL}, Local: a.srv})
	if err != nil {
		t.Fatal(err)
	}
	g.RunOnce(context.Background())

	// PATCH at a (the "surviving owner" in the failure story).
	patchBody := fmt.Sprintf(`{"model": "overlap", "objective": "period",
	  "updates": [{"service": %q, "cost": "99"}]}`, planned.Graph.Services[0])
	preq, _ := http.NewRequest(http.MethodPatch, a.ts.URL+"/v1/instance/"+planned.Hash, strings.NewReader(patchBody))
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	var drift struct {
		NewHash string `json:"new_hash"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&drift); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || drift.NewHash == "" {
		t.Fatalf("patch status %d, new hash %q", presp.StatusCode, drift.NewHash)
	}

	// One round later the co-owner holds the drifted instance AND its
	// re-planned entry.
	g.RunOnce(context.Background())
	found := false
	for _, h := range b.srv.SyncDigest().Hashes {
		if h == drift.NewHash {
			found = true
		}
	}
	if !found {
		t.Fatal("drifted instance did not reach the co-owner in one round")
	}
	preq2, _ := http.NewRequest(http.MethodPatch, b.ts.URL+"/v1/instance/"+drift.NewHash, strings.NewReader(patchBody))
	presp2, err := http.DefaultClient.Do(preq2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp2.Body)
	presp2.Body.Close()
	if presp2.StatusCode != http.StatusOK {
		t.Fatalf("co-owner PATCH on synced drift target: status %d", presp2.StatusCode)
	}
}

// TestGossipBreakerBacksOffDeadPeer: a dead peer fails one exchange,
// opens its breaker, and subsequent rounds skip it entirely until the
// cooldown; the agent never errors out.
func TestGossipBreakerBacksOffDeadPeer(t *testing.T) {
	a := newReplica(t)
	dead := newReplica(t)
	deadURL := dead.ts.URL
	dead.ts.Close()

	g, err := NewGossip(GossipConfig{
		Peers:            []string{deadURL},
		Local:            a.srv,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.RunOnce(context.Background())
	g.RunOnce(context.Background())
	g.RunOnce(context.Background())

	st := g.Stats()
	if st.Failures != 1 {
		t.Errorf("failures %d, want exactly 1 before the breaker opens", st.Failures)
	}
	if st.Skipped != 2 {
		t.Errorf("skipped %d, want 2 breaker-rejected rounds", st.Skipped)
	}
	if st.Rounds != 3 {
		t.Errorf("rounds %d", st.Rounds)
	}
}

// TestGossipStartLoopConverges: the background loop (immediate first
// round) converges without manual driving, and Close stops it.
func TestGossipStartLoopConverges(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	resp := post(t, a.ts.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, readTestdata(t, "mixed6.json")))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	g, err := NewGossip(GossipConfig{Peers: []string{b.ts.URL}, Local: a.srv, Interval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Close()

	deadline := time.Now().Add(5 * time.Second)
	for len(b.srv.SyncDigest().Hashes) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop never converged the peer")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
