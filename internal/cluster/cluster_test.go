package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/service"
	"repro/internal/solve"
	"repro/internal/workflow"
)

// replica is one in-process filterd: the service plus its HTTP listener.
type replica struct {
	srv *service.Server
	ts  *httptest.Server
}

func newReplica(t *testing.T) *replica {
	t.Helper()
	s := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(service.Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return &replica{srv: s, ts: ts}
}

// newCluster boots n replicas and a router (with its own local failover
// service) in front of them.
func newCluster(t *testing.T, n int) (*Router, *httptest.Server, []*replica) {
	t.Helper()
	replicas := make([]*replica, n)
	peers := make([]string, n)
	for i := range replicas {
		replicas[i] = newReplica(t)
		peers[i] = replicas[i].ts.URL
	}
	local := service.New(service.Config{Workers: 2})
	t.Cleanup(local.Close)
	rt, err := New(Config{Peers: peers, Local: local, HealthInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	gw := httptest.NewServer(rt)
	t.Cleanup(gw.Close)
	return rt, gw, replicas
}

func readTestdata(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// post POSTs raw JSON and returns the response (caller closes the body).
func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// planWire is the slice of the service's plan response the tests compare.
type planWire struct {
	Hash     string          `json:"hash"`
	Outcome  string          `json:"outcome"`
	Value    rat.Rat         `json:"value"`
	Schedule json.RawMessage `json:"schedule"`
}

// TestRoutedBitIdenticalToDirectSolve is acceptance criterion (b): a
// 2-replica sharded cluster behind the router returns responses
// bit-identical to direct solve.MinPeriod calls on the canonical instance
// — and byte-identical to a standalone single replica's answers.
func TestRoutedBitIdenticalToDirectSolve(t *testing.T) {
	_, gw, _ := newCluster(t, 2)
	standalone := newReplica(t)

	for _, name := range []string{"mixed6.json", "webquery8.json"} {
		instance := readTestdata(t, name)
		body := fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance)

		resp := post(t, gw.URL+"/v1/plan", body)
		routedBytes, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: routed status %d (%v)", name, resp.StatusCode, err)
		}
		if by := resp.Header.Get("X-Filterd-Served-By"); !strings.HasPrefix(by, "http") {
			t.Errorf("%s: served by %q, want a peer", name, by)
		}
		var routed planWire
		if err := json.Unmarshal(routedBytes, &routed); err != nil {
			t.Fatal(err)
		}

		// Reference 1: the direct solver call on the canonical instance.
		app := new(workflow.App)
		if err := app.UnmarshalJSON(instance); err != nil {
			t.Fatal(err)
		}
		inst, err := canon.Canonicalize(app)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := solve.MinPeriod(inst.App(), plan.Overlap, solve.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if routed.Hash != inst.Hash() || !routed.Value.Equal(direct.Value) {
			t.Errorf("%s: routed hash/value %s/%s vs direct %s/%s",
				name, routed.Hash, routed.Value, inst.Hash(), direct.Value)
		}
		directSched, err := json.Marshal(direct.Sched.List)
		if err != nil {
			t.Fatal(err)
		}
		var a, b any
		if err := json.Unmarshal(routed.Schedule, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(directSched, &b); err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("%s: routed schedule differs from the direct solve", name)
		}

		// Reference 2: byte identity against a standalone replica.
		resp2 := post(t, standalone.ts.URL+"/v1/plan", body)
		soloBytes, err := io.ReadAll(resp2.Body)
		resp2.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if string(routedBytes) != string(soloBytes) {
			t.Errorf("%s: routed response bytes differ from a standalone replica", name)
		}
	}
}

// TestShardingIsDeterministicAndCovering: one hash always routes to the
// same owner, and with enough distinct instances both replicas own some.
func TestShardingIsDeterministicAndCovering(t *testing.T) {
	local := service.New(service.Config{Workers: 1})
	defer local.Close()
	rt, err := New(Config{Peers: []string{"http://a", "http://b"}, Local: local})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	owners := map[string]bool{}
	for i := 0; i < 64; i++ {
		hash := fmt.Sprintf("%08x%056d", i*0x1234567, 0)
		s1, err := rt.shardOf(hash)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := rt.shardOf(hash)
		if s1 != s2 {
			t.Fatalf("hash %s: shard %d then %d", hash, s1, s2)
		}
		owners[rt.ownerOf(s1).url] = true
	}
	if len(owners) != 2 {
		t.Errorf("64 spread hashes landed on %d of 2 peers", len(owners))
	}
	if _, err := rt.shardOf("zz"); err == nil {
		t.Error("malformed hash produced a shard")
	}
}

// TestFailoverToLocalSolve walks the full failover ladder with the
// default R=2: killing the preferred owner moves the read to the
// co-owner, killing that too lands it on the router's local service —
// every answer bit-identical to the first.
func TestFailoverToLocalSolve(t *testing.T) {
	rt, gw, replicas := newCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")
	body := fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance)

	resp := post(t, gw.URL+"/v1/plan", body)
	firstBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	owner := resp.Header.Get("X-Filterd-Shard-Owner")
	if owner == "" {
		t.Fatal("no owner header")
	}
	var first planWire
	if err := json.Unmarshal(firstBytes, &first); err != nil {
		t.Fatal(err)
	}

	// sameAnswer requires a later response to carry the first one's hash,
	// value, and schedule, whatever served it.
	sameAnswer := func(stage string, raw []byte) {
		t.Helper()
		var got planWire
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got.Hash != first.Hash || !got.Value.Equal(first.Value) {
			t.Errorf("%s answer %s/%s differs from the owner's %s/%s",
				stage, got.Hash, got.Value, first.Hash, first.Value)
		}
		var a, b any
		json.Unmarshal(first.Schedule, &a)
		json.Unmarshal(got.Schedule, &b)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("%s schedule differs from the owner's", stage)
		}
	}

	// Kill the preferred owner mid-run: the read must fail over to the
	// co-owner (a live replica, R=2), not to the local service yet.
	for _, rep := range replicas {
		if rep.ts.URL == owner {
			rep.ts.CloseClientConnections()
			rep.ts.Close()
		}
	}
	resp2 := post(t, gw.URL+"/v1/plan", body)
	secondBytes, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replica failover status %d", resp2.StatusCode)
	}
	by := resp2.Header.Get("X-Filterd-Served-By")
	if !strings.HasPrefix(by, "http") || by == owner {
		t.Fatalf("served by %q, want the surviving co-owner", by)
	}
	sameAnswer("replica failover", secondBytes)
	if st := rt.Stats(); st.ReplicaFailovers == 0 {
		t.Errorf("no replica failover counted: %+v", st)
	}

	// Kill the co-owner too: only the local service is left.
	for _, rep := range replicas {
		rep.ts.CloseClientConnections()
		rep.ts.Close()
	}
	resp3 := post(t, gw.URL+"/v1/plan", body)
	thirdBytes, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("local failover status %d", resp3.StatusCode)
	}
	if by := resp3.Header.Get("X-Filterd-Served-By"); by != "local-failover" {
		t.Fatalf("served by %q, want local-failover", by)
	}
	sameAnswer("local failover", thirdBytes)
	if st := rt.Stats(); st.Failovers == 0 {
		t.Errorf("no local failover counted: %+v", st)
	}
}

// TestPatchAfterFailoverFindsInstance is the regression test for the
// failover 404 window: a plan forwarded to a healthy owner must register
// its instance in the router's LOCAL drift registry too, so that a PATCH
// arriving after the owner dies fails over to the embedded service and
// finds its target — instead of 404ing until the owner returns.
func TestPatchAfterFailoverFindsInstance(t *testing.T) {
	_, gw, replicas := newCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")

	resp := post(t, gw.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance))
	owner := resp.Header.Get("X-Filterd-Shard-Owner")
	var planned struct {
		Hash  string  `json:"hash"`
		Value rat.Rat `json:"value"`
		Graph struct {
			Services []string `json:"services"`
		} `json:"graph"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&planned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if by := resp.Header.Get("X-Filterd-Served-By"); !strings.HasPrefix(by, "http") {
		t.Fatalf("plan served by %q, want the owner — the test needs the healthy-forward path", by)
	}

	// Kill the owner: the PATCH below has nowhere to go but the local
	// failover service, which never solved (or saw) this instance.
	for _, rep := range replicas {
		if rep.ts.URL == owner {
			rep.ts.CloseClientConnections()
			rep.ts.Close()
		}
	}

	patch, err := http.NewRequest(http.MethodPatch, gw.URL+"/v1/instance/"+planned.Hash,
		strings.NewReader(fmt.Sprintf(`{"model": "overlap", "objective": "period",
		  "updates": [{"service": %q, "cost": "99"}]}`, planned.Graph.Services[0])))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(patch)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(presp.Body)
		t.Fatalf("patch after failover: status %d, body %s — the 404 window is back", presp.StatusCode, body)
	}
	if by := presp.Header.Get("X-Filterd-Served-By"); by != "local-failover" {
		t.Fatalf("patch served by %q, want local-failover", by)
	}
	var drift struct {
		OldValue rat.Rat `json:"old_value"`
		NewValue rat.Rat `json:"new_value"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&drift); err != nil {
		t.Fatal(err)
	}
	// Determinism across the failover: the local re-solve of the OLD
	// instance reproduces the owner's objective exactly.
	if !drift.OldValue.Equal(planned.Value) {
		t.Errorf("failover drift old value %s != planned value %s", drift.OldValue, planned.Value)
	}
	if drift.NewValue.Equal(drift.OldValue) {
		t.Errorf("drift to cost 99 did not move the objective (%s)", drift.OldValue)
	}
}

// TestBatchSpansShards: a batch's items route to their owners and
// reassemble in order, bad items failing alone.
func TestBatchSpansShards(t *testing.T) {
	_, gw, replicas := newCluster(t, 2)
	a := readTestdata(t, "mixed6.json")
	b := readTestdata(t, "webquery8.json")
	body := fmt.Sprintf(`{"requests": [
	  {"instance": %s, "model": "overlap"},
	  {"instance": %s, "model": "overlap"},
	  {"instance": {"services": []}},
	  {"instance": %s, "model": "overlap"}]}`, a, b, a)

	resp := post(t, gw.URL+"/v1/batch", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Error string    `json:"error"`
			Plan  *planWire `json:"plan"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Results[0].Plan == nil || out.Results[1].Plan == nil || out.Results[3].Plan == nil {
		t.Fatalf("good items failed: %+v", out.Results)
	}
	if out.Results[2].Error == "" || out.Results[2].Plan != nil {
		t.Error("empty-instance item succeeded")
	}
	if !out.Results[0].Plan.Value.Equal(out.Results[3].Plan.Value) {
		t.Error("duplicate items disagree")
	}
	// Items of one canonical instance land on one replica: the duplicate
	// coalesced or hit there, so the cluster-wide solve count for that
	// hash is 1.
	solves := int64(0)
	for _, rep := range replicas {
		solves += rep.srv.Stats().Solves
	}
	if solves != 2 {
		t.Errorf("cluster ran %d solves for 2 distinct instances", solves)
	}
}

// TestSubscribeProxiesThroughRouter: subscribe and PATCH against the
// router; the SSE event streams back through the proxy from the owning
// replica.
func TestSubscribeProxiesThroughRouter(t *testing.T) {
	_, gw, _ := newCluster(t, 2)
	instance := readTestdata(t, "mixed6.json")

	resp := post(t, gw.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance))
	var planned struct {
		Hash  string `json:"hash"`
		Graph struct {
			Services []string `json:"services"`
		} `json:"graph"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&planned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sub, err := http.Get(gw.URL + "/v1/subscribe/" + planned.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", sub.StatusCode)
	}
	r := bufio.NewReader(sub.Body)
	if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("stream preamble %q, %v", line, err)
	}

	patch, err := http.NewRequest(http.MethodPatch, gw.URL+"/v1/instance/"+planned.Hash,
		strings.NewReader(fmt.Sprintf(`{"model": "overlap", "objective": "period",
		  "updates": [{"service": %q, "cost": "99"}]}`, planned.Graph.Services[0])))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(patch)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d", presp.StatusCode)
	}

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading event: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			var ev struct {
				Hash string `json:"hash"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Hash != planned.Hash {
				t.Errorf("event hash %s, want %s", ev.Hash, planned.Hash)
			}
			return
		}
	}
}
