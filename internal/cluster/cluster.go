// Package cluster shards the planning service across filterd replicas by
// canonical-hash prefix — the horizontal half of the service-hardening
// story (DESIGN.md §4; internal/store is the vertical, per-replica half).
//
// The canonical SHA-256 hash (package canon) is uniform and stable, so its
// leading bits are a ready-made shard key: with B shard bits the hash
// space splits into 2^B shards assigned round-robin to the N replicas, and
// every request for one canonical instance lands on the same replica —
// whose plan cache and persistent store therefore concentrate that
// instance's traffic, exactly like a single-replica deployment would.
//
// The Router is a thin gateway in front of the replicas: it canonicalizes
// enough of each request to know the hash (bodies for /v1/plan and
// /v1/batch items, the path for /v1/instance/{hash} and
// /v1/subscribe/{hash}), forwards to the owner, and falls back to solving
// on its own embedded service when the owner is down. Peer health is one
// state machine per peer — a resilience.Breaker fed by both the periodic
// health probes and the forward path — so a replica that fails K
// consecutive interactions is isolated until a probe proves it back, and
// idempotent forwards ride out transient noise with a bounded retry
// (PATCH is exempt: a replayed drift would publish duplicate re-plan
// events). Every response carries X-Filterd-Shard, X-Filterd-Shard-Owner
// and X-Filterd-Served-By headers, so clients and the smoke tests can
// observe the routing; GET /metrics exposes the same story as Prometheus
// text.
//
// Determinism across the cluster: every replica solves the canonical form
// with Workers: 1, so routed, failed-over and direct answers for one
// canonical instance are bit-identical (pinned by cluster_test.go) — the
// repository's determinism invariant extended across the wire. The
// breaker and the retry decide only WHO computes an answer, never what
// the answer is.
//
// Observability (DESIGN.md §7): the router is the request-ID boundary of
// a deployment — obs.Middleware resolves the X-Filterd-Request-Id on the
// way in, forwards carry it to the owning replica, and the local-failover
// path hands the SAME span to the embedded service (whose middleware
// passes through), so one request keeps one ID across every layer it
// crosses. Spans record the routing verdict (shard, owner, served-by);
// breaker transitions and failovers log through a structured logger with
// the peer and request ID attached. GET /v1/explain/{hash} routes by hash
// like any other per-instance read, GET /v1/healthz answers from the
// router itself, and GET /debug/requests serves the router's span ring.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/workflow"
)

// Config tunes a Router. Peers and Local are required.
type Config struct {
	// Peers are the replicas' base URLs (e.g. http://10.0.0.1:8080), in
	// shard-owner order: shard s belongs to Peers[s mod len(Peers)].
	Peers []string
	// ShardBits is the hash-prefix width B: 2^B shards (default 8,
	// clamped to [1, 16]). More shards than peers just means finer
	// round-robin interleaving.
	ShardBits int
	// Replicas is R, the owners per shard (default 2, clamped to
	// [1, len(Peers)]): shard s belongs to Peers[(s+k) mod N] for
	// k = 0..R-1. Reads try the owners in that order and fail over
	// instantly — determinism makes every owner's answer bit-identical,
	// so failover needs no reconciliation. Writes (PATCH) commit on the
	// first owner that answers and then fan to the remaining owners, so
	// drift state survives any single replica loss.
	Replicas int
	// Local is the embedded failover service: requests whose owner is
	// down are solved here. Determinism makes the failover transparent —
	// the local answer is bit-identical to the owner's.
	Local *service.Server
	// HealthInterval is the peer health-check period (default 2s).
	HealthInterval time.Duration
	// ProbeTimeout caps one health probe (default: HealthInterval,
	// itself capped at 1s) — a hung peer costs one bounded probe, not a
	// stalled health pass.
	ProbeTimeout time.Duration
	// BreakerThreshold is K, the consecutive failures (forwards and
	// probes combined) that open a peer's breaker; BreakerCooldown the
	// Open → HalfOpen delay. Zero values take the resilience defaults
	// (3 failures, 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ForwardRetries bounds re-attempts of one idempotent forward after
	// its first try (default 2; negative disables retries). PATCH
	// forwards never retry. RetryBackoff is the first inter-attempt
	// sleep, doubling per attempt (default 50ms).
	ForwardRetries int
	RetryBackoff   time.Duration
	// BatchFanout bounds the concurrently routed items of one batch
	// (default 4 per peer). Items beyond it queue behind the fan-out
	// workers instead of each spawning a goroutine.
	BatchFanout int
	// Metrics receives the router's instrument families (default: a
	// private registry). cmd/filterd passes the service's registry so
	// one /metrics page covers the whole process.
	Metrics *metrics.Registry
	// Client performs the forwards (default: http.Client without a
	// global timeout — per-request contexts bound the forwards, and
	// subscribe streams must live arbitrarily long).
	Client *http.Client
	// Tracer records per-request spans for GET /debug/requests. Nil (or a
	// zero-capacity tracer) disables recording; request IDs are still
	// resolved and propagated.
	Tracer *obs.Tracer
	// Logger receives the router's structured log lines (breaker
	// transitions, failovers). Nil discards them.
	Logger *slog.Logger
}

// peer is one replica. Its breaker is the single health state machine:
// probe successes close it, probe failures and forward failures feed its
// streak, and routing consults it before every forward. seen records
// whether any interaction ever succeeded: a never-seen peer's probe
// failures are ignored (routers and replicas boot together, and opening
// the breaker of a replica that is merely a beat slower to bind would
// divert its shards to local cold solves) — a genuinely dead peer is
// still isolated by the forward-failure path the first times it is used.
type peer struct {
	url     string
	seen    atomic.Bool
	breaker *resilience.Breaker
}

// available reports whether routing should try the peer at all. Open
// means recently proven dead; Closed and HalfOpen both admit traffic
// (the breaker's Allow gate arbitrates the half-open probe slot).
func (p *peer) available() bool { return p.breaker.State() != resilience.Open }

// Stats is a snapshot of the router counters.
type Stats struct {
	// Shards is 2^ShardBits; PeersUp counts replicas whose breaker is
	// not Open.
	Shards  int
	Peers   int
	PeersUp int
	// Forwarded counts requests served by their owner; LocalServed the
	// requests the router owned locally or could not route (bad bodies
	// answered without routing included); Failovers the forwards that
	// fell back to the local service because every owner was down or
	// erroring. Retries counts forward re-attempts.
	Forwarded   int64
	LocalServed int64
	Failovers   int64
	Retries     int64
	// Replicas is the configured owners per shard (R); UnderReplicated
	// counts shards with fewer than R owners currently available.
	// ReplicaFailovers counts reads served by a non-preferred owner
	// because an earlier owner failed; FanoutWrites the secondary copies
	// of write fan-out (committed primary excluded); FanoutErrors the
	// copies that failed (tolerated — gossip converges the owner later).
	Replicas         int
	UnderReplicated  int
	ReplicaFailovers int64
	FanoutWrites     int64
	FanoutErrors     int64
}

// Router is the gateway handler. Create with New, release with Close.
type Router struct {
	cfg     Config
	peers   []*peer
	local   http.Handler
	client  *http.Client
	probe   *http.Client
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the request-ID middleware
	logger  *slog.Logger
	tracer  *obs.Tracer

	version  string
	revision string

	stop       chan struct{}
	baseCtx    context.Context
	baseCancel context.CancelFunc
	healthWg   sync.WaitGroup

	forwarded        atomic.Int64
	localServed      atomic.Int64
	failovers        atomic.Int64
	retries          atomic.Int64
	replicaFailovers atomic.Int64
	fanoutWrites     atomic.Int64
	fanoutErrors     atomic.Int64

	metrics         *metrics.Registry
	mForwards       *metrics.CounterVec
	mFailovers      *metrics.CounterVec
	mRetries        *metrics.CounterVec
	mBreakerState   *metrics.GaugeVec
	mBreakerOpens   *metrics.CounterVec
	mForwardSeconds *metrics.Histogram
	mFanoutWrites   *metrics.CounterVec
	mShardReplicas  *metrics.GaugeVec
}

// New validates the configuration and starts the health-check loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: no local failover service")
	}
	if cfg.ShardBits == 0 {
		cfg.ShardBits = 8
	}
	if cfg.ShardBits < 1 || cfg.ShardBits > 16 {
		return nil, fmt.Errorf("cluster: shard bits %d out of range [1, 16]", cfg.ShardBits)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Peers) {
		cfg.Replicas = len(cfg.Peers)
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.HealthInterval
		if cfg.ProbeTimeout > time.Second {
			cfg.ProbeTimeout = time.Second
		}
	}
	switch {
	case cfg.ForwardRetries == 0:
		cfg.ForwardRetries = 2
	case cfg.ForwardRetries < 0:
		cfg.ForwardRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.BatchFanout <= 0 {
		cfg.BatchFanout = 4 * len(cfg.Peers)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	rt := &Router{
		cfg:    cfg,
		local:  service.Handler(cfg.Local),
		client: cfg.Client,
		// The probe client stays separate (its timeouts must never mix
		// with forwards) but shares the transport, so an injected-fault
		// wire (internal/faults) faults probes and forwards alike — a
		// "killed" peer looks dead to the health loop too.
		probe:   &http.Client{Transport: cfg.Client.Transport},
		stop:    make(chan struct{}),
		metrics: cfg.Metrics,
		logger:  logger,
		tracer:  cfg.Tracer,
	}
	rt.version, rt.revision = obs.BuildInfo()
	rt.baseCtx, rt.baseCancel = context.WithCancel(context.Background())
	for _, u := range cfg.Peers {
		peerURL := u
		rt.peers = append(rt.peers, &peer{
			url: u,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
				OnTransition: func(from, to resilience.State) {
					// Opens isolate a peer — worth a warning; the rest
					// (probe slots, recoveries) are informational.
					level := slog.LevelInfo
					if to == resilience.Open {
						level = slog.LevelWarn
					}
					rt.logger.Log(context.Background(), level,
						"peer breaker transition",
						"peer", peerURL, "from", from.String(), "to", to.String())
				},
			}),
		})
	}
	rt.initMetrics()
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/plan", rt.handlePlan)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("PATCH /v1/instance/{hash}", rt.handleByHashPath)
	rt.mux.HandleFunc("GET /v1/subscribe/{hash}", rt.handleByHashPath)
	rt.mux.HandleFunc("GET /v1/explain/{hash}", rt.handleByHashPath)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	rt.mux.Handle("GET /metrics", rt.metrics.Handler())
	rt.mux.Handle("GET /debug/requests", rt.tracer.Handler())
	rt.handler = obs.Middleware(rt.tracer, rt.mux)
	rt.healthWg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop, aborting any probe still in flight.
// In-flight requests finish on their own.
func (rt *Router) Close() {
	close(rt.stop)
	rt.baseCancel()
	rt.healthWg.Wait()
}

// healthLoop probes every peer's /v1/stats on the configured period. The
// probes of one pass run concurrently, each bounded by ProbeTimeout, so a
// pass costs one probe's worth of wall time however many peers are dead —
// with serial unbounded probes, two hung peers would stall the pass past
// the interval and starve recovery detection for the healthy ones. Probe
// outcomes feed the breakers: success closes (heals) a peer, failure
// extends a dead peer's isolation without waiting for a request to trip
// over it.
func (rt *Router) healthLoop() {
	defer rt.healthWg.Done()
	ticker := time.NewTicker(rt.cfg.HealthInterval)
	defer ticker.Stop()
	check := func() {
		var wg sync.WaitGroup
		for _, p := range rt.peers {
			wg.Add(1)
			go func(p *peer) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(rt.baseCtx, rt.cfg.ProbeTimeout)
				defer cancel()
				ok := false
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/stats", nil)
				if err == nil {
					resp, derr := rt.probe.Do(req)
					if derr == nil {
						ok = resp.StatusCode == http.StatusOK
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
				switch {
				case ok:
					p.seen.Store(true)
					p.breaker.Success()
				case p.seen.Load():
					p.breaker.Failure()
				}
			}(p)
		}
		wg.Wait()
	}
	check()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			check()
		}
	}
}

// shardOf maps a canonical hash to its shard: the leading ShardBits bits
// of the hex digest.
func (rt *Router) shardOf(hash string) (int, error) {
	if len(hash) < 8 {
		return 0, fmt.Errorf("cluster: hash %q too short", hash)
	}
	v, err := strconv.ParseUint(hash[:8], 16, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: hash %q is not hex", hash)
	}
	return int(v >> (32 - rt.cfg.ShardBits)), nil
}

// ownerOf resolves a shard's preferred (primary) owner.
func (rt *Router) ownerOf(shard int) *peer {
	return rt.peers[shard%len(rt.peers)]
}

// ownersOf resolves a shard's R owners in preference order: the primary
// first, then its successors around the peer ring. Every owner holds the
// shard's state (writes fan out, the anti-entropy loop converges the
// rest), so reads may fail over along this list without changing any
// answer.
func (rt *Router) ownersOf(shard int) []*peer {
	n := len(rt.peers)
	owners := make([]*peer, 0, rt.cfg.Replicas)
	for k := 0; k < rt.cfg.Replicas; k++ {
		owners = append(owners, rt.peers[(shard+k)%n])
	}
	return owners
}

// Stats returns a snapshot of the router counters.
func (rt *Router) Stats() Stats {
	st := Stats{
		Shards:           1 << rt.cfg.ShardBits,
		Peers:            len(rt.peers),
		Forwarded:        rt.forwarded.Load(),
		LocalServed:      rt.localServed.Load(),
		Failovers:        rt.failovers.Load(),
		Retries:          rt.retries.Load(),
		Replicas:         rt.cfg.Replicas,
		ReplicaFailovers: rt.replicaFailovers.Load(),
		FanoutWrites:     rt.fanoutWrites.Load(),
		FanoutErrors:     rt.fanoutErrors.Load(),
	}
	for _, p := range rt.peers {
		if p.available() {
			st.PeersUp++
		}
	}
	// Owner availability is a function of shard mod len(peers) alone, so
	// counting the distinct residues under-replicated covers every shard.
	n := len(rt.peers)
	residues := n
	if st.Shards < residues {
		residues = st.Shards
	}
	shardsPerResidue := st.Shards / n
	for res := 0; res < residues; res++ {
		up := 0
		for _, p := range rt.ownersOf(res) {
			if p.available() {
				up++
			}
		}
		if up < rt.cfg.Replicas {
			count := shardsPerResidue
			if res < st.Shards%n {
				count++
			}
			if st.Shards < n {
				count = 1
			}
			st.UnderReplicated += count
		}
	}
	return st
}

// Metrics returns the router's registry (shared with the embedded
// service when cmd/filterd wired one registry through both).
func (rt *Router) Metrics() *metrics.Registry { return rt.metrics }

// maxBodyBytes mirrors the service's request-body bound; maxRespBytes
// bounds a buffered forward response (a plan answer is far smaller — the
// bound only guards the router's memory against a misbehaving peer).
const (
	maxBodyBytes = 4 << 20
	maxRespBytes = 32 << 20
)

// ServeHTTP routes /v1/* by canonical-hash prefix (the route table is
// built once in New; the request-ID middleware wraps it, so every
// response — routed, failed over, or shed — echoes X-Filterd-Request-Id).
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.handler.ServeHTTP(w, r)
}

// planInstanceJSON is the slice of a plan request the router must see: the
// instance (for the canonical hash). Everything else passes through
// opaquely.
type planInstanceJSON struct {
	Instance json.RawMessage `json:"instance"`
}

// instanceOfPlanBody canonicalizes the request body's instance.
func instanceOfPlanBody(body []byte) (*canon.Instance, error) {
	var doc planInstanceJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("cluster: parsing request body: %w", err)
	}
	if len(doc.Instance) == 0 {
		return nil, fmt.Errorf("cluster: request has no instance")
	}
	app := new(workflow.App)
	if err := app.UnmarshalJSON(doc.Instance); err != nil {
		return nil, fmt.Errorf("cluster: parsing instance: %w", err)
	}
	return canon.Canonicalize(app)
}

func (rt *Router) handlePlan(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := instanceOfPlanBody(body)
	if err != nil {
		// The local service produces the canonical error answer (and the
		// canonical status) for malformed requests.
		rt.serveLocal(w, r, body, "unroutable")
		return
	}
	// Register the instance as a local drift target even when the plan
	// forwards to a healthy owner: if that owner later dies, a PATCH
	// against this hash fails over here and must find its target —
	// without this, the failover window 404s every drift until the owner
	// returns.
	rt.cfg.Local.Register(inst)
	rt.route(w, r, inst.Hash(), r.URL.Path, body)
}

// routedResponse captures a forwarded or locally served answer for
// reassembly (the batch path).
type routedResponse struct {
	status int
	body   []byte
}

// routeItem routes one plan body and captures the answer instead of
// writing it.
func (rt *Router) routeItem(r *http.Request, body []byte) routedResponse {
	rec := httptest.NewRecorder()
	req := r.Clone(r.Context())
	req.URL.Path = "/v1/plan"
	inst, err := instanceOfPlanBody(body)
	if err != nil {
		rt.serveLocal(rec, req, body, "unroutable")
	} else {
		rt.cfg.Local.Register(inst) // close the failover 404 window (see handlePlan)
		rt.route(rec, req, inst.Hash(), "/v1/plan", body)
	}
	return routedResponse{status: rec.Code, body: rec.Body.Bytes()}
}

// batchJSON mirrors the service's wire format closely enough to split a
// batch into per-item routed plan requests and reassemble the answers.
type batchJSON struct {
	Requests []json.RawMessage `json:"requests"`
}

type batchItemJSON struct {
	Error string          `json:"error,omitempty"`
	Plan  json.RawMessage `json:"plan,omitempty"`
}

// handleBatch fans the items out to their owners and reassembles the
// answers in item order — a batch spanning shards parallelizes across
// replicas, which a single replica cannot do. The fan-out is bounded by
// BatchFanout workers draining a shared index: a thousand-item batch
// costs a handful of goroutines and at most BatchFanout concurrent
// forwards, not a thousand of each.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var doc batchJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: parsing request body: %w", err))
		return
	}
	if len(doc.Requests) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: batch has no requests"))
		return
	}
	answers := make([]routedResponse, len(doc.Requests))
	workers := rt.cfg.BatchFanout
	if workers > len(doc.Requests) {
		workers = len(doc.Requests)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(doc.Requests) {
					return
				}
				answers[i] = rt.routeItem(r, doc.Requests[i])
			}
		}()
	}
	wg.Wait()

	out := struct {
		Results []batchItemJSON `json:"results"`
	}{Results: make([]batchItemJSON, len(answers))}
	for i, a := range answers {
		if a.status == http.StatusOK {
			out.Results[i] = batchItemJSON{Plan: json.RawMessage(a.body)}
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(a.body, &e); err != nil || e.Error == "" {
			e.Error = fmt.Sprintf("cluster: item failed with status %d", a.status)
		}
		out.Results[i] = batchItemJSON{Error: e.Error}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleByHashPath routes requests whose canonical hash is the final path
// element (PATCH /v1/instance/{hash}, GET /v1/subscribe/{hash}).
func (rt *Router) handleByHashPath(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	rt.route(w, r, r.PathValue("hash"), r.URL.Path, body)
}

// handleStats serves the router's own counters plus per-peer health (the
// replicas' solver counters live on the replicas).
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	type peerJSON struct {
		URL     string `json:"url"`
		Up      bool   `json:"up"`
		Breaker string `json:"breaker"`
		Opens   int64  `json:"breaker_opens"`
	}
	out := struct {
		Role             string     `json:"role"`
		Version          string     `json:"version"`
		Revision         string     `json:"revision"`
		Shards           int        `json:"shards"`
		Replicas         int        `json:"replicas"`
		UnderReplicated  int        `json:"under_replicated_shards"`
		Forwarded        int64      `json:"forwarded"`
		LocalServed      int64      `json:"local_served"`
		Failovers        int64      `json:"failovers"`
		Retries          int64      `json:"retries"`
		ReplicaFailovers int64      `json:"replica_failovers"`
		FanoutWrites     int64      `json:"fanout_writes"`
		FanoutErrors     int64      `json:"fanout_errors"`
		Peers            []peerJSON `json:"peers"`
	}{
		Role:             "router",
		Version:          rt.version,
		Revision:         rt.revision,
		Shards:           st.Shards,
		Replicas:         st.Replicas,
		UnderReplicated:  st.UnderReplicated,
		Forwarded:        st.Forwarded,
		LocalServed:      st.LocalServed,
		Failovers:        st.Failovers,
		Retries:          st.Retries,
		ReplicaFailovers: st.ReplicaFailovers,
		FanoutWrites:     st.FanoutWrites,
		FanoutErrors:     st.FanoutErrors,
	}
	for _, p := range rt.peers {
		out.Peers = append(out.Peers, peerJSON{
			URL:     p.url,
			Up:      p.available(),
			Breaker: p.breaker.State().String(),
			Opens:   p.breaker.Opens(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz answers liveness from the router itself — no peer I/O, so
// a load balancer probing it learns whether THIS process is up, not
// whether the cluster behind it is healthy (that story is /v1/stats).
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Role     string `json:"role"`
		Version  string `json:"version"`
		Revision string `json:"revision"`
	}{Status: "ok", Role: "router", Version: rt.version, Revision: rt.revision})
}

// route forwards one request to the owners of hash in preference order,
// falling back to the local service when every owner is down (a hash the
// router cannot parse is served locally too — the replica produces the
// canonical error). Determinism makes each owner's answer bit-identical,
// so failover down the owner list is invisible beyond the Served-By
// header. A write (PATCH) additionally fans out to the remaining owners
// after the client's answer commits, so drift state survives the loss of
// any single owner; a failed copy is tolerated (counted) — the
// anti-entropy loop converges that owner later. Routing headers record
// the decision on every response.
func (rt *Router) route(w http.ResponseWriter, r *http.Request, hash, path string, body []byte) {
	shard, err := rt.shardOf(hash)
	if err != nil {
		rt.serveLocal(w, r, body, "unroutable")
		return
	}
	owners := rt.ownersOf(shard)
	primary := owners[0]
	obs.From(r.Context()).SetShard(shard, primary.url)
	h := w.Header()
	h.Set("X-Filterd-Shard", strconv.Itoa(shard))
	h.Set("X-Filterd-Shard-Owner", primary.url)
	if len(owners) > 1 {
		urls := make([]string, len(owners))
		for i, p := range owners {
			urls[i] = p.url
		}
		h.Set("X-Filterd-Shard-Owners", strings.Join(urls, ","))
	}
	write := r.Method == http.MethodPatch
	var served *peer
	for i, p := range owners {
		if rt.forward(w, r, p, path, body) {
			served = p
			break
		}
		if i < len(owners)-1 {
			rt.replicaFailovers.Add(1)
			rt.logger.Info("failing over to the next shard owner",
				"request_id", obs.From(r.Context()).ID(),
				"path", path, "shard", shard, "owner", p.url, "next", owners[i+1].url)
		}
	}
	if served == nil {
		// No owner committed an answer (down, erroring, or — for a
		// write — none of them knows the instance) — solve locally. The
		// determinism invariant makes the answer bit-identical to the
		// owners', so clients only notice via the Served-By header.
		rt.failovers.Add(1)
		rt.mFailovers.With(primary.url).Inc()
		rt.logger.Warn("failing over to the local service",
			"request_id", obs.From(r.Context()).ID(),
			"path", path, "shard", shard, "owner", primary.url)
		rt.serveLocal(w, r, body, "local-failover")
	}
	if write {
		// Fan the write to the owners that did not serve it. The client's
		// response is already committed (or served locally); the copies
		// only keep the co-owners' drift registries and caches warm, so a
		// 404 from an owner that has not yet learned the instance — or a
		// dead owner — is tolerated: gossip converges it.
		for _, p := range owners {
			if p != served {
				rt.forwardCopy(r, p, path, body)
			}
		}
	}
}

// forwardCopy delivers a secondary copy of a write to owner p: same
// method, path, body and request ID, but no client response writer —
// only the breaker and the fan-out counters observe the outcome.
func (rt *Router) forwardCopy(r *http.Request, p *peer, path string, body []byte) {
	rt.fanoutWrites.Add(1)
	rt.mFanoutWrites.With(p.url).Inc()
	if !p.breaker.Allow() {
		rt.fanoutErrors.Add(1)
		return
	}
	// The copy rides the router's base context, not the client's: a
	// client that disconnects right after its committed answer must not
	// abort the replication that keeps the co-owners consistent.
	ctx, cancel := context.WithTimeout(rt.baseCtx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, p.url+path, bytes.NewReader(body))
	if err != nil {
		rt.fanoutErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if id := r.Header.Get(obs.HeaderRequestID); id != "" {
		req.Header.Set(obs.HeaderRequestID, id)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		rt.fanoutErrors.Add(1)
		rt.logger.Info("write fan-out copy failed",
			"request_id", r.Header.Get(obs.HeaderRequestID), "peer", p.url, "err", err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxRespBytes))
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		p.breaker.Failure()
		rt.fanoutErrors.Add(1)
		return
	}
	p.seen.Store(true)
	p.breaker.Success()
}

// errBreakerOpen aborts a forward (and any retry loop around it) when the
// peer's breaker rejects the attempt.
var errBreakerOpen = fmt.Errorf("cluster: peer breaker open")

// forward proxies the request to p, reporting whether a response was
// committed to w; false means nothing was written and the caller can fail
// over. Each attempt passes the peer's breaker gate, and idempotent
// methods re-try transient failures up to ForwardRetries times (PATCH
// never retries against the SAME peer — a replayed drift would publish
// duplicate re-plan events there; determinism makes every other forward
// safe to repeat, and the caller's owner list makes a DIFFERENT owner
// safe for PATCH, since each owner publishes to its own subscribers).
//
// A peer's 5xx never commits: it counts as a peer failure exactly like a
// transport error, so the caller fails over to the next owner (or the
// local service) and the client never sees a 5xx a healthy replica could
// have answered. Backpressure (429) and client errors commit as-is — they
// are answers, not failures. A 404 on a write never commits from a peer:
// an owner that merely has not learned the instance yet must not mask a
// co-owner (or the router's own local registry) that knows it.
//
// A non-SSE response is buffered in full BEFORE any status or header is
// committed: a peer dying mid-body therefore surfaces as a retriable
// failure and ultimately a failover, never as a truncated 200 the client
// must detect on its own. Subscribe streams cannot buffer (they are
// unbounded by design), so they commit on the response header and flush
// through; a mid-stream death there ends the stream, which is the SSE
// contract clients already handle by resubscribing.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, p *peer, path string, body []byte) bool {
	sse := strings.HasPrefix(path, "/v1/subscribe/")
	attempts := 1
	if r.Method != http.MethodPatch {
		attempts += rt.cfg.ForwardRetries
	}
	committed := false
	attempt := 0
	op := func() error {
		attempt++
		if attempt > 1 {
			rt.retries.Add(1)
			rt.mRetries.With(p.url).Inc()
		}
		if !p.breaker.Allow() {
			return resilience.Permanent(errBreakerOpen)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, p.url+path, bytes.NewReader(body))
		if err != nil {
			return resilience.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/json")
		// Propagate the request ID so the owning replica's span and log
		// lines correlate with the router's (the middleware guarantees
		// r.Header carries the canonical ID).
		if id := r.Header.Get(obs.HeaderRequestID); id != "" {
			req.Header.Set(obs.HeaderRequestID, id)
		}
		// Propagate the SSE resume cursor: a subscriber reconnecting
		// through the router must land on the owning replica with its
		// Last-Event-ID intact, or the replica cannot replay the replan
		// events fired during the gap.
		if sse {
			if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
				req.Header.Set("Last-Event-ID", lastID)
			}
		}
		start := time.Now()
		resp, err := rt.client.Do(req)
		if err != nil {
			// Blame the peer only when the PEER failed: a forward aborted
			// because the client's own context died says nothing about
			// the peer's health.
			if r.Context().Err() != nil {
				return resilience.Permanent(err)
			}
			p.breaker.Failure()
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= http.StatusInternalServerError {
			// The peer answered, but with a server-side failure. Drain and
			// treat it as a peer failure: another owner (or the local
			// service) can produce the real answer, and the zero-5xx
			// property of the chaos suites depends on it never reaching
			// the client while a healthy replica remains.
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxRespBytes))
			p.breaker.Failure()
			return fmt.Errorf("cluster: %s answered %d", p.url, resp.StatusCode)
		}
		if r.Method == http.MethodPatch && resp.StatusCode == http.StatusNotFound {
			// The owner is healthy but has not learned this instance yet
			// (a fresh restart before its first gossip round). Another
			// owner may know it — and failing that, the local service
			// does whenever the plan was forwarded through this router
			// (route registers it), so a peer's 404 never commits: the
			// fall-through ends at serveLocal, which either applies the
			// patch or produces the canonical 404.
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxRespBytes))
			p.seen.Store(true)
			p.breaker.Success()
			return resilience.Permanent(fmt.Errorf("cluster: %s does not know the instance", p.url))
		}
		h := w.Header()
		if sse {
			// Commit and stream: from here the forward cannot retry or
			// fail over, only end.
			p.seen.Store(true)
			p.breaker.Success()
			obs.From(r.Context()).SetServedBy(p.url)
			rt.forwarded.Add(1)
			rt.mForwards.With(p.url).Inc()
			rt.mForwardSeconds.Observe(time.Since(start).Seconds())
			if ct := resp.Header.Get("Content-Type"); ct != "" {
				h.Set("Content-Type", ct)
			}
			h.Set("X-Filterd-Served-By", p.url)
			w.WriteHeader(resp.StatusCode)
			committed = true
			flushingCopy(w, resp.Body)
			return nil
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxRespBytes+1))
		if err == nil && len(respBody) > maxRespBytes {
			err = fmt.Errorf("cluster: response exceeds %d bytes", maxRespBytes)
		}
		if err != nil {
			p.breaker.Failure()
			return fmt.Errorf("cluster: reading %s response: %w", p.url, err)
		}
		p.seen.Store(true)
		p.breaker.Success()
		obs.From(r.Context()).SetServedBy(p.url)
		rt.forwarded.Add(1)
		rt.mForwards.With(p.url).Inc()
		rt.mForwardSeconds.Observe(time.Since(start).Seconds())
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			h.Set("Content-Type", ct)
		}
		h.Set("X-Filterd-Served-By", p.url)
		h.Set("Content-Length", strconv.Itoa(len(respBody)))
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		committed = true
		return nil
	}
	resilience.Retry(r.Context(), attempts, rt.cfg.RetryBackoff, op)
	return committed
}

// serveLocal answers from the embedded service. The clone keeps the
// router's context, so the embedded service's middleware passes through
// and the service layer annotates the SAME span (one request, one span).
// A failover is additionally marked on the context, so /v1/explain
// reports source "failover" even when tracing is disabled.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte, why string) {
	rt.localServed.Add(1)
	w.Header().Set("X-Filterd-Served-By", why)
	ctx := r.Context()
	if why == "local-failover" {
		ctx = obs.MarkFailover(ctx)
	}
	obs.From(ctx).SetServedBy(why)
	req := r.Clone(ctx)
	req.Body = io.NopCloser(bytes.NewReader(body))
	req.ContentLength = int64(len(body))
	rt.local.ServeHTTP(w, req)
}

// flushingCopy streams src to w, flushing after every read so proxied
// server-sent events arrive as they happen, not when the stream closes.
func flushingCopy(w http.ResponseWriter, src io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
