// Package cluster shards the planning service across filterd replicas by
// canonical-hash prefix — the horizontal half of the service-hardening
// story (DESIGN.md §4; internal/store is the vertical, per-replica half).
//
// The canonical SHA-256 hash (package canon) is uniform and stable, so its
// leading bits are a ready-made shard key: with B shard bits the hash
// space splits into 2^B shards assigned round-robin to the N replicas, and
// every request for one canonical instance lands on the same replica —
// whose plan cache and persistent store therefore concentrate that
// instance's traffic, exactly like a single-replica deployment would.
//
// The Router is a thin gateway in front of the replicas: it canonicalizes
// enough of each request to know the hash (bodies for /v1/plan and
// /v1/batch items, the path for /v1/instance/{hash} and
// /v1/subscribe/{hash}), forwards to the owner, and falls back to solving
// on its own embedded service when the owner is down (health checks plus
// on-error demotion). Every response carries X-Filterd-Shard,
// X-Filterd-Shard-Owner and X-Filterd-Served-By headers, so clients and
// the smoke tests can observe the routing.
//
// Determinism across the cluster: every replica solves the canonical form
// with Workers: 1, so routed, failed-over and direct answers for one
// canonical instance are bit-identical (pinned by cluster_test.go) — the
// repository's determinism invariant extended across the wire.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/service"
	"repro/internal/workflow"
)

// Config tunes a Router. Peers and Local are required.
type Config struct {
	// Peers are the replicas' base URLs (e.g. http://10.0.0.1:8080), in
	// shard-owner order: shard s belongs to Peers[s mod len(Peers)].
	Peers []string
	// ShardBits is the hash-prefix width B: 2^B shards (default 8,
	// clamped to [1, 16]). More shards than peers just means finer
	// round-robin interleaving.
	ShardBits int
	// Local is the embedded failover service: requests whose owner is
	// down are solved here. Determinism makes the failover transparent —
	// the local answer is bit-identical to the owner's.
	Local *service.Server
	// HealthInterval is the peer health-check period (default 2s).
	HealthInterval time.Duration
	// Client performs the forwards (default: http.Client without a
	// global timeout — per-request contexts bound the forwards, and
	// subscribe streams must live arbitrarily long).
	Client *http.Client
}

// peer is one replica and its health state. seen records whether a health
// probe ever succeeded: a never-seen peer is not demoted by failed probes
// (routers and replicas boot together, and demoting a replica that is
// merely a beat slower to bind would divert its shards to local cold
// solves for a whole health interval) — a genuinely dead peer is still
// demoted immediately by the forward-error path the first time it is
// used.
type peer struct {
	url  string
	up   atomic.Bool
	seen atomic.Bool
}

// Stats is a snapshot of the router counters.
type Stats struct {
	// Shards is 2^ShardBits; PeersUp counts currently healthy replicas.
	Shards  int
	Peers   int
	PeersUp int
	// Forwarded counts requests served by their owner; LocalServed the
	// requests the router owned locally or could not route (bad bodies
	// answered without routing included); Failovers the forwards that
	// fell back to the local service because the owner was down or
	// erroring.
	Forwarded   int64
	LocalServed int64
	Failovers   int64
}

// Router is the gateway handler. Create with New, release with Close.
type Router struct {
	cfg    Config
	peers  []*peer
	local  http.Handler
	client *http.Client
	mux    *http.ServeMux

	stop     chan struct{}
	healthWg sync.WaitGroup

	forwarded   atomic.Int64
	localServed atomic.Int64
	failovers   atomic.Int64
}

// New validates the configuration and starts the health-check loop.
func New(cfg Config) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: no local failover service")
	}
	if cfg.ShardBits == 0 {
		cfg.ShardBits = 8
	}
	if cfg.ShardBits < 1 || cfg.ShardBits > 16 {
		return nil, fmt.Errorf("cluster: shard bits %d out of range [1, 16]", cfg.ShardBits)
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	rt := &Router{
		cfg:    cfg,
		local:  service.Handler(cfg.Local),
		client: cfg.Client,
		stop:   make(chan struct{}),
	}
	for _, u := range cfg.Peers {
		p := &peer{url: u}
		p.up.Store(true) // optimistic: demoted on first failure
		rt.peers = append(rt.peers, p)
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/plan", rt.handlePlan)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("PATCH /v1/instance/{hash}", rt.handleByHashPath)
	rt.mux.HandleFunc("GET /v1/subscribe/{hash}", rt.handleByHashPath)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.healthWg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop. In-flight requests finish on their own.
func (rt *Router) Close() {
	close(rt.stop)
	rt.healthWg.Wait()
}

// healthLoop probes every peer's /v1/stats on the configured period,
// promoting and demoting them. A demoted peer heals automatically at the
// next successful probe.
func (rt *Router) healthLoop() {
	defer rt.healthWg.Done()
	ticker := time.NewTicker(rt.cfg.HealthInterval)
	defer ticker.Stop()
	probe := &http.Client{Timeout: rt.cfg.HealthInterval}
	check := func() {
		for _, p := range rt.peers {
			resp, err := probe.Get(p.url + "/v1/stats")
			ok := err == nil && resp.StatusCode == http.StatusOK
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			switch {
			case ok:
				p.seen.Store(true)
				p.up.Store(true)
			case p.seen.Load():
				p.up.Store(false)
			}
		}
	}
	check()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			check()
		}
	}
}

// shardOf maps a canonical hash to its shard: the leading ShardBits bits
// of the hex digest.
func (rt *Router) shardOf(hash string) (int, error) {
	if len(hash) < 8 {
		return 0, fmt.Errorf("cluster: hash %q too short", hash)
	}
	v, err := strconv.ParseUint(hash[:8], 16, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: hash %q is not hex", hash)
	}
	return int(v >> (32 - rt.cfg.ShardBits)), nil
}

// ownerOf resolves a shard's replica.
func (rt *Router) ownerOf(shard int) *peer {
	return rt.peers[shard%len(rt.peers)]
}

// Stats returns a snapshot of the router counters.
func (rt *Router) Stats() Stats {
	st := Stats{
		Shards:      1 << rt.cfg.ShardBits,
		Peers:       len(rt.peers),
		Forwarded:   rt.forwarded.Load(),
		LocalServed: rt.localServed.Load(),
		Failovers:   rt.failovers.Load(),
	}
	for _, p := range rt.peers {
		if p.up.Load() {
			st.PeersUp++
		}
	}
	return st
}

// maxBodyBytes mirrors the service's request-body bound.
const maxBodyBytes = 4 << 20

// ServeHTTP routes /v1/* by canonical-hash prefix (the route table is
// built once in New).
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// planInstanceJSON is the slice of a plan request the router must see: the
// instance (for the canonical hash). Everything else passes through
// opaquely.
type planInstanceJSON struct {
	Instance json.RawMessage `json:"instance"`
}

// instanceOfPlanBody canonicalizes the request body's instance.
func instanceOfPlanBody(body []byte) (*canon.Instance, error) {
	var doc planInstanceJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("cluster: parsing request body: %w", err)
	}
	if len(doc.Instance) == 0 {
		return nil, fmt.Errorf("cluster: request has no instance")
	}
	app := new(workflow.App)
	if err := app.UnmarshalJSON(doc.Instance); err != nil {
		return nil, fmt.Errorf("cluster: parsing instance: %w", err)
	}
	return canon.Canonicalize(app)
}

func (rt *Router) handlePlan(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	inst, err := instanceOfPlanBody(body)
	if err != nil {
		// The local service produces the canonical error answer (and the
		// canonical status) for malformed requests.
		rt.serveLocal(w, r, body, "unroutable")
		return
	}
	// Register the instance as a local drift target even when the plan
	// forwards to a healthy owner: if that owner later dies, a PATCH
	// against this hash fails over here and must find its target —
	// without this, the failover window 404s every drift until the owner
	// returns.
	rt.cfg.Local.Register(inst)
	rt.route(w, r, inst.Hash(), r.URL.Path, body)
}

// routedResponse captures a forwarded or locally served answer for
// reassembly (the batch path).
type routedResponse struct {
	status int
	body   []byte
}

// routeItem routes one plan body and captures the answer instead of
// writing it.
func (rt *Router) routeItem(r *http.Request, body []byte) routedResponse {
	rec := httptest.NewRecorder()
	req := r.Clone(r.Context())
	req.URL.Path = "/v1/plan"
	inst, err := instanceOfPlanBody(body)
	if err != nil {
		rt.serveLocal(rec, req, body, "unroutable")
	} else {
		rt.cfg.Local.Register(inst) // close the failover 404 window (see handlePlan)
		rt.route(rec, req, inst.Hash(), "/v1/plan", body)
	}
	return routedResponse{status: rec.Code, body: rec.Body.Bytes()}
}

// batchJSON mirrors the service's wire format closely enough to split a
// batch into per-item routed plan requests and reassemble the answers.
type batchJSON struct {
	Requests []json.RawMessage `json:"requests"`
}

type batchItemJSON struct {
	Error string          `json:"error,omitempty"`
	Plan  json.RawMessage `json:"plan,omitempty"`
}

// handleBatch fans the items out to their owners concurrently and
// reassembles the answers in item order — a batch spanning shards
// parallelizes across replicas, which a single replica cannot do.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var doc batchJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: parsing request body: %w", err))
		return
	}
	if len(doc.Requests) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: batch has no requests"))
		return
	}
	answers := make([]routedResponse, len(doc.Requests))
	var wg sync.WaitGroup
	for i, item := range doc.Requests {
		wg.Add(1)
		go func(i int, item []byte) {
			defer wg.Done()
			answers[i] = rt.routeItem(r, item)
		}(i, item)
	}
	wg.Wait()

	out := struct {
		Results []batchItemJSON `json:"results"`
	}{Results: make([]batchItemJSON, len(answers))}
	for i, a := range answers {
		if a.status == http.StatusOK {
			out.Results[i] = batchItemJSON{Plan: json.RawMessage(a.body)}
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(a.body, &e); err != nil || e.Error == "" {
			e.Error = fmt.Sprintf("cluster: item failed with status %d", a.status)
		}
		out.Results[i] = batchItemJSON{Error: e.Error}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleByHashPath routes requests whose canonical hash is the final path
// element (PATCH /v1/instance/{hash}, GET /v1/subscribe/{hash}).
func (rt *Router) handleByHashPath(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	rt.route(w, r, r.PathValue("hash"), r.URL.Path, body)
}

// handleStats serves the router's own counters plus per-peer health (the
// replicas' solver counters live on the replicas).
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	type peerJSON struct {
		URL string `json:"url"`
		Up  bool   `json:"up"`
	}
	out := struct {
		Role        string     `json:"role"`
		Shards      int        `json:"shards"`
		Forwarded   int64      `json:"forwarded"`
		LocalServed int64      `json:"local_served"`
		Failovers   int64      `json:"failovers"`
		Peers       []peerJSON `json:"peers"`
	}{
		Role:        "router",
		Shards:      st.Shards,
		Forwarded:   st.Forwarded,
		LocalServed: st.LocalServed,
		Failovers:   st.Failovers,
	}
	for _, p := range rt.peers {
		out.Peers = append(out.Peers, peerJSON{URL: p.url, Up: p.up.Load()})
	}
	writeJSON(w, http.StatusOK, out)
}

// route forwards one request to the owner of hash, falling back to the
// local service when the owner is down (a hash the router cannot parse is
// served locally too — the replica produces the canonical error). Routing
// headers record the decision on every response.
func (rt *Router) route(w http.ResponseWriter, r *http.Request, hash, path string, body []byte) {
	shard, err := rt.shardOf(hash)
	if err != nil {
		rt.serveLocal(w, r, body, "unroutable")
		return
	}
	owner := rt.ownerOf(shard)
	h := w.Header()
	h.Set("X-Filterd-Shard", strconv.Itoa(shard))
	h.Set("X-Filterd-Shard-Owner", owner.url)
	if owner.up.Load() && rt.forward(w, r, owner, path, body) {
		return
	}
	// Failover: the owner is down (or just failed) — solve locally. The
	// determinism invariant makes the answer bit-identical to the
	// owner's, so clients only notice via the Served-By header.
	rt.failovers.Add(1)
	rt.serveLocal(w, r, body, "local-failover")
}

// forward proxies the request to p. A transport-level failure demotes the
// peer and reports false so the caller can fail over; once response bytes
// have been copied the forward is committed (true).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, p *peer, path string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.url+path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		// Demote only when the PEER failed: a forward aborted because the
		// client's own context died says nothing about the peer's health,
		// and demoting there would divert the peer's shards to local cold
		// solves for a whole health interval.
		if r.Context().Err() == nil {
			p.up.Store(false)
		}
		return false
	}
	defer resp.Body.Close()
	rt.forwarded.Add(1)
	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	h.Set("X-Filterd-Served-By", p.url)
	w.WriteHeader(resp.StatusCode)
	flushingCopy(w, resp.Body)
	return true
}

// serveLocal answers from the embedded service.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte, why string) {
	rt.localServed.Add(1)
	w.Header().Set("X-Filterd-Served-By", why)
	req := r.Clone(r.Context())
	req.Body = io.NopCloser(bytes.NewReader(body))
	req.ContentLength = int64(len(body))
	rt.local.ServeHTTP(w, req)
}

// flushingCopy streams src to w, flushing after every read so proxied
// server-sent events arrive as they happen, not when the stream closes.
func flushingCopy(w http.ResponseWriter, src io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
