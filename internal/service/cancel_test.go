package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/solve"
)

// httpGet is http.Get without the shadowing pitfalls inside goroutines.
func httpGet(url string) (*http.Response, error) { return http.Get(url) }

// TestExpiredContextAbortsWithoutPoisoningCache is acceptance criterion
// (c): a request whose context is already dead aborts cleanly — the error
// wraps context.Canceled, nothing is cached under the key — and the next
// request with a live context solves fresh and matches the direct answer.
func TestExpiredContextAbortsWithoutPoisoningCache(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	req := Request{App: gen.App(gen.NewRand(21), 4, gen.Mixed), Model: plan.Overlap, Objective: solve.PeriodObjective}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PlanContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired context: got error %v", err)
	}
	if st := s.Stats(); st.Cache.Len != 0 || st.Cache.InFlight != 0 {
		t.Fatalf("aborted request left cache state: %+v", st.Cache)
	}

	// Clean retry: a live-context request solves fresh.
	resp, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != plancache.Miss {
		t.Errorf("retry outcome = %s, want miss", resp.Outcome)
	}
	if want := fingerprint(t, directSolve(t, req)); fingerprint(t, resp.Solution) != want {
		t.Error("retry differs from direct solve")
	}
}

// TestMidSolveCancellationAborts cancels a request while its solve runs on
// the pool and requires the context error back without a cached entry.
// The instance is big enough that the hill climb runs for a while; if the
// solve still wins the race the test skips rather than flakes.
func TestMidSolveCancellationAborts(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	req := Request{
		App:       gen.App(gen.NewRand(22), 16, gen.Mixed),
		Model:     plan.InOrder,
		Objective: solve.PeriodObjective,
		Method:    solve.HillClimb,
		Restarts:  64,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := s.PlanContext(ctx, req)
		done <- err
	}()
	// Cancel as soon as the solve reached the pool.
	for i := 0; s.Stats().Solves == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	if err == nil {
		t.Skip("solve finished before the cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got error %v", err)
	}
	if st := s.Stats(); st.Cache.Len != 0 {
		t.Fatalf("canceled solve was cached: %+v", st.Cache)
	}
	// The key is clean: re-solving succeeds.
	if _, err := s.Plan(req); err != nil {
		t.Fatalf("retry after mid-solve cancel: %v", err)
	}
}

// TestCoalescedFollowerSurvivesLeaderCancel: a request coalesced onto a
// solve whose LEADING request is canceled must not inherit the 499 — it
// retries (becoming the leader under its own live context) and still gets
// the answer.
func TestCoalescedFollowerSurvivesLeaderCancel(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	req := Request{
		App:       gen.App(gen.NewRand(23), 16, gen.Mixed),
		Model:     plan.InOrder,
		Objective: solve.PeriodObjective,
		Method:    solve.HillClimb,
		Restarts:  64,
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.PlanContext(leaderCtx, req)
		leaderDone <- err
	}()
	for i := 0; s.Stats().Solves == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan error, 1)
	var followerResp Response
	go func() {
		var err error
		followerResp, err = s.Plan(req)
		followerDone <- err
	}()
	// Wait until the follower provably coalesced onto the leader's solve,
	// then kill the leader.
	for i := 0; s.Stats().Cache.Coalesced == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Stats().Cache.Coalesced == 0 {
		t.Skip("solve finished before the follower could coalesce")
	}
	cancelLeader()

	if err := <-followerDone; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if want := fingerprint(t, directSolve(t, req)); fingerprint(t, followerResp.Solution) != want {
		t.Error("follower's retried answer differs from direct solve")
	}
	<-leaderDone // leader may have been canceled or finished first; either is fine
}

// TestCloseEndsOpenSubscriptionStreams: an open SSE stream must end when
// the server shuts down (otherwise graceful HTTP shutdown would stall on
// the connected subscriber until its deadline).
func TestCloseEndsOpenSubscriptionStreams(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	resp, err := s.Plan(Request{App: gen.App(gen.NewRand(24), 4, gen.Mixed)})
	if err != nil {
		t.Fatal(err)
	}

	streamClosed := make(chan error, 1)
	go func() {
		r, err := httpGet(ts.URL + "/v1/subscribe/" + resp.Hash)
		if err != nil {
			streamClosed <- err
			return
		}
		defer r.Body.Close()
		_, err = io.ReadAll(r.Body) // returns when the server ends the stream
		streamClosed <- err
	}()
	// Wait for the subscription to be registered, then close the server.
	for i := 0; s.Stats().Subscribers == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on the open subscription stream")
	}
	select {
	case err := <-streamClosed:
		if err != nil {
			t.Fatalf("stream reader: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription stream did not end on Close")
	}
}

// TestHTTPCancelledRequestGets499: the HTTP surface maps a dead request
// context to the 499 client-closed-request status, and the error body
// still parses as the usual JSON error document.
func TestHTTPCancelledRequestGets499(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := fmt.Sprintf(`{"instance": %s, "model": "overlap"}`, readTestdata(t, "mixed6.json"))
	req := httptest.NewRequest("POST", "/v1/plan", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	Handler(s).ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("no JSON error document: %s", rec.Body.String())
	}
	if st := s.Stats(); st.Cache.Len != 0 {
		t.Errorf("cache poisoned by the 499 request: %+v", st.Cache)
	}
}
