//go:build race

package service

// raceEnabled gates the allocation-budget guards: race instrumentation
// adds its own allocations, so the budgets only hold in unraced builds.
const raceEnabled = true
