package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/oplist"
	"repro/internal/plan"
	"repro/internal/solve"
	"repro/internal/workflow"
)

func newTestAPI(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, into any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if raw, ok := body.(string); ok {
			buf.WriteString(raw)
		} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func readTestdata(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHTTPPlanMatchesCLIAnswer drives POST /v1/plan with the shipped
// webquery8 instance and checks the wire answer — value AND the oplist
// schedule — against the direct solver call the filterplan CLI makes.
func TestHTTPPlanMatchesCLIAnswer(t *testing.T) {
	_, ts := newTestAPI(t)
	instance := readTestdata(t, "webquery8.json")

	var out planResponseJSON
	resp := doJSON(t, "POST", ts.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "inorder", "objective": "period"}`, instance), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	var app workflow.App
	if err := json.Unmarshal(instance, &app); err != nil {
		t.Fatal(err)
	}
	want := directSolve(t, Request{App: &app, Model: plan.InOrder, Objective: solve.PeriodObjective})
	if !out.Value.Equal(want.Value) {
		t.Errorf("HTTP value %s != direct solve %s", out.Value, want.Value)
	}
	if out.Outcome != "miss" || out.Cached {
		t.Errorf("first answer outcome=%s cached=%v", out.Outcome, out.Cached)
	}
	if len(out.Hash) != 64 {
		t.Errorf("hash %q", out.Hash)
	}

	// The schedule is the oplist codec: it must round-trip through
	// LoadList against the returned plan and reproduce period and latency.
	wantSched, err := json.Marshal(want.Sched.List)
	if err != nil {
		t.Fatal(err)
	}
	if compactJSON(t, out.Schedule) != compactJSON(t, wantSched) {
		t.Error("wire schedule differs from the direct solve's oplist JSON")
	}
	l, err := oplist.LoadList(want.Sched.List.Plan(), out.Schedule)
	if err != nil {
		t.Fatalf("wire schedule does not load back: %v", err)
	}
	if !l.Period().Equal(out.Period) || !l.Latency().Equal(out.Latency) {
		t.Error("reloaded schedule disagrees with the wire period/latency")
	}

	// Second request: served from cache.
	var again planResponseJSON
	doJSON(t, "POST", ts.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "inorder", "objective": "period"}`, instance), &again)
	if !again.Cached || again.Outcome != "hit" {
		t.Errorf("repeat answer outcome=%s cached=%v", again.Outcome, again.Cached)
	}
	if string(again.Schedule) != string(out.Schedule) {
		t.Error("cached schedule differs from the fresh one")
	}
}

// compactJSON normalizes whitespace (the HTTP encoder re-indents embedded
// raw messages) so schedule documents compare structurally.
func compactJSON(t *testing.T, data []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestHTTPBatchAndStats: one batch with a duplicate and a broken item;
// stats reflect the coalescing.
func TestHTTPBatchAndStats(t *testing.T) {
	_, ts := newTestAPI(t)
	instance := readTestdata(t, "mixed6.json")

	item := fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period"}`, instance)
	body := fmt.Sprintf(`{"requests": [%s, %s, {"instance": {"services": []}}]}`, item, item)
	var out batchResponseJSON
	resp := doJSON(t, "POST", ts.URL+"/v1/batch", body, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[1].Error != "" {
		t.Fatalf("good items failed: %v / %v", out.Results[0].Error, out.Results[1].Error)
	}
	if !out.Results[0].Plan.Value.Equal(out.Results[1].Plan.Value) {
		t.Error("duplicate batch items disagree")
	}
	if out.Results[2].Error == "" || out.Results[2].Plan != nil {
		t.Error("empty-instance item succeeded")
	}

	var st statsJSON
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &st)
	if st.Solves != 1 {
		t.Errorf("solves = %d, want 1 (duplicates coalesce)", st.Solves)
	}
	if st.PlanRequests != 3 || st.Rejected != 1 || st.Registered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHTTPDrift exercises PATCH /v1/instance/{hash}: old-vs-new objective
// report, warm start, and the new hash being immediately servable.
func TestHTTPDrift(t *testing.T) {
	_, ts := newTestAPI(t)
	instance := readTestdata(t, "mixed6.json")

	var first planResponseJSON
	doJSON(t, "POST", ts.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "overlap", "objective": "period", "method": "bnb"}`, instance), &first)
	if first.Hash == "" {
		t.Fatal("no hash in plan response")
	}

	target := first.Graph.Services[0]
	var drift driftResponseJSON
	resp := doJSON(t, "PATCH", ts.URL+"/v1/instance/"+first.Hash,
		fmt.Sprintf(`{"model": "overlap", "objective": "period", "method": "bnb",
		              "updates": [{"service": %q, "cost": "7/2"}]}`, target), &drift)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if drift.OldHash != first.Hash || drift.NewHash == drift.OldHash {
		t.Errorf("hashes: old %s new %s", drift.OldHash, drift.NewHash)
	}
	if !drift.OldValue.Equal(first.Value) {
		t.Errorf("old value %s != first plan %s", drift.OldValue, first.Value)
	}
	if !drift.WarmStart || drift.Incumbent == nil {
		t.Error("drift did not warm-start")
	}
	if drift.Plan.Hash != drift.NewHash || !drift.Plan.Value.Equal(drift.NewValue) {
		t.Error("drift plan inconsistent with the report")
	}

	// 404 for unknown hashes, 400 for malformed updates.
	if resp := doJSON(t, "PATCH", ts.URL+"/v1/instance/ffff", `{"updates":[]}`, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "PATCH", ts.URL+"/v1/instance/"+drift.NewHash,
		fmt.Sprintf(`{"updates": [{"service": %q, "cost": "not-a-rat"}]}`, target), nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rational: status %d", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestAPI(t)
	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		{"POST", "/v1/plan", `not json`, http.StatusBadRequest},
		{"POST", "/v1/plan", `{}`, http.StatusBadRequest},
		{"POST", "/v1/plan", `{"instance": {"services": [{"cost": "1", "selectivity": "1"}]}, "model": "bogus"}`, http.StatusBadRequest},
		{"POST", "/v1/plan", `{"instance": {"services": []}}`, http.StatusUnprocessableEntity},
		{"POST", "/v1/batch", `{"requests": []}`, http.StatusBadRequest},
		{"GET", "/v1/plan", ``, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		buf.WriteString(tc.body)
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s %q: status %d, want %d", tc.method, tc.path, tc.body, resp.StatusCode, tc.wantStatus)
		}
	}
}

// TestHTTPPlanGraphNamesMatchInstance: the wire graph speaks service
// names, all of which exist in the submitted instance.
func TestHTTPPlanGraphNamesMatchInstance(t *testing.T) {
	_, ts := newTestAPI(t)
	instance := readTestdata(t, "webquery8.json")
	var app workflow.App
	if err := json.Unmarshal(instance, &app); err != nil {
		t.Fatal(err)
	}
	var out planResponseJSON
	doJSON(t, "POST", ts.URL+"/v1/plan", fmt.Sprintf(`{"instance": %s}`, instance), &out)
	if len(out.Graph.Services) != app.N() {
		t.Fatalf("%d services on the wire, want %d", len(out.Graph.Services), app.N())
	}
	known := map[string]bool{}
	for _, n := range out.Graph.Services {
		known[n] = true
		if app.IndexOf(n) < 0 {
			t.Errorf("wire service %q not in the instance", n)
		}
	}
	for _, e := range out.Graph.Edges {
		if !known[e[0]] || !known[e[1]] {
			t.Errorf("wire edge %v references unknown service", e)
		}
	}
	if strings.TrimSpace(string(out.Schedule)) == "" {
		t.Error("no schedule on the wire")
	}
}
