package service

// Observability tests: the request-ID contract of every response, the
// /v1/explain provenance endpoint across serve paths (solve → cache →
// warm restart from the store), /v1/healthz, and the allocation guard
// pinning that the tracing spine costs nothing on the cache-hit path.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/solve"
	"repro/internal/store"
	"repro/internal/workflow"
)

// TestRequestIDOnEveryResponse pins the echo contract: success, rejection
// and shed responses all carry X-Filterd-Request-Id, errors carry it in
// the JSON body too, and a valid inbound ID is honored verbatim.
func TestRequestIDOnEveryResponse(t *testing.T) {
	_, ts := newTestAPI(t)
	instance := readTestdata(t, "webquery8.json")

	// Success: generated ID echoed on the header.
	var out planResponseJSON
	resp := doJSON(t, "POST", ts.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "inorder"}`, instance), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if id := resp.Header.Get(obs.HeaderRequestID); id == "" || obs.SanitizeID(id) != id {
		t.Fatalf("success response ID %q", id)
	}

	// Client-supplied ID: honored on success and error alike.
	req, err := http.NewRequest("POST", ts.URL+"/v1/plan", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.HeaderRequestID, "my-test-id")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != "my-test-id" {
		t.Fatalf("error response header ID %q, want my-test-id", got)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == "" || body.RequestID != "my-test-id" {
		t.Fatalf("error body %+v, want request_id my-test-id", body)
	}
}

// TestRequestIDOnShed pins the 429 path: the load-shedding rejection must
// still carry the ID (the middleware sets it before the handler runs).
func TestRequestIDOnShed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueSize: 1, MaxPending: 2})
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(ts.Close)
	release := blockPool(t, s, 2) // watermark reached: next admission sheds
	defer release()

	instance := readTestdata(t, "webquery8.json")
	var shed struct {
		RequestID string `json:"request_id"`
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/plan",
		fmt.Sprintf(`{"instance": %s, "model": "inorder"}`, instance), &shed)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get(obs.HeaderRequestID) == "" {
		t.Fatal("shed response lost the request ID header")
	}
	if shed.RequestID == "" {
		t.Fatal("shed body has no request_id")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestAPI(t)
	var doc struct {
		Status   string `json:"status"`
		Version  string `json:"version"`
		Revision string `json:"revision"`
	}
	resp := doJSON(t, "GET", ts.URL+"/v1/healthz", nil, &doc)
	if resp.StatusCode != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz %d %+v", resp.StatusCode, doc)
	}
	if doc.Version == "" || doc.Revision == "" {
		t.Fatalf("healthz build identity empty: %+v", doc)
	}
}

func TestDebugRequestsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Tracer: obs.NewTracer(16)})
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(ts.Close)

	doJSON(t, "GET", ts.URL+"/v1/stats", nil, nil)
	var doc struct {
		Enabled bool           `json:"enabled"`
		Spans   []obs.SpanView `json:"spans"`
	}
	doJSON(t, "GET", ts.URL+"/debug/requests", nil, &doc)
	if !doc.Enabled || len(doc.Spans) == 0 {
		t.Fatalf("debug document %+v", doc)
	}
	if doc.Spans[0].Route != "GET /v1/stats" {
		t.Fatalf("first span route %q", doc.Spans[0].Route)
	}
}

// explainDoc mirrors the /v1/explain wire format closely enough for the
// determinism comparisons.
type explainDoc struct {
	Hash      string `json:"hash"`
	RequestID string `json:"request_id"`
	Model     string `json:"model"`
	Objective string `json:"objective"`
	Method    string `json:"method"`
	Family    string `json:"family"`
	Source    string `json:"source"`
	Outcome   string `json:"outcome"`
	Exact     bool   `json:"exact"`
	Solver    *struct {
		Expanded  int64 `json:"expanded"`
		Pruned    int64 `json:"pruned"`
		Evaluated int64 `json:"evaluated"`
	} `json:"solver"`
	Orch *struct {
		Orchestrations int64 `json:"orchestrations"`
		MemoHits       int64 `json:"memo_hits"`
	} `json:"orchestration"`
	Timings *struct {
		SolveSeconds float64 `json:"solve_seconds"`
	} `json:"timings"`
}

// TestExplainAcrossServePaths drives one bnb instance through a fresh
// solve, a cache hit, and a warm restart (store-loaded), checking
// /v1/explain reports the right source each time and the SAME search
// counters everywhere — the persisted effort record replays bit-identical.
func TestExplainAcrossServePaths(t *testing.T) {
	dir := t.TempDir()
	// mixed6 has no precedence constraints, so the chain branch-and-bound
	// applies — the same configuration smoke_cluster.sh cross-checks
	// against filterplan.
	instance := readTestdata(t, "mixed6.json")
	body := fmt.Sprintf(`{"instance": %s, "model": "inorder", "objective": "period", "method": "bnb", "family": "chain"}`, instance)

	boot := func() (*Server, *httptest.Server) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := newTestServer(t, Config{Workers: 1, Store: st})
		ts := httptest.NewServer(Handler(s))
		t.Cleanup(ts.Close)
		return s, ts
	}

	_, ts := boot()

	// Unknown hash: 404 with an error body.
	resp := doJSON(t, "GET", ts.URL+"/v1/explain/0000000000000000000000000000000000000000000000000000000000000000", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash status %d, want 404", resp.StatusCode)
	}

	var out planResponseJSON
	if resp := doJSON(t, "POST", ts.URL+"/v1/plan", body, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d", resp.StatusCode)
	}

	var solved explainDoc
	doJSON(t, "GET", ts.URL+"/v1/explain/"+out.Hash, nil, &solved)
	if solved.Source != "solve" || solved.Outcome != "miss" {
		t.Fatalf("fresh solve source/outcome = %q/%q", solved.Source, solved.Outcome)
	}
	if solved.Method != "branch-bound" || solved.Family != "chain" {
		t.Fatalf("resolved method/family = %q/%q", solved.Method, solved.Family)
	}
	if solved.Solver == nil || solved.Solver.Expanded == 0 {
		t.Fatalf("fresh solve has no search counters: %+v", solved.Solver)
	}
	if solved.Orch == nil || solved.Orch.Orchestrations == 0 {
		t.Fatalf("fresh solve has no orchestration counters: %+v", solved.Orch)
	}
	if solved.Timings == nil || solved.Timings.SolveSeconds <= 0 {
		t.Fatalf("fresh solve has no timings: %+v", solved.Timings)
	}
	if solved.RequestID == "" {
		t.Fatal("explain record lost the request ID")
	}

	// Cache hit: source changes, the effort record does not.
	doJSON(t, "POST", ts.URL+"/v1/plan", body, nil)
	var hit explainDoc
	doJSON(t, "GET", ts.URL+"/v1/explain/"+out.Hash, nil, &hit)
	if hit.Source != "cache" || hit.Outcome != "hit" {
		t.Fatalf("cache hit source/outcome = %q/%q", hit.Source, hit.Outcome)
	}
	if *hit.Solver != *solved.Solver {
		t.Fatalf("cache-hit counters %+v != solve counters %+v", hit.Solver, solved.Solver)
	}

	// Warm restart: a fresh process serves from the store, and the
	// persisted effort replays the same counters.
	_, ts2 := boot()
	var restarted planResponseJSON
	doJSON(t, "POST", ts2.URL+"/v1/plan", body, &restarted)
	if restarted.Hash != out.Hash {
		t.Fatalf("restart hash %s != %s", restarted.Hash, out.Hash)
	}
	var stored explainDoc
	doJSON(t, "GET", ts2.URL+"/v1/explain/"+out.Hash, nil, &stored)
	if stored.Source != "store" || stored.Outcome != "hit" {
		t.Fatalf("restart source/outcome = %q/%q", stored.Source, stored.Outcome)
	}
	if stored.Solver == nil || *stored.Solver != *solved.Solver {
		t.Fatalf("store counters %+v != solve counters %+v", stored.Solver, solved.Solver)
	}
	if stored.Orch == nil || stored.Orch.Orchestrations != solved.Orch.Orchestrations ||
		stored.Orch.MemoHits != solved.Orch.MemoHits {
		t.Fatalf("store orch counters %+v != solve's %+v", stored.Orch, solved.Orch)
	}
	if stored.Method != "branch-bound" || stored.Family != "chain" {
		t.Fatalf("restart method/family = %q/%q", stored.Method, stored.Family)
	}
}

// TestSolverStatsSurfaced pins satellite 1: the branch-and-bound search
// counters reach /v1/stats instead of being dropped on the floor.
func TestSolverStatsSurfaced(t *testing.T) {
	_, ts := newTestAPI(t)
	instance := readTestdata(t, "mixed6.json")
	body := fmt.Sprintf(`{"instance": %s, "model": "inorder", "objective": "period", "method": "bnb", "family": "chain"}`, instance)
	if resp := doJSON(t, "POST", ts.URL+"/v1/plan", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d", resp.StatusCode)
	}

	var st struct {
		Expanded  int64  `json:"solver_nodes_expanded"`
		Pruned    int64  `json:"solver_nodes_pruned"`
		Evaluated int64  `json:"solver_candidates_evaluated"`
		Version   string `json:"version"`
	}
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, &st)
	if st.Expanded == 0 || st.Evaluated == 0 {
		t.Fatalf("solver counters not surfaced: %+v", st)
	}
	if st.Version == "" {
		t.Fatal("stats has no version")
	}
}

// TestCacheHitAllocBudget pins the zero-cost contract of the tracing
// spine: serving a cache hit with a span from a DISABLED tracer in the
// context must allocate no more than serving it with no span at all. The
// observability layer on the hot path is field writes and literals.
func TestCacheHitAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	s := newTestServer(t, Config{Workers: 1})
	instance := readTestdata(t, "webquery8.json")
	var app workflow.App
	if err := json.Unmarshal(instance, &app); err != nil {
		t.Fatal(err)
	}
	req := Request{App: &app, Model: plan.InOrder, Objective: solve.PeriodObjective}
	if _, err := s.Plan(req); err != nil { // warm the cache
		t.Fatal(err)
	}

	bare := testing.AllocsPerRun(100, func() {
		if _, err := s.PlanContext(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	})
	span := obs.NewTracer(0).Start("POST /v1/plan", "alloc-test")
	ctx := obs.WithSpan(context.Background(), span)
	traced := testing.AllocsPerRun(100, func() {
		if _, err := s.PlanContext(ctx, req); err != nil {
			t.Fatal(err)
		}
	})
	if traced > bare {
		t.Fatalf("cache hit with a disabled-tracer span allocates %.1f, bare %.1f — tracing is not free", traced, bare)
	}
}
