package service

// Plan provenance: the per-hash record behind GET /v1/explain/{hash}.
//
// Every served plan request updates one record keyed by the canonical
// instance hash: which request last touched it, how it was served (cache
// outcome and plan source), what the answer was, and — when a solve ever
// ran for it, this process or a persisted one — the search-effort record
// of that solve. The cache is a bounded LRU so a stream of distinct
// instances cannot grow the daemon without limit, mirroring the registry.
//
// The hot-path contract: recording a serve for an already-known hash
// allocates nothing (map lookup, in-place field writes, list reshuffle) —
// the cache-hit AllocBudget guard covers this path. Only the first serve
// of a hash allocates its record.

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/rat"
	"repro/internal/solve"
)

// Explain is the provenance record of the most recent serve of one
// canonical hash.
type Explain struct {
	// Hash is the canonical instance hash; Key the full cache key of the
	// last serve (hash plus solve parameters).
	Hash string
	Key  string
	// RequestID correlates the last serve with its log lines and span
	// ("" when the serve ran without an HTTP request, e.g. a library
	// call).
	RequestID string
	// Model/Objective/Method/Family are the last serve's request
	// parameters (Method and Family as requested; the resolved pair lives
	// in Effort).
	Model     plan.Model
	Objective solve.Objective
	Method    solve.Method
	Family    solve.Family
	// Outcome is the plan-cache verdict (miss/hit/coalesced); Source
	// where the answer came from (cache/store/solve/failover).
	Outcome string
	Source  string
	// Value/Exact are the served solution's objective and certificate.
	Value rat.Rat
	Exact bool
	// Effort is the search-effort record of the solve that produced the
	// answer — the same counters whether this serve solved, hit the
	// cache, or warm-loaded the plan from the store (nil only for entries
	// persisted before efforts existed).
	Effort *solve.Effort
	// Served is when the last serve finished.
	Served time.Time
}

// explainCache is the bounded, least-recently-served map of Explain
// records.
type explainCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // hash → element; Value is *Explain
	lru     *list.List               // most recently served at the front
}

func newExplainCache(max int) *explainCache {
	return &explainCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// record notes one serve. In-place update for a known hash — no
// allocation; creation (and possibly one eviction) otherwise.
func (c *explainCache) record(hash, key, reqID string, req Request, outcome, source string, val cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		e := el.Value.(*Explain)
		e.Key = key
		e.RequestID = reqID
		e.Model = req.Model
		e.Objective = req.Objective
		e.Method = req.Method
		e.Family = req.Family
		e.Outcome = outcome
		e.Source = source
		e.Value = val.sol.Value
		e.Exact = val.sol.Exact
		e.Effort = val.effort
		e.Served = time.Now()
		c.lru.MoveToFront(el)
		return
	}
	e := &Explain{
		Hash:      hash,
		Key:       key,
		RequestID: reqID,
		Model:     req.Model,
		Objective: req.Objective,
		Method:    req.Method,
		Family:    req.Family,
		Outcome:   outcome,
		Source:    source,
		Value:     val.sol.Value,
		Exact:     val.sol.Exact,
		Effort:    val.effort,
		Served:    time.Now(),
	}
	c.entries[hash] = c.lru.PushFront(e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		ev := oldest.Value.(*Explain)
		c.lru.Remove(oldest)
		delete(c.entries, ev.Hash)
	}
}

// get returns a copy of the record for hash, if any.
func (c *explainCache) get(hash string) (Explain, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return Explain{}, false
	}
	return *el.Value.(*Explain), true
}

// Explain returns the provenance record of the most recent serve of the
// canonical hash, if the server has one.
func (s *Server) Explain(hash string) (Explain, bool) {
	return s.explain.get(hash)
}
