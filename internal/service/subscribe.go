package service

// Drift subscriptions: the streaming half of the re-planning story. A
// client that planned an instance can subscribe to its canonical hash and
// is pushed one event whenever a PATCH re-plan against that hash changes
// the objective — instead of polling /v1/plan for a value that almost
// never moves. The HTTP surface (http.go) exposes this as server-sent
// events on GET /v1/subscribe/{hash}.
//
// Events are numbered per hash (1, 2, ...) and the hub retains the last
// replayRing events of every hash it ever published on, so a subscriber
// that reconnects with the ID of the last event it saw (the SSE
// Last-Event-ID header) replays the events fired during the gap instead of
// silently missing them. The in-connection `lagged` signal (a stalled
// consumer overflowing its buffer) and the resume gap (a reconnect beyond
// the retained ring) share one meaning: "you missed events, re-fetch the
// plan".

import (
	"sync"
	"sync/atomic"

	"repro/internal/rat"
	"repro/internal/workflow"
)

// Event is one re-planning notification: a PATCH against Hash produced a
// plan under NewHash whose objective moved from OldValue to NewValue. ID
// numbers the events of Hash from 1; NewApp is the drifted instance (its
// canonical application), so a consumer can re-plan it — e.g. the stream
// executor fetching the new schedule after an externally triggered PATCH —
// without re-deriving the updates.
type Event struct {
	ID       uint64
	Hash     string
	NewHash  string
	OldValue rat.Rat
	NewValue rat.Rat
	NewApp   *workflow.App
}

// subscriberBuffer bounds each subscription's undelivered events. Drift
// re-plans are rare next to plan requests, so the buffer only fills when a
// consumer stalls; events beyond it are dropped (counted, and flagged on
// the subscription so the consumer learns it missed something) rather than
// blocking the drift path on a dead client.
const subscriberBuffer = 16

// replayRing bounds the per-hash event history kept for Last-Event-ID
// resume. A reconnect further behind than this replays nothing and reports
// the gap instead.
const replayRing = 64

// maxTopics bounds the number of per-hash histories the hub retains.
// Topics are created by publishes — the drift path of registered
// instances — so the bound is a backstop, not a working limit; on overflow
// the topic with the oldest last event is evicted (its subscribers keep
// their live channels, only the resume history is lost).
const maxTopics = 4096

// Subscription is one listener's handle: the event channel plus the lag
// counter that records events dropped against this subscriber while its
// buffer was full. A drop can only happen when the buffer holds
// subscriberBuffer undelivered events, so a lagged consumer is always
// about to wake up on a buffered event and see the flag.
type Subscription struct {
	ch     chan Event
	lagged atomic.Int64
}

// Events returns the channel re-plan events arrive on.
func (sub *Subscription) Events() <-chan Event { return sub.ch }

// Lagged drains the lag counter: the number of events dropped against this
// subscriber since the last call. A non-zero return means the consumer
// missed re-plans and should re-fetch the current plan instead of trusting
// the event stream to be complete.
func (sub *Subscription) Lagged() int64 { return sub.lagged.Swap(0) }

// topic is the per-hash hub state: the live subscribers, the event
// sequence, and the bounded replay history (ring[0] is the oldest retained
// event).
type topic struct {
	subs map[*Subscription]struct{}
	seq  uint64
	ring []Event
}

// hub fans re-plan events out to the subscribers of each hash and retains
// the per-hash history for Last-Event-ID resume. The zero value is ready
// to use.
type hub struct {
	mu     sync.Mutex
	topics map[string]*topic

	published atomic.Int64
	dropped   atomic.Int64
	replayed  atomic.Int64
}

func (h *hub) topicLocked(hash string) *topic {
	if h.topics == nil {
		h.topics = make(map[string]*topic)
	}
	t := h.topics[hash]
	if t == nil {
		if len(h.topics) >= maxTopics {
			h.evictLocked()
		}
		t = &topic{}
		h.topics[hash] = t
	}
	return t
}

// evictLocked drops the subscriber-free topic with the lowest event
// sequence (≈ the coldest history). Topics with live subscribers are never
// evicted — their channels must keep working — so the map can transiently
// exceed maxTopics by the number of concurrently subscribed hashes.
func (h *hub) evictLocked() {
	var victim string
	var low uint64
	for hash, t := range h.topics {
		if len(t.subs) > 0 {
			continue
		}
		if victim == "" || t.seq < low {
			victim, low = hash, t.seq
		}
	}
	if victim != "" {
		delete(h.topics, victim)
	}
}

// liveOnly is the sinceID sentinel for a fresh subscription: no replay,
// events from now on. Any real resume cursor is the ID of the last event
// the consumer saw (0 = subscribed but saw nothing yet).
const liveOnly = ^uint64(0)

// subscribe registers a listener for hash and returns it plus the cancel
// function (idempotent; always call it — it releases the slot). sinceID is
// the resume cursor: liveOnly subscribes with no replay; otherwise every
// retained event with ID > sinceID is replayed (atomically with the
// registration, so no event falls between the replay slice and the live
// channel) and missed counts the events lost beyond the retained ring.
func (h *hub) subscribe(hash string, sinceID uint64) (sub *Subscription, replay []Event, missed uint64, cancel func()) {
	sub = &Subscription{ch: make(chan Event, subscriberBuffer)}
	h.mu.Lock()
	t := h.topicLocked(hash)
	if t.subs == nil {
		t.subs = make(map[*Subscription]struct{})
	}
	t.subs[sub] = struct{}{}
	if sinceID != liveOnly && t.seq > sinceID {
		oldest := t.seq - uint64(len(t.ring)) + 1 // ID of ring[0] (seq+1 when empty)
		if sinceID+1 < oldest {
			missed = oldest - sinceID - 1
		}
		for _, ev := range t.ring {
			if ev.ID > sinceID {
				replay = append(replay, ev)
			}
		}
		h.replayed.Add(int64(len(replay)))
	}
	h.mu.Unlock()
	return sub, replay, missed, func() {
		h.mu.Lock()
		if t, ok := h.topics[hash]; ok {
			delete(t.subs, sub)
		}
		h.mu.Unlock()
	}
}

// publish assigns ev the hash's next event ID, retains it for resume, and
// delivers it to every current subscriber: exactly one send per
// subscriber, non-blocking (a full buffer counts a drop on the hub AND on
// the subscription — the consumer finds out — instead of stalling the
// drift request). The assigned ID is returned.
func (h *hub) publish(hash string, ev Event) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topicLocked(hash)
	t.seq++
	ev.ID = t.seq
	if len(t.ring) == replayRing {
		copy(t.ring, t.ring[1:])
		t.ring = t.ring[:replayRing-1]
	}
	t.ring = append(t.ring, ev)
	for sub := range t.subs {
		select {
		case sub.ch <- ev:
			h.published.Add(1)
		default:
			sub.lagged.Add(1)
			h.dropped.Add(1)
		}
	}
	return ev.ID
}

// subscribers counts the currently open subscriptions across all hashes.
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, t := range h.topics {
		n += len(t.subs)
	}
	return n
}

// Subscribe registers for re-plan events against a canonical hash: every
// PATCH re-plan of that hash whose objective changes delivers exactly one
// Event. The returned cancel releases the subscription; events arriving
// with no reader beyond the buffer are dropped — never blocking the drift
// path — and recorded on the Subscription's lag counter so the consumer
// can detect the gap.
func (s *Server) Subscribe(hash string) (*Subscription, func()) {
	sub, _, _, cancel := s.hub.subscribe(hash, liveOnly)
	return sub, cancel
}

// SubscribeSince is Subscribe resuming from a previously seen event ID:
// retained events with ID > sinceID are returned for replay (in order,
// atomically consistent with the live channel — an event is replayed or
// delivered, never both, never neither) and missed counts events lost
// beyond the retained history, in which case the consumer should re-fetch
// the current plan. sinceID 0 means "subscribed before, saw nothing":
// every retained event replays. This is the engine behind the SSE
// Last-Event-ID resume on GET /v1/subscribe/{hash}.
func (s *Server) SubscribeSince(hash string, sinceID uint64) (sub *Subscription, replay []Event, missed uint64, cancel func()) {
	return s.hub.subscribe(hash, sinceID)
}
