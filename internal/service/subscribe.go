package service

// Drift subscriptions: the streaming half of the re-planning story. A
// client that planned an instance can subscribe to its canonical hash and
// is pushed one event whenever a PATCH re-plan against that hash changes
// the objective — instead of polling /v1/plan for a value that almost
// never moves. The HTTP surface (http.go) exposes this as server-sent
// events on GET /v1/subscribe/{hash}.

import (
	"sync"
	"sync/atomic"

	"repro/internal/rat"
)

// Event is one re-planning notification: a PATCH against Hash produced a
// plan under NewHash whose objective moved from OldValue to NewValue.
type Event struct {
	Hash     string
	NewHash  string
	OldValue rat.Rat
	NewValue rat.Rat
}

// subscriberBuffer bounds each subscription's undelivered events. Drift
// re-plans are rare next to plan requests, so the buffer only fills when a
// consumer stalls; events beyond it are dropped (counted, and flagged on
// the subscription so the consumer learns it missed something) rather than
// blocking the drift path on a dead client.
const subscriberBuffer = 16

// Subscription is one listener's handle: the event channel plus the lag
// counter that records events dropped against this subscriber while its
// buffer was full. A drop can only happen when the buffer holds
// subscriberBuffer undelivered events, so a lagged consumer is always
// about to wake up on a buffered event and see the flag.
type Subscription struct {
	ch     chan Event
	lagged atomic.Int64
}

// Events returns the channel re-plan events arrive on.
func (sub *Subscription) Events() <-chan Event { return sub.ch }

// Lagged drains the lag counter: the number of events dropped against this
// subscriber since the last call. A non-zero return means the consumer
// missed re-plans and should re-fetch the current plan instead of trusting
// the event stream to be complete.
func (sub *Subscription) Lagged() int64 { return sub.lagged.Swap(0) }

// hub fans re-plan events out to the subscribers of each hash. The zero
// value is ready to use.
type hub struct {
	mu   sync.Mutex
	subs map[string]map[*Subscription]struct{}

	published atomic.Int64
	dropped   atomic.Int64
}

// subscribe registers a listener for hash and returns it plus the cancel
// function (idempotent; always call it — it releases the slot).
func (h *hub) subscribe(hash string) (*Subscription, func()) {
	sub := &Subscription{ch: make(chan Event, subscriberBuffer)}
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[string]map[*Subscription]struct{})
	}
	if h.subs[hash] == nil {
		h.subs[hash] = make(map[*Subscription]struct{})
	}
	h.subs[hash][sub] = struct{}{}
	h.mu.Unlock()
	return sub, func() {
		h.mu.Lock()
		if set, ok := h.subs[hash]; ok {
			delete(set, sub)
			if len(set) == 0 {
				delete(h.subs, hash)
			}
		}
		h.mu.Unlock()
	}
}

// publish delivers ev to every current subscriber of hash: exactly one
// send per subscriber, non-blocking (a full buffer counts a drop on the
// hub AND on the subscription — the consumer finds out — instead of
// stalling the drift request).
func (h *hub) publish(hash string, ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs[hash] {
		select {
		case sub.ch <- ev:
			h.published.Add(1)
		default:
			sub.lagged.Add(1)
			h.dropped.Add(1)
		}
	}
}

// subscribers counts the currently open subscriptions across all hashes.
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, set := range h.subs {
		n += len(set)
	}
	return n
}

// Subscribe registers for re-plan events against a canonical hash: every
// PATCH re-plan of that hash whose objective changes delivers exactly one
// Event. The returned cancel releases the subscription; events arriving
// with no reader beyond the buffer are dropped — never blocking the drift
// path — and recorded on the Subscription's lag counter so the consumer
// can detect the gap.
func (s *Server) Subscribe(hash string) (*Subscription, func()) {
	return s.hub.subscribe(hash)
}
