package service

// Intake backpressure (Config.MaxPending) and the /metrics surface:
// admissions beyond the watermark shed with ErrOverloaded / HTTP 429 +
// Retry-After, shed requests are never cached (the same key solves
// cleanly once the burst passes), and the Prometheus endpoint exposes
// the queue and shed counters.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rat"
	"repro/internal/workflow"
)

// blockPool occupies every worker and fills the queue up to the given
// pending count with parked tasks, returning the release function. It
// waits until all blockers are admitted (pending reflects them).
func blockPool(t *testing.T, s *Server, n int) (release func()) {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.submit(nil, func() { <-stop }); err != nil {
				t.Errorf("blocker shed: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pending.Load() < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d blockers admitted", s.pending.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	return func() { close(stop); wg.Wait() }
}

func smallApp(t *testing.T) *workflow.App {
	t.Helper()
	services := []workflow.Service{
		{Name: "A", Cost: rat.New(2, 1), Selectivity: rat.New(1, 2)},
		{Name: "B", Cost: rat.New(3, 1), Selectivity: rat.New(1, 3)},
	}
	app, err := workflow.New(services, nil)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestShedBeyondMaxPendingAndRetryCleanly(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 1, MaxPending: 2})
	defer s.Close()

	release := blockPool(t, s, 2) // one running, one queued: watermark reached
	req := Request{App: smallApp(t)}
	_, err := s.Plan(req)
	if !errors.Is(err, ErrOverloaded) {
		release()
		t.Fatalf("plan over the watermark: err %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Shed != 1 || st.MaxPending != 2 {
		t.Errorf("stats after shed = Shed %d MaxPending %d", st.Shed, st.MaxPending)
	}

	// The shed error was never cached: after the burst the same request
	// solves normally.
	release()
	resp, err := s.Plan(req)
	if err != nil {
		t.Fatalf("plan after release: %v", err)
	}
	if resp.Outcome.String() != "miss" {
		t.Errorf("post-shed outcome %s, want a fresh miss", resp.Outcome)
	}
}

func TestCacheHitsAreNeverShed(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 1, MaxPending: 2})
	defer s.Close()
	req := Request{App: smallApp(t)}
	if _, err := s.Plan(req); err != nil {
		t.Fatal(err)
	}

	release := blockPool(t, s, 2)
	defer release()
	resp, err := s.Plan(req)
	if err != nil {
		t.Fatalf("cached plan shed under load: %v", err)
	}
	if resp.Outcome.String() != "hit" {
		t.Errorf("outcome %s, want hit", resp.Outcome)
	}
}

func TestShedHTTP429WithRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 1, MaxPending: 2})
	defer s.Close()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	release := blockPool(t, s, 2)
	body := `{"instance": {"services": [
	  {"name": "A", "cost": "2", "selectivity": "1/2"},
	  {"name": "B", "cost": "3", "selectivity": "1/3"}]}}`
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		release()
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		release()
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, payload)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}

	release()
	resp2, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after release %d, want 200", resp2.StatusCode)
	}
}

func TestClosedServer503(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	s.Close()

	body := `{"instance": {"services": [{"name": "A", "cost": "2", "selectivity": "1/2"}]}}`
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	body := `{"instance": {"services": [
	  {"name": "A", "cost": "2", "selectivity": "1/2"},
	  {"name": "B", "cost": "3", "selectivity": "1/3"}]}}`
	if resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text format", ct)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	for _, want := range []string{
		"filterd_queue_depth 0",
		"filterd_shed_total 0",
		"filterd_solve_seconds_count 1",
		"filterd_plancache_misses_total 1",
		`filterd_http_requests_total{route="plan",code="200"} 1`,
		`filterd_http_request_seconds_count{route="plan"} 1`,
		"filterd_max_pending",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The JSON stats stay as the compatibility surface, now with the
	// backpressure counters.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st struct {
		Shed       *int64 `json:"shed"`
		MaxPending *int   `json:"max_pending"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shed == nil || st.MaxPending == nil || *st.MaxPending <= 0 {
		t.Errorf("stats missing backpressure counters: %+v", st)
	}
}

// TestShedBatchItemsFailAlone: a batch under load sheds per item; the
// response stays 200 with per-item errors mentioning the overload.
func TestShedBatchItemsFailAlone(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 1, MaxPending: 2})
	defer s.Close()
	release := blockPool(t, s, 2)
	defer release()

	results := s.PlanBatch([]Request{{App: smallApp(t)}})
	if len(results) != 1 {
		t.Fatalf("%d results", len(results))
	}
	if !errors.Is(results[0].Err, ErrOverloaded) {
		t.Errorf("batch item error %v, want ErrOverloaded", results[0].Err)
	}
	if st := s.Stats(); st.Shed == 0 {
		t.Error("no shed counted")
	}
}
